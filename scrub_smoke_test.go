package apollo

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"apollo/internal/storage"
)

// flipByte rots one byte near the end of a blob file (inside the CRC-covered
// payload region, past the header).
func flipByte(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0xA5
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func scrubCfg() Config {
	cfg := DefaultConfig()
	cfg.TupleMoverInterval = 0
	cfg.RowGroupSize = 8
	cfg.FsyncPolicy = "always"
	cfg.ScrubInterval = 0 // driven manually
	return cfg
}

// TestScrubSmoke is the `make check` integrity gate: rot every at-rest blob
// copy, run one scrub pass under concurrent queries, and require 100%
// detection — every corrupted file repaired from the surviving in-memory
// copy — with zero failed or wrong query results. Then rot a blob whose only
// copy is the file (caches evicted) and require quarantine, per-table health
// degradation, and untouched tables staying fully readable.
func TestScrubSmoke(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, scrubCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.MustExec("CREATE TABLE s (id BIGINT, v VARCHAR)")
	db.MustExec("CREATE TABLE other (id BIGINT, v VARCHAR)")
	for i := 1; i <= 64; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO s VALUES (%d, 'scrub-%d')", i, i))
	}
	db.MustExec("INSERT INTO other VALUES (1, 'bystander')")
	tb, err := db.Table("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if tb.Stats().CompressedGroups == 0 {
		t.Fatal("reorganize produced no compressed groups; nothing at rest to scrub")
	}

	backing := db.store.Backing()
	if backing == nil {
		t.Fatal("durable database has no disk backing")
	}
	ids := db.store.IDs()
	if len(ids) < 2 {
		t.Fatalf("only %d blobs at rest; want several row groups", len(ids))
	}
	// Rot every single at-rest file. The in-memory cache still holds good
	// copies (nothing was evicted), so the pass must repair all of them.
	for _, id := range ids {
		flipByte(t, backing.Path(id))
	}

	// Hammer the table from concurrent readers for the whole pass. Repair
	// happens off the query path; no query may fail or see wrong data.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, failures atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query("SELECT COUNT(*) FROM s")
				queries.Add(1)
				if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 64 {
					failures.Add(1)
					return
				}
			}
		}()
	}

	rep, err := db.Scrub(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	detected := rep.RepairedBacking + rep.RepairedMemory + rep.Quarantined
	if detected != int64(len(ids)) {
		t.Fatalf("scrub detected %d of %d corrupted blobs (repaired-backing %d, repaired-memory %d, quarantined %d)",
			detected, len(ids), rep.RepairedBacking, rep.RepairedMemory, rep.Quarantined)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("quarantined %d blobs that had good in-memory copies", rep.Quarantined)
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d concurrent queries failed during the scrub pass", failures.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no concurrent queries ran during the pass")
	}

	// A follow-up pass over the repaired files finds nothing.
	rep2, err := db.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RepairedBacking+rep2.RepairedMemory+rep2.Quarantined != 0 {
		t.Fatalf("second pass still found damage: %+v", rep2)
	}

	// Quarantine leg: rot BOTH at-rest copies of one blob (the in-memory
	// bytes via the test hook, the file directly) so repair has no good
	// source. The scrubber must quarantine the blob, pin the damage to
	// table s in Health, and leave other tables serving.
	var victim storage.BlobID
	for _, id := range db.store.IDs() {
		victim = id
		break
	}
	if err := db.store.Corrupt(victim); err != nil {
		t.Fatal(err)
	}
	flipByte(t, backing.Path(victim))
	rep3, err := db.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Quarantined != 1 {
		t.Fatalf("quarantined %d, want exactly the rotted blob", rep3.Quarantined)
	}
	if got := db.QuarantinedBlobs(); len(got) != 1 || got[0] != uint64(victim) {
		t.Fatalf("QuarantinedBlobs() = %v, want [%d]", got, victim)
	}
	h := db.Health()
	if th := h.Tables["s"]; th.QuarantinedBlobs != 1 || th.LastQuarantine == nil {
		t.Fatalf("table s health does not report the quarantine: %+v", th)
	}
	if th := h.Tables["other"]; th.QuarantinedBlobs != 0 {
		t.Fatalf("bystander table inherited a quarantine: %+v", th)
	}
	if res, err := db.Query("SELECT COUNT(*) FROM other"); err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("bystander table unreadable after quarantine: %v", err)
	}
	// Scrub passes are counted into Health for operators.
	if h.ScrubPasses < 3 {
		t.Fatalf("ScrubPasses = %d, want >= 3", h.ScrubPasses)
	}
}
