// Command apollod serves apollo databases over HTTP: one process, N tenant
// databases under a root data directory, one shared memory budget, admission
// control, and Prometheus metrics.
//
// Usage:
//
//	apollod -root DIR -tenant name=key [-tenant name2=key2 ...] [flags]
//
// Each -tenant flag declares one servable tenant and its API key; the
// tenant's database lives in DIR/name, created on first request and
// recovered from its WAL on first request after a restart. Clients
// authenticate with "Authorization: Bearer <key>" and reach:
//
//	POST /v1/exec, /v1/query (streaming), /v1/explain, /v1/sessions
//	GET  /metrics, /healthz, /v1/health (per-tenant durability health)
//
// Durability flags: -scrub-interval / -scrub-bytes-per-sec pace the
// background integrity scrubber over each tenant's at-rest data;
// -probe-interval sets how often a tenant degraded to read-only by disk
// exhaustion reprobes for reclaimed space. Writes against a degraded tenant
// return 503 with a Retry-After header; reads keep serving.
//
// Resource flags:
//
//	-cache-bytes     shared buffer-pool budget for all tenants
//	-grant-bytes     per-query memory grant (hash operators spill beyond it)
//	-max-queries     global concurrent-query cap
//	-max-per-tenant  per-tenant concurrent-query cap
//	-queue-depth     per-tenant admission wait-queue bound (beyond it: 429)
//	-queue-timeout   max admission wait before shedding
//
// See DESIGN.md §12 for the serving architecture.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"apollo"
	"apollo/internal/server"
	"apollo/internal/server/broker"
)

func main() {
	var (
		addr        = flag.String("addr", ":8329", "listen address")
		root        = flag.String("root", "", "tenant data directory (required)")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "shared buffer-pool budget in bytes")
		grantBytes  = flag.Int64("grant-bytes", 64<<20, "per-query memory grant in bytes (0 = unlimited)")
		maxQueries  = flag.Int("max-queries", 64, "global concurrent query cap (0 = unlimited)")
		perTenant   = flag.Int("max-per-tenant", 8, "per-tenant concurrent query cap (0 = unlimited)")
		queueDepth  = flag.Int("queue-depth", 16, "per-tenant admission wait queue bound")
		queueWait   = flag.Duration("queue-timeout", 5*time.Second, "max admission wait before shedding (0 = request deadline)")
		maxOpen     = flag.Int("max-open-tenants", 0, "max simultaneously open tenant databases (0 = unlimited)")
		idleTenant  = flag.Duration("idle-tenant-timeout", 15*time.Minute, "close tenant databases idle this long (0 = never)")
		idleTxn     = flag.Duration("idle-txn-timeout", time.Minute, "kill sessions holding a transaction idle this long")
		idleSession = flag.Duration("idle-session-timeout", 15*time.Minute, "kill sessions idle this long")
		fsync       = flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
		mode        = flag.String("mode", "2014", "execution mode: 2014, 2012, or row")
		parallel    = flag.Int("parallel", 0, "scan degree of parallelism")
		loadQueue   = flag.Int("load-queue-depth", 1024, "/v1/load bounded row channel between decoder and compressor")
		scrubEvery  = flag.Duration("scrub-interval", time.Minute, "pause between background integrity-scrub passes (0 = disable scrubbing)")
		scrubRate   = flag.Int64("scrub-bytes-per-sec", 0, "integrity-scrub pacing budget in bytes/sec (0 = engine default)")
		probeEvery  = flag.Duration("probe-interval", 0, "disk-space reprobe cadence while degraded to read-only (0 = engine default)")
	)
	tenants := map[string]string{}
	flag.Func("tenant", "tenant declaration name=apikey (repeatable)", func(v string) error {
		name, key, ok := strings.Cut(v, "=")
		if !ok || name == "" || key == "" {
			return fmt.Errorf("want name=apikey, got %q", v)
		}
		tenants[name] = key
		return nil
	})
	flag.Parse()

	if *root == "" || len(tenants) == 0 {
		fmt.Fprintln(os.Stderr, "apollod: -root and at least one -tenant name=key are required")
		flag.Usage()
		os.Exit(2)
	}
	dbcfg := apollo.DefaultConfig()
	dbcfg.FsyncPolicy = *fsync
	dbcfg.Parallel = *parallel
	dbcfg.ScrubInterval = *scrubEvery
	dbcfg.ScrubBytesPerSec = *scrubRate
	dbcfg.ProbeInterval = *probeEvery
	switch *mode {
	case "2014":
		dbcfg.Mode = apollo.Mode2014
	case "2012":
		dbcfg.Mode = apollo.Mode2012
	case "row":
		dbcfg.Mode = apollo.ModeRow
	default:
		fmt.Fprintf(os.Stderr, "apollod: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err := os.MkdirAll(*root, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "apollod: %v\n", err)
		os.Exit(1)
	}

	srv, err := server.New(server.Config{
		Root:       *root,
		Tenants:    tenants,
		DB:         dbcfg,
		CacheBytes: *cacheBytes,
		Limits: broker.Limits{
			PerTenant:    *perTenant,
			Global:       *maxQueries,
			QueueDepth:   *queueDepth,
			QueueTimeout: *queueWait,
			GrantBytes:   *grantBytes,
		},
		MaxOpenTenants:     *maxOpen,
		IdleTenantTimeout:  *idleTenant,
		IdleTxnTimeout:     *idleTxn,
		IdleSessionTimeout: *idleSession,
		LoadQueueDepth:     *loadQueue,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "apollod: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("apollod: serving %d tenant(s) from %s on %s (cache %d MiB, %d global / %d per-tenant slots)\n",
		len(tenants), *root, *addr, *cacheBytes>>20, *maxQueries, *perTenant)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "apollod: %v\n", err)
		srv.Close()
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("apollod: %v, shutting down\n", s)
	}
	hs.Close()
	srv.Close() // rolls back open transactions, closes every tenant
}
