// Command csbench regenerates the paper's tables and figures. Each
// subcommand corresponds to an experiment in DESIGN.md's index (E1–E12);
// `csbench all` runs the full suite.
//
// Usage:
//
//	csbench [flags] <experiment>
//
//	experiments: table1 speedup repertoire elimination bitmap trickle
//	             bulkload archival deletes spill ablation sampling all
//
//	-sf float     SSB scale factor (default 0.5; SF 1.0 ≈ 60k fact rows)
//	-rows int     row count for storage experiments (default 200000)
//	-reps int     timing repetitions, best-of (default 3)
//	-parallel int scan DOP for the speedup experiment (default 4)
package main

import (
	"flag"
	"fmt"
	"os"

	"apollo/internal/experiments"
)

func main() {
	sf := flag.Float64("sf", 0.5, "SSB scale factor")
	rows := flag.Int("rows", 200000, "rows for storage experiments")
	reps := flag.Int("reps", 3, "timing repetitions (best-of)")
	parallel := flag.Int("parallel", 4, "scan degree of parallelism")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: csbench [flags] <table1|speedup|repertoire|elimination|bitmap|trickle|bulkload|archival|deletes|spill|ablation|sampling|all>")
		os.Exit(2)
	}

	run := map[string]func() error{
		"table1":      func() error { return experiments.E1Table1Compression(os.Stdout, *rows) },
		"speedup":     func() error { return experiments.E2SpeedupSSB(os.Stdout, *sf, *parallel, *reps) },
		"repertoire":  func() error { return experiments.E3Repertoire(os.Stdout, *sf, *reps) },
		"elimination": func() error { return experiments.E4SegmentElimination(os.Stdout, *rows, *reps) },
		"bitmap":      func() error { return experiments.E5BitmapPushdown(os.Stdout, *sf, *reps) },
		"trickle":     func() error { return experiments.E6TrickleInsert(os.Stdout, *rows/4) },
		"bulkload":    func() error { return experiments.E7BulkLoadThreshold(os.Stdout) },
		"archival":    func() error { return experiments.E8ArchivalAccess(os.Stdout, *rows, *reps) },
		"deletes":     func() error { return experiments.E9DeleteOverhead(os.Stdout, *rows, *reps) },
		"spill":       func() error { return experiments.E10Spill(os.Stdout, *sf, *reps) },
		"ablation":    func() error { return experiments.E11EncodingAblation(os.Stdout, *rows) },
		"sampling":    func() error { return experiments.E12Sampling(os.Stdout, *rows) },
	}
	order := []string{"table1", "speedup", "repertoire", "elimination", "bitmap", "trickle",
		"bulkload", "archival", "deletes", "spill", "ablation", "sampling"}

	name := flag.Arg(0)
	if name == "all" {
		for _, n := range order {
			if err := run[n](); err != nil {
				fmt.Fprintf(os.Stderr, "csbench %s: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := run[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "csbench: unknown experiment %q\n", name)
		os.Exit(2)
	}
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "csbench %s: %v\n", name, err)
		os.Exit(1)
	}
}
