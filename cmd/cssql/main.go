// Command cssql is an interactive SQL shell over the apollo engine — either
// embedded in-process, or as a client of a running apollod server.
//
// Usage:
//
//	cssql [-mode 2014|2012|row] [-parallel N] [-ssb SF] [-data DIR] [-fsync always|interval|off]
//	cssql -url http://host:8329 -apikey KEY
//
// With -url the shell speaks the apollod wire API instead of opening an
// embedded database: statements run on a server-side session (so BEGIN/
// COMMIT/ROLLBACK work across requests), SELECT results stream, and
// .metrics scrapes the server's Prometheus endpoint. The same REPL drives
// both engines.
//
// With -data the database is durable: it recovers from DIR on startup
// (checkpoint image + WAL replay) and logs all DDL/DML to a write-ahead log
// whose fsync discipline -fsync selects. Without -data it is in-memory.
// The -ssb flag preloads a Star Schema Benchmark warehouse (tables
// lineorder, dwdate, customer, supplier, part). Dot-commands:
//
//	.tables          list tables
//	.stats <table>   physical table statistics
//	.health          database durability health (mode, WAL, scrub, quarantines)
//	.health <table>  tuple-mover health (failures, backoff, last error)
//	.scrub [full]    run one integrity-scrub pass now ('full' = unpaced)
//	.faults <read> <write> <corrupt> [seed]  inject storage faults (rates in [0,1])
//	.faults off      clear fault injection
//	.begin           start a transaction (statements queue under snapshot isolation)
//	.commit          commit the open transaction
//	.rollback        discard the open transaction
//	.checkpoint      write a checkpoint image and truncate the WAL (-data only)
//	.wal             show WAL position, fsync policy, and recovery summary
//	.metrics [prefix]  dump engine metrics (Prometheus text format)
//	.mode            show the execution mode
//	.quit            exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"apollo"
	"apollo/internal/server/client"
	"apollo/internal/workload"
)

func main() {
	mode := flag.String("mode", "2014", "execution mode: 2014, 2012, or row")
	parallel := flag.Int("parallel", 0, "scan degree of parallelism")
	ssb := flag.Float64("ssb", 0, "preload an SSB warehouse at this scale factor")
	dataDir := flag.String("data", "", "durable database directory (empty = in-memory)")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data: always, interval, or off")
	url := flag.String("url", "", "apollod server URL (client mode; requires -apikey)")
	apikey := flag.String("apikey", "", "tenant API key for -url mode")
	flag.Parse()

	if *url != "" {
		if *apikey == "" {
			fmt.Fprintln(os.Stderr, "cssql: -url requires -apikey")
			os.Exit(2)
		}
		clientREPL(*url, *apikey)
		return
	}

	cfg := apollo.DefaultConfig()
	cfg.Parallel = *parallel
	cfg.RowGroupSize = 1 << 16
	cfg.BulkLoadThreshold = 4096
	cfg.FsyncPolicy = *fsync
	switch *mode {
	case "2014":
		cfg.Mode = apollo.Mode2014
	case "2012":
		cfg.Mode = apollo.Mode2012
	case "row":
		cfg.Mode = apollo.ModeRow
	default:
		fmt.Fprintf(os.Stderr, "cssql: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var db *apollo.DB
	if *dataDir != "" {
		var err error
		db, err = apollo.OpenDir(*dataDir, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cssql: %v\n", err)
			os.Exit(1)
		}
		rec := db.RecoveryInfo()
		fmt.Printf("recovered %s: %d blob files, checkpoint seq %d, %d WAL records replayed",
			*dataDir, rec.BlobsLoaded, rec.CheckpointSeq, rec.ReplayedRecords)
		if rec.TruncatedTail {
			fmt.Print(", torn tail truncated")
		}
		if rec.OrphanBlobs > 0 {
			fmt.Printf(", %d orphan blobs removed", rec.OrphanBlobs)
		}
		fmt.Println()
	} else {
		db = apollo.Open(cfg)
	}
	defer db.Close()

	if *ssb > 0 {
		fmt.Printf("loading SSB SF=%.2f ...\n", *ssb)
		if err := loadSSB(db, *ssb); err != nil {
			fmt.Fprintf(os.Stderr, "cssql: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tables: %s\n", strings.Join(db.Tables(), ", "))
	}

	// One session for the whole REPL: BEGIN/COMMIT/ROLLBACK (or the matching
	// dot-commands) bracket transactions; statements in between share its
	// snapshot. Close rolls back anything left open at exit.
	sess := db.Session()
	defer sess.Close()

	fmt.Println("apollo SQL shell — end statements with ';', '.quit' to exit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var stmt strings.Builder
	prompt := func() {
		if sess.InTxn() {
			fmt.Print("txn> ")
		} else {
			fmt.Print("sql> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if stmt.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if dot(db, sess, trimmed) {
				return
			}
			prompt()
			continue
		}
		stmt.WriteString(line)
		stmt.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			runOne(sess, stmt.String())
			stmt.Reset()
			prompt()
		} else if stmt.Len() > 0 {
			fmt.Print("  -> ")
		}
	}
}

// dot handles dot-commands; returns true to exit.
func dot(db *apollo.DB, sess *apollo.Session, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".begin", ".commit", ".rollback":
		// Sugar for the SQL statements, so transactions work without
		// remembering the trailing semicolon.
		if res, err := sess.Exec(strings.TrimPrefix(fields[0], ".")); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println(res.Message)
		}
	case ".tables":
		for _, t := range db.Tables() {
			fmt.Println(t)
		}
	case ".stats":
		if len(fields) != 2 {
			fmt.Println("usage: .stats <table>")
			break
		}
		t, err := db.Table(fields[1])
		if err != nil {
			fmt.Println(err)
			break
		}
		s := t.Stats()
		fmt.Printf("compressed row groups: %d (%d rows)\ndelta rows: %d\ndeleted rows: %d\ndisk bytes: %d (raw %d, ratio %.2fx)\n",
			s.CompressedGroups, s.CompressedRows, s.DeltaRows, s.DeletedRows,
			s.DiskBytes, s.RawBytes, float64(s.RawBytes)/float64(max(s.DiskBytes, 1)))
	case ".health":
		if len(fields) == 1 {
			h := db.Health()
			fmt.Printf("mode: %s\n", h.Mode)
			if h.Cause != "" {
				fmt.Printf("cause: %s (since %s)\n", h.Cause, h.Since.Format(time.RFC3339))
			}
			if h.ReadOnlyEntered > 0 {
				fmt.Printf("read-only episodes: %d (recovered: %d)\n", h.ReadOnlyEntered, h.Recovered)
			}
			if db.Durable() {
				fmt.Printf("wal: segment %d, %d bytes appended, poisoned: %v\n",
					h.WAL.Seq, h.WAL.TotalBytes, h.WAL.Poisoned)
			}
			fmt.Printf("scrub passes: %d\n", h.ScrubPasses)
			if h.LastScrub != nil {
				r := h.LastScrub
				fmt.Printf("last scrub: %d blobs / %d bytes in %v (repaired %d, quarantined %d)\n",
					r.Blobs, r.Bytes, r.Duration.Round(time.Millisecond),
					r.RepairedBacking+r.RepairedMemory, r.Quarantined)
			}
			for name, th := range h.Tables {
				if th.QuarantinedBlobs > 0 {
					fmt.Printf("table %s: %d quarantined blob(s), last: %v\n",
						name, th.QuarantinedBlobs, th.LastQuarantine)
				}
			}
			break
		}
		if len(fields) != 2 {
			fmt.Println("usage: .health [table]")
			break
		}
		t, err := db.Table(fields[1])
		if err != nil {
			fmt.Println(err)
			break
		}
		h := t.Health()
		fmt.Printf("tuple mover running: %v\nmoves: %d, failures: %d (consecutive: %d)\n",
			h.MoverRunning, h.Moves, h.Failures, h.ConsecutiveFailures)
		if h.LastError != nil {
			fmt.Printf("last error: %v (at %s)\ncurrent backoff: %v\n",
				h.LastError, h.LastErrorTime.Format(time.RFC3339), h.Backoff)
		}
	case ".faults":
		if len(fields) == 2 && fields[1] == "off" {
			db.ClearStorageFaults()
			fmt.Println("fault injection cleared")
			break
		}
		if len(fields) != 4 && len(fields) != 5 {
			fmt.Println("usage: .faults <readRate> <writeRate> <corruptRate> [seed] | .faults off")
			break
		}
		var read, write, corrupt float64
		var seed int64
		if _, err := fmt.Sscanf(strings.Join(fields[1:4], " "), "%g %g %g", &read, &write, &corrupt); err != nil {
			fmt.Println("usage: .faults <readRate> <writeRate> <corruptRate> [seed] | .faults off")
			break
		}
		if len(fields) == 5 {
			if _, err := fmt.Sscanf(fields[4], "%d", &seed); err != nil {
				fmt.Println("usage: .faults <readRate> <writeRate> <corruptRate> [seed] | .faults off")
				break
			}
		}
		resolved := db.InjectStorageFaults(apollo.FaultConfig{
			ReadErrorRate:  read,
			WriteErrorRate: write,
			CorruptionRate: corrupt,
			Seed:           seed,
		})
		fmt.Printf("injecting faults: read %.2g, write %.2g, corrupt %.2g (seed %d — pass it back to replay this sequence)\n",
			read, write, corrupt, resolved)
	case ".scrub":
		opts := apollo.ScrubOptions{}
		if len(fields) == 2 && fields[1] == "full" {
			opts.BytesPerSec = -1 // unpaced operator-forced pass
		}
		start := time.Now()
		rep, err := db.ScrubWith(context.Background(), opts)
		if err != nil {
			fmt.Println(err)
			break
		}
		fmt.Printf("scrubbed %d blobs (%d bytes) in %v: %d repaired from backing, %d repaired from memory, %d quarantined, %d skipped\n",
			rep.Blobs, rep.Bytes, time.Since(start).Round(time.Millisecond),
			rep.RepairedBacking, rep.RepairedMemory, rep.Quarantined, rep.Skipped)
		if rep.WALSegments > 0 {
			fmt.Printf("wal: %d closed segments (%d records) verified", rep.WALSegments, rep.WALRecords)
			if rep.WALCorruption != nil {
				fmt.Printf(" — CORRUPTION: %v (self-heal checkpoint: %v)", rep.WALCorruption, rep.CheckpointTriggered)
			}
			fmt.Println()
		}
		for _, e := range rep.Errors {
			fmt.Println("warning:", e)
		}
	case ".checkpoint":
		seq, err := db.Checkpoint()
		if err != nil {
			fmt.Println(err)
			break
		}
		ws := db.WALStats()
		fmt.Printf("checkpoint written (WAL replay point seq %d, current segment %d)\n", seq, ws.Seq)
	case ".wal":
		if !db.Durable() {
			fmt.Println("in-memory database (start with -data DIR for durability)")
			break
		}
		ws := db.WALStats()
		rec := db.RecoveryInfo()
		fmt.Printf("segment seq: %d\nappended bytes: %d (durable: %d)\nfsync policy: %s\n",
			ws.Seq, ws.TotalBytes, ws.SyncedBytes, ws.Policy)
		fmt.Printf("last recovery: checkpoint seq %d, %d records replayed, torn tail: %v\n",
			rec.CheckpointSeq, rec.ReplayedRecords, rec.TruncatedTail)
	case ".metrics":
		var sb strings.Builder
		if err := db.WriteMetrics(&sb); err != nil {
			fmt.Println(err)
			break
		}
		out := sb.String()
		if len(fields) == 2 {
			var kept []string
			for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
				name := line
				if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
					name = rest
				} else if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
					name = rest
				}
				if strings.HasPrefix(name, fields[1]) {
					kept = append(kept, line)
				}
			}
			out = strings.Join(kept, "\n") + "\n"
		}
		fmt.Print(out)
	case ".mode":
		fmt.Println("see -mode flag; restart to change")
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return false
}

func runOne(sess *apollo.Session, stmt string) {
	start := time.Now()
	res, err := sess.Exec(strings.TrimSpace(stmt))
	elapsed := time.Since(start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
	switch {
	case res.Columns != nil && (res.Message == "" || len(res.Rows) > 0):
		fmt.Println(strings.Join(res.Columns, " | "))
		limit := len(res.Rows)
		const maxShow = 50
		for i := 0; i < limit && i < maxShow; i++ {
			parts := make([]string, len(res.Rows[i]))
			for j, v := range res.Rows[i] {
				parts[j] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		if limit > maxShow {
			fmt.Printf("... (%d more rows)\n", limit-maxShow)
		}
		mode := "row"
		if res.BatchMode {
			mode = "batch"
		}
		fmt.Printf("(%d rows, %v, %s mode", limit, elapsed.Round(time.Microsecond), mode)
		if res.Stats.RowGroupsEliminated > 0 {
			fmt.Printf(", %d/%d row groups eliminated", res.Stats.RowGroupsEliminated, res.Stats.RowGroups)
		}
		if res.Stats.StringColsCoded > 0 {
			fmt.Printf(", %d coded string gathers", res.Stats.StringColsCoded)
		}
		fmt.Println(")")
		if len(res.Operators) > 0 {
			parts := make([]string, len(res.Operators))
			for i, op := range res.Operators {
				w := ""
				if op.Workers > 1 {
					w = fmt.Sprintf("×%d", op.Workers)
				}
				parts[i] = fmt.Sprintf("%s%s %dr %v", op.Op, w, op.Rows, op.MaxWall.Round(time.Microsecond))
			}
			fmt.Printf("operators: %s\n", strings.Join(parts, " | "))
		}
	case res.Message == "":
		fmt.Printf("%d rows affected (%v)\n", res.Affected, elapsed.Round(time.Microsecond))
	}
}

func loadSSB(db *apollo.DB, sf float64) error {
	data := workload.GenSSB(sf, 42)
	load := []struct {
		name   string
		schema *apollo.Schema
		rows   []apollo.Row
	}{
		{"lineorder", workload.LineorderSchema, data.Lineorder},
		{"dwdate", workload.DateSchema, data.Date},
		{"customer", workload.CustomerSchema, data.Customer},
		{"supplier", workload.SupplierSchema, data.Supplier},
		{"part", workload.PartSchema, data.Part},
	}
	for _, l := range load {
		t, err := db.CreateTable(l.name, l.schema)
		if err != nil {
			return err
		}
		if err := t.BulkLoad(l.rows); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- client mode (-url): the same REPL over the apollod wire API ---

func clientREPL(url, key string) {
	ctx := context.Background()
	cl := client.New(url, key)
	// A server-side session makes BEGIN/COMMIT/ROLLBACK work across
	// requests, exactly like the embedded REPL's session.
	if err := cl.OpenSession(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "cssql: connect %s: %v\n", url, err)
		os.Exit(1)
	}
	defer cl.CloseSession(ctx)

	inTxn := false
	fmt.Printf("apollo SQL shell — connected to %s; end statements with ';', '.quit' to exit\n", url)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var stmt strings.Builder
	prompt := func() {
		if inTxn {
			fmt.Print("txn> ")
		} else {
			fmt.Print("sql> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if stmt.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if clientDot(ctx, cl, trimmed, &inTxn) {
				return
			}
			prompt()
			continue
		}
		stmt.WriteString(line)
		stmt.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			clientRun(ctx, cl, strings.TrimSpace(stmt.String()), &inTxn)
			stmt.Reset()
			prompt()
		} else if stmt.Len() > 0 {
			fmt.Print("  -> ")
		}
	}
}

// clientDot handles dot-commands in client mode; returns true to exit.
func clientDot(ctx context.Context, cl *client.Client, cmd string, inTxn *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".begin", ".commit", ".rollback":
		clientRun(ctx, cl, strings.TrimPrefix(fields[0], "."), inTxn)
	case ".explain":
		if len(fields) < 2 {
			fmt.Println("usage: .explain SELECT ...")
			break
		}
		plan, err := cl.Explain(ctx, strings.TrimPrefix(strings.TrimSpace(cmd), ".explain "), false)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(plan)
	case ".metrics":
		out, err := cl.Metrics(ctx)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if len(fields) == 2 {
			var kept []string
			for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
				name := line
				if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
					name = rest
				} else if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
					name = rest
				}
				if strings.HasPrefix(name, fields[1]) {
					kept = append(kept, line)
				}
			}
			out = strings.Join(kept, "\n") + "\n"
		}
		fmt.Print(out)
	default:
		fmt.Printf("unknown command %s (client mode supports .begin/.commit/.rollback/.explain/.metrics/.quit)\n", fields[0])
	}
	return false
}

// clientRun executes one statement over the wire, streaming SELECT rows.
func clientRun(ctx context.Context, cl *client.Client, stmt string, inTxn *bool) {
	start := time.Now()
	const maxShow = 50
	var shown, total int
	res, err := cl.QueryStream(ctx, stmt, nil,
		func(cols []client.Column) error {
			names := make([]string, len(cols))
			for i, c := range cols {
				names[i] = c.Name
			}
			fmt.Println(strings.Join(names, " | "))
			return nil
		},
		func(row []any) error {
			total++
			if shown >= maxShow {
				return nil
			}
			shown++
			parts := make([]string, len(row))
			for i, v := range row {
				switch x := v.(type) {
				case nil:
					parts[i] = "NULL"
				case float64:
					parts[i] = strings.TrimSuffix(fmt.Sprintf("%g", x), ".0")
				default:
					parts[i] = fmt.Sprint(x)
				}
			}
			fmt.Println(strings.Join(parts, " | "))
			return nil
		})
	elapsed := time.Since(start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	*inTxn = res.InTxn
	switch {
	case total > 0 || res.Message == "" && res.Affected == 0:
		if total > maxShow {
			fmt.Printf("... (%d more rows)\n", total-maxShow)
		}
		fmt.Printf("(%d rows, %v over the wire)\n", total, elapsed.Round(time.Microsecond))
	case res.Message != "":
		fmt.Println(res.Message)
	default:
		fmt.Printf("%d rows affected (%v)\n", res.Affected, elapsed.Round(time.Microsecond))
	}
}
