// Package apollo is an embeddable analytic database engine reproducing the
// system described in "Enhancements to SQL Server Column Stores" (Larson et
// al., SIGMOD 2013): updatable clustered columnstore tables (compressed row
// groups + delta stores + delete bitmaps + a background tuple mover),
// dictionary/value/RLE/bit-packed segment compression with an optional
// archival tier, and a query processor with both row-at-a-time and batch
// (vectorized) execution — including the expanded batch repertoire the paper
// introduces: all join types, UNION ALL, distinct and scalar aggregation,
// spilling, bitmap-filter pushdown, and segment elimination.
//
// Quick start:
//
//	db := apollo.Open(apollo.DefaultConfig())
//	defer db.Close()
//	db.MustExec(`CREATE TABLE sales (id BIGINT, amount DOUBLE, region VARCHAR, sold DATE)`)
//	db.MustExec(`INSERT INTO sales VALUES (1, 9.99, 'north', DATE '2013-06-22')`)
//	res, err := db.Query(`SELECT region, SUM(amount) FROM sales GROUP BY region`)
package apollo

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/catalog"
	"apollo/internal/degrade"
	"apollo/internal/exec/batchexec"
	"apollo/internal/metrics"
	"apollo/internal/persist"
	"apollo/internal/plan"
	"apollo/internal/qerr"
	"apollo/internal/scrub"
	"apollo/internal/sql"
	"apollo/internal/sqltypes"
	"apollo/internal/stats"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/txn"
	"apollo/internal/wal"
)

// ErrCorrupt matches mid-log WAL damage surfaced by OpenDir (a torn tail is
// repaired silently; anything else refuses to open). Use errors.Is.
var ErrCorrupt = wal.ErrCorrupt

// Value is a scalar SQL value.
type Value = sqltypes.Value

// Row is a tuple of values.
type Row = sqltypes.Row

// Schema describes a table's columns.
type Schema = sqltypes.Schema

// Column describes one column.
type Column = sqltypes.Column

// Type identifies a SQL type.
type Type = sqltypes.Type

// Re-exported column types.
const (
	Int64   = sqltypes.Int64
	Float64 = sqltypes.Float64
	Bool    = sqltypes.Bool
	String  = sqltypes.String
	Date    = sqltypes.Date
)

// Value constructors, re-exported for programmatic loads.
var (
	NewInt    = sqltypes.NewInt
	NewFloat  = sqltypes.NewFloat
	NewBool   = sqltypes.NewBool
	NewString = sqltypes.NewString
	NewDate   = sqltypes.NewDate
	NewNull   = sqltypes.NewNull

	// DateFromString parses "YYYY-MM-DD" into days since the Unix epoch.
	DateFromString = sqltypes.DateFromString
)

// ExecutionMode selects the query execution rule set (§5/§6).
type ExecutionMode = plan.Mode

// Execution modes: the full 2014 batch repertoire (default), the restricted
// 2012 repertoire with row-mode fallback, and row-at-a-time execution.
const (
	Mode2014 = plan.Mode2014
	Mode2012 = plan.Mode2012
	ModeRow  = plan.ModeRow
)

// Config configures a database instance.
type Config struct {
	// BufferPoolBytes sizes the storage buffer pool (0 disables caching so
	// every segment read is a cold read).
	BufferPoolBytes int64
	// Mode selects the execution rule set.
	Mode ExecutionMode
	// Parallel is the pipeline-wide degree of parallelism (<=1 serial): row
	// group workers at the scan, and above it exchange workers running
	// replicated filter/project stages into parallel partial aggregation and
	// partitioned parallel hash joins.
	Parallel int
	// MemoryBudget caps hash join/aggregation memory; exceeding it spills.
	// 0 = unlimited.
	MemoryBudget int64
	// RowGroupSize and BulkLoadThreshold default new tables' storage options
	// (the paper's values are 1M and 102,400 rows).
	RowGroupSize      int
	BulkLoadThreshold int
	// ArchiveTier stores new tables' segments under archival (DEFLATE)
	// compression — COLUMNSTORE_ARCHIVE.
	ArchiveTier bool
	// TupleMoverInterval starts a background tuple mover per table; 0 keeps
	// the tuple mover manual (REORGANIZE / FlushOpen).
	TupleMoverInterval time.Duration
	// Ablation switches used by the experiment harness.
	NoSegmentElimination bool
	NoBloom              bool
	NoReorder            bool
	// TraceWriter, when set, receives one JSON trace event per operator
	// lifecycle transition (open, next-batch, eos, error, close) for every
	// query, with monotonic timestamps. See metrics.TraceEvent for the
	// schema. The writer is shared across concurrent queries; events are
	// serialized, one object per line.
	TraceWriter io.Writer
	// CacheBudget, when set, makes the buffer pool draw from a byte budget
	// shared with other DBs in the process instead of a private
	// BufferPoolBytes pool — the multi-tenant configuration (see
	// NewCacheBudget and internal/server/broker).
	CacheBudget *CacheBudget
	// RandSeed seeds the database's private RNG (fault-injection seed
	// derivation and other instance-local randomness). 0 draws a seed from
	// the clock; set it to make runs reproducible per instance even when
	// many DBs share the process.
	RandSeed int64

	// Durability (OpenDir only; Open ignores these).

	// FsyncPolicy selects the WAL fsync discipline: "always" (default —
	// group commit, zero loss), "interval" (timer-driven, bounded loss), or
	// "off" (page cache only).
	FsyncPolicy string
	// FsyncInterval is the flush period under FsyncPolicy "interval"
	// (default 10ms).
	FsyncInterval time.Duration
	// WALSegmentBytes rotates WAL segment files at this size (default 16 MiB).
	WALSegmentBytes int64
	// WALCrashAt kills the process once the WAL has written this many
	// cumulative bytes (crash-injection testing; 0 disables).
	WALCrashAt int64

	// ScrubInterval starts the background integrity scrubber with one pass
	// per interval (0 keeps scrubbing manual via DB.Scrub / .scrub).
	ScrubInterval time.Duration
	// ScrubBytesPerSec paces the scrubber's verification throughput
	// (default 256 MiB/s).
	ScrubBytesPerSec int64
	// ProbeInterval sets how often a read-only (disk full) database probes
	// for reclaimed space to restore writability (default 500ms).
	ProbeInterval time.Duration
}

// DefaultConfig returns the production-like configuration.
func DefaultConfig() Config {
	return Config{
		BufferPoolBytes:    storage.DefaultBufferPoolBytes,
		Mode:               Mode2014,
		TupleMoverInterval: 100 * time.Millisecond,
	}
}

// CacheBudget is a byte budget shared by the buffer pools of several DBs in
// one process (see Config.CacheBudget). Create one with NewCacheBudget and
// attach it to every tenant's Config.
type CacheBudget = storage.Budget

// NewCacheBudget creates a shared buffer-pool budget of cap bytes.
func NewCacheBudget(cap int64) *CacheBudget { return storage.NewBudget(cap) }

// DB is a database instance.
type DB struct {
	cfg     Config
	store   *storage.Store
	cat     *catalog.Catalog
	engine  *sql.Engine
	wal     *wal.Writer // nil for in-memory databases
	txns    *txn.Manager
	dataDir string
	rec     RecoveryInfo
	closed  atomic.Bool

	// state is the write-availability state machine (healthy → read-only on
	// ENOSPC → poisoned on fsync failure); scrubber is the background
	// integrity worker. Both always non-nil after open.
	state    *degrade.State
	scrubber *scrub.Scrubber

	// Instance-local RNG (Config.RandSeed): fault-injection seed derivation
	// must not consume a process-global source, or one tenant's runs would
	// perturb another's reproducibility.
	rngMu   sync.Mutex
	rng     *rand.Rand
	rngSeed int64
}

// Open creates an in-process database.
func Open(cfg Config) *DB {
	store := storage.NewStore(cfg.BufferPoolBytes)
	cat := catalog.New(store)
	db := newDB(cfg, store, cat, nil, degrade.New())
	db.finishOpen()
	return db
}

// OpenDir opens (or creates) a durable database rooted at dir. Recovery runs
// first: the newest valid checkpoint image is restored and the write-ahead
// log is replayed over it, truncating a torn tail left by a crash. Damage
// anywhere else in the log fails the open with an error matching
// wal.ErrCorrupt. All DDL and DML on the returned DB is logged; durability
// of acknowledged writes follows cfg.FsyncPolicy.
func OpenDir(dir string, cfg Config) (*DB, error) {
	policy, err := wal.ParsePolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, err
	}
	store := storage.NewStore(cfg.BufferPoolBytes)
	cat := catalog.New(store)
	// The degrade state exists before the WAL writer so a poison fired at any
	// point in the writer's life — including recovery — lands in it.
	state := degrade.New()
	res, err := persist.Recover(dir, store, cat, wal.Options{
		Policy:       policy,
		Interval:     cfg.FsyncInterval,
		SegmentBytes: cfg.WALSegmentBytes,
		CrashAt:      cfg.WALCrashAt,
		OnPoison:     state.Poison,
	})
	if err != nil {
		return nil, fmt.Errorf("apollo: open %s: %w", dir, err)
	}
	db := newDB(cfg, store, cat, res.Writer, state)
	db.dataDir = dir
	db.rec = RecoveryInfo{
		CheckpointSeq:   res.CheckpointSeq,
		ReplayedRecords: res.ReplayedRecords,
		TruncatedTail:   res.TruncatedTail,
		OrphanBlobs:     res.OrphanBlobs,
		BlobsLoaded:     res.BlobsLoaded,
	}
	// Spills are scratch data; route them to a private in-memory store so
	// they never write through to the blob directory.
	db.engine.PlanOpts.SpillStore = storage.NewStore(cfg.BufferPoolBytes)
	// Recovered tables get their background movers started here (the engine
	// hook only fires for tables created through SQL).
	for _, name := range cat.List() {
		if t, err := cat.Get(name); err == nil {
			if cfg.TupleMoverInterval > 0 {
				t.StartTupleMover(cfg.TupleMoverInterval)
			}
			t.SetFailureObserver(db.state.Observe)
		}
	}
	db.finishOpen()
	return db, nil
}

func newDB(cfg Config, store *storage.Store, cat *catalog.Catalog, w *wal.Writer, state *degrade.State) *DB {
	topts := table.DefaultOptions()
	if cfg.RowGroupSize > 0 {
		topts.RowGroupSize = cfg.RowGroupSize
	}
	if cfg.BulkLoadThreshold > 0 {
		topts.BulkLoadThreshold = cfg.BulkLoadThreshold
	}
	if cfg.ArchiveTier {
		topts.Columnstore.Tier = storage.Archival
	}
	if cfg.NoReorder {
		topts.Columnstore.Reorder = false
	}
	// Bulk loads compress per-column segments concurrently with the same DOP
	// queries get (<=1 keeps the serial build).
	topts.Columnstore.BuildParallel = cfg.Parallel

	db := &DB{cfg: cfg, store: store, cat: cat, wal: w, state: state}
	db.rngSeed = cfg.RandSeed
	if db.rngSeed == 0 {
		db.rngSeed = time.Now().UnixNano()
	}
	db.rng = rand.New(rand.NewSource(db.rngSeed))
	if cfg.CacheBudget != nil {
		store.SetCacheBudget(cfg.CacheBudget)
	}
	db.txns = txn.NewManager(w)
	cat.SetClock(db.txns)
	var tracer *metrics.Tracer
	if cfg.TraceWriter != nil {
		tracer = metrics.NewTracer(cfg.TraceWriter)
	}
	db.engine = &sql.Engine{
		Cat: cat,
		PlanOpts: plan.Options{
			Mode:                 cfg.Mode,
			Parallel:             cfg.Parallel,
			MemoryBudget:         cfg.MemoryBudget,
			SpillStore:           store,
			NoSegmentElimination: cfg.NoSegmentElimination,
			NoBloom:              cfg.NoBloom,
			Tracer:               tracer,
		},
		TableOpts: topts,
		Txns:      db.txns,
		State:     state,
	}
	db.engine.OnCreate = func(t *table.Table) {
		if cfg.TupleMoverInterval > 0 {
			t.StartTupleMover(cfg.TupleMoverInterval)
		}
		// Background mover failures (ENOSPC, poisoned WAL) must degrade the
		// DB even though no session is on the path.
		t.SetFailureObserver(db.state.Observe)
	}
	return db
}

// finishOpen wires the durability-health plumbing that needs the fully
// constructed DB: fsync-failure poisoning from the blob backing, the
// read-only write probe, and the integrity scrubber.
func (db *DB) finishOpen() {
	if b := db.store.Backing(); b != nil {
		b.SetSyncFailHook(func(err error) {
			// A failed blob fsync is as unrecoverable as a failed WAL fsync:
			// the page cache may have dropped the dirty pages, so nothing
			// durable can be promised any more. Fail-stop both layers.
			db.state.Poison(err)
			if db.wal != nil {
				db.wal.Poison(err)
			}
		})
	}
	db.state.SetProbe(db.writeProbe, db.cfg.ProbeInterval)

	walDir := ""
	var below func() uint64
	var ckpt func() error
	if db.wal != nil {
		walDir = db.wal.Dir()
		below = func() uint64 { return db.wal.Stat().Seq }
		ckpt = func() error { _, err := db.Checkpoint(); return err }
	}
	db.scrubber = scrub.New(db.store, db.cat, walDir, below, ckpt, scrub.Options{
		Interval:    db.cfg.ScrubInterval,
		BytesPerSec: db.cfg.ScrubBytesPerSec,
	})
	if db.cfg.ScrubInterval > 0 {
		db.scrubber.Start()
	}
}

// writeProbe checks whether durable writes can currently succeed — the
// read-only auto-recovery probe. Both the blob store and the WAL must accept
// a write+fsync round trip.
func (db *DB) writeProbe() error {
	if err := db.store.WriteProbe(); err != nil {
		return err
	}
	if db.wal != nil {
		return db.wal.WriteProbe()
	}
	return nil
}

// Close stops background workers, rolling back every in-flight transaction
// (their sessions see ErrClosed). Statements racing Close fail with a typed
// ErrClosed instead of panicking: new statements are rejected at the door,
// and in-flight ones finish against their in-memory snapshots or surface
// ErrClosed from the transaction layer. For a durable database (OpenDir) it
// also flushes and closes the write-ahead log; for an in-memory one (Open),
// closing does not persist anything. Close is idempotent.
func (db *DB) Close() {
	if !db.closed.CompareAndSwap(false, true) {
		return
	}
	db.engine.SetClosed()
	if db.scrubber != nil {
		db.scrubber.Stop()
	}
	db.state.Close()
	db.txns.Close()
	db.cat.Close()
	if db.wal != nil {
		db.wal.Close() //nolint:synccheck — close error reflected in wal.Stat().Poisoned
	}
}

// Closed reports whether Close has been called.
func (db *DB) Closed() bool { return db.closed.Load() }

// --- Durability (OpenDir databases) ---

// RecoveryInfo summarizes what recovery did when a durable database opened.
type RecoveryInfo struct {
	CheckpointSeq   uint64 // replay point of the checkpoint image used (0 = none)
	ReplayedRecords int64  // WAL records applied over the image
	TruncatedTail   bool   // a torn tail was found and truncated
	OrphanBlobs     int    // unreferenced blob files garbage-collected
	BlobsLoaded     int    // blob files loaded from disk
}

// RecoveryInfo reports the recovery summary of an OpenDir database (zero
// value for in-memory databases).
func (db *DB) RecoveryInfo() RecoveryInfo { return db.rec }

// Durable reports whether the database persists to disk.
func (db *DB) Durable() bool { return db.wal != nil }

// Checkpoint writes a checkpoint image of every table and truncates the
// write-ahead log below it, bounding recovery time. Concurrent DML is safe
// (the checkpoint is fuzzy; replay is idempotent). Returns the new WAL
// replay point, or an error on an in-memory database.
func (db *DB) Checkpoint() (uint64, error) {
	if db.wal == nil {
		return 0, fmt.Errorf("apollo: checkpoint on an in-memory database")
	}
	if err := db.state.CheckWrite(); err != nil {
		return 0, err
	}
	seq, err := persist.WriteCheckpoint(db.dataDir, db.wal, db.cat, db.txns)
	if err != nil {
		// A checkpoint that died on ENOSPC or a failed fsync degrades the DB
		// like any other write; the pre-checkpoint image stays authoritative.
		db.state.Observe(err)
		err = db.state.Surface(err)
	}
	return seq, err
}

// WALStats reports the write-ahead log position (zero value for in-memory
// databases).
type WALStats = wal.Stats

// WALStats returns the current WAL position and fsync policy.
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return db.wal.Stat()
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (SELECT only).
	Columns []string
	// Rows holds SELECT results.
	Rows []Row
	// Affected is the DML row count.
	Affected int
	// Message carries DDL acknowledgements and EXPLAIN output.
	Message string
	// BatchMode reports the effective execution mode of a SELECT.
	BatchMode bool
	// MetadataOnly reports that a SELECT was answered entirely from segment
	// metadata (COUNT(*)/MIN/MAX shortcuts) without touching row data.
	MetadataOnly bool
	// Stats summarizes scan-level pushdown effects of a SELECT.
	Stats QueryStats
	// Operators summarizes per-operator execution of a batch-mode SELECT,
	// merged across exchange worker replicas (see OperatorStats).
	Operators []OperatorStats
}

// OperatorStats is one operator's merged execution summary: output batches
// and rows summed across its worker replicas, the replica count that actually
// ran, and the wall time of the slowest replica (replicas overlap, so summing
// their wall times would overstate elapsed time).
type OperatorStats struct {
	Op      string
	Workers int
	Batches int64
	Rows    int64
	MaxWall time.Duration
}

// QueryStats aggregates scan counters across a query's scans.
type QueryStats struct {
	RowGroups            int64 // row groups considered
	RowGroupsEliminated  int64 // skipped via segment metadata
	SegmentsOpened       int64
	RowsConsidered       int64
	RowsAfterRangePush   int64
	RowsAfterBloomFilter int64
	RowsOutput           int64
	DeltaRowsScanned     int64
	Spills               int64
	// Late materialization: per-batch string column gathers that stayed
	// dict-coded vs. those decoded eagerly at the scan.
	StringColsCoded        int64
	StringColsMaterialized int64
}

// Exec parses and executes one SQL statement under a background context.
func (db *DB) Exec(stmt string) (*Result, error) {
	return db.ExecContext(context.Background(), stmt)
}

// ExecContext parses and executes one SQL statement under ctx. SELECTs honor
// cancellation and deadlines at batch granularity through the whole operator
// tree, including parallel scan workers; a cancelled query returns ctx.Err()
// (possibly wrapped in a QueryError naming the operator that observed it —
// errors.Is(err, context.Canceled) still matches).
func (db *DB) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	r, err := db.engine.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

// convertResult maps an engine result to the public Result shape.
func convertResult(r *sql.Result) *Result {
	out := &Result{Rows: r.Rows, Affected: r.Affected, Message: r.Message}
	if r.Schema != nil {
		for _, c := range r.Schema.Cols {
			out.Columns = append(out.Columns, c.Name)
		}
	}
	if r.Compiled != nil {
		out.BatchMode = r.Compiled.BatchMode
		out.MetadataOnly = r.Compiled.MetadataOnly
		for _, st := range r.Compiled.ScanStats {
			out.Stats.RowGroups += st.Groups
			out.Stats.RowGroupsEliminated += st.GroupsEliminated
			out.Stats.SegmentsOpened += st.SegmentsOpened
			out.Stats.RowsConsidered += st.RowsConsidered
			out.Stats.RowsAfterRangePush += st.RowsAfterRange
			out.Stats.RowsAfterBloomFilter += st.RowsAfterBloom
			out.Stats.RowsOutput += st.RowsOutput
			out.Stats.DeltaRowsScanned += st.DeltaRows
			out.Stats.StringColsCoded += st.StringColsCoded
			out.Stats.StringColsMaterialized += st.StringColsMaterialized
		}
		if tr := r.Compiled.Tracker; tr != nil {
			out.Stats.Spills = tr.Spills()
		}
		out.Operators = mergeOpStats(r.Compiled.OpStats)
	}
	return out
}

// mergeOpStats folds per-instance operator counters into one row per
// operator name, in first-seen (roughly top-down plan) order. Instances that
// never ran — replicas on compiled-but-not-taken paths — are skipped.
func mergeOpStats(stats []*batchexec.OpStats) []OperatorStats {
	var merged []OperatorStats
	byOp := map[string]int{}
	for _, st := range stats {
		if st.Batches == 0 && st.WallNs == 0 {
			continue
		}
		i, ok := byOp[st.Op]
		if !ok {
			i = len(merged)
			byOp[st.Op] = i
			merged = append(merged, OperatorStats{Op: st.Op})
		}
		m := &merged[i]
		m.Workers++
		m.Batches += st.Batches
		m.Rows += st.Rows
		if w := time.Duration(st.WallNs); w > m.MaxWall {
			m.MaxWall = w
		}
	}
	return merged
}

// Query is Exec for SELECT statements (alias for readability).
func (db *DB) Query(stmt string) (*Result, error) { return db.Exec(stmt) }

// QueryContext is ExecContext for SELECT statements (alias for readability).
func (db *DB) QueryContext(ctx context.Context, stmt string) (*Result, error) {
	return db.ExecContext(ctx, stmt)
}

// MustExec runs a statement and panics on error (setup code and examples).
func (db *DB) MustExec(stmt string) *Result {
	r, err := db.Exec(stmt)
	if err != nil {
		panic(fmt.Sprintf("apollo: %v", err))
	}
	return r
}

// --- Programmatic table access ---

// Table is a handle to a clustered columnstore table for programmatic bulk
// operations that bypass SQL parsing.
type Table struct {
	t  *table.Table
	db *DB
}

// CreateTable creates a table programmatically.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	opts := db.engine.TableOpts
	t, err := db.cat.Create(name, schema, opts)
	if err != nil {
		return nil, err
	}
	if db.cfg.TupleMoverInterval > 0 {
		t.StartTupleMover(db.cfg.TupleMoverInterval)
	}
	t.SetFailureObserver(db.state.Observe)
	return &Table{t: t, db: db}, nil
}

// Table returns a handle to an existing table.
func (db *DB) Table(name string) (*Table, error) {
	t, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return &Table{t: t, db: db}, nil
}

// Tables lists table names.
func (db *DB) Tables() []string { return db.cat.List() }

// TableStats returns the optimizer's statistics snapshot for a table — live
// row count, per-column min/max/null counts, distinct estimates, and
// histograms — collecting or refreshing it through the planner's stats cache
// (the same snapshot cost-based optimization uses). SHOW STATS [FOR] name is
// the SQL equivalent.
func (db *DB) TableStats(name string) (*stats.TableStats, error) {
	ts, _, err := db.engine.TableStats(name)
	return ts, err
}

// BulkLoad loads rows through the bulk path (row groups compress directly
// when large enough; see §4.2).
func (t *Table) BulkLoad(rows []Row) error {
	return t.write(func() error { return t.t.BulkLoad(rows) })
}

// Insert trickle-inserts one row into the table's delta store.
func (t *Table) Insert(row Row) error {
	return t.write(func() error {
		_, err := t.t.Insert(row)
		return err
	})
}

// write gates a programmatic table write behind the DB's durability health
// and feeds its error back, mirroring the SQL path.
func (t *Table) write(fn func() error) error {
	if t.db != nil {
		if err := t.db.state.CheckWrite(); err != nil {
			return err
		}
	}
	err := fn()
	if err != nil && t.db != nil {
		t.db.state.Observe(err)
		err = t.db.state.Surface(err)
	}
	return err
}

// Reorganize force-closes the open delta store and drains the tuple mover.
func (t *Table) Reorganize() error { return t.t.FlushOpen() }

// Sample draws up to n rows uniformly at random via bookmarks (§4.4).
func (t *Table) Sample(n int, seed int64) []Row {
	return t.t.Sample(n, rand.New(rand.NewSource(seed)))
}

// TableStats summarizes a table's physical state.
type TableStats struct {
	CompressedGroups int
	CompressedRows   int
	DeltaRows        int
	DeletedRows      int
	DiskBytes        int
	RawBytes         int
}

// Stats returns the table's physical statistics.
func (t *Table) Stats() TableStats {
	s := t.t.Stat()
	return TableStats{
		CompressedGroups: s.CompressedGroups,
		CompressedRows:   s.CompressedRows,
		DeltaRows:        s.DeltaRows,
		DeletedRows:      s.DeletedRows,
		DiskBytes:        s.DiskBytes,
		RawBytes:         s.RawBytes,
	}
}

// Rows returns the live row count.
func (t *Table) Rows() int { return t.t.Rows() }

// TableHealth is a snapshot of a table's tuple-mover health: success and
// failure counters, the last error, and the current retry backoff. See
// table.Health for field semantics.
type TableHealth = table.Health

// Health returns the table's tuple-mover health snapshot.
func (t *Table) Health() TableHealth { return t.t.Health() }

// --- Fault injection (testing / chaos engineering) ---

// FaultConfig configures probabilistic storage fault injection: transient
// read/write errors, read-side bit-flip corruption (caught by segment
// checksums), and added read latency. See storage.FaultConfig.
type FaultConfig = storage.FaultConfig

// InjectStorageFaults installs a fault injector on the database's blob
// store. Transient read errors are retried with bounded exponential backoff;
// corruption fails fast with an error naming the blob. Pass a zero rate
// config with only ReadLatency set to simulate slow storage. Returns the
// resolved RNG seed (cfg.Seed, or drawn from the database's private RNG when
// 0 — see Config.RandSeed) so a failing run can be replayed exactly; with
// Config.RandSeed set, the sequence of derived seeds is itself reproducible
// per instance, independent of other DBs in the process.
func (db *DB) InjectStorageFaults(cfg FaultConfig) int64 {
	if cfg.Seed == 0 {
		db.rngMu.Lock()
		cfg.Seed = db.rng.Int63()
		if cfg.Seed == 0 { // Int63 can return 0; 0 means "pick for me"
			cfg.Seed = 1
		}
		db.rngMu.Unlock()
	}
	inj := storage.NewFaultInjector(cfg)
	db.store.SetFaultInjector(inj)
	return inj.Seed()
}

// ClearStorageFaults removes any installed fault injector.
func (db *DB) ClearStorageFaults() { db.store.SetFaultInjector(nil) }

// WALFaults configures deterministic write-ahead-log fault injection.
type WALFaults struct {
	// AppendNoSpaceAt makes the Nth WAL append from now (1 = the next one)
	// and every later append fail with ENOSPC until cleared. 0 disables.
	AppendNoSpaceAt int64
	// FailSyncAt makes the Nth fsync from now fail (one-shot), permanently
	// poisoning the writer — the fail-stop path. 0 disables.
	FailSyncAt int64
}

// InjectWALFaults arms deterministic WAL faults on a durable database:
// ENOSPC on append (recoverable read-only degradation) and fsync failure
// (permanent fail-stop). No-op on in-memory databases.
func (db *DB) InjectWALFaults(f WALFaults) {
	if db.wal == nil {
		return
	}
	if f.AppendNoSpaceAt > 0 {
		db.wal.SetAppendNoSpace(f.AppendNoSpaceAt)
	}
	if f.FailSyncAt > 0 {
		db.wal.SetFailSync(f.FailSyncAt)
	}
}

// ClearWALFaults disarms injected WAL faults. A poison that already fired is
// permanent — only restart clears it, by design.
func (db *DB) ClearWALFaults() {
	if db.wal != nil {
		db.wal.SetAppendNoSpace(0)
		db.wal.SetFailSync(0)
	}
}

// --- Durability health & integrity scrubbing ---

// ErrReadOnly is matched (errors.Is) by every write rejected while the
// database is degraded to read-only after disk exhaustion. Reads keep
// working; the auto-probe restores writability once space returns.
var ErrReadOnly = degrade.ErrReadOnly

// ErrWALPoisoned is matched (errors.Is) by every write rejected after a
// failed fsync permanently fail-stopped the database (fsyncgate semantics:
// a failed fsync may have dropped the dirty pages, so no later fsync can be
// trusted; restart and recover from the log instead).
var ErrWALPoisoned = wal.ErrPoisoned

// IsReadOnlyError reports whether err is (or wraps) the read-only rejection.
func IsReadOnlyError(err error) bool { return errors.Is(err, degrade.ErrReadOnly) }

// IsPoisonedError reports whether err is (or wraps) the fail-stop rejection.
func IsPoisonedError(err error) bool { return errors.Is(err, wal.ErrPoisoned) }

// HealthMode is the database's write-availability mode.
type HealthMode = degrade.Mode

// Write-availability modes, increasing severity: writes accepted; writes
// rejected until disk space returns; writes rejected until restart.
const (
	ModeHealthy  = degrade.Healthy
	ModeReadOnly = degrade.ReadOnly
	ModePoisoned = degrade.Poisoned
)

// Health is a point-in-time durability-health snapshot of the database.
type Health struct {
	Mode  HealthMode // healthy / read_only / poisoned
	Cause string     // failure that entered the current mode ("" when healthy)
	Since time.Time  // when the current mode was entered
	// ReadOnlyEntered / Recovered count lifetime degrade/recover round trips.
	ReadOnlyEntered int64
	Recovered       int64
	WAL             WALStats               // log position, fsync counters, poisoned flag
	ScrubPasses     int64                  // completed integrity-scrub passes
	LastScrub       *ScrubReport           // most recent pass (nil if none yet)
	Tables          map[string]TableHealth // per-table mover + quarantine health
}

// Health reports the database's durability health: write-availability mode,
// WAL state, scrub progress, and per-table degradation.
func (db *DB) Health() Health {
	st := db.state.Snapshot()
	h := Health{
		Mode:            st.Mode,
		Since:           st.Since,
		ReadOnlyEntered: st.ReadOnlyEntered,
		Recovered:       st.Recovered,
		WAL:             db.WALStats(),
		Tables:          make(map[string]TableHealth),
	}
	if st.Cause != nil {
		h.Cause = st.Cause.Error()
	}
	if db.scrubber != nil {
		h.LastScrub, h.ScrubPasses = db.scrubber.Last()
	}
	for _, name := range db.cat.List() {
		if t, err := db.cat.Get(name); err == nil {
			h.Tables[name] = t.Health()
		}
	}
	return h
}

// ScrubReport summarizes one integrity-scrub pass. See scrub.Report.
type ScrubReport = scrub.Report

// Scrub runs one integrity-scrub pass synchronously: every blob's at-rest
// copies are checksum-verified (repairing from a surviving good copy,
// quarantining blobs corrupt everywhere) and closed WAL segments are
// re-validated. Safe alongside concurrent queries and the background
// scrubber.
func (db *DB) Scrub(ctx context.Context) (*ScrubReport, error) {
	return db.scrubber.RunPass(ctx)
}

// ScrubOptions override one manual scrub pass. BytesPerSec caps verification
// throughput for that pass: 0 uses the database's configured budget, a
// negative value disables pacing entirely (full-speed operator-forced pass).
type ScrubOptions struct {
	BytesPerSec int64
}

// ScrubWith is Scrub with per-pass overrides.
func (db *DB) ScrubWith(ctx context.Context, o ScrubOptions) (*ScrubReport, error) {
	if o.BytesPerSec == 0 {
		return db.scrubber.RunPass(ctx)
	}
	return db.scrubber.RunPassPaced(ctx, o.BytesPerSec)
}

// QuarantinedBlobs lists blob ids the scrubber has quarantined.
func (db *DB) QuarantinedBlobs() []uint64 {
	ids := db.store.Quarantined()
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// IsTransientError reports whether err is (or wraps) a transient storage
// fault that was retried and still failed.
func IsTransientError(err error) bool { return storage.IsTransient(err) }

// IsCorruptionError reports whether err is (or wraps) a storage corruption
// (checksum mismatch) error.
func IsCorruptionError(err error) bool { return storage.IsCorruption(err) }

// IsQueryError reports whether err is a structured query-execution error
// (operator-attributed failure, contained panic, or cancellation observed
// inside the operator tree).
func IsQueryError(err error) bool { return qerr.Is(err) }

// IOStats reports storage-level counters for the whole database.
type IOStats = storage.IOStats

// IOStats returns the database's cumulative storage counters.
func (db *DB) IOStats() IOStats { return db.store.Stats() }

// ResetIOStats zeroes the storage counters (benchmark harness use).
func (db *DB) ResetIOStats() { db.store.ResetStats() }

// EvictCaches empties the buffer pool so subsequent reads are cold.
func (db *DB) EvictCaches() { db.store.EvictAll() }

// DiskBytes reports total at-rest storage bytes.
func (db *DB) DiskBytes() int64 { return db.store.SizeOnDisk() }

// --- Engine metrics ---

// WriteMetrics dumps the process-wide engine metrics registry to w in
// Prometheus text exposition format: storage I/O and fault counters, segment
// decode histograms, scan/pushdown counters, operator fast-path hit rates,
// exchange worker activity, tuple-mover health gauges, and plan-compilation
// counters. The registry is shared by every DB in the process.
func (db *DB) WriteMetrics(w io.Writer) error { return metrics.Default.WriteText(w) }

// MetricsSnapshot returns the current value of every registered engine
// metric, keyed by metric name (histograms contribute name_count and
// name_sum entries). Useful for asserting deltas in tests.
func (db *DB) MetricsSnapshot() map[string]float64 { return metrics.Default.Snapshot() }
