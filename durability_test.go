package apollo_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"apollo"
)

func durableCfg() apollo.Config {
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 0
	cfg.RowGroupSize = 8
	cfg.FsyncPolicy = "always"
	return cfg
}

func tableIDs(t *testing.T, db *apollo.DB, table string) []int64 {
	t.Helper()
	res, err := db.Query("SELECT id FROM " + table + " ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		ids[i] = r[0].I
	}
	return ids
}

// TestDurableRoundTrip: everything acknowledged before Close survives a
// reopen — delta rows, compressed groups, deletes against both, and DDL.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE r (id BIGINT, region VARCHAR, amount DOUBLE)")
	for i := 1; i <= 20; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO r VALUES (%d, 'reg-%d', %d.5)", i, i%3, i))
	}
	tb, err := db.Table("r")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Reorganize(); err != nil {
		t.Fatal(err)
	}
	db.MustExec("DELETE FROM r WHERE id = 7")  // compressed row
	db.MustExec("INSERT INTO r VALUES (21, 'reg-0', 21.5)")
	db.MustExec("DELETE FROM r WHERE id = 21") // delta row
	want := tableIDs(t, db, "r")
	stats := tb.Stats()
	if stats.CompressedGroups == 0 {
		t.Fatal("workload produced no compressed groups; test is not exercising publish replay")
	}
	db.Close()

	db2, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := tableIDs(t, db2, "r")
	if len(got) != len(want) {
		t.Fatalf("row count changed across restart: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got id %d, want %d", i, got[i], want[i])
		}
	}
	rec := db2.RecoveryInfo()
	if rec.ReplayedRecords == 0 {
		t.Fatal("reopen replayed no WAL records")
	}
	if rec.TruncatedTail {
		t.Fatal("clean shutdown flagged a torn tail")
	}
	// Aggregates read through the recovered compressed segments.
	res, err := db2.Query("SELECT SUM(amount) FROM r WHERE id <= 20")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := 0.0
	for i := 1; i <= 20; i++ {
		if i != 7 {
			wantSum += float64(i) + 0.5
		}
	}
	if got := res.Rows[0][0].F; got != wantSum {
		t.Fatalf("SUM(amount) after recovery: got %v, want %v", got, wantSum)
	}
}

// TestCheckpointTruncatesWAL: a checkpoint bounds replay — segments below
// the replay point are deleted and the next recovery replays only records
// logged after the checkpoint.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE c (id BIGINT, v VARCHAR)")
	for i := 1; i <= 50; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO c VALUES (%d, 'v%d')", i, i))
	}
	seq, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("checkpoint returned seq 0")
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		var got uint64
		if _, err := fmt.Sscanf(filepath.Base(s), "%d.wal", &got); err == nil && got < seq {
			t.Fatalf("segment %s survived checkpoint at seq %d", s, seq)
		}
	}
	if m, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt")); err != nil || len(m) != 1 {
		t.Fatalf("want exactly one checkpoint image, got %v (%v)", m, err)
	}
	db.MustExec("INSERT INTO c VALUES (51, 'post')")
	db.Close()

	db2, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rec := db2.RecoveryInfo()
	if rec.CheckpointSeq != seq {
		t.Fatalf("recovery used checkpoint seq %d, want %d", rec.CheckpointSeq, seq)
	}
	// Only the post-checkpoint insert (plus checkpoint markers) should replay
	// — far fewer than the 50 pre-checkpoint inserts.
	if rec.ReplayedRecords > 10 {
		t.Fatalf("checkpoint did not bound replay: %d records replayed", rec.ReplayedRecords)
	}
	if got := tableIDs(t, db2, "c"); len(got) != 51 {
		t.Fatalf("got %d rows after checkpointed recovery, want 51", len(got))
	}
}

// TestTornTailTruncatedSilently: garbage appended to the last segment (a
// torn write's signature) is dropped without error and flagged in the
// recovery summary; all complete records survive.
func TestTornTailTruncatedSilently(t *testing.T) {
	dir := t.TempDir()
	db, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE tt (id BIGINT, v VARCHAR)")
	for i := 1; i <= 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO tt VALUES (%d, 'v%d')", i, i))
	}
	db.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible-length prefix with a body that never arrived.
	if _, err := f.Write([]byte{40, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatalf("torn tail should recover silently, got %v", err)
	}
	defer db2.Close()
	if !db2.RecoveryInfo().TruncatedTail {
		t.Fatal("torn tail not reported in recovery summary")
	}
	if got := tableIDs(t, db2, "tt"); len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}

	// The repair was physical: a third open sees a clean log.
	db3, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.RecoveryInfo().TruncatedTail {
		t.Fatal("tail repair did not persist; second recovery saw the tear again")
	}
}

// TestDurabilityMetrics: the WAL and recovery counters the observability
// layer promises actually move.
func TestDurabilityMetrics(t *testing.T) {
	dir := t.TempDir()
	db, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	before := db.MetricsSnapshot()
	db.MustExec("CREATE TABLE m (id BIGINT)")
	for i := 0; i < 5; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO m VALUES (%d)", i))
	}
	after := db.MetricsSnapshot()
	for _, name := range []string{"apollo_wal_appends_total", "apollo_wal_bytes_total", "apollo_wal_fsyncs_total"} {
		if after[name] <= before[name] {
			t.Errorf("%s did not increase (%v -> %v)", name, before[name], after[name])
		}
	}
	db.Close()

	db2, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	post := db2.MetricsSnapshot()
	if post["apollo_recovery_replayed_records_total"] <= after["apollo_recovery_replayed_records_total"] {
		t.Error("apollo_recovery_replayed_records_total did not increase across recovery")
	}
}

// TestInMemoryUnaffected: Open (no dir) still works with durability compiled
// in — no WAL, checkpoint refused, zero recovery info.
func TestInMemoryUnaffected(t *testing.T) {
	db := apollo.Open(apollo.DefaultConfig())
	defer db.Close()
	if db.Durable() {
		t.Fatal("in-memory DB claims durability")
	}
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint on in-memory DB did not error")
	}
	db.MustExec("CREATE TABLE x (id BIGINT)")
	db.MustExec("INSERT INTO x VALUES (1)")
	if got := db.WALStats(); got.TotalBytes != 0 {
		t.Fatalf("in-memory DB wrote WAL bytes: %+v", got)
	}
}

// TestDropTableDurable: DDL replays — a dropped table stays dropped.
func TestDropTableDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE gone (id BIGINT)")
	db.MustExec("INSERT INTO gone VALUES (1)")
	db.MustExec("CREATE TABLE kept (id BIGINT)")
	db.MustExec("INSERT INTO kept VALUES (2)")
	db.MustExec("DROP TABLE gone")
	db.Close()

	db2, err := apollo.OpenDir(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Table("gone"); err == nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	if got := tableIDs(t, db2, "kept"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("kept table damaged: %v", got)
	}
}
