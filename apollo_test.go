package apollo

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RowGroupSize = 300
	cfg.BulkLoadThreshold = 50
	cfg.TupleMoverInterval = 0 // manual in tests
	db := Open(cfg)
	t.Cleanup(db.Close)
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openTest(t)
	db.MustExec("CREATE TABLE sales (id BIGINT NOT NULL, amount DOUBLE, region VARCHAR NOT NULL, sold DATE NOT NULL)")
	db.MustExec("INSERT INTO sales VALUES (1, 9.99, 'north', DATE '2013-06-22'), (2, 5.00, 'south', DATE '2013-06-23'), (3, NULL, 'north', DATE '2013-06-24')")
	res, err := db.Query("SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "region" || res.Columns[2] != "total" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].S != "north" || res.Rows[0][1].I != 2 || res.Rows[0][2].F != 9.99 {
		t.Fatalf("north row = %v", res.Rows[0])
	}
	if !res.BatchMode {
		t.Fatal("default mode should be batch")
	}
}

func TestProgrammaticBulkLoad(t *testing.T) {
	db := openTest(t)
	schema := &Schema{Cols: []Column{
		{Name: "k", Typ: Int64},
		{Name: "v", Typ: String},
	}}
	tb, err := db.CreateTable("kv", schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i)), NewString("v")}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	st := tb.Stats()
	if st.CompressedRows != 1000 || st.CompressedGroups != 4 {
		t.Fatalf("stats = %+v", st)
	}
	res := db.MustExec("SELECT COUNT(*) FROM kv")
	if res.Rows[0][0].I != 1000 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if tb.Rows() != 1000 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if len(tb.Sample(10, 1)) != 10 {
		t.Fatal("sample failed")
	}
}

func TestBackgroundTupleMoverViaSQL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RowGroupSize = 100
	cfg.BulkLoadThreshold = 1000
	cfg.TupleMoverInterval = 2 * time.Millisecond
	db := Open(cfg)
	defer db.Close()
	db.MustExec("CREATE TABLE t (a BIGINT)")
	for i := 0; i < 30; i++ {
		db.MustExec("INSERT INTO t VALUES (1),(2),(3),(4),(5),(6),(7),(8),(9),(10)")
	}
	tb, _ := db.Table("t")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tb.Stats().CompressedRows == 300 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tb.Stats().CompressedRows; got != 300 {
		t.Fatalf("tuple mover left %d compressed rows", got)
	}
}

func TestQueryStatsExposed(t *testing.T) {
	db := openTest(t)
	db.MustExec("CREATE TABLE t (a BIGINT NOT NULL, b BIGINT NOT NULL)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 900; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(")
		sb.WriteString(itoa(i))
		sb.WriteString(",1)")
	}
	db.MustExec(sb.String())
	res := db.MustExec("SELECT COUNT(*) FROM t WHERE a < 100")
	if res.Stats.RowGroups == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
	if res.Stats.RowGroupsEliminated == 0 {
		t.Fatalf("expected segment elimination on sorted load: %+v", res.Stats)
	}
}

func itoa(i int) string {
	return NewInt(int64(i)).String()
}

func TestIOStatsAndEviction(t *testing.T) {
	db := openTest(t)
	db.MustExec("CREATE TABLE t (a BIGINT NOT NULL)")
	db.MustExec("INSERT INTO t VALUES (1),(2),(3),(4),(5),(6),(7),(8),(9),(10)," +
		"(11),(12),(13),(14),(15),(16),(17),(18),(19),(20)," +
		"(21),(22),(23),(24),(25),(26),(27),(28),(29),(30)," +
		"(31),(32),(33),(34),(35),(36),(37),(38),(39),(40)," +
		"(41),(42),(43),(44),(45),(46),(47),(48),(49),(50)")
	tb, _ := db.Table("t")
	tb.Reorganize()
	db.ResetIOStats()
	db.EvictCaches()
	db.MustExec("SELECT SUM(a) FROM t")
	cold := db.IOStats()
	if cold.Reads == 0 {
		t.Fatal("no cold reads recorded")
	}
	db.ResetIOStats()
	db.MustExec("SELECT SUM(a) FROM t")
	warm := db.IOStats()
	if warm.CacheHits == 0 || warm.Reads >= cold.Reads {
		t.Fatalf("buffer pool ineffective: cold=%+v warm=%+v", cold, warm)
	}
	if db.DiskBytes() == 0 {
		t.Fatal("disk bytes = 0")
	}
}

func TestArchiveTierConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RowGroupSize = 100
	cfg.BulkLoadThreshold = 10
	cfg.ArchiveTier = true
	cfg.TupleMoverInterval = 0
	db := Open(cfg)
	defer db.Close()
	db.MustExec("CREATE TABLE t (s VARCHAR NOT NULL)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("('the quick brown fox jumps over the lazy dog')")
	}
	db.MustExec(sb.String())
	res := db.MustExec("SELECT COUNT(*) FROM t WHERE s LIKE 'the%'")
	if res.Rows[0][0].I != 500 {
		t.Fatalf("archival tier query = %v", res.Rows[0][0])
	}
}

func TestModesConfig(t *testing.T) {
	for _, mode := range []ExecutionMode{Mode2014, Mode2012, ModeRow} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.TupleMoverInterval = 0
		db := Open(cfg)
		db.MustExec("CREATE TABLE t (a BIGINT)")
		db.MustExec("INSERT INTO t VALUES (1), (2)")
		res := db.MustExec("SELECT SUM(a) FROM t")
		if res.Rows[0][0].I != 3 {
			t.Fatalf("mode %v: sum = %v", mode, res.Rows[0][0])
		}
		db.Close()
	}
}

func TestMetadataOnlyCount(t *testing.T) {
	db := openTest(t)
	db.MustExec("CREATE TABLE t (a BIGINT NOT NULL)")
	db.MustExec("INSERT INTO t VALUES (5), (1), (9)")
	res := db.MustExec("SELECT COUNT(*), MIN(a), MAX(a) FROM t")
	if !res.MetadataOnly {
		t.Fatal("expected metadata-only answer")
	}
	r := res.Rows[0]
	if r[0].I != 3 || r[1].I != 1 || r[2].I != 9 {
		t.Fatalf("row = %v", r)
	}
	// A filter disables the shortcut but yields the same kind of answer.
	res2 := db.MustExec("SELECT COUNT(*) FROM t WHERE a > 1")
	if res2.MetadataOnly || res2.Rows[0][0].I != 2 {
		t.Fatalf("filtered count: %+v %v", res2.MetadataOnly, res2.Rows[0])
	}
}

// TestConcurrentWorkload drives SQL DML and queries concurrently with the
// background tuple mover — the paper's mixed OLTP-ish/analytic scenario.
// Invariants: queries never fail, never see a row twice, and the final count
// reconciles inserts minus deletes.
func TestConcurrentWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RowGroupSize = 500
	cfg.BulkLoadThreshold = 100
	cfg.TupleMoverInterval = time.Millisecond
	db := Open(cfg)
	defer db.Close()
	db.MustExec("CREATE TABLE ev (id BIGINT NOT NULL, v BIGINT NOT NULL)")

	const writers = 3
	const perWriter = 2000
	done := make(chan struct{})
	errs := make(chan error, 16)

	for w := 0; w < writers; w++ {
		go func(w int) {
			tb, _ := db.Table("ev")
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				if err := tb.Insert(Row{NewInt(id), NewInt(id % 7)}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}

	// Concurrent readers.
	go func() {
		for {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			res, err := db.Query("SELECT COUNT(*), COUNT(DISTINCT id) FROM ev")
			if err != nil {
				errs <- err
				return
			}
			if res.Rows[0][0].I != res.Rows[0][1].I {
				errs <- fmt.Errorf("duplicate ids visible: %v", res.Rows[0])
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	del := db.MustExec("DELETE FROM ev WHERE id % 10 = 0")
	want := writers*perWriter - del.Affected
	res := db.MustExec("SELECT COUNT(*) FROM ev")
	if int(res.Rows[0][0].I) != want {
		t.Fatalf("count = %v, want %d", res.Rows[0][0], want)
	}
}
