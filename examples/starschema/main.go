// Starschema: load a Star Schema Benchmark warehouse and run the 13-query
// suite in row mode and batch mode, reproducing the paper's headline
// comparison interactively. Run with -sf to change the scale factor.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"apollo"
	"apollo/internal/workload"
)

func main() {
	sf := flag.Float64("sf", 0.5, "SSB scale factor (1.0 = 60k fact rows)")
	parallel := flag.Int("parallel", 4, "batch-mode scan DOP")
	flag.Parse()

	fmt.Printf("generating SSB SF=%.2f ...\n", *sf)
	data := workload.GenSSB(*sf, 42)

	mkDB := func(mode apollo.ExecutionMode, par int) *apollo.DB {
		cfg := apollo.DefaultConfig()
		cfg.Mode = mode
		cfg.Parallel = par
		cfg.TupleMoverInterval = 0
		cfg.RowGroupSize = 1 << 16
		cfg.BulkLoadThreshold = 4096
		db := apollo.Open(cfg)
		for _, l := range []struct {
			name   string
			schema *apollo.Schema
			rows   []apollo.Row
		}{
			{"lineorder", workload.LineorderSchema, data.Lineorder},
			{"dwdate", workload.DateSchema, data.Date},
			{"customer", workload.CustomerSchema, data.Customer},
			{"supplier", workload.SupplierSchema, data.Supplier},
			{"part", workload.PartSchema, data.Part},
		} {
			t, err := db.CreateTable(l.name, l.schema)
			if err != nil {
				log.Fatal(err)
			}
			if err := t.BulkLoad(l.rows); err != nil {
				log.Fatal(err)
			}
		}
		return db
	}

	rowDB := mkDB(apollo.ModeRow, 0)
	defer rowDB.Close()
	batchDB := mkDB(apollo.Mode2014, *parallel)
	defer batchDB.Close()

	fmt.Printf("%-6s %12s %12s %9s %8s\n", "query", "row mode", "batch mode", "speedup", "rows")
	for _, q := range workload.SSBQueries() {
		tRow := runBest(rowDB, q.SQL)
		tBatch := runBest(batchDB, q.SQL)
		res, err := batchDB.Query(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		fmt.Printf("%-6s %12v %12v %8.1fx %8d\n",
			q.Name, tRow.Round(time.Microsecond), tBatch.Round(time.Microsecond),
			float64(tRow)/float64(tBatch), len(res.Rows))
	}
	fmt.Println("\nbatch mode amortizes per-row costs over ~900-row vector batches;")
	fmt.Println("pushed-down predicates, segment elimination, and bitmap filters do the rest.")
}

func runBest(db *apollo.DB, sql string) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := db.Query(sql); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		if i == 0 || el < best {
			best = el
		}
	}
	return best
}
