// Archival: compares the COLUMNSTORE and COLUMNSTORE_ARCHIVE tiers (§3 of
// the paper): archival compression shrinks cold data further by running a
// DEFLATE pass over the already-compressed segments, at the cost of
// decompression CPU on first access.
package main

import (
	"fmt"
	"log"
	"time"

	"apollo"
	"apollo/internal/workload"
)

func main() {
	data := workload.GenSSB(1.0, 42).Lineorder
	fmt.Printf("dataset: %d lineorder rows\n\n", len(data))
	fmt.Printf("%-10s %12s %10s %12s %12s\n", "tier", "disk bytes", "ratio", "cold query", "warm query")

	for _, archive := range []bool{false, true} {
		cfg := apollo.DefaultConfig()
		cfg.ArchiveTier = archive
		cfg.TupleMoverInterval = 0
		cfg.RowGroupSize = 1 << 16
		cfg.BulkLoadThreshold = 4096
		db := apollo.Open(cfg)

		tbl, err := db.CreateTable("lineorder", workload.LineorderSchema)
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.BulkLoad(data); err != nil {
			log.Fatal(err)
		}

		query := `SELECT SUM(lo_revenue), AVG(lo_quantity), COUNT(*) FROM lineorder WHERE lo_discount BETWEEN 1 AND 3`

		db.EvictCaches()
		start := time.Now()
		if _, err := db.Query(query); err != nil {
			log.Fatal(err)
		}
		cold := time.Since(start)

		start = time.Now()
		if _, err := db.Query(query); err != nil {
			log.Fatal(err)
		}
		warm := time.Since(start)

		st := tbl.Stats()
		name := "NORMAL"
		if archive {
			name = "ARCHIVE"
		}
		fmt.Printf("%-10s %12d %9.1fx %12v %12v\n",
			name, st.DiskBytes, float64(st.RawBytes)/float64(st.DiskBytes),
			cold.Round(time.Microsecond), warm.Round(time.Microsecond))
		db.Close()
	}

	fmt.Println("\nARCHIVE trades first-touch CPU for bytes — the paper's recommendation")
	fmt.Println("is to use it for cold data that is rarely queried.")
}
