// Quickstart: open a database, create a clustered columnstore table, load
// data through SQL and the programmatic API, and run analytic queries.
package main

import (
	"fmt"
	"log"

	"apollo"
)

func main() {
	db := apollo.Open(apollo.DefaultConfig())
	defer db.Close()

	// DDL: every table is an updatable clustered columnstore.
	db.MustExec(`CREATE TABLE sales (
		id      BIGINT  NOT NULL,
		amount  DOUBLE,
		region  VARCHAR NOT NULL,
		sold    DATE    NOT NULL
	)`)

	// Small INSERTs trickle into a delta store; the background tuple mover
	// compresses them into columnstore row groups once enough accumulate.
	db.MustExec(`INSERT INTO sales VALUES
		(1, 129.99, 'north', DATE '2013-06-20'),
		(2,  85.50, 'south', DATE '2013-06-21'),
		(3,  42.00, 'north', DATE '2013-06-22'),
		(4,   NULL, 'east',  DATE '2013-06-22')`)

	// Programmatic bulk load for bigger batches (compresses directly when
	// the batch crosses the bulk-load threshold).
	tbl, err := db.Table("sales")
	if err != nil {
		log.Fatal(err)
	}
	var rows []apollo.Row
	day, _ := apollo.DateFromString("2013-06-23")
	for i := 5; i < 200000; i++ {
		rows = append(rows, apollo.Row{
			apollo.NewInt(int64(i)),
			apollo.NewFloat(float64(i%500) + 0.99),
			apollo.NewString([]string{"north", "south", "east", "west"}[i%4]),
			apollo.NewDate(day + int64(i%365)),
		})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		log.Fatal(err)
	}

	// Analytics run in batch (vectorized) mode by default.
	res, err := db.Query(`
		SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS avg_amount
		FROM sales
		WHERE sold BETWEEN DATE '2013-06-22' AND DATE '2014-01-01'
		GROUP BY region
		ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("region | n | total | avg")
	for _, r := range res.Rows {
		fmt.Printf("%-6s | %6d | %12.2f | %8.2f\n", r[0].S, r[1].I, r[2].F, r[3].F)
	}

	// DML: deletes mark rows in the delete bitmap; updates are delete+insert.
	del := db.MustExec(`DELETE FROM sales WHERE region = 'west' AND amount < 100`)
	fmt.Printf("\ndeleted %d rows\n", del.Affected)
	upd := db.MustExec(`UPDATE sales SET amount = amount * 1.1 WHERE region = 'north' AND id < 100`)
	fmt.Printf("updated %d rows\n", upd.Affected)

	// Physical state: compressed row groups vs delta rows, compression ratio.
	st := tbl.Stats()
	fmt.Printf("\nrow groups: %d  compressed rows: %d  delta rows: %d  deleted: %d\n",
		st.CompressedGroups, st.CompressedRows, st.DeltaRows, st.DeletedRows)
	fmt.Printf("on disk: %d bytes (raw %d, %.1fx compression)\n",
		st.DiskBytes, st.RawBytes, float64(st.RawBytes)/float64(st.DiskBytes))

	// EXPLAIN shows the optimized plan and the chosen execution mode.
	ex := db.MustExec(`EXPLAIN SELECT region, SUM(amount) FROM sales WHERE sold > DATE '2013-09-01' GROUP BY region`)
	fmt.Printf("\n%s", ex.Message)

	// Scan statistics reveal segment elimination at work.
	q := db.MustExec(`SELECT COUNT(*) FROM sales WHERE sold < DATE '2013-07-01'`)
	fmt.Printf("\nrows=%v; row groups eliminated: %d of %d\n",
		q.Rows[0][0], q.Stats.RowGroupsEliminated, q.Stats.RowGroups)
}
