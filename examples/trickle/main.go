// Trickle: demonstrates the updatable clustered columnstore — trickle
// inserts landing in delta stores, the background tuple mover compressing
// them into row groups, deletes via the delete bitmap, and bookmark-based
// sampling. Watch the physical state change as data flows in.
package main

import (
	"fmt"
	"log"
	"time"

	"apollo"
)

func main() {
	cfg := apollo.DefaultConfig()
	cfg.RowGroupSize = 50000
	cfg.BulkLoadThreshold = 10000
	cfg.TupleMoverInterval = 10 * time.Millisecond
	db := apollo.Open(cfg)
	defer db.Close()

	db.MustExec(`CREATE TABLE events (
		id BIGINT NOT NULL, kind VARCHAR NOT NULL, value BIGINT NOT NULL, at DATE NOT NULL)`)
	tbl, err := db.Table("events")
	if err != nil {
		log.Fatal(err)
	}
	kinds := []string{"click", "view", "purchase", "refund"}
	day, _ := apollo.DateFromString("2014-01-01")

	report := func(label string) {
		s := tbl.Stats()
		fmt.Printf("%-28s groups=%-3d compressed=%-8d delta=%-7d deleted=%-6d disk=%dB\n",
			label, s.CompressedGroups, s.CompressedRows, s.DeltaRows, s.DeletedRows, s.DiskBytes)
	}

	// Phase 1: trickle inserts. Rows accumulate in a delta store (a B-tree);
	// at RowGroupSize the store closes and the tuple mover compresses it.
	fmt.Println("phase 1: trickle-inserting 180,000 rows ...")
	for i := 0; i < 180000; i++ {
		if err := tbl.Insert(apollo.Row{
			apollo.NewInt(int64(i)),
			apollo.NewString(kinds[i%4]),
			apollo.NewInt(int64(i % 1000)),
			apollo.NewDate(day + int64(i/5000)),
		}); err != nil {
			log.Fatal(err)
		}
		if i%60000 == 59999 {
			report(fmt.Sprintf("  after %d inserts:", i+1))
		}
	}
	// Give the mover a moment to drain the last closed store.
	time.Sleep(200 * time.Millisecond)
	report("after tuple mover catch-up:")

	// Phase 2: queries see compressed row groups and the open delta store as
	// one table (the "mixed-mode" scan).
	res := db.MustExec(`SELECT kind, COUNT(*) AS n, SUM(value) FROM events GROUP BY kind ORDER BY kind`)
	fmt.Println("\nphase 2: aggregate over compressed + delta rows")
	for _, r := range res.Rows {
		fmt.Printf("  %-9s %8d %12d\n", r[0].S, r[1].I, r[2].I)
	}

	// Phase 3: deletes mark compressed rows in the delete bitmap — no row
	// group is rewritten.
	del := db.MustExec(`DELETE FROM events WHERE kind = 'refund'`)
	fmt.Printf("\nphase 3: deleted %d refunds (delete bitmap, no rewrite)\n", del.Affected)
	report("after deletes:")

	// Phase 4: updates are delete + insert; the new versions land in the
	// delta store.
	upd := db.MustExec(`UPDATE events SET value = value + 1000000 WHERE id < 100`)
	fmt.Printf("\nphase 4: updated %d rows (delete + re-insert)\n", upd.Affected)
	report("after updates:")

	// Phase 5: REORGANIZE force-drains delta stores into row groups.
	db.MustExec(`REORGANIZE events`)
	report("after REORGANIZE:")

	// Phase 6: bookmark sampling — approximate answers reading a fraction of
	// the table (§4.4 of the paper).
	sample := tbl.Sample(2000, 1)
	var purchases int
	for _, r := range sample {
		if r[1].S == "purchase" {
			purchases++
		}
	}
	est := float64(purchases) / float64(len(sample)) * float64(tbl.Rows())
	exact := db.MustExec(`SELECT COUNT(*) FROM events WHERE kind = 'purchase'`)
	fmt.Printf("\nphase 6: sampling estimate for purchases = %.0f (exact %d)\n",
		est, exact.Rows[0][0].I)
}
