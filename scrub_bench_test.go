package apollo_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"apollo"
)

// The scrub sweep: load a table large enough that a scrub pass does real
// work, then measure (a) unpaced scan throughput — the raw verify cost — and
// (b) paced passes at two byte budgets, proving the limiter holds the pass
// near its budget, while a foreground query loop records how much read
// latency the scrubber steals. Always run as a gate (`make check` smoke:
// pacing must actually pace, queries must not fail); with
// APOLLO_BENCH_SCRUB=<path> the numbers are recorded as JSON
// (`make bench-scrub` writes BENCH_scrub.json).

type scrubBenchLeg struct {
	BytesPerSec int64   `json:"bytes_per_sec"` // 0 = unpaced
	Bytes       int64   `json:"bytes"`
	Blobs       int64   `json:"blobs"`
	Seconds     float64 `json:"seconds"`
	MBPerSec    float64 `json:"mb_per_sec"`
	Queries     int64   `json:"concurrent_queries"`
	AvgQueryMs  float64 `json:"avg_query_ms"`
}

func scrubBenchLoad(t *testing.T, db *apollo.DB, rows int) {
	t.Helper()
	var sb strings.Builder
	sb.Grow(rows * 24)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%d,scrub-bench-value-%d\n", i, i%97, i%503)
	}
	if _, err := db.Exec("CREATE TABLE sb (id BIGINT, grp BIGINT, v VARCHAR) WITH (rowgroup_size=8192, bulk_threshold=4096)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Load(context.Background(), apollo.LoadOptions{Table: "sb", Reader: strings.NewReader(sb.String())})
	if err != nil || res.RowsLoaded != rows {
		t.Fatalf("bench load: %d rows, err %v", res.RowsLoaded, err)
	}
}

// runScrubLeg runs one pass at the given budget with a foreground query loop
// and returns the measured leg.
func runScrubLeg(t *testing.T, db *apollo.DB, bps int64) scrubBenchLeg {
	t.Helper()
	stop := make(chan struct{})
	done := make(chan struct{})
	var queries int64
	var queryNanos int64
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			q0 := time.Now()
			if _, err := db.Query("SELECT COUNT(*), SUM(grp) FROM sb WHERE id % 7 = 0"); err != nil {
				t.Errorf("concurrent query failed during scrub: %v", err)
				return
			}
			queryNanos += time.Since(q0).Nanoseconds()
			queries++
		}
	}()

	sc := apollo.ScrubOptions{BytesPerSec: bps}
	start := time.Now()
	rep, err := db.ScrubWith(context.Background(), sc)
	secs := time.Since(start).Seconds()
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 || rep.RepairedBacking != 0 || rep.RepairedMemory != 0 {
		t.Fatalf("clean data reported damage: %+v", rep)
	}
	leg := scrubBenchLeg{
		BytesPerSec: bps,
		Bytes:       rep.Bytes,
		Blobs:       rep.Blobs,
		Seconds:     secs,
		MBPerSec:    float64(rep.Bytes) / (1 << 20) / secs,
		Queries:     queries,
	}
	if queries > 0 {
		leg.AvgQueryMs = float64(queryNanos) / float64(queries) / 1e6
	}
	return leg
}

func TestScrubSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scrub sweep loads 200k rows; skipped in -short")
	}
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 0
	cfg.FsyncPolicy = "off" // measure verification, not the disk
	cfg.ScrubInterval = 0
	db, err := apollo.OpenDir(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	scrubBenchLoad(t, db, 200_000)

	// Leg 1 — unpaced: raw CRC-verify throughput over every at-rest copy.
	unpaced := runScrubLeg(t, db, -1) // negative = no pacing

	// Legs 2, 3 — paced at budgets well below raw throughput. The gate: a
	// paced pass must take at least half its nominal time (i.e. the limiter
	// is real, not decorative).
	paced := []scrubBenchLeg{}
	for _, bps := range []int64{64 << 20, 16 << 20} {
		leg := runScrubLeg(t, db, bps)
		paced = append(paced, leg)
		nominal := float64(leg.Bytes) / float64(bps)
		if leg.Seconds < nominal/2 {
			t.Fatalf("pass at %d MB/s over %d bytes took %.3fs, nominal %.3fs — pacing not applied",
				bps>>20, leg.Bytes, leg.Seconds, nominal)
		}
	}

	out := os.Getenv("APOLLO_BENCH_SCRUB")
	if out == "" {
		return // smoke mode: pacing + no-damage + query gates passed
	}
	doc := map[string]any{
		"bench":   "scrub",
		"date":    time.Now().UTC().Format("2006-01-02"),
		"rows":    200_000,
		"unpaced": unpaced,
		"paced":   paced,
		"note":    "single-process on the CI host; the ratio unpaced-vs-paced and the query-latency deltas are the signal, absolute MB/s is not",
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded scrub sweep to %s", out)
}
