// Package exec holds pieces shared by the row-mode and batch-mode execution
// engines: aggregate specifications, sort keys, join types, and row-key
// encoding for hash tables.
package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"apollo/internal/expr"
	"apollo/internal/sqltypes"
)

// AggKind identifies an aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	CountStar AggKind = iota // COUNT(*)
	Count                    // COUNT(expr): non-NULL count
	Sum
	Avg
	Min
	Max
)

func (k AggKind) String() string {
	return [...]string{"COUNT(*)", "COUNT", "SUM", "AVG", "MIN", "MAX"}[k]
}

// AggSpec describes one aggregate in a GROUP BY or scalar aggregation.
type AggSpec struct {
	Kind     AggKind
	Arg      expr.Expr // nil for COUNT(*)
	Distinct bool      // COUNT(DISTINCT x), SUM(DISTINCT x), ...
	Name     string    // output column name
}

// ResultType returns the aggregate's output type.
func (a AggSpec) ResultType() sqltypes.Type {
	switch a.Kind {
	case CountStar, Count:
		return sqltypes.Int64
	case Avg:
		return sqltypes.Float64
	case Sum:
		if a.Arg != nil && a.Arg.Type() == sqltypes.Float64 {
			return sqltypes.Float64
		}
		return sqltypes.Int64
	default: // Min, Max
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return sqltypes.Int64
	}
}

func (a AggSpec) String() string {
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	if a.Kind == CountStar {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s%s)", a.Kind, d, a.Arg)
}

// SortKey orders by an expression, optionally descending.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// CompareRows orders two rows under the sort keys.
func CompareRows(keys []SortKey, a, b sqltypes.Row) int {
	for _, k := range keys {
		c := sqltypes.Compare(k.E.Eval(a), k.E.Eval(b))
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// JoinType is the join variant. The paper's §5 emphasizes that the upcoming
// release supports the full repertoire in batch mode (2012 supported only
// inner joins).
type JoinType uint8

// Join types.
const (
	Inner JoinType = iota
	LeftOuter
	RightOuter
	FullOuter
	LeftSemi
	LeftAnti
)

func (j JoinType) String() string {
	return [...]string{"INNER", "LEFT OUTER", "RIGHT OUTER", "FULL OUTER", "LEFT SEMI", "LEFT ANTI"}[j]
}

// EncodeKey appends a canonical byte encoding of the key values to dst, for
// use as a hash-table map key. Values that compare equal encode identically
// (Int64 vs integral Float64 included); NULL encodes distinctly so callers
// can decide NULL-join semantics separately.
func EncodeKey(dst []byte, vals []sqltypes.Value) []byte {
	for _, v := range vals {
		if v.Null {
			dst = append(dst, 0)
			continue
		}
		switch v.Typ {
		case sqltypes.String:
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		case sqltypes.Float64:
			f := v.F
			if f == math.Trunc(f) && math.Abs(f) < 1e15 {
				dst = append(dst, 2)
				dst = binary.AppendVarint(dst, int64(f))
			} else {
				dst = append(dst, 3)
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
		default:
			dst = append(dst, 2)
			dst = binary.AppendVarint(dst, v.I)
		}
	}
	return dst
}

// KeyHasNull reports whether any key value is NULL (such keys never match in
// equi-joins).
func KeyHasNull(vals []sqltypes.Value) bool {
	for _, v := range vals {
		if v.Null {
			return true
		}
	}
	return false
}
