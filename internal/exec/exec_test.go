package exec

import (
	"testing"
	"testing/quick"

	"apollo/internal/expr"
	"apollo/internal/sqltypes"
)

func TestEncodeKeyEqualValuesCollide(t *testing.T) {
	pairs := [][2][]sqltypes.Value{
		{{sqltypes.NewInt(7)}, {sqltypes.NewFloat(7.0)}},
		{{sqltypes.NewInt(7), sqltypes.NewString("x")}, {sqltypes.NewFloat(7), sqltypes.NewString("x")}},
		{{sqltypes.NewDate(10)}, {sqltypes.NewInt(10)}},
	}
	for _, p := range pairs {
		a := string(EncodeKey(nil, p[0]))
		b := string(EncodeKey(nil, p[1]))
		if a != b {
			t.Errorf("EncodeKey(%v) != EncodeKey(%v)", p[0], p[1])
		}
	}
}

func TestEncodeKeyDistinguishes(t *testing.T) {
	cases := [][2][]sqltypes.Value{
		{{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}},
		{{sqltypes.NewString("ab"), sqltypes.NewString("c")}, {sqltypes.NewString("a"), sqltypes.NewString("bc")}},
		{{sqltypes.NewString("")}, {sqltypes.NewNull(sqltypes.String)}},
		{{sqltypes.NewFloat(1.5)}, {sqltypes.NewFloat(1.25)}},
		{{sqltypes.NewInt(0)}, {sqltypes.NewNull(sqltypes.Int64)}},
	}
	for _, c := range cases {
		a := string(EncodeKey(nil, c[0]))
		b := string(EncodeKey(nil, c[1]))
		if a == b {
			t.Errorf("EncodeKey(%v) == EncodeKey(%v)", c[0], c[1])
		}
	}
}

// Property: EncodeKey is injective on (int, string) pairs.
func TestQuickEncodeKeyInjective(t *testing.T) {
	f := func(a1, a2 int64, s1, s2 string) bool {
		k1 := string(EncodeKey(nil, []sqltypes.Value{sqltypes.NewInt(a1), sqltypes.NewString(s1)}))
		k2 := string(EncodeKey(nil, []sqltypes.Value{sqltypes.NewInt(a2), sqltypes.NewString(s2)}))
		if a1 == a2 && s1 == s2 {
			return k1 == k2
		}
		return k1 != k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyHasNull(t *testing.T) {
	if KeyHasNull([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewString("x")}) {
		t.Fatal("no nulls present")
	}
	if !KeyHasNull([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewNull(sqltypes.String)}) {
		t.Fatal("null not detected")
	}
}

func TestCompareRows(t *testing.T) {
	col0 := expr.NewColRef(0, "a", sqltypes.Int64)
	col1 := expr.NewColRef(1, "b", sqltypes.String)
	keys := []SortKey{{E: col0}, {E: col1, Desc: true}}
	a := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("x")}
	b := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("y")}
	c := sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewString("a")}
	if CompareRows(keys, a, b) <= 0 { // y before x under DESC
		t.Fatal("desc tiebreak wrong")
	}
	if CompareRows(keys, a, c) >= 0 {
		t.Fatal("primary key ordering wrong")
	}
	if CompareRows(keys, a, a) != 0 {
		t.Fatal("self-compare wrong")
	}
}

func TestAggSpecResultType(t *testing.T) {
	fcol := expr.NewColRef(0, "f", sqltypes.Float64)
	icol := expr.NewColRef(1, "i", sqltypes.Int64)
	scol := expr.NewColRef(2, "s", sqltypes.String)
	cases := []struct {
		spec AggSpec
		want sqltypes.Type
	}{
		{AggSpec{Kind: CountStar}, sqltypes.Int64},
		{AggSpec{Kind: Count, Arg: scol}, sqltypes.Int64},
		{AggSpec{Kind: Sum, Arg: icol}, sqltypes.Int64},
		{AggSpec{Kind: Sum, Arg: fcol}, sqltypes.Float64},
		{AggSpec{Kind: Avg, Arg: icol}, sqltypes.Float64},
		{AggSpec{Kind: Min, Arg: scol}, sqltypes.String},
		{AggSpec{Kind: Max, Arg: fcol}, sqltypes.Float64},
	}
	for _, c := range cases {
		if got := c.spec.ResultType(); got != c.want {
			t.Errorf("%v: ResultType = %v, want %v", c.spec, got, c.want)
		}
	}
}
