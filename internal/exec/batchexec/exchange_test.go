package batchexec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"apollo/internal/exec"
	"apollo/internal/exec/rowexec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/vector"
)

// exchangeDOPs are the degrees of parallelism every parity property runs at.
// DOP 1 pushes a single worker through the exchange machinery (same code path,
// no concurrency); 2 and 8 exercise real interleaving — 8 deliberately exceeds
// the row-group count of some test tables so idle workers drain cleanly.
var exchangeDOPs = []int{1, 2, 8}

// parallelAggOver wraps src in a SharedSource with dop bare worker views — the
// minimal exchange shape, no replicated stages.
func parallelAggOver(src Operator, dop int, groupBy []int, names []string, aggs []exec.AggSpec) *ParallelAgg {
	shared := NewSharedSource(src)
	pipes := make([]Operator, dop)
	for w := range pipes {
		pipes[w] = shared.Worker()
	}
	return NewParallelAgg(shared, pipes, groupBy, names, aggs)
}

func drainRows(t *testing.T, op Operator) []sqltypes.Row {
	t.Helper()
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// waitForGoroutines polls until the goroutine count returns to (near) base,
// failing the test if exchange workers leak.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: started with %d goroutines, now %d", base, runtime.NumGoroutine())
}

// loadColdTable loads rows into a table over a store with no buffer pool, so
// every scan read reaches the store — and any fault injector attached to it.
func loadColdTable(t *testing.T, rows []sqltypes.Row) (*table.Table, *storage.Store) {
	t.Helper()
	store := storage.NewStore(0)
	opts := table.Options{RowGroupSize: 200, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(store, "cold", testSchema(), opts)
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return tb, store
}

// Property: parallel partial/final aggregation matches the serial HashAgg on
// every grouping shape — integer fast path, string (dict-code) fast path,
// scalar aggregation, and the generic multi-key path — at every DOP.
func TestParallelAggParityShapes(t *testing.T) {
	rows := makeRows(6000, 31)
	tb := loadTable(t, rows)

	priceAggs := func(col int) []exec.AggSpec {
		arg := expr.NewColRef(col, "price", sqltypes.Float64)
		return []exec.AggSpec{
			{Kind: exec.CountStar, Name: "n"},
			{Kind: exec.Count, Arg: arg, Name: "c"},
			{Kind: exec.Sum, Arg: arg, Name: "s"},
			{Kind: exec.Avg, Arg: arg, Name: "a"},
			{Kind: exec.Min, Arg: arg, Name: "lo"},
			{Kind: exec.Max, Arg: arg, Name: "hi"},
		}
	}
	shapes := []struct {
		name    string
		cols    []int
		groupBy []int
		keys    []string
		aggs    []exec.AggSpec
	}{
		{"int-key", []int{1, 2}, []int{0}, []string{"grp"}, priceAggs(1)},
		{"string-key", []int{2, 3}, []int{1}, []string{"region"}, priceAggs(0)},
		{"scalar", []int{2}, nil, nil, priceAggs(0)},
		{"multi-key", []int{1, 3, 2}, []int{0, 1}, []string{"grp", "region"}, priceAggs(2)},
	}
	for _, sh := range shapes {
		serial := NewHashAgg(NewScan(tb.Snapshot(), sh.cols), sh.groupBy, sh.keys, sh.aggs)
		want := drainRows(t, serial)
		for _, dop := range exchangeDOPs {
			pagg := parallelAggOver(NewScan(tb.Snapshot(), sh.cols), dop, sh.groupBy, sh.keys, sh.aggs)
			got := drainRows(t, pagg)
			assertSameRows(t, fmt.Sprintf("%s dop=%d", sh.name, dop), got, want)
		}
	}
}

// Property: replicated per-worker filter/project stages above the shared
// source (the shape the planner emits) produce the same result as the serial
// filter/project/aggregate chain.
func TestParallelAggReplicatedStages(t *testing.T) {
	rows := makeRows(5000, 37)
	tb := loadTable(t, rows)

	pred := func() expr.Expr {
		return expr.NewCmp(expr.LT, expr.NewColRef(0, "grp", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(25)))
	}
	proj := func() ([]expr.Expr, []string) {
		return []expr.Expr{
			expr.NewColRef(2, "region", sqltypes.String),
			expr.NewColRef(1, "price", sqltypes.Float64),
		}, []string{"region", "price"}
	}
	aggs := []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(1, "price", sqltypes.Float64), Name: "s"},
	}

	exprs, names := proj()
	serial := NewHashAgg(
		NewProject(&Filter{In: NewScan(tb.Snapshot(), []int{1, 2, 3}), Pred: pred()}, exprs, names),
		[]int{0}, []string{"region"}, aggs)
	want := drainRows(t, serial)

	for _, dop := range exchangeDOPs {
		shared := NewSharedSource(NewScan(tb.Snapshot(), []int{1, 2, 3}))
		pipes := make([]Operator, dop)
		for w := range pipes {
			exprs, names := proj()
			pipes[w] = NewProject(&Filter{In: shared.Worker(), Pred: pred()}, exprs, names)
		}
		got := drainRows(t, NewParallelAgg(shared, pipes, []int{0}, []string{"region"}, aggs))
		assertSameRows(t, fmt.Sprintf("replicated stages dop=%d", dop), got, want)
	}
}

// Property: parallel aggregation over a coded string column agrees with the
// row engine (not just the serial batch engine), NULL group included.
func TestParallelAggRowEngineParity(t *testing.T) {
	cats := []string{"north", "south", "east", "west", "axis", "blade", "crest", "dune"}
	tb := loadStrTable(t, makeStrRows(5000, 613, cats))

	rScan := rowexec.NewScan(tb.Snapshot(), nil, []int{1, 2})
	want := rowModeRows(t, rowexec.NewHashAggregate(rScan,
		[]expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, []string{"cat"}, catAggs))

	for _, dop := range exchangeDOPs {
		got := gotRows(t, parallelAggOver(NewScan(tb.Snapshot(), []int{1, 2}), dop, []int{0}, []string{"cat"}, catAggs))
		if !mapsEqual(got, want) {
			t.Fatalf("dop=%d: parallel string GROUP BY diverged from row engine: %d vs %d keys", dop, len(got), len(want))
		}
	}
}

// Property: parallel aggregation under a tiny shared memory grant spills and
// still matches the unconstrained serial result. This exercises the
// non-disjoint merge: a group can be in-memory in one worker and spilled by
// another, so the final merge must fold spilled rows across all partitions.
func TestParallelAggSpillParity(t *testing.T) {
	cats := []string{"red", "orange", "yellow", "green", "blue", "indigo", "violet"}
	tb := loadStrTable(t, makeStrRows(3000, 617, cats))

	want := drainRows(t, NewHashAgg(NewScan(tb.Snapshot(), []int{1, 2}), []int{0}, []string{"cat"}, catAggs))

	for _, dop := range []int{2, 8} {
		pagg := parallelAggOver(NewScan(tb.Snapshot(), []int{1, 2}), dop, []int{0}, []string{"cat"}, catAggs)
		pagg.Tracker = NewTracker(1 << 10)
		pagg.SpillStore = storage.NewStore(0)
		got := drainRows(t, pagg)
		if pagg.Tracker.Spills() == 0 {
			t.Fatalf("dop=%d: parallel aggregation did not spill under a 1 KiB grant", dop)
		}
		assertSameRows(t, fmt.Sprintf("spill dop=%d", dop), got, want)
	}
}

// ParallelizableAggs must reject DISTINCT aggregates: their per-group value
// sets cannot be merged by adding partial counts and sums.
func TestParallelizableAggs(t *testing.T) {
	plain := []exec.AggSpec{{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(0, "v", sqltypes.Int64), Name: "s"}}
	if !ParallelizableAggs(plain) {
		t.Fatal("plain aggregates reported non-parallelizable")
	}
	distinct := append(append([]exec.AggSpec{}, plain...),
		exec.AggSpec{Kind: exec.Count, Arg: expr.NewColRef(0, "v", sqltypes.Int64), Distinct: true, Name: "d"})
	if ParallelizableAggs(distinct) {
		t.Fatal("DISTINCT aggregate reported parallelizable")
	}
}

// errAfterOp yields batches from its child until limit batches have passed,
// then fails. Used to test SharedSource error stickiness.
type errAfterOp struct {
	in    Operator
	limit int
	calls int
}

func (e *errAfterOp) Schema() *sqltypes.Schema       { return e.in.Schema() }
func (e *errAfterOp) Open(ctx context.Context) error { return e.in.Open(ctx) }
func (e *errAfterOp) Close() error                   { return e.in.Close() }
func (e *errAfterOp) Next() (*vector.Batch, error) {
	e.calls++
	if e.calls > e.limit {
		return nil, errors.New("synthetic source failure")
	}
	return e.in.Next()
}

// SharedSource must hand each batch to exactly one worker, report end-of-stream
// to every worker, and make the first error sticky without touching the child
// again.
func TestSharedSourceStickiness(t *testing.T) {
	tb := loadTable(t, makeRows(2000, 41))

	// Clean end-of-stream: total rows across workers equal the serial scan.
	shared := NewSharedSource(NewScan(tb.Snapshot(), []int{0}))
	if err := shared.Base().Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	shared.Reset()
	ws := []Operator{shared.Worker(), shared.Worker(), shared.Worker()}
	for _, w := range ws {
		if err := w.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	done := 0
	for done < len(ws) {
		done = 0
		for _, w := range ws {
			b, err := w.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				done++
				continue
			}
			total += b.Len()
		}
	}
	shared.Base().Close()
	want := len(drainRows(t, NewScan(tb.Snapshot(), []int{0})))
	if total != want {
		t.Fatalf("workers saw %d rows, serial scan %d", total, want)
	}

	// Error stickiness: after the child fails once, every worker observes the
	// same error and the child's Next is never called again.
	src := &errAfterOp{in: NewScan(tb.Snapshot(), []int{0}), limit: 1}
	shared = NewSharedSource(src)
	if err := shared.Base().Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer shared.Base().Close()
	shared.Reset()
	w := shared.Worker()
	if err := w.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Next(); err != nil {
		t.Fatalf("first batch failed early: %v", err)
	}
	if _, err := w.Next(); err == nil {
		t.Fatal("expected synthetic failure")
	}
	callsAtFailure := src.calls
	for i := 0; i < 3; i++ {
		if _, err := w.Next(); err == nil {
			t.Fatal("error did not stick")
		}
	}
	if src.calls != callsAtFailure {
		t.Fatalf("child Next called %d more times after failure", src.calls-callsAtFailure)
	}
}

// Property: the partitioned parallel hash join matches the serial join for
// every join type on string keys across two distinct dictionaries (the
// cross-dictionary translation path), at every DOP.
func TestParallelJoinParityTypes(t *testing.T) {
	probeCats := []string{"north", "south", "east", "west", "inland", "offshore"}
	buildCats := []string{"east", "west", "inland", "highland", "lowland"}
	ptb := loadStrTable(t, makeStrRows(1500, 701, probeCats))
	btb := loadStrTable(t, makeStrRows(500, 703, buildCats))

	mkJoin := func(jt exec.JoinType, dop int) *HashJoin {
		j, err := NewHashJoin(
			NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
			[]int{1}, []int{0}, jt, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Parallel = dop
		return j
	}
	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter, exec.RightOuter, exec.FullOuter, exec.LeftSemi, exec.LeftAnti} {
		want := drainRows(t, mkJoin(jt, 0))
		for _, dop := range exchangeDOPs {
			got := drainRows(t, mkJoin(jt, dop))
			assertSameRows(t, fmt.Sprintf("%v dop=%d", jt, dop), got, want)
		}
	}
}

// Property: integer-key joins partition consistently between build and probe
// sides (canonical int hashing), matching the serial join at every DOP.
func TestParallelJoinIntKeyParity(t *testing.T) {
	ptb := loadTable(t, makeRows(900, 809))
	btb := loadTable(t, makeRows(300, 811))

	mkJoin := func(jt exec.JoinType, dop int) *HashJoin {
		j, err := NewHashJoin(
			NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
			[]int{1}, []int{0}, jt, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Parallel = dop
		return j
	}
	for _, jt := range []exec.JoinType{exec.Inner, exec.FullOuter} {
		want := drainRows(t, mkJoin(jt, 0))
		for _, dop := range exchangeDOPs {
			got := drainRows(t, mkJoin(jt, dop))
			assertSameRows(t, fmt.Sprintf("int %v dop=%d", jt, dop), got, want)
		}
	}
}

// Property: residual predicates (evaluated over the probe++build layout inside
// each partition core) survive partitioning.
func TestParallelJoinResidualParity(t *testing.T) {
	cats := []string{"alpha", "beta", "gamma", "delta"}
	ptb := loadStrTable(t, makeStrRows(1000, 821, cats))
	btb := loadStrTable(t, makeStrRows(400, 823, cats))

	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter} {
		mk := func(dop int) *HashJoin {
			// Layout: probe [id, cat] ++ build [cat, val]; keep pairs where the
			// build-side val stays under 500.
			res := expr.NewCmp(expr.LT, expr.NewColRef(3, "val", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(500)))
			j, err := NewHashJoin(
				NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
				[]int{1}, []int{0}, jt, res)
			if err != nil {
				t.Fatal(err)
			}
			j.Parallel = dop
			return j
		}
		want := drainRows(t, mk(0))
		for _, dop := range exchangeDOPs {
			assertSameRows(t, fmt.Sprintf("residual %v dop=%d", jt, dop), drainRows(t, mk(dop)), want)
		}
	}
}

// Property: a self join (both sides share one dictionary — the pure code-space
// probe path) stays correct under partitioning.
func TestParallelSelfJoinParity(t *testing.T) {
	cats := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	tb := loadStrTable(t, makeStrRows(800, 827, cats))

	mk := func(dop int) *HashJoin {
		j, err := NewHashJoin(
			NewScan(tb.Snapshot(), []int{0, 1}), NewScan(tb.Snapshot(), []int{1}),
			[]int{1}, []int{0}, exec.Inner, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Parallel = dop
		return j
	}
	want := drainRows(t, mk(0))
	for _, dop := range exchangeDOPs {
		assertSameRows(t, fmt.Sprintf("self join dop=%d", dop), drainRows(t, mk(dop)), want)
	}
}

// Property: when the build side overflows its memory grant, a Parallel join
// falls back to the serial grace-hash spill path and stays correct.
func TestParallelJoinSpillFallbackParity(t *testing.T) {
	cats := []string{"red", "orange", "yellow", "green", "blue"}
	ptb := loadStrTable(t, makeStrRows(1200, 829, cats))
	btb := loadStrTable(t, makeStrRows(600, 839, cats))

	mk := func(dop int, grant int64) *HashJoin {
		j, err := NewHashJoin(
			NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
			[]int{1}, []int{0}, exec.FullOuter, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Parallel = dop
		if grant > 0 {
			j.Tracker = NewTracker(grant)
			j.SpillStore = storage.NewStore(0)
		}
		return j
	}
	want := drainRows(t, mk(0, 0))
	for _, dop := range []int{2, 8} {
		j := mk(dop, 1<<10)
		got := drainRows(t, j)
		if j.Tracker.Spills() == 0 {
			t.Fatalf("dop=%d: join did not spill under a 1 KiB grant", dop)
		}
		if j.par != nil {
			t.Fatalf("dop=%d: spilled join still holds parallel probe state", dop)
		}
		assertSameRows(t, fmt.Sprintf("spill fallback dop=%d", dop), got, want)
	}
}

// Cancellation mid-pipeline: a parallel aggregation over slow cold reads must
// return context.Canceled promptly and leak no exchange workers.
func TestParallelAggCancellation(t *testing.T) {
	tb, store := loadColdTable(t, makeRows(4000, 907))
	store.SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{ReadLatency: 2 * time.Millisecond, Seed: 1}))
	base := runtime.NumGoroutine()

	aggs := []exec.AggSpec{{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(1, "price", sqltypes.Float64), Name: "s"}}
	pagg := parallelAggOver(NewScan(tb.Snapshot(), []int{1, 2}), 8, []int{0}, []string{"grp"}, aggs)

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	_, err := DrainContext(ctx, pagg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// Cancellation mid-probe: a partitioned parallel join canceled while the probe
// exchange is streaming must return context.Canceled and shut down splitters,
// probers, and the gather channel.
func TestParallelJoinCancellation(t *testing.T) {
	ptb, store := loadColdTable(t, makeRows(4000, 911))
	btb := loadTable(t, makeRows(200, 913))
	store.SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{ReadLatency: 2 * time.Millisecond, Seed: 2}))
	base := runtime.NumGoroutine()

	j, err := NewHashJoin(
		NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
		[]int{1}, []int{0}, exec.Inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Parallel = 8

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	_, derr := DrainContext(ctx, j)
	if !errors.Is(derr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", derr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// Fault-injected scans under a parallel aggregation: a hard read-fault rate
// must surface promptly as a typed transient storage error from the exchange,
// not hang or leak workers.
func TestParallelAggFaultInjection(t *testing.T) {
	tb, store := loadColdTable(t, makeRows(3000, 919))
	store.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 1})
	store.SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{ReadErrorRate: 1, Seed: 3}))
	base := runtime.NumGoroutine()

	aggs := []exec.AggSpec{{Kind: exec.CountStar, Name: "n"}}
	pagg := parallelAggOver(NewScan(tb.Snapshot(), []int{1}), 8, []int{0}, []string{"grp"}, aggs)
	start := time.Now()
	_, err := Drain(pagg)
	if err == nil {
		t.Fatal("expected injected read fault to surface")
	}
	if !storage.IsTransient(err) {
		t.Fatalf("fault not typed as transient: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fault response not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// Fault-injected scans under a partitioned parallel join: same contract on the
// probe exchange path.
func TestParallelJoinFaultInjection(t *testing.T) {
	btb := loadTable(t, makeRows(200, 929))
	ptb, store := loadColdTable(t, makeRows(3000, 937))
	store.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 1})
	injector := storage.NewFaultInjector(storage.FaultConfig{ReadErrorRate: 1, Seed: 4})
	base := runtime.NumGoroutine()

	j, err := NewHashJoin(
		NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
		[]int{1}, []int{0}, exec.Inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Parallel = 8

	// Arm the injector only after Open has drained the (fault-free) build side
	// would be ideal, but the build table lives on a separate healthy store, so
	// injecting now only hits the probe-side scans.
	store.SetFaultInjector(injector)
	start := time.Now()
	_, derr := Drain(j)
	if derr == nil {
		t.Fatal("expected injected read fault to surface")
	}
	if !storage.IsTransient(derr) {
		t.Fatalf("fault not typed as transient: %v", derr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fault response not prompt: %v", elapsed)
	}
	waitForGoroutines(t, base)
}

// Concurrent independent parallel operators over one snapshot must not
// interfere (shared dictionaries, shared store): run several parallel aggs and
// joins at once and check each against the serial answer.
func TestParallelOperatorsConcurrently(t *testing.T) {
	cats := []string{"north", "south", "east", "west"}
	tb := loadStrTable(t, makeStrRows(2000, 941, cats))

	aggWant := rowMultiset(drainRows(t, NewHashAgg(NewScan(tb.Snapshot(), []int{1, 2}), []int{0}, []string{"cat"}, catAggs)))
	mkJoin := func(dop int) *HashJoin {
		j, err := NewHashJoin(
			NewScan(tb.Snapshot(), []int{0, 1}), NewScan(tb.Snapshot(), []int{1}),
			[]int{1}, []int{0}, exec.LeftSemi, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Parallel = dop
		return j
	}
	joinWant := rowMultiset(drainRows(t, mkJoin(0)))

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			rows, err := Drain(parallelAggOver(NewScan(tb.Snapshot(), []int{1, 2}), 4, []int{0}, []string{"cat"}, catAggs))
			if err != nil {
				errCh <- err
				return
			}
			if d := multisetDiff(rowMultiset(rows), aggWant); d != "" {
				errCh <- fmt.Errorf("concurrent agg diverged:\n%s", d)
			}
		}()
		go func() {
			defer wg.Done()
			j := mkJoin(4)
			rows, err := Drain(j)
			if err != nil {
				errCh <- err
				return
			}
			if d := multisetDiff(rowMultiset(rows), joinWant); d != "" {
				errCh <- fmt.Errorf("concurrent join diverged:\n%s", d)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
