package batchexec

import (
	"context"

	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// Guard is the per-operator fault boundary. It wraps an operator with:
//
//   - panic containment: a panic in the wrapped operator's Open/Next/Close is
//     recovered and converted to a qerr.QueryError carrying the operator
//     name, so one bad segment or operator bug fails one query, never the
//     process;
//   - operator attribution: plain errors bubbling up are wrapped (once, by
//     the innermost guard) so every failure names its component;
//   - cancellation: each Next call checks the query context, guaranteeing
//     batch-granularity response to cancellation and deadlines even through
//     operators that buffer or transform many batches per call.
//
// The plan compiler wraps every physical batch operator in a Guard.
type Guard struct {
	In   Operator
	Name string
	ctx  context.Context
}

// NewGuard wraps op as the named fault boundary.
func NewGuard(op Operator, name string) *Guard { return &Guard{In: op, Name: name} }

// Schema implements Operator.
func (g *Guard) Schema() *sqltypes.Schema { return g.In.Schema() }

// Open implements Operator.
func (g *Guard) Open(ctx context.Context) (err error) {
	g.ctx = ctx
	defer g.contain(&err)
	if err := ctx.Err(); err != nil {
		return err
	}
	return qerr.New(g.Name, g.In.Open(ctx))
}

// Next implements Operator.
func (g *Guard) Next() (b *vector.Batch, err error) {
	defer func() {
		if e := qerr.FromPanic(g.Name, qerr.NoGroup, recover()); e != nil {
			b, err = nil, e
		}
	}()
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return nil, err
		}
	}
	b, err = g.In.Next()
	return b, qerr.New(g.Name, err)
}

// Close implements Operator.
func (g *Guard) Close() (err error) {
	defer g.contain(&err)
	return qerr.New(g.Name, g.In.Close())
}

// contain converts a recovered panic into the returned error.
func (g *Guard) contain(errp *error) {
	if e := qerr.FromPanic(g.Name, qerr.NoGroup, recover()); e != nil {
		*errp = e
	}
}
