package batchexec

import (
	"context"
	"time"

	"apollo/internal/metrics"
	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// OpStats counts one physical operator instance's execution: batches and rows
// it produced and the wall time spent inside its Open and Next calls
// (inclusive of children, so an exchange worker's leaf stages overlap their
// consumers). Worker is the exchange worker replica id, or -1 for the serial
// / final pipeline. Each instance is written by exactly one goroutine; the
// exchange joins its workers before results flow, so readers observe settled
// values once the query finishes.
type OpStats struct {
	Op      string
	Worker  int
	Batches int64
	Rows    int64
	WallNs  int64
}

// Guard is the per-operator fault boundary. It wraps an operator with:
//
//   - panic containment: a panic in the wrapped operator's Open/Next/Close is
//     recovered and converted to a qerr.QueryError carrying the operator
//     name, so one bad segment or operator bug fails one query, never the
//     process;
//   - operator attribution: plain errors bubbling up are wrapped (once, by
//     the innermost guard) so every failure names its component;
//   - cancellation: each Next call checks the query context, guaranteeing
//     batch-granularity response to cancellation and deadlines even through
//     operators that buffer or transform many batches per call.
//
// The plan compiler wraps every physical batch operator in a Guard.
type Guard struct {
	In   Operator
	Name string

	// Stats, when non-nil, accumulates this instance's output counters; the
	// plan compiler registers one per guard so per-worker pipeline costs
	// surface in the query result.
	Stats *OpStats

	// Trace, when non-nil, receives a structured event per operator lifecycle
	// transition (open / batch / eos / error / close), tagged with Query.
	Trace *metrics.Tracer
	Query uint64

	ctx context.Context
}

// NewGuard wraps op as the named fault boundary.
func NewGuard(op Operator, name string) *Guard { return &Guard{In: op, Name: name} }

// Schema implements Operator.
func (g *Guard) Schema() *sqltypes.Schema { return g.In.Schema() }

// Open implements Operator. Open time is charged to Stats because blocking
// operators (aggregation, join build) do their heavy lifting there.
func (g *Guard) Open(ctx context.Context) (err error) {
	g.ctx = ctx
	defer g.contain(&err)
	if err := ctx.Err(); err != nil {
		return err
	}
	if g.Stats != nil {
		// Stats are a per-execution snapshot: re-running a reused Compiled
		// plan must not accumulate counts across runs.
		*g.Stats = OpStats{Op: g.Stats.Op, Worker: g.Stats.Worker}
		start := time.Now()
		defer func() { g.Stats.WallNs += time.Since(start).Nanoseconds() }()
	}
	if g.Trace != nil {
		g.emit("open", 0, nil)
	}
	err = qerr.New(g.Name, g.In.Open(ctx))
	if err != nil && g.Trace != nil {
		g.emit("error", 0, err)
	}
	return err
}

// emit sends one trace event for this operator instance.
func (g *Guard) emit(event string, rows int, err error) {
	ev := metrics.TraceEvent{Query: g.Query, Op: g.Name, Worker: -1, Event: event, Rows: rows}
	if g.Stats != nil {
		ev.Worker = g.Stats.Worker
	}
	if err != nil {
		ev.Err = err.Error()
	}
	g.Trace.Emit(ev)
}

// Next implements Operator.
func (g *Guard) Next() (b *vector.Batch, err error) {
	defer func() {
		if e := qerr.FromPanic(g.Name, qerr.NoGroup, recover()); e != nil {
			b, err = nil, e
		}
	}()
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return nil, err
		}
	}
	var start time.Time
	if g.Stats != nil {
		start = time.Now()
	}
	b, err = g.In.Next()
	if g.Stats != nil {
		g.Stats.WallNs += time.Since(start).Nanoseconds()
		if b != nil {
			g.Stats.Batches++
			g.Stats.Rows += int64(b.Len())
		}
	}
	if g.Trace != nil {
		switch {
		case err != nil:
			g.emit("error", 0, err)
		case b != nil:
			g.emit("batch", b.Len(), nil)
		default:
			g.emit("eos", 0, nil)
		}
	}
	return b, qerr.New(g.Name, err)
}

// Close implements Operator.
func (g *Guard) Close() (err error) {
	defer g.contain(&err)
	if g.Trace != nil {
		g.emit("close", 0, nil)
	}
	return qerr.New(g.Name, g.In.Close())
}

// contain converts a recovered panic into the returned error.
func (g *Guard) contain(errp *error) {
	if e := qerr.FromPanic(g.Name, qerr.NoGroup, recover()); e != nil {
		*errp = e
	}
}
