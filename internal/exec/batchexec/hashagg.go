package batchexec

import (
	"context"

	"apollo/internal/encoding"
	"apollo/internal/exec"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// HashAgg is the batch-mode hash aggregation of §5, including scalar
// aggregation (no group-by), DISTINCT aggregates, and spilling: when the
// memory grant is exhausted, rows belonging to not-yet-seen groups are
// hash-partitioned to spill files and aggregated partition by partition after
// the input is consumed (hybrid hash aggregation), so memory pressure
// degrades throughput instead of failing the query.
type HashAgg struct {
	In      Operator
	GroupBy []int // input column indexes
	Names   []string
	Aggs    []exec.AggSpec // Arg exprs bound to the input schema

	Tracker    *Tracker
	SpillStore *storage.Store

	schema   *sqltypes.Schema
	out      *Values
	reserved int64
}

// NewHashAgg builds a batch aggregation. Group-by keys are input columns;
// aggregate arguments are expressions over the input schema.
func NewHashAgg(in Operator, groupBy []int, names []string, aggs []exec.AggSpec) *HashAgg {
	cols := make([]sqltypes.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		c := in.Schema().Cols[g]
		cols = append(cols, sqltypes.Column{Name: names[i], Typ: c.Typ, Nullable: true})
	}
	for _, a := range aggs {
		cols = append(cols, sqltypes.Column{Name: a.Name, Typ: a.ResultType(), Nullable: true})
	}
	return &HashAgg{In: in, GroupBy: groupBy, Names: names, Aggs: aggs, schema: sqltypes.NewSchema(cols...)}
}

// Schema implements Operator.
func (h *HashAgg) Schema() *sqltypes.Schema { return h.schema }

// aggGroup is one group's accumulators.
type aggGroup struct {
	keyVals sqltypes.Row
	states  []aggAcc
}

// aggAcc accumulates one aggregate.
type aggAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max sqltypes.Value
	seen     bool
	distinct map[string]bool
}

func (h *HashAgg) newGroup(keyVals sqltypes.Row) *aggGroup {
	g := &aggGroup{keyVals: keyVals, states: make([]aggAcc, len(h.Aggs))}
	for i, spec := range h.Aggs {
		if spec.Distinct {
			g.states[i].distinct = make(map[string]bool)
		}
	}
	return g
}

func (g *aggGroup) add(aggs []exec.AggSpec, row sqltypes.Row) {
	for i := range aggs {
		spec := &aggs[i]
		st := &g.states[i]
		if spec.Kind == exec.CountStar {
			st.count++
			continue
		}
		v := spec.Arg.Eval(row)
		if v.Null {
			continue
		}
		if st.distinct != nil {
			key := string(exec.EncodeKey(nil, []sqltypes.Value{v}))
			if st.distinct[key] {
				continue
			}
			st.distinct[key] = true
		}
		st.count++
		switch spec.Kind {
		case exec.Sum, exec.Avg:
			st.sumI += v.I
			st.sumF += v.AsFloat()
		case exec.Min:
			if !st.seen || sqltypes.Compare(v, st.min) < 0 {
				st.min = v
			}
		case exec.Max:
			if !st.seen || sqltypes.Compare(v, st.max) > 0 {
				st.max = v
			}
		}
		st.seen = true
	}
}

func (g *aggGroup) finalize(aggs []exec.AggSpec) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(g.keyVals)+len(aggs))
	out = append(out, g.keyVals...)
	for i := range aggs {
		spec := &aggs[i]
		st := &g.states[i]
		switch spec.Kind {
		case exec.CountStar, exec.Count:
			out = append(out, sqltypes.NewInt(st.count))
		case exec.Sum:
			switch {
			case st.count == 0:
				out = append(out, sqltypes.NewNull(spec.ResultType()))
			case spec.ResultType() == sqltypes.Float64:
				out = append(out, sqltypes.NewFloat(st.sumF))
			default:
				out = append(out, sqltypes.NewInt(st.sumI))
			}
		case exec.Avg:
			if st.count == 0 {
				out = append(out, sqltypes.NewNull(sqltypes.Float64))
			} else {
				out = append(out, sqltypes.NewFloat(st.sumF/float64(st.count)))
			}
		case exec.Min:
			if !st.seen {
				out = append(out, sqltypes.NewNull(spec.ResultType()))
			} else {
				out = append(out, st.min)
			}
		default:
			if !st.seen {
				out = append(out, sqltypes.NewNull(spec.ResultType()))
			} else {
				out = append(out, st.max)
			}
		}
	}
	return out
}

const aggSpillPartitions = 8

// Open implements Operator: consumes the whole input and aggregates.
// Aggregation is vectorized: group pointers are resolved per batch (with a
// fast path for a single integer-family group column), each aggregate
// argument is evaluated once per batch into a vector, and accumulation runs
// in tight loops over the vector payloads.
func (h *HashAgg) Open(ctx context.Context) error {
	if err := h.In.Open(ctx); err != nil {
		return err
	}
	defer h.In.Close()

	inSchema := h.In.Schema()
	groups := make(map[string]*aggGroup)
	var intGroups map[int64]*aggGroup
	var nullGroup *aggGroup
	var order []*aggGroup
	var parts []*spillPartition
	spilling := false

	// Fast path applies to a single integer-family group column.
	fastInt := len(h.GroupBy) == 1 && inSchema.Cols[h.GroupBy[0]].Typ != sqltypes.Float64 &&
		inSchema.Cols[h.GroupBy[0]].Typ != sqltypes.String
	if fastInt {
		intGroups = make(map[int64]*aggGroup)
	}

	// Code-grouping fast path for a single string group column: dict-coded
	// batches group on raw dictionary codes — a dense array when the
	// dictionary is small, a code-keyed map otherwise — and no group key is
	// decoded except once when its group is created. Materialized rows
	// (delta store, fallback segments) bridge into the same groups via a
	// dictionary lookup, falling back to a string-keyed map for values the
	// shared dictionary has never seen; this is sound because dictionary ids
	// are stable, so code and string identify a group interchangeably.
	fastStr := len(h.GroupBy) == 1 && inSchema.Cols[h.GroupBy[0]].Typ == sqltypes.String
	const denseDictLimit = 1 << 14
	var strGroups map[string]*aggGroup
	var codeMap map[uint64]*aggGroup
	var codeArr []*aggGroup
	var codedDict *encoding.Dict
	var codedVals []string
	if fastStr {
		strGroups = make(map[string]*aggGroup)
	}
	lookupCode := func(code uint64) *aggGroup {
		if codeArr != nil {
			if code < uint64(len(codeArr)) {
				return codeArr[code]
			}
			return nil
		}
		return codeMap[code]
	}
	storeCode := func(code uint64, g *aggGroup) {
		if codeArr != nil {
			if code >= uint64(len(codeArr)) {
				if code < denseDictLimit {
					na := make([]*aggGroup, code+1+code/2)
					copy(na, codeArr)
					codeArr = na
				} else {
					// Dictionary outgrew the dense range: degrade to a map.
					codeMap = make(map[uint64]*aggGroup, len(codeArr))
					for c, gr := range codeArr {
						if gr != nil {
							codeMap[uint64(c)] = gr
						}
					}
					codeArr = nil
					codeMap[code] = g
					return
				}
			}
			codeArr[code] = g
			return
		}
		codeMap[code] = g
	}

	var scalarGroup *aggGroup
	if len(h.GroupBy) == 0 {
		scalarGroup = h.newGroup(nil)
		order = append(order, scalarGroup)
	}

	keyVals := make(sqltypes.Row, len(h.GroupBy))
	var ptrs []*aggGroup
	argVecs := make([]*vector.Vector, len(h.Aggs))
	for i, spec := range h.Aggs {
		if spec.Arg != nil {
			argVecs[i] = vector.NewVector(spec.Arg.Type(), vector.DefaultBatchSize)
		}
	}

	startSpilling := func() {
		spilling = true
		parts = make([]*spillPartition, aggSpillPartitions)
		for j := range parts {
			parts[j] = newSpillPartition(h.SpillStore, inSchema)
		}
	}
	// spillRow routes physical row i of a (compacted) batch to a partition by
	// group-key hash; the partition writes dict-coded cells as raw codes.
	spillRow := func(b *vector.Batch, i int, key string) error {
		part := int(hashString(key)>>57) % aggSpillPartitions
		return parts[part].addBatchRow(b, i)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := h.In.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		b.Compact()
		n := b.NumRows()
		if n == 0 {
			continue
		}
		if cap(ptrs) < n {
			ptrs = make([]*aggGroup, n)
		}
		ptrs = ptrs[:n]

		// Resolve the group of every row.
		switch {
		case scalarGroup != nil:
			for i := range ptrs {
				ptrs[i] = scalarGroup
			}
		case fastInt:
			vec := b.Vecs[h.GroupBy[0]]
			typ := inSchema.Cols[h.GroupBy[0]].Typ
			for i := 0; i < n; i++ {
				if vec.IsNull(i) {
					if nullGroup == nil {
						cost := int64(64 + 64*len(h.Aggs))
						if !h.Tracker.TryReserve(cost) && h.SpillStore != nil {
							// A single NULL group is cheap; charge it anyway.
							h.Tracker.Release(0)
						} else {
							h.reserved += cost
						}
						nullGroup = h.newGroup(sqltypes.Row{sqltypes.NewNull(typ)})
						order = append(order, nullGroup)
					}
					ptrs[i] = nullGroup
					continue
				}
				k := vec.I64[i]
				grp := intGroups[k]
				if grp == nil {
					if spilling {
						keyVals[0] = sqltypes.Value{Typ: typ, I: k}
						if err := spillRow(b, i, string(exec.EncodeKey(nil, keyVals))); err != nil {
							return err
						}
						ptrs[i] = nil
						continue
					}
					cost := int64(64 + 64*len(h.Aggs))
					if !h.Tracker.TryReserve(cost) && h.SpillStore != nil {
						h.Tracker.NoteSpill()
						startSpilling()
						keyVals[0] = sqltypes.Value{Typ: typ, I: k}
						if err := spillRow(b, i, string(exec.EncodeKey(nil, keyVals))); err != nil {
							return err
						}
						ptrs[i] = nil
						continue
					}
					h.reserved += cost
					grp = h.newGroup(sqltypes.Row{{Typ: typ, I: k}})
					intGroups[k] = grp
					order = append(order, grp)
				}
				ptrs[i] = grp
			}
		case fastStr:
			vec := b.Vecs[h.GroupBy[0]]
			if vec.IsCoded() {
				if codedDict == nil {
					codedDict = vec.Dict
					codedVals = vec.DictVals
					if len(codedVals) <= denseDictLimit {
						codeArr = make([]*aggGroup, len(codedVals))
					} else {
						codeMap = make(map[uint64]*aggGroup, 1024)
					}
				} else if vec.Dict == codedDict && len(vec.DictVals) > len(codedVals) {
					codedVals = vec.DictVals
				}
			}
			sameDict := vec.IsCoded() && vec.Dict == codedDict
			for i := 0; i < n; i++ {
				if vec.IsNull(i) {
					if nullGroup == nil {
						cost := int64(64 + 64*len(h.Aggs))
						if !h.Tracker.TryReserve(cost) && h.SpillStore != nil {
							h.Tracker.Release(0)
						} else {
							h.reserved += cost
						}
						nullGroup = h.newGroup(sqltypes.Row{sqltypes.NewNull(sqltypes.String)})
						order = append(order, nullGroup)
					}
					ptrs[i] = nullGroup
					continue
				}
				var code uint64
				var s string
				haveCode := false
				if sameDict {
					code = vec.Codes[i]
					haveCode = true
				} else {
					s = vec.StrAt(i)
					if codedDict != nil {
						if id, ok := codedDict.Lookup(s); ok {
							code, haveCode = uint64(id), true
						}
					}
				}
				var grp *aggGroup
				if haveCode {
					grp = lookupCode(code)
				} else {
					grp = strGroups[s]
				}
				if grp == nil {
					if haveCode {
						if sameDict {
							s = codedVals[code] // decode once per new group
						}
						// The value may already own a group created from a
						// materialized row before any coded batch arrived.
						if g2 := strGroups[s]; g2 != nil {
							storeCode(code, g2)
							ptrs[i] = g2
							continue
						}
					}
					if spilling {
						if err := spillRow(b, i, s); err != nil {
							return err
						}
						ptrs[i] = nil
						continue
					}
					cost := int64(64+len(s)) + int64(64*len(h.Aggs))
					if !h.Tracker.TryReserve(cost) && h.SpillStore != nil {
						h.Tracker.NoteSpill()
						startSpilling()
						if err := spillRow(b, i, s); err != nil {
							return err
						}
						ptrs[i] = nil
						continue
					}
					h.reserved += cost
					grp = h.newGroup(sqltypes.Row{sqltypes.NewString(s)})
					if haveCode {
						storeCode(code, grp)
					} else {
						strGroups[s] = grp
					}
					order = append(order, grp)
				}
				ptrs[i] = grp
			}
		default:
			for i := 0; i < n; i++ {
				for c, g := range h.GroupBy {
					keyVals[c] = b.Vecs[g].Value(i)
				}
				key := string(exec.EncodeKey(nil, keyVals))
				grp := groups[key]
				if grp == nil {
					if spilling {
						if err := spillRow(b, i, key); err != nil {
							return err
						}
						ptrs[i] = nil
						continue
					}
					cost := rowBytes(keyVals) + int64(64*len(h.Aggs))
					if !h.Tracker.TryReserve(cost) && h.SpillStore != nil {
						h.Tracker.NoteSpill()
						startSpilling()
						if err := spillRow(b, i, key); err != nil {
							return err
						}
						ptrs[i] = nil
						continue
					}
					h.reserved += cost
					grp = h.newGroup(keyVals.Clone())
					groups[key] = grp
					order = append(order, grp)
				}
				ptrs[i] = grp
			}
		}

		// Accumulate each aggregate over the batch.
		for k := range h.Aggs {
			h.accumulate(k, b, ptrs, argVecs[k])
		}
	}

	// Finalize in-memory groups.
	var results []sqltypes.Row
	for _, grp := range order {
		results = append(results, grp.finalize(h.Aggs))
	}

	// Process spilled partitions: each holds a disjoint subset of the
	// overflow groups and is aggregated in memory.
	for _, part := range parts {
		if err := ctx.Err(); err != nil {
			return err
		}
		rows, err := part.readAll()
		if err != nil {
			return err
		}
		pgroups := make(map[string]*aggGroup)
		var porder []*aggGroup
		for _, r := range rows {
			for c, g := range h.GroupBy {
				keyVals[c] = r[g]
			}
			key := string(exec.EncodeKey(nil, keyVals))
			grp := pgroups[key]
			if grp == nil {
				grp = h.newGroup(keyVals.Clone())
				pgroups[key] = grp
				porder = append(porder, grp)
			}
			grp.add(h.Aggs, r)
		}
		for _, grp := range porder {
			results = append(results, grp.finalize(h.Aggs))
		}
	}

	h.out = &Values{Rows: results, Sch: h.schema}
	return h.out.Open(ctx)
}

// accumulate folds one aggregate over a batch, vectorized where the state
// kind allows; NULL rows and spilled rows (nil group pointers) are skipped.
func (h *HashAgg) accumulate(k int, b *vector.Batch, ptrs []*aggGroup, argVec *vector.Vector) {
	spec := &h.Aggs[k]
	n := b.NumRows()
	if spec.Kind == exec.CountStar {
		for _, g := range ptrs {
			if g != nil {
				g.states[k].count++
			}
		}
		return
	}
	spec.Arg.EvalVec(b, argVec)

	if spec.Distinct {
		for i := 0; i < n; i++ {
			g := ptrs[i]
			if g == nil || argVec.IsNull(i) {
				continue
			}
			st := &g.states[k]
			v := argVec.Value(i)
			key := string(exec.EncodeKey(nil, []sqltypes.Value{v}))
			if st.distinct[key] {
				continue
			}
			st.distinct[key] = true
			st.count++
			st.add(spec.Kind, v)
		}
		return
	}

	switch {
	case (spec.Kind == exec.Sum || spec.Kind == exec.Avg) && argVec.Typ != sqltypes.Float64 && argVec.Typ != sqltypes.String:
		vals := argVec.I64[:n]
		if argVec.HasNulls() {
			for i, g := range ptrs {
				if g == nil || argVec.Nulls.Get(i) {
					continue
				}
				st := &g.states[k]
				st.count++
				st.sumI += vals[i]
				st.sumF += float64(vals[i])
			}
		} else {
			for i, g := range ptrs {
				if g == nil {
					continue
				}
				st := &g.states[k]
				st.count++
				st.sumI += vals[i]
				st.sumF += float64(vals[i])
			}
		}
	case (spec.Kind == exec.Sum || spec.Kind == exec.Avg) && argVec.Typ == sqltypes.Float64:
		vals := argVec.F64[:n]
		for i, g := range ptrs {
			if g == nil || argVec.IsNull(i) {
				continue
			}
			st := &g.states[k]
			st.count++
			st.sumF += vals[i]
		}
	default: // Min, Max, Count over any type
		for i, g := range ptrs {
			if g == nil || argVec.IsNull(i) {
				continue
			}
			st := &g.states[k]
			st.count++
			st.add(spec.Kind, argVec.Value(i))
		}
	}
}

// add folds one non-NULL value into the state for Min/Max/Count (Sum/Avg use
// the vectorized loops; callers have already bumped count except for Min/Max
// paths that share this helper).
func (st *aggAcc) add(kind exec.AggKind, v sqltypes.Value) {
	switch kind {
	case exec.Sum, exec.Avg:
		st.sumI += v.I
		st.sumF += v.AsFloat()
	case exec.Min:
		if !st.seen || sqltypes.Compare(v, st.min) < 0 {
			st.min = v
		}
	case exec.Max:
		if !st.seen || sqltypes.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	st.seen = true
}

func hashString(s string) uint64 {
	var acc uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		acc = (acc ^ uint64(s[i])) * 1099511628211
	}
	return acc
}

// Next implements Operator.
func (h *HashAgg) Next() (*vector.Batch, error) { return h.out.Next() }

// Close implements Operator.
func (h *HashAgg) Close() error {
	h.Tracker.Release(h.reserved)
	h.reserved = 0
	h.out = nil
	return nil
}
