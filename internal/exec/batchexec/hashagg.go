package batchexec

import (
	"context"

	"apollo/internal/encoding"
	"apollo/internal/exec"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// HashAgg is the batch-mode hash aggregation of §5, including scalar
// aggregation (no group-by), DISTINCT aggregates, and spilling: when the
// memory grant is exhausted, rows belonging to not-yet-seen groups are
// hash-partitioned to spill files and aggregated partition by partition after
// the input is consumed (hybrid hash aggregation), so memory pressure
// degrades throughput instead of failing the query.
//
// The grouping state lives in an aggTable so that ParallelAgg can run one
// table per exchange worker and merge the partial states afterwards.
type HashAgg struct {
	In      Operator
	GroupBy []int // input column indexes
	Names   []string
	Aggs    []exec.AggSpec // Arg exprs bound to the input schema

	Tracker    *Tracker
	SpillStore *storage.Store

	schema *sqltypes.Schema
	out    *Values
	table  *aggTable
}

// NewHashAgg builds a batch aggregation. Group-by keys are input columns;
// aggregate arguments are expressions over the input schema.
func NewHashAgg(in Operator, groupBy []int, names []string, aggs []exec.AggSpec) *HashAgg {
	return &HashAgg{In: in, GroupBy: groupBy, Names: names, Aggs: aggs,
		schema: aggOutputSchema(in.Schema(), groupBy, names, aggs)}
}

// aggOutputSchema is the output layout shared by HashAgg and ParallelAgg:
// group-by keys first, then one column per aggregate.
func aggOutputSchema(in *sqltypes.Schema, groupBy []int, names []string, aggs []exec.AggSpec) *sqltypes.Schema {
	cols := make([]sqltypes.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		c := in.Cols[g]
		cols = append(cols, sqltypes.Column{Name: names[i], Typ: c.Typ, Nullable: true})
	}
	for _, a := range aggs {
		cols = append(cols, sqltypes.Column{Name: a.Name, Typ: a.ResultType(), Nullable: true})
	}
	return sqltypes.NewSchema(cols...)
}

// Schema implements Operator.
func (h *HashAgg) Schema() *sqltypes.Schema { return h.schema }

// aggGroup is one group's accumulators.
type aggGroup struct {
	keyVals sqltypes.Row
	states  []aggAcc
}

// aggAcc accumulates one aggregate.
type aggAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	min, max sqltypes.Value
	seen     bool
	distinct map[string]bool
}

func newAggGroup(aggs []exec.AggSpec, keyVals sqltypes.Row) *aggGroup {
	g := &aggGroup{keyVals: keyVals, states: make([]aggAcc, len(aggs))}
	for i, spec := range aggs {
		if spec.Distinct {
			g.states[i].distinct = make(map[string]bool)
		}
	}
	return g
}

func (g *aggGroup) add(aggs []exec.AggSpec, row sqltypes.Row) {
	for i := range aggs {
		spec := &aggs[i]
		st := &g.states[i]
		if spec.Kind == exec.CountStar {
			st.count++
			continue
		}
		v := spec.Arg.Eval(row)
		if v.Null {
			continue
		}
		if st.distinct != nil {
			key := string(exec.EncodeKey(nil, []sqltypes.Value{v}))
			if st.distinct[key] {
				continue
			}
			st.distinct[key] = true
		}
		st.count++
		switch spec.Kind {
		case exec.Sum, exec.Avg:
			st.sumI += v.I
			st.sumF += v.AsFloat()
		case exec.Min:
			if !st.seen || sqltypes.Compare(v, st.min) < 0 {
				st.min = v
			}
		case exec.Max:
			if !st.seen || sqltypes.Compare(v, st.max) > 0 {
				st.max = v
			}
		}
		st.seen = true
	}
}

// merge folds another group's partial accumulator states into g. Counts and
// sums add; min/max compare under the seen flags. DISTINCT states are not
// mergeable (see ParallelizableAggs), so merge is only reached for specs
// without them.
func (g *aggGroup) merge(aggs []exec.AggSpec, o *aggGroup) {
	for i := range aggs {
		st, os := &g.states[i], &o.states[i]
		st.count += os.count
		st.sumI += os.sumI
		st.sumF += os.sumF
		if os.seen {
			if !st.seen || sqltypes.Compare(os.min, st.min) < 0 {
				st.min = os.min
			}
			if !st.seen || sqltypes.Compare(os.max, st.max) > 0 {
				st.max = os.max
			}
			st.seen = true
		}
	}
}

func (g *aggGroup) finalize(aggs []exec.AggSpec) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(g.keyVals)+len(aggs))
	out = append(out, g.keyVals...)
	for i := range aggs {
		spec := &aggs[i]
		st := &g.states[i]
		switch spec.Kind {
		case exec.CountStar, exec.Count:
			out = append(out, sqltypes.NewInt(st.count))
		case exec.Sum:
			switch {
			case st.count == 0:
				out = append(out, sqltypes.NewNull(spec.ResultType()))
			case spec.ResultType() == sqltypes.Float64:
				out = append(out, sqltypes.NewFloat(st.sumF))
			default:
				out = append(out, sqltypes.NewInt(st.sumI))
			}
		case exec.Avg:
			if st.count == 0 {
				out = append(out, sqltypes.NewNull(sqltypes.Float64))
			} else {
				out = append(out, sqltypes.NewFloat(st.sumF/float64(st.count)))
			}
		case exec.Min:
			if !st.seen {
				out = append(out, sqltypes.NewNull(spec.ResultType()))
			} else {
				out = append(out, st.min)
			}
		default:
			if !st.seen {
				out = append(out, sqltypes.NewNull(spec.ResultType()))
			} else {
				out = append(out, st.max)
			}
		}
	}
	return out
}

const aggSpillPartitions = 8

// aggTable holds the grouping and accumulation state of one hash aggregation:
// the generic encoded-key group map, the single-column fast paths (integer
// keys, dict-code string keys), the NULL and scalar groups, and the spill
// partitions. HashAgg drives one table over its whole input; ParallelAgg
// drives one table per exchange worker and merges them (mergeAggTables).
type aggTable struct {
	aggs       []exec.AggSpec
	groupBy    []int
	inSchema   *sqltypes.Schema
	tracker    *Tracker
	spillStore *storage.Store

	groups      map[string]*aggGroup
	intGroups   map[int64]*aggGroup
	nullGroup   *aggGroup
	scalarGroup *aggGroup
	order       []*aggGroup
	parts       []*spillPartition
	spilling    bool
	reserved    int64

	// Fast path state: fastInt applies to a single integer-family group
	// column; fastStr to a single string group column. Dict-coded batches
	// group on raw dictionary codes — a dense array when the dictionary is
	// small, a code-keyed map otherwise — and no group key is decoded except
	// once when its group is created. Materialized rows (delta store,
	// fallback segments) bridge into the same groups via a dictionary lookup,
	// falling back to a string-keyed map for values the shared dictionary has
	// never seen; this is sound because dictionary ids are stable, so code
	// and string identify a group interchangeably.
	fastInt   bool
	fastStr   bool
	strGroups map[string]*aggGroup
	codeMap   map[uint64]*aggGroup
	codeArr   []*aggGroup
	codedDict *encoding.Dict
	codedVals []string

	// Per-batch scratch.
	keyVals sqltypes.Row
	ptrs    []*aggGroup
	argVecs []*vector.Vector
}

const denseDictLimit = 1 << 14

func newAggTable(inSchema *sqltypes.Schema, groupBy []int, aggs []exec.AggSpec, tracker *Tracker, spillStore *storage.Store) *aggTable {
	t := &aggTable{
		aggs:       aggs,
		groupBy:    groupBy,
		inSchema:   inSchema,
		tracker:    tracker,
		spillStore: spillStore,
		groups:     make(map[string]*aggGroup),
		keyVals:    make(sqltypes.Row, len(groupBy)),
		argVecs:    make([]*vector.Vector, len(aggs)),
	}
	t.fastInt = len(groupBy) == 1 && inSchema.Cols[groupBy[0]].Typ != sqltypes.Float64 &&
		inSchema.Cols[groupBy[0]].Typ != sqltypes.String
	if t.fastInt {
		t.intGroups = make(map[int64]*aggGroup)
	}
	t.fastStr = len(groupBy) == 1 && inSchema.Cols[groupBy[0]].Typ == sqltypes.String
	if t.fastStr {
		t.strGroups = make(map[string]*aggGroup)
	}
	if len(groupBy) == 0 {
		t.scalarGroup = newAggGroup(aggs, nil)
		t.order = append(t.order, t.scalarGroup)
	}
	for i, spec := range aggs {
		if spec.Arg != nil {
			t.argVecs[i] = vector.NewVector(spec.Arg.Type(), vector.DefaultBatchSize)
		}
	}
	return t
}

func (t *aggTable) lookupCode(code uint64) *aggGroup {
	if t.codeArr != nil {
		if code < uint64(len(t.codeArr)) {
			return t.codeArr[code]
		}
		return nil
	}
	return t.codeMap[code]
}

func (t *aggTable) storeCode(code uint64, g *aggGroup) {
	if t.codeArr != nil {
		if code >= uint64(len(t.codeArr)) {
			if code < denseDictLimit {
				na := make([]*aggGroup, code+1+code/2)
				copy(na, t.codeArr)
				t.codeArr = na
			} else {
				// Dictionary outgrew the dense range: degrade to a map.
				t.codeMap = make(map[uint64]*aggGroup, len(t.codeArr))
				for c, gr := range t.codeArr {
					if gr != nil {
						t.codeMap[uint64(c)] = gr
					}
				}
				t.codeArr = nil
				t.codeMap[code] = g
				return
			}
		}
		t.codeArr[code] = g
		return
	}
	t.codeMap[code] = g
}

func (t *aggTable) startSpilling() {
	t.spilling = true
	t.parts = make([]*spillPartition, aggSpillPartitions)
	for j := range t.parts {
		t.parts[j] = newSpillPartition(t.spillStore, t.inSchema)
	}
}

// spillRow routes physical row i of a (compacted) batch to a partition by
// group-key hash; the partition writes dict-coded cells as raw codes.
func (t *aggTable) spillRow(b *vector.Batch, i int, key string) error {
	part := int(hashString(key)>>57) % aggSpillPartitions
	return t.parts[part].addBatchRow(b, i)
}

// addBatch folds one compacted batch into the table. Aggregation is
// vectorized: group pointers are resolved per batch (with the single-column
// fast paths), each aggregate argument is evaluated once per batch into a
// vector, and accumulation runs in tight loops over the vector payloads.
func (t *aggTable) addBatch(b *vector.Batch) error {
	b.Compact()
	n := b.NumRows()
	if n == 0 {
		return nil
	}
	if cap(t.ptrs) < n {
		t.ptrs = make([]*aggGroup, n)
	}
	ptrs := t.ptrs[:n]

	// Resolve the group of every row.
	switch {
	case t.scalarGroup != nil:
		for i := range ptrs {
			ptrs[i] = t.scalarGroup
		}
	case t.fastInt:
		mAggBatchesFastInt.Inc()
		vec := b.Vecs[t.groupBy[0]]
		typ := t.inSchema.Cols[t.groupBy[0]].Typ
		for i := 0; i < n; i++ {
			if vec.IsNull(i) {
				if t.nullGroup == nil {
					cost := int64(64 + 64*len(t.aggs))
					if !t.tracker.TryReserve(cost) && t.spillStore != nil {
						// A single NULL group is cheap; charge it anyway.
						t.tracker.Release(0)
					} else {
						t.reserved += cost
					}
					t.nullGroup = newAggGroup(t.aggs, sqltypes.Row{sqltypes.NewNull(typ)})
					t.order = append(t.order, t.nullGroup)
				}
				ptrs[i] = t.nullGroup
				continue
			}
			k := vec.I64[i]
			grp := t.intGroups[k]
			if grp == nil {
				if t.spilling {
					t.keyVals[0] = sqltypes.Value{Typ: typ, I: k}
					if err := t.spillRow(b, i, string(exec.EncodeKey(nil, t.keyVals))); err != nil {
						return err
					}
					ptrs[i] = nil
					continue
				}
				cost := int64(64 + 64*len(t.aggs))
				if !t.tracker.TryReserve(cost) && t.spillStore != nil {
					t.tracker.NoteSpill()
					t.startSpilling()
					t.keyVals[0] = sqltypes.Value{Typ: typ, I: k}
					if err := t.spillRow(b, i, string(exec.EncodeKey(nil, t.keyVals))); err != nil {
						return err
					}
					ptrs[i] = nil
					continue
				}
				t.reserved += cost
				grp = newAggGroup(t.aggs, sqltypes.Row{{Typ: typ, I: k}})
				t.intGroups[k] = grp
				t.order = append(t.order, grp)
			}
			ptrs[i] = grp
		}
	case t.fastStr:
		vec := b.Vecs[t.groupBy[0]]
		if vec.IsCoded() {
			if t.codedDict == nil {
				t.codedDict = vec.Dict
				t.codedVals = vec.DictVals
				if len(t.codedVals) <= denseDictLimit {
					t.codeArr = make([]*aggGroup, len(t.codedVals))
				} else {
					t.codeMap = make(map[uint64]*aggGroup, 1024)
				}
			} else if vec.Dict == t.codedDict && len(vec.DictVals) > len(t.codedVals) {
				t.codedVals = vec.DictVals
			}
		}
		sameDict := vec.IsCoded() && vec.Dict == t.codedDict
		if sameDict {
			mAggBatchesCoded.Inc()
		} else {
			mAggBatchesStr.Inc()
		}
		for i := 0; i < n; i++ {
			if vec.IsNull(i) {
				if t.nullGroup == nil {
					cost := int64(64 + 64*len(t.aggs))
					if !t.tracker.TryReserve(cost) && t.spillStore != nil {
						t.tracker.Release(0)
					} else {
						t.reserved += cost
					}
					t.nullGroup = newAggGroup(t.aggs, sqltypes.Row{sqltypes.NewNull(sqltypes.String)})
					t.order = append(t.order, t.nullGroup)
				}
				ptrs[i] = t.nullGroup
				continue
			}
			var code uint64
			var s string
			haveCode := false
			if sameDict {
				code = vec.Codes[i]
				haveCode = true
			} else {
				s = vec.StrAt(i)
				if t.codedDict != nil {
					if id, ok := t.codedDict.Lookup(s); ok {
						code, haveCode = uint64(id), true
					}
				}
			}
			var grp *aggGroup
			if haveCode {
				grp = t.lookupCode(code)
			} else {
				grp = t.strGroups[s]
			}
			if grp == nil {
				if haveCode {
					if sameDict {
						s = t.codedVals[code] // decode once per new group
					}
					// The value may already own a group created from a
					// materialized row before any coded batch arrived.
					if g2 := t.strGroups[s]; g2 != nil {
						t.storeCode(code, g2)
						ptrs[i] = g2
						continue
					}
				}
				if t.spilling {
					if err := t.spillRow(b, i, s); err != nil {
						return err
					}
					ptrs[i] = nil
					continue
				}
				cost := int64(64+len(s)) + int64(64*len(t.aggs))
				if !t.tracker.TryReserve(cost) && t.spillStore != nil {
					t.tracker.NoteSpill()
					t.startSpilling()
					if err := t.spillRow(b, i, s); err != nil {
						return err
					}
					ptrs[i] = nil
					continue
				}
				t.reserved += cost
				grp = newAggGroup(t.aggs, sqltypes.Row{sqltypes.NewString(s)})
				if haveCode {
					t.storeCode(code, grp)
				} else {
					t.strGroups[s] = grp
				}
				t.order = append(t.order, grp)
			}
			ptrs[i] = grp
		}
	default:
		mAggBatchesGeneric.Inc()
		for i := 0; i < n; i++ {
			for c, g := range t.groupBy {
				t.keyVals[c] = b.Vecs[g].Value(i)
			}
			key := string(exec.EncodeKey(nil, t.keyVals))
			grp := t.groups[key]
			if grp == nil {
				if t.spilling {
					if err := t.spillRow(b, i, key); err != nil {
						return err
					}
					ptrs[i] = nil
					continue
				}
				cost := rowBytes(t.keyVals) + int64(64*len(t.aggs))
				if !t.tracker.TryReserve(cost) && t.spillStore != nil {
					t.tracker.NoteSpill()
					t.startSpilling()
					if err := t.spillRow(b, i, key); err != nil {
						return err
					}
					ptrs[i] = nil
					continue
				}
				t.reserved += cost
				grp = newAggGroup(t.aggs, t.keyVals.Clone())
				t.groups[key] = grp
				t.order = append(t.order, grp)
			}
			ptrs[i] = grp
		}
	}

	// Accumulate each aggregate over the batch.
	for k := range t.aggs {
		t.accumulate(k, b, ptrs, t.argVecs[k])
	}
	return nil
}

// results finalizes the in-memory groups and then the spilled partitions.
// Each spilled partition holds a disjoint subset of the overflow groups (the
// in-memory groups were created before spilling began and absorb their rows
// directly), so partitions are aggregated independently in memory.
func (t *aggTable) results(ctx context.Context) ([]sqltypes.Row, error) {
	var results []sqltypes.Row
	for _, grp := range t.order {
		results = append(results, grp.finalize(t.aggs))
	}
	for _, part := range t.parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := part.readAll()
		if err != nil {
			return nil, err
		}
		pgroups := make(map[string]*aggGroup)
		var porder []*aggGroup
		for _, r := range rows {
			for c, g := range t.groupBy {
				t.keyVals[c] = r[g]
			}
			key := string(exec.EncodeKey(nil, t.keyVals))
			grp := pgroups[key]
			if grp == nil {
				grp = newAggGroup(t.aggs, t.keyVals.Clone())
				pgroups[key] = grp
				porder = append(porder, grp)
			}
			grp.add(t.aggs, r)
		}
		for _, grp := range porder {
			results = append(results, grp.finalize(t.aggs))
		}
	}
	return results, nil
}

// release returns the table's memory grant and drops any unread spill blobs.
func (t *aggTable) release() {
	t.tracker.Release(t.reserved)
	t.reserved = 0
	for _, p := range t.parts {
		if p != nil {
			p.drop()
		}
	}
	t.parts = nil
}

// Open implements Operator: consumes the whole input and aggregates.
func (h *HashAgg) Open(ctx context.Context) error {
	if err := h.In.Open(ctx); err != nil {
		return err
	}
	defer h.In.Close()

	t := newAggTable(h.In.Schema(), h.GroupBy, h.Aggs, h.Tracker, h.SpillStore)
	h.table = t
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := h.In.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if err := t.addBatch(b); err != nil {
			return err
		}
	}

	results, err := t.results(ctx)
	if err != nil {
		return err
	}
	h.out = &Values{Rows: results, Sch: h.schema}
	return h.out.Open(ctx)
}

// accumulate folds one aggregate over a batch, vectorized where the state
// kind allows; NULL rows and spilled rows (nil group pointers) are skipped.
func (t *aggTable) accumulate(k int, b *vector.Batch, ptrs []*aggGroup, argVec *vector.Vector) {
	spec := &t.aggs[k]
	n := b.NumRows()
	if spec.Kind == exec.CountStar {
		for _, g := range ptrs {
			if g != nil {
				g.states[k].count++
			}
		}
		return
	}
	spec.Arg.EvalVec(b, argVec)

	if spec.Distinct {
		for i := 0; i < n; i++ {
			g := ptrs[i]
			if g == nil || argVec.IsNull(i) {
				continue
			}
			st := &g.states[k]
			v := argVec.Value(i)
			key := string(exec.EncodeKey(nil, []sqltypes.Value{v}))
			if st.distinct[key] {
				continue
			}
			st.distinct[key] = true
			st.count++
			st.add(spec.Kind, v)
		}
		return
	}

	switch {
	case (spec.Kind == exec.Sum || spec.Kind == exec.Avg) && argVec.Typ != sqltypes.Float64 && argVec.Typ != sqltypes.String:
		vals := argVec.I64[:n]
		if argVec.HasNulls() {
			for i, g := range ptrs {
				if g == nil || argVec.Nulls.Get(i) {
					continue
				}
				st := &g.states[k]
				st.count++
				st.sumI += vals[i]
				st.sumF += float64(vals[i])
			}
		} else {
			for i, g := range ptrs {
				if g == nil {
					continue
				}
				st := &g.states[k]
				st.count++
				st.sumI += vals[i]
				st.sumF += float64(vals[i])
			}
		}
	case (spec.Kind == exec.Sum || spec.Kind == exec.Avg) && argVec.Typ == sqltypes.Float64:
		vals := argVec.F64[:n]
		for i, g := range ptrs {
			if g == nil || argVec.IsNull(i) {
				continue
			}
			st := &g.states[k]
			st.count++
			st.sumF += vals[i]
		}
	default: // Min, Max, Count over any type
		for i, g := range ptrs {
			if g == nil || argVec.IsNull(i) {
				continue
			}
			st := &g.states[k]
			st.count++
			st.add(spec.Kind, argVec.Value(i))
		}
	}
}

// add folds one non-NULL value into the state for Min/Max/Count (Sum/Avg use
// the vectorized loops; callers have already bumped count except for Min/Max
// paths that share this helper).
func (st *aggAcc) add(kind exec.AggKind, v sqltypes.Value) {
	switch kind {
	case exec.Sum, exec.Avg:
		st.sumI += v.I
		st.sumF += v.AsFloat()
	case exec.Min:
		if !st.seen || sqltypes.Compare(v, st.min) < 0 {
			st.min = v
		}
	case exec.Max:
		if !st.seen || sqltypes.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	st.seen = true
}

func hashString(s string) uint64 {
	var acc uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		acc = (acc ^ uint64(s[i])) * 1099511628211
	}
	return acc
}

// Next implements Operator.
func (h *HashAgg) Next() (*vector.Batch, error) { return h.out.Next() }

// Close implements Operator.
func (h *HashAgg) Close() error {
	if h.table != nil {
		h.table.release()
		h.table = nil
	}
	h.out = nil
	return nil
}
