// Package batchexec is the batch-mode (vectorized) execution engine of the
// paper's §5: operators exchange ~900-row batches of column vectors with a
// qualifying-rows selection vector. The scan pushes predicates down onto
// encoded (compressed) data and honors bitmap (Bloom) filters produced by
// hash-join builds; hash join supports the full join repertoire the upcoming
// release added (inner, outer, semi, anti); hash aggregation spills under
// memory pressure instead of failing.
//
// String columns practice late materialization: dict-encoded segments emit
// raw dictionary codes (vector.Vector's coded form, sharing the table's
// primary dictionary), and operators consume them directly — comparisons
// translate to code space, hash agg groups on codes, hash join builds and
// probes on codes when both sides share a dictionary, and spill files carry
// codes. Strings decode only at the pipeline edge (Batch.Row) or at an
// explicit Materialize boundary chosen by the planner. Batches are
// mixed-representation: delta-store rows travel materialized alongside coded
// segment batches, and every consumer bridges the two forms.
//
// Queries run under a context.Context threaded through Open: operators
// observe cancellation and deadlines at batch granularity, and the parallel
// scan's workers shut down through the same context. Panics are contained at
// operator boundaries (see Guard) and converted to qerr.QueryErrors, so a
// corrupt segment or an operator bug fails one query, never the process.
package batchexec

import (
	"context"

	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// Operator produces a stream of batches. Open receives the query context;
// implementations must stop producing (returning ctx.Err()) promptly after
// cancellation. Next returns nil at end of stream. Returned batches are owned
// by the consumer until the next Next call; in practice every producer in
// this package allocates a fresh batch per Next (or forwards its child's),
// which is what lets the exchange operators (exchange.go) hand batches to a
// different goroutine than the one that will issue the next Next.
type Operator interface {
	Schema() *sqltypes.Schema
	Open(ctx context.Context) error
	Next() (*vector.Batch, error)
	Close() error
}

// Drain runs an operator to completion under a background context.
func Drain(op Operator) ([]sqltypes.Row, error) {
	return DrainContext(context.Background(), op)
}

// DrainContext runs an operator to completion, materializing qualifying rows.
// It is the executor's outermost panic-containment boundary: a panic anywhere
// in an unguarded operator tree is converted to a QueryError instead of
// crashing the process.
func DrainContext(ctx context.Context, op Operator) (out []sqltypes.Row, err error) {
	defer func() {
		if e := qerr.FromPanic("executor", qerr.NoGroup, recover()); e != nil {
			out, err = nil, e
		}
	}()
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
}

// StreamContext runs an operator to completion, delivering each result row
// to fn as it is produced instead of materializing the result set — the
// serving path's chunked result encoding. Rows are owned by the callee only
// for the duration of the call (they may alias batch storage); fn must copy
// what it keeps. An error from fn aborts the query and is returned.
func StreamContext(ctx context.Context, op Operator, fn func(sqltypes.Row) error) (err error) {
	defer func() {
		if e := qerr.FromPanic("executor", qerr.NoGroup, recover()); e != nil {
			err = e
		}
	}()
	if err := op.Open(ctx); err != nil {
		return err
	}
	defer op.Close()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for i := 0; i < b.Len(); i++ {
			if err := fn(b.Row(i)); err != nil {
				return err
			}
		}
	}
}

// Count runs an operator to completion under a background context.
func Count(op Operator) (int, error) {
	return CountContext(context.Background(), op)
}

// CountContext runs an operator to completion, returning the qualifying row
// count without materializing rows.
func CountContext(ctx context.Context, op Operator) (n int, err error) {
	defer func() {
		if e := qerr.FromPanic("executor", qerr.NoGroup, recover()); e != nil {
			n, err = 0, e
		}
	}()
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	defer op.Close()
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		b, err := op.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
	}
}

// Values replays a fixed row set in batches (testing and INSERT..SELECT).
type Values struct {
	Rows []sqltypes.Row
	Sch  *sqltypes.Schema
	pos  int
}

// Schema implements Operator.
func (v *Values) Schema() *sqltypes.Schema { return v.Sch }

// Open implements Operator.
func (v *Values) Open(ctx context.Context) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (*vector.Batch, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	n := len(v.Rows) - v.pos
	if n > vector.DefaultBatchSize {
		n = vector.DefaultBatchSize
	}
	b := vector.NewBatch(v.Sch, n)
	b.SetNumRows(n)
	for i := 0; i < n; i++ {
		row := v.Rows[v.pos+i]
		for c := range b.Vecs {
			b.Vecs[c].SetValue(i, row[c])
		}
	}
	v.pos += n
	return b, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }
