// Package batchexec is the batch-mode (vectorized) execution engine of the
// paper's §5: operators exchange ~900-row batches of column vectors with a
// qualifying-rows selection vector. The scan pushes predicates down onto
// encoded (compressed) data and honors bitmap (Bloom) filters produced by
// hash-join builds; hash join supports the full join repertoire the upcoming
// release added (inner, outer, semi, anti); hash aggregation spills under
// memory pressure instead of failing.
package batchexec

import (
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// Operator produces a stream of batches. Next returns nil at end of stream.
// Returned batches are owned by the consumer until the next Next call.
type Operator interface {
	Schema() *sqltypes.Schema
	Open() error
	Next() (*vector.Batch, error)
	Close() error
}

// Drain runs an operator to completion, materializing qualifying rows.
func Drain(op Operator) ([]sqltypes.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []sqltypes.Row
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
}

// Count runs an operator to completion, returning the qualifying row count
// without materializing rows.
func Count(op Operator) (int, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
	}
}

// Values replays a fixed row set in batches (testing and INSERT..SELECT).
type Values struct {
	Rows []sqltypes.Row
	Sch  *sqltypes.Schema
	pos  int
}

// Schema implements Operator.
func (v *Values) Schema() *sqltypes.Schema { return v.Sch }

// Open implements Operator.
func (v *Values) Open() error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (*vector.Batch, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	n := len(v.Rows) - v.pos
	if n > vector.DefaultBatchSize {
		n = vector.DefaultBatchSize
	}
	b := vector.NewBatch(v.Sch, n)
	b.SetNumRows(n)
	for i := 0; i < n; i++ {
		row := v.Rows[v.pos+i]
		for c := range b.Vecs {
			b.Vecs[c].SetValue(i, row[c])
		}
	}
	v.pos += n
	return b, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }
