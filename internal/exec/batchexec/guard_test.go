package batchexec

import (
	"context"
	"errors"
	"testing"

	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// panicOp blows up on the second Next call — after producing a batch, like a
// mid-query operator bug would.
type panicOp struct {
	sch   *sqltypes.Schema
	calls int
}

func (p *panicOp) Schema() *sqltypes.Schema      { return p.sch }
func (p *panicOp) Open(context.Context) error    { return nil }
func (p *panicOp) Close() error                  { return nil }
func (p *panicOp) Next() (*vector.Batch, error) {
	p.calls++
	if p.calls > 1 {
		panic("operator bug")
	}
	b := vector.NewBatch(p.sch, 1)
	b.AppendRow(sqltypes.Row{sqltypes.NewInt(1)})
	return b, nil
}

func TestGuardContainsPanic(t *testing.T) {
	sch := sqltypes.NewSchema(sqltypes.Column{Name: "x", Typ: sqltypes.Int64})
	g := NewGuard(&panicOp{sch: sch}, "boom")
	_, err := DrainContext(context.Background(), g)
	if err == nil {
		t.Fatal("panic was not converted to an error")
	}
	var qe *qerr.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("not a QueryError: %v", err)
	}
	if !qe.Panicked || qe.Op != "boom" {
		t.Fatalf("panic attribution wrong: %+v", qe)
	}
}

func TestGuardObservesCancellation(t *testing.T) {
	sch := sqltypes.NewSchema(sqltypes.Column{Name: "x", Typ: sqltypes.Int64})
	rows := make([]sqltypes.Row, 10)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	g := NewGuard(&Values{Rows: rows, Sch: sch}, "values")
	ctx, cancel := context.WithCancel(context.Background())
	if err := g.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Next(); err != nil {
		t.Fatalf("first batch should flow: %v", err)
	}
	cancel()
	if _, err := g.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}
