package batchexec

import (
	"context"
	"fmt"

	"apollo/internal/bloom"
	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// BloomTarget is the handle through which a hash-join build publishes its
// bitmap (Bloom) filter to a downstream scan. The planner creates one target,
// hands it to both the join (producer) and the probe-side scan (consumer);
// because the build completes before the probe opens, the scan always sees
// either nil (no filtering) or the finished filter.
type BloomTarget struct {
	F *bloom.Filter
}

// HashJoin is the batch-mode hash join supporting the full repertoire of §5:
// inner, left/right/full outer, left semi, and left anti. Join keys are
// column indexes on each side (the planner projects expression keys into
// columns first). Output layout: probe columns ++ build columns, except
// semi/anti which emit probe columns only.
//
// When a memory Tracker is set and the build side exceeds its grant, the join
// switches to a grace hash join: both sides are hash-partitioned to spill
// files and partitions are joined one at a time.
type HashJoin struct {
	Probe, Build Operator
	ProbeKeys    []int
	BuildKeys    []int
	Type         exec.JoinType
	Residual     expr.Expr // over probe++build layout; may be nil

	// BloomOut, when non-nil, receives a filter over the first build key
	// after the build phase (single-key joins only).
	BloomOut *BloomTarget

	// Tracker and SpillStore enable spilling; nil Tracker = unlimited grant.
	Tracker    *Tracker
	SpillStore *storage.Store

	schema  *sqltypes.Schema
	ctx     context.Context
	core    *joinCore
	pending []*vector.Batch
	state   int // 0 probing, 1 unmatched-build, 2 done

	// Spill mode.
	spilled       bool
	partBuild     []*spillPartition
	partProbe     []*spillPartition
	partIdx       int
	partProbeRows []sqltypes.Row
	partProbePos  int
	reservedBytes int64
}

// NewHashJoin constructs a batch hash join.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []int, jt exec.JoinType, residual expr.Expr) (*HashJoin, error) {
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("batchexec: join needs matching non-empty key lists")
	}
	h := &HashJoin{Probe: probe, Build: build, ProbeKeys: probeKeys, BuildKeys: buildKeys, Type: jt, Residual: residual}
	switch jt {
	case exec.LeftSemi, exec.LeftAnti:
		h.schema = probe.Schema()
	default:
		h.schema = probe.Schema().Concat(build.Schema())
	}
	return h, nil
}

// Schema implements Operator.
func (h *HashJoin) Schema() *sqltypes.Schema { return h.schema }

// Open implements Operator: drains the build side, publishes the bitmap
// filter, then opens the probe side.
func (h *HashJoin) Open(ctx context.Context) error {
	h.ctx = ctx
	h.pending = nil
	h.state = 0
	h.spilled = false
	h.partIdx = -1

	buildRows, overflow, err := h.drainBuild(ctx)
	if err != nil {
		return err
	}

	if overflow {
		if err := h.enterSpillMode(ctx, buildRows); err != nil {
			return err
		}
		return nil // probe drained inside enterSpillMode
	}

	h.core = newJoinCore(h, buildRows)
	h.publishBloom(buildRows)
	return h.Probe.Open(ctx)
}

// drainBuild consumes the build input, stopping early (overflow=true) only in
// accounting terms — all rows are always returned; overflow indicates the
// grant was exceeded.
func (h *HashJoin) drainBuild(ctx context.Context) ([]sqltypes.Row, bool, error) {
	if err := h.Build.Open(ctx); err != nil {
		return nil, false, err
	}
	defer h.Build.Close()
	var rows []sqltypes.Row
	overflow := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		b, err := h.Build.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return rows, overflow, nil
		}
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			n := rowBytes(row)
			if !overflow && !h.Tracker.TryReserve(n) {
				overflow = h.SpillStore != nil
				if overflow {
					h.Tracker.NoteSpill()
				}
			}
			if !overflow {
				h.reservedBytes += n
			}
			rows = append(rows, row)
		}
	}
}

func (h *HashJoin) publishBloom(buildRows []sqltypes.Row) {
	if h.BloomOut == nil || len(h.BuildKeys) != 1 {
		return
	}
	f := bloom.New(len(buildRows), bloom.DefaultBitsPerKey)
	k := h.BuildKeys[0]
	for _, r := range buildRows {
		if !r[k].Null {
			f.Add(r[k])
		}
	}
	h.BloomOut.F = f
}

// Close implements Operator.
func (h *HashJoin) Close() error {
	h.Tracker.Release(h.reservedBytes)
	h.reservedBytes = 0
	h.core = nil
	for _, p := range h.partBuild {
		if p != nil {
			p.drop()
		}
	}
	for _, p := range h.partProbe {
		if p != nil {
			p.drop()
		}
	}
	h.partBuild, h.partProbe = nil, nil
	if !h.spilled {
		return h.Probe.Close()
	}
	return nil
}

// Next implements Operator.
func (h *HashJoin) Next() (*vector.Batch, error) {
	for {
		if len(h.pending) > 0 {
			b := h.pending[0]
			h.pending = h.pending[1:]
			return b, nil
		}
		if h.spilled {
			b, err := h.nextSpilled()
			if err != nil || b != nil {
				return b, err
			}
			return nil, nil
		}
		switch h.state {
		case 0:
			b, err := h.Probe.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				h.state = 1
				continue
			}
			h.pending = h.core.probeBatch(b)
		case 1:
			h.state = 2
			h.pending = h.core.unmatchedBuild()
		default:
			return nil, nil
		}
	}
}

// --- In-memory join core ---

// joinCore joins a fixed build row set against streamed probe batches. The
// build side is also materialized column-wise so join output is assembled
// with typed gather loops instead of per-row value copies.
type joinCore struct {
	h         *HashJoin
	buildRows []sqltypes.Row
	buildCols []*vector.Vector
	matched   []bool
	// Fast path: single int64-family key.
	htInt map[int64][]int32
	// General path: encoded multi-column keys.
	htGen  map[string][]int32
	keyBuf []byte
}

func newJoinCore(h *HashJoin, buildRows []sqltypes.Row) *joinCore {
	c := &joinCore{h: h, buildRows: buildRows, matched: make([]bool, len(buildRows))}
	bs := h.Build.Schema()
	c.buildCols = make([]*vector.Vector, bs.Len())
	for ci, col := range bs.Cols {
		v := vector.NewVector(col.Typ, len(buildRows))
		for i, r := range buildRows {
			v.SetValue(i, r[ci])
		}
		c.buildCols[ci] = v
	}
	if c.fastKey() {
		c.htInt = make(map[int64][]int32, len(buildRows))
		k := h.BuildKeys[0]
		for i, r := range buildRows {
			v := r[k]
			if v.Null {
				continue
			}
			c.htInt[keyInt(v)] = append(c.htInt[keyInt(v)], int32(i))
		}
		return c
	}
	c.htGen = make(map[string][]int32, len(buildRows))
	keyVals := make([]sqltypes.Value, len(h.BuildKeys))
	for i, r := range buildRows {
		null := false
		for j, k := range h.BuildKeys {
			keyVals[j] = r[k]
			null = null || r[k].Null
		}
		if null {
			continue
		}
		key := string(exec.EncodeKey(c.keyBuf[:0], keyVals))
		c.htGen[key] = append(c.htGen[key], int32(i))
	}
	return c
}

// fastKey reports whether the single join key is int64-family on both sides.
func (c *joinCore) fastKey() bool {
	h := c.h
	if len(h.BuildKeys) != 1 {
		return false
	}
	bt := h.Build.Schema().Cols[h.BuildKeys[0]].Typ
	pt := h.Probe.Schema().Cols[h.ProbeKeys[0]].Typ
	intFamily := func(t sqltypes.Type) bool {
		return t == sqltypes.Int64 || t == sqltypes.Date || t == sqltypes.Bool
	}
	return intFamily(bt) && intFamily(pt)
}

func keyInt(v sqltypes.Value) int64 { return v.I }

// lookup returns build row candidates for probe row values.
func (c *joinCore) lookup(keyVals []sqltypes.Value) []int32 {
	if c.htInt != nil {
		return c.htInt[keyInt(keyVals[0])]
	}
	return c.htGen[string(exec.EncodeKey(c.keyBuf[:0], keyVals))]
}

// probeBatch joins one probe batch, returning zero or more output batches.
func (c *joinCore) probeBatch(b *vector.Batch) []*vector.Batch {
	h := c.h
	b.Compact()
	n := b.NumRows()
	if n == 0 {
		return nil
	}

	probeWidth := h.Probe.Schema().Len()
	keyVals := make([]sqltypes.Value, len(h.ProbeKeys))
	joined := make(sqltypes.Row, probeWidth+h.Build.Schema().Len())

	switch h.Type {
	case exec.LeftSemi, exec.LeftAnti:
		sel := make([]int, 0, n)
		for i := 0; i < n; i++ {
			null := false
			for j, k := range h.ProbeKeys {
				keyVals[j] = b.Vecs[k].Value(i)
				null = null || keyVals[j].Null
			}
			found := false
			if !null {
				for _, bi := range c.lookup(keyVals) {
					if c.residualOK(b, i, c.buildRows[bi], joined, probeWidth) {
						found = true
						break
					}
				}
			}
			if found == (h.Type == exec.LeftSemi) {
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			return nil
		}
		b.Sel = sel
		return []*vector.Batch{b}
	}

	// Inner/outer joins: collect matching (probe, build) pairs, then gather
	// them into output batches column by column.
	var probeIdx, buildIdx []int32 // buildIdx -1 = null-extended
	if c.htInt != nil && !b.Vecs[h.ProbeKeys[0]].HasNulls() && h.Residual == nil {
		// Hot path: single non-null int key, no residual.
		keys := b.Vecs[h.ProbeKeys[0]].I64[:n]
		leftOuter := h.Type == exec.LeftOuter || h.Type == exec.FullOuter
		for i, k := range keys {
			matches := c.htInt[k]
			if len(matches) == 0 {
				if leftOuter {
					probeIdx = append(probeIdx, int32(i))
					buildIdx = append(buildIdx, -1)
				}
				continue
			}
			for _, bi := range matches {
				c.matched[bi] = true
				probeIdx = append(probeIdx, int32(i))
				buildIdx = append(buildIdx, bi)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			null := false
			for j, k := range h.ProbeKeys {
				keyVals[j] = b.Vecs[k].Value(i)
				null = null || keyVals[j].Null
			}
			matched := false
			if !null {
				for _, bi := range c.lookup(keyVals) {
					if c.residualOK(b, i, c.buildRows[bi], joined, probeWidth) {
						matched = true
						c.matched[bi] = true
						probeIdx = append(probeIdx, int32(i))
						buildIdx = append(buildIdx, bi)
					}
				}
			}
			if !matched && (h.Type == exec.LeftOuter || h.Type == exec.FullOuter) {
				probeIdx = append(probeIdx, int32(i))
				buildIdx = append(buildIdx, -1)
			}
		}
	}

	var outs []*vector.Batch
	for start := 0; start < len(probeIdx); start += vector.DefaultBatchSize {
		end := start + vector.DefaultBatchSize
		if end > len(probeIdx) {
			end = len(probeIdx)
		}
		outs = append(outs, c.gather(b, probeIdx[start:end], buildIdx[start:end], probeWidth))
	}
	return outs
}

// gather assembles one output batch from (probe, build) index pairs using
// typed per-column loops.
func (c *joinCore) gather(b *vector.Batch, probeIdx, buildIdx []int32, probeWidth int) *vector.Batch {
	h := c.h
	m := len(probeIdx)
	out := vector.NewBatch(h.schema, m)
	out.SetNumRows(m)
	for ci := 0; ci < probeWidth; ci++ {
		gatherVec(out.Vecs[ci], b.Vecs[ci], probeIdx)
	}
	for ci, src := range c.buildCols {
		dst := out.Vecs[probeWidth+ci]
		gatherVec(dst, src, buildIdx)
		for i, bi := range buildIdx {
			if bi < 0 {
				dst.SetNull(i)
			}
		}
	}
	return out
}

// gatherVec copies src rows at idxs into dst (negative indexes are left for
// the caller to null out).
func gatherVec(dst, src *vector.Vector, idxs []int32) {
	switch dst.Typ {
	case sqltypes.Float64:
		d := dst.F64[:len(idxs)]
		for i, j := range idxs {
			if j >= 0 {
				d[i] = src.F64[j]
			}
		}
	case sqltypes.String:
		d := dst.Str[:len(idxs)]
		for i, j := range idxs {
			if j >= 0 {
				d[i] = src.Str[j]
			}
		}
	default:
		d := dst.I64[:len(idxs)]
		for i, j := range idxs {
			if j >= 0 {
				d[i] = src.I64[j]
			}
		}
	}
	if src.Nulls != nil {
		for i, j := range idxs {
			if j >= 0 && src.Nulls.Get(int(j)) {
				dst.SetNull(i)
			}
		}
	}
}

func (c *joinCore) residualOK(b *vector.Batch, probeIdx int, build sqltypes.Row, joined sqltypes.Row, probeWidth int) bool {
	if c.h.Residual == nil {
		return true
	}
	for ci := 0; ci < probeWidth; ci++ {
		joined[ci] = b.Vecs[ci].Value(probeIdx)
	}
	copy(joined[probeWidth:], build)
	v := c.h.Residual.Eval(joined)
	return !v.Null && v.I != 0
}

// unmatchedBuild emits null-extended build rows for right/full outer joins.
func (c *joinCore) unmatchedBuild() []*vector.Batch {
	h := c.h
	if h.Type != exec.RightOuter && h.Type != exec.FullOuter {
		return nil
	}
	probeWidth := h.Probe.Schema().Len()
	var outs []*vector.Batch
	out := vector.NewBatch(h.schema, vector.DefaultBatchSize)
	outRows := 0
	for bi, m := range c.matched {
		if m {
			continue
		}
		if outRows == 0 {
			out.SetNumRows(vector.DefaultBatchSize)
		}
		for ci := 0; ci < probeWidth; ci++ {
			out.Vecs[ci].SetNull(outRows)
		}
		for ci, v := range c.buildRows[bi] {
			out.Vecs[probeWidth+ci].SetValue(outRows, v)
		}
		outRows++
		if outRows == vector.DefaultBatchSize {
			out.SetRowCountNoReset(outRows)
			outs = append(outs, out)
			out = vector.NewBatch(h.schema, vector.DefaultBatchSize)
			outRows = 0
		}
	}
	if outRows > 0 {
		out.SetRowCountNoReset(outRows)
		outs = append(outs, out)
	}
	return outs
}

// --- Grace (spilling) mode ---

const spillPartitions = 8

// enterSpillMode partitions build rows and the entire probe input to spill
// files, then joins partition pairs one at a time.
func (h *HashJoin) enterSpillMode(ctx context.Context, buildRows []sqltypes.Row) error {
	h.spilled = true
	h.Tracker.Release(h.reservedBytes)
	h.reservedBytes = 0

	h.partBuild = make([]*spillPartition, spillPartitions)
	h.partProbe = make([]*spillPartition, spillPartitions)
	for i := range h.partBuild {
		h.partBuild[i] = newSpillPartition(h.SpillStore, h.Build.Schema())
		h.partProbe[i] = newSpillPartition(h.SpillStore, h.Probe.Schema())
	}

	for _, r := range buildRows {
		p := h.partitionOf(r, h.BuildKeys)
		if err := h.partBuild[p].add(r); err != nil {
			return err
		}
	}
	h.publishBloom(buildRows)

	if err := h.Probe.Open(ctx); err != nil {
		return err
	}
	defer h.Probe.Close()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := h.Probe.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			r := b.Row(i)
			p := h.partitionOf(r, h.ProbeKeys)
			if err := h.partProbe[p].add(r); err != nil {
				return err
			}
		}
	}
	h.partIdx = -1
	return nil
}

// partitionOf assigns a row to a spill partition by key hash; NULL keys land
// in partition 0 (they never match, but outer joins still emit them).
func (h *HashJoin) partitionOf(r sqltypes.Row, keys []int) int {
	var acc uint64 = 14695981039346656037
	for _, k := range keys {
		if r[k].Null {
			return 0
		}
		acc = (acc ^ sqltypes.Hash(r[k])) * 1099511628211
	}
	// Use high bits: low bits fed the in-memory hash table.
	return int(acc>>57) % spillPartitions
}

// nextSpilled advances through partition pairs.
func (h *HashJoin) nextSpilled() (*vector.Batch, error) {
	for {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		// Emit probe batches of the current partition.
		if h.partIdx >= 0 && h.partIdx < spillPartitions {
			if h.partProbePos < len(h.partProbeRows) {
				n := len(h.partProbeRows) - h.partProbePos
				if n > vector.DefaultBatchSize {
					n = vector.DefaultBatchSize
				}
				rows := h.partProbeRows[h.partProbePos : h.partProbePos+n]
				h.partProbePos += n
				b := rowsToBatch(h.Probe.Schema(), rows)
				h.pending = h.core.probeBatch(b)
				if len(h.pending) > 0 {
					out := h.pending[0]
					h.pending = h.pending[1:]
					return out, nil
				}
				continue
			}
			// Partition probe exhausted: unmatched build rows, then advance.
			if h.core != nil {
				h.pending = h.core.unmatchedBuild()
				h.core = nil
				h.partProbeRows = nil
				if len(h.pending) > 0 {
					out := h.pending[0]
					h.pending = h.pending[1:]
					return out, nil
				}
			}
		}
		h.partIdx++
		if h.partIdx >= spillPartitions {
			return nil, nil
		}
		buildRows, err := h.partBuild[h.partIdx].readAll()
		if err != nil {
			return nil, err
		}
		probeRows, err := h.partProbe[h.partIdx].readAll()
		if err != nil {
			return nil, err
		}
		h.core = newJoinCore(h, buildRows)
		h.partProbeRows = probeRows
		h.partProbePos = 0
	}
}

// rowsToBatch materializes rows into one batch.
func rowsToBatch(schema *sqltypes.Schema, rows []sqltypes.Row) *vector.Batch {
	b := vector.NewBatch(schema, len(rows))
	b.SetNumRows(len(rows))
	for i, r := range rows {
		for c := range b.Vecs {
			b.Vecs[c].SetValue(i, r[c])
		}
	}
	return b
}
