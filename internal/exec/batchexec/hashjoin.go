package batchexec

import (
	"context"
	"fmt"

	"apollo/internal/bloom"
	"apollo/internal/encoding"
	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// BloomTarget is the handle through which a hash-join build publishes its
// bitmap (Bloom) filter to a downstream scan. The planner creates one target,
// hands it to both the join (producer) and the probe-side scan (consumer);
// because the build completes before the probe opens, the scan always sees
// either nil (no filtering) or the finished filter.
type BloomTarget struct {
	F *bloom.Filter
}

// HashJoin is the batch-mode hash join supporting the full repertoire of §5:
// inner, left/right/full outer, left semi, and left anti. Join keys are
// column indexes on each side (the planner projects expression keys into
// columns first). Output layout: probe columns ++ build columns, except
// semi/anti which emit probe columns only.
//
// When a memory Tracker is set and the build side exceeds its grant, the join
// switches to a grace hash join: both sides are hash-partitioned to spill
// files and partitions are joined one at a time.
type HashJoin struct {
	Probe, Build Operator
	ProbeKeys    []int
	BuildKeys    []int
	Type         exec.JoinType
	Residual     expr.Expr // over probe++build layout; may be nil

	// BloomOut, when non-nil, receives a filter over the first build key
	// after the build phase (single-key joins only).
	BloomOut *BloomTarget

	// Tracker and SpillStore enable spilling; nil Tracker = unlimited grant.
	Tracker    *Tracker
	SpillStore *storage.Store

	// Parallel > 1 runs the probe phase as a partitioned exchange: the build
	// side is hash-partitioned into Parallel private cores and probe batches
	// are routed to the owning partition (exchange.go). ProbeExchange and
	// ProbePipes optionally carry planner-replicated per-worker probe stages;
	// when nil the workers share Probe directly. A build-side memory overflow
	// falls back to the serial grace-hash path regardless of Parallel.
	Parallel      int
	ProbeExchange *SharedSource
	ProbePipes    []Operator

	schema  *sqltypes.Schema
	ctx     context.Context
	core    *joinCore
	par     *parallelJoin
	pending []*vector.Batch
	state   int // 0 probing, 1 unmatched-build, 2 done

	// Spill mode.
	spilled       bool
	partBuild     []*spillPartition
	partProbe     []*spillPartition
	partIdx       int
	partProbeRows []sqltypes.Row
	partProbePos  int
	reservedBytes int64
}

// NewHashJoin constructs a batch hash join.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []int, jt exec.JoinType, residual expr.Expr) (*HashJoin, error) {
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("batchexec: join needs matching non-empty key lists")
	}
	h := &HashJoin{Probe: probe, Build: build, ProbeKeys: probeKeys, BuildKeys: buildKeys, Type: jt, Residual: residual}
	switch jt {
	case exec.LeftSemi, exec.LeftAnti:
		h.schema = probe.Schema()
	default:
		h.schema = probe.Schema().Concat(build.Schema())
	}
	return h, nil
}

// Schema implements Operator.
func (h *HashJoin) Schema() *sqltypes.Schema { return h.schema }

// Open implements Operator: drains the build side, publishes the bitmap
// filter, then opens the probe side.
func (h *HashJoin) Open(ctx context.Context) error {
	h.ctx = ctx
	h.pending = nil
	h.state = 0
	h.spilled = false
	h.partIdx = -1

	build, overflow, err := h.drainBuild(ctx)
	if err != nil {
		return err
	}

	if overflow {
		if err := h.enterSpillMode(ctx, build); err != nil {
			return err
		}
		return nil // probe drained inside enterSpillMode
	}

	h.publishBloom(build)
	if h.Parallel > 1 {
		return h.startParallel(ctx, build)
	}
	h.core = newJoinCore(h, build)
	return h.Probe.Open(ctx)
}

// buildSide is the drained build input as concatenated column vectors.
// String columns keep their dict-coded form when every build batch shared the
// column's dictionary; otherwise the column is transparently materialized.
type buildSide struct {
	cols []*vector.Vector
	len  int
}

// appendBuildVec appends src rows [0, n) onto dst, preserving the coded form
// when both sides share a dictionary and materializing dst otherwise.
func appendBuildVec(dst, src *vector.Vector, n int) {
	off := dst.Len()
	if off == 0 && src.IsCoded() && !dst.IsCoded() {
		dst.MakeCoded(src.Dict, src.DictVals, 0)
	}
	if dst.IsCoded() && src.IsCoded() && dst.Dict == src.Dict {
		if len(src.DictVals) > len(dst.DictVals) {
			dst.DictVals = src.DictVals
		}
		dst.Codes = append(dst.Codes, src.Codes[:n]...)
	} else {
		dst.Materialize() // no-op unless coded: representation mismatch
		switch {
		case dst.Typ == sqltypes.Float64:
			dst.F64 = append(dst.F64, src.F64[:n]...)
		case dst.Typ == sqltypes.String:
			for i := 0; i < n; i++ {
				s := ""
				if !src.IsNull(i) {
					s = src.StrAt(i)
				}
				dst.Str = append(dst.Str, s)
			}
		default:
			dst.I64 = append(dst.I64, src.I64[:n]...)
		}
	}
	if src.Nulls != nil && src.Nulls.Any() {
		for i := 0; i < n; i++ {
			if src.Nulls.Get(i) {
				dst.SetNull(off + i)
			}
		}
	}
}

// htEntryBytes approximates per-row hash-table overhead (map entry plus
// candidate-list slice) for the join build grant.
const htEntryBytes = 48

// batchBytes estimates a compacted batch's in-memory footprint for grant
// accounting; coded columns cost 8 bytes per row regardless of string length.
func batchBytes(b *vector.Batch) int64 {
	n := int64(b.NumRows())
	total := int64(48) + 24*n
	for _, v := range b.Vecs {
		switch {
		case v.IsCoded():
			total += 8 * n
		case v.Typ == sqltypes.String:
			total += 16 * n
			for _, s := range v.Str {
				total += int64(len(s))
			}
		default:
			total += 8 * n
		}
	}
	return total
}

// drainBuild consumes the build input into concatenated build columns,
// keeping dict-coded string columns coded. overflow=true means the memory
// grant was exceeded (all rows are still collected; the caller partitions
// them to spill files).
func (h *HashJoin) drainBuild(ctx context.Context) (*buildSide, bool, error) {
	if err := h.Build.Open(ctx); err != nil {
		return nil, false, err
	}
	defer h.Build.Close()
	bs := h.Build.Schema()
	build := &buildSide{cols: make([]*vector.Vector, bs.Len())}
	for ci, col := range bs.Cols {
		build.cols[ci] = vector.NewVector(col.Typ, 0)
	}
	overflow := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		b, err := h.Build.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return build, overflow, nil
		}
		b.Compact()
		n := b.NumRows()
		if n == 0 {
			continue
		}
		// The grant covers the retained columns plus the hash table about
		// to be built over them (map entry + candidate-list overhead).
		sz := batchBytes(b) + htEntryBytes*int64(n)
		if !overflow && !h.Tracker.TryReserve(sz) {
			overflow = h.SpillStore != nil
			if overflow {
				h.Tracker.NoteSpill()
			}
		}
		if !overflow {
			h.reservedBytes += sz
		}
		for ci := range build.cols {
			appendBuildVec(build.cols[ci], b.Vecs[ci], n)
		}
		build.len += n
	}
}

func (h *HashJoin) publishBloom(build *buildSide) {
	if h.BloomOut == nil || len(h.BuildKeys) != 1 {
		return
	}
	f := bloom.New(build.len, bloom.DefaultBitsPerKey)
	kv := build.cols[h.BuildKeys[0]]
	for i := 0; i < build.len; i++ {
		if !kv.IsNull(i) {
			f.Add(kv.Value(i))
		}
	}
	h.BloomOut.F = f
}

// Close implements Operator.
func (h *HashJoin) Close() error {
	h.Tracker.Release(h.reservedBytes)
	h.reservedBytes = 0
	h.core = nil
	for _, p := range h.partBuild {
		if p != nil {
			p.drop()
		}
	}
	for _, p := range h.partProbe {
		if p != nil {
			p.drop()
		}
	}
	h.partBuild, h.partProbe = nil, nil
	if h.par != nil {
		h.par.shutdown()
		h.par = nil
		if h.ProbeExchange != nil {
			return h.ProbeExchange.Base().Close()
		}
		return h.Probe.Close()
	}
	if !h.spilled {
		return h.Probe.Close()
	}
	return nil
}

// Next implements Operator.
func (h *HashJoin) Next() (*vector.Batch, error) {
	for {
		if h.par != nil {
			return h.nextParallel()
		}
		if len(h.pending) > 0 {
			b := h.pending[0]
			h.pending = h.pending[1:]
			return b, nil
		}
		if h.spilled {
			b, err := h.nextSpilled()
			if err != nil || b != nil {
				return b, err
			}
			return nil, nil
		}
		switch h.state {
		case 0:
			b, err := h.Probe.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				h.state = 1
				continue
			}
			h.pending = h.core.probeBatch(b)
		case 1:
			h.state = 2
			h.pending = h.core.unmatchedBuild()
		default:
			return nil, nil
		}
	}
}

// --- In-memory join core ---

// joinCore joins a fixed build side against streamed probe batches. The build
// side lives as concatenated column vectors (dict-coded string columns stay
// coded), so join output is assembled with typed gather loops — coded columns
// gather codes, never strings.
//
// Exactly one hash table kind is populated, chosen by the build key's type
// and representation: htInt for a single int64-family key, htCode for a
// single dict-coded string key (keyed on dictionary ids), htStr for a single
// materialized string key, htGen for everything else (encoded multi-column
// keys).
type joinCore struct {
	h       *HashJoin
	build   *buildSide
	matched []bool

	htInt    map[int64][]int32
	htCode   map[uint64][]int32
	codeDict *encoding.Dict // dictionary htCode ids belong to
	codeVals []string       // its snapshot (covers every build code)
	htStr    map[string][]int32
	htGen    map[string][]int32
	keyBuf   []byte
}

func newJoinCore(h *HashJoin, build *buildSide) *joinCore {
	c := &joinCore{h: h, build: build, matched: make([]bool, build.len)}
	n := build.len
	if len(h.BuildKeys) == 1 {
		kv := build.cols[h.BuildKeys[0]]
		switch {
		case c.fastKey():
			c.htInt = make(map[int64][]int32, n)
			for i := 0; i < n; i++ {
				if !kv.IsNull(i) {
					c.htInt[kv.I64[i]] = append(c.htInt[kv.I64[i]], int32(i))
				}
			}
			return c
		case kv.IsCoded():
			c.htCode = make(map[uint64][]int32, n)
			c.codeDict = kv.Dict
			c.codeVals = kv.DictVals
			for i := 0; i < n; i++ {
				if !kv.IsNull(i) {
					c.htCode[kv.Codes[i]] = append(c.htCode[kv.Codes[i]], int32(i))
				}
			}
			return c
		case kv.Typ == sqltypes.String:
			c.htStr = make(map[string][]int32, n)
			for i := 0; i < n; i++ {
				if !kv.IsNull(i) {
					c.htStr[kv.Str[i]] = append(c.htStr[kv.Str[i]], int32(i))
				}
			}
			return c
		}
	}
	c.htGen = make(map[string][]int32, n)
	keyVals := make([]sqltypes.Value, len(h.BuildKeys))
	for i := 0; i < n; i++ {
		null := false
		for j, k := range h.BuildKeys {
			keyVals[j] = build.cols[k].Value(i)
			null = null || keyVals[j].Null
		}
		if null {
			continue
		}
		key := string(exec.EncodeKey(c.keyBuf[:0], keyVals))
		c.htGen[key] = append(c.htGen[key], int32(i))
	}
	return c
}

// fastKey reports whether the single join key is int64-family on both sides.
func (c *joinCore) fastKey() bool {
	h := c.h
	if len(h.BuildKeys) != 1 {
		return false
	}
	bt := h.Build.Schema().Cols[h.BuildKeys[0]].Typ
	pt := h.Probe.Schema().Cols[h.ProbeKeys[0]].Typ
	intFamily := func(t sqltypes.Type) bool {
		return t == sqltypes.Int64 || t == sqltypes.Date || t == sqltypes.Bool
	}
	return intFamily(bt) && intFamily(pt)
}

// prober returns a per-batch candidate lookup for the compacted batch b.
// For htCode it bridges every probe representation into code space: same-dict
// probes look codes up directly; foreign-dict probes translate each distinct
// probe code at most once (memoized — one dictionary lookup per distinct
// value, not per row); materialized probes translate through the build
// dictionary per row. A string absent from the build dictionary has no build
// matches by construction.
func (c *joinCore) prober(b *vector.Batch) func(i int) (cands []int32, null bool) {
	h := c.h
	switch {
	case c.htInt != nil:
		kv := b.Vecs[h.ProbeKeys[0]]
		return func(i int) ([]int32, bool) {
			if kv.IsNull(i) {
				return nil, true
			}
			return c.htInt[kv.I64[i]], false
		}
	case c.htCode != nil:
		kv := b.Vecs[h.ProbeKeys[0]]
		if kv.IsCoded() && kv.Dict == c.codeDict {
			return func(i int) ([]int32, bool) {
				if kv.IsNull(i) {
					return nil, true
				}
				return c.htCode[kv.Codes[i]], false
			}
		}
		if kv.IsCoded() {
			memo := make(map[uint64][]int32, 64)
			vals := kv.DictVals
			return func(i int) ([]int32, bool) {
				if kv.IsNull(i) {
					return nil, true
				}
				code := kv.Codes[i]
				cands, ok := memo[code]
				if !ok {
					if id, found := c.codeDict.Lookup(vals[code]); found {
						cands = c.htCode[uint64(id)]
					}
					memo[code] = cands
				}
				return cands, false
			}
		}
		return func(i int) ([]int32, bool) {
			if kv.IsNull(i) {
				return nil, true
			}
			if id, ok := c.codeDict.Lookup(kv.Str[i]); ok {
				return c.htCode[uint64(id)], false
			}
			return nil, false
		}
	case c.htStr != nil:
		kv := b.Vecs[h.ProbeKeys[0]]
		return func(i int) ([]int32, bool) {
			if kv.IsNull(i) {
				return nil, true
			}
			return c.htStr[kv.StrAt(i)], false
		}
	default:
		keyVals := make([]sqltypes.Value, len(h.ProbeKeys))
		return func(i int) ([]int32, bool) {
			null := false
			for j, k := range h.ProbeKeys {
				keyVals[j] = b.Vecs[k].Value(i)
				null = null || keyVals[j].Null
			}
			if null {
				return nil, true
			}
			return c.htGen[string(exec.EncodeKey(c.keyBuf[:0], keyVals))], false
		}
	}
}

// probeBatch joins one probe batch, returning zero or more output batches.
func (c *joinCore) probeBatch(b *vector.Batch) []*vector.Batch {
	h := c.h
	b.Compact()
	n := b.NumRows()
	if n == 0 {
		return nil
	}

	probeWidth := h.Probe.Schema().Len()
	joined := make(sqltypes.Row, probeWidth+h.Build.Schema().Len())
	lookup := c.prober(b)

	switch h.Type {
	case exec.LeftSemi, exec.LeftAnti:
		sel := make([]int, 0, n)
		for i := 0; i < n; i++ {
			cands, null := lookup(i)
			found := false
			if !null {
				for _, bi := range cands {
					if c.residualOK(b, i, bi, joined, probeWidth) {
						found = true
						break
					}
				}
			}
			if found == (h.Type == exec.LeftSemi) {
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			return nil
		}
		b.Sel = sel
		return []*vector.Batch{b}
	}

	// Inner/outer joins: collect matching (probe, build) pairs, then gather
	// them into output batches column by column.
	var probeIdx, buildIdx []int32 // buildIdx -1 = null-extended
	leftOuter := h.Type == exec.LeftOuter || h.Type == exec.FullOuter
	pkv := b.Vecs[h.ProbeKeys[0]]
	switch {
	case c.htInt != nil && !pkv.HasNulls() && h.Residual == nil:
		// Hot path: single non-null int key, no residual.
		mJoinBatchesInt.Inc()
		for i, k := range pkv.I64[:n] {
			matches := c.htInt[k]
			if len(matches) == 0 {
				if leftOuter {
					probeIdx = append(probeIdx, int32(i))
					buildIdx = append(buildIdx, -1)
				}
				continue
			}
			for _, bi := range matches {
				c.matched[bi] = true
				probeIdx = append(probeIdx, int32(i))
				buildIdx = append(buildIdx, bi)
			}
		}
	case c.htCode != nil && pkv.IsCoded() && pkv.Dict == c.codeDict && !pkv.HasNulls() && h.Residual == nil:
		// Hot path: both key sides share a dictionary — the join runs
		// entirely in code space, no string is touched.
		mJoinBatchesCode.Inc()
		for i, k := range pkv.Codes[:n] {
			matches := c.htCode[k]
			if len(matches) == 0 {
				if leftOuter {
					probeIdx = append(probeIdx, int32(i))
					buildIdx = append(buildIdx, -1)
				}
				continue
			}
			for _, bi := range matches {
				c.matched[bi] = true
				probeIdx = append(probeIdx, int32(i))
				buildIdx = append(buildIdx, bi)
			}
		}
	default:
		mJoinBatchesGeneric.Inc()
		for i := 0; i < n; i++ {
			cands, null := lookup(i)
			matched := false
			if !null {
				for _, bi := range cands {
					if c.residualOK(b, i, bi, joined, probeWidth) {
						matched = true
						c.matched[bi] = true
						probeIdx = append(probeIdx, int32(i))
						buildIdx = append(buildIdx, bi)
					}
				}
			}
			if !matched && leftOuter {
				probeIdx = append(probeIdx, int32(i))
				buildIdx = append(buildIdx, -1)
			}
		}
	}

	var outs []*vector.Batch
	for start := 0; start < len(probeIdx); start += vector.DefaultBatchSize {
		end := start + vector.DefaultBatchSize
		if end > len(probeIdx) {
			end = len(probeIdx)
		}
		outs = append(outs, c.gather(b, probeIdx[start:end], buildIdx[start:end], probeWidth))
	}
	return outs
}

// gather assembles one output batch from (probe, build) index pairs using
// typed per-column loops.
func (c *joinCore) gather(b *vector.Batch, probeIdx, buildIdx []int32, probeWidth int) *vector.Batch {
	h := c.h
	m := len(probeIdx)
	out := vector.NewBatch(h.schema, m)
	out.SetNumRows(m)
	for ci := 0; ci < probeWidth; ci++ {
		gatherVec(out.Vecs[ci], b.Vecs[ci], probeIdx)
	}
	for ci, src := range c.build.cols {
		dst := out.Vecs[probeWidth+ci]
		gatherVec(dst, src, buildIdx)
		for i, bi := range buildIdx {
			if bi < 0 {
				dst.SetNull(i)
			}
		}
	}
	return out
}

// gatherVec copies src rows at idxs into dst (negative indexes are left for
// the caller to null out). A dict-coded src stays coded: the gather moves
// 8-byte codes, not strings.
func gatherVec(dst, src *vector.Vector, idxs []int32) {
	if src.IsCoded() {
		dst.MakeCoded(src.Dict, src.DictVals, len(idxs))
		d := dst.Codes[:len(idxs)]
		for i, j := range idxs {
			if j >= 0 {
				d[i] = src.Codes[j]
			} else {
				d[i] = 0 // null-extended; caller nulls the row
			}
		}
	} else {
		dst.ClearCoded()
		switch dst.Typ {
		case sqltypes.Float64:
			d := dst.F64[:len(idxs)]
			for i, j := range idxs {
				if j >= 0 {
					d[i] = src.F64[j]
				}
			}
		case sqltypes.String:
			d := dst.Str[:len(idxs)]
			for i, j := range idxs {
				if j >= 0 {
					d[i] = src.Str[j]
				}
			}
		default:
			d := dst.I64[:len(idxs)]
			for i, j := range idxs {
				if j >= 0 {
					d[i] = src.I64[j]
				}
			}
		}
	}
	if src.Nulls != nil {
		for i, j := range idxs {
			if j >= 0 && src.Nulls.Get(int(j)) {
				dst.SetNull(i)
			}
		}
	}
}

func (c *joinCore) residualOK(b *vector.Batch, probeIdx int, bi int32, joined sqltypes.Row, probeWidth int) bool {
	if c.h.Residual == nil {
		return true
	}
	for ci := 0; ci < probeWidth; ci++ {
		joined[ci] = b.Vecs[ci].Value(probeIdx)
	}
	for ci, v := range c.build.cols {
		joined[probeWidth+ci] = v.Value(int(bi))
	}
	v := c.h.Residual.Eval(joined)
	return !v.Null && v.I != 0
}

// unmatchedBuild emits null-extended build rows for right/full outer joins.
func (c *joinCore) unmatchedBuild() []*vector.Batch {
	h := c.h
	if h.Type != exec.RightOuter && h.Type != exec.FullOuter {
		return nil
	}
	probeWidth := h.Probe.Schema().Len()
	var outs []*vector.Batch
	out := vector.NewBatch(h.schema, vector.DefaultBatchSize)
	outRows := 0
	for bi, m := range c.matched {
		if m {
			continue
		}
		if outRows == 0 {
			out.SetNumRows(vector.DefaultBatchSize)
		}
		for ci := 0; ci < probeWidth; ci++ {
			out.Vecs[ci].SetNull(outRows)
		}
		for ci, src := range c.build.cols {
			out.Vecs[probeWidth+ci].CopyRow(outRows, src, bi)
		}
		outRows++
		if outRows == vector.DefaultBatchSize {
			out.SetRowCountNoReset(outRows)
			outs = append(outs, out)
			out = vector.NewBatch(h.schema, vector.DefaultBatchSize)
			outRows = 0
		}
	}
	if outRows > 0 {
		out.SetRowCountNoReset(outRows)
		outs = append(outs, out)
	}
	return outs
}

// --- Grace (spilling) mode ---

const spillPartitions = 8

// enterSpillMode partitions build rows and the entire probe input to spill
// files, then joins partition pairs one at a time. Dict-coded columns spill
// as codes (spillPartition's tagged encoding); partition assignment hashes
// decoded key values so both sides partition consistently regardless of
// representation.
func (h *HashJoin) enterSpillMode(ctx context.Context, build *buildSide) error {
	h.spilled = true
	h.Tracker.Release(h.reservedBytes)
	h.reservedBytes = 0

	h.partBuild = make([]*spillPartition, spillPartitions)
	h.partProbe = make([]*spillPartition, spillPartitions)
	for i := range h.partBuild {
		h.partBuild[i] = newSpillPartition(h.SpillStore, h.Build.Schema())
		h.partProbe[i] = newSpillPartition(h.SpillStore, h.Probe.Schema())
	}

	bb := batchWithRows(h.Build.Schema(), build.cols, build.len)
	for i := 0; i < build.len; i++ {
		p := partitionOfVecs(build.cols, i, h.BuildKeys)
		if err := h.partBuild[p].addBatchRow(bb, i); err != nil {
			return err
		}
	}
	h.publishBloom(build)

	if err := h.Probe.Open(ctx); err != nil {
		return err
	}
	defer h.Probe.Close()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := h.Probe.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			r := b.RowIdx(i)
			p := partitionOfVecs(b.Vecs, r, h.ProbeKeys)
			if err := h.partProbe[p].addBatchRow(b, r); err != nil {
				return err
			}
		}
	}
	h.partIdx = -1
	return nil
}

// partitionOfVecs assigns physical row r to a spill partition by key hash;
// NULL keys land in partition 0 (they never match, but outer joins still emit
// them).
func partitionOfVecs(vecs []*vector.Vector, r int, keys []int) int {
	var acc uint64 = 14695981039346656037
	for _, k := range keys {
		if vecs[k].IsNull(r) {
			return 0
		}
		acc = (acc ^ sqltypes.Hash(vecs[k].Value(r))) * 1099511628211
	}
	// Use high bits: low bits fed the in-memory hash table.
	return int(acc>>57) % spillPartitions
}

// nextSpilled advances through partition pairs.
func (h *HashJoin) nextSpilled() (*vector.Batch, error) {
	for {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		// Emit probe batches of the current partition.
		if h.partIdx >= 0 && h.partIdx < spillPartitions {
			if h.partProbePos < len(h.partProbeRows) {
				n := len(h.partProbeRows) - h.partProbePos
				if n > vector.DefaultBatchSize {
					n = vector.DefaultBatchSize
				}
				rows := h.partProbeRows[h.partProbePos : h.partProbePos+n]
				h.partProbePos += n
				b := rowsToBatch(h.Probe.Schema(), rows)
				h.pending = h.core.probeBatch(b)
				if len(h.pending) > 0 {
					out := h.pending[0]
					h.pending = h.pending[1:]
					return out, nil
				}
				continue
			}
			// Partition probe exhausted: unmatched build rows, then advance.
			if h.core != nil {
				h.pending = h.core.unmatchedBuild()
				h.core = nil
				h.partProbeRows = nil
				if len(h.pending) > 0 {
					out := h.pending[0]
					h.pending = h.pending[1:]
					return out, nil
				}
			}
		}
		h.partIdx++
		if h.partIdx >= spillPartitions {
			return nil, nil
		}
		buildRows, err := h.partBuild[h.partIdx].readAll()
		if err != nil {
			return nil, err
		}
		probeRows, err := h.partProbe[h.partIdx].readAll()
		if err != nil {
			return nil, err
		}
		bb := rowsToBatch(h.Build.Schema(), buildRows)
		h.core = newJoinCore(h, &buildSide{cols: bb.Vecs, len: bb.NumRows()})
		h.partProbeRows = probeRows
		h.partProbePos = 0
	}
}

// rowsToBatch materializes rows into one batch.
func rowsToBatch(schema *sqltypes.Schema, rows []sqltypes.Row) *vector.Batch {
	b := vector.NewBatch(schema, len(rows))
	b.SetNumRows(len(rows))
	for i, r := range rows {
		for c := range b.Vecs {
			b.Vecs[c].SetValue(i, r[c])
		}
	}
	return b
}
