package batchexec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"apollo/internal/encoding"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// Tracker is a memory grant (§5): hash operators reserve against it and spill
// partitions to the storage substrate when the grant is exhausted, degrading
// gracefully instead of failing the query.
type Tracker struct {
	budget int64 // <= 0 means unlimited
	used   atomic.Int64
	spills atomic.Int64
}

// NewTracker creates a tracker with the given budget in bytes (0 = unlimited).
func NewTracker(budget int64) *Tracker { return &Tracker{budget: budget} }

// TryReserve reserves n bytes, reporting false when the grant is exceeded.
func (t *Tracker) TryReserve(n int64) bool {
	if t == nil || t.budget <= 0 {
		return true
	}
	if t.used.Add(n) > t.budget {
		t.used.Add(-n)
		return false
	}
	return true
}

// Release returns n bytes to the grant.
func (t *Tracker) Release(n int64) {
	if t != nil && t.budget > 0 {
		t.used.Add(-n)
	}
}

// NoteSpill counts one spill event.
func (t *Tracker) NoteSpill() {
	if t != nil {
		t.spills.Add(1)
		mSpills.Inc()
	}
}

// Spills reports how many partitions were spilled.
func (t *Tracker) Spills() int64 {
	if t == nil {
		return 0
	}
	return t.spills.Load()
}

// Used reports current reserved bytes.
func (t *Tracker) Used() int64 {
	if t == nil {
		return 0
	}
	return t.used.Load()
}

// rowBytes estimates a row's in-memory footprint for grant accounting.
func rowBytes(row sqltypes.Row) int64 {
	n := int64(48) // slice + header overhead
	for _, v := range row {
		n += 24
		if v.Typ == sqltypes.String {
			n += int64(len(v.S))
		}
	}
	return n
}

// spillPartition accumulates rows destined for one spill file and flushes
// them to the storage substrate (paying accounted write I/O).
//
// String cells use a tagged encoding so dict-coded vectors spill without
// decoding: a coded cell is written as its dictionary code (tag 1) when the
// column's dictionary matches the partition's per-column binding, set on the
// first coded write; anything else is written inline (tag 0). Spill files
// live and die within one query on one process, so holding the *encoding.Dict
// pointer across the round trip is sound, and codes written against a
// dictionary snapshot stay decodable because dictionary ids are never
// reassigned.
type spillPartition struct {
	schema *sqltypes.Schema
	store  *storage.Store
	buf    []byte
	rows   int
	blobs  []storage.BlobID
	dicts  []*encoding.Dict // per-column dictionary binding for coded cells
}

const spillChunkBytes = 1 << 20

func newSpillPartition(store *storage.Store, schema *sqltypes.Schema) *spillPartition {
	return &spillPartition{schema: schema, store: store, dicts: make([]*encoding.Dict, schema.Len())}
}

func (p *spillPartition) add(row sqltypes.Row) error {
	p.buf = p.encodeRow(p.buf, row)
	p.rows++
	if len(p.buf) >= spillChunkBytes {
		return p.flush()
	}
	return nil
}

// addBatchRow spills physical row r of b. Dict-coded string cells are
// written as raw codes — no decoding on the spill write path.
func (p *spillPartition) addBatchRow(b *vector.Batch, r int) error {
	p.buf = p.encodeBatchRow(p.buf, b, r)
	p.rows++
	if len(p.buf) >= spillChunkBytes {
		return p.flush()
	}
	return nil
}

func (p *spillPartition) encodeRow(dst []byte, row sqltypes.Row) []byte {
	n := len(p.schema.Cols)
	nullOff := len(dst)
	for i := 0; i < (n+7)/8; i++ {
		dst = append(dst, 0)
	}
	for c, col := range p.schema.Cols {
		v := row[c]
		if v.Null {
			dst[nullOff+c/8] |= 1 << uint(c%8)
			continue
		}
		switch col.Typ {
		case sqltypes.Int64, sqltypes.Date:
			dst = binary.AppendVarint(dst, v.I)
		case sqltypes.Bool:
			dst = append(dst, byte(v.I&1))
		case sqltypes.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		default: // String
			dst = append(dst, 0)
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

func (p *spillPartition) encodeBatchRow(dst []byte, b *vector.Batch, r int) []byte {
	n := len(p.schema.Cols)
	nullOff := len(dst)
	for i := 0; i < (n+7)/8; i++ {
		dst = append(dst, 0)
	}
	for c, col := range p.schema.Cols {
		v := b.Vecs[c]
		if v.IsNull(r) {
			dst[nullOff+c/8] |= 1 << uint(c%8)
			continue
		}
		switch col.Typ {
		case sqltypes.Int64, sqltypes.Date:
			dst = binary.AppendVarint(dst, v.I64[r])
		case sqltypes.Bool:
			dst = append(dst, byte(v.I64[r]&1))
		case sqltypes.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F64[r]))
		default: // String
			if v.IsCoded() {
				if p.dicts[c] == nil {
					p.dicts[c] = v.Dict
				}
				if p.dicts[c] == v.Dict {
					dst = append(dst, 1)
					dst = binary.AppendUvarint(dst, v.Codes[r])
					continue
				}
			}
			s := v.StrAt(r)
			dst = append(dst, 0)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// decodeRow decodes one spilled row, resolving coded string cells through the
// given per-column dictionary snapshots.
func (p *spillPartition) decodeRow(buf []byte, dictVals [][]string) (sqltypes.Row, int, error) {
	ncols := len(p.schema.Cols)
	nullBytes := (ncols + 7) / 8
	if len(buf) < nullBytes {
		return nil, 0, fmt.Errorf("batchexec: spill row truncated in null bitmap")
	}
	nulls := buf[:nullBytes]
	pos := nullBytes
	row := make(sqltypes.Row, ncols)
	for c, col := range p.schema.Cols {
		if nulls[c/8]&(1<<uint(c%8)) != 0 {
			row[c] = sqltypes.NewNull(col.Typ)
			continue
		}
		switch col.Typ {
		case sqltypes.Int64, sqltypes.Date:
			v, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("batchexec: bad spill varint in column %d", c)
			}
			pos += n
			row[c] = sqltypes.Value{Typ: col.Typ, I: v}
		case sqltypes.Bool:
			if pos >= len(buf) {
				return nil, 0, fmt.Errorf("batchexec: spill row truncated in column %d", c)
			}
			row[c] = sqltypes.Value{Typ: sqltypes.Bool, I: int64(buf[pos] & 1)}
			pos++
		case sqltypes.Float64:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("batchexec: spill row truncated in column %d", c)
			}
			row[c] = sqltypes.Value{Typ: sqltypes.Float64, F: math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))}
			pos += 8
		default: // String
			if pos >= len(buf) {
				return nil, 0, fmt.Errorf("batchexec: spill row truncated in column %d", c)
			}
			tag := buf[pos]
			pos++
			u, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("batchexec: bad spill string in column %d", c)
			}
			pos += n
			if tag == 1 {
				vals := dictVals[c]
				if vals == nil || u >= uint64(len(vals)) {
					return nil, 0, fmt.Errorf("batchexec: spill code %d out of dictionary range in column %d", u, c)
				}
				row[c] = sqltypes.NewString(vals[u])
				continue
			}
			if pos+int(u) > len(buf) {
				return nil, 0, fmt.Errorf("batchexec: spill row truncated in column %d", c)
			}
			row[c] = sqltypes.NewString(string(buf[pos : pos+int(u)]))
			pos += int(u)
		}
	}
	return row, pos, nil
}

func (p *spillPartition) flush() error {
	if len(p.buf) == 0 {
		return nil
	}
	id, err := p.store.Put(p.buf, storage.None)
	if err != nil {
		return fmt.Errorf("batchexec: spill write: %w", err)
	}
	p.blobs = append(p.blobs, id)
	p.buf = p.buf[:0]
	return nil
}

// readAll loads the partition's rows back (accounted read I/O), decoding
// coded string cells lazily through the bound dictionaries, and frees the
// spill blobs.
func (p *spillPartition) readAll() ([]sqltypes.Row, error) {
	if err := p.flush(); err != nil {
		return nil, err
	}
	dictVals := make([][]string, len(p.dicts))
	for c, d := range p.dicts {
		if d != nil {
			dictVals[c] = d.SnapshotValues()
		}
	}
	out := make([]sqltypes.Row, 0, p.rows)
	for _, id := range p.blobs {
		data, err := p.store.Get(id)
		if err != nil {
			return nil, fmt.Errorf("batchexec: spill read: %w", err)
		}
		pos := 0
		for pos < len(data) {
			row, n, err := p.decodeRow(data[pos:], dictVals)
			if err != nil {
				return nil, fmt.Errorf("batchexec: spill decode: %w", err)
			}
			pos += n
			out = append(out, row)
		}
		p.store.Delete(id)
	}
	p.blobs = nil
	return out, nil
}

// drop discards the partition's spill blobs without reading them.
func (p *spillPartition) drop() {
	for _, id := range p.blobs {
		p.store.Delete(id)
	}
	p.blobs = nil
	p.buf = nil
}
