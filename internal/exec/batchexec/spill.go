package batchexec

import (
	"fmt"
	"sync/atomic"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Tracker is a memory grant (§5): hash operators reserve against it and spill
// partitions to the storage substrate when the grant is exhausted, degrading
// gracefully instead of failing the query.
type Tracker struct {
	budget int64 // <= 0 means unlimited
	used   atomic.Int64
	spills atomic.Int64
}

// NewTracker creates a tracker with the given budget in bytes (0 = unlimited).
func NewTracker(budget int64) *Tracker { return &Tracker{budget: budget} }

// TryReserve reserves n bytes, reporting false when the grant is exceeded.
func (t *Tracker) TryReserve(n int64) bool {
	if t == nil || t.budget <= 0 {
		return true
	}
	if t.used.Add(n) > t.budget {
		t.used.Add(-n)
		return false
	}
	return true
}

// Release returns n bytes to the grant.
func (t *Tracker) Release(n int64) {
	if t != nil && t.budget > 0 {
		t.used.Add(-n)
	}
}

// NoteSpill counts one spill event.
func (t *Tracker) NoteSpill() {
	if t != nil {
		t.spills.Add(1)
	}
}

// Spills reports how many partitions were spilled.
func (t *Tracker) Spills() int64 {
	if t == nil {
		return 0
	}
	return t.spills.Load()
}

// Used reports current reserved bytes.
func (t *Tracker) Used() int64 {
	if t == nil {
		return 0
	}
	return t.used.Load()
}

// rowBytes estimates a row's in-memory footprint for grant accounting.
func rowBytes(row sqltypes.Row) int64 {
	n := int64(48) // slice + header overhead
	for _, v := range row {
		n += 24
		if v.Typ == sqltypes.String {
			n += int64(len(v.S))
		}
	}
	return n
}

// spillPartition accumulates rows destined for one spill file and flushes
// them to the storage substrate (paying accounted write I/O).
type spillPartition struct {
	schema *sqltypes.Schema
	store  *storage.Store
	buf    []byte
	rows   int
	blobs  []storage.BlobID
}

const spillChunkBytes = 1 << 20

func newSpillPartition(store *storage.Store, schema *sqltypes.Schema) *spillPartition {
	return &spillPartition{schema: schema, store: store}
}

func (p *spillPartition) add(row sqltypes.Row) error {
	p.buf = sqltypes.EncodeRow(p.buf, p.schema, row)
	p.rows++
	if len(p.buf) >= spillChunkBytes {
		return p.flush()
	}
	return nil
}

func (p *spillPartition) flush() error {
	if len(p.buf) == 0 {
		return nil
	}
	id, err := p.store.Put(p.buf, storage.None)
	if err != nil {
		return fmt.Errorf("batchexec: spill write: %w", err)
	}
	p.blobs = append(p.blobs, id)
	p.buf = p.buf[:0]
	return nil
}

// readAll loads the partition's rows back (accounted read I/O) and frees the
// spill blobs.
func (p *spillPartition) readAll() ([]sqltypes.Row, error) {
	if err := p.flush(); err != nil {
		return nil, err
	}
	out := make([]sqltypes.Row, 0, p.rows)
	for _, id := range p.blobs {
		data, err := p.store.Get(id)
		if err != nil {
			return nil, fmt.Errorf("batchexec: spill read: %w", err)
		}
		pos := 0
		for pos < len(data) {
			row, n, err := sqltypes.DecodeRow(data[pos:], p.schema)
			if err != nil {
				return nil, fmt.Errorf("batchexec: spill decode: %w", err)
			}
			pos += n
			out = append(out, row)
		}
		p.store.Delete(id)
	}
	p.blobs = nil
	return out, nil
}

// drop discards the partition's spill blobs without reading them.
func (p *spillPartition) drop() {
	for _, id := range p.blobs {
		p.store.Delete(id)
	}
	p.blobs = nil
	p.buf = nil
}
