package batchexec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// Benchmarks for the exchange layer: the same aggregation and join plans at
// DOP 1 (the serial HashAgg/HashJoin operators) and DOP 2/4/8 (ParallelAgg and
// the partitioned parallel HashJoin). Scan parallelism follows the pipeline
// DOP, matching the planner's lowering. On a multi-core host the DOP>1
// variants spread the pipeline across cores; on a single-core host they
// measure the exchange overhead instead (see BENCH_parallel.json).

const (
	parBenchFactRows = 120000
	parBenchDimRows  = 3000
	parBenchGroups   = 256
)

var (
	parBenchOnce sync.Once
	parBenchFact *table.Table
	parBenchDim  *table.Table
)

// parBenchSchema is an SSB-flavored fact layout: a key into the dimension, a
// measure, and a low-cardinality group column.
func parBenchSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "dk", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "g", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "rev", Typ: sqltypes.Int64},
	)
}

func parBenchDimSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "k", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "cat", Typ: sqltypes.String},
	)
}

func parBenchSetup(b *testing.B) (*table.Table, *table.Table) {
	b.Helper()
	parBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(77))
		rows := make([]sqltypes.Row, parBenchFactRows)
		for i := range rows {
			rows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64(rng.Intn(parBenchDimRows))),
				sqltypes.NewInt(int64(rng.Intn(parBenchGroups))),
				sqltypes.NewInt(int64(rng.Intn(10000))),
			}
		}
		store := storage.NewStore(storage.DefaultBufferPoolBytes)
		opts := table.Options{RowGroupSize: 10000, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
		fact := table.New(store, "pfact", parBenchSchema(), opts)
		if err := fact.BulkLoad(rows); err != nil {
			panic(err)
		}
		dimRows := make([]sqltypes.Row, parBenchDimRows)
		for i := range dimRows {
			dimRows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("cat-%03d", i%97)),
			}
		}
		dim := table.New(store, "pdim", parBenchDimSchema(), opts)
		if err := dim.BulkLoad(dimRows); err != nil {
			panic(err)
		}
		parBenchFact = fact
		parBenchDim = dim
	})
	return parBenchFact, parBenchDim
}

func parBenchScan(tb *table.Table, cols []int, dop int) *Scan {
	s := NewScan(tb.Snapshot(), cols)
	s.Parallel = dop
	return s
}

// BenchmarkParallelAgg measures GROUP BY g / COUNT, SUM(rev) over the fact
// table at each DOP.
func BenchmarkParallelAgg(b *testing.B) {
	fact, _ := parBenchSetup(b)
	aggs := []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(1, "rev", sqltypes.Int64), Name: "s"},
	}
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var op Operator
				if dop == 1 {
					op = NewHashAgg(parBenchScan(fact, []int{2, 3}, dop), []int{0}, []string{"g"}, aggs)
				} else {
					op = parallelAggOver(parBenchScan(fact, []int{2, 3}, dop), dop, []int{0}, []string{"g"}, aggs)
				}
				rows, err := Drain(op)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != parBenchGroups {
					b.Fatalf("got %d groups, want %d", len(rows), parBenchGroups)
				}
			}
		})
	}
}

// BenchmarkParallelJoin measures a fact-dim inner join (dimension build side,
// fact probe side) at each DOP; the probe phase is where partitioned
// parallelism applies.
func BenchmarkParallelJoin(b *testing.B) {
	fact, dim := parBenchSetup(b)
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := NewHashJoin(
					parBenchScan(fact, []int{1, 3}, dop), parBenchScan(dim, []int{0, 1}, 1),
					[]int{0}, []int{0}, exec.Inner, nil)
				if err != nil {
					b.Fatal(err)
				}
				if dop > 1 {
					j.Parallel = dop
				}
				n, err := Count(j)
				if err != nil {
					b.Fatal(err)
				}
				if n != parBenchFactRows {
					b.Fatalf("got %d rows, want %d", n, parBenchFactRows)
				}
			}
		})
	}
}
