package batchexec

import (
	"context"
	"sync"
	"sync/atomic"

	"apollo/internal/bits"
	"apollo/internal/bloom"
	"apollo/internal/colstore"
	"apollo/internal/encoding"
	"apollo/internal/expr"
	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
	"apollo/internal/vector"
)

// Pushdown is an exact, closed-interval range predicate on one table column
// that the scan evaluates on encoded data: numeric encodings translate the
// bounds into code space, dictionary encodings into a matching-code set.
// NULL bounds are unbounded on that side. Rows with NULL in the column never
// qualify (SQL range semantics).
type Pushdown struct {
	Col    int
	Lo, Hi sqltypes.Value
}

// DictPred is an arbitrary single-column predicate on a string column,
// evaluated on compressed data: for dictionary-encoded segments the
// predicate runs once per distinct dictionary entry (LIKE, IN, <>, ... in
// O(|dictionary|) instead of O(rows)). Pred is bound to a one-column row
// holding the value. The planner only pushes predicates that are not true
// on NULL input, since encoded evaluation skips NULL rows.
type DictPred struct {
	Col  int
	Pred expr.Expr
}

// BloomPred applies a join bitmap filter to a table column during the scan
// (§5's bitmap pushdown). The Target is filled by the hash-join build before
// the probe side (this scan) opens; a nil filter means no filtering.
type BloomPred struct {
	Col    int
	Target *BloomTarget
}

// ScanStats counts the scan's segment-elimination and pushdown effects.
// Fields are updated atomically (parallel scans share one instance).
type ScanStats struct {
	Groups           int64 // row groups considered
	GroupsScanned    int64 // groups that survived segment elimination
	GroupsEliminated int64 // skipped entirely via segment metadata
	SegmentsOpened   int64
	RowsConsidered   int64 // rows in non-eliminated groups
	RowsDeleted      int64 // rows dropped by delete bitmaps
	RowsAfterRange   int64 // rows surviving encoded-domain range pushdown
	RowsAfterBloom   int64 // rows surviving bitmap filters
	RowsResidual     int64 // rows dropped by the residual predicate (group side)
	RowsOutput       int64 // rows emitted (group side + delta side)
	DeltaRows        int64 // delta-store rows examined (row-mode side)
	DeltaRowsOutput  int64 // delta rows that qualified and were emitted

	// Late-materialization accounting: per batch, how many dict-encoded
	// string columns were emitted as raw codes (decoded lazily downstream)
	// versus eagerly decoded into strings (local-dict fallback).
	StringColsCoded        int64
	StringColsMaterialized int64
}

// Scan is the batch-mode columnstore scan. It produces the table columns
// listed in Cols (in that order); Residual is bound to those output
// positions. Compressed row groups flow through segment elimination, encoded
// pushdown, delete-bitmap filtering, bitmap (Bloom) filters, and residual
// filtering; delta-store rows take the row-at-a-time path with the same
// predicates, matching the paper's mixed-mode scanning of updatable tables.
type Scan struct {
	Snap      *table.Snapshot
	Cols      []int
	Pushdowns []Pushdown
	DictPreds []DictPred
	Residual  expr.Expr
	Blooms    []BloomPred
	Stats     *ScanStats
	Parallel  int // >1 enables a parallel gather exchange over row groups

	schema *sqltypes.Schema
	ctx    context.Context // query context, set by Open

	// Serial iteration state.
	gi     int
	cur    *groupCursor
	deltaI int

	// Parallel state. cancel aborts the workers' derived context; it fires
	// on Close, on query-context cancellation (inherited), and on the first
	// worker error so siblings stop streaming batches immediately.
	ch      chan *vector.Batch
	errOnce sync.Once
	err     error
	wg      sync.WaitGroup
	cancel  context.CancelFunc
}

// NewScan constructs a scan producing the given table columns.
func NewScan(snap *table.Snapshot, cols []int) *Scan {
	return &Scan{Snap: snap, Cols: cols, schema: snap.Schema.Project(cols)}
}

// Rebind points the scan at a fresh snapshot of the same table, so a reused
// compiled plan reads data as of its next execution rather than as of
// compilation. Call between executions only (Open resets iteration state).
func (s *Scan) Rebind(snap *table.Snapshot) { s.Snap = snap }

// Schema implements Operator.
func (s *Scan) Schema() *sqltypes.Schema { return s.schema }

// Open implements Operator.
func (s *Scan) Open(ctx context.Context) error {
	s.ctx = ctx
	s.gi, s.deltaI = 0, 0
	s.cur = nil
	s.err = nil
	s.errOnce = sync.Once{}
	if s.Stats == nil {
		s.Stats = &ScanStats{}
	} else {
		// Stats are a per-execution snapshot: a reused Compiled plan (or a
		// re-Opened operator tree) must not accumulate counts across runs.
		*s.Stats = ScanStats{}
	}
	if s.Parallel > 1 {
		s.startParallel(ctx)
	}
	return nil
}

// Close implements Operator.
func (s *Scan) Close() error {
	if s.cancel != nil {
		s.cancel()
		// Drain so workers unblock and exit.
		for range s.ch {
		}
		s.wg.Wait()
		s.cancel = nil
		s.ch = nil
	}
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (*vector.Batch, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.Parallel > 1 {
		select {
		case b, ok := <-s.ch:
			if !ok {
				// Channel closed: all workers exited. s.err is published
				// before the close (workers finish before the closer's
				// Wait returns), so this read is safe.
				return nil, s.err
			}
			return b, nil
		case <-s.ctx.Done():
			return nil, s.ctx.Err()
		}
	}
	for {
		if s.cur != nil {
			if b := s.cur.nextBatch(); b != nil {
				return b, nil
			}
			s.cur = nil
		}
		if s.gi < len(s.Snap.Groups) {
			if err := s.ctx.Err(); err != nil {
				return nil, err
			}
			g := s.Snap.Groups[s.gi]
			s.gi++
			cur, err := s.openGroup(g)
			if err != nil {
				return nil, qerr.WithGroup("scan", g.ID, err)
			}
			s.cur = cur // may be nil (eliminated)
			continue
		}
		// Delta rows.
		if s.deltaI < len(s.Snap.Delta) {
			b := s.deltaBatch(&s.deltaI)
			if b != nil {
				return b, nil
			}
			continue
		}
		return nil, nil
	}
}

// --- Row-group processing ---

type groupCursor struct {
	scan    *Scan
	readers []*colstore.ColumnReader // one per output column
	qual    []int                    // qualifying physical row indices
	off     int
}

// openGroup applies segment elimination and encoded-domain filtering,
// returning a cursor over qualifying rows, or nil when the group is
// eliminated or empties out.
func (s *Scan) openGroup(g *colstore.RowGroup) (*groupCursor, error) {
	st := s.Stats
	atomic.AddInt64(&st.Groups, 1)
	mScanGroups.Inc()

	// Segment elimination on metadata (§2.3).
	for _, p := range s.Pushdowns {
		if !g.Segs[p.Col].CanMatchRange(p.Lo, p.Hi) {
			atomic.AddInt64(&st.GroupsEliminated, 1)
			mScanGroupsEliminated.Inc()
			return nil, nil
		}
	}
	atomic.AddInt64(&st.GroupsScanned, 1)
	atomic.AddInt64(&st.RowsConsidered, int64(g.Rows))
	mScanRowsConsidered.Add(int64(g.Rows))

	// Encoded-domain pushdown: narrow a qualifying index list using codes.
	qual := make([]int, 0, g.Rows)
	del := s.Snap.Deletes[g.ID]
	for i := 0; i < g.Rows; i++ {
		if del == nil || !del.Get(i) {
			qual = append(qual, i)
		}
	}
	atomic.AddInt64(&st.RowsDeleted, int64(g.Rows-len(qual)))
	mScanRowsDeleted.Add(int64(g.Rows - len(qual)))

	openCache := map[int]*colstore.ColumnReader{}
	open := func(col int) (*colstore.ColumnReader, error) {
		if r, ok := openCache[col]; ok {
			return r, nil
		}
		r, err := s.Snap.OpenColumn(g, col)
		if err != nil {
			return nil, err
		}
		atomic.AddInt64(&st.SegmentsOpened, 1)
		openCache[col] = r
		return r, nil
	}

	for _, p := range s.Pushdowns {
		if len(qual) == 0 {
			break
		}
		r, err := open(p.Col)
		if err != nil {
			return nil, err
		}
		qual = filterByRange(r, p, qual)
	}
	for _, dp := range s.DictPreds {
		if len(qual) == 0 {
			break
		}
		r, err := open(dp.Col)
		if err != nil {
			return nil, err
		}
		qual = filterByDictPred(r, dp.Pred, qual)
	}
	atomic.AddInt64(&st.RowsAfterRange, int64(len(qual)))

	// Bitmap (Bloom) filters on encoded or decoded values.
	for _, bp := range s.Blooms {
		if len(qual) == 0 {
			break
		}
		if bp.Target == nil || bp.Target.F == nil {
			continue
		}
		r, err := open(bp.Col)
		if err != nil {
			return nil, err
		}
		qual = filterByBloom(r, bp.Target.F, qual)
	}
	atomic.AddInt64(&st.RowsAfterBloom, int64(len(qual)))

	if len(qual) == 0 {
		return nil, nil
	}

	readers := make([]*colstore.ColumnReader, len(s.Cols))
	for i, col := range s.Cols {
		r, err := open(col)
		if err != nil {
			return nil, err
		}
		readers[i] = r
	}
	return &groupCursor{scan: s, readers: readers, qual: qual}, nil
}

// filterByRange narrows qual to rows whose column value lies in the pushdown
// range, working in code space when the encoding is order-preserving and on
// dictionary code sets otherwise. NULLs never qualify.
func filterByRange(r *colstore.ColumnReader, p Pushdown, qual []int) []int {
	codes := r.Codes()
	nulls := r.Nulls()
	out := qual[:0]

	if cLo, cHi, ok := r.CodeRange(p.Lo, p.Hi); ok {
		if cLo > cHi {
			return out // provably empty
		}
		if nulls == nil {
			for _, i := range qual {
				if c := codes[i]; c >= cLo && c <= cHi {
					out = append(out, i)
				}
			}
		} else {
			for _, i := range qual {
				if c := codes[i]; c >= cLo && c <= cHi && !nulls.Get(i) {
					out = append(out, i)
				}
			}
		}
		return out
	}

	if r.Meta.Enc == colstore.EncDict {
		// Evaluate the range once per dictionary entry (string predicates on
		// compressed data).
		set := r.CodeSetMatching(func(v sqltypes.Value) bool {
			return inRange(v, p.Lo, p.Hi)
		})
		return filterByCodeSet(codes, nulls, set, qual)
	}

	// Fallback: decode and compare (raw-float encodings).
	for _, i := range qual {
		if nulls != nil && nulls.Get(i) {
			continue
		}
		if inRange(r.DecodeCode(codes[i]), p.Lo, p.Hi) {
			out = append(out, i)
		}
	}
	return out
}

// filterByDictPred narrows qual by an arbitrary predicate, evaluated once
// per dictionary entry for dictionary-encoded segments and per decoded value
// otherwise. NULL rows never qualify (the planner guarantees the predicate
// is not true on NULL).
func filterByDictPred(r *colstore.ColumnReader, pred expr.Expr, qual []int) []int {
	holds := func(v sqltypes.Value) bool {
		res := pred.Eval(sqltypes.Row{v})
		return !res.Null && res.I != 0
	}
	codes := r.Codes()
	nulls := r.Nulls()
	if r.Meta.Enc == colstore.EncDict {
		set := r.CodeSetMatching(holds)
		return filterByCodeSet(codes, nulls, set, qual)
	}
	out := qual[:0]
	for _, i := range qual {
		if nulls != nil && nulls.Get(i) {
			continue
		}
		if holds(r.DecodeCode(codes[i])) {
			out = append(out, i)
		}
	}
	return out
}

func inRange(v, lo, hi sqltypes.Value) bool {
	if !lo.Null && sqltypes.Compare(v, lo) < 0 {
		return false
	}
	if !hi.Null && sqltypes.Compare(v, hi) > 0 {
		return false
	}
	return true
}

func filterByCodeSet(codes []uint64, nulls *bits.Bitmap, set *bits.Bitmap, qual []int) []int {
	out := qual[:0]
	for _, i := range qual {
		if nulls != nil && nulls.Get(i) {
			continue
		}
		if set.Get(int(codes[i])) {
			out = append(out, i)
		}
	}
	return out
}

// filterByBloom narrows qual to rows whose column value may be in the filter.
// Dictionary columns test each distinct dictionary entry once; integer-family
// columns decode and hash in a tight loop; other columns hash decoded values.
func filterByBloom(r *colstore.ColumnReader, f *bloom.Filter, qual []int) []int {
	codes := r.Codes()
	nulls := r.Nulls()
	if r.Meta.Enc == colstore.EncDict {
		set := r.CodeSetMatching(func(v sqltypes.Value) bool { return f.MayContain(v) })
		return filterByCodeSet(codes, nulls, set, qual)
	}
	out := qual[:0]
	if r.Col.Typ != sqltypes.Float64 && r.Meta.Numeric.Kind != encoding.NumFloatRaw {
		num := r.Meta.Numeric
		if nulls == nil {
			for _, i := range qual {
				if f.MayContainInt(num.DecodeInt(codes[i])) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range qual {
			if !nulls.Get(i) && f.MayContainInt(num.DecodeInt(codes[i])) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range qual {
		if nulls != nil && nulls.Get(i) {
			continue
		}
		if f.MayContain(r.DecodeCode(codes[i])) {
			out = append(out, i)
		}
	}
	return out
}

// nextBatch materializes the next ≤900 qualifying rows and applies the
// residual predicate.
func (c *groupCursor) nextBatch() *vector.Batch {
	for c.off < len(c.qual) {
		n := len(c.qual) - c.off
		if n > vector.DefaultBatchSize {
			n = vector.DefaultBatchSize
		}
		idxs := c.qual[c.off : c.off+n]
		c.off += n

		b := vector.NewBatch(c.scan.schema, n)
		b.SetNumRows(n)
		st := c.scan.Stats
		for i, r := range c.readers {
			// Late materialization: dict-encoded segments emit codes sharing
			// the primary dictionary; strings decode only at the pipeline
			// edge. Segments whose local dictionary cannot be remapped into
			// the primary dictionary fall back to eager decoding.
			if r.CanEmitCodes() {
				r.GatherCodesInto(b.Vecs[i], idxs)
				atomic.AddInt64(&st.StringColsCoded, 1)
				mScanColsCoded.Inc()
			} else {
				r.GatherInto(b.Vecs[i], idxs)
				if r.Meta.Enc == colstore.EncDict {
					atomic.AddInt64(&st.StringColsMaterialized, 1)
					mScanColsMaterialized.Inc()
				}
			}
		}
		if c.scan.Residual != nil {
			expr.ApplyFilter(c.scan.Residual, b)
		}
		atomic.AddInt64(&st.RowsResidual, int64(n-b.Len()))
		if b.Len() == 0 {
			continue
		}
		atomic.AddInt64(&st.RowsOutput, int64(b.Len()))
		mScanRowsOutput.Add(int64(b.Len()))
		return b
	}
	return nil
}

// --- Delta-store rows (row-mode side of the mixed scan) ---

// deltaBatch fills one batch from snapshot delta rows starting at *pos,
// applying pushdowns, bitmap filters, and the residual row-at-a-time.
func (s *Scan) deltaBatch(pos *int) *vector.Batch {
	rows := s.Snap.Delta
	picked := make([]sqltypes.Row, 0, vector.DefaultBatchSize)
	for *pos < len(rows) && len(picked) < vector.DefaultBatchSize {
		row := rows[*pos]
		*pos++
		atomic.AddInt64(&s.Stats.DeltaRows, 1)
		mScanDeltaRows.Inc()
		if s.deltaRowQualifies(row) {
			picked = append(picked, row)
		}
	}
	if len(picked) == 0 {
		return nil
	}
	b := vector.NewBatch(s.schema, len(picked))
	b.SetNumRows(len(picked))
	for i, row := range picked {
		for c, col := range s.Cols {
			b.Vecs[c].SetValue(i, row[col])
		}
	}
	atomic.AddInt64(&s.Stats.DeltaRowsOutput, int64(len(picked)))
	atomic.AddInt64(&s.Stats.RowsOutput, int64(len(picked)))
	mScanRowsOutput.Add(int64(len(picked)))
	return b
}

func (s *Scan) deltaRowQualifies(row sqltypes.Row) bool {
	for _, p := range s.Pushdowns {
		v := row[p.Col]
		if v.Null || !inRange(v, p.Lo, p.Hi) {
			return false
		}
	}
	for _, dp := range s.DictPreds {
		v := row[dp.Col]
		if v.Null {
			return false
		}
		res := dp.Pred.Eval(sqltypes.Row{v})
		if res.Null || res.I == 0 {
			return false
		}
	}
	for _, bp := range s.Blooms {
		if bp.Target == nil || bp.Target.F == nil {
			continue
		}
		v := row[bp.Col]
		if v.Null || !bp.Target.F.MayContain(v) {
			return false
		}
	}
	if s.Residual != nil {
		// Residual is bound to output positions; build the projected row.
		proj := make(sqltypes.Row, len(s.Cols))
		for i, col := range s.Cols {
			proj[i] = row[col]
		}
		v := s.Residual.Eval(proj)
		if v.Null || v.I == 0 {
			return false
		}
	}
	return true
}

// --- Parallel gather exchange ---

// startParallel launches workers that process row groups independently and a
// final worker for delta rows, gathering batches into one channel (§5's
// exchange operator, gather form). Workers run under a context derived from
// the query context: cancellation, Close, and the first worker error all
// shut the exchange down. Worker panics are contained and converted to
// QueryErrors carrying the row-group id.
func (s *Scan) startParallel(ctx context.Context) {
	nw := s.Parallel
	// Two buffered batches per worker: enough slack that scan workers keep
	// decoding while downstream exchange workers (parallel aggregation or
	// join splitters) drain the gather concurrently.
	s.ch = make(chan *vector.Batch, 2*nw)
	wctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	groups := s.Snap.Groups
	var next int64 = -1

	s.wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(worker int) {
			defer s.wg.Done()
			gid := qerr.NoGroup // row group under processing, for panic reports
			defer func() {
				if e := qerr.FromPanic("scan", gid, recover()); e != nil {
					s.fail(e)
				}
			}()
			for {
				if wctx.Err() != nil {
					return
				}
				gi := int(atomic.AddInt64(&next, 1))
				if gi >= len(groups) {
					break
				}
				g := groups[gi]
				gid = g.ID
				cur, err := s.openGroup(g)
				if err != nil {
					s.fail(qerr.WithGroup("scan", g.ID, err))
					return
				}
				if cur == nil {
					continue
				}
				for b := cur.nextBatch(); b != nil; b = cur.nextBatch() {
					select {
					case s.ch <- b:
					case <-wctx.Done():
						return
					}
				}
			}
			gid = qerr.NoGroup
			// Worker 0 also handles delta rows after groups are claimed.
			if worker == 0 {
				pos := 0
				for pos < len(s.Snap.Delta) {
					if wctx.Err() != nil {
						return
					}
					b := s.deltaBatch(&pos)
					if b == nil {
						continue
					}
					select {
					case s.ch <- b:
					case <-wctx.Done():
						return
					}
				}
			}
		}(w)
	}
	go func() {
		s.wg.Wait()
		cancel() // release the derived context if workers finished naturally
		close(s.ch)
	}()
}

// fail records the first worker error and cancels sibling workers, so an
// error in one row group stops the whole exchange instead of letting the
// survivors keep streaming batches until the consumer drains them.
func (s *Scan) fail(err error) {
	s.errOnce.Do(func() {
		s.err = err
		s.cancel()
	})
}
