package batchexec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// Benchmarks contrasting late materialization (dict codes end to end) with
// eager decode at the scan (a Materialize wrapper directly above it). The
// "materialized" variants are the pre-late-materialization behavior, kept
// runnable so the speedup stays measurable in one binary.

const dictBenchRows = 60000

var dictBenchCats = func() []string {
	cats := make([]string, 64)
	for i := range cats {
		cats[i] = fmt.Sprintf("category-%02d-with-a-reasonably-long-suffix", i)
	}
	return cats
}()

var (
	dictBenchOnce  sync.Once
	dictBenchTable *table.Table
)

func dictBenchSetup(b *testing.B) *table.Table {
	b.Helper()
	dictBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		rows := make([]sqltypes.Row, dictBenchRows)
		for i := range rows {
			rows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(dictBenchCats[rng.Intn(len(dictBenchCats))]),
				sqltypes.NewInt(int64(rng.Intn(1000))),
			}
		}
		store := storage.NewStore(storage.DefaultBufferPoolBytes)
		opts := table.Options{RowGroupSize: 10000, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
		tb := table.New(store, "bench", strSchema(), opts)
		if err := tb.BulkLoad(rows); err != nil {
			panic(err)
		}
		dictBenchTable = tb
	})
	return dictBenchTable
}

// benchInput returns the aggregation/join input over cols: the raw scan
// (coded string vectors flow downstream) or the scan behind an eager
// Materialize boundary.
func benchInput(tb *table.Table, cols []int, eager bool) (Operator, *ScanStats) {
	s := NewScan(tb.Snapshot(), cols)
	s.Stats = &ScanStats{}
	if eager {
		return &Materialize{In: s}, s.Stats
	}
	return s, s.Stats
}

func BenchmarkGroupByString(b *testing.B) {
	tb := dictBenchSetup(b)
	aggs := []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(1, "val", sqltypes.Int64), Name: "s"},
	}
	for _, v := range []struct {
		name  string
		eager bool
	}{{"coded", false}, {"materialized", true}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in, stats := benchInput(tb, []int{1, 2}, v.eager)
				rows, err := Drain(NewHashAgg(in, []int{0}, []string{"cat"}, aggs))
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(dictBenchCats) {
					b.Fatalf("got %d groups, want %d", len(rows), len(dictBenchCats))
				}
				if !v.eager && stats.StringColsCoded == 0 {
					b.Fatal("coded variant saw no coded string vectors")
				}
			}
		})
	}
}

func BenchmarkJoinOnString(b *testing.B) {
	tb := dictBenchSetup(b)
	for _, v := range []struct {
		name  string
		eager bool
	}{{"coded", false}, {"materialized", true}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				probe, stats := benchInput(tb, []int{0, 1}, v.eager)
				// Semi-join shape keeps output linear in the probe; the build
				// side is a raw scan so its string key stays coded (htCode)
				// in the coded variant and materialized (htStr) in the eager
				// one.
				build, _ := benchInput(tb, []int{1}, v.eager)
				j, err := NewHashJoin(probe, build, []int{1}, []int{0}, exec.LeftSemi, nil)
				if err != nil {
					b.Fatal(err)
				}
				n, err := Count(j)
				if err != nil {
					b.Fatal(err)
				}
				if n != dictBenchRows {
					b.Fatalf("got %d rows, want %d", n, dictBenchRows)
				}
				if !v.eager && stats.StringColsCoded == 0 {
					b.Fatal("coded variant saw no coded string vectors")
				}
			}
		})
	}
}
