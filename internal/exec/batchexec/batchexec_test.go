package batchexec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "grp", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "price", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "region", Typ: sqltypes.String},
		sqltypes.Column{Name: "d", Typ: sqltypes.Date},
	)
}

var regions = []string{"north", "south", "east", "west"}

func makeRows(n int, seed int64) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		price := sqltypes.NewFloat(float64(rng.Intn(10000)) / 100)
		if rng.Intn(25) == 0 {
			price = sqltypes.NewNull(sqltypes.Float64)
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(rng.Intn(50))),
			price,
			sqltypes.NewString(regions[rng.Intn(len(regions))]),
			sqltypes.NewDate(int64(9000 + rng.Intn(1000))),
		}
	}
	return rows
}

// loadTable builds a CCI table with small row groups plus some delta rows and
// deletes, so scans cover every storage path.
func loadTable(t *testing.T, rows []sqltypes.Row) *table.Table {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	opts := table.Options{RowGroupSize: 500, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(store, "t", testSchema(), opts)
	split := len(rows) * 9 / 10
	if err := tb.BulkLoad(rows[:split]); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertMany(rows[split:]); err != nil {
		t.Fatal(err)
	}
	// Delete ~5% of rows.
	if _, err := tb.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I%20 == 13 }); err != nil {
		t.Fatal(err)
	}
	return tb
}

// reference computes the expected multiset of rows surviving a filter.
func reference(rows []sqltypes.Row, pred func(sqltypes.Row) bool, proj []int) map[string]int {
	out := map[string]int{}
	for _, r := range rows {
		if r[0].I%20 == 13 { // deleted
			continue
		}
		if pred != nil && !pred(r) {
			continue
		}
		key := ""
		for _, c := range proj {
			key += r[c].String() + "|"
		}
		out[key]++
	}
	return out
}

// rowKey canonicalizes one row for order-insensitive comparison. Float values
// are rounded to 8 significant digits: parallel partial aggregation adds
// floats in a different order than the serial pipeline, so sums legitimately
// differ in the last few ulps while any real defect is orders of magnitude
// larger.
func rowKey(r sqltypes.Row) string {
	key := ""
	for _, v := range r {
		if v.Typ == sqltypes.Float64 && !v.Null {
			v.F = roundSig(v.F)
		}
		key += v.String() + "|"
	}
	return key
}

// roundSig rounds f to 8 significant digits (keeping Value.String formatting
// intact for integral floats).
func roundSig(f float64) float64 {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	scale := math.Pow(10, 8-math.Ceil(math.Log10(math.Abs(f))))
	return math.Round(f*scale) / scale
}

// rowMultiset canonicalizes rows into an order-insensitive multiset. Parallel
// pipelines interleave batches nondeterministically (worker scheduling decides
// gather order), so parity between plans is always asserted on multisets,
// never on slice order.
func rowMultiset(rows []sqltypes.Row) map[string]int {
	out := map[string]int{}
	for _, r := range rows {
		out[rowKey(r)]++
	}
	return out
}

// multisetDiff describes how two row multisets differ ("" when equal).
func multisetDiff(got, want map[string]int) string {
	var diffs []string
	for k, v := range want {
		if got[k] != v {
			diffs = append(diffs, fmt.Sprintf("row %q: got %d, want %d", k, got[k], v))
		}
	}
	for k, v := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("row %q: got %d, want 0", k, v))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	if len(diffs) > 8 {
		diffs = append(diffs[:8], fmt.Sprintf("... and %d more", len(diffs)-8))
	}
	return strings.Join(diffs, "\n")
}

// assertSameRows asserts two row sets are equal irrespective of order.
func assertSameRows(t *testing.T, label string, got, want []sqltypes.Row) {
	t.Helper()
	if d := multisetDiff(rowMultiset(got), rowMultiset(want)); d != "" {
		t.Errorf("%s: result mismatch (order-insensitive):\n%s", label, d)
	}
}

func gotRows(t *testing.T, op Operator) map[string]int {
	t.Helper()
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	return rowMultiset(rows)
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestScanFullTable(t *testing.T) {
	rows := makeRows(3000, 1)
	tb := loadTable(t, rows)
	scan := NewScan(tb.Snapshot(), []int{0, 1, 2, 3, 4})
	want := reference(rows, nil, []int{0, 1, 2, 3, 4})
	if got := gotRows(t, scan); !mapsEqual(got, want) {
		t.Fatalf("full scan mismatch: got %d keys, want %d", len(got), len(want))
	}
}

func TestScanWithPushdownRange(t *testing.T) {
	rows := makeRows(3000, 2)
	tb := loadTable(t, rows)
	scan := NewScan(tb.Snapshot(), []int{0, 4})
	scan.Pushdowns = []Pushdown{{Col: 4, Lo: sqltypes.NewDate(9100), Hi: sqltypes.NewDate(9200)}}
	want := reference(rows, func(r sqltypes.Row) bool {
		return r[4].I >= 9100 && r[4].I <= 9200
	}, []int{0, 4})
	if got := gotRows(t, scan); !mapsEqual(got, want) {
		t.Fatal("range pushdown mismatch")
	}
	if scan.Stats.RowsAfterRange >= scan.Stats.RowsConsidered {
		t.Fatal("pushdown did not narrow rows")
	}
}

func TestScanStringPushdown(t *testing.T) {
	rows := makeRows(3000, 3)
	tb := loadTable(t, rows)
	scan := NewScan(tb.Snapshot(), []int{0, 3})
	eq := sqltypes.NewString("north")
	scan.Pushdowns = []Pushdown{{Col: 3, Lo: eq, Hi: eq}}
	want := reference(rows, func(r sqltypes.Row) bool { return r[3].S == "north" }, []int{0, 3})
	if got := gotRows(t, scan); !mapsEqual(got, want) {
		t.Fatal("string pushdown mismatch")
	}
}

func TestScanSegmentElimination(t *testing.T) {
	// Load sorted data so row-group min/max ranges partition the key space.
	var rows []sqltypes.Row
	for i := 0; i < 3000; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i / 100)),
			sqltypes.NewFloat(1),
			sqltypes.NewString("x"),
			sqltypes.NewDate(int64(9000 + i)),
		})
	}
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	opts := table.Options{RowGroupSize: 500, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(store, "t", testSchema(), opts)
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(tb.Snapshot(), []int{0})
	scan.Pushdowns = []Pushdown{{Col: 4, Lo: sqltypes.NewDate(9000), Hi: sqltypes.NewDate(9099)}}
	n, err := Count(scan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	if scan.Stats.GroupsEliminated != 5 {
		t.Fatalf("eliminated %d of 6 groups, want 5", scan.Stats.GroupsEliminated)
	}
}

func TestScanResidualAndParallel(t *testing.T) {
	rows := makeRows(5000, 4)
	tb := loadTable(t, rows)
	pred := func(r sqltypes.Row) bool {
		return !r[2].Null && r[2].F < 30 && strings.HasPrefix(r[3].S, "n")
	}
	want := reference(rows, pred, []int{0, 2, 3})
	for _, par := range []int{1, 4} {
		scan := NewScan(tb.Snapshot(), []int{0, 2, 3})
		scan.Residual = expr.NewAnd(
			expr.NewCmp(expr.LT, expr.NewColRef(1, "price", sqltypes.Float64), expr.NewConst(sqltypes.NewFloat(30))),
			expr.NewLike(expr.NewColRef(2, "region", sqltypes.String), "n%", false),
		)
		scan.Parallel = par
		if got := gotRows(t, scan); !mapsEqual(got, want) {
			t.Fatalf("parallel=%d: residual scan mismatch", par)
		}
	}
}

func TestFilterProjectLimit(t *testing.T) {
	rows := makeRows(2000, 5)
	tb := loadTable(t, rows)
	scan := NewScan(tb.Snapshot(), []int{0, 1})
	filter := &Filter{In: scan, Pred: expr.NewCmp(expr.LT, expr.NewColRef(0, "id", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(100)))}
	proj := NewProject(filter, []expr.Expr{
		expr.NewColRef(0, "id", sqltypes.Int64),
		expr.NewArith(expr.Mul, expr.NewColRef(1, "grp", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(2))),
	}, []string{"id", "grp2"})
	lim := &Limit{In: proj, N: 10}
	got, err := Drain(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limit returned %d rows", len(got))
	}
	for _, r := range got {
		if r[0].I >= 100 || r[1].I%2 != 0 {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	vals := &Values{Rows: makeRows(50, 6), Sch: testSchema()}
	lim := &Limit{In: vals, Offset: 45, N: 100}
	got, err := Drain(lim)
	if err != nil || len(got) != 5 {
		t.Fatalf("offset+limit: %d rows, err %v", len(got), err)
	}
}

func joinInputs(t *testing.T, nFact, nDim int) (fact, dim []sqltypes.Row, factSch, dimSch *sqltypes.Schema) {
	rng := rand.New(rand.NewSource(7))
	factSch = sqltypes.NewSchema(
		sqltypes.Column{Name: "fk", Typ: sqltypes.Int64, Nullable: true},
		sqltypes.Column{Name: "val", Typ: sqltypes.Int64},
	)
	dimSch = sqltypes.NewSchema(
		sqltypes.Column{Name: "pk", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "name", Typ: sqltypes.String},
	)
	for i := 0; i < nFact; i++ {
		fk := sqltypes.NewInt(int64(rng.Intn(nDim * 2))) // half dangle
		if rng.Intn(20) == 0 {
			fk = sqltypes.NewNull(sqltypes.Int64)
		}
		fact = append(fact, sqltypes.Row{fk, sqltypes.NewInt(int64(i))})
	}
	for i := 0; i < nDim; i++ {
		dim = append(dim, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("d%d", i))})
	}
	return
}

// refJoin computes the expected join output multiset.
func refJoin(fact, dim []sqltypes.Row, jt exec.JoinType) map[string]int {
	out := map[string]int{}
	add := func(parts ...string) { out[strings.Join(parts, "|")+"|"]++ }
	dimMatched := make([]bool, len(dim))
	for _, f := range fact {
		matched := false
		for di, d := range dim {
			if !f[0].Null && f[0].I == d[0].I {
				matched = true
				dimMatched[di] = true
				if jt == exec.Inner || jt == exec.LeftOuter || jt == exec.RightOuter || jt == exec.FullOuter {
					add(f[0].String(), f[1].String(), d[0].String(), d[1].String())
				}
			}
		}
		switch jt {
		case exec.LeftSemi:
			if matched {
				add(f[0].String(), f[1].String())
			}
		case exec.LeftAnti:
			if !matched {
				add(f[0].String(), f[1].String())
			}
		case exec.LeftOuter, exec.FullOuter:
			if !matched {
				add(f[0].String(), f[1].String(), "NULL", "NULL")
			}
		}
	}
	if jt == exec.RightOuter || jt == exec.FullOuter {
		for di, d := range dim {
			if !dimMatched[di] {
				add("NULL", "NULL", d[0].String(), d[1].String())
			}
		}
	}
	return out
}

func TestHashJoinAllTypes(t *testing.T) {
	fact, dim, factSch, dimSch := joinInputs(t, 2000, 100)
	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter, exec.RightOuter, exec.FullOuter, exec.LeftSemi, exec.LeftAnti} {
		t.Run(jt.String(), func(t *testing.T) {
			j, err := NewHashJoin(
				&Values{Rows: fact, Sch: factSch},
				&Values{Rows: dim, Sch: dimSch},
				[]int{0}, []int{0}, jt, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refJoin(fact, dim, jt)
			if got := gotRows(t, j); !mapsEqual(got, want) {
				t.Fatalf("%v join mismatch: got %d distinct, want %d", jt, len(got), len(want))
			}
		})
	}
}

func TestHashJoinResidual(t *testing.T) {
	fact, dim, factSch, dimSch := joinInputs(t, 1000, 50)
	// Residual: val % 2 = 0 (over probe++build layout, val is col 1).
	res := expr.NewCmp(expr.EQ,
		expr.NewArith(expr.Mod, expr.NewColRef(1, "val", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(2))),
		expr.NewConst(sqltypes.NewInt(0)))
	j, err := NewHashJoin(&Values{Rows: fact, Sch: factSch}, &Values{Rows: dim, Sch: dimSch},
		[]int{0}, []int{0}, exec.Inner, res)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[1].I%2 != 0 {
			t.Fatalf("residual leaked row %v", r)
		}
	}
	// Cross-check count against reference with residual applied.
	want := 0
	for _, f := range fact {
		if f[0].Null || f[1].I%2 != 0 {
			continue
		}
		for _, d := range dim {
			if f[0].I == d[0].I {
				want++
			}
		}
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
}

func TestHashJoinMultiKeyStringKey(t *testing.T) {
	aSch := sqltypes.NewSchema(
		sqltypes.Column{Name: "k1", Typ: sqltypes.String},
		sqltypes.Column{Name: "k2", Typ: sqltypes.Int64},
	)
	a := []sqltypes.Row{
		{sqltypes.NewString("x"), sqltypes.NewInt(1)},
		{sqltypes.NewString("x"), sqltypes.NewInt(2)},
		{sqltypes.NewString("y"), sqltypes.NewInt(1)},
	}
	b := []sqltypes.Row{
		{sqltypes.NewString("x"), sqltypes.NewInt(1)},
		{sqltypes.NewString("y"), sqltypes.NewInt(2)},
	}
	j, err := NewHashJoin(&Values{Rows: a, Sch: aSch}, &Values{Rows: b, Sch: aSch},
		[]int{0, 1}, []int{0, 1}, exec.Inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].S != "x" || rows[0][1].I != 1 {
		t.Fatalf("multi-key join = %v", rows)
	}
}

func TestHashJoinSpill(t *testing.T) {
	fact, dim, factSch, dimSch := joinInputs(t, 5000, 500)
	want := refJoin(fact, dim, exec.Inner)
	for _, jt := range []exec.JoinType{exec.Inner, exec.FullOuter, exec.LeftAnti} {
		tracker := NewTracker(4 << 10) // tiny grant forces spilling
		spillStore := storage.NewStore(0)
		j, err := NewHashJoin(&Values{Rows: fact, Sch: factSch}, &Values{Rows: dim, Sch: dimSch},
			[]int{0}, []int{0}, jt, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Tracker = tracker
		j.SpillStore = spillStore
		got := gotRows(t, j)
		if tracker.Spills() == 0 {
			t.Fatalf("%v: expected spilling", jt)
		}
		if jt == exec.Inner && !mapsEqual(got, want) {
			t.Fatal("spilled inner join mismatch")
		}
		ref := refJoin(fact, dim, jt)
		if !mapsEqual(got, ref) {
			t.Fatalf("%v: spilled join mismatch", jt)
		}
		if spillStore.Stats().Writes == 0 {
			t.Fatal("no spill I/O recorded")
		}
	}
}

func TestBloomPushdownThroughJoin(t *testing.T) {
	rows := makeRows(4000, 8)
	tb := loadTable(t, rows)
	// Dimension: only region "north" (via values).
	dimSch := sqltypes.NewSchema(sqltypes.Column{Name: "rname", Typ: sqltypes.String})
	dim := []sqltypes.Row{{sqltypes.NewString("north")}}

	target := &BloomTarget{}
	scan := NewScan(tb.Snapshot(), []int{0, 3})
	scan.Blooms = []BloomPred{{Col: 3, Target: target}}

	j, err := NewHashJoin(scan, &Values{Rows: dim, Sch: dimSch}, []int{1}, []int{0}, exec.Inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.BloomOut = target
	rowsOut, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(rows, func(r sqltypes.Row) bool { return r[3].S == "north" }, []int{0})
	if len(rowsOut) != sumCounts(want) {
		t.Fatalf("join rows = %d, want %d", len(rowsOut), sumCounts(want))
	}
	// The bloom filter must have cut scan output well below total rows.
	if scan.Stats.RowsAfterBloom >= scan.Stats.RowsAfterRange {
		t.Fatalf("bloom did not filter: after=%d before=%d", scan.Stats.RowsAfterBloom, scan.Stats.RowsAfterRange)
	}
}

func sumCounts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func TestHashAggGroupBy(t *testing.T) {
	rows := makeRows(3000, 9)
	tb := loadTable(t, rows)
	scan := NewScan(tb.Snapshot(), []int{1, 2})
	agg := NewHashAgg(scan, []int{0}, []string{"grp"}, []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(1, "price", sqltypes.Float64), Name: "total"},
		{Kind: exec.Min, Arg: expr.NewColRef(1, "price", sqltypes.Float64), Name: "lo"},
		{Kind: exec.Avg, Arg: expr.NewColRef(1, "price", sqltypes.Float64), Name: "avg"},
	})
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference aggregation.
	type ref struct {
		n     int64
		sum   float64
		min   float64
		cnt   int64
		hasMn bool
	}
	refs := map[int64]*ref{}
	for _, r := range rows {
		if r[0].I%20 == 13 {
			continue
		}
		g := refs[r[1].I]
		if g == nil {
			g = &ref{}
			refs[r[1].I] = g
		}
		g.n++
		if !r[2].Null {
			g.sum += r[2].F
			g.cnt++
			if !g.hasMn || r[2].F < g.min {
				g.min = r[2].F
				g.hasMn = true
			}
		}
	}
	if len(got) != len(refs) {
		t.Fatalf("groups = %d, want %d", len(got), len(refs))
	}
	for _, r := range got {
		g := refs[r[0].I]
		if g == nil {
			t.Fatalf("phantom group %v", r[0])
		}
		if r[1].I != g.n {
			t.Fatalf("group %d: count %d, want %d", r[0].I, r[1].I, g.n)
		}
		if absF(r[2].F-g.sum) > 1e-6 {
			t.Fatalf("group %d: sum %f, want %f", r[0].I, r[2].F, g.sum)
		}
		if absF(r[3].F-g.min) > 1e-9 {
			t.Fatalf("group %d: min %f, want %f", r[0].I, r[3].F, g.min)
		}
		if absF(r[4].F-g.sum/float64(g.cnt)) > 1e-6 {
			t.Fatalf("group %d: avg wrong", r[0].I)
		}
	}
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestHashAggDistinctAndScalar(t *testing.T) {
	sch := sqltypes.NewSchema(sqltypes.Column{Name: "x", Typ: sqltypes.Int64, Nullable: true})
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}, {sqltypes.NewInt(2)},
		{sqltypes.NewNull(sqltypes.Int64)}, {sqltypes.NewInt(3)}, {sqltypes.NewInt(1)},
	}
	agg := NewHashAgg(&Values{Rows: rows, Sch: sch}, nil, nil, []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Count, Arg: expr.NewColRef(0, "x", sqltypes.Int64), Distinct: true, Name: "nd"},
		{Kind: exec.Sum, Arg: expr.NewColRef(0, "x", sqltypes.Int64), Distinct: true, Name: "sd"},
	})
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("scalar agg rows = %d", len(got))
	}
	if got[0][0].I != 6 || got[0][1].I != 3 || got[0][2].I != 6 {
		t.Fatalf("distinct agg = %v", got[0])
	}
	// Scalar agg over empty input: one row, COUNT(*) = 0, SUM NULL.
	agg2 := NewHashAgg(&Values{Rows: nil, Sch: sch}, nil, nil, []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(0, "x", sqltypes.Int64), Name: "s"},
	})
	got2, err := Drain(agg2)
	if err != nil || len(got2) != 1 {
		t.Fatalf("empty scalar agg: %v %v", got2, err)
	}
	if got2[0][0].I != 0 || !got2[0][1].Null {
		t.Fatalf("empty scalar agg = %v", got2[0])
	}
}

func TestHashAggSpill(t *testing.T) {
	sch := sqltypes.NewSchema(
		sqltypes.Column{Name: "g", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "v", Typ: sqltypes.Int64},
	)
	rng := rand.New(rand.NewSource(11))
	var rows []sqltypes.Row
	refSums := map[int64]int64{}
	refCounts := map[int64]int64{}
	for i := 0; i < 20000; i++ {
		g := int64(rng.Intn(2000))
		v := int64(rng.Intn(100))
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(g), sqltypes.NewInt(v)})
		refSums[g] += v
		refCounts[g]++
	}
	tracker := NewTracker(8 << 10)
	agg := NewHashAgg(&Values{Rows: rows, Sch: sch}, []int{0}, []string{"g"}, []exec.AggSpec{
		{Kind: exec.CountStar, Name: "n"},
		{Kind: exec.Sum, Arg: expr.NewColRef(1, "v", sqltypes.Int64), Name: "s"},
	})
	agg.Tracker = tracker
	agg.SpillStore = storage.NewStore(0)
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if tracker.Spills() == 0 {
		t.Fatal("expected spilling")
	}
	if len(got) != len(refSums) {
		t.Fatalf("groups = %d, want %d", len(got), len(refSums))
	}
	for _, r := range got {
		if r[1].I != refCounts[r[0].I] || r[2].I != refSums[r[0].I] {
			t.Fatalf("group %d wrong under spill: %v", r[0].I, r)
		}
	}
}

func TestSortAndTopN(t *testing.T) {
	rows := makeRows(1000, 12)
	sch := testSchema()
	keys := []exec.SortKey{
		{E: expr.NewColRef(1, "grp", sqltypes.Int64)},
		{E: expr.NewColRef(0, "id", sqltypes.Int64), Desc: true},
	}
	srt := &Sort{In: &Values{Rows: rows, Sch: sch}, Keys: keys}
	sorted, err := Drain(srt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sorted); i++ {
		if exec.CompareRows(keys, sorted[i-1], sorted[i]) > 0 {
			t.Fatalf("sort violated at %d", i)
		}
	}
	topn := &TopN{In: &Values{Rows: rows, Sch: sch}, Keys: keys, N: 25}
	top, err := Drain(topn)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 25 {
		t.Fatalf("topn returned %d", len(top))
	}
	for i := range top {
		if exec.CompareRows(keys, top[i], sorted[i]) != 0 {
			t.Fatalf("topn[%d] != sorted[%d]", i, i)
		}
	}
}

func TestUnionAll(t *testing.T) {
	rows := makeRows(100, 13)
	sch := testSchema()
	u := &UnionAll{Ins: []Operator{
		&Values{Rows: rows[:30], Sch: sch},
		&Values{Rows: rows[30:60], Sch: sch},
		&Values{Rows: rows[60:], Sch: sch},
	}}
	got, err := Drain(u)
	if err != nil || len(got) != 100 {
		t.Fatalf("union rows = %d, err %v", len(got), err)
	}
}

func TestScanParallelMatchesSerial(t *testing.T) {
	rows := makeRows(8000, 14)
	tb := loadTable(t, rows)
	serial := NewScan(tb.Snapshot(), []int{0, 1, 2, 3, 4})
	par := NewScan(tb.Snapshot(), []int{0, 1, 2, 3, 4})
	par.Parallel = 4
	a := gotRows(t, serial)
	b := gotRows(t, par)
	if !mapsEqual(a, b) {
		t.Fatal("parallel scan output differs from serial")
	}
}
