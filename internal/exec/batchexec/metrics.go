package batchexec

import "apollo/internal/metrics"

// Process-wide series for the batch executor. Per-query numbers live in
// ScanStats/OpStats; these aggregate across queries for the .metrics dump.
// Scan counters are bumped per row group or per batch (never per row), and
// the operator fast-path counters once per batch, keeping the hot-path cost
// to one atomic add per ~900 rows.
var (
	mScanGroups = metrics.Default.Counter("apollo_scan_row_groups_total",
		"row groups considered by scans")
	mScanGroupsEliminated = metrics.Default.Counter("apollo_scan_row_groups_eliminated_total",
		"row groups skipped entirely via segment metadata")
	mScanRowsConsidered = metrics.Default.Counter("apollo_scan_rows_considered_total",
		"rows in non-eliminated row groups")
	mScanRowsDeleted = metrics.Default.Counter("apollo_scan_rows_deleted_total",
		"rows dropped by delete bitmaps")
	mScanRowsOutput = metrics.Default.Counter("apollo_scan_rows_output_total",
		"rows emitted by scans (group + delta side)")
	mScanDeltaRows = metrics.Default.Counter("apollo_scan_delta_rows_total",
		"delta-store rows examined (row-mode side)")
	mScanColsCoded = metrics.Default.Counter("apollo_scan_string_cols_coded_total",
		"per-batch string columns emitted as dict codes (late materialization)")
	mScanColsMaterialized = metrics.Default.Counter("apollo_scan_string_cols_materialized_total",
		"per-batch string columns eagerly decoded (local-dict fallback)")

	mAggBatchesFastInt = metrics.Default.Counter(`apollo_hashagg_batches_total{path="fastint"}`,
		"batches aggregated, by group-resolution path")
	mAggBatchesCoded = metrics.Default.Counter(`apollo_hashagg_batches_total{path="faststr_coded"}`,
		"batches aggregated, by group-resolution path")
	mAggBatchesStr = metrics.Default.Counter(`apollo_hashagg_batches_total{path="faststr"}`,
		"batches aggregated, by group-resolution path")
	mAggBatchesGeneric = metrics.Default.Counter(`apollo_hashagg_batches_total{path="generic"}`,
		"batches aggregated, by group-resolution path")

	mJoinBatchesInt = metrics.Default.Counter(`apollo_hashjoin_probe_batches_total{path="int"}`,
		"probe batches joined, by probe path")
	mJoinBatchesCode = metrics.Default.Counter(`apollo_hashjoin_probe_batches_total{path="code"}`,
		"probe batches joined entirely in dictionary-code space")
	mJoinBatchesGeneric = metrics.Default.Counter(`apollo_hashjoin_probe_batches_total{path="generic"}`,
		"probe batches joined, by probe path")

	mSpills = metrics.Default.Counter("apollo_exec_spills_total",
		"hash-operator spill events (memory grant exhausted)")

	mExchangeWorkers = metrics.Default.Counter("apollo_exchange_workers_started_total",
		"exchange worker goroutines started (parallel agg, join splitters/probers)")
	mExchangeBusy = metrics.Default.Histogram("apollo_exchange_worker_busy_seconds",
		"wall time each exchange worker spent running", nil)
)
