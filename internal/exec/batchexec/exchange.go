// Exchange operators: the degree-of-parallelism layer above the scan.
//
// PR-1 parallelized the scan itself (row-group workers gathered into one
// stream); everything downstream still ran on a single goroutine. This file
// extends parallelism through the rest of the pipeline with two exchange
// shapes, following the morsel-driven model:
//
//   - ParallelAgg: N pipeline workers pull batches from a SharedSource, run a
//     private filter/project/partial-aggregation pipeline each, and a final
//     merge combines the partial aggTable states (including any spill
//     partitions, whose group membership is no longer disjoint across
//     workers).
//
//   - Partitioned hash join (HashJoin.Parallel > 1): the build side is
//     hash-partitioned into P private join cores; probe batches are split by
//     the same hash and routed to the owning partition's worker, so each
//     build row is matched by exactly one goroutine and outer/semi/anti
//     semantics hold per partition.
//
// Both preserve the PR-2 code-space paths: batches cross the exchange in
// dict-coded form (gatherVec moves codes, never strings), partial aggregation
// groups on codes, and partition cores keep the htCode probe fast paths.
package batchexec

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"apollo/internal/exec"
	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// SharedSource serializes one child operator behind a mutex so that N
// exchange workers can pull batches from it concurrently. The child is opened
// and closed exactly once by the enclosing exchange operator; workers reach
// it through per-worker views (Worker) that only call Next. Each batch is
// handed to exactly one worker, which owns it per the Operator contract
// (producers allocate fresh batches, so ownership transfers cleanly across
// goroutines).
type SharedSource struct {
	src  Operator
	mu   sync.Mutex
	done bool
	err  error
}

// NewSharedSource wraps src for concurrent consumption.
func NewSharedSource(src Operator) *SharedSource { return &SharedSource{src: src} }

// Base returns the wrapped operator; the enclosing exchange opens and closes
// it around a run.
func (s *SharedSource) Base() Operator { return s.src }

// Reset re-arms the source for a new run. The base must be (re)opened first.
func (s *SharedSource) Reset() {
	s.mu.Lock()
	s.done = false
	s.err = nil
	s.mu.Unlock()
}

// next hands the next batch to the calling worker. End-of-stream and errors
// are sticky: once the child returns nil or fails, every subsequent caller
// observes the same outcome without touching the child again.
func (s *SharedSource) next() (*vector.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, s.err
	}
	b, err := s.src.Next()
	if err != nil {
		s.done, s.err = true, err
		return nil, err
	}
	if b == nil {
		s.done = true
	}
	return b, nil
}

// Worker returns a new per-worker view of the shared source. Each worker
// pipeline gets its own view so Open carries that worker's context without
// racing with its siblings.
func (s *SharedSource) Worker() Operator { return &workerSource{shared: s} }

type workerSource struct {
	shared *SharedSource
	ctx    context.Context
}

func (w *workerSource) Schema() *sqltypes.Schema { return w.shared.src.Schema() }

func (w *workerSource) Open(ctx context.Context) error {
	w.ctx = ctx
	return nil
}

func (w *workerSource) Next() (*vector.Batch, error) {
	if err := w.ctx.Err(); err != nil {
		return nil, err
	}
	return w.shared.next()
}

func (w *workerSource) Close() error { return nil }

// ParallelizableAggs reports whether a set of aggregates can run as
// partial/final aggregation. DISTINCT aggregates hold per-group value sets
// whose partial states cannot be merged by adding counts and sums, so the
// planner keeps them on the serial HashAgg path.
func ParallelizableAggs(aggs []exec.AggSpec) bool {
	for i := range aggs {
		if aggs[i].Distinct {
			return false
		}
	}
	return true
}

// ParallelAgg is the exchange form of HashAgg: each Pipe (one per worker,
// typically replicated filter/project stages over a SharedSource view) feeds
// a private partial aggTable, and Open merges the partial states into the
// final result. Group-by keys and aggregate arguments are bound to the pipe
// schema exactly as HashAgg binds them to its input schema.
type ParallelAgg struct {
	Exchange *SharedSource
	Pipes    []Operator
	GroupBy  []int
	Names    []string
	Aggs     []exec.AggSpec

	Tracker    *Tracker
	SpillStore *storage.Store

	schema *sqltypes.Schema
	out    *Values
	tables []*aggTable
}

// NewParallelAgg builds a parallel partial/final aggregation over the given
// worker pipes (all reading, directly or through replicated stages, from ex).
func NewParallelAgg(ex *SharedSource, pipes []Operator, groupBy []int, names []string, aggs []exec.AggSpec) *ParallelAgg {
	return &ParallelAgg{Exchange: ex, Pipes: pipes, GroupBy: groupBy, Names: names, Aggs: aggs,
		schema: aggOutputSchema(pipes[0].Schema(), groupBy, names, aggs)}
}

// Schema implements Operator.
func (p *ParallelAgg) Schema() *sqltypes.Schema { return p.schema }

// Open implements Operator: runs the worker pipelines to completion, then
// merges their partial states.
func (p *ParallelAgg) Open(ctx context.Context) error {
	base := p.Exchange.Base()
	if err := base.Open(ctx); err != nil {
		return err
	}
	defer base.Close()
	p.Exchange.Reset()

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	nw := len(p.Pipes)
	tables := make([]*aggTable, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if e := qerr.FromPanic("parallel-agg", qerr.NoGroup, recover()); e != nil {
					errs[w] = e
					cancel()
				}
			}()
			errs[w] = p.runWorker(wctx, w, tables)
			if errs[w] != nil {
				cancel()
			}
		}(w)
	}
	wg.Wait()
	p.tables = tables
	if err := firstExchangeError(ctx, errs); err != nil {
		return err
	}

	rows, err := mergeAggTables(ctx, p.Aggs, tables)
	if err != nil {
		return err
	}
	p.out = &Values{Rows: rows, Sch: p.schema}
	return p.out.Open(ctx)
}

func (p *ParallelAgg) runWorker(ctx context.Context, w int, tables []*aggTable) error {
	mExchangeWorkers.Inc()
	start := time.Now()
	defer func() { mExchangeBusy.Observe(time.Since(start).Seconds()) }()
	pipe := p.Pipes[w]
	if err := pipe.Open(ctx); err != nil {
		return err
	}
	defer pipe.Close()
	t := newAggTable(pipe.Schema(), p.GroupBy, p.Aggs, p.Tracker, p.SpillStore)
	tables[w] = t
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := pipe.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := t.addBatch(b); err != nil {
			return err
		}
	}
}

// Next implements Operator.
func (p *ParallelAgg) Next() (*vector.Batch, error) { return p.out.Next() }

// Close implements Operator.
func (p *ParallelAgg) Close() error {
	for _, t := range p.tables {
		if t != nil {
			t.release()
		}
	}
	p.tables = nil
	p.out = nil
	return nil
}

// firstExchangeError picks the error to surface from a worker fan-in: the
// first real failure wins; pure cancellation collapses to the query context's
// verdict (a sibling's failure cancels the worker context, and that induced
// cancellation must not mask the root cause).
func firstExchangeError(ctx context.Context, errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeAggTables combines the partial aggregation states of the worker
// tables. In-memory groups fold together through their canonical encoded
// keys (a group's partial states merge by adding counts and sums, comparing
// min/max). Spilled rows cannot be aggregated per partition the way the
// serial path does — a group can be in-memory in one worker and spilled by
// another, so partitions no longer hold disjoint group sets — instead every
// spilled row folds into the same merged table.
func mergeAggTables(ctx context.Context, aggs []exec.AggSpec, tables []*aggTable) ([]sqltypes.Row, error) {
	t0 := tables[0]
	m := newAggTable(t0.inSchema, t0.groupBy, aggs, nil, nil)
	// The merge table only ever uses the generic encoded-key map (plus the
	// scalar group); its fast-path state stays untouched because addBatch is
	// never called on it.
	for _, t := range tables {
		if t == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, g := range t.order {
			m.mergeGroup(g)
		}
		for _, part := range t.parts {
			if part == nil {
				continue
			}
			rows, err := part.readAll()
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				m.foldRow(r)
			}
		}
		t.parts = nil
	}
	results := make([]sqltypes.Row, 0, len(m.order))
	for _, g := range m.order {
		results = append(results, g.finalize(aggs))
	}
	return results, nil
}

// mergeGroup folds one worker group's partial states into the merge table.
func (t *aggTable) mergeGroup(src *aggGroup) {
	if t.scalarGroup != nil {
		t.scalarGroup.merge(t.aggs, src)
		return
	}
	key := string(exec.EncodeKey(nil, src.keyVals))
	grp := t.groups[key]
	if grp == nil {
		grp = newAggGroup(t.aggs, src.keyVals)
		t.groups[key] = grp
		t.order = append(t.order, grp)
	}
	grp.merge(t.aggs, src)
}

// foldRow folds one materialized (spill-replayed) row into the table through
// the generic path, without grant accounting: by merge time the workers'
// grants are already charged, and the merged group set is bounded by the
// union of what the workers held.
func (t *aggTable) foldRow(r sqltypes.Row) {
	if t.scalarGroup != nil {
		t.scalarGroup.add(t.aggs, r)
		return
	}
	for c, g := range t.groupBy {
		t.keyVals[c] = r[g]
	}
	key := string(exec.EncodeKey(nil, t.keyVals))
	grp := t.groups[key]
	if grp == nil {
		grp = newAggGroup(t.aggs, t.keyVals.Clone())
		t.groups[key] = grp
		t.order = append(t.order, grp)
	}
	grp.add(t.aggs, r)
}

// --- Partitioned parallel hash join runtime ---

// exchangeHashNull is the hash contribution of a NULL key: NULLs never match,
// but outer joins must still route the row somewhere deterministic.
const exchangeHashNull = 0x9e3779b97f4a7c15

// exchangeMix folds one canonical 64-bit value into an FNV-1a accumulator,
// byte by byte, matching hashString's dispersion.
func exchangeMix(acc, v uint64) uint64 {
	for s := uint(0); s < 64; s += 8 {
		acc = (acc ^ ((v >> s) & 0xff)) * 1099511628211
	}
	return acc
}

// rowPartitioner returns a row→partition map over the given key columns. The
// hash must agree between the build and probe sides for equal key values
// regardless of physical representation, mirroring exec.EncodeKey's
// canonical forms: dict-coded strings hash their decoded value (memoized per
// dictionary code — one decode per distinct value, not per row), and
// integral floats hash like ints. NULL keys land in partition 0, like the
// grace-hash partitioner.
func rowPartitioner(vecs []*vector.Vector, keys []int, nParts int) func(i int) int {
	hashers := make([]func(i int) (uint64, bool), len(keys))
	for ki, c := range keys {
		v := vecs[c]
		switch {
		case v.Typ == sqltypes.String && v.IsCoded():
			memo := make([]uint64, len(v.DictVals))
			have := make([]bool, len(v.DictVals))
			vals := v.DictVals
			hashers[ki] = func(i int) (uint64, bool) {
				if v.IsNull(i) {
					return 0, true
				}
				code := v.Codes[i]
				if !have[code] {
					memo[code] = hashString(vals[code])
					have[code] = true
				}
				return memo[code], false
			}
		case v.Typ == sqltypes.String:
			hashers[ki] = func(i int) (uint64, bool) {
				if v.IsNull(i) {
					return 0, true
				}
				return hashString(v.StrAt(i)), false
			}
		case v.Typ == sqltypes.Float64:
			hashers[ki] = func(i int) (uint64, bool) {
				if v.IsNull(i) {
					return 0, true
				}
				f := v.F64[i]
				if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
					return uint64(int64(f)), false
				}
				return math.Float64bits(f), false
			}
		default: // Int64, Date, Bool
			hashers[ki] = func(i int) (uint64, bool) {
				if v.IsNull(i) {
					return 0, true
				}
				return uint64(v.I64[i]), false
			}
		}
	}
	return func(i int) int {
		var acc uint64 = 14695981039346656037
		for _, h := range hashers {
			hv, null := h(i)
			if null {
				return 0
			}
			acc = exchangeMix(acc, hv)
		}
		// High bits: the low bits feed the in-memory hash tables and the
		// grace-hash spill partitioner uses >>57.
		return int(acc>>33) % nParts
	}
}

// parallelJoin is the runtime state of a partitioned parallel probe phase:
// splitter goroutines pull probe batches from the worker pipes and route
// per-partition sub-batches to prober goroutines (one per partition, each
// owning a private joinCore); probers emit joined batches into the gather
// channel that HashJoin.Next drains.
type parallelJoin struct {
	out    chan *vector.Batch
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

func (pj *parallelJoin) fail(err error) {
	pj.once.Do(func() {
		pj.err = err
		pj.cancel()
	})
}

// shutdown cancels the workers and drains the gather channel until the
// closer goroutine has closed it, so no goroutine leaks past Close.
func (pj *parallelJoin) shutdown() {
	pj.cancel()
	for range pj.out {
	}
}

// startParallel builds P private partition cores from the in-memory build
// side and launches the probe exchange. The build must have fit in its grant
// (overflow takes the serial grace-hash path instead).
func (h *HashJoin) startParallel(ctx context.Context, build *buildSide) error {
	nParts := h.Parallel

	// Partition build rows by key hash; each partition gets a private core.
	part := rowPartitioner(build.cols, h.BuildKeys, nParts)
	idxs := make([][]int32, nParts)
	for i := 0; i < build.len; i++ {
		p := part(i)
		idxs[p] = append(idxs[p], int32(i))
	}
	bs := h.Build.Schema()
	cores := make([]*joinCore, nParts)
	coreErrs := make([]error, nParts)
	var bwg sync.WaitGroup
	for p := 0; p < nParts; p++ {
		bwg.Add(1)
		go func(p int) {
			defer bwg.Done()
			defer func() {
				if e := qerr.FromPanic("parallel-join-build", qerr.NoGroup, recover()); e != nil {
					coreErrs[p] = e
				}
			}()
			sub := vector.NewBatch(bs, len(idxs[p]))
			sub.SetNumRows(len(idxs[p]))
			for ci := range sub.Vecs {
				gatherVec(sub.Vecs[ci], build.cols[ci], idxs[p])
			}
			cores[p] = newJoinCore(h, &buildSide{cols: sub.Vecs, len: len(idxs[p])})
		}(p)
	}
	bwg.Wait()
	for _, err := range coreErrs {
		if err != nil {
			return err
		}
	}

	// Probe exchange: the planner may have provided replicated per-worker
	// pipes above a shared source; otherwise the workers read the probe
	// operator directly through one.
	shared := h.ProbeExchange
	pipes := h.ProbePipes
	if shared == nil {
		shared = NewSharedSource(h.Probe)
		pipes = make([]Operator, nParts)
		for w := range pipes {
			pipes[w] = shared.Worker()
		}
	}
	if err := shared.Base().Open(ctx); err != nil {
		return err
	}
	shared.Reset()

	wctx, cancel := context.WithCancel(ctx)
	pj := &parallelJoin{out: make(chan *vector.Batch, 2*nParts), cancel: cancel}
	h.par = pj

	route := make([]chan *vector.Batch, nParts)
	for p := range route {
		route[p] = make(chan *vector.Batch, 2)
	}

	var swg sync.WaitGroup
	for w := range pipes {
		swg.Add(1)
		pj.wg.Add(1)
		go func(w int) {
			defer pj.wg.Done()
			defer swg.Done()
			defer func() {
				if e := qerr.FromPanic("parallel-join-split", qerr.NoGroup, recover()); e != nil {
					pj.fail(e)
				}
			}()
			h.splitProbe(wctx, pj, pipes[w], route)
		}(w)
	}
	// Routing channels close once every splitter is done, releasing the
	// probers to emit their unmatched build rows.
	go func() {
		swg.Wait()
		for _, c := range route {
			close(c)
		}
	}()
	for p := 0; p < nParts; p++ {
		pj.wg.Add(1)
		go func(p int) {
			defer pj.wg.Done()
			defer func() {
				if e := qerr.FromPanic("parallel-join-probe", qerr.NoGroup, recover()); e != nil {
					pj.fail(e)
				}
			}()
			h.probePartition(wctx, pj, cores[p], route[p])
		}(p)
	}
	// Closer: after every worker exits, the gather channel closes and Next
	// observes end-of-stream (or pj.err).
	go func() {
		pj.wg.Wait()
		cancel()
		close(pj.out)
	}()
	return nil
}

// splitProbe pulls batches from one worker pipe and routes per-partition
// sub-batches. Rows are copied (gatherVec, codes stay codes) so partitions
// never share vector storage with each other or the source batch.
func (h *HashJoin) splitProbe(ctx context.Context, pj *parallelJoin, pipe Operator, route []chan *vector.Batch) {
	mExchangeWorkers.Inc()
	start := time.Now()
	defer func() { mExchangeBusy.Observe(time.Since(start).Seconds()) }()
	if err := pipe.Open(ctx); err != nil {
		pj.fail(err)
		return
	}
	defer pipe.Close()
	nParts := len(route)
	schema := pipe.Schema()
	var pbuf []int32
	for {
		if ctx.Err() != nil {
			return
		}
		b, err := pipe.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				pj.fail(err)
			}
			return
		}
		if b == nil {
			return
		}
		b.Compact()
		n := b.NumRows()
		if n == 0 {
			continue
		}
		part := rowPartitioner(b.Vecs, h.ProbeKeys, nParts)
		if cap(pbuf) < n {
			pbuf = make([]int32, n)
		}
		pbuf = pbuf[:n]
		uniform := true
		for i := 0; i < n; i++ {
			pbuf[i] = int32(part(i))
			uniform = uniform && pbuf[i] == pbuf[0]
		}
		if uniform {
			// Whole batch owned by one partition: forward it without copying.
			select {
			case route[pbuf[0]] <- b:
			case <-ctx.Done():
				return
			}
			continue
		}
		lists := make([][]int32, nParts)
		for i := 0; i < n; i++ {
			lists[pbuf[i]] = append(lists[pbuf[i]], int32(i))
		}
		for p, l := range lists {
			if len(l) == 0 {
				continue
			}
			sub := vector.NewBatch(schema, len(l))
			sub.SetNumRows(len(l))
			for ci := range sub.Vecs {
				gatherVec(sub.Vecs[ci], b.Vecs[ci], l)
			}
			select {
			case route[p] <- sub:
			case <-ctx.Done():
				return
			}
		}
	}
}

// probePartition joins routed probe batches against one partition core, then
// emits the partition's unmatched build rows (right/full outer).
func (h *HashJoin) probePartition(ctx context.Context, pj *parallelJoin, core *joinCore, in <-chan *vector.Batch) {
	mExchangeWorkers.Inc()
	start := time.Now()
	defer func() { mExchangeBusy.Observe(time.Since(start).Seconds()) }()
	for b := range in {
		if ctx.Err() != nil {
			return
		}
		for _, out := range core.probeBatch(b) {
			select {
			case pj.out <- out:
			case <-ctx.Done():
				return
			}
		}
	}
	if ctx.Err() != nil {
		return
	}
	for _, out := range core.unmatchedBuild() {
		select {
		case pj.out <- out:
		case <-ctx.Done():
			return
		}
	}
}

// nextParallel is HashJoin.Next in partitioned parallel mode: drain the
// gather channel until the closer reports completion or failure.
func (h *HashJoin) nextParallel() (*vector.Batch, error) {
	select {
	case b, ok := <-h.par.out:
		if !ok {
			if h.par.err != nil {
				return nil, h.par.err
			}
			return nil, h.ctx.Err()
		}
		return b, nil
	case <-h.ctx.Done():
		return nil, h.ctx.Err()
	}
}
