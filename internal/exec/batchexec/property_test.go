package batchexec

import (
	"math/rand"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/exec/rowexec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// Property: for random range predicates, a scan with encoded-domain pushdown
// produces exactly the rows a residual-only scan produces — pushdown is a
// pure optimization, never a semantic change.
func TestQuickPushdownEquivalence(t *testing.T) {
	rows := makeRows(4000, 99)
	tb := loadTable(t, rows)
	rng := rand.New(rand.NewSource(123))

	for trial := 0; trial < 40; trial++ {
		// Random closed range on a random pushable column.
		col := []int{0, 1, 4}[rng.Intn(3)] // id, grp, d — integer-family
		typ := testSchema().Cols[col].Typ
		var lo, hi sqltypes.Value
		switch col {
		case 0:
			a, b := int64(rng.Intn(4000)), int64(rng.Intn(4000))
			if a > b {
				a, b = b, a
			}
			lo, hi = sqltypes.Value{Typ: typ, I: a}, sqltypes.Value{Typ: typ, I: b}
		case 1:
			a, b := int64(rng.Intn(50)), int64(rng.Intn(50))
			if a > b {
				a, b = b, a
			}
			lo, hi = sqltypes.Value{Typ: typ, I: a}, sqltypes.Value{Typ: typ, I: b}
		default:
			a, b := int64(9000+rng.Intn(1000)), int64(9000+rng.Intn(1000))
			if a > b {
				a, b = b, a
			}
			lo, hi = sqltypes.Value{Typ: typ, I: a}, sqltypes.Value{Typ: typ, I: b}
		}
		// Unbounded sides sometimes.
		if rng.Intn(4) == 0 {
			lo = sqltypes.NewNull(typ)
		}
		if rng.Intn(4) == 0 {
			hi = sqltypes.NewNull(typ)
		}

		cols := []int{0, col}
		if col == 0 {
			cols = []int{0}
		}

		pushed := NewScan(tb.Snapshot(), cols)
		pushed.Pushdowns = []Pushdown{{Col: col, Lo: lo, Hi: hi}}

		// Residual-only equivalent (bound to scan output positions).
		outPos := 0
		for i, c := range cols {
			if c == col {
				outPos = i
			}
		}
		ref := expr.NewColRef(outPos, "c", typ)
		var conj []expr.Expr
		if !lo.Null {
			conj = append(conj, expr.NewCmp(expr.GE, ref, expr.NewConst(lo)))
		}
		if !hi.Null {
			conj = append(conj, expr.NewCmp(expr.LE, ref, expr.NewConst(hi)))
		}
		plain := NewScan(tb.Snapshot(), cols)
		if len(conj) == 1 {
			plain.Residual = conj[0]
		} else if len(conj) == 2 {
			plain.Residual = expr.NewAnd(conj...)
		}

		a := gotRows(t, pushed)
		b := gotRows(t, plain)
		if !mapsEqual(a, b) {
			t.Fatalf("trial %d: pushdown [%v..%v] on col %d diverged: %d vs %d distinct keys",
				trial, lo, hi, col, len(a), len(b))
		}
	}
}

// Property: string equality pushdown (dictionary code lookup) matches the
// residual evaluation, including values absent from the dictionary.
func TestQuickStringPushdownEquivalence(t *testing.T) {
	rows := makeRows(3000, 101)
	tb := loadTable(t, rows)
	candidates := append(append([]string{}, regions...), "atlantis", "", "n")
	for _, s := range candidates {
		v := sqltypes.NewString(s)
		pushed := NewScan(tb.Snapshot(), []int{0, 3})
		pushed.Pushdowns = []Pushdown{{Col: 3, Lo: v, Hi: v}}
		plain := NewScan(tb.Snapshot(), []int{0, 3})
		plain.Residual = expr.NewCmp(expr.EQ, expr.NewColRef(1, "region", sqltypes.String), expr.NewConst(v))
		if !mapsEqual(gotRows(t, pushed), gotRows(t, plain)) {
			t.Fatalf("string pushdown diverged for %q", s)
		}
	}
}

// Property: the scan's delete-bitmap masking plus pushdowns never resurrect
// a deleted row and never lose a live one, under random delete patterns.
func TestQuickDeletesUnderPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := makeRows(2000, 103)
	tb := loadTable(t, rows) // loadTable already deletes id%20==13
	// Random extra deletes.
	deleted := map[int64]bool{}
	for _, r := range rows {
		if r[0].I%20 == 13 {
			deleted[r[0].I] = true
		}
	}
	tb.DeleteWhere(func(r sqltypes.Row) bool {
		if rng.Intn(10) == 0 && !deleted[r[0].I] {
			deleted[r[0].I] = true
			return true
		}
		return false
	})

	scan := NewScan(tb.Snapshot(), []int{0})
	scan.Pushdowns = []Pushdown{{Col: 0, Lo: sqltypes.NewInt(100), Hi: sqltypes.NewInt(1500)}}
	seen := map[int64]bool{}
	rowsOut, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rowsOut {
		id := r[0].I
		if deleted[id] {
			t.Fatalf("deleted row %d resurrected", id)
		}
		if id < 100 || id > 1500 {
			t.Fatalf("out-of-range row %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate row %d", id)
		}
		seen[id] = true
	}
	want := 0
	for _, r := range rows {
		if !deleted[r[0].I] && r[0].I >= 100 && r[0].I <= 1500 {
			want++
		}
	}
	if len(seen) != want {
		t.Fatalf("rows = %d, want %d", len(seen), want)
	}
}

// Property: dictionary-predicate pushdown (LIKE, IN, <>) matches residual
// evaluation exactly, including NULL handling.
func TestQuickDictPredEquivalence(t *testing.T) {
	rows := makeRows(3000, 107)
	tb := loadTable(t, rows)
	preds := []expr.Expr{
		expr.NewLike(expr.NewColRef(0, "region", sqltypes.String), "%th", false),
		expr.NewLike(expr.NewColRef(0, "region", sqltypes.String), "n%", true),
		expr.NewInList(expr.NewColRef(0, "region", sqltypes.String),
			[]sqltypes.Value{sqltypes.NewString("east"), sqltypes.NewString("west")}),
		expr.NewCmp(expr.NE, expr.NewColRef(0, "region", sqltypes.String), expr.NewConst(sqltypes.NewString("south"))),
		expr.NewOr(
			expr.NewCmp(expr.EQ, expr.NewColRef(0, "region", sqltypes.String), expr.NewConst(sqltypes.NewString("north"))),
			expr.NewLike(expr.NewColRef(0, "region", sqltypes.String), "%st", false)),
	}
	for pi, pred := range preds {
		pushed := NewScan(tb.Snapshot(), []int{0, 3})
		pushed.DictPreds = []DictPred{{Col: 3, Pred: expr.Remap(pred, map[int]int{0: 0})}}
		plain := NewScan(tb.Snapshot(), []int{0, 3})
		plain.Residual = expr.Remap(pred, map[int]int{0: 1})
		a, b := gotRows(t, pushed), gotRows(t, plain)
		if !mapsEqual(a, b) {
			t.Fatalf("pred %d diverged: %d vs %d keys", pi, len(a), len(b))
		}
		// The dict path must have filtered before materialization.
		if pushed.Stats.RowsAfterRange >= pushed.Stats.RowsConsidered && len(a) < 2000 {
			t.Fatalf("pred %d: no encoded-domain narrowing", pi)
		}
	}
}

// --- Late-materialization parity: batch mode (dict codes end to end) vs the
// row engine (plain strings) must agree exactly on string-heavy plans. ---

func strSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "cat", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "val", Typ: sqltypes.Int64},
	)
}

// makeStrRows produces rows whose string column draws from cats with ~1/12
// NULLs mixed in.
func makeStrRows(n int, seed int64, cats []string) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		cat := sqltypes.NewString(cats[rng.Intn(len(cats))])
		if rng.Intn(12) == 0 {
			cat = sqltypes.NewNull(sqltypes.String)
		}
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i)), cat, sqltypes.NewInt(int64(rng.Intn(1000)))}
	}
	return rows
}

// loadStrTable bulk-loads 90% into small compressed row groups (several
// dictionary-coded segments) and trickles the rest through the delta store, so
// batch scans emit a mix of coded and materialized string vectors.
func loadStrTable(t *testing.T, rows []sqltypes.Row) *table.Table {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	opts := table.Options{RowGroupSize: 400, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(store, "s", strSchema(), opts)
	split := len(rows) * 9 / 10
	if err := tb.BulkLoad(rows[:split]); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertMany(rows[split:]); err != nil {
		t.Fatal(err)
	}
	return tb
}

func rowModeRows(t *testing.T, op rowexec.Operator) map[string]int {
	t.Helper()
	rows, err := rowexec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, r := range rows {
		key := ""
		for _, v := range r {
			key += v.String() + "|"
		}
		out[key]++
	}
	return out
}

var catAggs = []exec.AggSpec{
	{Kind: exec.CountStar, Name: "n"},
	{Kind: exec.Sum, Arg: expr.NewColRef(1, "val", sqltypes.Int64), Name: "s"},
	{Kind: exec.Min, Arg: expr.NewColRef(1, "val", sqltypes.Int64), Name: "lo"},
}

// Property: GROUP BY on a string column — grouping on raw dictionary codes
// with materialized delta rows mixed in — matches the row engine, including
// the NULL group.
func TestQuickStringGroupByParity(t *testing.T) {
	cats := []string{"north", "south", "east", "west", "axis", "blade", "crest", "dune", "ember", "frost"}
	tb := loadStrTable(t, makeStrRows(5000, 211, cats))

	bScan := NewScan(tb.Snapshot(), []int{1, 2})
	bScan.Stats = &ScanStats{}
	batch := gotRows(t, NewHashAgg(bScan, []int{0}, []string{"cat"}, catAggs))

	rScan := rowexec.NewScan(tb.Snapshot(), nil, []int{1, 2})
	rAgg := rowexec.NewHashAggregate(rScan, []expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, []string{"cat"}, catAggs)
	want := rowModeRows(t, rAgg)

	if !mapsEqual(batch, want) {
		t.Fatalf("string GROUP BY diverged: batch %d keys, row %d keys", len(batch), len(want))
	}
	if bScan.Stats.StringColsCoded == 0 {
		t.Fatal("scan emitted no coded string vectors — late materialization inactive")
	}
}

// Property: DISTINCT over a string column (grouping with no aggregates)
// matches the row engine.
func TestQuickStringDistinctParity(t *testing.T) {
	cats := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	tb := loadStrTable(t, makeStrRows(3000, 223, cats))

	batch := gotRows(t, NewHashAgg(NewScan(tb.Snapshot(), []int{1}), []int{0}, []string{"cat"}, nil))
	rScan := rowexec.NewScan(tb.Snapshot(), nil, []int{1})
	want := rowModeRows(t, rowexec.NewHashAggregate(rScan, []expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, []string{"cat"}, nil))
	if !mapsEqual(batch, want) {
		t.Fatalf("string DISTINCT diverged: batch %d keys, row %d keys", len(batch), len(want))
	}
}

// Property: joining on a string key matches the row engine for every join
// type. The two tables are loaded separately, so their dictionaries are
// distinct objects: the probe side crosses dictionaries (the memoized
// code-translation path), and delta rows exercise the materialized bridges.
func TestQuickStringJoinParity(t *testing.T) {
	probeCats := []string{"north", "south", "east", "west", "inland", "offshore"}
	buildCats := []string{"east", "west", "inland", "highland", "lowland"}
	ptb := loadStrTable(t, makeStrRows(1200, 307, probeCats))
	btb := loadStrTable(t, makeStrRows(400, 311, buildCats))

	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter, exec.RightOuter, exec.FullOuter, exec.LeftSemi, exec.LeftAnti} {
		bj, err := NewHashJoin(
			NewScan(ptb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
			[]int{1}, []int{0}, jt, nil)
		if err != nil {
			t.Fatal(err)
		}
		batch := gotRows(t, bj)

		rj, err := rowexec.NewHashJoin(
			rowexec.NewScan(ptb.Snapshot(), nil, []int{0, 1}), rowexec.NewScan(btb.Snapshot(), nil, []int{1, 2}),
			[]expr.Expr{expr.NewColRef(1, "cat", sqltypes.String)},
			[]expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, jt, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := rowModeRows(t, rj)

		if !mapsEqual(batch, want) {
			t.Fatalf("%v string join diverged: batch %d keys, row %d keys", jt, len(batch), len(want))
		}
	}
}

// Property: a same-table self join on the string key (both sides share one
// dictionary — the pure code-space hot path) matches the row engine.
func TestQuickStringSelfJoinParity(t *testing.T) {
	cats := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	tb := loadStrTable(t, makeStrRows(700, 401, cats))

	bj, err := NewHashJoin(
		NewScan(tb.Snapshot(), []int{0, 1}), NewScan(tb.Snapshot(), []int{1}),
		[]int{1}, []int{0}, exec.Inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := gotRows(t, bj)

	rj, err := rowexec.NewHashJoin(
		rowexec.NewScan(tb.Snapshot(), nil, []int{0, 1}), rowexec.NewScan(tb.Snapshot(), nil, []int{1}),
		[]expr.Expr{expr.NewColRef(1, "cat", sqltypes.String)},
		[]expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, exec.Inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := rowModeRows(t, rj); !mapsEqual(batch, want) {
		t.Fatalf("self join diverged: batch %d keys, row %d keys", len(batch), len(want))
	}
}

// Property: string GROUP BY and string join stay correct when forced through
// the spill path (tiny memory grant), which round-trips dictionary codes
// through spill files.
func TestQuickStringSpillParity(t *testing.T) {
	cats := []string{"red", "orange", "yellow", "green", "blue", "indigo", "violet"}
	tb := loadStrTable(t, makeStrRows(2000, 503, cats))

	agg := NewHashAgg(NewScan(tb.Snapshot(), []int{1, 2}), []int{0}, []string{"cat"}, catAggs)
	agg.Tracker = NewTracker(1 << 10)
	agg.SpillStore = storage.NewStore(0)
	batch := gotRows(t, agg)
	if agg.Tracker.Spills() == 0 {
		t.Fatal("aggregation did not spill under a 1 KiB grant")
	}
	rScan := rowexec.NewScan(tb.Snapshot(), nil, []int{1, 2})
	want := rowModeRows(t, rowexec.NewHashAggregate(rScan, []expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, []string{"cat"}, catAggs))
	if !mapsEqual(batch, want) {
		t.Fatalf("spilled string GROUP BY diverged: batch %d keys, row %d keys", len(batch), len(want))
	}

	btb := loadStrTable(t, makeStrRows(500, 509, cats))
	bj, err := NewHashJoin(
		NewScan(tb.Snapshot(), []int{0, 1}), NewScan(btb.Snapshot(), []int{1, 2}),
		[]int{1}, []int{0}, exec.FullOuter, nil)
	if err != nil {
		t.Fatal(err)
	}
	bj.Tracker = NewTracker(1 << 10)
	bj.SpillStore = storage.NewStore(0)
	jbatch := gotRows(t, bj)
	if bj.Tracker.Spills() == 0 {
		t.Fatal("join did not spill under a 1 KiB grant")
	}
	rj, err := rowexec.NewHashJoin(
		rowexec.NewScan(tb.Snapshot(), nil, []int{0, 1}), rowexec.NewScan(btb.Snapshot(), nil, []int{1, 2}),
		[]expr.Expr{expr.NewColRef(1, "cat", sqltypes.String)},
		[]expr.Expr{expr.NewColRef(0, "cat", sqltypes.String)}, exec.FullOuter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jwant := rowModeRows(t, rj); !mapsEqual(jbatch, jwant) {
		t.Fatalf("spilled string join diverged: batch %d keys, row %d keys", len(jbatch), len(jwant))
	}
}
