package batchexec

import (
	"math/rand"
	"testing"

	"apollo/internal/expr"
	"apollo/internal/sqltypes"
)

// Property: for random range predicates, a scan with encoded-domain pushdown
// produces exactly the rows a residual-only scan produces — pushdown is a
// pure optimization, never a semantic change.
func TestQuickPushdownEquivalence(t *testing.T) {
	rows := makeRows(4000, 99)
	tb := loadTable(t, rows)
	rng := rand.New(rand.NewSource(123))

	for trial := 0; trial < 40; trial++ {
		// Random closed range on a random pushable column.
		col := []int{0, 1, 4}[rng.Intn(3)] // id, grp, d — integer-family
		typ := testSchema().Cols[col].Typ
		var lo, hi sqltypes.Value
		switch col {
		case 0:
			a, b := int64(rng.Intn(4000)), int64(rng.Intn(4000))
			if a > b {
				a, b = b, a
			}
			lo, hi = sqltypes.Value{Typ: typ, I: a}, sqltypes.Value{Typ: typ, I: b}
		case 1:
			a, b := int64(rng.Intn(50)), int64(rng.Intn(50))
			if a > b {
				a, b = b, a
			}
			lo, hi = sqltypes.Value{Typ: typ, I: a}, sqltypes.Value{Typ: typ, I: b}
		default:
			a, b := int64(9000+rng.Intn(1000)), int64(9000+rng.Intn(1000))
			if a > b {
				a, b = b, a
			}
			lo, hi = sqltypes.Value{Typ: typ, I: a}, sqltypes.Value{Typ: typ, I: b}
		}
		// Unbounded sides sometimes.
		if rng.Intn(4) == 0 {
			lo = sqltypes.NewNull(typ)
		}
		if rng.Intn(4) == 0 {
			hi = sqltypes.NewNull(typ)
		}

		cols := []int{0, col}
		if col == 0 {
			cols = []int{0}
		}

		pushed := NewScan(tb.Snapshot(), cols)
		pushed.Pushdowns = []Pushdown{{Col: col, Lo: lo, Hi: hi}}

		// Residual-only equivalent (bound to scan output positions).
		outPos := 0
		for i, c := range cols {
			if c == col {
				outPos = i
			}
		}
		ref := expr.NewColRef(outPos, "c", typ)
		var conj []expr.Expr
		if !lo.Null {
			conj = append(conj, expr.NewCmp(expr.GE, ref, expr.NewConst(lo)))
		}
		if !hi.Null {
			conj = append(conj, expr.NewCmp(expr.LE, ref, expr.NewConst(hi)))
		}
		plain := NewScan(tb.Snapshot(), cols)
		if len(conj) == 1 {
			plain.Residual = conj[0]
		} else if len(conj) == 2 {
			plain.Residual = expr.NewAnd(conj...)
		}

		a := gotRows(t, pushed)
		b := gotRows(t, plain)
		if !mapsEqual(a, b) {
			t.Fatalf("trial %d: pushdown [%v..%v] on col %d diverged: %d vs %d distinct keys",
				trial, lo, hi, col, len(a), len(b))
		}
	}
}

// Property: string equality pushdown (dictionary code lookup) matches the
// residual evaluation, including values absent from the dictionary.
func TestQuickStringPushdownEquivalence(t *testing.T) {
	rows := makeRows(3000, 101)
	tb := loadTable(t, rows)
	candidates := append(append([]string{}, regions...), "atlantis", "", "n")
	for _, s := range candidates {
		v := sqltypes.NewString(s)
		pushed := NewScan(tb.Snapshot(), []int{0, 3})
		pushed.Pushdowns = []Pushdown{{Col: 3, Lo: v, Hi: v}}
		plain := NewScan(tb.Snapshot(), []int{0, 3})
		plain.Residual = expr.NewCmp(expr.EQ, expr.NewColRef(1, "region", sqltypes.String), expr.NewConst(v))
		if !mapsEqual(gotRows(t, pushed), gotRows(t, plain)) {
			t.Fatalf("string pushdown diverged for %q", s)
		}
	}
}

// Property: the scan's delete-bitmap masking plus pushdowns never resurrect
// a deleted row and never lose a live one, under random delete patterns.
func TestQuickDeletesUnderPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := makeRows(2000, 103)
	tb := loadTable(t, rows) // loadTable already deletes id%20==13
	// Random extra deletes.
	deleted := map[int64]bool{}
	for _, r := range rows {
		if r[0].I%20 == 13 {
			deleted[r[0].I] = true
		}
	}
	tb.DeleteWhere(func(r sqltypes.Row) bool {
		if rng.Intn(10) == 0 && !deleted[r[0].I] {
			deleted[r[0].I] = true
			return true
		}
		return false
	})

	scan := NewScan(tb.Snapshot(), []int{0})
	scan.Pushdowns = []Pushdown{{Col: 0, Lo: sqltypes.NewInt(100), Hi: sqltypes.NewInt(1500)}}
	seen := map[int64]bool{}
	rowsOut, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rowsOut {
		id := r[0].I
		if deleted[id] {
			t.Fatalf("deleted row %d resurrected", id)
		}
		if id < 100 || id > 1500 {
			t.Fatalf("out-of-range row %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate row %d", id)
		}
		seen[id] = true
	}
	want := 0
	for _, r := range rows {
		if !deleted[r[0].I] && r[0].I >= 100 && r[0].I <= 1500 {
			want++
		}
	}
	if len(seen) != want {
		t.Fatalf("rows = %d, want %d", len(seen), want)
	}
}

// Property: dictionary-predicate pushdown (LIKE, IN, <>) matches residual
// evaluation exactly, including NULL handling.
func TestQuickDictPredEquivalence(t *testing.T) {
	rows := makeRows(3000, 107)
	tb := loadTable(t, rows)
	preds := []expr.Expr{
		expr.NewLike(expr.NewColRef(0, "region", sqltypes.String), "%th", false),
		expr.NewLike(expr.NewColRef(0, "region", sqltypes.String), "n%", true),
		expr.NewInList(expr.NewColRef(0, "region", sqltypes.String),
			[]sqltypes.Value{sqltypes.NewString("east"), sqltypes.NewString("west")}),
		expr.NewCmp(expr.NE, expr.NewColRef(0, "region", sqltypes.String), expr.NewConst(sqltypes.NewString("south"))),
		expr.NewOr(
			expr.NewCmp(expr.EQ, expr.NewColRef(0, "region", sqltypes.String), expr.NewConst(sqltypes.NewString("north"))),
			expr.NewLike(expr.NewColRef(0, "region", sqltypes.String), "%st", false)),
	}
	for pi, pred := range preds {
		pushed := NewScan(tb.Snapshot(), []int{0, 3})
		pushed.DictPreds = []DictPred{{Col: 3, Pred: expr.Remap(pred, map[int]int{0: 0})}}
		plain := NewScan(tb.Snapshot(), []int{0, 3})
		plain.Residual = expr.Remap(pred, map[int]int{0: 1})
		a, b := gotRows(t, pushed), gotRows(t, plain)
		if !mapsEqual(a, b) {
			t.Fatalf("pred %d diverged: %d vs %d keys", pi, len(a), len(b))
		}
		// The dict path must have filtered before materialization.
		if pushed.Stats.RowsAfterRange >= pushed.Stats.RowsConsidered && len(a) < 2000 {
			t.Fatalf("pred %d: no encoded-domain narrowing", pi)
		}
	}
}
