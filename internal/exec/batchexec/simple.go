package batchexec

import (
	"container/heap"
	"context"
	"sort"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/vector"
)

// Filter narrows each batch's selection by a predicate. Data does not move;
// only the qualifying-rows vector shrinks (§5).
type Filter struct {
	In   Operator
	Pred expr.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() *sqltypes.Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx context.Context) error { return f.In.Open(ctx) }

// Next implements Operator.
func (f *Filter) Next() (*vector.Batch, error) {
	for {
		b, err := f.In.Next()
		if err != nil || b == nil {
			return b, err
		}
		expr.ApplyFilter(f.Pred, b)
		if b.Len() > 0 {
			return b, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.In.Close() }

// Project computes output expressions over each batch. Input batches are
// compacted first so expressions evaluate only qualifying rows.
type Project struct {
	In     Operator
	Exprs  []expr.Expr
	Names  []string
	schema *sqltypes.Schema
}

// NewProject builds a vectorized projection.
func NewProject(in Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]sqltypes.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = sqltypes.Column{Name: names[i], Typ: e.Type(), Nullable: true}
	}
	return &Project{In: in, Exprs: exprs, Names: names, schema: sqltypes.NewSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *sqltypes.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open(ctx context.Context) error { return p.In.Open(ctx) }

// Next implements Operator.
func (p *Project) Next() (*vector.Batch, error) {
	b, err := p.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	b.Compact()
	vecs := make([]*vector.Vector, len(p.Exprs))
	for i, e := range p.Exprs {
		// Column references pass through by sharing the vector; other
		// expressions evaluate into fresh vectors.
		if cr, ok := e.(*expr.ColRef); ok {
			vecs[i] = b.Vecs[cr.Idx]
			continue
		}
		v := vector.NewVector(e.Type(), b.NumRows())
		e.EvalVec(b, v)
		vecs[i] = v
	}
	return batchWithRows(p.schema, vecs, b.NumRows()), nil
}

// batchWithRows wraps existing vectors into a batch of n rows without
// touching their null bitmaps.
func batchWithRows(schema *sqltypes.Schema, vecs []*vector.Vector, n int) *vector.Batch {
	b := &vector.Batch{Schema: schema, Vecs: vecs}
	b.SetRowCountNoReset(n)
	return b
}

// Close implements Operator.
func (p *Project) Close() error { return p.In.Close() }

// Limit passes through at most N qualifying rows after skipping Offset.
type Limit struct {
	In     Operator
	Offset int
	N      int
	seen   int
	sent   int
}

// Schema implements Operator.
func (l *Limit) Schema() *sqltypes.Schema { return l.In.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx context.Context) error { l.seen, l.sent = 0, 0; return l.In.Open(ctx) }

// Next implements Operator.
func (l *Limit) Next() (*vector.Batch, error) {
	for {
		if l.N >= 0 && l.sent >= l.N {
			return nil, nil
		}
		b, err := l.In.Next()
		if err != nil || b == nil {
			return b, err
		}
		// Trim the selection to honor offset/limit.
		var sel []int
		for i := 0; i < b.Len(); i++ {
			l.seen++
			if l.seen <= l.Offset {
				continue
			}
			if l.N >= 0 && l.sent >= l.N {
				break
			}
			l.sent++
			sel = append(sel, b.RowIdx(i))
		}
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		return b, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error { return l.In.Close() }

// UnionAll concatenates batch streams with identical schemas — one of the
// operators the paper calls out as newly supported in batch mode.
type UnionAll struct {
	Ins []Operator
	i   int
}

// Schema implements Operator.
func (u *UnionAll) Schema() *sqltypes.Schema { return u.Ins[0].Schema() }

// Open implements Operator.
func (u *UnionAll) Open(ctx context.Context) error {
	u.i = 0
	for _, in := range u.Ins {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next() (*vector.Batch, error) {
	for u.i < len(u.Ins) {
		b, err := u.Ins[u.i].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.i++
	}
	return nil, nil
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	var first error
	for _, in := range u.Ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Materialize is an explicit late-materialization boundary: it compacts each
// batch (so rows disqualified upstream are never decoded) and decodes every
// dict-coded string vector into per-row strings. The planner inserts it in
// front of operators that consume whole rows (Sort, TopN) so they pay one
// vectorized decode instead of a per-row branch; operators that understand
// codes never see one.
type Materialize struct {
	In Operator
}

// Schema implements Operator.
func (m *Materialize) Schema() *sqltypes.Schema { return m.In.Schema() }

// Open implements Operator.
func (m *Materialize) Open(ctx context.Context) error { return m.In.Open(ctx) }

// Next implements Operator.
func (m *Materialize) Next() (*vector.Batch, error) {
	b, err := m.In.Next()
	if err != nil || b == nil {
		return b, err
	}
	b.Compact()
	b.MaterializeAll()
	return b, nil
}

// Close implements Operator.
func (m *Materialize) Close() error { return m.In.Close() }

// Sort materializes, orders, and re-batches its input.
type Sort struct {
	In   Operator
	Keys []exec.SortKey
	out  *Values
}

// Schema implements Operator.
func (s *Sort) Schema() *sqltypes.Schema { return s.In.Schema() }

// Open implements Operator.
func (s *Sort) Open(ctx context.Context) error {
	rows, err := DrainContext(ctx, s.In)
	if err != nil {
		return err
	}
	sortRows(rows, s.Keys)
	s.out = &Values{Rows: rows, Sch: s.In.Schema()}
	return s.out.Open(ctx)
}

func sortRows(rows []sqltypes.Row, keys []exec.SortKey) {
	sort.SliceStable(rows, func(a, b int) bool {
		return exec.CompareRows(keys, rows[a], rows[b]) < 0
	})
}

// Next implements Operator.
func (s *Sort) Next() (*vector.Batch, error) { return s.out.Next() }

// Close implements Operator.
func (s *Sort) Close() error { return nil }

// TopN keeps the N smallest rows under the sort keys using a bounded heap —
// the batch-mode Top-N sort of §5, avoiding a full sort for ORDER BY+LIMIT.
type TopN struct {
	In   Operator
	Keys []exec.SortKey
	N    int
	out  *Values
}

// Schema implements Operator.
func (t *TopN) Schema() *sqltypes.Schema { return t.In.Schema() }

type rowHeap struct {
	rows []sqltypes.Row
	keys []exec.SortKey
}

func (h *rowHeap) Len() int { return len(h.rows) }
func (h *rowHeap) Less(a, b int) bool {
	// Max-heap on the sort order: the root is the worst row kept.
	return exec.CompareRows(h.keys, h.rows[a], h.rows[b]) > 0
}
func (h *rowHeap) Swap(a, b int) { h.rows[a], h.rows[b] = h.rows[b], h.rows[a] }
func (h *rowHeap) Push(x any)    { h.rows = append(h.rows, x.(sqltypes.Row)) }
func (h *rowHeap) Pop() any {
	x := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return x
}

// Open implements Operator.
func (t *TopN) Open(ctx context.Context) error {
	if err := t.In.Open(ctx); err != nil {
		return err
	}
	defer t.In.Close()
	h := &rowHeap{keys: t.Keys}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := t.In.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			if h.Len() < t.N {
				heap.Push(h, row)
			} else if t.N > 0 && exec.CompareRows(t.Keys, row, h.rows[0]) < 0 {
				h.rows[0] = row
				heap.Fix(h, 0)
			}
		}
	}
	// Extract in reverse (heap pops worst first).
	rows := make([]sqltypes.Row, h.Len())
	for i := len(rows) - 1; i >= 0; i-- {
		rows[i] = heap.Pop(h).(sqltypes.Row)
	}
	t.out = &Values{Rows: rows, Sch: t.In.Schema()}
	return t.out.Open(ctx)
}

// Next implements Operator.
func (t *TopN) Next() (*vector.Batch, error) { return t.out.Next() }

// Close implements Operator.
func (t *TopN) Close() error { return nil }
