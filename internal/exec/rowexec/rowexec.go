// Package rowexec is the row-at-a-time (Volcano) execution engine — the
// paper's "row mode" baseline that batch mode is measured against, and the
// mode the 2012 release fell back to for operators outside the batch
// repertoire. Every operator pulls one row per Next call, paying the
// per-tuple interpretation overhead that batch mode amortizes away.
package rowexec

import (
	"context"
	"sort"

	"apollo/internal/colstore"
	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/qerr"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// Operator is a Volcano iterator. Next returns nil at end of stream. The
// returned row may be reused by the operator on the following Next call;
// consumers that retain rows must Clone them.
type Operator interface {
	Schema() *sqltypes.Schema
	Open() error
	Next() (sqltypes.Row, error)
	Close() error
}

// Drain runs an operator to completion, collecting (cloned) rows.
func Drain(op Operator) ([]sqltypes.Row, error) {
	return DrainContext(context.Background(), op)
}

// DrainContext runs an operator to completion under a query context,
// checking for cancellation every rowCheckInterval rows. Row-mode operators
// are pull-based and single-threaded, so the drain loop is the one
// cancellation point and the one panic-containment boundary the mode needs:
// a panic anywhere in the iterator stack is converted to a QueryError
// instead of killing the process. Blocking operators (sort, aggregation)
// respond once their input drain loop observes the context.
func DrainContext(ctx context.Context, op Operator) (out []sqltypes.Row, err error) {
	defer func() {
		if e := qerr.FromPanic("rowexec", qerr.NoGroup, recover()); e != nil {
			out, err = nil, e
		}
	}()
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	n := 0
	for {
		if n%rowCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		n++
		r, err := op.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r.Clone())
	}
}

// rowCheckInterval is how many rows the row-mode drain loop pulls between
// context checks — frequent enough for prompt cancellation, rare enough to
// stay off the per-tuple hot path.
const rowCheckInterval = 1024

// StreamContext runs an operator to completion, delivering each result row
// to fn as it is produced instead of materializing the result set. Rows are
// owned by the callee only for the duration of the call; fn must copy what
// it keeps. An error from fn aborts the query and is returned.
func StreamContext(ctx context.Context, op Operator, fn func(sqltypes.Row) error) (err error) {
	defer func() {
		if e := qerr.FromPanic("rowexec", qerr.NoGroup, recover()); e != nil {
			err = e
		}
	}()
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	n := 0
	for {
		if n%rowCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n++
		r, err := op.Next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// --- Columnstore scan (row mode) ---

// Scan reads a table snapshot row-at-a-time: each compressed row group is
// decoded column by column per row, then delta rows follow. An optional
// residual filter is applied per row — exactly the per-tuple work the paper's
// batch mode eliminates.
type Scan struct {
	Snap   *table.Snapshot
	Filter expr.Expr // optional
	Cols   []int     // projection (nil = all columns)

	schema  *sqltypes.Schema
	groups  []*colstore.RowGroup
	gi      int
	readers []*colstore.ColumnReader
	ri      int
	deltaI  int
	buf     sqltypes.Row
	full    sqltypes.Row
}

// NewScan builds a row-mode scan over a snapshot.
func NewScan(snap *table.Snapshot, filter expr.Expr, cols []int) *Scan {
	s := &Scan{Snap: snap, Filter: filter, Cols: cols}
	if cols == nil {
		s.schema = snap.Schema
	} else {
		s.schema = snap.Schema.Project(cols)
	}
	return s
}

// Schema implements Operator.
func (s *Scan) Schema() *sqltypes.Schema { return s.schema }

// Rebind points the scan at a fresh snapshot of the same table (reused
// compiled plans; see batchexec.Scan.Rebind). Call between executions only.
func (s *Scan) Rebind(snap *table.Snapshot) { s.Snap = snap }

// Open implements Operator.
func (s *Scan) Open() error {
	s.groups = s.Snap.Groups
	s.gi, s.ri, s.deltaI = 0, 0, 0
	s.readers = nil
	s.buf = make(sqltypes.Row, s.schema.Len())
	s.full = make(sqltypes.Row, s.Snap.Schema.Len())
	return nil
}

func (s *Scan) openGroup() error {
	g := s.groups[s.gi]
	s.readers = make([]*colstore.ColumnReader, s.Snap.Schema.Len())
	for c := range s.readers {
		r, err := s.Snap.OpenColumn(g, c)
		if err != nil {
			return err
		}
		s.readers[c] = r
	}
	s.ri = 0
	return nil
}

// Next implements Operator. The filter is evaluated against the full table
// row; the projection applies afterwards.
func (s *Scan) Next() (sqltypes.Row, error) {
	for {
		// Compressed row groups first.
		if s.gi < len(s.groups) {
			g := s.groups[s.gi]
			if s.readers == nil {
				if err := s.openGroup(); err != nil {
					return nil, err
				}
			}
			if s.ri >= g.Rows {
				s.gi++
				s.readers = nil
				continue
			}
			i := s.ri
			s.ri++
			if del := s.Snap.Deletes[g.ID]; del != nil && del.Get(i) {
				continue
			}
			for c, r := range s.readers {
				s.full[c] = r.Value(i)
			}
			if s.accept(s.full) {
				return s.project(s.full), nil
			}
			continue
		}
		// Then delta rows.
		if s.deltaI < len(s.Snap.Delta) {
			row := s.Snap.Delta[s.deltaI]
			s.deltaI++
			if s.accept(row) {
				return s.project(row), nil
			}
			continue
		}
		return nil, nil
	}
}

func (s *Scan) accept(row sqltypes.Row) bool {
	if s.Filter == nil {
		return true
	}
	v := s.Filter.Eval(row)
	return !v.Null && v.I != 0
}

func (s *Scan) project(row sqltypes.Row) sqltypes.Row {
	if s.Cols == nil {
		copy(s.buf, row)
		return s.buf
	}
	for i, c := range s.Cols {
		s.buf[i] = row[c]
	}
	return s.buf
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// --- Filter ---

// Filter drops rows failing the predicate.
type Filter struct {
	In   Operator
	Pred expr.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() *sqltypes.Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.In.Open() }

// Next implements Operator.
func (f *Filter) Next() (sqltypes.Row, error) {
	for {
		r, err := f.In.Next()
		if err != nil || r == nil {
			return r, err
		}
		v := f.Pred.Eval(r)
		if !v.Null && v.I != 0 {
			return r, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.In.Close() }

// --- Project ---

// Project computes output expressions per row.
type Project struct {
	In     Operator
	Exprs  []expr.Expr
	Names  []string
	schema *sqltypes.Schema
	buf    sqltypes.Row
}

// NewProject builds a projection.
func NewProject(in Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]sqltypes.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = sqltypes.Column{Name: names[i], Typ: e.Type(), Nullable: true}
	}
	return &Project{In: in, Exprs: exprs, Names: names, schema: sqltypes.NewSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *sqltypes.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error {
	p.buf = make(sqltypes.Row, len(p.Exprs))
	return p.In.Open()
}

// Next implements Operator.
func (p *Project) Next() (sqltypes.Row, error) {
	r, err := p.In.Next()
	if err != nil || r == nil {
		return nil, err
	}
	for i, e := range p.Exprs {
		p.buf[i] = e.Eval(r)
	}
	return p.buf, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.In.Close() }

// --- Limit ---

// Limit passes through at most N rows after skipping Offset.
type Limit struct {
	In     Operator
	Offset int
	N      int
	seen   int
	sent   int
}

// Schema implements Operator.
func (l *Limit) Schema() *sqltypes.Schema { return l.In.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen, l.sent = 0, 0
	return l.In.Open()
}

// Next implements Operator.
func (l *Limit) Next() (sqltypes.Row, error) {
	for {
		if l.N >= 0 && l.sent >= l.N {
			return nil, nil
		}
		r, err := l.In.Next()
		if err != nil || r == nil {
			return r, err
		}
		l.seen++
		if l.seen <= l.Offset {
			continue
		}
		l.sent++
		return r, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error { return l.In.Close() }

// --- Sort ---

// Sort materializes and orders its input.
type Sort struct {
	In   Operator
	Keys []exec.SortKey
	rows []sqltypes.Row
	i    int
}

// Schema implements Operator.
func (s *Sort) Schema() *sqltypes.Schema { return s.In.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	rows, err := Drain(s.In)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return exec.CompareRows(s.Keys, rows[a], rows[b]) < 0
	})
	s.rows = rows
	s.i = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (sqltypes.Row, error) {
	if s.i >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error { return nil }

// --- UNION ALL ---

// UnionAll concatenates inputs with identical schemas.
type UnionAll struct {
	Ins []Operator
	i   int
}

// Schema implements Operator.
func (u *UnionAll) Schema() *sqltypes.Schema { return u.Ins[0].Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.i = 0
	for _, in := range u.Ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next() (sqltypes.Row, error) {
	for u.i < len(u.Ins) {
		r, err := u.Ins[u.i].Next()
		if err != nil {
			return nil, err
		}
		if r != nil {
			return r, nil
		}
		u.i++
	}
	return nil, nil
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	var first error
	for _, in := range u.Ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- Values (literal row source, used by the reference/test paths) ---

// Values replays a fixed row set.
type Values struct {
	Rows   []sqltypes.Row
	Sch    *sqltypes.Schema
	cursor int
}

// Schema implements Operator.
func (v *Values) Schema() *sqltypes.Schema { return v.Sch }

// Open implements Operator.
func (v *Values) Open() error { v.cursor = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (sqltypes.Row, error) {
	if v.cursor >= len(v.Rows) {
		return nil, nil
	}
	r := v.Rows[v.cursor]
	v.cursor++
	return r, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }
