package rowexec

import (
	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64 // non-NULL inputs (or all rows for COUNT(*))
	sumI     int64
	sumF     float64
	min, max sqltypes.Value
	seen     bool
	distinct map[string]bool
}

func newAggState(spec exec.AggSpec) *aggState {
	st := &aggState{}
	if spec.Distinct {
		st.distinct = make(map[string]bool)
	}
	return st
}

// add folds one input row into the state.
func (st *aggState) add(spec exec.AggSpec, row sqltypes.Row) {
	if spec.Kind == exec.CountStar {
		st.count++
		return
	}
	v := spec.Arg.Eval(row)
	if v.Null {
		return
	}
	if st.distinct != nil {
		key := string(exec.EncodeKey(nil, []sqltypes.Value{v}))
		if st.distinct[key] {
			return
		}
		st.distinct[key] = true
	}
	st.count++
	switch spec.Kind {
	case exec.Sum, exec.Avg:
		st.sumI += v.I
		st.sumF += v.AsFloat()
	case exec.Min:
		if !st.seen || sqltypes.Compare(v, st.min) < 0 {
			st.min = v
		}
	case exec.Max:
		if !st.seen || sqltypes.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	st.seen = true
}

// result finalizes the aggregate value.
func (st *aggState) result(spec exec.AggSpec) sqltypes.Value {
	switch spec.Kind {
	case exec.CountStar, exec.Count:
		return sqltypes.NewInt(st.count)
	case exec.Sum:
		if st.count == 0 {
			return sqltypes.NewNull(spec.ResultType())
		}
		if spec.ResultType() == sqltypes.Float64 {
			return sqltypes.NewFloat(st.sumF)
		}
		return sqltypes.NewInt(st.sumI)
	case exec.Avg:
		if st.count == 0 {
			return sqltypes.NewNull(sqltypes.Float64)
		}
		return sqltypes.NewFloat(st.sumF / float64(st.count))
	case exec.Min:
		if !st.seen {
			return sqltypes.NewNull(spec.ResultType())
		}
		return st.min
	default: // Max
		if !st.seen {
			return sqltypes.NewNull(spec.ResultType())
		}
		return st.max
	}
}

// HashAggregate groups rows by the GroupBy expressions and computes the
// aggregates. With no GroupBy expressions it is a scalar aggregation that
// emits exactly one row, even over empty input.
type HashAggregate struct {
	In      Operator
	GroupBy []expr.Expr
	Names   []string // names for the group-by output columns
	Aggs    []exec.AggSpec
	schema  *sqltypes.Schema
	results []sqltypes.Row
	i       int
}

// NewHashAggregate builds a row-mode aggregation.
func NewHashAggregate(in Operator, groupBy []expr.Expr, names []string, aggs []exec.AggSpec) *HashAggregate {
	cols := make([]sqltypes.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols = append(cols, sqltypes.Column{Name: names[i], Typ: g.Type(), Nullable: true})
	}
	for _, a := range aggs {
		cols = append(cols, sqltypes.Column{Name: a.Name, Typ: a.ResultType(), Nullable: true})
	}
	return &HashAggregate{In: in, GroupBy: groupBy, Names: names, Aggs: aggs, schema: sqltypes.NewSchema(cols...)}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *sqltypes.Schema { return h.schema }

// Open implements Operator: consumes the whole input.
func (h *HashAggregate) Open() error {
	if err := h.In.Open(); err != nil {
		return err
	}
	defer h.In.Close()

	type group struct {
		keyVals sqltypes.Row
		states  []*aggState
	}
	groups := make(map[string]*group)
	var order []string // deterministic output order (first-seen)

	keyVals := make([]sqltypes.Value, len(h.GroupBy))
	for {
		row, err := h.In.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		for i, g := range h.GroupBy {
			keyVals[i] = g.Eval(row)
		}
		key := string(exec.EncodeKey(nil, keyVals))
		grp := groups[key]
		if grp == nil {
			grp = &group{keyVals: append(sqltypes.Row(nil), keyVals...), states: make([]*aggState, len(h.Aggs))}
			for i, spec := range h.Aggs {
				grp.states[i] = newAggState(spec)
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, spec := range h.Aggs {
			grp.states[i].add(spec, row)
		}
	}

	// Scalar aggregation over empty input still yields one row.
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		states := make([]*aggState, len(h.Aggs))
		for i, spec := range h.Aggs {
			states[i] = newAggState(spec)
		}
		groups[""] = &group{states: states}
		order = append(order, "")
	}

	h.results = h.results[:0]
	for _, key := range order {
		grp := groups[key]
		out := make(sqltypes.Row, 0, h.schema.Len())
		out = append(out, grp.keyVals...)
		for i, spec := range h.Aggs {
			out = append(out, grp.states[i].result(spec))
		}
		h.results = append(h.results, out)
	}
	h.i = 0
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (sqltypes.Row, error) {
	if h.i >= len(h.results) {
		return nil, nil
	}
	r := h.results[h.i]
	h.i++
	return r, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.results = nil
	return nil
}
