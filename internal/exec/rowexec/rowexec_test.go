package rowexec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "grp", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "price", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "region", Typ: sqltypes.String},
	)
}

func makeRows(n int, seed int64) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"north", "south", "east", "west"}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		price := sqltypes.NewFloat(float64(rng.Intn(1000)) / 10)
		if rng.Intn(20) == 0 {
			price = sqltypes.NewNull(sqltypes.Float64)
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(rng.Intn(10))),
			price,
			sqltypes.NewString(regions[rng.Intn(4)]),
		}
	}
	return rows
}

func loadTable(t *testing.T, rows []sqltypes.Row) *table.Table {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	opts := table.Options{RowGroupSize: 300, BulkLoadThreshold: 50, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(store, "t", testSchema(), opts)
	split := len(rows) * 4 / 5
	if err := tb.BulkLoad(rows[:split]); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertMany(rows[split:]); err != nil {
		t.Fatal(err)
	}
	return tb
}

func keys(rows []sqltypes.Row) map[string]int {
	out := map[string]int{}
	for _, r := range rows {
		k := ""
		for _, v := range r {
			k += v.String() + "|"
		}
		out[k]++
	}
	return out
}

func sameRows(a, b []sqltypes.Row) bool {
	ka, kb := keys(a), keys(b)
	if len(ka) != len(kb) {
		return false
	}
	for k, v := range ka {
		if kb[k] != v {
			return false
		}
	}
	return true
}

func TestScanMatchesSource(t *testing.T) {
	rows := makeRows(1500, 1)
	tb := loadTable(t, rows)
	got, err := Drain(NewScan(tb.Snapshot(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(got, rows) {
		t.Fatal("scan does not reproduce source rows")
	}
}

func TestScanFilterProjection(t *testing.T) {
	rows := makeRows(1500, 2)
	tb := loadTable(t, rows)
	pred := expr.NewCmp(expr.LT, expr.NewColRef(0, "id", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(100)))
	got, err := Drain(NewScan(tb.Snapshot(), pred, []int{3, 0}))
	if err != nil {
		t.Fatal(err)
	}
	var want []sqltypes.Row
	for _, r := range rows {
		if r[0].I < 100 {
			want = append(want, sqltypes.Row{r[3], r[0]})
		}
	}
	if !sameRows(got, want) {
		t.Fatal("filtered projected scan mismatch")
	}
}

func TestFilterOperator(t *testing.T) {
	rows := makeRows(500, 3)
	in := &Values{Rows: rows, Sch: testSchema()}
	f := &Filter{In: in, Pred: expr.NewCmp(expr.EQ, expr.NewColRef(1, "grp", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(3)))}
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r[1].I != 3 {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestProjectOperator(t *testing.T) {
	rows := makeRows(100, 4)
	in := &Values{Rows: rows, Sch: testSchema()}
	p := NewProject(in, []expr.Expr{
		expr.NewArith(expr.Add, expr.NewColRef(0, "id", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(1000))),
	}, []string{"id1k"})
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].I != rows[0][0].I+1000 {
		t.Fatal("projection wrong")
	}
	if p.Schema().Cols[0].Name != "id1k" {
		t.Fatal("schema name wrong")
	}
}

func TestSortLimitOffset(t *testing.T) {
	rows := makeRows(200, 5)
	in := &Values{Rows: rows, Sch: testSchema()}
	s := &Sort{In: in, Keys: []exec.SortKey{{E: expr.NewColRef(0, "id", sqltypes.Int64), Desc: true}}}
	l := &Limit{In: s, Offset: 5, N: 10}
	got, err := Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0][0].I != 194 || got[9][0].I != 185 {
		t.Fatalf("order wrong: %v ... %v", got[0][0], got[9][0])
	}
}

func TestUnionAllOperator(t *testing.T) {
	rows := makeRows(90, 6)
	sch := testSchema()
	u := &UnionAll{Ins: []Operator{
		&Values{Rows: rows[:30], Sch: sch},
		&Values{Rows: rows[30:], Sch: sch},
	}}
	got, err := Drain(u)
	if err != nil || len(got) != 90 {
		t.Fatalf("union = %d, err %v", len(got), err)
	}
}

func joinData() (fact, dim []sqltypes.Row, factSch, dimSch *sqltypes.Schema) {
	rng := rand.New(rand.NewSource(9))
	factSch = sqltypes.NewSchema(
		sqltypes.Column{Name: "fk", Typ: sqltypes.Int64, Nullable: true},
		sqltypes.Column{Name: "v", Typ: sqltypes.Int64},
	)
	dimSch = sqltypes.NewSchema(
		sqltypes.Column{Name: "pk", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "nm", Typ: sqltypes.String},
	)
	for i := 0; i < 500; i++ {
		fk := sqltypes.NewInt(int64(rng.Intn(60)))
		if rng.Intn(15) == 0 {
			fk = sqltypes.NewNull(sqltypes.Int64)
		}
		fact = append(fact, sqltypes.Row{fk, sqltypes.NewInt(int64(i))})
	}
	for i := 0; i < 30; i++ {
		dim = append(dim, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("d%d", i))})
	}
	return
}

func TestHashJoinTypes(t *testing.T) {
	fact, dim, factSch, dimSch := joinData()
	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter, exec.RightOuter, exec.FullOuter, exec.LeftSemi, exec.LeftAnti} {
		j, err := NewHashJoin(&Values{Rows: fact, Sch: factSch}, &Values{Rows: dim, Sch: dimSch},
			[]expr.Expr{expr.NewColRef(0, "fk", sqltypes.Int64)},
			[]expr.Expr{expr.NewColRef(0, "pk", sqltypes.Int64)},
			jt, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force reference.
		var want []sqltypes.Row
		dimMatched := make([]bool, len(dim))
		for _, f := range fact {
			matched := false
			for di, d := range dim {
				if !f[0].Null && f[0].I == d[0].I {
					matched = true
					dimMatched[di] = true
					if jt != exec.LeftSemi && jt != exec.LeftAnti {
						want = append(want, append(f.Clone(), d...))
					}
				}
			}
			switch {
			case jt == exec.LeftSemi && matched,
				jt == exec.LeftAnti && !matched:
				want = append(want, f)
			case (jt == exec.LeftOuter || jt == exec.FullOuter) && !matched:
				want = append(want, append(f.Clone(), sqltypes.NewNull(sqltypes.Int64), sqltypes.NewNull(sqltypes.String)))
			}
		}
		if jt == exec.RightOuter || jt == exec.FullOuter {
			for di, d := range dim {
				if !dimMatched[di] {
					want = append(want, append(sqltypes.Row{sqltypes.NewNull(sqltypes.Int64), sqltypes.NewNull(sqltypes.Int64)}, d...))
				}
			}
		}
		if !sameRows(got, want) {
			t.Fatalf("%v: join mismatch (%d vs %d rows)", jt, len(got), len(want))
		}
	}
}

func TestNestedLoopJoin(t *testing.T) {
	fact, dim, factSch, dimSch := joinData()
	// Non-equi predicate: fk < pk.
	pred := expr.NewCmp(expr.LT, expr.NewColRef(0, "fk", sqltypes.Int64), expr.NewColRef(2, "pk", sqltypes.Int64))
	for _, jt := range []exec.JoinType{exec.Inner, exec.LeftOuter} {
		j, err := NewNestedLoopJoin(&Values{Rows: fact, Sch: factSch}, &Values{Rows: dim, Sch: dimSch}, pred, jt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, f := range fact {
			m := 0
			for _, d := range dim {
				if !f[0].Null && f[0].I < d[0].I {
					m++
				}
			}
			if m == 0 && jt == exec.LeftOuter {
				m = 1
			}
			want += m
		}
		if len(got) != want {
			t.Fatalf("%v: rows = %d, want %d", jt, len(got), want)
		}
	}
	if _, err := NewNestedLoopJoin(nil, nil, nil, exec.FullOuter); err == nil {
		t.Fatal("full outer nested loops accepted")
	}
}

func TestHashAggregate(t *testing.T) {
	rows := makeRows(2000, 7)
	in := &Values{Rows: rows, Sch: testSchema()}
	agg := NewHashAggregate(in,
		[]expr.Expr{expr.NewColRef(1, "grp", sqltypes.Int64)}, []string{"grp"},
		[]exec.AggSpec{
			{Kind: exec.CountStar, Name: "n"},
			{Kind: exec.Count, Arg: expr.NewColRef(2, "price", sqltypes.Float64), Name: "np"},
			{Kind: exec.Sum, Arg: expr.NewColRef(2, "price", sqltypes.Float64), Name: "s"},
			{Kind: exec.Max, Arg: expr.NewColRef(3, "region", sqltypes.String), Name: "mx"},
			{Kind: exec.Count, Arg: expr.NewColRef(3, "region", sqltypes.String), Distinct: true, Name: "ndr"},
		})
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		n, np, ndr int64
		s          float64
		mx         string
		regions    map[string]bool
	}
	refs := map[int64]*ref{}
	for _, r := range rows {
		g := refs[r[1].I]
		if g == nil {
			g = &ref{regions: map[string]bool{}}
			refs[r[1].I] = g
		}
		g.n++
		if !r[2].Null {
			g.np++
			g.s += r[2].F
		}
		if r[3].S > g.mx {
			g.mx = r[3].S
		}
		g.regions[r[3].S] = true
	}
	if len(got) != len(refs) {
		t.Fatalf("groups = %d want %d", len(got), len(refs))
	}
	for _, r := range got {
		g := refs[r[0].I]
		if r[1].I != g.n || r[2].I != g.np || r[4].S != g.mx || r[5].I != int64(len(g.regions)) {
			t.Fatalf("group %d mismatch: %v", r[0].I, r)
		}
		if d := r[3].F - g.s; d > 1e-6 || d < -1e-6 {
			t.Fatalf("group %d sum mismatch", r[0].I)
		}
	}
}

func TestScalarAggregateEmptyInput(t *testing.T) {
	agg := NewHashAggregate(&Values{Rows: nil, Sch: testSchema()}, nil, nil,
		[]exec.AggSpec{
			{Kind: exec.CountStar, Name: "n"},
			{Kind: exec.Min, Arg: expr.NewColRef(0, "id", sqltypes.Int64), Name: "mn"},
		})
	got, err := Drain(agg)
	if err != nil || len(got) != 1 {
		t.Fatalf("scalar agg: %v, %v", got, err)
	}
	if got[0][0].I != 0 || !got[0][1].Null {
		t.Fatalf("scalar agg row = %v", got[0])
	}
}

func TestLikeInScanFilter(t *testing.T) {
	rows := makeRows(400, 8)
	tb := loadTable(t, rows)
	pred := expr.NewLike(expr.NewColRef(3, "region", sqltypes.String), "%th", false) // north, south
	got, err := Drain(NewScan(tb.Snapshot(), pred, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if !strings.HasSuffix(r[0].S, "th") {
			t.Fatalf("bad row %v", r)
		}
	}
	want := 0
	for _, r := range rows {
		if strings.HasSuffix(r[3].S, "th") {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("rows = %d, want %d", len(got), want)
	}
}
