package rowexec

import (
	"fmt"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
)

// HashJoin is the row-mode hash join: the build (right) input is read into an
// in-memory hash table keyed on the join expressions, then the probe (left)
// input streams through it one row at a time. Output layout is
// probe-columns ++ build-columns for inner/outer joins and probe-columns only
// for semi/anti joins.
type HashJoin struct {
	Probe, Build   Operator
	ProbeKeys      []expr.Expr
	BuildKeys      []expr.Expr
	Type           exec.JoinType
	Residual       expr.Expr // optional extra predicate over the joined row
	schema         *sqltypes.Schema
	ht             map[string][]int
	buildRows      []sqltypes.Row
	buildMatched   []bool
	pending        []sqltypes.Row
	emittedUnmatch bool
	probeRow       sqltypes.Row
	keyBuf         []byte
	keyVals        []sqltypes.Value
	out            sqltypes.Row
}

// NewHashJoin builds a row-mode hash join.
func NewHashJoin(probe, build Operator, probeKeys, buildKeys []expr.Expr, jt exec.JoinType, residual expr.Expr) (*HashJoin, error) {
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("rowexec: join needs matching non-empty key lists")
	}
	h := &HashJoin{Probe: probe, Build: build, ProbeKeys: probeKeys, BuildKeys: buildKeys, Type: jt, Residual: residual}
	switch jt {
	case exec.LeftSemi, exec.LeftAnti:
		h.schema = probe.Schema()
	default:
		h.schema = probe.Schema().Concat(build.Schema())
	}
	return h, nil
}

// Schema implements Operator.
func (h *HashJoin) Schema() *sqltypes.Schema { return h.schema }

// Open implements Operator: consumes the build side.
func (h *HashJoin) Open() error {
	rows, err := Drain(h.Build)
	if err != nil {
		return err
	}
	h.buildRows = rows
	h.buildMatched = make([]bool, len(rows))
	h.ht = make(map[string][]int, len(rows))
	h.keyVals = make([]sqltypes.Value, len(h.BuildKeys))
	for i, r := range rows {
		null := false
		for k, e := range h.BuildKeys {
			h.keyVals[k] = e.Eval(r)
			null = null || h.keyVals[k].Null
		}
		if null {
			continue // NULL keys never match
		}
		key := string(exec.EncodeKey(h.keyBuf[:0], h.keyVals))
		h.ht[key] = append(h.ht[key], i)
	}
	h.pending = nil
	h.emittedUnmatch = false
	h.keyVals = make([]sqltypes.Value, len(h.ProbeKeys))
	return h.Probe.Open()
}

// joined materializes the concatenated probe++build row into a shared buffer
// sized for the full concatenation even for semi/anti joins, whose residual
// predicates are bound against the concatenated layout.
func (h *HashJoin) joined(probe, build sqltypes.Row) sqltypes.Row {
	pw := h.Probe.Schema().Len()
	if h.out == nil {
		h.out = make(sqltypes.Row, pw+h.Build.Schema().Len())
	}
	copy(h.out, probe)
	if build != nil {
		copy(h.out[pw:], build)
	} else {
		for i, c := range h.Build.Schema().Cols {
			h.out[pw+i] = sqltypes.NewNull(c.Typ)
		}
	}
	return h.out
}

func (h *HashJoin) residualOK(row sqltypes.Row) bool {
	if h.Residual == nil {
		return true
	}
	v := h.Residual.Eval(row)
	return !v.Null && v.I != 0
}

// Next implements Operator.
func (h *HashJoin) Next() (sqltypes.Row, error) {
	for {
		// Emit pending matches for the current probe row.
		if len(h.pending) > 0 {
			r := h.pending[0]
			h.pending = h.pending[1:]
			return r, nil
		}
		probe, err := h.Probe.Next()
		if err != nil {
			return nil, err
		}
		if probe == nil {
			// Probe exhausted: right/full outer joins emit unmatched build rows.
			if (h.Type == exec.RightOuter || h.Type == exec.FullOuter) && !h.emittedUnmatch {
				h.emittedUnmatch = true
				probeWidth := h.Probe.Schema().Len()
				for i, m := range h.buildMatched {
					if m {
						continue
					}
					row := make(sqltypes.Row, h.schema.Len())
					for c := 0; c < probeWidth; c++ {
						row[c] = sqltypes.NewNull(h.schema.Cols[c].Typ)
					}
					copy(row[probeWidth:], h.buildRows[i])
					h.pending = append(h.pending, row)
				}
				continue
			}
			return nil, nil
		}

		null := false
		for k, e := range h.ProbeKeys {
			h.keyVals[k] = e.Eval(probe)
			null = null || h.keyVals[k].Null
		}
		var matches []int
		if !null {
			matches = h.ht[string(exec.EncodeKey(h.keyBuf[:0], h.keyVals))]
		}

		switch h.Type {
		case exec.LeftSemi:
			for _, bi := range matches {
				if h.residualOK(h.joined(probe, h.buildRows[bi])) {
					return probe, nil
				}
			}
		case exec.LeftAnti:
			found := false
			for _, bi := range matches {
				if h.residualOK(h.joined(probe, h.buildRows[bi])) {
					found = true
					break
				}
			}
			if !found {
				return probe, nil
			}
		default:
			matched := false
			for _, bi := range matches {
				row := h.joined(probe, h.buildRows[bi])
				if h.residualOK(row) {
					matched = true
					h.buildMatched[bi] = true
					h.pending = append(h.pending, row.Clone())
				}
			}
			if !matched && (h.Type == exec.LeftOuter || h.Type == exec.FullOuter) {
				return h.joined(probe, nil), nil
			}
			if matched {
				continue // loop emits from pending
			}
		}
	}
}

// Close implements Operator.
func (h *HashJoin) Close() error {
	h.ht = nil
	h.buildRows = nil
	return h.Probe.Close()
}

// NestedLoopJoin joins with an arbitrary predicate (no equi-keys) — the
// fallback for non-equi joins. Inner and left-outer only.
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         expr.Expr // may be nil (cross join)
	Type         exec.JoinType
	schema       *sqltypes.Schema
	innerRows    []sqltypes.Row
	ii           int
	cur          sqltypes.Row
	curMatched   bool
	out          sqltypes.Row
}

// NewNestedLoopJoin builds a nested-loops join (Inner or LeftOuter).
func NewNestedLoopJoin(outer, inner Operator, pred expr.Expr, jt exec.JoinType) (*NestedLoopJoin, error) {
	if jt != exec.Inner && jt != exec.LeftOuter {
		return nil, fmt.Errorf("rowexec: nested loops supports INNER and LEFT OUTER, got %v", jt)
	}
	return &NestedLoopJoin{
		Outer: outer, Inner: inner, Pred: pred, Type: jt,
		schema: outer.Schema().Concat(inner.Schema()),
	}, nil
}

// Schema implements Operator.
func (n *NestedLoopJoin) Schema() *sqltypes.Schema { return n.schema }

// Open implements Operator.
func (n *NestedLoopJoin) Open() error {
	rows, err := Drain(n.Inner)
	if err != nil {
		return err
	}
	n.innerRows = rows
	n.cur = nil
	n.out = make(sqltypes.Row, n.schema.Len())
	return n.Outer.Open()
}

// Next implements Operator.
func (n *NestedLoopJoin) Next() (sqltypes.Row, error) {
	for {
		if n.cur == nil {
			r, err := n.Outer.Next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				return nil, nil
			}
			n.cur = r.Clone()
			n.ii = 0
			n.curMatched = false
		}
		for n.ii < len(n.innerRows) {
			inner := n.innerRows[n.ii]
			n.ii++
			copy(n.out, n.cur)
			copy(n.out[len(n.cur):], inner)
			if n.Pred != nil {
				v := n.Pred.Eval(n.out)
				if v.Null || v.I == 0 {
					continue
				}
			}
			n.curMatched = true
			return n.out, nil
		}
		if n.Type == exec.LeftOuter && !n.curMatched {
			copy(n.out, n.cur)
			for i := len(n.cur); i < len(n.out); i++ {
				n.out[i] = sqltypes.NewNull(n.schema.Cols[i].Typ)
			}
			n.cur = nil
			return n.out, nil
		}
		n.cur = nil
	}
}

// Close implements Operator.
func (n *NestedLoopJoin) Close() error {
	n.innerRows = nil
	return n.Outer.Close()
}
