package colstore

import (
	"encoding/binary"
	"fmt"

	"apollo/internal/bits"
	"apollo/internal/encoding"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// EncKind identifies how a segment's codes map to values.
type EncKind uint8

// Segment encodings.
const (
	EncNumeric EncKind = iota // value-based encoding (ints, floats, dates, bools)
	EncDict                   // dictionary encoding (strings)
)

// CompKind identifies the physical compression of a segment's code stream.
type CompKind uint8

// Segment compressions.
const (
	CompBitPack CompKind = iota
	CompRLE
)

func (c CompKind) String() string {
	if c == CompRLE {
		return "RLE"
	}
	return "BITPACK"
}

// SegmentMeta is the segment directory entry for one column segment: enough
// metadata to decide segment elimination and to decode the payload blob.
type SegmentMeta struct {
	Rows      int
	NullCount int
	Min, Max  sqltypes.Value // raw-domain bounds over non-NULL values
	Enc       EncKind
	Numeric   encoding.NumericEncoding // when Enc == EncNumeric
	DictCut   uint32                   // codes < DictCut resolve in the primary dictionary
	Comp      CompKind
	Blob      storage.BlobID // payload (nulls + compressed codes)
	LocalDict storage.BlobID // 0 = no local dictionary
	DiskBytes int            // at-rest payload size (plus local dict)
	RawBytes  int            // uncompressed logical size of the column's values
}

// buildSegment compresses one column of a row group. perm, when non-nil, is
// the row-reordering permutation shared by all columns of the group.
func buildSegment(store *storage.Store, tier storage.Compression, col sqltypes.Column,
	buf *ColumnBuf, primary *encoding.Dict, primaryCap int, perm []int) (SegmentMeta, error) {

	meta := SegmentMeta{Rows: buf.Len()}
	var codes []uint64
	var local *encoding.Dict

	// Step 1: value/dictionary encoding into codes, plus raw min/max.
	switch col.Typ {
	case sqltypes.String:
		meta.Enc = EncDict
		meta.DictCut = uint32(primary.Len())
		codes = make([]uint64, buf.Len())
		for i, s := range buf.Str {
			if buf.Nulls != nil && buf.Nulls.Get(i) {
				continue
			}
			if id, ok := primary.Lookup(s); ok {
				codes[i] = uint64(id)
			} else if primary.Len() < primaryCap {
				codes[i] = uint64(primary.Add(s))
			} else {
				if local == nil {
					local = encoding.NewDict()
				}
				codes[i] = uint64(meta.DictCut) + uint64(local.Add(s))
			}
		}
		// DictCut must reflect the primary size *after* additions so that
		// every primary id used by this segment falls below the cut.
		meta.DictCut = uint32(primary.Len())
		// Local ids were assigned relative to the pre-addition cut; rebase
		// them if the primary grew during this build.
		// (Simplest correct approach: re-encode local ids.)
		if local != nil {
			for i := range codes {
				if buf.Nulls != nil && buf.Nulls.Get(i) {
					continue
				}
				s := buf.Str[i]
				if id, ok := primary.Lookup(s); ok {
					codes[i] = uint64(id)
				} else {
					id, _ := local.Lookup(s)
					codes[i] = uint64(meta.DictCut) + uint64(id)
				}
			}
		}
	case sqltypes.Float64:
		meta.Enc = EncNumeric
		meta.Numeric, codes = encoding.AnalyzeFloats(buf.F64, buf.Nulls)
	default: // Int64, Date, Bool
		meta.Enc = EncNumeric
		meta.Numeric, codes = encoding.AnalyzeInts(buf.I64, buf.Nulls)
	}

	// Raw min/max and null count.
	first := true
	for i := 0; i < buf.Len(); i++ {
		v := buf.Value(i)
		if v.Null {
			meta.NullCount++
			continue
		}
		if first {
			meta.Min, meta.Max = v, v
			first = false
			continue
		}
		if sqltypes.Compare(v, meta.Min) < 0 {
			meta.Min = v
		}
		if sqltypes.Compare(v, meta.Max) > 0 {
			meta.Max = v
		}
	}
	if first { // all NULL or empty
		meta.Min = sqltypes.NewNull(col.Typ)
		meta.Max = sqltypes.NewNull(col.Typ)
	}

	// Step 2: apply the shared row permutation.
	codes = encoding.ApplyPerm(codes, perm)
	nulls := buf.Nulls
	if perm != nil && nulls != nil {
		pn := bits.New(buf.Len())
		for newPos, oldPos := range perm {
			if nulls.Get(oldPos) {
				pn.Set(newPos)
			}
		}
		nulls = pn
	}

	// Step 3: choose RLE vs bit-packing by estimated size.
	rle := encoding.RLEEncode(codes)
	packed := encoding.PackSlice(codes)
	var payload []byte
	if rle.SizeBytes() < packed.SizeBytes() {
		meta.Comp = CompRLE
		payload = marshalPayload(nulls, buf.Len(), true, func(dst []byte) []byte { return rle.Marshal(dst) })
	} else {
		meta.Comp = CompBitPack
		payload = marshalPayload(nulls, buf.Len(), false, func(dst []byte) []byte { return packed.Marshal(dst) })
	}

	// Step 4: store payload (and local dictionary) under the chosen tier.
	blob, err := store.Put(payload, tier)
	if err != nil {
		return meta, fmt.Errorf("colstore: store segment payload: %w", err)
	}
	meta.Blob = blob
	disk, _, _ := store.SizeOf(blob)
	meta.DiskBytes = disk
	if local != nil {
		lb, err := store.Put(local.Marshal(nil), tier)
		if err != nil {
			return meta, fmt.Errorf("colstore: store local dictionary: %w", err)
		}
		meta.LocalDict = lb
		ld, _, _ := store.SizeOf(lb)
		meta.DiskBytes += ld
	}
	meta.RawBytes = rawSize(col.Typ, buf)
	return meta, nil
}

// rawSize estimates the uncompressed size of the column's values (8 bytes per
// fixed-width value; string length + 2 per string), the denominator of the
// compression-ratio experiments.
func rawSize(t sqltypes.Type, buf *ColumnBuf) int {
	if t == sqltypes.String {
		n := 0
		for _, s := range buf.Str {
			n += len(s) + 2
		}
		return n
	}
	return 8 * buf.Len()
}

// Payload layout:
//
//	flags      1 byte: bit0 = has nulls, bit1 = RLE
//	rows       uvarint
//	nulls      when bit0: uvarint word count + words little-endian
//	codes      RLE.Marshal or Packed.Marshal
func marshalPayload(nulls *bits.Bitmap, rows int, isRLE bool, body func([]byte) []byte) []byte {
	var flags byte
	hasNulls := nulls != nil && nulls.Any()
	if hasNulls {
		flags |= 1
	}
	if isRLE {
		flags |= 2
	}
	out := []byte{flags}
	out = binary.AppendUvarint(out, uint64(rows))
	if hasNulls {
		words := nulls.Words()
		// Trim trailing zero words.
		for len(words) > 0 && words[len(words)-1] == 0 {
			words = words[:len(words)-1]
		}
		out = binary.AppendUvarint(out, uint64(len(words)))
		for _, w := range words {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
	}
	return body(out)
}

// unmarshalPayload decodes a segment payload into codes and a null bitmap.
func unmarshalPayload(buf []byte) (codes []uint64, nulls *bits.Bitmap, err error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("colstore: empty segment payload")
	}
	flags := buf[0]
	pos := 1
	rows, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, nil, fmt.Errorf("colstore: bad segment row count")
	}
	pos += n
	if flags&1 != 0 {
		wc, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("colstore: bad null word count")
		}
		pos += n
		if pos+8*int(wc) > len(buf) {
			return nil, nil, fmt.Errorf("colstore: null bitmap truncated")
		}
		words := make([]uint64, wc)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(buf[pos:])
			pos += 8
		}
		nulls = bits.FromWords(words)
	}
	codes = make([]uint64, rows)
	if flags&2 != 0 {
		r, _, err := encoding.UnmarshalRLE(buf[pos:])
		if err != nil {
			return nil, nil, err
		}
		if r.Len() != int(rows) {
			return nil, nil, fmt.Errorf("colstore: rle length %d, want %d", r.Len(), rows)
		}
		r.DecodeAll(codes)
	} else {
		p, _, err := encoding.UnmarshalPacked(buf[pos:])
		if err != nil {
			return nil, nil, err
		}
		if p.N != int(rows) {
			return nil, nil, fmt.Errorf("colstore: packed length %d, want %d", p.N, rows)
		}
		p.DecodeAll(codes)
	}
	return codes, nulls, nil
}

// CanMatchRange reports whether a segment with meta's min/max could contain a
// value in [lo, hi]; NULL bounds mean unbounded on that side. This is the
// segment-elimination test of §2.3: a scan skips segments whose metadata
// proves no row can qualify.
func (m *SegmentMeta) CanMatchRange(lo, hi sqltypes.Value) bool {
	if m.Min.Null && m.Max.Null {
		// Segment holds only NULLs; range predicates never match NULL.
		return false
	}
	if !lo.Null && sqltypes.Compare(m.Max, lo) < 0 {
		return false
	}
	if !hi.Null && sqltypes.Compare(m.Min, hi) > 0 {
		return false
	}
	return true
}
