package colstore

import (
	"fmt"
	"time"

	"apollo/internal/bits"
	"apollo/internal/encoding"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

// ColumnReader provides decoded access to one column segment: bulk
// materialization into vectors, random access by tuple id (bookmark fetch),
// and code-space predicate translation so filters run on encoded data.
type ColumnReader struct {
	Meta *SegmentMeta
	Col  sqltypes.Column

	codes []uint64
	nulls *bits.Bitmap

	// primary is the shared table-wide dictionary; primaryVals is a snapshot
	// of its id->value slice taken at open time, safe to read while the tuple
	// mover concurrently appends new entries.
	primary     *encoding.Dict
	primaryVals []string
	local       *encoding.Dict
	localVals   []string

	// Late-materialization state: codedState caches whether this segment can
	// emit primary-dictionary codes directly (local codes remapped via remap).
	codedState int      // 0 = undecided, 1 = can emit codes, 2 = must materialize
	remap      []uint32 // local code -> primary id; nil when no local dict
}

// OpenColumn reads and decodes a segment from the store. primary is the
// column's primary dictionary (nil for non-string columns).
func OpenColumn(store *storage.Store, meta *SegmentMeta, col sqltypes.Column, primary *encoding.Dict) (*ColumnReader, error) {
	payload, err := store.Get(meta.Blob)
	if err != nil {
		return nil, fmt.Errorf("colstore: read segment: %w", err)
	}
	decodeStart := time.Now()
	codes, nulls, err := unmarshalPayload(payload)
	if err != nil {
		return nil, err
	}
	if meta.Enc == EncDict {
		mSegDict.Inc()
		mDecodeDict.Observe(time.Since(decodeStart).Seconds())
	} else {
		mSegNumeric.Inc()
		mDecodeNumeric.Observe(time.Since(decodeStart).Seconds())
	}
	if len(codes) != meta.Rows {
		return nil, fmt.Errorf("colstore: segment has %d rows, directory says %d", len(codes), meta.Rows)
	}
	r := &ColumnReader{Meta: meta, Col: col, codes: codes, nulls: nulls, primary: primary}
	if primary != nil {
		r.primaryVals = primary.SnapshotValues()
	}
	if meta.LocalDict != 0 {
		buf, err := store.Get(meta.LocalDict)
		if err != nil {
			return nil, fmt.Errorf("colstore: read local dictionary: %w", err)
		}
		d, _, err := encoding.UnmarshalDict(buf)
		if err != nil {
			return nil, err
		}
		r.local = d
		r.localVals = d.SnapshotValues()
	}
	return r, nil
}

// Len returns the number of rows in the segment.
func (r *ColumnReader) Len() int { return len(r.codes) }

// Codes exposes the decoded code stream (shared; do not modify).
func (r *ColumnReader) Codes() []uint64 { return r.codes }

// Nulls exposes the null bitmap (may be nil).
func (r *ColumnReader) Nulls() *bits.Bitmap { return r.nulls }

// IsNull reports whether row i is NULL.
func (r *ColumnReader) IsNull(i int) bool { return r.nulls != nil && r.nulls.Get(i) }

// DecodeCode maps a code to its raw value.
func (r *ColumnReader) DecodeCode(code uint64) sqltypes.Value {
	if r.Meta.Enc == EncDict {
		return sqltypes.NewString(r.dictValue(code))
	}
	switch r.Col.Typ {
	case sqltypes.Float64:
		return sqltypes.NewFloat(r.Meta.Numeric.DecodeFloat(code))
	default:
		return sqltypes.Value{Typ: r.Col.Typ, I: r.Meta.Numeric.DecodeInt(code)}
	}
}

func (r *ColumnReader) dictValue(code uint64) string {
	if code < uint64(r.Meta.DictCut) {
		return r.primaryVals[code]
	}
	return r.localVals[code-uint64(r.Meta.DictCut)]
}

// Value returns row i as a raw value (bookmark-style random access).
func (r *ColumnReader) Value(i int) sqltypes.Value {
	if r.IsNull(i) {
		return sqltypes.NewNull(r.Col.Typ)
	}
	return r.DecodeCode(r.codes[i])
}

// MaterializeInto decodes rows [start, start+n) into v, resizing it to n.
func (r *ColumnReader) MaterializeInto(v *vector.Vector, start, n int) {
	v.ClearCoded()
	v.Resize(n)
	if v.Nulls != nil {
		v.Nulls.Reset()
	}
	switch {
	case r.Meta.Enc == EncDict:
		for i := 0; i < n; i++ {
			v.Str[i] = r.dictValue(r.codes[start+i])
		}
	case r.Col.Typ == sqltypes.Float64:
		num := r.Meta.Numeric
		for i := 0; i < n; i++ {
			v.F64[i] = num.DecodeFloat(r.codes[start+i])
		}
	default:
		num := r.Meta.Numeric
		if num.Kind == encoding.NumOffset {
			base := num.Base
			for i := 0; i < n; i++ {
				v.I64[i] = int64(r.codes[start+i]) + base
			}
		} else {
			for i := 0; i < n; i++ {
				v.I64[i] = num.DecodeInt(r.codes[start+i])
			}
		}
	}
	if r.nulls != nil {
		for i := 0; i < n; i++ {
			if r.nulls.Get(start + i) {
				v.SetNull(i)
			}
		}
	}
}

// CodeRange translates a raw-domain range [lo, hi] (NULL = unbounded) into a
// code-domain range for monotonic numeric encodings, so a vectorized filter
// can compare codes directly without decoding. ok is false when the encoding
// is not order-preserving (raw floats, dictionaries) and the caller must
// evaluate on decoded values or use CodeSetMatching.
func (r *ColumnReader) CodeRange(lo, hi sqltypes.Value) (cLo, cHi uint64, ok bool) {
	if r.Meta.Enc != EncNumeric {
		return 0, 0, false
	}
	num := r.Meta.Numeric
	if num.Kind == encoding.NumFloatRaw {
		return 0, 0, false
	}
	cLo, cHi = 0, ^uint64(0)
	switch num.Kind {
	case encoding.NumFloatScaled:
		if !lo.Null {
			cLo = floatToCodeCeil(num, lo.AsFloat())
		}
		if !hi.Null {
			c, under := floatToCodeFloor(num, hi.AsFloat())
			if under {
				return 1, 0, true // hi below segment base: empty range
			}
			cHi = c
		}
	default: // NumOffset, NumScaled over int64 domain
		if !lo.Null {
			cLo = intToCodeCeil(num, loBoundInt(lo))
		}
		if !hi.Null {
			c, under := intToCodeFloor(num, hiBoundInt(hi))
			if under {
				return 1, 0, true // empty range
			}
			cHi = c
		}
	}
	if cLo > cHi {
		// Empty code range; signal via cLo>cHi which filters treat as no match.
		return 1, 0, true
	}
	return cLo, cHi, true
}

// loBoundInt converts a lower-bound value to int64, rounding up for floats.
func loBoundInt(v sqltypes.Value) int64 {
	if v.Typ == sqltypes.Float64 {
		f := v.F
		i := int64(f)
		if float64(i) < f {
			i++
		}
		return i
	}
	return v.I
}

// hiBoundInt converts an upper-bound value to int64, rounding down for floats.
func hiBoundInt(v sqltypes.Value) int64 {
	if v.Typ == sqltypes.Float64 {
		f := v.F
		i := int64(f)
		if float64(i) > f {
			i--
		}
		return i
	}
	return v.I
}

// intToCodeCeil returns the smallest code whose decoded value is >= v.
func intToCodeCeil(num encoding.NumericEncoding, v int64) uint64 {
	base := num.Base
	scaled := v
	if num.Kind == encoding.NumScaled {
		p := pow10i(int(num.Scale))
		// ceil division toward +inf
		q := v / p
		if q*p < v {
			q++
		}
		scaled = q
	}
	if scaled <= base {
		return 0
	}
	return uint64(scaled) - uint64(base)
}

// intToCodeFloor returns the largest code whose decoded value is <= v;
// under=true when v is below every encodable value.
func intToCodeFloor(num encoding.NumericEncoding, v int64) (uint64, bool) {
	base := num.Base
	scaled := v
	if num.Kind == encoding.NumScaled {
		p := pow10i(int(num.Scale))
		q := v / p
		if q*p > v {
			q--
		}
		scaled = q
	}
	if scaled < base {
		return 0, true
	}
	return uint64(scaled) - uint64(base), false
}

func floatToCodeCeil(num encoding.NumericEncoding, f float64) uint64 {
	m := pow10f(int(num.Scale))
	s := f * m
	i := int64(s)
	if float64(i) < s {
		i++
	}
	if i <= num.Base {
		return 0
	}
	return uint64(i) - uint64(num.Base)
}

func floatToCodeFloor(num encoding.NumericEncoding, f float64) (uint64, bool) {
	m := pow10f(int(num.Scale))
	s := f * m
	i := int64(s)
	if float64(i) > s {
		i--
	}
	if i < num.Base {
		return 0, true
	}
	return uint64(i) - uint64(num.Base), false
}

func pow10i(k int) int64 {
	p := int64(1)
	for ; k > 0; k-- {
		p *= 10
	}
	return p
}

func pow10f(k int) float64 {
	p := 1.0
	for ; k > 0; k-- {
		p *= 10
	}
	return p
}

// CodeSetMatching evaluates pred once per distinct dictionary entry and
// returns the set of matching codes as a bitmap over code space — the paper's
// trick of evaluating string predicates on compressed data: O(|dictionary|)
// evaluations instead of O(rows).
func (r *ColumnReader) CodeSetMatching(pred func(sqltypes.Value) bool) *bits.Bitmap {
	set := bits.New(int(r.Meta.DictCut) + 64)
	for id := uint32(0); id < r.Meta.DictCut; id++ {
		if pred(sqltypes.NewString(r.primaryVals[id])) {
			set.Set(int(id))
		}
	}
	for i, s := range r.localVals {
		if pred(sqltypes.NewString(s)) {
			set.Set(int(r.Meta.DictCut) + i)
		}
	}
	return set
}

// LookupCode returns the code for an exact string value if it appears in this
// segment's dictionaries. ok=false means no row of the segment can equal s.
func (r *ColumnReader) LookupCode(s string) (uint64, bool) {
	if r.primary != nil {
		if id, ok := r.primary.Lookup(s); ok && id < r.Meta.DictCut {
			return uint64(id), true
		}
	}
	if r.local != nil {
		if id, ok := r.local.Lookup(s); ok {
			return uint64(r.Meta.DictCut) + uint64(id), true
		}
	}
	return 0, false
}

// CanEmitCodes reports whether this segment's column can be emitted as
// primary-dictionary codes (late materialization). True for dict-encoded
// segments whose local dictionary, if any, remaps fully into the primary
// dictionary; false for numeric segments and for segments holding values the
// primary dictionary has never seen.
func (r *ColumnReader) CanEmitCodes() bool {
	if r.codedState == 0 {
		r.prepareCoded()
	}
	return r.codedState == 1
}

func (r *ColumnReader) prepareCoded() {
	r.codedState = 2
	if r.Meta.Enc != EncDict || r.primary == nil {
		return
	}
	if r.local == nil {
		r.codedState = 1
		return
	}
	// Remap local codes to primary ids. A local value may have entered the
	// primary dictionary after this segment was built (the dictionary only
	// grows); if every local value resolves, the whole segment can travel in
	// primary code space. Otherwise fall back to eager materialization.
	remap := make([]uint32, len(r.localVals))
	for i, s := range r.localVals {
		id, ok := r.primary.Lookup(s)
		if !ok {
			return
		}
		if int(id) >= len(r.primaryVals) {
			// The id postdates our snapshot; refresh — ids are stable, so the
			// new snapshot covers it and keeps every previously valid code.
			r.primaryVals = r.primary.SnapshotValues()
		}
		remap[i] = id
	}
	r.remap = remap
	r.codedState = 1
}

// GatherCodesInto fills v with primary-dictionary codes for the rows at idxs
// without decoding any string. The caller must have checked CanEmitCodes.
func (r *ColumnReader) GatherCodesInto(v *vector.Vector, idxs []int) {
	n := len(idxs)
	v.MakeCoded(r.primary, r.primaryVals, n)
	if v.Nulls != nil {
		v.Nulls.Reset()
	}
	cut := uint64(r.Meta.DictCut)
	if r.remap == nil {
		for i, j := range idxs {
			v.Codes[i] = r.codes[j]
		}
	} else {
		for i, j := range idxs {
			c := r.codes[j]
			if c >= cut {
				c = uint64(r.remap[c-cut])
			}
			v.Codes[i] = c
		}
	}
	if r.nulls != nil {
		for i, j := range idxs {
			if r.nulls.Get(j) {
				v.SetNull(i)
			}
		}
	}
}

// GatherInto decodes the rows at idxs (ascending physical positions) into v,
// resizing it to len(idxs). Vectorized scans use it to materialize only the
// rows that survived filtering on encoded data.
func (r *ColumnReader) GatherInto(v *vector.Vector, idxs []int) {
	n := len(idxs)
	v.ClearCoded()
	v.Resize(n)
	if v.Nulls != nil {
		v.Nulls.Reset()
	}
	switch {
	case r.Meta.Enc == EncDict:
		for i, j := range idxs {
			v.Str[i] = r.dictValue(r.codes[j])
		}
	case r.Col.Typ == sqltypes.Float64:
		num := r.Meta.Numeric
		for i, j := range idxs {
			v.F64[i] = num.DecodeFloat(r.codes[j])
		}
	default:
		num := r.Meta.Numeric
		if num.Kind == encoding.NumOffset {
			base := num.Base
			for i, j := range idxs {
				v.I64[i] = int64(r.codes[j]) + base
			}
		} else {
			for i, j := range idxs {
				v.I64[i] = num.DecodeInt(r.codes[j])
			}
		}
	}
	if r.nulls != nil {
		for i, j := range idxs {
			if r.nulls.Get(j) {
				v.SetNull(i)
			}
		}
	}
}
