package colstore

import "apollo/internal/metrics"

// Per-encoding segment-open counters and decode-time histograms. The decode
// timer wraps unmarshalPayload in OpenColumn — the point where at-rest bytes
// become a usable code stream — so the histogram isolates decode CPU from
// storage I/O (which Store.Get already accounts for).
var (
	mSegDict = metrics.Default.Counter(`apollo_colstore_segments_opened_total{enc="dict"}`,
		"column segments opened, by encoding")
	mSegNumeric = metrics.Default.Counter(`apollo_colstore_segments_opened_total{enc="numeric"}`,
		"column segments opened, by encoding")
	mDecodeDict = metrics.Default.Histogram(`apollo_colstore_decode_seconds{enc="dict"}`,
		"segment payload decode time, by encoding", nil)
	mDecodeNumeric = metrics.Default.Histogram(`apollo_colstore_decode_seconds{enc="numeric"}`,
		"segment payload decode time, by encoding", nil)
)
