package colstore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/vector"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "price", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "region", Typ: sqltypes.String},
		sqltypes.Column{Name: "d", Typ: sqltypes.Date},
	)
}

func makeRows(n int, seed int64) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"north", "south", "east", "west", "central"}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		price := sqltypes.NewFloat(float64(rng.Intn(10000)) / 100)
		if rng.Intn(20) == 0 {
			price = sqltypes.NewNull(sqltypes.Float64)
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			price,
			sqltypes.NewString(regions[rng.Intn(len(regions))]),
			sqltypes.NewDate(int64(8000 + rng.Intn(365))),
		}
	}
	return rows
}

func buildIndex(t *testing.T, rows []sqltypes.Row, opts Options) (*Index, *storage.Store) {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	idx := NewIndex(store, testSchema(), opts)
	bufs := BuffersFromRows(testSchema(), rows)
	if _, err := idx.CompressRowGroup(bufs); err != nil {
		t.Fatal(err)
	}
	return idx, store
}

// readAll materializes the full index back into rows via column readers,
// preserving physical order.
func readAll(t *testing.T, idx *Index) []sqltypes.Row {
	t.Helper()
	var out []sqltypes.Row
	for _, g := range idx.Groups() {
		readers := make([]*ColumnReader, idx.Schema.Len())
		for c := range readers {
			r, err := idx.OpenColumn(g, c)
			if err != nil {
				t.Fatal(err)
			}
			readers[c] = r
		}
		for i := 0; i < g.Rows; i++ {
			row := make(sqltypes.Row, len(readers))
			for c, r := range readers {
				row[c] = r.Value(i)
			}
			out = append(out, row)
		}
	}
	return out
}

func rowSetEqual(a, b []sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, r := range a {
		count[r.String()]++
	}
	for _, r := range b {
		count[r.String()]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestRoundTripNoReorder(t *testing.T) {
	rows := makeRows(5000, 1)
	opts := DefaultOptions()
	opts.Reorder = false
	idx, _ := buildIndex(t, rows, opts)
	got := readAll(t, idx)
	// Without reordering, physical order is insertion order.
	for i := range rows {
		if rows[i].String() != got[i].String() {
			t.Fatalf("row %d: got %v, want %v", i, got[i], rows[i])
		}
	}
}

func TestRoundTripWithReorder(t *testing.T) {
	rows := makeRows(5000, 2)
	idx, _ := buildIndex(t, rows, DefaultOptions())
	got := readAll(t, idx)
	if !rowSetEqual(rows, got) {
		t.Fatal("reordered round trip lost or mutated rows")
	}
}

func TestRoundTripArchival(t *testing.T) {
	rows := makeRows(3000, 3)
	opts := DefaultOptions()
	opts.Tier = storage.Archival
	idx, _ := buildIndex(t, rows, opts)
	got := readAll(t, idx)
	if !rowSetEqual(rows, got) {
		t.Fatal("archival round trip mismatch")
	}
}

func TestArchivalSmallerThanNormal(t *testing.T) {
	rows := makeRows(20000, 4)
	normal, _ := buildIndex(t, rows, DefaultOptions())
	archOpts := DefaultOptions()
	archOpts.Tier = storage.Archival
	arch, _ := buildIndex(t, rows, archOpts)
	if arch.DiskBytes() >= normal.DiskBytes() {
		t.Fatalf("archival %d >= normal %d", arch.DiskBytes(), normal.DiskBytes())
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	rows := makeRows(20000, 5)
	idx, _ := buildIndex(t, rows, DefaultOptions())
	if idx.DiskBytes() >= idx.RawBytes()/2 {
		t.Fatalf("weak compression: disk=%d raw=%d", idx.DiskBytes(), idx.RawBytes())
	}
}

func TestReorderImprovesCompression(t *testing.T) {
	rows := makeRows(20000, 6)
	opts := DefaultOptions()
	opts.Reorder = false
	plain, _ := buildIndex(t, rows, opts)
	reordered, _ := buildIndex(t, rows, DefaultOptions())
	if reordered.DiskBytes() >= plain.DiskBytes() {
		t.Fatalf("reorder did not help: %d >= %d", reordered.DiskBytes(), plain.DiskBytes())
	}
}

func TestSegmentMetadata(t *testing.T) {
	rows := makeRows(1000, 7)
	opts := DefaultOptions()
	opts.Reorder = false
	idx, _ := buildIndex(t, rows, opts)
	g := idx.Groups()[0]
	if g.Rows != 1000 {
		t.Fatalf("group rows = %d", g.Rows)
	}
	// id column: min 0, max 999, no nulls.
	seg := g.Segs[0]
	if seg.Min.I != 0 || seg.Max.I != 999 || seg.NullCount != 0 {
		t.Fatalf("id segment meta: min=%v max=%v nulls=%d", seg.Min, seg.Max, seg.NullCount)
	}
	// price column has some nulls.
	if g.Segs[1].NullCount == 0 {
		t.Fatal("price segment should have nulls")
	}
	// region column: dictionary encoded.
	if g.Segs[2].Enc != EncDict {
		t.Fatal("region should be dictionary encoded")
	}
}

func TestCanMatchRange(t *testing.T) {
	m := &SegmentMeta{Min: sqltypes.NewInt(100), Max: sqltypes.NewInt(200)}
	null := sqltypes.NewNull(sqltypes.Int64)
	cases := []struct {
		lo, hi sqltypes.Value
		want   bool
	}{
		{sqltypes.NewInt(150), sqltypes.NewInt(160), true},
		{sqltypes.NewInt(201), null, false},
		{null, sqltypes.NewInt(99), false},
		{sqltypes.NewInt(200), null, true},
		{null, sqltypes.NewInt(100), true},
		{null, null, true},
	}
	for _, c := range cases {
		if got := m.CanMatchRange(c.lo, c.hi); got != c.want {
			t.Errorf("CanMatchRange(%v, %v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	allNull := &SegmentMeta{Min: null, Max: null}
	if allNull.CanMatchRange(null, null) {
		t.Error("all-NULL segment must never match a range predicate")
	}
}

func TestCodeRangeMonotonic(t *testing.T) {
	rows := makeRows(2000, 8)
	opts := DefaultOptions()
	opts.Reorder = false
	idx, _ := buildIndex(t, rows, opts)
	g := idx.Groups()[0]
	r, err := idx.OpenColumn(g, 0) // id column
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sqltypes.NewInt(500), sqltypes.NewInt(600)
	cLo, cHi, ok := r.CodeRange(lo, hi)
	if !ok {
		t.Fatal("expected monotonic code range")
	}
	for i := 0; i < r.Len(); i++ {
		code := r.Codes()[i]
		inCode := code >= cLo && code <= cHi
		v := r.Value(i)
		inRaw := v.I >= 500 && v.I <= 600
		if inCode != inRaw {
			t.Fatalf("row %d: code-range %v, raw-range %v (v=%v)", i, inCode, inRaw, v)
		}
	}
}

func TestCodeSetMatching(t *testing.T) {
	rows := makeRows(2000, 9)
	opts := DefaultOptions()
	opts.Reorder = false
	idx, _ := buildIndex(t, rows, opts)
	g := idx.Groups()[0]
	r, err := idx.OpenColumn(g, 2) // region
	if err != nil {
		t.Fatal(err)
	}
	set := r.CodeSetMatching(func(v sqltypes.Value) bool { return strings.HasPrefix(v.S, "s") })
	for i := 0; i < r.Len(); i++ {
		want := strings.HasPrefix(r.Value(i).S, "s")
		if got := set.Get(int(r.Codes()[i])); got != want {
			t.Fatalf("row %d: codeset %v, want %v", i, got, want)
		}
	}
}

func TestLookupCode(t *testing.T) {
	rows := makeRows(500, 10)
	opts := DefaultOptions()
	opts.Reorder = false
	idx, _ := buildIndex(t, rows, opts)
	r, err := idx.OpenColumn(idx.Groups()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	code, ok := r.LookupCode("north")
	if !ok {
		t.Fatal("north missing from dictionary")
	}
	if got := r.DecodeCode(code); got.S != "north" {
		t.Fatalf("decode = %v", got)
	}
	if _, ok := r.LookupCode("atlantis"); ok {
		t.Fatal("phantom dictionary entry")
	}
}

func TestLocalDictionaryOverflow(t *testing.T) {
	// Cap the primary dictionary tiny so later values overflow to local.
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "s", Typ: sqltypes.String})
	opts := DefaultOptions()
	opts.PrimaryDictCap = 3
	opts.Reorder = false
	idx := NewIndex(store, schema, opts)
	var rows []sqltypes.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewString(fmt.Sprintf("val-%d", i%10))})
	}
	g, err := idx.CompressRowGroup(BuffersFromRows(schema, rows))
	if err != nil {
		t.Fatal(err)
	}
	if g.Segs[0].LocalDict == 0 {
		t.Fatal("expected a local dictionary")
	}
	r, err := idx.OpenColumn(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("val-%d", i%10)
		if got := r.Value(i).S; got != want {
			t.Fatalf("row %d: got %q, want %q", i, got, want)
		}
	}
	// Overflow values must still be findable via LookupCode.
	if _, ok := r.LookupCode("val-7"); !ok {
		t.Fatal("local value not found by LookupCode")
	}
}

func TestMaterializeInto(t *testing.T) {
	rows := makeRows(1000, 11)
	opts := DefaultOptions()
	opts.Reorder = false
	idx, _ := buildIndex(t, rows, opts)
	g := idx.Groups()[0]
	for c := 0; c < idx.Schema.Len(); c++ {
		r, err := idx.OpenColumn(g, c)
		if err != nil {
			t.Fatal(err)
		}
		v := vector.NewVector(idx.Schema.Cols[c].Typ, 0)
		r.MaterializeInto(v, 100, 50)
		for i := 0; i < 50; i++ {
			want := rows[100+i][c]
			got := v.Value(i)
			if want.Null != got.Null || (!want.Null && sqltypes.Compare(want, got) != 0) {
				t.Fatalf("col %d row %d: got %v, want %v", c, i, got, want)
			}
		}
	}
}

func TestRemoveGroupFreesStorage(t *testing.T) {
	rows := makeRows(2000, 12)
	idx, store := buildIndex(t, rows, DefaultOptions())
	before := store.SizeOnDisk()
	if before == 0 {
		t.Fatal("no storage used")
	}
	id := idx.Groups()[0].ID
	if !idx.RemoveGroup(id) {
		t.Fatal("remove failed")
	}
	if got := store.SizeOnDisk(); got != 0 {
		t.Fatalf("storage not freed: %d of %d", got, before)
	}
	if idx.Rows() != 0 || len(idx.Groups()) != 0 {
		t.Fatal("directory not empty")
	}
	if idx.RemoveGroup(id) {
		t.Fatal("double remove succeeded")
	}
}

func TestMultipleRowGroups(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	idx := NewIndex(store, testSchema(), DefaultOptions())
	for g := 0; g < 3; g++ {
		rows := makeRows(1000, int64(100+g))
		if _, err := idx.CompressRowGroup(BuffersFromRows(testSchema(), rows)); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Rows() != 3000 {
		t.Fatalf("Rows = %d", idx.Rows())
	}
	ids := map[int]bool{}
	for _, g := range idx.Groups() {
		if ids[g.ID] {
			t.Fatal("duplicate group id")
		}
		ids[g.ID] = true
	}
}

func TestCompressRowGroupErrors(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	idx := NewIndex(store, testSchema(), DefaultOptions())
	if _, err := idx.CompressRowGroup(nil); err == nil {
		t.Fatal("wrong buffer count accepted")
	}
	bufs := BuffersFromRows(testSchema(), nil)
	if _, err := idx.CompressRowGroup(bufs); err == nil {
		t.Fatal("empty row group accepted")
	}
	bufs = BuffersFromRows(testSchema(), makeRows(10, 1))
	bufs[1].Append(sqltypes.NewFloat(1)) // ragged
	if _, err := idx.CompressRowGroup(bufs); err == nil {
		t.Fatal("ragged buffers accepted")
	}
}

func TestSortedColumnUsesRLE(t *testing.T) {
	// A sorted, low-cardinality column should compress with RLE.
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "k", Typ: sqltypes.Int64})
	opts := DefaultOptions()
	opts.Reorder = false
	idx := NewIndex(store, schema, opts)
	var rows []sqltypes.Row
	for i := 0; i < 10000; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i / 1000))})
	}
	g, err := idx.CompressRowGroup(BuffersFromRows(schema, rows))
	if err != nil {
		t.Fatal(err)
	}
	if g.Segs[0].Comp != CompRLE {
		t.Fatalf("expected RLE, got %v", g.Segs[0].Comp)
	}
	if g.DiskBytes() > 200 {
		t.Fatalf("RLE segment suspiciously large: %d bytes", g.DiskBytes())
	}
}
