package colstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"apollo/internal/encoding"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Serialization of the segment directory for the WAL and checkpoint images.
// Segment payload blobs are durable on their own (the blob store writes
// through to disk), so a group-publish record or checkpoint entry carries
// only metadata: row counts, min/max bounds, encodings, and blob ids — plus
// the primary-dictionary values the build appended, which otherwise live
// only in memory.

// appendValue serializes one sqltypes.Value.
func appendValue(dst []byte, v sqltypes.Value) []byte {
	dst = append(dst, byte(v.Typ))
	if v.Null {
		return append(dst, 1)
	}
	dst = append(dst, 0)
	switch v.Typ {
	case sqltypes.String:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	case sqltypes.Float64:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	default:
		dst = binary.AppendVarint(dst, v.I)
	}
	return dst
}

// readValue decodes one value, returning the bytes consumed.
func readValue(buf []byte) (sqltypes.Value, int, error) {
	if len(buf) < 2 {
		return sqltypes.Value{}, 0, fmt.Errorf("colstore: truncated value")
	}
	v := sqltypes.Value{Typ: sqltypes.Type(buf[0]), Null: buf[1] == 1}
	pos := 2
	if v.Null {
		return v, pos, nil
	}
	switch v.Typ {
	case sqltypes.String:
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 || l > uint64(len(buf)-pos-n) {
			return v, 0, fmt.Errorf("colstore: bad string value length")
		}
		pos += n
		v.S = string(buf[pos : pos+int(l)])
		pos += int(l)
	case sqltypes.Float64:
		if pos+8 > len(buf) {
			return v, 0, fmt.Errorf("colstore: truncated float value")
		}
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	default:
		i, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return v, 0, fmt.Errorf("colstore: bad int value")
		}
		v.I = i
		pos += n
	}
	return v, pos, nil
}

func appendSegmentMeta(dst []byte, m *SegmentMeta) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Rows))
	dst = binary.AppendUvarint(dst, uint64(m.NullCount))
	dst = appendValue(dst, m.Min)
	dst = appendValue(dst, m.Max)
	dst = append(dst, byte(m.Enc), byte(m.Numeric.Kind))
	dst = binary.AppendVarint(dst, m.Numeric.Base)
	dst = append(dst, byte(m.Numeric.Scale))
	dst = binary.AppendUvarint(dst, uint64(m.DictCut))
	dst = append(dst, byte(m.Comp))
	dst = binary.AppendUvarint(dst, uint64(m.Blob))
	dst = binary.AppendUvarint(dst, uint64(m.LocalDict))
	dst = binary.AppendUvarint(dst, uint64(m.DiskBytes))
	dst = binary.AppendUvarint(dst, uint64(m.RawBytes))
	return dst
}

func readSegmentMeta(buf []byte) (SegmentMeta, int, error) {
	var m SegmentMeta
	pos := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("colstore: truncated segment meta")
		}
		pos += n
		return v, nil
	}
	rows, err := uv()
	if err != nil {
		return m, 0, err
	}
	nulls, err := uv()
	if err != nil {
		return m, 0, err
	}
	m.Rows, m.NullCount = int(rows), int(nulls)
	var vn int
	if m.Min, vn, err = readValue(buf[pos:]); err != nil {
		return m, 0, err
	}
	pos += vn
	if m.Max, vn, err = readValue(buf[pos:]); err != nil {
		return m, 0, err
	}
	pos += vn
	if pos+2 > len(buf) {
		return m, 0, fmt.Errorf("colstore: truncated segment meta")
	}
	m.Enc = EncKind(buf[pos])
	m.Numeric.Kind = encoding.NumKind(buf[pos+1])
	pos += 2
	base, n := binary.Varint(buf[pos:])
	if n <= 0 {
		return m, 0, fmt.Errorf("colstore: truncated segment meta")
	}
	m.Numeric.Base = base
	pos += n
	if pos >= len(buf) {
		return m, 0, fmt.Errorf("colstore: truncated segment meta")
	}
	m.Numeric.Scale = int8(buf[pos])
	pos++
	cut, err := uv()
	if err != nil {
		return m, 0, err
	}
	m.DictCut = uint32(cut)
	if pos >= len(buf) {
		return m, 0, fmt.Errorf("colstore: truncated segment meta")
	}
	m.Comp = CompKind(buf[pos])
	pos++
	blob, err := uv()
	if err != nil {
		return m, 0, err
	}
	local, err := uv()
	if err != nil {
		return m, 0, err
	}
	disk, err := uv()
	if err != nil {
		return m, 0, err
	}
	raw, err := uv()
	if err != nil {
		return m, 0, err
	}
	m.Blob = storage.BlobID(blob)
	m.LocalDict = storage.BlobID(local)
	m.DiskBytes, m.RawBytes = int(disk), int(raw)
	return m, pos, nil
}

// AppendRowGroup serializes a row group directory entry.
func AppendRowGroup(dst []byte, g *RowGroup) []byte {
	dst = binary.AppendUvarint(dst, uint64(g.ID))
	dst = binary.AppendUvarint(dst, uint64(g.Rows))
	dst = binary.AppendUvarint(dst, uint64(len(g.Segs)))
	for i := range g.Segs {
		dst = appendSegmentMeta(dst, &g.Segs[i])
	}
	return dst
}

// ReadRowGroup decodes a row group entry, returning the bytes consumed.
func ReadRowGroup(buf []byte) (*RowGroup, int, error) {
	pos := 0
	id, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("colstore: truncated row group")
	}
	pos += n
	rows, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("colstore: truncated row group")
	}
	pos += n
	nsegs, n := binary.Uvarint(buf[pos:])
	if n <= 0 || nsegs > 1<<20 {
		return nil, 0, fmt.Errorf("colstore: bad segment count")
	}
	pos += n
	g := &RowGroup{ID: int(id), Rows: int(rows), Segs: make([]SegmentMeta, nsegs)}
	for i := range g.Segs {
		m, n, err := readSegmentMeta(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		g.Segs[i] = m
		pos += n
	}
	return g, pos, nil
}

// DictAppend records the primary-dictionary growth of one string column
// during a row-group build: the dictionary had Prev entries before the build
// and Vals were appended (ids Prev..Prev+len(Vals)-1).
type DictAppend struct {
	Col  int
	Prev int
	Vals []string
}

// Publish is the payload of a group-publish WAL record: the new group's
// directory entry, the dictionary entries its build added, and the tuple ids
// already deleted at publish time (deletes that arrived while the tuple mover
// compressed the source delta store). Deletes ride in the publish record
// because the two must be one atomic log append: a crash between a durable
// publish and separately-logged delete-bitmap records would replay the
// publish (dropping the delta store) and resurrect the acknowledged deletes.
type Publish struct {
	Group   *RowGroup
	Dicts   []DictAppend
	Deletes []int
}

// MarshalPublish serializes a publish payload.
func MarshalPublish(p *Publish) []byte {
	dst := AppendRowGroup(nil, p.Group)
	dst = binary.AppendUvarint(dst, uint64(len(p.Dicts)))
	for _, da := range p.Dicts {
		dst = binary.AppendUvarint(dst, uint64(da.Col))
		dst = binary.AppendUvarint(dst, uint64(da.Prev))
		dst = binary.AppendUvarint(dst, uint64(len(da.Vals)))
		for _, v := range da.Vals {
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(p.Deletes)))
	for _, tid := range p.Deletes {
		dst = binary.AppendUvarint(dst, uint64(tid))
	}
	return dst
}

// UnmarshalPublish decodes a publish payload.
func UnmarshalPublish(buf []byte) (*Publish, error) {
	g, pos, err := ReadRowGroup(buf)
	if err != nil {
		return nil, err
	}
	nd, n := binary.Uvarint(buf[pos:])
	if n <= 0 || nd > 1<<20 {
		return nil, fmt.Errorf("colstore: bad dict-append count")
	}
	pos += n
	p := &Publish{Group: g, Dicts: make([]DictAppend, 0, nd)}
	for i := uint64(0); i < nd; i++ {
		var da DictAppend
		col, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("colstore: truncated dict append")
		}
		pos += n
		prev, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("colstore: truncated dict append")
		}
		pos += n
		nv, n := binary.Uvarint(buf[pos:])
		if n <= 0 || nv > 1<<24 {
			return nil, fmt.Errorf("colstore: bad dict value count")
		}
		pos += n
		da.Col, da.Prev = int(col), int(prev)
		da.Vals = make([]string, 0, nv)
		for j := uint64(0); j < nv; j++ {
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 || l > uint64(len(buf)-pos-n) {
				return nil, fmt.Errorf("colstore: truncated dict value")
			}
			pos += n
			da.Vals = append(da.Vals, string(buf[pos:pos+int(l)]))
			pos += int(l)
		}
		p.Dicts = append(p.Dicts, da)
	}
	if pos < len(buf) {
		ndel, n := binary.Uvarint(buf[pos:])
		if n <= 0 || ndel > uint64(g.Rows) {
			return nil, fmt.Errorf("colstore: bad publish delete count")
		}
		pos += n
		p.Deletes = make([]int, 0, ndel)
		for i := uint64(0); i < ndel; i++ {
			tid, n := binary.Uvarint(buf[pos:])
			if n <= 0 || tid >= uint64(g.Rows) {
				return nil, fmt.Errorf("colstore: bad publish delete tuple id")
			}
			pos += n
			p.Deletes = append(p.Deletes, int(tid))
		}
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("colstore: %d trailing bytes in publish payload", len(buf)-pos)
	}
	return p, nil
}
