package colstore

import (
	"fmt"
	"sync"

	"apollo/internal/encoding"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Options configure a columnstore index.
type Options struct {
	// Tier selects at-rest compression of segments (None or Archival) —
	// COLUMNSTORE vs COLUMNSTORE_ARCHIVE in the paper's §3.
	Tier storage.Compression
	// Reorder enables row reordering within each row group before
	// compression (§2.2 run-optimization). On by default via DefaultOptions.
	Reorder bool
	// PrimaryDictCap bounds the number of entries admitted to each column's
	// primary dictionary; overflow values go to per-segment local
	// dictionaries.
	PrimaryDictCap int
	// BuildParallel is the number of concurrent per-column segment encoders
	// used when compressing a row group (<=1 = serial). Safe because each
	// column's build touches only its own buffer and primary dictionary, and
	// the blob store serializes Puts internally; the bulk loader sets it from
	// the engine's DOP so wide tables compress columns side by side.
	BuildParallel int
}

// DefaultOptions returns the standard index configuration.
func DefaultOptions() Options {
	return Options{Tier: storage.None, Reorder: true, PrimaryDictCap: 1 << 20}
}

// RowGroup is a directory entry for one compressed row group: one segment per
// column plus the row count.
type RowGroup struct {
	ID   int
	Rows int
	Segs []SegmentMeta
}

// DiskBytes totals the at-rest bytes of the group's segments.
func (g *RowGroup) DiskBytes() int {
	n := 0
	for i := range g.Segs {
		n += g.Segs[i].DiskBytes
	}
	return n
}

// RawBytes totals the uncompressed logical bytes of the group's columns.
func (g *RowGroup) RawBytes() int {
	n := 0
	for i := range g.Segs {
		n += g.Segs[i].RawBytes
	}
	return n
}

// Index is the compressed portion of a clustered columnstore: the segment
// directory (row groups and their segments) plus per-column primary
// dictionaries. Delta stores and the delete bitmap live in the table layer.
// Index is safe for concurrent use: scans snapshot the group list while the
// tuple mover appends or removes groups.
type Index struct {
	Schema *sqltypes.Schema
	Opts   Options

	store *storage.Store

	mu        sync.RWMutex
	primaries []*encoding.Dict // per column; nil for non-string columns
	groups    []*RowGroup
	nextID    int
}

// NewIndex creates an empty columnstore index over schema.
func NewIndex(store *storage.Store, schema *sqltypes.Schema, opts Options) *Index {
	idx := &Index{Schema: schema, Opts: opts, store: store, primaries: make([]*encoding.Dict, schema.Len())}
	for i, c := range schema.Cols {
		if c.Typ == sqltypes.String {
			idx.primaries[i] = encoding.NewDict()
		}
	}
	return idx
}

// Store exposes the underlying blob store.
func (x *Index) Store() *storage.Store { return x.store }

// Primary returns the primary dictionary of column i (nil for non-strings).
func (x *Index) Primary(i int) *encoding.Dict {
	return x.primaries[i]
}

// CompressRowGroup encodes and compresses one row group from column buffers
// (all of equal length, matching the schema) and appends it to the directory.
// Concurrent CompressRowGroup calls are not supported (the tuple mover is the
// single compressor); concurrent readers are safe.
func (x *Index) CompressRowGroup(bufs []*ColumnBuf) (*RowGroup, error) {
	g, _, err := x.CompressRowGroupWithPerm(bufs)
	return g, err
}

// CompressRowGroupWithPerm is CompressRowGroup but also returns the row
// permutation applied by reordering (nil when rows kept their input order).
// perm maps new position -> old position; the tuple mover uses it to replay
// buffered deletes onto the new row group.
func (x *Index) CompressRowGroupWithPerm(bufs []*ColumnBuf) (*RowGroup, []int, error) {
	g, perm, err := x.BuildRowGroup(bufs)
	if err != nil {
		return nil, nil, err
	}
	x.PublishGroup(g)
	return g, perm, nil
}

// BuildRowGroup compresses a row group without publishing it to the segment
// directory. The tuple mover builds outside the table lock, then publishes
// under the lock so a query snapshot never sees a row in both the new group
// and its source delta store.
func (x *Index) BuildRowGroup(bufs []*ColumnBuf) (*RowGroup, []int, error) {
	if len(bufs) != x.Schema.Len() {
		return nil, nil, fmt.Errorf("colstore: %d buffers for %d columns", len(bufs), x.Schema.Len())
	}
	rows := bufs[0].Len()
	for i, b := range bufs {
		if b.Len() != rows {
			return nil, nil, fmt.Errorf("colstore: column %d has %d rows, want %d", i, b.Len(), rows)
		}
	}
	if rows == 0 {
		return nil, nil, fmt.Errorf("colstore: empty row group")
	}

	// Row reordering: compute per-column codes cheaply (pre-pass) to choose a
	// permutation, then build segments in the permuted order. The pre-pass
	// reuses the same encoders the build uses, so the permutation reflects
	// real code streams.
	var perm []int
	if x.Opts.Reorder {
		perm = x.reorderPerm(bufs)
	}

	g := &RowGroup{Rows: rows, Segs: make([]SegmentMeta, len(bufs))}
	workers := x.Opts.BuildParallel
	if workers > len(bufs) {
		workers = len(bufs)
	}
	if workers <= 1 {
		for i, b := range bufs {
			primary := x.primaries[i]
			meta, err := buildSegment(x.store, x.Opts.Tier, x.Schema.Cols[i], b, primaryOrDummy(primary), x.Opts.PrimaryDictCap, perm)
			if err != nil {
				return nil, nil, err
			}
			g.Segs[i] = meta
		}
		return g, perm, nil
	}

	// Parallel build: columns are independent (distinct buffers, distinct
	// primary dictionaries, perm is read-only, the store's Put is
	// mutex-guarded), so encode them on a bounded worker pool and keep the
	// first error.
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		errs = make([]error, len(bufs))
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				meta, err := buildSegment(x.store, x.Opts.Tier, x.Schema.Cols[i], bufs[i], primaryOrDummy(x.primaries[i]), x.Opts.PrimaryDictCap, perm)
				if err != nil {
					errs[i] = err
					continue
				}
				g.Segs[i] = meta
			}
		}()
	}
	for i := range bufs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return g, perm, nil
}

// PublishGroup assigns the group an id and appends it to the directory,
// making it visible to scans.
func (x *Index) PublishGroup(g *RowGroup) {
	x.mu.Lock()
	g.ID = x.nextID
	x.nextID++
	x.groups = append(x.groups, g)
	x.mu.Unlock()
}

// NextGroupID returns the id the next published group will receive. The
// durable write path peeks it so the publish WAL record can carry the id the
// group will actually get (the peek and the publish happen under the table
// lock, so no other publish can slip between).
func (x *Index) NextGroupID() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.nextID
}

// RestoreGroup appends a group honoring its preassigned ID, advancing the
// id counter past it. Idempotent: a group whose id is already in the
// directory is ignored (false), which makes WAL replay over a checkpoint
// image that already contains the group a no-op.
func (x *Index) RestoreGroup(g *RowGroup) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, e := range x.groups {
		if e.ID == g.ID {
			return false
		}
	}
	x.groups = append(x.groups, g)
	if g.ID >= x.nextID {
		x.nextID = g.ID + 1
	}
	return true
}

// RestorePrimary replaces column col's primary dictionary (recovery path;
// not safe concurrent with scans).
func (x *Index) RestorePrimary(col int, d *encoding.Dict) {
	x.primaries[col] = d
}

// SetNextGroupID raises the next group id to at least id (restore path;
// keeps retired ids retired across a checkpoint/restore cycle).
func (x *Index) SetNextGroupID(id int) {
	x.mu.Lock()
	if id > x.nextID {
		x.nextID = id
	}
	x.mu.Unlock()
}

// primaryOrDummy guarantees buildSegment a non-nil dictionary for string
// columns; non-string columns never touch it.
func primaryOrDummy(d *encoding.Dict) *encoding.Dict {
	if d != nil {
		return d
	}
	return dummyDict
}

var dummyDict = encoding.NewDict()

// reorderPerm computes a shared row permutation from provisional code streams.
func (x *Index) reorderPerm(bufs []*ColumnBuf) []int {
	cols := make([][]uint64, 0, len(bufs))
	for i, b := range bufs {
		var codes []uint64
		switch x.Schema.Cols[i].Typ {
		case sqltypes.String:
			// Provisional codes from a throwaway dictionary: ordering by
			// these ids groups equal values, which is all Reorder needs.
			d := encoding.NewDict()
			codes = make([]uint64, b.Len())
			for j, s := range b.Str {
				if b.Nulls != nil && b.Nulls.Get(j) {
					continue
				}
				codes[j] = uint64(d.Add(s))
			}
		case sqltypes.Float64:
			_, codes = encoding.AnalyzeFloats(b.F64, b.Nulls)
		default:
			_, codes = encoding.AnalyzeInts(b.I64, b.Nulls)
		}
		cols = append(cols, codes)
	}
	return encoding.Reorder(cols)
}

// Groups returns a snapshot of the current row-group directory.
func (x *Index) Groups() []*RowGroup {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]*RowGroup, len(x.groups))
	copy(out, x.groups)
	return out
}

// Group returns the row group with the given id, or nil.
func (x *Index) Group(id int) *RowGroup {
	x.mu.RLock()
	defer x.mu.RUnlock()
	for _, g := range x.groups {
		if g.ID == id {
			return g
		}
	}
	return nil
}

// RemoveGroup drops a row group from the directory and deletes its blobs
// (a REBUILD/merge tombstone transitioning to removal).
func (x *Index) RemoveGroup(id int) bool {
	x.mu.Lock()
	var victim *RowGroup
	for i, g := range x.groups {
		if g.ID == id {
			victim = g
			x.groups = append(x.groups[:i], x.groups[i+1:]...)
			break
		}
	}
	x.mu.Unlock()
	if victim == nil {
		return false
	}
	for i := range victim.Segs {
		x.store.Delete(victim.Segs[i].Blob)
		if victim.Segs[i].LocalDict != 0 {
			x.store.Delete(victim.Segs[i].LocalDict)
		}
	}
	return true
}

// OpenColumn opens column col of row group g for reading.
func (x *Index) OpenColumn(g *RowGroup, col int) (*ColumnReader, error) {
	return OpenColumn(x.store, &g.Segs[col], x.Schema.Cols[col], x.primaries[col])
}

// Rows totals the rows across all compressed row groups.
func (x *Index) Rows() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := 0
	for _, g := range x.groups {
		n += g.Rows
	}
	return n
}

// DiskBytes totals at-rest segment bytes plus serialized primary dictionaries
// — the numerator of the compression-ratio experiments.
func (x *Index) DiskBytes() int {
	x.mu.RLock()
	groups := append([]*RowGroup(nil), x.groups...)
	x.mu.RUnlock()
	n := 0
	for _, g := range groups {
		n += g.DiskBytes()
	}
	for _, d := range x.primaries {
		if d != nil {
			n += len(d.Marshal(nil))
		}
	}
	return n
}

// RawBytes totals uncompressed logical bytes across all row groups.
func (x *Index) RawBytes() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := 0
	for _, g := range x.groups {
		n += g.RawBytes()
	}
	return n
}
