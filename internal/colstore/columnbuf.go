// Package colstore implements the paper's column store index storage (§2):
// rows are divided into row groups of about a million rows; each column of a
// row group is compressed into a column segment. Segments carry min/max
// metadata for segment elimination and are stored as blobs in the storage
// substrate, optionally under the archival (DEFLATE) tier. String columns use
// a table-wide primary dictionary plus per-segment local dictionaries; numeric
// columns use value-based encoding; each segment is then compressed with RLE
// or bit-packing, whichever is smaller, optionally after row reordering.
package colstore

import (
	"fmt"

	"apollo/internal/bits"
	"apollo/internal/sqltypes"
)

// ColumnBuf accumulates uncompressed values for one column of a row group
// under construction (during bulk load, or while the tuple mover drains a
// delta store).
type ColumnBuf struct {
	Typ   sqltypes.Type
	I64   []int64
	F64   []float64
	Str   []string
	Nulls *bits.Bitmap
	n     int
}

// NewColumnBuf returns an empty buffer for the given type.
func NewColumnBuf(t sqltypes.Type) *ColumnBuf { return &ColumnBuf{Typ: t} }

// Len returns the number of buffered values.
func (c *ColumnBuf) Len() int { return c.n }

// Append adds a value (which must match the buffer's type or be NULL).
func (c *ColumnBuf) Append(v sqltypes.Value) {
	i := c.n
	c.n++
	switch c.Typ {
	case sqltypes.Float64:
		c.F64 = append(c.F64, v.F)
	case sqltypes.String:
		c.Str = append(c.Str, v.S)
	default:
		c.I64 = append(c.I64, v.I)
	}
	if v.Null {
		if c.Nulls == nil {
			c.Nulls = bits.New(i + 1)
		}
		c.Nulls.Set(i)
	}
}

// Value returns the i'th buffered value.
func (c *ColumnBuf) Value(i int) sqltypes.Value {
	if c.Nulls != nil && c.Nulls.Get(i) {
		return sqltypes.NewNull(c.Typ)
	}
	switch c.Typ {
	case sqltypes.Float64:
		return sqltypes.Value{Typ: c.Typ, F: c.F64[i]}
	case sqltypes.String:
		return sqltypes.Value{Typ: c.Typ, S: c.Str[i]}
	default:
		return sqltypes.Value{Typ: c.Typ, I: c.I64[i]}
	}
}

// BuffersFromRows converts rows matching schema into one ColumnBuf per column.
func BuffersFromRows(schema *sqltypes.Schema, rows []sqltypes.Row) []*ColumnBuf {
	bufs := make([]*ColumnBuf, schema.Len())
	for i, col := range schema.Cols {
		bufs[i] = NewColumnBuf(col.Typ)
	}
	for _, r := range rows {
		if len(r) != schema.Len() {
			panic(fmt.Sprintf("colstore: row width %d, schema width %d", len(r), schema.Len()))
		}
		for i := range bufs {
			bufs[i].Append(r[i])
		}
	}
	return bufs
}
