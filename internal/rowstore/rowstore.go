// Package rowstore is the row-organized baseline the paper compares against:
// a heap table of slotted pages with three compression levels mirroring SQL
// Server's options — NONE (fixed-width fields), ROW (variable-length/varint
// encoding), and PAGE (row compression plus a per-page dictionary for string
// columns). Pages live in the storage substrate so scans pay the same
// accounted I/O as columnstore segments.
package rowstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

// Compression is the row-store compression level.
type Compression uint8

// Row-store compression levels.
const (
	None Compression = iota // fixed-width fields, strings inline
	Row                     // varint fields, null bitmap (ROW compression)
	Page                    // Row + per-page string dictionary (PAGE compression)
)

func (c Compression) String() string {
	switch c {
	case Row:
		return "ROW"
	case Page:
		return "PAGE"
	default:
		return "NONE"
	}
}

// PageSizeBytes is the target page payload size (8 KB, like SQL Server).
const PageSizeBytes = 8 << 10

// Table is a heap row-store table.
type Table struct {
	Name   string
	Schema *sqltypes.Schema
	Comp   Compression

	store    *storage.Store
	pages    []storage.BlobID
	pageRows []int
	rows     int

	// Open page under construction.
	curRows []sqltypes.Row
	curSize int
}

// New creates an empty row-store table.
func New(store *storage.Store, name string, schema *sqltypes.Schema, comp Compression) *Table {
	return &Table{Name: name, Schema: schema, Comp: comp, store: store}
}

// Append adds one row, flushing a page when it fills.
func (t *Table) Append(row sqltypes.Row) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("rowstore %s: row width %d, want %d", t.Name, len(row), t.Schema.Len())
	}
	t.curRows = append(t.curRows, row.Clone())
	t.curSize += t.estRowSize(row)
	if t.curSize >= PageSizeBytes {
		return t.Flush()
	}
	return nil
}

// AppendMany adds rows, then flushes the final partial page.
func (t *Table) AppendMany(rows []sqltypes.Row) error {
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			return err
		}
	}
	return t.Flush()
}

func (t *Table) estRowSize(row sqltypes.Row) int {
	n := 0
	for _, v := range row {
		if v.Typ == sqltypes.String {
			n += len(v.S) + 2
		} else {
			n += 8
		}
	}
	return n
}

// Flush writes the open page to storage.
func (t *Table) Flush() error {
	if len(t.curRows) == 0 {
		return nil
	}
	payload := encodePage(t.Schema, t.curRows, t.Comp)
	id, err := t.store.Put(payload, storage.None)
	if err != nil {
		return fmt.Errorf("rowstore %s: flush page: %w", t.Name, err)
	}
	t.pages = append(t.pages, id)
	t.pageRows = append(t.pageRows, len(t.curRows))
	t.rows += len(t.curRows)
	t.curRows = t.curRows[:0]
	t.curSize = 0
	return nil
}

// Rows returns the number of rows (flushed + open page).
func (t *Table) Rows() int { return t.rows + len(t.curRows) }

// Pages returns the number of flushed pages.
func (t *Table) Pages() int { return len(t.pages) }

// DiskBytes totals the at-rest size of flushed pages.
func (t *Table) DiskBytes() int {
	total := 0
	for _, id := range t.pages {
		d, _, _ := t.store.SizeOf(id)
		total += d
	}
	return total
}

// Scan calls fn for every row in heap order (flushed pages, then the open
// page). fn returning false stops the scan.
func (t *Table) Scan(fn func(sqltypes.Row) bool) error {
	row := make(sqltypes.Row, t.Schema.Len())
	for pi, id := range t.pages {
		payload, err := t.store.Get(id)
		if err != nil {
			return fmt.Errorf("rowstore %s: read page %d: %w", t.Name, pi, err)
		}
		stop, err := decodePage(t.Schema, payload, t.Comp, row, fn)
		if err != nil {
			return fmt.Errorf("rowstore %s: page %d: %w", t.Name, pi, err)
		}
		if stop {
			return nil
		}
	}
	for _, r := range t.curRows {
		copy(row, r)
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// --- Page codec ---

// encodePage serializes rows at the given compression level.
//
// Layout: uvarint nrows, then (Page only) a string dictionary, then rows.
func encodePage(schema *sqltypes.Schema, rows []sqltypes.Row, comp Compression) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(rows)))

	var dict map[string]uint64
	if comp == Page {
		// Per-page dictionary over all string values, in first-seen order.
		dict = make(map[string]uint64)
		var vals []string
		for _, r := range rows {
			for ci, col := range schema.Cols {
				if col.Typ != sqltypes.String || r[ci].Null {
					continue
				}
				if _, ok := dict[r[ci].S]; !ok {
					dict[r[ci].S] = uint64(len(vals))
					vals = append(vals, r[ci].S)
				}
			}
		}
		out = binary.AppendUvarint(out, uint64(len(vals)))
		for _, s := range vals {
			out = binary.AppendUvarint(out, uint64(len(s)))
			out = append(out, s...)
		}
	}

	for _, r := range rows {
		out = encodePageRow(out, schema, r, comp, dict)
	}
	return out
}

func encodePageRow(dst []byte, schema *sqltypes.Schema, row sqltypes.Row, comp Compression, dict map[string]uint64) []byte {
	// Null bitmap (all levels; NONE spends a full byte per column to mimic
	// fixed-format row headers).
	if comp == None {
		for _, v := range row {
			if v.Null {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	} else {
		n := len(schema.Cols)
		off := len(dst)
		for i := 0; i < (n+7)/8; i++ {
			dst = append(dst, 0)
		}
		for i, v := range row {
			if v.Null {
				dst[off+i/8] |= 1 << uint(i%8)
			}
		}
	}
	for ci, col := range schema.Cols {
		v := row[ci]
		if v.Null {
			if comp == None && col.Typ != sqltypes.String {
				// Fixed format still occupies the slot.
				dst = append(dst, make([]byte, 8)...)
			} else if comp == None {
				dst = binary.AppendUvarint(dst, 0)
			}
			continue
		}
		switch col.Typ {
		case sqltypes.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case sqltypes.String:
			if comp == Page {
				dst = binary.AppendUvarint(dst, dict[v.S])
			} else {
				dst = binary.AppendUvarint(dst, uint64(len(v.S)))
				dst = append(dst, v.S...)
			}
		default: // Int64, Date, Bool
			if comp == None {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
			} else {
				dst = binary.AppendVarint(dst, v.I)
			}
		}
	}
	return dst
}

// decodePage iterates a page's rows into fn, reusing row storage.
func decodePage(schema *sqltypes.Schema, buf []byte, comp Compression, row sqltypes.Row, fn func(sqltypes.Row) bool) (stopped bool, err error) {
	pos := 0
	nrows, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return false, fmt.Errorf("bad page row count")
	}
	pos += n

	var dict []string
	if comp == Page {
		dn, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return false, fmt.Errorf("bad page dict count")
		}
		pos += n
		dict = make([]string, dn)
		for i := range dict {
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 || pos+n+int(l) > len(buf) {
				return false, fmt.Errorf("bad page dict entry")
			}
			pos += n
			dict[i] = string(buf[pos : pos+int(l)])
			pos += int(l)
		}
	}

	ncols := len(schema.Cols)
	for r := uint64(0); r < nrows; r++ {
		// Nulls.
		nulls := make([]bool, ncols)
		if comp == None {
			if pos+ncols > len(buf) {
				return false, fmt.Errorf("page truncated")
			}
			for i := 0; i < ncols; i++ {
				nulls[i] = buf[pos+i] != 0
			}
			pos += ncols
		} else {
			nb := (ncols + 7) / 8
			if pos+nb > len(buf) {
				return false, fmt.Errorf("page truncated")
			}
			for i := 0; i < ncols; i++ {
				nulls[i] = buf[pos+i/8]&(1<<uint(i%8)) != 0
			}
			pos += nb
		}
		for ci, col := range schema.Cols {
			if nulls[ci] {
				row[ci] = sqltypes.NewNull(col.Typ)
				if comp == None {
					if col.Typ == sqltypes.String {
						_, n := binary.Uvarint(buf[pos:])
						pos += n
					} else {
						pos += 8
					}
				}
				continue
			}
			switch col.Typ {
			case sqltypes.Float64:
				if pos+8 > len(buf) {
					return false, fmt.Errorf("page truncated")
				}
				row[ci] = sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
				pos += 8
			case sqltypes.String:
				if comp == Page {
					id, n := binary.Uvarint(buf[pos:])
					if n <= 0 || id >= uint64(len(dict)) {
						return false, fmt.Errorf("bad dict reference")
					}
					pos += n
					row[ci] = sqltypes.NewString(dict[id])
				} else {
					l, n := binary.Uvarint(buf[pos:])
					if n <= 0 || pos+n+int(l) > len(buf) {
						return false, fmt.Errorf("bad string")
					}
					pos += n
					row[ci] = sqltypes.NewString(string(buf[pos : pos+int(l)]))
					pos += int(l)
				}
			default:
				if comp == None {
					if pos+8 > len(buf) {
						return false, fmt.Errorf("page truncated")
					}
					row[ci] = sqltypes.Value{Typ: col.Typ, I: int64(binary.LittleEndian.Uint64(buf[pos:]))}
					pos += 8
				} else {
					v, n := binary.Varint(buf[pos:])
					if n <= 0 {
						return false, fmt.Errorf("bad varint")
					}
					row[ci] = sqltypes.Value{Typ: col.Typ, I: v}
					pos += n
				}
			}
		}
		if !fn(row) {
			return true, nil
		}
	}
	return false, nil
}
