package rowstore

import (
	"fmt"
	"math/rand"
	"testing"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "price", Typ: sqltypes.Float64, Nullable: true},
		sqltypes.Column{Name: "cat", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "flag", Typ: sqltypes.Bool},
	)
}

func makeRows(n int, seed int64) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"alpha", "beta", "gamma", "delta"}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		cat := sqltypes.NewString(cats[rng.Intn(len(cats))])
		price := sqltypes.NewFloat(float64(rng.Intn(1000)) / 10)
		if rng.Intn(15) == 0 {
			cat = sqltypes.NewNull(sqltypes.String)
		}
		if rng.Intn(15) == 0 {
			price = sqltypes.NewNull(sqltypes.Float64)
		}
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i)), price, cat, sqltypes.NewBool(i%2 == 0)}
	}
	return rows
}

func roundTrip(t *testing.T, comp Compression) {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	tb := New(store, "t", testSchema(), comp)
	rows := makeRows(5000, int64(comp))
	if err := tb.AppendMany(rows); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 5000 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if tb.Pages() < 2 {
		t.Fatalf("expected multiple pages, got %d", tb.Pages())
	}
	i := 0
	err := tb.Scan(func(r sqltypes.Row) bool {
		want := rows[i]
		for c := range want {
			if want[c].Null != r[c].Null || (!want[c].Null && sqltypes.Compare(want[c], r[c]) != 0) {
				t.Fatalf("%v: row %d col %d: got %v, want %v", comp, i, c, r[c], want[c])
			}
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 5000 {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestRoundTripAllLevels(t *testing.T) {
	for _, comp := range []Compression{None, Row, Page} {
		t.Run(comp.String(), func(t *testing.T) { roundTrip(t, comp) })
	}
}

func TestCompressionOrdering(t *testing.T) {
	rows := makeRows(20000, 9)
	sizes := map[Compression]int{}
	for _, comp := range []Compression{None, Row, Page} {
		store := storage.NewStore(storage.DefaultBufferPoolBytes)
		tb := New(store, "t", testSchema(), comp)
		if err := tb.AppendMany(rows); err != nil {
			t.Fatal(err)
		}
		sizes[comp] = tb.DiskBytes()
	}
	if !(sizes[Page] < sizes[Row] && sizes[Row] < sizes[None]) {
		t.Fatalf("compression ordering violated: %v", sizes)
	}
}

func TestScanEarlyStop(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	tb := New(store, "t", testSchema(), Row)
	tb.AppendMany(makeRows(1000, 1))
	n := 0
	tb.Scan(func(sqltypes.Row) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestOpenPageVisibleToScan(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	tb := New(store, "t", testSchema(), Row)
	// Append without flushing (few rows stay in the open page).
	for _, r := range makeRows(5, 2) {
		if err := tb.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Pages() != 0 {
		t.Fatal("unexpected flush")
	}
	n := 0
	tb.Scan(func(sqltypes.Row) bool { n++; return true })
	if n != 5 {
		t.Fatalf("open-page rows not scanned: %d", n)
	}
}

func TestAppendWidthMismatch(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	tb := New(store, "t", testSchema(), Row)
	if err := tb.Append(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestScanCountsIO(t *testing.T) {
	store := storage.NewStore(0) // no cache: every page is a disk read
	tb := New(store, "t", testSchema(), Page)
	tb.AppendMany(makeRows(5000, 3))
	store.ResetStats()
	tb.Scan(func(sqltypes.Row) bool { return true })
	st := store.Stats()
	if st.Reads != int64(tb.Pages()) {
		t.Fatalf("reads = %d, pages = %d", st.Reads, tb.Pages())
	}
}

func TestLargeStrings(t *testing.T) {
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "s", Typ: sqltypes.String})
	tb := New(store, "t", schema, Page)
	var rows []sqltypes.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewString(fmt.Sprintf("%01000d", i))})
	}
	if err := tb.AppendMany(rows); err != nil {
		t.Fatal(err)
	}
	i := 0
	tb.Scan(func(r sqltypes.Row) bool {
		if r[0].S != fmt.Sprintf("%01000d", i) {
			t.Fatalf("row %d mismatch", i)
		}
		i++
		return true
	})
	if i != 100 {
		t.Fatalf("scanned %d", i)
	}
}
