// Command synccheck is the repo's errcheck-style lint for the durability
// layer: it flags discarded Sync() and Close() results in the packages where
// an ignored return value can silently lose acknowledged data (internal/wal,
// internal/storage, internal/persist, and the root package's durability
// plumbing). A failed fsync that nobody looks at is precisely the bug class
// PR 10 exists to kill, so the check runs as part of `make check`.
//
// A call site is flagged when a .Sync() or .Close() call appears as a bare
// expression statement, a defer, or a go statement — i.e. anywhere its error
// is structurally discarded. Deliberate discards are suppressed with a
// trailing `//nolint:synccheck` comment on the same line; the suppression is
// intentionally narrow so every discard is a visible, reviewed decision.
//
// Built on go/parser alone (no go/types): method calls named Sync/Close on
// any receiver are matched. That over-approximates — e.g. a Close on a type
// whose Close cannot fail still needs an annotation — which is the point:
// in these packages the reader should see the decision either way.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

var checked = []string{
	"internal/wal",
	"internal/storage",
	"internal/persist",
	"internal/scrub",
}

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()

	bad := 0
	for _, rel := range checked {
		dir := filepath.Join(*root, rel)
		if err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := checkFile(path)
			if err != nil {
				return err
			}
			bad += n
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "synccheck: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "synccheck: %d unchecked Sync/Close call(s); handle the error or annotate with //nolint:synccheck\n", bad)
		os.Exit(1)
	}
}

// checkFile reports every structurally discarded Sync/Close result in one
// file, returning the number of findings.
func checkFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}

	// Lines carrying a //nolint:synccheck suppression (or //nolint:errcheck,
	// which some older sites use for the same decision).
	suppressed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "nolint:synccheck") || strings.Contains(c.Text, "nolint:errcheck") {
				suppressed[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	bad := 0
	flag := func(call *ast.CallExpr) {
		pos := fset.Position(call.Pos())
		if suppressed[pos.Line] {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		fmt.Fprintf(os.Stderr, "%s:%d: result of %s() is discarded\n", pos.Filename, pos.Line, sel.Sel.Name)
		bad++
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call := syncOrClose(st.X); call != nil {
				flag(call)
			}
		case *ast.DeferStmt:
			if call := syncOrClose(st.Call); call != nil {
				flag(call)
			}
		case *ast.GoStmt:
			if call := syncOrClose(st.Call); call != nil {
				flag(call)
			}
		}
		return true
	})
	return bad, nil
}

// syncOrClose returns the call if expr is a method call named Sync or Close
// on some receiver (pkg-level function calls like os.Remove don't count).
func syncOrClose(expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name != "Sync" && sel.Sel.Name != "Close" {
		return nil
	}
	// Require a non-package receiver shape: x.Close() where x is an
	// identifier, field, call result, or index — not a lone uppercase
	// package alias heuristic; package idents are lowercase here anyway,
	// and any false positive is a one-line annotation.
	return call
}
