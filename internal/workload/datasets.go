package workload

import (
	"fmt"
	"math/rand"

	"apollo/internal/sqltypes"
)

// Dataset is one synthetic table for the compression experiments, chosen to
// span the characteristics that drive columnstore compression: cardinality,
// skew, sortedness, and string content. These stand in for the paper's real
// customer datasets (Table 1), which are not available; the *ordering* of
// compression ratios across formats is what the experiment reproduces.
type Dataset struct {
	Name   string
	Schema *sqltypes.Schema
	Rows   []sqltypes.Row
}

// CompressionDatasets generates the Table 1 dataset suite with n rows each.
func CompressionDatasets(n int, seed int64) []Dataset {
	rng := rand.New(rand.NewSource(seed))
	intCol := func(name string) *sqltypes.Schema {
		return sqltypes.NewSchema(sqltypes.Column{Name: name, Typ: sqltypes.Int64})
	}

	uniform := Dataset{Name: "uniform_ints", Schema: intCol("v")}
	for i := 0; i < n; i++ {
		uniform.Rows = append(uniform.Rows, sqltypes.Row{sqltypes.NewInt(rng.Int63n(1 << 40))})
	}

	zipf := rand.NewZipf(rng, 1.3, 1, 1000)
	skewed := Dataset{Name: "skewed_ints", Schema: intCol("v")}
	for i := 0; i < n; i++ {
		skewed.Rows = append(skewed.Rows, sqltypes.Row{sqltypes.NewInt(int64(zipf.Uint64()))})
	}

	sorted := Dataset{Name: "sorted_ints", Schema: intCol("v")}
	for i := 0; i < n; i++ {
		sorted.Rows = append(sorted.Rows, sqltypes.Row{sqltypes.NewInt(int64(i / 16))})
	}

	lowCard := Dataset{Name: "lowcard_strings", Schema: sqltypes.NewSchema(
		sqltypes.Column{Name: "s", Typ: sqltypes.String})}
	cities := make([]string, 50)
	for i := range cities {
		cities[i] = fmt.Sprintf("city_%02d_%s", i, nations[i%len(nations)])
	}
	for i := 0; i < n; i++ {
		lowCard.Rows = append(lowCard.Rows, sqltypes.Row{sqltypes.NewString(cities[rng.Intn(len(cities))])})
	}

	highCard := Dataset{Name: "highcard_strings", Schema: sqltypes.NewSchema(
		sqltypes.Column{Name: "s", Typ: sqltypes.String})}
	for i := 0; i < n; i++ {
		highCard.Rows = append(highCard.Rows, sqltypes.Row{
			sqltypes.NewString(fmt.Sprintf("guid-%016x-%08x", rng.Int63(), i))})
	}

	mixed := Dataset{Name: "mixed_fact", Schema: sqltypes.NewSchema(
		sqltypes.Column{Name: "k", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "qty", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "price", Typ: sqltypes.Float64},
		sqltypes.Column{Name: "city", Typ: sqltypes.String},
		sqltypes.Column{Name: "d", Typ: sqltypes.Date},
	)}
	for i := 0; i < n; i++ {
		mixed.Rows = append(mixed.Rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(50))),
			sqltypes.NewFloat(float64(rng.Intn(100000)) / 100),
			sqltypes.NewString(cities[rng.Intn(len(cities))]),
			sqltypes.NewDate(int64(ssbDateBase + rng.Intn(ssbDateSpan))),
		})
	}

	return []Dataset{uniform, skewed, sorted, lowCard, highCard, mixed}
}

// RawBytes reports the dataset's uncompressed logical size (the Table 1
// denominator): 8 bytes per fixed-width value, length+2 per string.
func (d *Dataset) RawBytes() int {
	total := 0
	for _, r := range d.Rows {
		for _, v := range r {
			if v.Typ == sqltypes.String {
				total += len(v.S) + 2
			} else {
				total += 8
			}
		}
	}
	return total
}
