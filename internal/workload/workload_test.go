package workload

import (
	"testing"

	"apollo/internal/catalog"
	"apollo/internal/plan"
	"apollo/internal/sql"
	"apollo/internal/storage"
	"apollo/internal/table"
)

func TestGenSSBShape(t *testing.T) {
	d := GenSSB(0.1, 1)
	if len(d.Lineorder) != 6000 {
		t.Fatalf("lineorder = %d", len(d.Lineorder))
	}
	if len(d.Date) != 7*365 {
		t.Fatalf("dates = %d", len(d.Date))
	}
	if len(d.Customer) == 0 || len(d.Supplier) == 0 || len(d.Part) == 0 {
		t.Fatal("empty dimension")
	}
	// Referential integrity: FKs resolve.
	for _, lo := range d.Lineorder[:100] {
		if lo[1].I < 1 || lo[1].I > int64(len(d.Customer)) {
			t.Fatal("custkey out of range")
		}
		if lo[2].I < 1 || lo[2].I > int64(len(d.Part)) {
			t.Fatal("partkey out of range")
		}
		if lo[3].I < 1 || lo[3].I > int64(len(d.Supplier)) {
			t.Fatal("suppkey out of range")
		}
	}
	// Determinism.
	d2 := GenSSB(0.1, 1)
	if d2.Lineorder[42].String() != d.Lineorder[42].String() {
		t.Fatal("generator not deterministic")
	}
}

func newSSBEngine(t *testing.T, mode plan.Mode, sf float64) *sql.Engine {
	t.Helper()
	cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
	opts := table.DefaultOptions()
	opts.RowGroupSize = 4096
	opts.BulkLoadThreshold = 512
	if err := LoadSSB(cat, GenSSB(sf, 7), opts); err != nil {
		t.Fatal(err)
	}
	return &sql.Engine{Cat: cat, PlanOpts: plan.Options{Mode: mode}, TableOpts: opts}
}

func TestSSBQueriesRunAndModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e14 := newSSBEngine(t, plan.Mode2014, 0.1)
	eRow := newSSBEngine(t, plan.ModeRow, 0.1)
	all := append(SSBQueries(), RepertoireQueries()...)
	for _, q := range all {
		r14, err := e14.Exec(q.SQL)
		if err != nil {
			t.Fatalf("%s (batch): %v", q.Name, err)
		}
		rRow, err := eRow.Exec(q.SQL)
		if err != nil {
			t.Fatalf("%s (row): %v", q.Name, err)
		}
		if len(r14.Rows) != len(rRow.Rows) {
			t.Fatalf("%s: %d vs %d rows", q.Name, len(r14.Rows), len(rRow.Rows))
		}
		// Ordered queries compare row-by-row; unordered (scalar) ones too
		// since they have a single row.
		for i := range r14.Rows {
			a, b := r14.Rows[i].String(), rRow.Rows[i].String()
			if a != b && orderedQuery(q.SQL) {
				t.Fatalf("%s: row %d: %s vs %s", q.Name, i, a, b)
			}
		}
	}
}

func orderedQuery(sql string) bool {
	return len(sql) > 0 // all suite queries are ordered or single-row
}

func TestCompressionDatasets(t *testing.T) {
	ds := CompressionDatasets(1000, 3)
	if len(ds) != 6 {
		t.Fatalf("datasets = %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if len(d.Rows) != 1000 {
			t.Fatalf("%s: rows = %d", d.Name, len(d.Rows))
		}
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if d.RawBytes() <= 0 {
			t.Fatalf("%s: raw bytes = %d", d.Name, d.RawBytes())
		}
		for _, r := range d.Rows[:10] {
			if len(r) != d.Schema.Len() {
				t.Fatalf("%s: ragged row", d.Name)
			}
		}
	}
}
