// Package workload generates the experiment inputs: a scaled-down Star
// Schema Benchmark (SSB) warehouse with its 13-query flight suite — the kind
// of star-join workload the paper's data-warehouse evaluation targets — and
// synthetic datasets spanning the data characteristics that drive the
// compression-ratio experiments.
package workload

import (
	"fmt"
	"math/rand"

	"apollo/internal/catalog"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// SSBData holds generated star-schema tables.
type SSBData struct {
	Lineorder, Date, Customer, Supplier, Part []sqltypes.Row
}

// Schemas for the SSB tables.
var (
	LineorderSchema = sqltypes.NewSchema(
		sqltypes.Column{Name: "lo_orderkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_custkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_partkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_suppkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_orderdate", Typ: sqltypes.Date},
		sqltypes.Column{Name: "lo_quantity", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_extendedprice", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_discount", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_revenue", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "lo_supplycost", Typ: sqltypes.Int64},
	)
	DateSchema = sqltypes.NewSchema(
		sqltypes.Column{Name: "d_datekey", Typ: sqltypes.Date},
		sqltypes.Column{Name: "d_year", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "d_month", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "d_yearmonthnum", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "d_weeknuminyear", Typ: sqltypes.Int64},
	)
	CustomerSchema = sqltypes.NewSchema(
		sqltypes.Column{Name: "c_custkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "c_name", Typ: sqltypes.String},
		sqltypes.Column{Name: "c_city", Typ: sqltypes.String},
		sqltypes.Column{Name: "c_nation", Typ: sqltypes.String},
		sqltypes.Column{Name: "c_region", Typ: sqltypes.String},
	)
	SupplierSchema = sqltypes.NewSchema(
		sqltypes.Column{Name: "s_suppkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "s_name", Typ: sqltypes.String},
		sqltypes.Column{Name: "s_city", Typ: sqltypes.String},
		sqltypes.Column{Name: "s_nation", Typ: sqltypes.String},
		sqltypes.Column{Name: "s_region", Typ: sqltypes.String},
	)
	PartSchema = sqltypes.NewSchema(
		sqltypes.Column{Name: "p_partkey", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "p_mfgr", Typ: sqltypes.String},
		sqltypes.Column{Name: "p_category", Typ: sqltypes.String},
		sqltypes.Column{Name: "p_brand", Typ: sqltypes.String},
		sqltypes.Column{Name: "p_color", Typ: sqltypes.String},
	)
)

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "ROMANIA", "RUSSIA",
		"SAUDI ARABIA", "UNITED KINGDOM", "UNITED STATES", "VIETNAM",
	}
	colors = []string{"red", "green", "blue", "yellow", "purple", "orange",
		"white", "black", "pink", "cyan", "magenta", "lime"}
)

// Counts per scale factor. A scale factor of 1.0 is deliberately ~100x
// smaller than real SSB so the full suite runs in seconds on a laptop; the
// fact:dimension ratios match the original.
func ssbCounts(sf float64) (lo, cust, supp, part int) {
	lo = int(60000 * sf)
	cust = max(int(600*sf), 50)
	supp = max(int(40*sf), 10)
	part = max(int(400*sf), 40)
	return
}

// epoch days for 1992-01-01 and number of days through 1998-12-31 (the SSB
// date range).
const (
	ssbDateBase = 8035 // 1992-01-01
	ssbDateSpan = 7 * 365
)

// GenSSB generates a deterministic SSB dataset at the given scale factor.
func GenSSB(sf float64, seed int64) *SSBData {
	rng := rand.New(rand.NewSource(seed))
	nLo, nCust, nSupp, nPart := ssbCounts(sf)
	d := &SSBData{}

	// Date dimension: one row per day of the 7-year range.
	for day := 0; day < ssbDateSpan; day++ {
		key := int64(ssbDateBase + day)
		y := 1992 + day/365
		doy := day % 365
		month := int64(doy/31 + 1)
		if month > 12 {
			month = 12
		}
		d.Date = append(d.Date, sqltypes.Row{
			sqltypes.NewDate(key),
			sqltypes.NewInt(int64(y)),
			sqltypes.NewInt(month),
			sqltypes.NewInt(int64(y)*100 + month),
			sqltypes.NewInt(int64(doy/7 + 1)),
		})
	}

	for i := 0; i < nCust; i++ {
		nation := nations[rng.Intn(len(nations))]
		d.Customer = append(d.Customer, sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("Customer#%06d", i+1)),
			sqltypes.NewString(fmt.Sprintf("%s%d", nation[:min(9, len(nation))], rng.Intn(10))),
			sqltypes.NewString(nation),
			sqltypes.NewString(regionOf(nation)),
		})
	}
	for i := 0; i < nSupp; i++ {
		nation := nations[rng.Intn(len(nations))]
		d.Supplier = append(d.Supplier, sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(fmt.Sprintf("Supplier#%06d", i+1)),
			sqltypes.NewString(fmt.Sprintf("%s%d", nation[:min(9, len(nation))], rng.Intn(10))),
			sqltypes.NewString(nation),
			sqltypes.NewString(regionOf(nation)),
		})
	}
	for i := 0; i < nPart; i++ {
		mfgr := fmt.Sprintf("MFGR#%d", 1+rng.Intn(5))
		cat := fmt.Sprintf("%s%d", mfgr, 1+rng.Intn(5))
		d.Part = append(d.Part, sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewString(mfgr),
			sqltypes.NewString(cat),
			sqltypes.NewString(fmt.Sprintf("%s%d", cat, 1+rng.Intn(40))),
			sqltypes.NewString(colors[rng.Intn(len(colors))]),
		})
	}

	for i := 0; i < nLo; i++ {
		qty := int64(1 + rng.Intn(50))
		price := int64(90000 + rng.Intn(1000000))
		discount := int64(rng.Intn(11))
		revenue := price * (100 - discount) / 100
		d.Lineorder = append(d.Lineorder, sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)),
			sqltypes.NewInt(int64(1 + rng.Intn(nCust))),
			sqltypes.NewInt(int64(1 + rng.Intn(nPart))),
			sqltypes.NewInt(int64(1 + rng.Intn(nSupp))),
			sqltypes.NewDate(int64(ssbDateBase + rng.Intn(ssbDateSpan))),
			sqltypes.NewInt(qty),
			sqltypes.NewInt(price),
			sqltypes.NewInt(discount),
			sqltypes.NewInt(revenue),
			sqltypes.NewInt(price * 6 / 10),
		})
	}
	return d
}

// regionOf maps a nation to its region deterministically.
func regionOf(nation string) string {
	var h uint32
	for _, c := range nation {
		h = h*31 + uint32(c)
	}
	return regions[int(h)%len(regions)]
}

// LoadSSB creates and bulk-loads the SSB tables into a catalog.
func LoadSSB(cat *catalog.Catalog, d *SSBData, opts table.Options) error {
	load := []struct {
		name   string
		schema *sqltypes.Schema
		rows   []sqltypes.Row
	}{
		{"lineorder", LineorderSchema, d.Lineorder},
		{"dwdate", DateSchema, d.Date},
		{"customer", CustomerSchema, d.Customer},
		{"supplier", SupplierSchema, d.Supplier},
		{"part", PartSchema, d.Part},
	}
	for _, l := range load {
		t, err := cat.Create(l.name, l.schema, opts)
		if err != nil {
			return err
		}
		if err := t.BulkLoad(l.rows); err != nil {
			return err
		}
	}
	return nil
}

// Query is a named SQL query.
type Query struct {
	Name string
	SQL  string
}

// SSBQueries returns the 13-query SSB flight suite adapted to the engine's
// dialect. Flights: Q1 restricts only the date dimension (scan-dominated),
// Q2 joins part+supplier, Q3 joins customer+supplier+date, Q4 joins all four
// dimensions — progressively heavier star joins.
func SSBQueries() []Query {
	return []Query{
		{"Q1.1", `SELECT SUM(lo_extendedprice * lo_discount) AS revenue
			FROM lineorder, dwdate
			WHERE lo_orderdate = d_datekey AND d_year = 1993
			  AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25`},
		{"Q1.2", `SELECT SUM(lo_extendedprice * lo_discount) AS revenue
			FROM lineorder, dwdate
			WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401
			  AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35`},
		{"Q1.3", `SELECT SUM(lo_extendedprice * lo_discount) AS revenue
			FROM lineorder, dwdate
			WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6 AND d_year = 1994
			  AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35`},
		{"Q2.1", `SELECT SUM(lo_revenue) AS rev, d_year, p_brand
			FROM lineorder, dwdate, part, supplier
			WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey AND lo_suppkey = s_suppkey
			  AND p_category = 'MFGR#12' AND s_region = 'AMERICA'
			GROUP BY d_year, p_brand ORDER BY d_year, p_brand`},
		{"Q2.2", `SELECT SUM(lo_revenue) AS rev, d_year, p_brand
			FROM lineorder, dwdate, part, supplier
			WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey AND lo_suppkey = s_suppkey
			  AND p_brand BETWEEN 'MFGR#22' AND 'MFGR#228' AND s_region = 'ASIA'
			GROUP BY d_year, p_brand ORDER BY d_year, p_brand`},
		{"Q2.3", `SELECT SUM(lo_revenue) AS rev, d_year, p_brand
			FROM lineorder, dwdate, part, supplier
			WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey AND lo_suppkey = s_suppkey
			  AND p_brand = 'MFGR#2221' AND s_region = 'EUROPE'
			GROUP BY d_year, p_brand ORDER BY d_year, p_brand`},
		{"Q3.1", `SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS rev
			FROM lineorder, customer, supplier, dwdate
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
			  AND c_region = 'ASIA' AND s_region = 'ASIA'
			  AND d_year >= 1992 AND d_year <= 1997
			GROUP BY c_nation, s_nation, d_year ORDER BY d_year, rev DESC, c_nation, s_nation`},
		{"Q3.2", `SELECT c_city, s_city, d_year, SUM(lo_revenue) AS rev
			FROM lineorder, customer, supplier, dwdate
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
			  AND c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES'
			  AND d_year >= 1992 AND d_year <= 1997
			GROUP BY c_city, s_city, d_year ORDER BY d_year, rev DESC, c_city, s_city`},
		{"Q3.3", `SELECT c_city, s_city, d_year, SUM(lo_revenue) AS rev
			FROM lineorder, customer, supplier, dwdate
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
			  AND c_nation = 'UNITED KINGDOM' AND s_nation = 'UNITED KINGDOM'
			  AND d_year >= 1992 AND d_year <= 1997
			GROUP BY c_city, s_city, d_year ORDER BY d_year, rev DESC, c_city, s_city`},
		{"Q3.4", `SELECT c_city, s_city, d_year, SUM(lo_revenue) AS rev
			FROM lineorder, customer, supplier, dwdate
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
			  AND c_nation = 'CHINA' AND s_nation = 'CHINA' AND d_yearmonthnum = 199712
			GROUP BY c_city, s_city, d_year ORDER BY d_year, rev DESC, c_city, s_city`},
		{"Q4.1", `SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
			FROM lineorder, dwdate, customer, supplier, part
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
			  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
			  AND p_mfgr IN ('MFGR#1', 'MFGR#2')
			GROUP BY d_year, c_nation ORDER BY d_year, c_nation`},
		{"Q4.2", `SELECT d_year, s_nation, p_category, SUM(lo_revenue - lo_supplycost) AS profit
			FROM lineorder, dwdate, customer, supplier, part
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
			  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
			  AND d_year IN (1997, 1998) AND p_mfgr IN ('MFGR#1', 'MFGR#2')
			GROUP BY d_year, s_nation, p_category ORDER BY d_year, s_nation, p_category`},
		{"Q4.3", `SELECT d_year, s_city, p_brand, SUM(lo_revenue - lo_supplycost) AS profit
			FROM lineorder, dwdate, customer, supplier, part
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
			  AND s_nation = 'UNITED STATES' AND d_year IN (1997, 1998)
			  AND p_category = 'MFGR#14'
			GROUP BY d_year, s_city, p_brand ORDER BY d_year, s_city, p_brand`},
	}
}

// RepertoireQueries exercise the operators the paper says were added to
// batch mode in the upcoming release — outer join, semi join (EXISTS-style),
// anti join (NOT EXISTS-style), UNION ALL, distinct aggregation, and scalar
// aggregation — the shapes that forced 2012 plans back to row mode.
func RepertoireQueries() []Query {
	return []Query{
		{"OuterJoin", `SELECT c_nation, COUNT(*) AS n
			FROM customer LEFT OUTER JOIN lineorder ON c_custkey = lo_custkey AND lo_quantity > 49
			GROUP BY c_nation ORDER BY c_nation`},
		{"SemiJoin", `SELECT COUNT(*) FROM customer LEFT SEMI JOIN lineorder ON c_custkey = lo_custkey`},
		{"AntiJoin", `SELECT COUNT(*) FROM part LEFT ANTI JOIN lineorder ON p_partkey = lo_partkey`},
		{"UnionAll", `SELECT lo_orderkey FROM lineorder WHERE lo_discount = 10
			UNION ALL SELECT lo_orderkey FROM lineorder WHERE lo_quantity = 1`},
		{"DistinctAgg", `SELECT d_year, COUNT(DISTINCT lo_custkey) AS custs
			FROM lineorder, dwdate WHERE lo_orderdate = d_datekey
			GROUP BY d_year ORDER BY d_year`},
		{"ScalarAgg", `SELECT COUNT(*), SUM(lo_revenue), AVG(lo_quantity) FROM lineorder WHERE lo_discount >= 5`},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
