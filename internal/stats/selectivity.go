package stats

import (
	"math"
	"sort"

	"apollo/internal/expr"
	"apollo/internal/sqltypes"
)

// DefaultConjunctSelectivity is the guess for predicates the estimator
// cannot analyze (arithmetic over several columns, opaque functions).
const DefaultConjunctSelectivity = 0.25

// EqSelectivity estimates the fraction of rows where column col equals v.
// Heavy hitters are read off repeated histogram bounds; everything else
// falls back to 1/NDV scaled by the non-null fraction.
func (ts *TableStats) EqSelectivity(col int, v sqltypes.Value) float64 {
	cs := &ts.Cols[col]
	if ts.Rows == 0 || v.Null {
		return 0
	}
	if !cs.Min.Null &&
		(sqltypes.Compare(v, cs.Min) < 0 || sqltypes.Compare(v, cs.Max) > 0) {
		return 0
	}
	nonNull := float64(ts.Rows-cs.NullCount) / float64(ts.Rows)
	f := -1.0
	if cs.Hist != nil {
		f = cs.Hist.FracEQ(v)
		if f < 0 && v.Typ != sqltypes.String && v.Typ != sqltypes.Float64 {
			f = cs.Hist.EqDensity(v)
		}
	}
	if f < 0 {
		f = 1 / float64(max(cs.DistinctEst, 1))
	}
	return clamp01(f) * nonNull
}

// RangeSelectivityOpen estimates the fraction of rows with col in the
// interval bounded by lo/hi (NULL = unbounded; loOpen/hiOpen mark exclusive
// bounds), preferring the column's equi-depth histogram over the uniform
// assumption.
func (ts *TableStats) RangeSelectivityOpen(col int, lo, hi sqltypes.Value, loOpen, hiOpen bool) float64 {
	cs := &ts.Cols[col]
	if ts.Rows == 0 {
		return 0
	}
	if !lo.Null && !hi.Null && !loOpen && !hiOpen && sqltypes.Compare(lo, hi) == 0 {
		return ts.EqSelectivity(col, lo)
	}
	if cs.Hist == nil || len(cs.Hist.Bounds) == 0 {
		return ts.RangeSelectivity(col, lo, hi)
	}
	h := cs.Hist
	eqFrac := func(v sqltypes.Value) float64 {
		if f := h.FracEQ(v); f >= 0 {
			return f
		}
		return 1 / float64(max(cs.DistinctEst, 1))
	}
	fhi := 1.0
	if !hi.Null {
		fhi = h.FracLE(hi)
		if hiOpen {
			fhi -= eqFrac(hi)
		}
	}
	flo := 0.0
	if !lo.Null {
		flo = h.FracLE(lo)
		if !loOpen {
			flo -= eqFrac(lo)
		}
	}
	nonNull := float64(ts.Rows-cs.NullCount) / float64(ts.Rows)
	return clamp01(fhi-flo) * nonNull
}

// ConjunctSelectivity estimates the selectivity of a single conjunct bound
// to this table's schema.
func (ts *TableStats) ConjunctSelectivity(c expr.Expr) float64 {
	if ts.Rows == 0 {
		return 0
	}
	switch x := c.(type) {
	case *expr.IsNull:
		if col, ok := x.E.(*expr.ColRef); ok && col.Idx < len(ts.Cols) {
			nullFrac := float64(ts.Cols[col.Idx].NullCount) / float64(ts.Rows)
			if x.Negate {
				return clamp01(1 - nullFrac)
			}
			return clamp01(nullFrac)
		}
	case *expr.InList:
		if col, ok := x.E.(*expr.ColRef); ok && col.Idx < len(ts.Cols) {
			sel := 0.0
			for _, v := range x.Vals {
				sel += ts.EqSelectivity(col.Idx, v)
			}
			return clamp01(sel)
		}
	case *expr.Like:
		if x.Negate {
			return 0.9
		}
		return 0.1
	case *expr.Cmp:
		col, ok := singleColumn(x)
		if !ok || col >= len(ts.Cols) {
			break
		}
		if lo, hi, loOpen, hiOpen, ok := expr.StrictColRange(c, col); ok {
			return ts.RangeSelectivityOpen(col, lo, hi, loOpen, hiOpen)
		}
		if x.Op == expr.NE {
			if k, isConst := x.R.(*expr.Const); isConst {
				return clamp01(1 - ts.EqSelectivity(col, k.Val))
			}
			if k, isConst := x.L.(*expr.Const); isConst {
				return clamp01(1 - ts.EqSelectivity(col, k.Val))
			}
		}
	case *expr.Logic:
		if x.Op == expr.Or {
			// OR of independent terms: 1 - prod(1 - sel_i).
			pass := 1.0
			for _, k := range x.Kids {
				pass *= 1 - ts.ConjunctSelectivity(k)
			}
			return clamp01(1 - pass)
		}
		if x.Op == expr.And {
			sels := make([]float64, len(x.Kids))
			for i, k := range x.Kids {
				sels[i] = ts.ConjunctSelectivity(k)
			}
			return CombineSelectivities(sels)
		}
	}
	return DefaultConjunctSelectivity
}

// SelectivityOf estimates the combined selectivity of a conjunct list.
func (ts *TableStats) SelectivityOf(conjs []expr.Expr) float64 {
	if len(conjs) == 0 {
		return 1
	}
	sels := make([]float64, len(conjs))
	for i, c := range conjs {
		sels[i] = ts.ConjunctSelectivity(c)
	}
	return CombineSelectivities(sels)
}

// CombineSelectivities combines conjunct selectivities with exponential
// backoff (s1 · s2^½ · s3^¼ · ...), the SQL Server 2014 correlation damp:
// full independence over-multiplies when predicates correlate, so each
// additional conjunct contributes a diminishing exponent, most selective
// first.
func CombineSelectivities(sels []float64) float64 {
	if len(sels) == 0 {
		return 1
	}
	ordered := append([]float64(nil), sels...)
	sort.Float64s(ordered)
	sel := 1.0
	w := 1.0
	for _, s := range ordered {
		if s <= 0 {
			return 0
		}
		sel *= math.Pow(s, w)
		w /= 2
	}
	return clamp01(sel)
}

// singleColumn reports the sole column referenced by e, if exactly one.
func singleColumn(e expr.Expr) (int, bool) {
	set := map[int]bool{}
	expr.ReferencedCols(e, set)
	if len(set) != 1 {
		return 0, false
	}
	for c := range set {
		return c, true
	}
	return 0, false
}
