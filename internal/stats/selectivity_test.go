package stats

import (
	"fmt"
	"math"
	"testing"

	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// skewTable builds a table with known distributions for estimator tests:
//
//	u  BIGINT  uniform 0..99            (20 rows each over 2000 rows)
//	z  BIGINT  isqrt skew 0..44         (value k appears 2k+1 times)
//	s  VARCHAR 4 values, uniform-ish
//	f  DOUBLE  0..1999, 10% NULL
func skewTable(t *testing.T) *table.Table {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "u", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "z", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "s", Typ: sqltypes.String},
		sqltypes.Column{Name: "f", Typ: sqltypes.Float64, Nullable: true},
	)
	opts := table.Options{RowGroupSize: 500, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(storage.NewStore(storage.DefaultBufferPoolBytes), "skew", schema, opts)
	isq := func(n int) int64 {
		r := 0
		for (r+1)*(r+1) <= n {
			r++
		}
		return int64(r)
	}
	rows := make([]sqltypes.Row, 2000)
	for i := range rows {
		f := sqltypes.NewFloat(float64(i))
		if i%10 == 0 {
			f = sqltypes.NewNull(sqltypes.Float64)
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i % 100)),
			sqltypes.NewInt(isq(i)),
			sqltypes.NewString(fmt.Sprintf("s%d", i%4)),
			f,
		}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func wantSel(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: selectivity %.4f, want %.4f (±%.4f)", name, got, want, tol)
	}
}

func TestEqSelectivity(t *testing.T) {
	ts := Collect(skewTable(t))
	// Uniform: 20/2000 rows per value.
	wantSel(t, "u=50", ts.EqSelectivity(0, sqltypes.NewInt(50)), 0.01, 0.006)
	// Skewed heavy hitter: value 44 holds 89/2000 rows.
	wantSel(t, "z=44", ts.EqSelectivity(1, sqltypes.NewInt(44)), 0.0445, 0.03)
	// Skewed tail: value 2 holds 5/2000 rows — bucket-local density, not
	// the ~1/45 global fallback.
	wantSel(t, "z=2", ts.EqSelectivity(1, sqltypes.NewInt(2)), 0.0025, 0.006)
	// Out of range and NULL probes match nothing.
	if got := ts.EqSelectivity(0, sqltypes.NewInt(500)); got != 0 {
		t.Errorf("u=500 (out of range): %v, want 0", got)
	}
	if got := ts.EqSelectivity(0, sqltypes.NewNull(sqltypes.Int64)); got != 0 {
		t.Errorf("u=NULL: %v, want 0", got)
	}
	// Strings fall back to 1/NDV (4 values).
	wantSel(t, "s='s1'", ts.EqSelectivity(2, sqltypes.NewString("s1")), 0.25, 0.05)
}

func TestRangeSelectivityOpenHistogram(t *testing.T) {
	ts := Collect(skewTable(t))
	null := sqltypes.NewNull(sqltypes.Int64)
	// u in [10, 29]: exactly 400/2000.
	wantSel(t, "u in [10,29]",
		ts.RangeSelectivityOpen(0, sqltypes.NewInt(10), sqltypes.NewInt(29), false, false), 0.20, 0.05)
	// z >= 40: (81+83+85+87+89)/2000 = 0.2125 — the histogram must see the
	// mass concentration that a uniform assumption (5/45) would miss.
	wantSel(t, "z >= 40",
		ts.RangeSelectivityOpen(1, sqltypes.NewInt(40), null, false, false), 0.2125, 0.05)
	// Degenerate closed range = equality.
	wantSel(t, "u in [50,50]",
		ts.RangeSelectivityOpen(0, sqltypes.NewInt(50), sqltypes.NewInt(50), false, false), 0.01, 0.006)
	// Open vs closed bounds differ by one value's share.
	closed := ts.RangeSelectivityOpen(0, sqltypes.NewInt(10), sqltypes.NewInt(29), false, false)
	open := ts.RangeSelectivityOpen(0, sqltypes.NewInt(10), sqltypes.NewInt(29), true, true)
	if open >= closed {
		t.Errorf("open range (%.4f) should be smaller than closed (%.4f)", open, closed)
	}
	// The float column scales by its non-null fraction.
	all := ts.RangeSelectivityOpen(3, sqltypes.NewNull(sqltypes.Float64), sqltypes.NewNull(sqltypes.Float64), false, false)
	wantSel(t, "f unbounded", all, 0.90, 0.02)
}

func TestConjunctSelectivity(t *testing.T) {
	ts := Collect(skewTable(t))
	colU := expr.NewColRef(0, "u", sqltypes.Int64)
	colS := expr.NewColRef(2, "s", sqltypes.String)
	colF := expr.NewColRef(3, "f", sqltypes.Float64)
	c := func(v int64) expr.Expr { return expr.NewConst(sqltypes.NewInt(v)) }

	wantSel(t, "u = 50",
		ts.ConjunctSelectivity(expr.NewCmp(expr.EQ, colU, c(50))), 0.01, 0.006)
	wantSel(t, "u != 50",
		ts.ConjunctSelectivity(expr.NewCmp(expr.NE, colU, c(50))), 0.99, 0.006)
	wantSel(t, "u < 25",
		ts.ConjunctSelectivity(expr.NewCmp(expr.LT, colU, c(25))), 0.25, 0.05)
	wantSel(t, "f IS NULL",
		ts.ConjunctSelectivity(expr.NewIsNull(colF, false)), 0.10, 0.01)
	wantSel(t, "f IS NOT NULL",
		ts.ConjunctSelectivity(expr.NewIsNull(colF, true)), 0.90, 0.01)
	wantSel(t, "u IN (1,2,3)",
		ts.ConjunctSelectivity(expr.NewInList(colU, []sqltypes.Value{
			sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewInt(3)})), 0.03, 0.015)
	wantSel(t, "s LIKE 's%'",
		ts.ConjunctSelectivity(expr.NewLike(colS, "s%", false)), 0.1, 0.001)
	wantSel(t, "s NOT LIKE 's%'",
		ts.ConjunctSelectivity(expr.NewLike(colS, "s%", true)), 0.9, 0.001)
	// OR of two disjoint equalities ~ sum; AND applies the backoff damp.
	or := ts.ConjunctSelectivity(&expr.Logic{Op: expr.Or, Kids: []expr.Expr{
		expr.NewCmp(expr.EQ, colU, c(1)), expr.NewCmp(expr.EQ, colU, c(2))}})
	wantSel(t, "u=1 OR u=2", or, 0.02, 0.01)
	and := ts.ConjunctSelectivity(expr.NewAnd(
		expr.NewCmp(expr.LT, colU, c(50)), expr.NewCmp(expr.EQ, colS, expr.NewConst(sqltypes.NewString("s1")))))
	if and <= 0.25*0.5*0.9 || and > 0.5 {
		t.Errorf("AND with backoff: %.4f outside (%.4f, 0.5]", and, 0.25*0.5*0.9)
	}
	// Multi-column predicates get the default guess.
	multi := ts.ConjunctSelectivity(expr.NewCmp(expr.LT, colU, expr.NewColRef(1, "z", sqltypes.Int64)))
	if multi != DefaultConjunctSelectivity {
		t.Errorf("multi-column conjunct: %.4f, want default %.2f", multi, DefaultConjunctSelectivity)
	}
	// SelectivityOf an empty list is 1.
	if got := ts.SelectivityOf(nil); got != 1 {
		t.Errorf("SelectivityOf(nil) = %v, want 1", got)
	}
}

func TestCombineSelectivities(t *testing.T) {
	if got := CombineSelectivities(nil); got != 1 {
		t.Fatalf("empty = %v", got)
	}
	if got := CombineSelectivities([]float64{0.5, 0}); got != 0 {
		t.Fatalf("zero term = %v", got)
	}
	// Most selective first at full weight, then sqrt damping: 0.1 * 0.5^0.5.
	want := 0.1 * math.Sqrt(0.5)
	if got := CombineSelectivities([]float64{0.5, 0.1}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("backoff = %v, want %v", got, want)
	}
	// Order-insensitive.
	a := CombineSelectivities([]float64{0.9, 0.2, 0.4})
	b := CombineSelectivities([]float64{0.2, 0.4, 0.9})
	if a != b {
		t.Fatalf("order-sensitive combine: %v vs %v", a, b)
	}
}

func TestHLLCount(t *testing.T) {
	var h HLL
	if got := h.Count(); got != 0 {
		t.Fatalf("empty sketch count = %v", got)
	}
	for i := 0; i < 5000; i++ {
		h.Add(sqltypes.NewInt(int64(i % 1000)))
	}
	if got := h.Count(); math.Abs(got-1000) > 60 {
		t.Fatalf("int count = %.1f, want ~1000", got)
	}
	var s1, s2 HLL
	for i := 0; i < 500; i++ {
		s1.Add(sqltypes.NewString(fmt.Sprintf("a%d", i)))
		s2.Add(sqltypes.NewString(fmt.Sprintf("b%d", i)))
	}
	s1.Merge(&s2)
	if got := s1.Count(); math.Abs(got-1000) > 60 {
		t.Fatalf("merged string count = %.1f, want ~1000", got)
	}
	// Distinct value kinds hash apart: NULL, int, float, string.
	var kinds HLL
	kinds.Add(sqltypes.NewNull(sqltypes.Int64))
	kinds.Add(sqltypes.NewInt(0))
	kinds.Add(sqltypes.NewFloat(0))
	kinds.Add(sqltypes.NewString(""))
	if got := kinds.Count(); got < 3.5 {
		t.Fatalf("kind-mixed count = %.1f, want ~4", got)
	}
}

func TestValueHashDeterministic(t *testing.T) {
	// Golden hashes: the planner's NDV estimates (and therefore golden
	// plans) depend on these exact values across processes and platforms.
	if got := valueHash(sqltypes.NewInt(42)); got != valueHash(sqltypes.NewInt(42)) {
		t.Fatal("int hash unstable")
	}
	if valueHash(sqltypes.NewInt(42)) == valueHash(sqltypes.NewInt(43)) {
		t.Fatal("adjacent ints collide")
	}
	if valueHash(sqltypes.NewString("x")) == valueHash(sqltypes.NewString("y")) {
		t.Fatal("strings collide")
	}
	if valueHash(sqltypes.NewNull(sqltypes.Int64)) == valueHash(sqltypes.NewInt(0)) {
		t.Fatal("NULL collides with zero")
	}
}

func TestFracEQAndDensity(t *testing.T) {
	ts := Collect(skewTable(t))
	h := ts.Cols[1].Hist // z: isqrt skew
	if h == nil {
		t.Fatal("no histogram on z")
	}
	// 44 holds 89/2000 = 4.45%: under two bucket depths (1/16 of rows), so
	// heavy-hitter detection abstains and bucket density answers instead.
	if f := h.FracEQ(sqltypes.NewInt(44)); f != -1 {
		t.Errorf("FracEQ(44) = %v, want -1 (spans < 2 buckets)", f)
	}
	if f := h.EqDensity(sqltypes.NewInt(44)); f < 0.015 || f > 0.09 {
		t.Errorf("EqDensity(44) = %v, want ~0.03-0.045", f)
	}
	// A true heavy hitter repeats across bounds: 500/1000 rows of value 7.
	var vals []sqltypes.Value
	for i := 0; i < 1000; i++ {
		v := int64(7)
		if i >= 500 {
			v = int64(i)
		}
		vals = append(vals, sqltypes.NewInt(v))
	}
	heavy := histogramFromSorted(vals, 16, 1000)
	if f := heavy.FracEQ(sqltypes.NewInt(7)); math.Abs(f-0.5) > 0.1 {
		t.Errorf("FracEQ(heavy 7) = %v, want ~0.5", f)
	}
	// 2 holds 5/2000: no repeated bounds, so FracEQ abstains...
	if f := h.FracEQ(sqltypes.NewInt(2)); f != -1 {
		t.Errorf("FracEQ(2) = %v, want -1 (not a heavy hitter)", f)
	}
	// ...and bucket-local density takes over, well under the 1/45 fallback.
	if f := h.EqDensity(sqltypes.NewInt(2)); f < 0 || f > 0.01 {
		t.Errorf("EqDensity(2) = %v, want (0, 0.01]", f)
	}
	var empty Histogram
	if f := empty.FracEQ(sqltypes.NewInt(1)); f != -1 {
		t.Errorf("empty FracEQ = %v", f)
	}
	if f := empty.EqDensity(sqltypes.NewInt(1)); f != -1 {
		t.Errorf("empty EqDensity = %v", f)
	}
}

func TestFracLE(t *testing.T) {
	ts := Collect(skewTable(t))
	h := ts.Cols[0].Hist // u: uniform 0..99
	if h == nil {
		t.Fatal("no histogram on u")
	}
	cases := []struct{ v, want, tol float64 }{
		{-1, 0, 0.02},
		{24, 0.25, 0.05},
		{49, 0.50, 0.05},
		{74, 0.75, 0.05},
		{99, 1.00, 0.001},
		{500, 1.00, 0.001},
	}
	for _, tc := range cases {
		if got := h.FracLE(sqltypes.NewInt(int64(tc.v))); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("FracLE(%v) = %.3f, want %.3f (±%.3f)", tc.v, got, tc.want, tc.tol)
		}
	}
}

func TestScaleDistinct(t *testing.T) {
	allOnce := map[uint64]int{1: 1, 2: 1, 3: 1, 4: 1}
	// Every sampled value unique: distinct scales linearly with population.
	if got := scaleDistinct(4, allOnce, 4, 400); got < 300 {
		t.Errorf("unique sample scaled to %d, want ~400", got)
	}
	// Every value repeated: the sample has seen (almost) everything.
	allDup := map[uint64]int{1: 2, 2: 2}
	if got := scaleDistinct(2, allDup, 4, 400); got != 2 {
		t.Errorf("repeated sample scaled to %d, want 2", got)
	}
	// Exhaustive sample: exact.
	if got := scaleDistinct(7, allOnce, 400, 400); got != 7 {
		t.Errorf("exhaustive sample = %d, want 7", got)
	}
	if got := scaleDistinct(5, nil, 0, 0); got != 1 {
		t.Errorf("empty sample = %d, want 1", got)
	}
}
