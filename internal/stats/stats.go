// Package stats derives optimizer statistics from columnstore metadata — the
// query-optimization enhancement of §6: segment directories already record
// per-segment min/max/null counts, so table statistics come almost for free,
// and bookmark-based sampling (§4.4) supplies histograms.
package stats

import (
	"math"
	"math/rand"
	"sort"

	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// ColStats summarizes one column.
type ColStats struct {
	Min, Max  sqltypes.Value
	NullCount int
	// DistinctEst is a coarse distinct-count estimate: dictionary sizes for
	// string columns, min(rows, value range) for integers.
	DistinctEst int
}

// TableStats summarizes a table at collection time.
type TableStats struct {
	Rows int
	Cols []ColStats
}

// Collect derives statistics from segment metadata plus a pass over delta
// rows (which are few by construction).
func Collect(t *table.Table) *TableStats {
	snap := t.Snapshot()
	ncols := snap.Schema.Len()
	ts := &TableStats{Cols: make([]ColStats, ncols)}
	for i := range ts.Cols {
		ts.Cols[i].Min = sqltypes.NewNull(snap.Schema.Cols[i].Typ)
		ts.Cols[i].Max = sqltypes.NewNull(snap.Schema.Cols[i].Typ)
	}
	merge := func(c int, v sqltypes.Value) {
		if v.Null {
			ts.Cols[c].NullCount++
			return
		}
		if ts.Cols[c].Min.Null || sqltypes.Compare(v, ts.Cols[c].Min) < 0 {
			ts.Cols[c].Min = v
		}
		if ts.Cols[c].Max.Null || sqltypes.Compare(v, ts.Cols[c].Max) > 0 {
			ts.Cols[c].Max = v
		}
	}

	for _, g := range snap.Groups {
		live := g.Rows
		if bm := snap.Deletes[g.ID]; bm != nil {
			live -= bm.Count()
		}
		ts.Rows += live
		for c := range ts.Cols {
			seg := &g.Segs[c]
			ts.Cols[c].NullCount += seg.NullCount
			if !seg.Min.Null {
				merge(c, seg.Min)
			}
			if !seg.Max.Null {
				merge(c, seg.Max)
			}
		}
	}
	for _, row := range snap.Delta {
		ts.Rows++
		for c, v := range row {
			merge(c, v)
		}
	}

	// Distinct estimates.
	for c := range ts.Cols {
		col := snap.Schema.Cols[c]
		switch {
		case col.Typ == sqltypes.String:
			if d := t.Index().Primary(c); d != nil {
				ts.Cols[c].DistinctEst = max(d.Len(), 1)
			} else {
				ts.Cols[c].DistinctEst = max(ts.Rows/10, 1)
			}
		case !ts.Cols[c].Min.Null && col.Typ != sqltypes.Float64:
			span := ts.Cols[c].Max.I - ts.Cols[c].Min.I + 1
			if span < 1 || span > int64(ts.Rows) {
				span = int64(max(ts.Rows, 1))
			}
			ts.Cols[c].DistinctEst = int(span)
		default:
			ts.Cols[c].DistinctEst = max(ts.Rows, 1)
		}
	}
	return ts
}

// RangeSelectivity estimates the fraction of rows with column col in
// [lo, hi] (NULL bounds unbounded) assuming a uniform distribution between
// the column's min and max.
func (ts *TableStats) RangeSelectivity(col int, lo, hi sqltypes.Value) float64 {
	cs := ts.Cols[col]
	if ts.Rows == 0 || cs.Min.Null {
		return 0
	}
	mn, mx := cs.Min.AsFloat(), cs.Max.AsFloat()
	if cs.Min.Typ == sqltypes.String {
		// No numeric domain: equality selects 1/distinct, ranges are guessed.
		if !lo.Null && !hi.Null && sqltypes.Compare(lo, hi) == 0 {
			return 1 / float64(max(cs.DistinctEst, 1))
		}
		return 0.3
	}
	span := mx - mn
	if span <= 0 {
		// Single-valued column: either the range covers it or not.
		v := cs.Min
		if (!lo.Null && sqltypes.Compare(v, lo) < 0) || (!hi.Null && sqltypes.Compare(v, hi) > 0) {
			return 0
		}
		return 1
	}
	l, h := mn, mx
	if !lo.Null {
		l = math.Max(l, lo.AsFloat())
	}
	if !hi.Null {
		h = math.Min(h, hi.AsFloat())
	}
	if h < l {
		return 0
	}
	sel := (h - l) / span
	// Equality on integers: at least 1/distinct.
	if !lo.Null && !hi.Null && sqltypes.Compare(lo, hi) == 0 {
		sel = 1 / float64(max(cs.DistinctEst, 1))
	}
	return clamp01(sel)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Histogram is an equi-depth histogram built from a bookmark sample (§4.4).
type Histogram struct {
	Bounds []sqltypes.Value // ascending upper bounds, one per bucket
	Depth  float64          // estimated rows per bucket
	Rows   int              // table rows at build time
}

// BuildHistogram samples the table via bookmarks and builds an equi-depth
// histogram with the given bucket count over column col.
func BuildHistogram(t *table.Table, col, buckets, sampleSize int, rng *rand.Rand) *Histogram {
	rows := t.Sample(sampleSize, rng)
	vals := make([]sqltypes.Value, 0, len(rows))
	for _, r := range rows {
		if !r[col].Null {
			vals = append(vals, r[col])
		}
	}
	if len(vals) == 0 || buckets < 1 {
		return &Histogram{Rows: t.Rows()}
	}
	sort.Slice(vals, func(a, b int) bool { return sqltypes.Compare(vals[a], vals[b]) < 0 })
	h := &Histogram{Rows: t.Rows()}
	per := len(vals) / buckets
	if per < 1 {
		per = 1
	}
	for i := per - 1; i < len(vals); i += per {
		h.Bounds = append(h.Bounds, vals[i])
	}
	if len(h.Bounds) == 0 || sqltypes.Compare(h.Bounds[len(h.Bounds)-1], vals[len(vals)-1]) != 0 {
		h.Bounds = append(h.Bounds, vals[len(vals)-1])
	}
	h.Depth = float64(h.Rows) / float64(len(h.Bounds))
	return h
}

// EstimateLE estimates how many rows have column value <= v.
func (h *Histogram) EstimateLE(v sqltypes.Value) float64 {
	if len(h.Bounds) == 0 {
		return 0
	}
	i := sort.Search(len(h.Bounds), func(j int) bool {
		return sqltypes.Compare(h.Bounds[j], v) >= 0
	})
	return float64(i) * h.Depth
}
