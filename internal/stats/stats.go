// Package stats derives optimizer statistics from columnstore metadata — the
// query-optimization enhancement of §6: segment directories already record
// per-segment min/max/null counts, so table statistics come almost for free,
// and bookmark-based sampling (§4.4) supplies equi-depth histograms and
// HyperLogLog distinct-count sketches.
package stats

import (
	"math"
	"math/rand"
	"sort"

	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// ColStats summarizes one column.
type ColStats struct {
	Min, Max  sqltypes.Value
	NullCount int
	// DistinctEst is the estimated number of distinct non-null values:
	// dictionary sizes for string columns, otherwise a sample-based
	// HyperLogLog count scaled to the table with a first-order jackknife.
	DistinctEst int
	// Hist is an equi-depth histogram over the bookmark sample; nil when the
	// table was empty or sampling produced no non-null values.
	Hist *Histogram
	// Sketch is the HyperLogLog sketch the distinct estimate came from (nil
	// for dictionary-backed estimates).
	Sketch *HLL
}

// TableStats summarizes a table at collection time.
type TableStats struct {
	Rows int
	Cols []ColStats
	// Version is the table's publish epoch (table.StatsVersion) when the
	// statistics were collected; the StatsCache recollects when it moves.
	Version uint64
	// SampledRows is the bookmark-sample size the histograms and sketches
	// were built from (0 = metadata only).
	SampledRows int
}

// CollectOptions tunes statistics collection. Zero values select defaults.
type CollectOptions struct {
	SampleSize int   // bookmark sample size (default 2048)
	Buckets    int   // histogram buckets per column (default 32)
	Seed       int64 // sampling seed; fixed default keeps plans deterministic
}

const (
	defaultSampleSize = 2048
	defaultBuckets    = 32
)

// Collect derives statistics with default options.
func Collect(t *table.Table) *TableStats { return CollectWith(t, CollectOptions{}) }

// CollectWith derives statistics from segment metadata (row counts, min/max,
// null counts), a pass over delta rows (few by construction), and one shared
// bookmark sample that feeds per-column histograms and HLL sketches.
func CollectWith(t *table.Table, o CollectOptions) *TableStats {
	if o.SampleSize <= 0 {
		o.SampleSize = defaultSampleSize
	}
	if o.Buckets <= 0 {
		o.Buckets = defaultBuckets
	}
	if o.Seed == 0 {
		o.Seed = 1
	}

	version := t.StatsVersion()
	snap := t.Snapshot()
	ncols := snap.Schema.Len()
	ts := &TableStats{Cols: make([]ColStats, ncols), Version: version}
	for i := range ts.Cols {
		ts.Cols[i].Min = sqltypes.NewNull(snap.Schema.Cols[i].Typ)
		ts.Cols[i].Max = sqltypes.NewNull(snap.Schema.Cols[i].Typ)
	}
	merge := func(c int, v sqltypes.Value) {
		if v.Null {
			ts.Cols[c].NullCount++
			return
		}
		if ts.Cols[c].Min.Null || sqltypes.Compare(v, ts.Cols[c].Min) < 0 {
			ts.Cols[c].Min = v
		}
		if ts.Cols[c].Max.Null || sqltypes.Compare(v, ts.Cols[c].Max) > 0 {
			ts.Cols[c].Max = v
		}
	}

	for _, g := range snap.Groups {
		live := g.Rows
		if bm := snap.Deletes[g.ID]; bm != nil {
			live -= bm.Count()
		}
		ts.Rows += live
		for c := range ts.Cols {
			seg := &g.Segs[c]
			ts.Cols[c].NullCount += seg.NullCount
			if !seg.Min.Null {
				merge(c, seg.Min)
			}
			if !seg.Max.Null {
				merge(c, seg.Max)
			}
		}
	}
	for _, row := range snap.Delta {
		ts.Rows++
		for c, v := range row {
			merge(c, v)
		}
	}
	if ts.Rows == 0 {
		for c := range ts.Cols {
			ts.Cols[c].DistinctEst = 1
		}
		return ts
	}

	// One bookmark sample shared by every column's histogram and sketch.
	sample := t.Sample(min(o.SampleSize, ts.Rows), rand.New(rand.NewSource(o.Seed)))
	ts.SampledRows = len(sample)

	for c := range ts.Cols {
		cs := &ts.Cols[c]
		col := snap.Schema.Cols[c]

		// Histogram + sketch from the sample.
		vals := make([]sqltypes.Value, 0, len(sample))
		sketch := &HLL{}
		seen := make(map[uint64]int, len(sample))
		for _, r := range sample {
			v := r[c]
			if v.Null {
				continue
			}
			vals = append(vals, v)
			hh := valueHash(v)
			sketch.AddHash(hh)
			seen[hh]++
		}
		if len(vals) > 0 {
			sort.Slice(vals, func(a, b int) bool { return sqltypes.Compare(vals[a], vals[b]) < 0 })
			cs.Hist = histogramFromSorted(vals, o.Buckets, ts.Rows)
			cs.Sketch = sketch
		}

		// Distinct estimate: dictionaries are exact for published strings;
		// otherwise scale the sample sketch up to the table.
		nonNull := max(ts.Rows-cs.NullCount, 0)
		switch {
		case len(vals) == 0:
			cs.DistinctEst = 1
		default:
			// The occurrence map gives the exact distinct count of the
			// sample; the sketch is kept on ColStats for merging.
			cs.DistinctEst = scaleDistinct(float64(len(seen)), seen, len(vals), nonNull)
		}
		// The primary dictionary is an exact lower bound for published
		// strings (delta rows may add values it has not seen).
		if col.Typ == sqltypes.String && t.Index().Primary(c) != nil {
			cs.DistinctEst = max(cs.DistinctEst, min(t.Index().Primary(c).Len(), nonNull))
		}
		// Integer columns cannot exceed their value span.
		if col.Typ != sqltypes.String && col.Typ != sqltypes.Float64 && !cs.Min.Null {
			if span := cs.Max.I - cs.Min.I + 1; span >= 1 && span < int64(cs.DistinctEst) {
				cs.DistinctEst = int(span)
			}
		}
		if cs.DistinctEst > nonNull && nonNull > 0 {
			cs.DistinctEst = nonNull
		}
		if cs.DistinctEst < 1 {
			cs.DistinctEst = 1
		}
	}
	return ts
}

// scaleDistinct scales a sample distinct count d (from the sketch) up to a
// population of size total using the unsmoothed first-order jackknife
// (Haas et al.): D = d / (1 - (1-q)·f1/n), where f1 is the number of values
// seen exactly once in the sample and q the sampling fraction. If every
// sampled value repeats, the sample has likely seen all distinct values
// (D = d); if every value is unique, D scales linearly with the population.
func scaleDistinct(d float64, seen map[uint64]int, n, total int) int {
	if n <= 0 || total <= 0 {
		return 1
	}
	if n >= total {
		return clampI(int(math.Round(d)), 1, total)
	}
	f1 := 0
	for _, c := range seen {
		if c == 1 {
			f1++
		}
	}
	q := float64(n) / float64(total)
	denom := 1 - (1-q)*float64(f1)/float64(n)
	if denom < 1e-9 {
		denom = 1e-9
	}
	est := d / denom
	return clampI(int(math.Round(est)), clampI(int(math.Round(d)), 1, total), total)
}

// RangeSelectivity estimates the fraction of rows with column col in
// [lo, hi] (NULL bounds unbounded) assuming a uniform distribution between
// the column's min and max. Histogram-aware estimation lives in
// EqSelectivity / RangeSelectivityOpen; this stays the coarse fallback.
func (ts *TableStats) RangeSelectivity(col int, lo, hi sqltypes.Value) float64 {
	cs := ts.Cols[col]
	if ts.Rows == 0 || cs.Min.Null {
		return 0
	}
	mn, mx := cs.Min.AsFloat(), cs.Max.AsFloat()
	if cs.Min.Typ == sqltypes.String {
		// No numeric domain: equality selects 1/distinct, ranges are guessed.
		if !lo.Null && !hi.Null && sqltypes.Compare(lo, hi) == 0 {
			return 1 / float64(max(cs.DistinctEst, 1))
		}
		return 0.3
	}
	span := mx - mn
	if span <= 0 {
		// Single-valued column: either the range covers it or not.
		v := cs.Min
		if (!lo.Null && sqltypes.Compare(v, lo) < 0) || (!hi.Null && sqltypes.Compare(v, hi) > 0) {
			return 0
		}
		return 1
	}
	l, h := mn, mx
	if !lo.Null {
		l = math.Max(l, lo.AsFloat())
	}
	if !hi.Null {
		h = math.Min(h, hi.AsFloat())
	}
	if h < l {
		return 0
	}
	sel := (h - l) / span
	// Equality on integers: at least 1/distinct.
	if !lo.Null && !hi.Null && sqltypes.Compare(lo, hi) == 0 {
		sel = 1 / float64(max(cs.DistinctEst, 1))
	}
	return clamp01(sel)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Histogram is an equi-depth histogram built from a bookmark sample (§4.4).
type Histogram struct {
	Bounds []sqltypes.Value // ascending upper bounds, one per bucket
	Lo     sqltypes.Value   // lowest sampled value (lower edge of bucket 0)
	Depth  float64          // estimated rows per bucket
	Rows   int              // table rows at build time
}

// BuildHistogram samples the table via bookmarks and builds an equi-depth
// histogram with the given bucket count over column col.
func BuildHistogram(t *table.Table, col, buckets, sampleSize int, rng *rand.Rand) *Histogram {
	rows := t.Sample(sampleSize, rng)
	vals := make([]sqltypes.Value, 0, len(rows))
	for _, r := range rows {
		if !r[col].Null {
			vals = append(vals, r[col])
		}
	}
	if len(vals) == 0 || buckets < 1 {
		return &Histogram{Rows: t.Rows()}
	}
	sort.Slice(vals, func(a, b int) bool { return sqltypes.Compare(vals[a], vals[b]) < 0 })
	return histogramFromSorted(vals, buckets, t.Rows())
}

// histogramFromSorted builds an equi-depth histogram from an ascending value
// slice. Heavy values naturally occupy several consecutive buckets, which
// FracEQ exploits for skewed (zipf-like) columns.
func histogramFromSorted(vals []sqltypes.Value, buckets, tableRows int) *Histogram {
	h := &Histogram{Rows: tableRows, Lo: vals[0]}
	per := len(vals) / buckets
	if per < 1 {
		per = 1
	}
	for i := per - 1; i < len(vals); i += per {
		h.Bounds = append(h.Bounds, vals[i])
	}
	if len(h.Bounds) == 0 || sqltypes.Compare(h.Bounds[len(h.Bounds)-1], vals[len(vals)-1]) != 0 {
		h.Bounds = append(h.Bounds, vals[len(vals)-1])
	}
	h.Depth = float64(h.Rows) / float64(len(h.Bounds))
	return h
}

// EstimateLE estimates how many rows have column value <= v.
func (h *Histogram) EstimateLE(v sqltypes.Value) float64 {
	if len(h.Bounds) == 0 {
		return 0
	}
	i := sort.Search(len(h.Bounds), func(j int) bool {
		return sqltypes.Compare(h.Bounds[j], v) >= 0
	})
	return float64(i) * h.Depth
}

// FracLE estimates the fraction of non-null values <= v, interpolating
// linearly inside the bucket containing v for numeric domains.
func (h *Histogram) FracLE(v sqltypes.Value) float64 {
	k := len(h.Bounds)
	if k == 0 {
		return 0
	}
	if sqltypes.Compare(v, h.Bounds[k-1]) >= 0 {
		return 1
	}
	if !h.Lo.Null && sqltypes.Compare(v, h.Lo) < 0 {
		return 0
	}
	i := sort.Search(k, func(j int) bool {
		return sqltypes.Compare(h.Bounds[j], v) >= 0
	})
	// Buckets 0..i-1 lie fully at or below v; interpolate within bucket i.
	upper := h.Bounds[i]
	if sqltypes.Compare(upper, v) == 0 {
		return float64(i+1) / float64(k)
	}
	lower := h.Lo
	if i > 0 {
		lower = h.Bounds[i-1]
	}
	frac := 0.5
	if upper.Typ != sqltypes.String && !lower.Null {
		lo, hi := lower.AsFloat(), upper.AsFloat()
		if hi > lo {
			frac = clamp01((v.AsFloat() - lo) / (hi - lo))
		}
	}
	return (float64(i) + frac) / float64(k)
}

// FracEQ estimates the fraction of non-null values equal to v from bucket
// bounds alone. A value repeated across m >= 2 consecutive bounds is a heavy
// hitter spanning ~m buckets; otherwise the histogram carries no frequency
// information and FracEQ returns -1 so the caller falls back to 1/NDV.
func (h *Histogram) FracEQ(v sqltypes.Value) float64 {
	k := len(h.Bounds)
	if k == 0 {
		return -1
	}
	i0 := sort.Search(k, func(j int) bool { return sqltypes.Compare(h.Bounds[j], v) >= 0 })
	i1 := sort.Search(k, func(j int) bool { return sqltypes.Compare(h.Bounds[j], v) > 0 })
	if m := i1 - i0; m >= 2 {
		return (float64(m) - 0.5) / float64(k)
	}
	return -1
}

// EqDensity estimates the equality fraction for an integer-typed value from
// its bucket's local density: one bucket holds ~1/k of the rows spread
// across the integer span it covers. Under skew this beats the global 1/NDV
// fallback — tail buckets span many values (low per-value frequency) while
// heavy regions span few — and on uniform data the two agree. Returns -1
// when v falls outside the histogram.
func (h *Histogram) EqDensity(v sqltypes.Value) float64 {
	k := len(h.Bounds)
	if k == 0 {
		return -1
	}
	i := sort.Search(k, func(j int) bool { return sqltypes.Compare(h.Bounds[j], v) >= 0 })
	if i == k {
		return -1
	}
	var span int64
	if i == 0 {
		span = h.Bounds[0].I - h.Lo.I + 1
	} else {
		// Bucket i covers the half-open integer range (Bounds[i-1], Bounds[i]].
		span = h.Bounds[i].I - h.Bounds[i-1].I
	}
	if span < 1 {
		span = 1
	}
	return (1 / float64(k)) / float64(span)
}
