package stats

import (
	"math"
	"math/bits"

	"apollo/internal/sqltypes"
)

// hllP is the HyperLogLog precision: 2^p registers. p=12 gives a ~1.6%
// standard error, far below the sampling error of the bookmark sample that
// feeds the sketch.
const (
	hllP = 12
	hllM = 1 << hllP
)

// HLL is a HyperLogLog distinct-count sketch. The zero value is ready to use.
// Sketches built over the same hash function merge by register-wise max.
type HLL struct {
	reg [hllM]uint8
}

// AddHash folds one 64-bit hash into the sketch.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - hllP)
	w := x << hllP
	var rho uint8
	if w == 0 {
		rho = 64 - hllP + 1
	} else {
		rho = uint8(bits.LeadingZeros64(w)) + 1
	}
	if rho > h.reg[idx] {
		h.reg[idx] = rho
	}
}

// Add folds one value into the sketch.
func (h *HLL) Add(v sqltypes.Value) { h.AddHash(valueHash(v)) }

// Merge folds other into h (register-wise max).
func (h *HLL) Merge(other *HLL) {
	for i, r := range other.reg {
		if r > h.reg[i] {
			h.reg[i] = r
		}
	}
}

// Count estimates the number of distinct values added, with the standard
// linear-counting correction for small cardinalities.
func (h *HLL) Count() float64 {
	alpha := 0.7213 / (1 + 1.079/float64(hllM))
	sum := 0.0
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha * hllM * hllM / sum
	if e <= 2.5*hllM && zeros > 0 {
		e = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return e
}

// valueHash is a deterministic FNV-1a hash of a value, finished with an
// avalanche mix. FNV alone disperses short inputs poorly in the high bits,
// and the sketch takes its register index from exactly those bits; the
// fmix64 finalizer (murmur3) spreads every input bit across the word.
// Determinism across processes matters: NDV estimates feed plan choices
// that golden tests pin.
func valueHash(v sqltypes.Value) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix(byte(v.Typ))
	if v.Null {
		mix(0xff)
		return fmix64(h)
	}
	switch v.Typ {
	case sqltypes.String:
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	case sqltypes.Float64:
		u := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	default:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	return fmix64(h)
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
