package stats

import (
	"math/rand"
	"testing"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

func buildTable(t *testing.T, n int) (*table.Table, []sqltypes.Row) {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "k", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "s", Typ: sqltypes.String},
		sqltypes.Column{Name: "f", Typ: sqltypes.Float64, Nullable: true},
	)
	opts := table.Options{RowGroupSize: 500, BulkLoadThreshold: 100, Columnstore: table.DefaultOptions().Columnstore}
	tb := table.New(storage.NewStore(storage.DefaultBufferPoolBytes), "t", schema, opts)
	rng := rand.New(rand.NewSource(5))
	names := []string{"a", "b", "c", "d"}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		f := sqltypes.NewFloat(float64(i))
		if i%10 == 0 {
			f = sqltypes.NewNull(sqltypes.Float64)
		}
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(100 + i)),
			sqltypes.NewString(names[rng.Intn(len(names))]),
			f,
		}
	}
	if err := tb.BulkLoad(rows[:n*4/5]); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertMany(rows[n*4/5:]); err != nil {
		t.Fatal(err)
	}
	return tb, rows
}

func TestCollect(t *testing.T) {
	tb, _ := buildTable(t, 2000)
	st := Collect(tb)
	if st.Rows != 2000 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	if st.Cols[0].Min.I != 100 || st.Cols[0].Max.I != 2099 {
		t.Fatalf("k bounds = %v..%v", st.Cols[0].Min, st.Cols[0].Max)
	}
	if st.Cols[2].NullCount != 200 {
		t.Fatalf("f nulls = %d", st.Cols[2].NullCount)
	}
	// String column distinct estimate comes from the primary dictionary.
	if d := st.Cols[1].DistinctEst; d != 4 {
		t.Fatalf("s distinct = %d", d)
	}
}

func TestCollectReflectsDeletes(t *testing.T) {
	tb, _ := buildTable(t, 1000)
	if _, err := tb.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I < 200 }); err != nil {
		t.Fatal(err)
	}
	st := Collect(tb)
	if st.Rows != 900 {
		t.Fatalf("Rows after delete = %d", st.Rows)
	}
}

func TestRangeSelectivity(t *testing.T) {
	tb, _ := buildTable(t, 1000)
	st := Collect(tb)
	null := sqltypes.NewNull(sqltypes.Int64)

	full := st.RangeSelectivity(0, null, null)
	if full < 0.99 {
		t.Fatalf("unbounded selectivity = %f", full)
	}
	half := st.RangeSelectivity(0, sqltypes.NewInt(100), sqltypes.NewInt(599))
	if half < 0.4 || half > 0.6 {
		t.Fatalf("half selectivity = %f", half)
	}
	none := st.RangeSelectivity(0, sqltypes.NewInt(5000), null)
	if none != 0 {
		t.Fatalf("out-of-range selectivity = %f", none)
	}
	eq := st.RangeSelectivity(0, sqltypes.NewInt(500), sqltypes.NewInt(500))
	if eq <= 0 || eq > 0.01 {
		t.Fatalf("equality selectivity = %f", eq)
	}
	// String equality uses distinct counts.
	seq := st.RangeSelectivity(1, sqltypes.NewString("a"), sqltypes.NewString("a"))
	if seq != 0.25 {
		t.Fatalf("string equality selectivity = %f", seq)
	}
}

func TestRangeSelectivityEmptyTable(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "k", Typ: sqltypes.Int64})
	tb := table.New(storage.NewStore(0), "t", schema, table.DefaultOptions())
	st := Collect(tb)
	if st.Rows != 0 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	if sel := st.RangeSelectivity(0, sqltypes.NewInt(0), sqltypes.NewInt(10)); sel != 0 {
		t.Fatalf("selectivity on empty table = %f", sel)
	}
}

func TestHistogram(t *testing.T) {
	tb, rows := buildTable(t, 5000)
	h := BuildHistogram(tb, 0, 32, 2000, rand.New(rand.NewSource(3)))
	if len(h.Bounds) == 0 {
		t.Fatal("empty histogram")
	}
	// Estimate rows with k <= median; truth is ~half.
	exact := 0
	mid := sqltypes.NewInt(100 + 2500)
	for _, r := range rows {
		if r[0].I <= mid.I {
			exact++
		}
	}
	est := h.EstimateLE(mid)
	errFrac := (est - float64(exact)) / float64(exact)
	if errFrac < -0.15 || errFrac > 0.15 {
		t.Fatalf("estimate %f vs exact %d (err %.2f)", est, exact, errFrac)
	}
	// Below-min and above-max estimates.
	if h.EstimateLE(sqltypes.NewInt(0)) != 0 {
		t.Fatal("below-min estimate should be 0")
	}
	if top := h.EstimateLE(sqltypes.NewInt(1 << 30)); top < float64(h.Rows)*0.9 {
		t.Fatalf("above-max estimate = %f of %d", top, h.Rows)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Column{Name: "k", Typ: sqltypes.Int64})
	tb := table.New(storage.NewStore(0), "t", schema, table.DefaultOptions())
	h := BuildHistogram(tb, 0, 8, 100, rand.New(rand.NewSource(1)))
	if h.EstimateLE(sqltypes.NewInt(5)) != 0 {
		t.Fatal("empty-table histogram should estimate 0")
	}
}
