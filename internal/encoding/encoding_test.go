package encoding

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"apollo/internal/bits"
)

func TestBitWidth(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {255, 8}, {256, 9}, {math.MaxUint64, 64}}
	for _, c := range cases {
		if got := BitWidth(c.v); got != c.want {
			t.Errorf("BitWidth(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPackRoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{0},
		{0, 0, 0},
		{1, 2, 3, 4, 5, 6, 7},
		{255, 0, 128, 64},
		{1 << 33, 7, 1<<40 - 1},
		{math.MaxUint64, 0, math.MaxUint64},
	}
	for _, vals := range cases {
		p := PackSlice(vals)
		out := p.DecodeAll(make([]uint64, p.N))
		if len(vals) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(out, vals) {
			t.Errorf("round trip %v -> %v", vals, out)
		}
		for i, v := range vals {
			if got := p.Get(i); got != v {
				t.Errorf("Get(%d) = %d, want %d", i, got, v)
			}
		}
	}
}

func TestPackMarshalRoundTrip(t *testing.T) {
	vals := []uint64{9, 1, 5, 1 << 20, 0, 77}
	p := PackSlice(vals)
	buf := p.Marshal(nil)
	q, n, err := UnmarshalPacked(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("unmarshal: %v (n=%d of %d)", err, n, len(buf))
	}
	if !reflect.DeepEqual(q.DecodeAll(make([]uint64, q.N)), vals) {
		t.Fatal("marshal round trip mismatch")
	}
	// Corruption: truncate.
	if _, _, err := UnmarshalPacked(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated packed not detected")
	}
}

func TestPackGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackSlice([]uint64{1}).Get(1)
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{5},
		{5, 5, 5, 5},
		{1, 2, 3},
		{7, 7, 1, 1, 1, 9},
	}
	for _, vals := range cases {
		r := RLEEncode(vals)
		if r.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", r.Len(), len(vals))
		}
		out := r.DecodeAll(make([]uint64, r.Len()))
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("decode %v -> %v", vals, out)
			}
			if got := r.Get(i); got != vals[i] {
				t.Fatalf("Get(%d) = %d, want %d", i, got, vals[i])
			}
		}
	}
	if RLEEncode([]uint64{7, 7, 1, 1, 1, 9}).Runs() != 3 {
		t.Fatal("run count wrong")
	}
}

func TestRLEMarshalRoundTrip(t *testing.T) {
	vals := []uint64{3, 3, 3, 8, 8, 1, 1 << 50, 1 << 50}
	r := RLEEncode(vals)
	buf := r.Marshal(nil)
	q, n, err := UnmarshalRLE(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("unmarshal: %v", err)
	}
	out := q.DecodeAll(make([]uint64, q.Len()))
	if !reflect.DeepEqual(out, vals) {
		t.Fatal("marshal round trip mismatch")
	}
	if _, _, err := UnmarshalRLE(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated rle not detected")
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Add("apple")
	b := d.Add("banana")
	if a2 := d.Add("apple"); a2 != a {
		t.Fatal("re-add changed id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Value(b) != "banana" {
		t.Fatal("Value wrong")
	}
	if id, ok := d.Lookup("banana"); !ok || id != b {
		t.Fatal("Lookup wrong")
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Fatal("phantom lookup")
	}

	buf := d.Marshal(nil)
	q, n, err := UnmarshalDict(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Len() != 2 || q.Value(0) != "apple" || q.Value(1) != "banana" {
		t.Fatal("dict marshal round trip mismatch")
	}
}

func TestAnalyzeIntsOffset(t *testing.T) {
	vals := []int64{105, 103, 101, 199}
	enc, codes := AnalyzeInts(vals, nil)
	for i, v := range vals {
		if got := enc.DecodeInt(codes[i]); got != v {
			t.Fatalf("decode code[%d]: got %d, want %d", i, got, v)
		}
	}
	// Max code should be small thanks to rebasing.
	if MaxValue(codes) > 98 {
		t.Fatalf("codes not rebased: max=%d", MaxValue(codes))
	}
}

func TestAnalyzeIntsScaled(t *testing.T) {
	vals := []int64{1000, 5000, 123000, -2000}
	enc, codes := AnalyzeInts(vals, nil)
	if enc.Kind != NumScaled || enc.Scale < 3 {
		t.Fatalf("expected scaled encoding, got %v", enc)
	}
	for i, v := range vals {
		if got := enc.DecodeInt(codes[i]); got != v {
			t.Fatalf("decode: got %d, want %d", got, v)
		}
	}
}

func TestAnalyzeIntsWithNulls(t *testing.T) {
	nulls := bits.New(4)
	nulls.Set(0)
	vals := []int64{math.MinInt64, 100, 200, 300} // position 0 is NULL garbage
	enc, codes := AnalyzeInts(vals, nulls)
	for i := 1; i < 4; i++ {
		if got := enc.DecodeInt(codes[i]); got != vals[i] {
			t.Fatalf("decode: got %d, want %d", got, vals[i])
		}
	}
	if codes[0] != 0 {
		t.Fatal("null slot should have code 0")
	}
}

func TestAnalyzeIntsAllNull(t *testing.T) {
	nulls := bits.New(2)
	nulls.Set(0)
	nulls.Set(1)
	enc, codes := AnalyzeInts([]int64{9, 9}, nulls)
	if enc.Kind != NumOffset || enc.Base != 0 || codes[0] != 0 {
		t.Fatalf("all-null encoding: %v %v", enc, codes)
	}
}

func TestAnalyzeFloatsScaled(t *testing.T) {
	vals := []float64{1.25, 3.50, 0.75, -2.25}
	enc, codes := AnalyzeFloats(vals, nil)
	if enc.Kind != NumFloatScaled {
		t.Fatalf("expected float-scaled, got %v", enc)
	}
	for i, v := range vals {
		if got := enc.DecodeFloat(codes[i]); got != v {
			t.Fatalf("decode: got %v, want %v", got, v)
		}
	}
}

func TestAnalyzeFloatsRaw(t *testing.T) {
	vals := []float64{math.Pi, math.E, 1.0 / 3.0}
	enc, codes := AnalyzeFloats(vals, nil)
	if enc.Kind != NumFloatRaw {
		t.Fatalf("expected raw, got %v", enc)
	}
	for i, v := range vals {
		if got := enc.DecodeFloat(codes[i]); got != v {
			t.Fatalf("decode: got %v, want %v", got, v)
		}
	}
}

func TestReorderReducesRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 5000
	lowCard := make([]uint64, n)  // 4 distinct values, shuffled
	midCard := make([]uint64, n)  // 50 distinct values
	highCard := make([]uint64, n) // nearly unique
	for i := 0; i < n; i++ {
		lowCard[i] = uint64(rng.Intn(4))
		midCard[i] = uint64(rng.Intn(50))
		highCard[i] = uint64(rng.Intn(100000))
	}
	cols := [][]uint64{highCard, lowCard, midCard}
	before := RunCount(lowCard) + RunCount(midCard) + RunCount(highCard)
	perm := Reorder(cols)
	if perm == nil {
		t.Fatal("expected a permutation")
	}
	after := 0
	for _, c := range cols {
		after += RunCount(ApplyPerm(c, perm))
	}
	if after >= before {
		t.Fatalf("reorder did not reduce runs: before=%d after=%d", before, after)
	}
	// Low-cardinality column must collapse to ~4 runs.
	if got := RunCount(ApplyPerm(lowCard, perm)); got > 8 {
		t.Fatalf("low-cardinality column has %d runs after reorder", got)
	}
}

func TestReorderPermIsPermutation(t *testing.T) {
	cols := [][]uint64{{3, 1, 2, 1, 3, 1}}
	perm := Reorder(cols)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestReorderDegenerate(t *testing.T) {
	if Reorder(nil) != nil {
		t.Fatal("nil cols should return nil")
	}
	if Reorder([][]uint64{{1}}) != nil {
		t.Fatal("single row should return nil")
	}
}

// Property: pack/unpack round-trips arbitrary data at its natural width.
func TestQuickPackRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		p := PackSlice(vals)
		out := p.DecodeAll(make([]uint64, p.N))
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RLE marshal/unmarshal round-trips and preserves random access.
func TestQuickRLE(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]uint64, len(raw))
		for i, b := range raw {
			vals[i] = uint64(b % 5) // force runs
		}
		r := RLEEncode(vals)
		buf := r.Marshal(nil)
		q, _, err := UnmarshalRLE(buf)
		if err != nil {
			return false
		}
		for i := range vals {
			if q.Get(i) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: value encoding of ints round-trips (nulls excluded).
func TestQuickValueEncInts(t *testing.T) {
	f := func(vals []int64) bool {
		enc, codes := AnalyzeInts(vals, nil)
		for i, v := range vals {
			if enc.DecodeInt(codes[i]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: value encoding of floats round-trips bit-exactly for raw and
// value-exactly for scaled.
func TestQuickValueEncFloats(t *testing.T) {
	f := func(raw []int32) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 100 // prices: two decimal places
		}
		enc, codes := AnalyzeFloats(vals, nil)
		for i, v := range vals {
			if enc.DecodeFloat(codes[i]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
