// Package encoding implements the columnstore compression primitives described
// in the paper's §2.2: value-based encoding of numerics (scale + offset),
// dictionary encoding of strings (a table-wide primary dictionary plus
// per-segment local dictionaries), row reordering to lengthen runs, and a
// per-segment choice between run-length encoding and bit-packing.
package encoding

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BitWidth returns the number of bits needed to represent v (at least 1, so
// that an all-zero column still round-trips through the packed layout).
func BitWidth(v uint64) int {
	if v == 0 {
		return 1
	}
	return bits.Len64(v)
}

// MaxValue returns the largest value in vals, or 0 for an empty slice.
func MaxValue(vals []uint64) uint64 {
	var m uint64
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Packed is a fixed-width bit-packed vector of uint64 codes. It supports
// O(1) random access (needed for bookmark fetches into compressed segments)
// and bulk decode (used by vectorized scans).
type Packed struct {
	Width int    // bits per value, 1..64
	N     int    // number of values
	Data  []byte // ceil(N*Width/8) bytes, little-endian bit order
}

// PackSlice bit-packs vals at the minimal width covering their maximum.
func PackSlice(vals []uint64) Packed {
	return PackSliceWidth(vals, BitWidth(MaxValue(vals)))
}

// PackSliceWidth bit-packs vals at the given width. Values must fit in width
// bits; wider values are truncated.
func PackSliceWidth(vals []uint64, width int) Packed {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	nbits := len(vals) * width
	data := make([]byte, (nbits+7)/8)
	mask := maskFor(width)
	for i, v := range vals {
		putBits(data, i*width, width, v&mask)
	}
	return Packed{Width: width, N: len(vals), Data: data}
}

func maskFor(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(width)) - 1
}

// putBits writes the low `width` bits of v at bit offset off. A value may
// straddle up to 9 bytes when width is close to 64 and off is unaligned.
func putBits(data []byte, off, width int, v uint64) {
	byteOff := off / 8
	bitOff := uint(off % 8)
	lo := v << bitOff
	n := (int(bitOff) + width + 7) / 8
	for i := 0; i < n && i < 8; i++ {
		data[byteOff+i] |= byte(lo >> (8 * uint(i)))
	}
	if int(bitOff)+width > 64 {
		data[byteOff+8] |= byte(v >> (64 - bitOff))
	}
}

// getBits reads width bits at bit offset off.
func getBits(data []byte, off, width int) uint64 {
	byteOff := off / 8
	bitOff := uint(off % 8)
	var lo uint64
	for i := 0; i < 8 && byteOff+i < len(data); i++ {
		lo |= uint64(data[byteOff+i]) << (8 * uint(i))
	}
	v := lo >> bitOff
	if int(bitOff)+width > 64 && byteOff+8 < len(data) {
		v |= uint64(data[byteOff+8]) << (64 - bitOff)
	}
	return v & maskFor(width)
}

// Get returns the i'th packed value.
func (p Packed) Get(i int) uint64 {
	if i < 0 || i >= p.N {
		panic(fmt.Sprintf("encoding: packed index %d out of range [0,%d)", i, p.N))
	}
	return getBits(p.Data, i*p.Width, p.Width)
}

// DecodeAll decodes all values into out, which must have length >= N, and
// returns out[:N]. Widths up to 56 bits take a streaming accumulator path
// that reads each input byte exactly once — the hot loop of every
// columnstore scan.
func (p Packed) DecodeAll(out []uint64) []uint64 {
	out = out[:p.N]
	w := p.Width
	if w > 56 {
		off := 0
		for i := range out {
			out[i] = getBits(p.Data, off, w)
			off += w
		}
		return out
	}
	mask := maskFor(w)
	data := p.Data
	var acc uint64
	nbits := 0
	pos := 0
	for i := range out {
		for nbits < w {
			if pos < len(data) {
				acc |= uint64(data[pos]) << uint(nbits)
				pos++
			}
			nbits += 8
		}
		out[i] = acc & mask
		acc >>= uint(w)
		nbits -= w
	}
	return out
}

// SizeBytes reports the payload size of the packed data.
func (p Packed) SizeBytes() int { return len(p.Data) }

// Marshal appends a self-describing serialization of p to dst.
func (p Packed) Marshal(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Width))
	dst = binary.AppendUvarint(dst, uint64(p.N))
	dst = binary.AppendUvarint(dst, uint64(len(p.Data)))
	return append(dst, p.Data...)
}

// UnmarshalPacked decodes a Packed from buf, returning it and the bytes read.
func UnmarshalPacked(buf []byte) (Packed, int, error) {
	var p Packed
	pos := 0
	w, n := binary.Uvarint(buf[pos:])
	if n <= 0 || w == 0 || w > 64 {
		return p, 0, fmt.Errorf("encoding: bad packed width")
	}
	pos += n
	cnt, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return p, 0, fmt.Errorf("encoding: bad packed count")
	}
	// Bound the count before any int conversion: a buffer cannot hold more
	// values than it has bits, and an unchecked huge uvarint would overflow
	// the int width computation below (untrusted input hardening; the fuzz
	// targets exercise these paths with adversarial buffers).
	if cnt > uint64(len(buf))*8 {
		return p, 0, fmt.Errorf("encoding: packed count %d exceeds buffer", cnt)
	}
	pos += n
	dlen, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return p, 0, fmt.Errorf("encoding: bad packed data length")
	}
	pos += n
	if dlen > uint64(len(buf)-pos) {
		return p, 0, fmt.Errorf("encoding: packed data truncated")
	}
	if want := (cnt*w + 7) / 8; dlen != want {
		return p, 0, fmt.Errorf("encoding: packed data length %d, want %d", dlen, want)
	}
	p.Width = int(w)
	p.N = int(cnt)
	p.Data = buf[pos : pos+int(dlen)]
	return p, pos + int(dlen), nil
}
