package encoding

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Dict is an insertion-ordered string dictionary mapping values to dense
// uint32 ids. The columnstore keeps one *primary* dictionary per string
// column of a table (shared by all its segments) plus, when a segment
// encounters values absent from the primary dictionary at build time, a
// *local* dictionary private to that segment — the two-level scheme of §2.2.
//
// A Dict supports concurrent readers with one writer: ids are never removed
// or reassigned, so a reader that captured SnapshotValues sees a stable
// prefix even while the tuple mover appends new entries.
type Dict struct {
	mu    sync.RWMutex
	byVal map[string]uint32
	vals  []string
	bytes int // cumulative value bytes, for size accounting
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byVal: make(map[string]uint32)}
}

// Add returns the id of s, inserting it if absent.
func (d *Dict) Add(s string) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byVal[s]; ok {
		return id
	}
	id := uint32(len(d.vals))
	d.byVal[s] = id
	d.vals = append(d.vals, s)
	d.bytes += len(s)
	return id
}

// Lookup returns the id of s and whether it is present.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byVal[s]
	return id, ok
}

// Value returns the string for id. It panics on out-of-range ids.
func (d *Dict) Value(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[id]
}

// Len returns the number of entries.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// SnapshotValues returns the current id->value slice. The prefix visible to
// the caller is immutable; later Adds do not affect it. Do not modify.
func (d *Dict) SnapshotValues() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals
}

// Values returns the dictionary's backing slice, indexed by id. The caller
// must not modify it. Alias of SnapshotValues kept for readability at
// call sites that own the dictionary exclusively.
func (d *Dict) Values() []string { return d.SnapshotValues() }

// SizeBytes estimates the dictionary's serialized size.
func (d *Dict) SizeBytes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.bytes + 4*len(d.vals)
}

// Marshal appends a serialization of the dictionary to dst.
func (d *Dict) Marshal(dst []byte) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	dst = binary.AppendUvarint(dst, uint64(len(d.vals)))
	for _, v := range d.vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// UnmarshalDict decodes a dictionary from buf, returning it and the bytes read.
func UnmarshalDict(buf []byte) (*Dict, int, error) {
	pos := 0
	n64, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("encoding: bad dict length")
	}
	pos += n
	d := NewDict()
	for i := uint64(0); i < n64; i++ {
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("encoding: dict truncated at entry %d", i)
		}
		pos += n
		// Compare in uint64: an adversarial length would wrap the int
		// conversion negative and slip past a pos+int(l) bounds check.
		if l > uint64(len(buf)-pos) {
			return nil, 0, fmt.Errorf("encoding: dict value truncated at entry %d", i)
		}
		d.Add(string(buf[pos : pos+int(l)]))
		pos += int(l)
	}
	if d.Len() != int(n64) {
		return nil, 0, fmt.Errorf("encoding: dict contains duplicate entries")
	}
	return d, pos, nil
}
