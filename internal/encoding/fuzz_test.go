package encoding

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The fuzz targets below each do two things with one input: (1) interpret the
// bytes as values and check that encode → marshal → unmarshal → decode is the
// identity, and (2) feed the raw bytes straight into the unmarshal routines,
// which must reject corrupt input with an error — never panic or misparse —
// since segment payloads come back from storage, where fault injection (and
// real disks) can hand back arbitrary bytes.

// fuzzVals derives a uint64 slice from fuzz bytes: a width selector byte
// followed by values assembled from the remaining bytes, masked so the fuzzer
// explores narrow widths (long runs, small dictionaries) as well as wide ones.
func fuzzVals(data []byte) []uint64 {
	if len(data) == 0 {
		return nil
	}
	width := int(data[0]%64) + 1
	mask := uint64(1)<<uint(width) - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	data = data[1:]
	vals := make([]uint64, 0, len(data)/2+1)
	for i := 0; i < len(data); i += 2 {
		var v uint64
		for j := i; j < i+2 && j < len(data); j++ {
			v = v<<8 | uint64(data[j])
		}
		vals = append(vals, v&mask)
	}
	return vals
}

func FuzzBitpackRoundtrip(f *testing.F) {
	f.Add([]byte{7, 1, 2, 3, 4, 255, 0})
	f.Add([]byte{63, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := fuzzVals(data)
		p := PackSlice(vals)
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("Get(%d) = %d, want %d", i, got, want)
			}
		}
		dec := p.DecodeAll(make([]uint64, len(vals)))
		for i, want := range vals {
			if dec[i] != want {
				t.Fatalf("DecodeAll[%d] = %d, want %d", i, dec[i], want)
			}
		}
		buf := p.Marshal(nil)
		q, read, err := UnmarshalPacked(buf)
		if err != nil {
			t.Fatalf("UnmarshalPacked(Marshal): %v", err)
		}
		if read != len(buf) || q.N != p.N || q.Width != p.Width || !bytes.Equal(q.Data, p.Data) {
			t.Fatalf("packed roundtrip mismatch: read %d/%d, n %d/%d, width %d/%d",
				read, len(buf), q.N, p.N, q.Width, p.Width)
		}

		// Raw bytes must never panic; successful parses must stay in bounds.
		if r, _, err := UnmarshalPacked(data); err == nil {
			if r.N > 0 {
				_ = r.Get(r.N - 1)
				_ = r.DecodeAll(make([]uint64, r.N))
			}
		}
	})
}

func FuzzRLERoundtrip(f *testing.F) {
	f.Add([]byte{2, 1, 1, 1, 1, 9, 9, 9, 9})
	f.Add([]byte{64, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(binary.AppendUvarint(binary.AppendUvarint(nil, 1<<40), 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := fuzzVals(data)
		r := RLEEncode(vals)
		if r.Len() != len(vals) {
			t.Fatalf("RLE.Len = %d, want %d", r.Len(), len(vals))
		}
		for i, want := range vals {
			if got := r.Get(i); got != want {
				t.Fatalf("Get(%d) = %d, want %d", i, got, want)
			}
		}
		dec := r.DecodeAll(make([]uint64, len(vals)))
		for i, want := range vals {
			if dec[i] != want {
				t.Fatalf("DecodeAll[%d] = %d, want %d", i, dec[i], want)
			}
		}
		buf := r.Marshal(nil)
		q, read, err := UnmarshalRLE(buf)
		if err != nil {
			t.Fatalf("UnmarshalRLE(Marshal): %v", err)
		}
		if read != len(buf) || q.Len() != r.Len() || q.Runs() != r.Runs() {
			t.Fatalf("rle roundtrip mismatch: read %d/%d, len %d/%d, runs %d/%d",
				read, len(buf), q.Len(), r.Len(), q.Runs(), r.Runs())
		}

		if q2, _, err := UnmarshalRLE(data); err == nil && q2.Len() > 0 {
			_ = q2.Get(q2.Len() - 1)
			_ = q2.DecodeAll(make([]uint64, q2.Len()))
		}
	})
}

func FuzzDictRoundtrip(f *testing.F) {
	f.Add([]byte("north\x00south\x00east\x00west"))
	f.Add([]byte{0, 0, 0})
	f.Add(binary.AppendUvarint(nil, 1<<50))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDict()
		var ids []uint32
		var strs []string
		for _, part := range bytes.Split(data, []byte{0}) {
			s := string(part)
			ids = append(ids, d.Add(s))
			strs = append(strs, s)
		}
		for i, id := range ids {
			if got := d.Value(id); got != strs[i] {
				t.Fatalf("Value(Add(%q)) = %q", strs[i], got)
			}
			if id2, ok := d.Lookup(strs[i]); !ok || id2 != id {
				t.Fatalf("Lookup(%q) = %d,%v, want %d", strs[i], id2, ok, id)
			}
		}
		buf := d.Marshal(nil)
		q, read, err := UnmarshalDict(buf)
		if err != nil {
			t.Fatalf("UnmarshalDict(Marshal): %v", err)
		}
		if read != len(buf) || q.Len() != d.Len() {
			t.Fatalf("dict roundtrip mismatch: read %d/%d, len %d/%d", read, len(buf), q.Len(), d.Len())
		}
		for i, s := range d.SnapshotValues() {
			if q.Value(uint32(i)) != s {
				t.Fatalf("dict entry %d: %q != %q", i, q.Value(uint32(i)), s)
			}
		}

		if q2, _, err := UnmarshalDict(data); err == nil && q2.Len() > 0 {
			_ = q2.Value(uint32(q2.Len() - 1))
		}
	})
}
