package encoding

import "sort"

// Reorder computes a row permutation for a row group that lengthens value
// runs, approximating the Vertipaq optimization of §2.2 (rows within a row
// group may be stored in any order, so the build picks one that compresses
// well). The heuristic sorts rows lexicographically with columns considered
// in order of increasing cardinality: low-cardinality columns form long runs
// at the major sort positions, and each higher-cardinality column still forms
// runs within the blocks induced by the columns before it.
//
// cols holds one code slice per participating column, all of equal length.
// The returned perm maps new position -> old position; perm is nil when there
// is nothing to gain (zero or one row, or no columns).
func Reorder(cols [][]uint64) []int {
	if len(cols) == 0 || len(cols[0]) < 2 {
		return nil
	}
	n := len(cols[0])

	// Order columns by ascending distinct count (sampled for large groups —
	// exact cardinality is not needed, only a ranking).
	type colCard struct {
		idx  int
		card int
	}
	cards := make([]colCard, len(cols))
	for i, c := range cols {
		cards[i] = colCard{idx: i, card: approxDistinct(c)}
	}
	sort.Slice(cards, func(a, b int) bool {
		if cards[a].card != cards[b].card {
			return cards[a].card < cards[b].card
		}
		return cards[a].idx < cards[b].idx
	})

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ra, rb := perm[a], perm[b]
		for _, cc := range cards {
			va, vb := cols[cc.idx][ra], cols[cc.idx][rb]
			if va != vb {
				return va < vb
			}
		}
		return ra < rb // stable tiebreak keeps the sort deterministic
	})
	return perm
}

// approxDistinct estimates the number of distinct values in c, sampling at
// most 4096 entries for large inputs.
func approxDistinct(c []uint64) int {
	const sample = 4096
	step := 1
	if len(c) > sample {
		step = len(c) / sample
	}
	seen := make(map[uint64]struct{}, sample)
	for i := 0; i < len(c); i += step {
		seen[c[i]] = struct{}{}
	}
	return len(seen)
}

// ApplyPerm permutes vals by perm (new position -> old position) into a new
// slice. A nil perm returns vals unchanged.
func ApplyPerm(vals []uint64, perm []int) []uint64 {
	if perm == nil {
		return vals
	}
	out := make([]uint64, len(vals))
	for newPos, oldPos := range perm {
		out[newPos] = vals[oldPos]
	}
	return out
}

// RunCount returns the number of RLE runs in vals — the objective Reorder
// minimizes (summed across columns).
func RunCount(vals []uint64) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	return runs
}
