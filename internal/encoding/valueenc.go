package encoding

import (
	"fmt"
	"math"

	"apollo/internal/bits"
)

// NumKind identifies the value-based encoding variant applied to a numeric
// column segment before compression (§2.2 "value based encoding": numbers are
// scaled by a power of ten and rebased so that the remaining codes are small
// non-negative integers).
type NumKind uint8

// Value-encoding variants.
const (
	NumOffset      NumKind = iota // code = v - Base
	NumScaled                     // code = v/10^Scale - Base (exact division)
	NumFloatScaled                // code = round(v*10^Scale) - Base (exact)
	NumFloatRaw                   // code = IEEE-754 bits of v (no value encoding)
)

// NumericEncoding describes how a numeric segment's codes map back to values.
type NumericEncoding struct {
	Kind  NumKind
	Base  int64 // offset subtracted from scaled values
	Scale int8  // power-of-ten exponent
}

var pow10 = [...]int64{1, 10, 100, 1000, 10000, 100000, 1000000}

const maxScale = 6

// AnalyzeInts chooses a value encoding for an int64 (or date) column and
// returns the per-row codes. Positions set in nulls get code 0 and are
// excluded from the analysis. An all-NULL or empty segment encodes as
// NumOffset with base 0.
func AnalyzeInts(vals []int64, nulls *bits.Bitmap) (NumericEncoding, []uint64) {
	isNull := func(i int) bool { return nulls != nil && nulls.Get(i) }

	// Find min and the largest common power-of-ten divisor.
	var minV int64
	scale := maxScale
	seen := false
	for i, v := range vals {
		if isNull(i) {
			continue
		}
		if !seen {
			minV = v
			seen = true
		} else if v < minV {
			minV = v
		}
		for scale > 0 && v%pow10[scale] != 0 {
			scale--
		}
	}
	if !seen {
		return NumericEncoding{Kind: NumOffset}, make([]uint64, len(vals))
	}
	enc := NumericEncoding{Kind: NumOffset, Base: minV}
	if scale > 0 {
		enc = NumericEncoding{Kind: NumScaled, Base: minV / pow10[scale], Scale: int8(scale)}
	}
	codes := make([]uint64, len(vals))
	for i, v := range vals {
		if isNull(i) {
			continue
		}
		if enc.Kind == NumScaled {
			codes[i] = uint64(v/pow10[enc.Scale]) - uint64(enc.Base)
		} else {
			codes[i] = uint64(v) - uint64(enc.Base)
		}
	}
	return enc, codes
}

// DecodeInt maps a code back to the original int64 value.
func (e NumericEncoding) DecodeInt(code uint64) int64 {
	switch e.Kind {
	case NumScaled:
		return (int64(code) + e.Base) * pow10[e.Scale]
	default:
		return int64(code) + e.Base
	}
}

// AnalyzeFloats chooses a value encoding for a float64 column and returns the
// per-row codes. If every value times some 10^k (k ≤ 4) is an exact integer of
// magnitude < 2^52, the column is encoded as scaled integers; otherwise raw
// IEEE-754 bits are used (which still compress well under RLE for repeated
// values).
func AnalyzeFloats(vals []float64, nulls *bits.Bitmap) (NumericEncoding, []uint64) {
	isNull := func(i int) bool { return nulls != nil && nulls.Get(i) }

	const maxFloatScale = 4
	scale := -1
scaleSearch:
	for k := 0; k <= maxFloatScale; k++ {
		m := math.Pow(10, float64(k))
		for i, v := range vals {
			if isNull(i) {
				continue
			}
			s := v * m
			if s != math.Trunc(s) || math.Abs(s) >= 1<<52 || math.IsInf(s, 0) || math.IsNaN(s) {
				continue scaleSearch
			}
		}
		scale = k
		break
	}
	codes := make([]uint64, len(vals))
	if scale < 0 {
		for i, v := range vals {
			if isNull(i) {
				continue
			}
			codes[i] = math.Float64bits(v)
		}
		return NumericEncoding{Kind: NumFloatRaw}, codes
	}
	m := math.Pow(10, float64(scale))
	var minV int64
	seen := false
	for i, v := range vals {
		if isNull(i) {
			continue
		}
		s := int64(v * m)
		if !seen || s < minV {
			minV = s
			seen = true
		}
	}
	enc := NumericEncoding{Kind: NumFloatScaled, Base: minV, Scale: int8(scale)}
	for i, v := range vals {
		if isNull(i) {
			continue
		}
		codes[i] = uint64(int64(v*m)) - uint64(minV)
	}
	return enc, codes
}

// DecodeFloat maps a code back to the original float64 value.
func (e NumericEncoding) DecodeFloat(code uint64) float64 {
	switch e.Kind {
	case NumFloatRaw:
		return math.Float64frombits(code)
	case NumFloatScaled:
		return float64(int64(code)+e.Base) / math.Pow(10, float64(e.Scale))
	default:
		return float64(e.DecodeInt(code))
	}
}

// String renders the encoding for EXPLAIN-style diagnostics.
func (e NumericEncoding) String() string {
	switch e.Kind {
	case NumOffset:
		return fmt.Sprintf("offset(base=%d)", e.Base)
	case NumScaled:
		return fmt.Sprintf("scaled(base=%d,10^%d)", e.Base, e.Scale)
	case NumFloatScaled:
		return fmt.Sprintf("fscaled(base=%d,10^-%d)", e.Base, e.Scale)
	default:
		return "fraw"
	}
}
