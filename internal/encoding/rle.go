package encoding

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// RLE is a run-length-encoded vector of uint64 codes: parallel slices of run
// values and run lengths, plus a prefix-sum index enabling O(log R) random
// access — the property the paper relies on for bookmark lookups into
// RLE-compressed segments.
type RLE struct {
	Values []uint64
	Counts []uint32
	starts []uint32 // starts[i] = first row index of run i; built lazily
	n      int
}

// RLEEncode run-length encodes vals.
func RLEEncode(vals []uint64) *RLE {
	r := &RLE{n: len(vals)}
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		r.Values = append(r.Values, vals[i])
		r.Counts = append(r.Counts, uint32(j-i))
		i = j
	}
	return r
}

// Len returns the number of logical values.
func (r *RLE) Len() int { return r.n }

// Runs returns the number of runs.
func (r *RLE) Runs() int { return len(r.Values) }

func (r *RLE) buildIndex() {
	if r.starts != nil || len(r.Values) == 0 {
		return
	}
	r.starts = make([]uint32, len(r.Counts))
	var acc uint32
	for i, c := range r.Counts {
		r.starts[i] = acc
		acc += c
	}
}

// Get returns the i'th logical value via binary search over run starts.
func (r *RLE) Get(i int) uint64 {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("encoding: rle index %d out of range [0,%d)", i, r.n))
	}
	r.buildIndex()
	k := sort.Search(len(r.starts), func(j int) bool { return r.starts[j] > uint32(i) }) - 1
	return r.Values[k]
}

// DecodeAll expands the runs into out, which must have length >= Len.
func (r *RLE) DecodeAll(out []uint64) []uint64 {
	out = out[:r.n]
	pos := 0
	for i, v := range r.Values {
		for c := uint32(0); c < r.Counts[i]; c++ {
			out[pos] = v
			pos++
		}
	}
	return out
}

// SizeBytes estimates the serialized payload size.
func (r *RLE) SizeBytes() int {
	// Conservative estimate used by the encoder's RLE-vs-bitpack choice:
	// varint value + varint count per run; assume 5 bytes/run average.
	return 10 * len(r.Values)
}

// Marshal appends a self-describing serialization of r to dst.
func (r *RLE) Marshal(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.n))
	dst = binary.AppendUvarint(dst, uint64(len(r.Values)))
	for i := range r.Values {
		dst = binary.AppendUvarint(dst, r.Values[i])
		dst = binary.AppendUvarint(dst, uint64(r.Counts[i]))
	}
	return dst
}

// UnmarshalRLE decodes an RLE from buf, returning it and the bytes read.
func UnmarshalRLE(buf []byte) (*RLE, int, error) {
	pos := 0
	total, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("encoding: bad rle length")
	}
	pos += n
	runs, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("encoding: bad rle run count")
	}
	pos += n
	// Every run takes at least two bytes (value + count uvarints), so a run
	// count beyond that bound is corrupt; checking before allocation keeps an
	// adversarial header from sizing the slices (untrusted input hardening).
	if runs > uint64(len(buf)-pos)/2 {
		return nil, 0, fmt.Errorf("encoding: rle run count %d exceeds buffer", runs)
	}
	r := &RLE{
		Values: make([]uint64, runs),
		Counts: make([]uint32, runs),
		n:      int(total),
	}
	var acc uint64
	for i := 0; i < int(runs); i++ {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("encoding: rle truncated at run %d", i)
		}
		pos += n
		c, n2 := binary.Uvarint(buf[pos:])
		if n2 <= 0 || c == 0 || c > 0xFFFFFFFF {
			return nil, 0, fmt.Errorf("encoding: bad rle count at run %d", i)
		}
		pos += n2
		r.Values[i] = v
		r.Counts[i] = uint32(c)
		acc += c
	}
	if acc != total {
		return nil, 0, fmt.Errorf("encoding: rle counts sum %d, want %d", acc, total)
	}
	return r, pos, nil
}
