package qerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestWrappingAndUnwrap(t *testing.T) {
	base := errors.New("disk on fire")
	err := WithGroup("scan", 7, base)
	if !Is(err) {
		t.Fatal("Is = false for QueryError")
	}
	if !errors.Is(err, base) {
		t.Fatal("errors.Is does not see through QueryError")
	}
	if got := err.Error(); !strings.Contains(got, "scan (row group 7)") {
		t.Fatalf("message %q lacks component attribution", got)
	}
	// Re-wrapping must not stack.
	again := New("hashjoin", err)
	var qe *QueryError
	if !errors.As(again, &qe) || qe.Op != "scan" {
		t.Fatalf("rewrap changed attribution: %v", again)
	}
	if New("scan", nil) != nil {
		t.Fatal("New(nil) != nil")
	}
}

func TestContextErrorsVisible(t *testing.T) {
	err := New("guard", context.Canceled)
	if !errors.Is(err, context.Canceled) {
		t.Fatal("context.Canceled hidden by QueryError")
	}
}

func TestFromPanic(t *testing.T) {
	if FromPanic("scan", NoGroup, nil) != nil {
		t.Fatal("nil recovery must produce nil error")
	}
	err := func() (err error) {
		defer func() { err = FromPanic("scan", 3, recover()) }()
		panic("index out of range")
	}()
	var qe *QueryError
	if !errors.As(err, &qe) || !qe.Panicked || qe.Group != 3 {
		t.Fatalf("panic not converted: %v", err)
	}
	if len(qe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	// Error panics keep their identity through Unwrap.
	sentinel := fmt.Errorf("sentinel")
	err = func() (err error) {
		defer func() { err = FromPanic("hashagg", NoGroup, recover()) }()
		panic(sentinel)
	}()
	if !errors.Is(err, sentinel) {
		t.Fatal("error panic lost identity")
	}
}
