// Package qerr defines the engine's structured query-error type. A
// QueryError names the failing component — the operator that raised it and,
// when known, the row group it was processing — so a failure in a deep
// operator tree surfaces as "hashjoin: ..." or "scan (row group 7): ..."
// instead of an anonymous error or, worse, a process-killing panic.
//
// The executor's panic-containment boundaries (the batch-mode Guard operator
// and the parallel scan's worker wrappers) use FromPanic to convert a
// recovered panic into a QueryError carrying the panic value and stack, so
// one bad segment fails one query, never the process.
package qerr

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// NoGroup marks a QueryError not attributable to a specific row group.
const NoGroup = -1

// QueryError is a structured execution error: which operator failed, which
// row group it was processing (NoGroup when not applicable), whether the
// failure was a contained panic, and the underlying cause.
type QueryError struct {
	Op       string // operator name: "scan", "hashjoin", "hashagg", ...
	Group    int    // row group id, or NoGroup
	Panicked bool   // true when converted from a recovered panic
	Err      error  // underlying cause
	Stack    []byte // captured stack for panics (diagnostics only)
}

// Error implements error.
func (e *QueryError) Error() string {
	where := e.Op
	if e.Group != NoGroup {
		where = fmt.Sprintf("%s (row group %d)", e.Op, e.Group)
	}
	if e.Panicked {
		return fmt.Sprintf("query error in %s: panic: %v", where, e.Err)
	}
	return fmt.Sprintf("query error in %s: %v", where, e.Err)
}

// Unwrap exposes the cause so errors.Is/As see through the wrapper (e.g.
// context.Canceled, storage corruption errors).
func (e *QueryError) Unwrap() error { return e.Err }

// New wraps err as a QueryError raised by op with no row-group attribution.
// A nil err returns nil; an err that already is a QueryError is returned
// unchanged so nesting operators don't stack wrappers.
func New(op string, err error) error {
	return WithGroup(op, NoGroup, err)
}

// WithGroup wraps err as a QueryError raised by op while processing row
// group. Nil errors and existing QueryErrors pass through unchanged.
func WithGroup(op string, group int, err error) error {
	if err == nil {
		return nil
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		return err
	}
	return &QueryError{Op: op, Group: group, Err: err}
}

// FromPanic converts a recovered panic value into a QueryError. Callers pass
// the result of recover(); a nil recovery returns nil so it can be used
// unconditionally in deferred handlers.
func FromPanic(op string, group int, rec any) error {
	if rec == nil {
		return nil
	}
	cause, ok := rec.(error)
	if !ok {
		cause = fmt.Errorf("%v", rec)
	}
	return &QueryError{Op: op, Group: group, Panicked: true, Err: cause, Stack: debug.Stack()}
}

// Is reports whether err is (or wraps) a QueryError.
func Is(err error) bool {
	var qe *QueryError
	return errors.As(err, &qe)
}
