// Package scrub is the background integrity scrubber: a paced worker that
// walks every blob's at-rest copies (in-memory and backing file) and the
// closed write-ahead-log segments, verifying checksums off the query path.
// Cold blobs are otherwise checksum-verified only when a query happens to
// read them, so silent bit rot can sit undetected for the exact data a
// mission-critical scan will eventually need; the scrubber finds it first,
// repairs from whichever copy survives, and quarantines (never serves) what
// cannot be repaired. Pacing is byte-budgeted, following the paper's
// discipline that background maintenance must not starve foreground load.
package scrub

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"apollo/internal/catalog"
	"apollo/internal/metrics"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/wal"
)

var (
	mPasses = metrics.Default.Counter("apollo_scrub_passes_total",
		"integrity-scrub passes completed")
	mBlobs = metrics.Default.Counter("apollo_scrub_blobs_total",
		"blobs checksum-verified by the scrubber")
	mBytes = metrics.Default.Counter("apollo_scrub_bytes_total",
		"at-rest bytes checksum-verified by the scrubber")
	mRepaired = metrics.Default.Counter("apollo_scrub_repaired_total",
		"blobs repaired from a surviving good copy")
	mQuarantined = metrics.Default.Counter("apollo_scrub_quarantined_total",
		"blobs quarantined (corrupt on every copy)")
	mWALCorrupt = metrics.Default.Counter("apollo_scrub_wal_corruptions_total",
		"closed WAL segments found corrupt by the scrubber")
	mPaceSleeps = metrics.Default.Counter("apollo_scrub_pace_sleeps_total",
		"pacing sleeps taken to keep the scrubber under its byte budget")
)

// DefaultBytesPerSec is the pacing budget when none is configured: generous
// for an in-process store but still bounded, so a huge cold tier cannot
// monopolize memory bandwidth.
const DefaultBytesPerSec = 256 << 20

// Options configure a Scrubber.
type Options struct {
	// Interval is the pause between background passes (default 1 minute).
	Interval time.Duration
	// BytesPerSec caps verification throughput (default DefaultBytesPerSec).
	BytesPerSec int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Minute
	}
	if o.BytesPerSec <= 0 {
		o.BytesPerSec = DefaultBytesPerSec
	}
	return o
}

// Report summarizes one scrub pass.
type Report struct {
	Started  time.Time
	Duration time.Duration

	Blobs           int64 // blobs examined
	Bytes           int64 // at-rest bytes examined (both copies)
	RepairedBacking int64 // backing files rewritten from memory
	RepairedMemory  int64 // in-memory copies reloaded from the backing file
	Quarantined     int64 // blobs corrupt on every copy, now quarantined
	Skipped         int64 // deleted or already-quarantined blobs passed over

	WALSegments   int   // closed WAL segments verified
	WALRecords    int64 // records inside them
	WALCorruption error // first corruption found in a closed segment (nil if none)
	// CheckpointTriggered reports that WAL corruption was self-healed by
	// forcing a checkpoint (the image supersedes the damaged history, which
	// the next truncation discards).
	CheckpointTriggered bool

	Errors []string // non-fatal per-blob errors (capped)
}

// Scrubber walks a store (and its owning catalog, for per-table attribution
// and WAL coverage) verifying integrity. Create with New; run passes
// manually with RunPass or in the background with Start.
type Scrubber struct {
	store *storage.Store
	cat   *catalog.Catalog
	opts  Options

	// walDir and walBelow scope WAL verification: segments with sequence
	// below walBelow() in walDir are closed and immutable. Empty walDir
	// (in-memory DB) skips WAL verification.
	walDir   string
	walBelow func() uint64
	// checkpoint, when set, is invoked to self-heal after WAL corruption:
	// checkpointing rotates the log and truncates the damaged history away.
	checkpoint func() error

	mu      sync.Mutex
	last    *Report
	passes  int64
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds a scrubber. cat may be nil (no per-table attribution); walDir
// may be "" (no WAL verification); checkpoint may be nil (report only).
func New(store *storage.Store, cat *catalog.Catalog, walDir string, walBelow func() uint64, checkpoint func() error, opts Options) *Scrubber {
	return &Scrubber{
		store:      store,
		cat:        cat,
		opts:       opts.withDefaults(),
		walDir:     walDir,
		walBelow:   walBelow,
		checkpoint: checkpoint,
	}
}

// blobOwners maps each live blob id to the tables referencing it, so a
// quarantine can degrade the right tables' Health.
func (s *Scrubber) blobOwners() map[uint64][]*table.Table {
	if s.cat == nil {
		return nil
	}
	owners := make(map[uint64][]*table.Table)
	for _, name := range s.cat.List() {
		t, err := s.cat.Get(name)
		if err != nil {
			continue
		}
		keep := make(map[uint64]bool)
		t.LiveBlobs(keep)
		for id := range keep {
			owners[id] = append(owners[id], t)
		}
	}
	return owners
}

// RunPass walks every blob and the closed WAL segments once, pacing by the
// configured byte budget. Concurrent queries keep running; repairs and
// quarantines are applied through the store's own synchronization.
func (s *Scrubber) RunPass(ctx context.Context) (*Report, error) {
	return s.RunPassPaced(ctx, s.opts.BytesPerSec)
}

// RunPassPaced is RunPass at an explicit byte budget for this pass only.
// bytesPerSec <= 0 disables pacing entirely (benchmarks measuring raw
// verification throughput; operator-forced full-speed passes).
func (s *Scrubber) RunPassPaced(ctx context.Context, bytesPerSec int64) (*Report, error) {
	rep := &Report{Started: time.Now()}
	owners := s.blobOwners()
	start := time.Now()
	bps := bytesPerSec

	for _, id := range s.store.IDs() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		out, n, err := s.store.ScrubBlob(id)
		rep.Bytes += n
		mBytes.Add(n)
		switch out {
		case storage.ScrubSkipped:
			rep.Skipped++
		default:
			rep.Blobs++
			mBlobs.Inc()
		}
		switch out {
		case storage.ScrubRepairedBacking:
			rep.RepairedBacking++
			mRepaired.Inc()
		case storage.ScrubRepairedMemory:
			rep.RepairedMemory++
			mRepaired.Inc()
		case storage.ScrubQuarantined:
			rep.Quarantined++
			mQuarantined.Inc()
			for _, t := range owners[uint64(id)] {
				t.NoteQuarantine(uint64(id), fmt.Errorf("scrub: blob %d corrupt on every copy", id))
			}
		}
		if err != nil && len(rep.Errors) < 16 {
			rep.Errors = append(rep.Errors, err.Error())
		}
		// Pacing: sleep whenever verification runs ahead of the byte budget.
		if bps <= 0 {
			continue
		}
		if ahead := time.Duration(float64(rep.Bytes)/float64(bps)*float64(time.Second)) - time.Since(start); ahead > time.Millisecond {
			mPaceSleeps.Inc()
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(min(ahead, 50*time.Millisecond)):
			}
		}
	}

	if s.walDir != "" && s.walBelow != nil {
		segs, recs, err := wal.VerifySegments(s.walDir, s.walBelow())
		rep.WALSegments = segs
		rep.WALRecords = recs
		if err != nil && errors.Is(err, wal.ErrCorrupt) {
			rep.WALCorruption = err
			mWALCorrupt.Inc()
			if s.checkpoint != nil {
				// Self-heal: a checkpoint snapshots current state (which no
				// longer needs the damaged history) and truncates the log
				// below its rotation point, discarding the corrupt segment.
				if cerr := s.checkpoint(); cerr == nil {
					rep.CheckpointTriggered = true
				} else if len(rep.Errors) < 16 {
					rep.Errors = append(rep.Errors, fmt.Sprintf("self-heal checkpoint: %v", cerr))
				}
			}
		} else if err != nil && len(rep.Errors) < 16 {
			rep.Errors = append(rep.Errors, err.Error())
		}
	}

	rep.Duration = time.Since(rep.Started)
	mPasses.Inc()
	s.mu.Lock()
	s.last = rep
	s.passes++
	s.mu.Unlock()
	return rep, nil
}

// Last returns the most recent pass report (nil if none) and the lifetime
// pass count.
func (s *Scrubber) Last() (*Report, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.passes
}

// Start launches the background loop: one pass per interval. No-op if
// already running.
func (s *Scrubber) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.opts.Interval)
		defer t.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-stop
			cancel()
		}()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.RunPass(ctx) //nolint:errcheck — pass errors land in the report
			}
		}
	}()
}

// Stop halts the background loop (cancelling any in-flight pass) and waits
// for it to exit. No-op if not running.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
