package scrub

import (
	"bytes"
	"context"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"apollo/internal/storage"
	"apollo/internal/wal"
)

func newBackedStore(t *testing.T) (*storage.Store, *storage.DiskBacking) {
	t.Helper()
	s := storage.NewStore(1 << 20)
	b, err := storage.OpenDiskBacking(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachBacking(b)
	return s, b
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0xA5
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// One pass over a mixed population: a clean blob stays clean, a blob with a
// rotted backing file is repaired from memory, and a blob corrupt on every
// copy is quarantined — all tallied in the report.
func TestRunPassRepairsAndQuarantines(t *testing.T) {
	s, b := newBackedStore(t)
	clean, err := s.Put(bytes.Repeat([]byte("clean-"), 64), storage.None)
	if err != nil {
		t.Fatal(err)
	}
	fileBad, err := s.Put(bytes.Repeat([]byte("file-rot-"), 64), storage.None)
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := s.Put(bytes.Repeat([]byte("doomed-"), 64), storage.None)
	if err != nil {
		t.Fatal(err)
	}
	corruptFile(t, b.Path(fileBad))
	if err := s.Corrupt(doomed); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, b.Path(doomed))

	sc := New(s, nil, "", nil, nil, Options{})
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blobs != 3 {
		t.Fatalf("Blobs = %d, want 3", rep.Blobs)
	}
	if rep.RepairedBacking != 1 {
		t.Fatalf("RepairedBacking = %d, want 1", rep.RepairedBacking)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", rep.Quarantined)
	}
	if rep.Bytes <= 0 {
		t.Fatal("no bytes accounted")
	}

	// Clean blob still serves; quarantined one never does.
	if _, err := s.Get(clean); err != nil {
		t.Fatalf("Get(clean) after pass: %v", err)
	}
	if _, err := s.Get(doomed); !storage.IsQuarantined(err) {
		t.Fatalf("Get(doomed): got %v, want quarantine", err)
	}

	// A second pass sees the quarantined blob as a skip, nothing to repair.
	rep2, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RepairedBacking != 0 || rep2.Quarantined != 0 {
		t.Fatalf("second pass repaired %d / quarantined %d, want 0/0",
			rep2.RepairedBacking, rep2.Quarantined)
	}
	if rep2.Skipped != 1 {
		t.Fatalf("second pass Skipped = %d, want 1", rep2.Skipped)
	}
	if last, passes := sc.Last(); last == nil || passes != 2 {
		t.Fatalf("Last() = %v, %d; want report, 2", last, passes)
	}
}

// WAL coverage: a corrupted closed segment is detected and the self-heal
// checkpoint callback fires; a clean log triggers nothing.
func TestRunPassVerifiesWALAndSelfHeals(t *testing.T) {
	s, _ := newBackedStore(t)
	dir := t.TempDir()
	w, err := wal.Create(dir, 1, wal.Options{Policy: wal.FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Enough records to roll through several segments.
	for i := 0; i < 12; i++ {
		rec := &wal.Record{Type: wal.TDeltaInsert, Table: "t", A: 1, B: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 24)}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stat()
	if st.Seq < 2 {
		t.Fatalf("expected rotation, still on segment %d", st.Seq)
	}

	var healed atomic.Int64
	sc := New(s, nil, dir, func() uint64 { return w.Stat().Seq },
		func() error { healed.Add(1); return nil }, Options{})

	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALSegments == 0 || rep.WALRecords == 0 {
		t.Fatalf("clean pass verified %d segments / %d records, want > 0",
			rep.WALSegments, rep.WALRecords)
	}
	if rep.WALCorruption != nil || healed.Load() != 0 {
		t.Fatal("clean log must not report corruption or trigger a checkpoint")
	}

	// Flip a byte inside the first (closed) segment's frame area.
	seg := dir + "/00000001.wal"
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-5] ^= 0xFF
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALCorruption == nil {
		t.Fatal("corrupted closed segment not detected")
	}
	if !rep.CheckpointTriggered || healed.Load() != 1 {
		t.Fatal("self-heal checkpoint did not fire")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundLoopRunsAndStops(t *testing.T) {
	s, _ := newBackedStore(t)
	if _, err := s.Put([]byte("background-blob"), storage.None); err != nil {
		t.Fatal(err)
	}
	sc := New(s, nil, "", nil, nil, Options{Interval: 5 * time.Millisecond})
	sc.Start()
	sc.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, passes := sc.Last(); passes >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never completed two passes")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	sc.Stop() // idempotent
	_, after := sc.Last()
	time.Sleep(20 * time.Millisecond)
	if _, now := sc.Last(); now != after {
		t.Fatal("passes advanced after Stop")
	}
}

// Pacing: with a tiny byte budget, a pass over real data must take measurable
// wall-clock time (i.e. the limiter actually sleeps).
func TestPacingThrottles(t *testing.T) {
	s, _ := newBackedStore(t)
	for i := 0; i < 4; i++ {
		if _, err := s.Put(bytes.Repeat([]byte{byte(i)}, 4096), storage.None); err != nil {
			t.Fatal(err)
		}
	}
	sc := New(s, nil, "", nil, nil, Options{BytesPerSec: 64 << 10})
	startT := time.Now()
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(startT); el < 20*time.Millisecond {
		t.Fatalf("pass over %d bytes at 64KiB/s finished in %v — pacing not applied", rep.Bytes, el)
	}
	// And a cancelled context aborts mid-pace promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.RunPass(ctx); err == nil {
		t.Fatal("cancelled pass returned nil error")
	}
}
