package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Row codec: a compact schema-dependent binary encoding used by delta stores,
// spill files, and the row-store baseline's pages.
//
// Layout per row:
//
//	null bitmap  ceil(ncols/8) bytes, bit i set => column i is NULL
//	per non-NULL column, in schema order:
//	  Int64/Date: zig-zag varint
//	  Bool:       1 byte
//	  Float64:    8 bytes little-endian IEEE-754
//	  String:     uvarint length + bytes

// EncodeRow appends the encoding of row (which must match schema) to dst and
// returns the extended slice.
func EncodeRow(dst []byte, schema *Schema, row Row) []byte {
	n := len(schema.Cols)
	nullOff := len(dst)
	for i := 0; i < (n+7)/8; i++ {
		dst = append(dst, 0)
	}
	for i, col := range schema.Cols {
		v := row[i]
		if v.Null {
			dst[nullOff+i/8] |= 1 << uint(i%8)
			continue
		}
		switch col.Typ {
		case Int64, Date:
			dst = binary.AppendVarint(dst, v.I)
		case Bool:
			dst = append(dst, byte(v.I&1))
		case Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case String:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			panic(fmt.Sprintf("sqltypes: cannot encode type %v", col.Typ))
		}
	}
	return dst
}

// DecodeRow decodes one row from buf into a freshly allocated Row, returning
// the row and the number of bytes consumed.
func DecodeRow(buf []byte, schema *Schema) (Row, int, error) {
	row := make(Row, len(schema.Cols))
	n, err := DecodeRowInto(buf, schema, row)
	return row, n, err
}

// DecodeRowInto decodes one row from buf into row (len must equal the schema
// width) and returns the number of bytes consumed.
func DecodeRowInto(buf []byte, schema *Schema, row Row) (int, error) {
	ncols := len(schema.Cols)
	nullBytes := (ncols + 7) / 8
	if len(buf) < nullBytes {
		return 0, fmt.Errorf("sqltypes: row truncated in null bitmap")
	}
	nulls := buf[:nullBytes]
	pos := nullBytes
	for i, col := range schema.Cols {
		if nulls[i/8]&(1<<uint(i%8)) != 0 {
			row[i] = NewNull(col.Typ)
			continue
		}
		switch col.Typ {
		case Int64, Date:
			v, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return 0, fmt.Errorf("sqltypes: bad varint in column %d", i)
			}
			pos += n
			row[i] = Value{Typ: col.Typ, I: v}
		case Bool:
			if pos >= len(buf) {
				return 0, fmt.Errorf("sqltypes: row truncated in column %d", i)
			}
			row[i] = Value{Typ: Bool, I: int64(buf[pos] & 1)}
			pos++
		case Float64:
			if pos+8 > len(buf) {
				return 0, fmt.Errorf("sqltypes: row truncated in column %d", i)
			}
			row[i] = Value{Typ: Float64, F: math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))}
			pos += 8
		case String:
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return 0, fmt.Errorf("sqltypes: bad string length in column %d", i)
			}
			pos += n
			// Compare in uint64: a hostile length can overflow int and slip
			// past a pos+int(l) check as a negative slice bound.
			if l > uint64(len(buf)-pos) {
				return 0, fmt.Errorf("sqltypes: row truncated in column %d", i)
			}
			row[i] = Value{Typ: String, S: string(buf[pos : pos+int(l)])}
			pos += int(l)
		default:
			return 0, fmt.Errorf("sqltypes: cannot decode type %v", col.Typ)
		}
	}
	return pos, nil
}
