// Package sqltypes defines the engine-wide SQL type system: column types,
// scalar values, rows, schemas, comparison/hashing semantics, and a compact
// binary row codec used by delta stores and spill files.
//
// The type repertoire mirrors the subset of SQL Server types the paper's
// workloads exercise: 64-bit integers, double-precision floats, booleans,
// variable-length strings, and dates (stored as days since the Unix epoch).
package sqltypes

import "fmt"

// Type identifies a SQL column type.
type Type uint8

// Supported column types.
const (
	Unknown Type = iota
	Int64        // 64-bit signed integer
	Float64      // double-precision float
	Bool         // boolean
	String       // variable-length UTF-8 string
	Date         // days since 1970-01-01
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Bool:
		return "BOOLEAN"
	case String:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return "UNKNOWN"
	}
}

// ParseType maps a SQL type name (as produced by Type.String, plus common
// aliases) to a Type. It returns Unknown for unrecognized names.
func ParseType(s string) Type {
	switch s {
	case "BIGINT", "INT", "INTEGER", "SMALLINT", "TINYINT":
		return Int64
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return Float64
	case "BOOLEAN", "BOOL", "BIT":
		return Bool
	case "VARCHAR", "CHAR", "TEXT", "NVARCHAR", "STRING":
		return String
	case "DATE":
		return Date
	default:
		return Unknown
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool { return t == Int64 || t == Float64 }

// FixedWidth reports whether values of the type occupy a fixed number of
// bytes when encoded (everything except String).
func (t Type) FixedWidth() bool { return t != String && t != Unknown }

// Column describes one column of a schema.
type Column struct {
	Name     string
	Typ      Type
	Nullable bool
}

// String renders the column as "name TYPE [NULL]".
func (c Column) String() string {
	if c.Nullable {
		return fmt.Sprintf("%s %s NULL", c.Name, c.Typ)
	}
	return fmt.Sprintf("%s %s", c.Name, c.Typ)
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1 if absent.
// Column name matching is exact (the SQL binder lower-cases identifiers
// before they reach the schema).
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Project returns a new schema holding the columns at the given indices.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return &Schema{Cols: cols}
}

// Concat returns a schema with other's columns appended after s's.
func (s *Schema) Concat(other *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(other.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, other.Cols...)
	return &Schema{Cols: cols}
}

// Equal reports whether two schemas have identical columns.
func (s *Schema) Equal(other *Schema) bool {
	if len(s.Cols) != len(other.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != other.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(a BIGINT, b VARCHAR NULL)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c.String()
	}
	return out + ")"
}
