package sqltypes

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is a scalar SQL value. A Value carries its type tag so that row-mode
// execution can dispatch without a schema at hand. The zero Value is a typed
// NULL of Unknown type.
type Value struct {
	Typ  Type
	Null bool
	I    int64 // Int64 payload; Bool as 0/1; Date as days since epoch
	F    float64
	S    string
}

// Constructors.

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{Typ: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{Typ: Float64, F: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Typ: Bool, I: i}
}

// NewString returns a String value.
func NewString(v string) Value { return Value{Typ: String, S: v} }

// NewDate returns a Date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{Typ: Date, I: days} }

// NewNull returns a NULL of the given type.
func NewNull(t Type) Value { return Value{Typ: t, Null: true} }

// Bool reports the value's truth; only meaningful for Bool values.
func (v Value) Bool() bool { return !v.Null && v.I != 0 }

// AsFloat converts numeric values to float64 for mixed arithmetic.
func (v Value) AsFloat() float64 {
	if v.Typ == Float64 {
		return v.F
	}
	return float64(v.I)
}

// DateFromString parses "YYYY-MM-DD" into days since the Unix epoch.
func DateFromString(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sqltypes: invalid date %q: %w", s, err)
	}
	return t.Unix() / 86400, nil
}

// DateToString formats days since the Unix epoch as "YYYY-MM-DD".
func DateToString(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}

// String renders the value in SQL-literal-like form; NULLs render as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		// Render integral floats with one decimal so they read as floats.
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case String:
		return v.S
	case Date:
		return DateToString(v.I)
	default:
		return "UNKNOWN"
	}
}

// Compare orders two values of the same type family. NULL sorts before all
// non-NULL values (NULLS FIRST), matching the engine's sort semantics.
// Comparing Int64 with Float64 compares numerically.
func Compare(a, b Value) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	if a.Typ == Float64 || b.Typ == Float64 {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch a.Typ {
	case String:
		return strings.Compare(a.S, b.S)
	default: // Int64, Bool, Date — integer payloads
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
}

// Equal reports SQL equality for non-NULL semantics; two NULLs are Equal here
// (useful for grouping), distinct from the three-valued `=` handled by expr.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

var hashSeed = maphash.MakeSeed()

// Hash returns a 64-bit hash of the value, consistent with Equal: values that
// compare equal hash identically (Int64 and integral Float64 included).
func Hash(v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	if v.Null {
		h.WriteByte(0)
		return h.Sum64()
	}
	switch v.Typ {
	case String:
		h.WriteByte(1)
		h.WriteString(v.S)
	case Float64:
		f := v.F
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			// Hash integral floats as their integer value so that
			// Int64(2) and Float64(2.0) collide, matching Compare.
			writeUint64(&h, uint64(int64(f)))
		} else {
			h.WriteByte(3)
			writeUint64(&h, math.Float64bits(f))
		}
	default:
		writeUint64(&h, uint64(v.I))
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, u uint64) {
	var buf [9]byte
	buf[0] = 2
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// Row is an ordered tuple of values.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as "[v1 v2 ...]".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
