package sqltypes

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{Int64, Float64, Bool, String, Date} {
		if got := ParseType(typ.String()); got != typ {
			t.Errorf("ParseType(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
	if ParseType("BLOB") != Unknown {
		t.Error("unknown type name must parse to Unknown")
	}
	aliases := map[string]Type{"INT": Int64, "REAL": Float64, "TEXT": String, "BIT": Bool}
	for name, want := range aliases {
		if got := ParseType(name); got != want {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Typ: Int64},
		Column{Name: "b", Typ: String, Nullable: true},
		Column{Name: "c", Typ: Float64},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("b") != 1 || s.ColIndex("zzz") != -1 {
		t.Fatal("ColIndex wrong")
	}
	p := s.Project([]int{2, 0})
	if p.Cols[0].Name != "c" || p.Cols[1].Name != "a" {
		t.Fatal("Project wrong")
	}
	cat := s.Concat(p)
	if cat.Len() != 5 || cat.Cols[3].Name != "c" {
		t.Fatal("Concat wrong")
	}
	if !s.Equal(NewSchema(s.Cols...)) || s.Equal(p) {
		t.Fatal("Equal wrong")
	}
	want := "(a BIGINT, b VARCHAR NULL, c DOUBLE)"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestDateConversions(t *testing.T) {
	days, err := DateFromString("1970-01-02")
	if err != nil || days != 1 {
		t.Fatalf("DateFromString = %d, %v", days, err)
	}
	days, err = DateFromString("1994-01-15")
	if err != nil {
		t.Fatal(err)
	}
	if got := DateToString(days); got != "1994-01-15" {
		t.Fatalf("round trip = %q", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewString("abc"), NewString("abd"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(10), NewDate(20), -1},
		{NewNull(Int64), NewInt(-100), -1}, // NULLs first
		{NewInt(0), NewNull(Int64), 1},
		{NewNull(Int64), NewNull(String), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(42), NewInt(42)},
		{NewInt(42), NewFloat(42.0)},
		{NewString("x"), NewString("x")},
		{NewNull(Int64), NewNull(String)},
		{NewDate(5), NewDate(5)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("precondition: %v and %v must be Equal", p[0], p[1])
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash(%v) != Hash(%v) for Equal values", p[0], p[1])
		}
	}
	if Hash(NewInt(1)) == Hash(NewInt(2)) {
		t.Error("suspicious collision for 1 vs 2")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewFloat(3), "3.0"},
		{NewBool(true), "true"},
		{NewString("hi"), "hi"},
		{NewDate(0), "1970-01-01"},
		{NewNull(Int64), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "i", Typ: Int64, Nullable: true},
		Column{Name: "f", Typ: Float64, Nullable: true},
		Column{Name: "b", Typ: Bool, Nullable: true},
		Column{Name: "s", Typ: String, Nullable: true},
		Column{Name: "d", Typ: Date, Nullable: true},
	)
}

func TestRowCodecRoundTrip(t *testing.T) {
	schema := testSchema()
	rows := []Row{
		{NewInt(0), NewFloat(0), NewBool(false), NewString(""), NewDate(0)},
		{NewInt(-1 << 40), NewFloat(math.Pi), NewBool(true), NewString("héllo"), NewDate(20000)},
		{NewNull(Int64), NewNull(Float64), NewNull(Bool), NewNull(String), NewNull(Date)},
		{NewInt(math.MaxInt64), NewFloat(math.Inf(1)), NewBool(true), NewString("x\x00y"), NewDate(-1)},
	}
	var buf []byte
	for _, r := range rows {
		buf = EncodeRow(buf, schema, r)
	}
	pos := 0
	for i, want := range rows {
		got, n, err := DecodeRow(buf[pos:], schema)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		pos += n
		for j := range want {
			if want[j].Null != got[j].Null || (!want[j].Null && Compare(want[j], got[j]) != 0) {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, got[j], want[j])
			}
		}
	}
	if pos != len(buf) {
		t.Fatalf("decoded %d bytes of %d", pos, len(buf))
	}
}

func TestRowCodecTruncation(t *testing.T) {
	schema := testSchema()
	row := Row{NewInt(12345), NewFloat(1.5), NewBool(true), NewString("abcdef"), NewDate(99)}
	buf := EncodeRow(nil, schema, row)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRow(buf[:cut], schema); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

// A hostile string length whose uint64 value overflows int must be rejected,
// not turned into a negative slice bound (found by FuzzBinaryLoad).
func TestRowCodecHostileStringLength(t *testing.T) {
	schema := NewSchema(Column{Name: "s", Typ: String})
	buf := []byte{0x00} // null bitmap: s is non-NULL
	buf = binary.AppendUvarint(buf, math.MaxUint64-6)
	buf = append(buf, "payload"...)
	if _, _, err := DecodeRow(buf, schema); err == nil {
		t.Fatal("overflowing string length not detected")
	}
}

// Property: encode/decode round-trips arbitrary rows.
func TestQuickRowCodec(t *testing.T) {
	schema := testSchema()
	rng := rand.New(rand.NewSource(1))
	f := func(i int64, fl float64, b bool, s string, d int16, nullMask uint8) bool {
		row := Row{NewInt(i), NewFloat(fl), NewBool(b), NewString(s), NewDate(int64(d))}
		for j := range row {
			if nullMask&(1<<uint(j)) != 0 {
				row[j] = NewNull(schema.Cols[j].Typ)
			}
		}
		buf := EncodeRow(nil, schema, row)
		got, n, err := DecodeRow(buf, schema)
		if err != nil || n != len(buf) {
			return false
		}
		for j := range row {
			if row[j].Null != got[j].Null {
				return false
			}
			if row[j].Null {
				continue
			}
			if schema.Cols[j].Typ == Float64 {
				if math.Float64bits(row[j].F) != math.Float64bits(got[j].F) {
					return false
				}
			} else if Compare(row[j], got[j]) != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
