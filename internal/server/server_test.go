package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"apollo"
	"apollo/internal/server/broker"
)

func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	dbcfg := apollo.DefaultConfig()
	dbcfg.TupleMoverInterval = 0
	cfg := Config{
		Root:       t.TempDir(),
		Tenants:    map[string]string{"t1": "key1", "t2": "key2"},
		DB:         dbcfg,
		CacheBytes: 64 << 20,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// do sends one JSON request with the given bearer key.
func do(t *testing.T, ts *httptest.Server, method, path, key string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func exec(t *testing.T, ts *httptest.Server, key, sql string, extra map[string]any) execResponse {
	t.Helper()
	body := map[string]any{"sql": sql}
	for k, v := range extra {
		body[k] = v
	}
	resp, out := do(t, ts, "POST", "/v1/exec", key, body)
	if resp.StatusCode != 200 {
		t.Fatalf("exec %q: HTTP %d: %s", sql, resp.StatusCode, out)
	}
	var r execResponse
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("exec %q: bad body %s: %v", sql, out, err)
	}
	return r
}

func wantStatus(t *testing.T, resp *http.Response, body []byte, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("HTTP %d (want %d): %s", resp.StatusCode, status, body)
	}
	if code != "" && !strings.Contains(string(body), `"code":"`+code+`"`) {
		t.Fatalf("body missing code %q: %s", code, body)
	}
}

func TestAuthRequired(t *testing.T) {
	_, ts := testServer(t, nil)
	for _, key := range []string{"", "wrong"} {
		resp, body := do(t, ts, "POST", "/v1/exec", key, map[string]any{"sql": "SELECT 1"})
		wantStatus(t, resp, body, 401, "unauthenticated")
	}
	// healthz and metrics stay open.
	resp, _ := do(t, ts, "GET", "/healthz", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestExecAndStreamingQuery(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT, s VARCHAR NULL, d DATE)", nil)
	exec(t, ts, "key1", "INSERT INTO t VALUES (1, 'x', '2024-03-01'), (2, NULL, '2024-03-02')", nil)

	// Materialized exec.
	r := exec(t, ts, "key1", "SELECT a, s, d FROM t ORDER BY a", nil)
	if len(r.Rows) != 2 || r.Columns[0] != "a" {
		t.Fatalf("exec rows = %+v", r)
	}
	if r.Rows[0][0] != float64(1) || r.Rows[1][1] != nil || r.Rows[1][2] != "2024-03-02" {
		t.Fatalf("value encoding: %+v", r.Rows)
	}

	// Streaming query: columns line, row lines, done line.
	resp, out := do(t, ts, "POST", "/v1/query", "key1", map[string]any{"sql": "SELECT a FROM t ORDER BY a"})
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		var line map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		for k := range line {
			kinds = append(kinds, k)
		}
	}
	want := []string{"columns", "row", "row", "done"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("stream shape = %v, want %v", kinds, want)
	}
}

func TestTenantIsolation(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT)", nil)
	exec(t, ts, "key1", "INSERT INTO t VALUES (1)", nil)
	exec(t, ts, "key2", "CREATE TABLE t (a BIGINT)", nil) // same name, different tenant
	r := exec(t, ts, "key2", "SELECT COUNT(*) FROM t", nil)
	if r.Rows[0][0] != float64(0) {
		t.Fatalf("tenant t2 sees t1's rows: %+v", r.Rows)
	}
}

func TestSessionTransactionAcrossRequests(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT)", nil)

	resp, body := do(t, ts, "POST", "/v1/sessions", "key1", nil)
	wantStatus(t, resp, body, 200, "")
	var sess map[string]string
	json.Unmarshal(body, &sess)
	id := sess["session"]
	if id == "" {
		t.Fatal("no session id")
	}
	in := map[string]any{"session": id}

	if r := exec(t, ts, "key1", "BEGIN", in); !r.InTxn {
		t.Fatal("BEGIN did not open a transaction")
	}
	exec(t, ts, "key1", "INSERT INTO t VALUES (42)", in)

	// A stateless request (fresh snapshot) must not see the uncommitted row.
	if r := exec(t, ts, "key1", "SELECT COUNT(*) FROM t", nil); r.Rows[0][0] != float64(0) {
		t.Fatalf("uncommitted row visible outside the transaction: %+v", r.Rows)
	}
	// The session itself sees its own write.
	if r := exec(t, ts, "key1", "SELECT COUNT(*) FROM t", in); r.Rows[0][0] != float64(1) {
		t.Fatalf("own write invisible in transaction: %+v", r.Rows)
	}

	if r := exec(t, ts, "key1", "COMMIT", in); r.InTxn {
		t.Fatal("still in txn after COMMIT")
	}
	if r := exec(t, ts, "key1", "SELECT COUNT(*) FROM t", nil); r.Rows[0][0] != float64(1) {
		t.Fatalf("committed row invisible: %+v", r.Rows)
	}

	// Session delete is idempotent-ish: second delete is 410.
	resp, _ = do(t, ts, "DELETE", "/v1/sessions/"+id, "key1", nil)
	if resp.StatusCode != 204 {
		t.Fatalf("delete session: %d", resp.StatusCode)
	}
	resp, body = do(t, ts, "DELETE", "/v1/sessions/"+id, "key1", nil)
	wantStatus(t, resp, body, 410, "session_gone")
}

func TestSessionTenantScoped(t *testing.T) {
	_, ts := testServer(t, nil)
	_, body := do(t, ts, "POST", "/v1/sessions", "key1", nil)
	var sess map[string]string
	json.Unmarshal(body, &sess)
	// Another tenant's key cannot use the session.
	resp, body := do(t, ts, "POST", "/v1/exec", "key2",
		map[string]any{"sql": "SELECT 1", "session": sess["session"]})
	wantStatus(t, resp, body, 410, "session_gone")
}

func TestPreparedArgs(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT, s VARCHAR, d DATE)", nil)

	_, body := do(t, ts, "POST", "/v1/sessions", "key1", nil)
	var sess map[string]string
	json.Unmarshal(body, &sess)
	in := func(args ...any) map[string]any {
		return map[string]any{"session": sess["session"], "args": args}
	}

	// Same statement text twice through one session: second run reuses the
	// cached plan (correctness is what we can observe here).
	for i := 1; i <= 2; i++ {
		exec(t, ts, "key1", "INSERT INTO t VALUES (?, ?, ?)",
			in(i, fmt.Sprintf("s%d", i), "2024-01-0"+fmt.Sprint(i)))
	}
	r := exec(t, ts, "key1", "SELECT s FROM t WHERE a = ?", in(2))
	if len(r.Rows) != 1 || r.Rows[0][0] != "s2" {
		t.Fatalf("parameterized select: %+v", r.Rows)
	}

	// Streaming with args.
	resp, out := do(t, ts, "POST", "/v1/query", "key1",
		map[string]any{"sql": "SELECT a FROM t WHERE a >= ?", "session": sess["session"], "args": []any{1}})
	if resp.StatusCode != 200 || strings.Count(string(out), `"row"`) != 2 {
		t.Fatalf("streaming with args: %d %s", resp.StatusCode, out)
	}

	// Arity mismatch is a 400.
	resp, out = do(t, ts, "POST", "/v1/exec", "key1",
		map[string]any{"sql": "SELECT a FROM t WHERE a = ?", "args": []any{}})
	if resp.StatusCode == 200 {
		t.Fatalf("arity mismatch accepted: %s", out)
	}
}

func TestAdmissionShed429(t *testing.T) {
	srv, ts := testServer(t, func(c *Config) {
		c.Limits = broker.Limits{PerTenant: 1, QueueDepth: 0}
	})
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT)", nil)

	// Hold t1's only slot, then any statement for t1 sheds with a typed 429
	// while t2 is unaffected (per-tenant limits).
	release, err := srv.Broker().Admit(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	resp, body := do(t, ts, "POST", "/v1/exec", "key1", map[string]any{"sql": "SELECT 1"})
	wantStatus(t, resp, body, 429, "overloaded")
	resp, body = do(t, ts, "POST", "/v1/query", "key1", map[string]any{"sql": "SELECT 1"})
	wantStatus(t, resp, body, 429, "overloaded")
	exec(t, ts, "key2", "CREATE TABLE u (a BIGINT)", nil) // t2 unaffected
	release()
	exec(t, ts, "key1", "SELECT COUNT(*) FROM t", nil) // slot free again

	// Shed counter is exposed per tenant.
	_, metricsBody := do(t, ts, "GET", "/metrics", "", nil)
	if !strings.Contains(string(metricsBody), `apollod_queries_shed_total{tenant="t1"} 2`) {
		t.Fatalf("metrics missing per-tenant shed counter:\n%s", metricsBody)
	}
}

func TestWriteConflict409(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT, v BIGINT)", nil)
	exec(t, ts, "key1", "INSERT INTO t VALUES (1, 0)", nil)

	mkSession := func() map[string]any {
		_, body := do(t, ts, "POST", "/v1/sessions", "key1", nil)
		var sess map[string]string
		json.Unmarshal(body, &sess)
		return map[string]any{"session": sess["session"]}
	}
	s1, s2 := mkSession(), mkSession()
	exec(t, ts, "key1", "BEGIN", s1)
	exec(t, ts, "key1", "BEGIN", s2)
	exec(t, ts, "key1", "UPDATE t SET v = 1 WHERE a = 1", s1)
	resp, body := do(t, ts, "POST", "/v1/exec", "key1",
		map[string]any{"sql": "UPDATE t SET v = 2 WHERE a = 1", "session": s2["session"]})
	wantStatus(t, resp, body, 409, "write_conflict")
}

func TestIdleTransactionReaped(t *testing.T) {
	srv, ts := testServer(t, func(c *Config) {
		c.IdleTxnTimeout = 50 * time.Millisecond
	})
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT)", nil)
	_, body := do(t, ts, "POST", "/v1/sessions", "key1", nil)
	var sess map[string]string
	json.Unmarshal(body, &sess)
	in := map[string]any{"session": sess["session"]}
	exec(t, ts, "key1", "BEGIN", in)
	exec(t, ts, "key1", "INSERT INTO t VALUES (1)", in)

	// Wait for the reaper to kill the idle transaction. (Polling through
	// the session would keep refreshing its idle clock, so watch the
	// session table instead and probe the wire once it is gone.)
	deadline := time.Now().Add(5 * time.Second)
	for srv.sessions.get(sess["session"]) != nil {
		if time.Now().After(deadline) {
			t.Fatal("idle transaction never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, body := do(t, ts, "POST", "/v1/exec", "key1",
		map[string]any{"sql": "SELECT COUNT(*) FROM t", "session": sess["session"]})
	wantStatus(t, resp, body, 410, "session_gone")
	// The transaction's write was rolled back.
	if r := exec(t, ts, "key1", "SELECT COUNT(*) FROM t", nil); r.Rows[0][0] != float64(0) {
		t.Fatalf("reaped transaction's write survived: %+v", r.Rows)
	}
}

func TestExplain(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT)", nil)
	resp, body := do(t, ts, "POST", "/v1/explain", "key1", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	wantStatus(t, resp, body, 200, "")
	var out map[string]string
	json.Unmarshal(body, &out)
	if out["plan"] == "" {
		t.Fatalf("no plan text: %s", body)
	}
}

func TestBadSQLIs400(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, body := do(t, ts, "POST", "/v1/exec", "key1", map[string]any{"sql": "SELEKT 1"})
	wantStatus(t, resp, body, 400, "sql")
}

func TestSharedCacheBudgetAcrossTenants(t *testing.T) {
	srv, ts := testServer(t, func(c *Config) { c.CacheBytes = 1 << 20 })
	exec(t, ts, "key1", "CREATE TABLE t (a BIGINT)", nil)
	exec(t, ts, "key2", "CREATE TABLE t (a BIGINT)", nil)
	if got := srv.Broker().Cache.Cap(); got != 1<<20 {
		t.Fatalf("budget cap = %d", got)
	}
	// Both tenants' stores attached to the same budget: the used counter is
	// process-wide (exact value depends on caching; just verify it is bounded).
	if used := srv.Broker().Cache.Used(); used < 0 || used > 1<<20 {
		t.Fatalf("budget used = %d", used)
	}
}
