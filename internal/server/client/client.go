// Package client is a Go client for the apollod wire API: sessions, exec,
// streaming queries, explain. It is what cssql's -url mode and the serve
// smoke test drive the server with; third parties can use it as a reference
// implementation of the protocol.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client talks to one apollod server with one tenant's API key. Methods are
// safe for concurrent use; the optional server-side session is not (one
// statement at a time, like any SQL connection).
type Client struct {
	base    string
	key     string
	http    *http.Client
	session string
}

// New creates a client for the server at base (e.g. "http://localhost:8329")
// authenticating with the tenant API key.
func New(base, key string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), key: key, http: &http.Client{}}
}

// Error is a typed server error (the wire's {"error": {...}} body).
type Error struct {
	Status  int    // HTTP status, 0 for in-band stream errors
	Code    string // "overloaded", "write_conflict", "session_gone", ...
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("apollod: %s (%s)", e.Message, e.Code)
}

// Overloaded reports whether the error is an admission-control shed; the
// request may be retried after backoff.
func (e *Error) Overloaded() bool { return e.Code == "overloaded" }

// Result is one statement's outcome.
type Result struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	Affected  int      `json:"affected"`
	Message   string   `json:"message"`
	InTxn     bool     `json:"in_txn"`
	ElapsedMs float64  `json:"elapsed_ms"`
}

type wireErrBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, "POST", c.base+path, &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.key)
	req.Header.Set("Content-Type", "application/json")
	return c.http.Do(req)
}

// decodeError turns a non-200 response into a typed *Error.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb wireErrBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error.Code != "" {
		return &Error{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
	}
	return &Error{Status: resp.StatusCode, Code: "http", Message: strings.TrimSpace(string(raw))}
}

// OpenSession creates a server-side session; subsequent statements run on it
// (BEGIN/COMMIT/ROLLBACK state persists across requests until CloseSession).
func (c *Client) OpenSession(ctx context.Context) error {
	resp, err := c.post(ctx, "/v1/sessions", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	c.session = out["session"]
	return nil
}

// CloseSession releases the server-side session, rolling back any open
// transaction. No-op without a session.
func (c *Client) CloseSession(ctx context.Context) error {
	if c.session == "" {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, "DELETE", c.base+"/v1/sessions/"+c.session, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.key)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	c.session = ""
	return nil
}

// stmtBody builds the shared request body.
func (c *Client) stmtBody(sql string, args []any) map[string]any {
	body := map[string]any{"sql": sql}
	if len(args) > 0 {
		body["args"] = args
	}
	if c.session != "" {
		body["session"] = c.session
	}
	return body
}

// Exec runs one statement and returns the materialized result. args fill `?`
// placeholders in order.
func (c *Client) Exec(ctx context.Context, sql string, args ...any) (*Result, error) {
	resp, err := c.post(ctx, "/v1/exec", c.stmtBody(sql, args))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out Result
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Column describes one result column of a streamed query.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// QueryStream drives a streaming query: onColumns runs once when the schema
// line arrives, onRow once per row. Either callback may return an error to
// abort. Returns the terminal summary.
func (c *Client) QueryStream(ctx context.Context, sql string, args []any,
	onColumns func([]Column) error, onRow func([]any) error) (*Result, error) {
	resp, err := c.post(ctx, "/v1/query", c.stmtBody(sql, args))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()

	type line struct {
		Columns []Column        `json:"columns"`
		Row     []any           `json:"row"`
		Done    json.RawMessage `json:"done"`
		Error   *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("apollod: bad stream line %q: %w", sc.Text(), err)
		}
		switch {
		case l.Error != nil:
			return nil, &Error{Code: l.Error.Code, Message: l.Error.Message}
		case l.Done != nil:
			var res struct {
				Rows      int64   `json:"rows"`
				Affected  int     `json:"affected"`
				Message   string  `json:"message"`
				InTxn     bool    `json:"in_txn"`
				ElapsedMs float64 `json:"elapsed_ms"`
			}
			if err := json.Unmarshal(l.Done, &res); err != nil {
				return nil, err
			}
			return &Result{Affected: res.Affected, Message: res.Message,
				InTxn: res.InTxn, ElapsedMs: res.ElapsedMs}, nil
		case l.Columns != nil:
			if onColumns != nil {
				if err := onColumns(l.Columns); err != nil {
					return nil, err
				}
			}
		case l.Row != nil:
			if onRow != nil {
				if err := onRow(l.Row); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("apollod: stream ended without a done line")
}

// LoadResult is /v1/load's response: counters for the two ingest paths,
// per-batch stats from the adaptive controller, and the dead-lettered rows.
// A partial failure carries both the error and whatever loaded before it.
type LoadResult struct {
	RowsLoaded  int     `json:"rows_loaded"`
	RowsDirect  int     `json:"rows_direct"`
	RowsDelta   int     `json:"rows_delta"`
	Groups      int     `json:"groups"`
	Retries     int     `json:"retries"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	DeadLetters []struct {
		Line   int    `json:"line"`
		Reason string `json:"reason"`
	} `json:"dead_letters,omitempty"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// Load streams body into table through /v1/load. format is "csv" or
// "binary" ("" = csv); params carries optional query options (header,
// delimiter, batch_rows, max_dead_letters). The result is non-nil whenever
// the server produced one, even alongside an error, so callers can inspect
// partial progress and dead letters.
func (c *Client) Load(ctx context.Context, table, format string, body io.Reader, params map[string]string) (*LoadResult, error) {
	q := url.Values{"table": {table}}
	if format != "" {
		q.Set("format", format)
	}
	for k, v := range params {
		q.Set(k, v)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", c.base+"/v1/load?"+q.Encode(), body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.key)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out LoadResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		if resp.StatusCode != 200 {
			return nil, &Error{Status: resp.StatusCode, Code: "http", Message: resp.Status}
		}
		return nil, err
	}
	if out.Error != nil {
		return &out, &Error{Status: resp.StatusCode, Code: out.Error.Code, Message: out.Error.Message}
	}
	if resp.StatusCode != 200 {
		return &out, &Error{Status: resp.StatusCode, Code: "http", Message: resp.Status}
	}
	return &out, nil
}

// Explain returns the plan text for a statement.
func (c *Client) Explain(ctx context.Context, sql string, analyze bool) (string, error) {
	body := map[string]any{"sql": sql, "analyze": analyze}
	if c.session != "" {
		body["session"] = c.session
	}
	resp, err := c.post(ctx, "/v1/explain", body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != 200 {
		return "", decodeError(resp)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out["plan"], nil
}

// Metrics fetches the server's Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// InSession reports whether a server-side session is open.
func (c *Client) InSession() bool { return c.session != "" }
