package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"apollo/internal/sqltypes"
)

// Wire value encoding: SQL scalars map onto the natural JSON types — NULL to
// null, BIGINT/DOUBLE to numbers, BOOLEAN to true/false, VARCHAR to strings,
// DATE to "YYYY-MM-DD" strings. Argument decoding is the inverse; integral
// JSON numbers arrive as BIGINT and coerce to the placeholder's bound type
// exactly like SQL literals do (strings parse as dates against DATE columns,
// ints widen to float).

// jsonValue renders one SQL value as a JSON-encodable Go value.
func jsonValue(v sqltypes.Value) any {
	if v.Null {
		return nil
	}
	switch v.Typ {
	case sqltypes.Int64:
		return v.I
	case sqltypes.Float64:
		return v.F
	case sqltypes.Bool:
		return v.I != 0
	case sqltypes.Date:
		return sqltypes.DateToString(v.I)
	default:
		return v.S
	}
}

// jsonRow renders a row for JSON encoding.
func jsonRow(r sqltypes.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		out[i] = jsonValue(v)
	}
	return out
}

// argValue decodes one JSON argument into a SQL value. Numbers are decoded
// via json.Number so int64 range is preserved.
func argValue(raw json.RawMessage) (sqltypes.Value, error) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return sqltypes.Value{}, fmt.Errorf("bad argument %s: %w", raw, err)
	}
	switch x := v.(type) {
	case nil:
		return sqltypes.NewNull(sqltypes.Unknown), nil
	case bool:
		return sqltypes.NewBool(x), nil
	case string:
		return sqltypes.NewString(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return sqltypes.NewInt(i), nil
		}
		f, err := x.Float64()
		if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
			return sqltypes.Value{}, fmt.Errorf("bad numeric argument %s", x)
		}
		return sqltypes.NewFloat(f), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("argument %s: arrays and objects are not SQL values", raw)
	}
}

// decodeArgs converts a JSON argument list into SQL values.
func decodeArgs(raw []json.RawMessage) ([]sqltypes.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	args := make([]sqltypes.Value, len(raw))
	for i, r := range raw {
		v, err := argValue(r)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}
