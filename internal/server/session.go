package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"apollo"
	"apollo/internal/metrics"
	"apollo/internal/server/tenant"
)

// liveSession is one client's server-side session: a pinned tenant handle, a
// SQL session carrying transaction state across requests, and a bounded
// prepared-statement cache so parameterized statements reuse their compiled
// plans. Requests against one session are serialized by mu (the usual
// one-statement-at-a-time connection discipline); distinct sessions are
// independent.
type liveSession struct {
	id     string
	tenant string
	h      *tenant.Handle
	sess   *apollo.Session

	mu      sync.Mutex // held for the duration of each statement
	lastUse time.Time  // guarded by mu
	closed  bool       // guarded by mu

	stmts     map[string]*apollo.Stmt // guarded by mu
	stmtOrder []string
}

// maxCachedStmts bounds each session's prepared-plan cache.
const maxCachedStmts = 64

// stmt returns the cached prepared statement for src, preparing and caching
// it on first use. Caller holds s.mu; the statement stays valid for the
// session's lifetime because the session pins its tenant handle.
func (s *liveSession) stmt(src string) (*apollo.Stmt, error) {
	if st, ok := s.stmts[src]; ok {
		return st, nil
	}
	st, err := s.h.DB().Prepare(src)
	if err != nil {
		return nil, err
	}
	if s.stmts == nil {
		s.stmts = map[string]*apollo.Stmt{}
	}
	if len(s.stmtOrder) >= maxCachedStmts {
		oldest := s.stmtOrder[0]
		s.stmtOrder = s.stmtOrder[1:]
		delete(s.stmts, oldest)
	}
	s.stmts[src] = st
	s.stmtOrder = append(s.stmtOrder, src)
	return st, nil
}

// sessionTable owns every live session and the idle reaper.
type sessionTable struct {
	mu   sync.Mutex
	byID map[string]*liveSession

	idleTxn time.Duration // kill sessions holding a transaction idle this long
	idle    time.Duration // kill any session idle this long

	stop, done chan struct{}

	gauge  *metrics.Gauge
	reaped *metrics.Counter
}

func newSessionTable(idleTxn, idle time.Duration) *sessionTable {
	t := &sessionTable{
		byID:    map[string]*liveSession{},
		idleTxn: idleTxn,
		idle:    idle,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		gauge: metrics.Default.Gauge("apollod_sessions_open",
			"Server-side SQL sessions currently open."),
		reaped: metrics.Default.Counter("apollod_sessions_reaped_total",
			"Sessions closed by the idle reaper (open transactions rolled back)."),
	}
	go t.reaper()
	return t
}

// newID returns a 128-bit random session token.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// create registers a session over the given (already leased) tenant handle.
// The session owns the lease from here on.
func (t *sessionTable) create(tenantName string, h *tenant.Handle) *liveSession {
	s := &liveSession{
		id:      newID(),
		tenant:  tenantName,
		h:       h,
		sess:    h.DB().Session(),
		lastUse: time.Now(),
	}
	t.mu.Lock()
	t.byID[s.id] = s
	t.gauge.Set(float64(len(t.byID)))
	t.mu.Unlock()
	return s
}

// get looks a session up by id. The caller must lock s.mu before use and
// re-check s.closed (the reaper may have won the race).
func (t *sessionTable) get(id string) *liveSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// remove closes a session: rolls back any open transaction and releases the
// tenant lease. s.mu is held across teardown, so a statement in flight
// finishes first and no statement starts afterwards. Safe to call twice.
func (t *sessionTable) remove(s *liveSession) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.sess.Close() // rolls back an open transaction
	s.h.Release()
	s.mu.Unlock()
	t.mu.Lock()
	delete(t.byID, s.id)
	t.gauge.Set(float64(len(t.byID)))
	t.mu.Unlock()
}

// reaper enforces the idle deadlines. A session mid-statement is never
// touched (TryLock fails while a request holds the session).
func (t *sessionTable) reaper() {
	defer close(t.done)
	period := t.idleTxn
	if t.idle > 0 && (period == 0 || t.idle < period) {
		period = t.idle
	}
	if period <= 0 {
		period = time.Minute
	}
	tick := time.NewTicker(maxDur(period/4, 10*time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.sweep(time.Now())
		}
	}
}

func (t *sessionTable) sweep(now time.Time) {
	t.mu.Lock()
	candidates := make([]*liveSession, 0, len(t.byID))
	for _, s := range t.byID {
		candidates = append(candidates, s)
	}
	t.mu.Unlock()
	for _, s := range candidates {
		if !s.mu.TryLock() {
			continue // statement in flight; it will refresh lastUse
		}
		idle := now.Sub(s.lastUse)
		expired := !s.closed &&
			((t.idleTxn > 0 && s.sess.InTxn() && idle > t.idleTxn) ||
				(t.idle > 0 && idle > t.idle))
		s.mu.Unlock()
		if expired {
			// remove re-acquires s.mu; if a request slipped in meanwhile it
			// merely finishes before teardown — the session was already past
			// its idle deadline when we checked.
			t.remove(s)
			t.reaped.Inc()
		}
	}
}

// closeAll tears every session down (server shutdown).
func (t *sessionTable) closeAll() {
	close(t.stop)
	<-t.done
	t.mu.Lock()
	all := make([]*liveSession, 0, len(t.byID))
	for _, s := range t.byID {
		all = append(all, s)
	}
	t.mu.Unlock()
	for _, s := range all {
		t.remove(s)
	}
}

// use acquires the session for one statement, refusing if it was closed.
// Returns an unlock func.
func (s *liveSession) use() (func(), error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errSessionGone
	}
	s.lastUse = time.Now()
	return func() {
		s.lastUse = time.Now()
		s.mu.Unlock()
	}, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
