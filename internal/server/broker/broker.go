// Package broker owns the resources N tenant databases share when one
// process serves them all: a single buffer-pool byte budget, per-query
// memory grants, and admission control. Extracting these from per-DB Config
// is what makes multi-tenancy safe — without it each tenant would size its
// own caches and concurrency as if it had the machine to itself.
//
// Admission is two-level. A query first takes one of its tenant's slots
// (per-tenant fairness: one tenant's burst cannot occupy the whole process),
// then one of the global slots (process-wide cap). Waiters are bounded: once
// a tenant's wait queue is full, further queries are shed immediately with a
// typed *OverloadError the wire layer maps to HTTP 429. Queue depth, shed
// counts, and wait times are exported per tenant through the process-wide
// metrics registry.
package broker

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"apollo/internal/metrics"
	"apollo/internal/storage"
)

// Limits configures admission control. Zero values disable the
// corresponding limit.
type Limits struct {
	// PerTenant caps concurrently executing queries per tenant.
	PerTenant int
	// Global caps concurrently executing queries process-wide.
	Global int
	// QueueDepth bounds how many queries may wait per tenant; one more is
	// shed with *OverloadError. 0 sheds as soon as the tenant's slots are
	// busy.
	QueueDepth int
	// QueueTimeout sheds a waiter that has not been admitted in time
	// (0 = wait until the request context expires).
	QueueTimeout time.Duration
	// GrantBytes is the memory grant handed to each admitted query: the
	// engine's hash-operator budget, so spilling enforces it.
	GrantBytes int64
}

// Broker is the process-wide shared-resource layer.
type Broker struct {
	// Cache is the buffer-pool budget every tenant's store attaches to.
	Cache *storage.Budget
	lim   Limits

	global chan struct{} // nil = unlimited

	mu      sync.Mutex
	tenants map[string]*tenantState

	waitHist *metrics.Histogram
}

type tenantState struct {
	slots  chan struct{} // nil = unlimited
	queued int           // waiters, under Broker.mu

	admitted *metrics.Counter
	shed     *metrics.Counter
	depth    *metrics.Gauge
}

// OverloadError reports a query shed by admission control: the tenant's (or
// the global) wait queue was full or the waiter timed out. The wire layer
// maps it to HTTP 429.
type OverloadError struct {
	Tenant string
	Reason string // "queue full" or "queue timeout"
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("broker: tenant %q overloaded: %s", e.Tenant, e.Reason)
}

// New creates a broker with a shared cache budget of cacheBytes and the
// given admission limits.
func New(cacheBytes int64, lim Limits) *Broker {
	b := &Broker{
		Cache:   storage.NewBudget(cacheBytes),
		lim:     lim,
		tenants: map[string]*tenantState{},
		waitHist: metrics.Default.Histogram("apollod_admission_wait_seconds",
			"Time queries spent waiting for an admission slot.", metrics.DurationBuckets),
	}
	if lim.Global > 0 {
		b.global = make(chan struct{}, lim.Global)
	}
	return b
}

// Limits returns the configured admission limits.
func (b *Broker) Limits() Limits { return b.lim }

// GrantBytes returns the per-query memory grant (0 = unlimited).
func (b *Broker) GrantBytes() int64 { return b.lim.GrantBytes }

// tenant returns (creating on first use) the named tenant's admission state.
// Metric handles are cached here because registry registration takes a lock.
func (b *Broker) tenant(name string) *tenantState {
	b.mu.Lock()
	defer b.mu.Unlock()
	ts, ok := b.tenants[name]
	if !ok {
		l := label(name)
		ts = &tenantState{
			admitted: metrics.Default.Counter(
				fmt.Sprintf(`apollod_queries_admitted_total{tenant=%q}`, l),
				"Queries admitted past admission control, by tenant."),
			shed: metrics.Default.Counter(
				fmt.Sprintf(`apollod_queries_shed_total{tenant=%q}`, l),
				"Queries shed by admission control, by tenant."),
			depth: metrics.Default.Gauge(
				fmt.Sprintf(`apollod_queue_depth{tenant=%q}`, l),
				"Queries currently waiting for admission, by tenant."),
		}
		if b.lim.PerTenant > 0 {
			ts.slots = make(chan struct{}, b.lim.PerTenant)
		}
		b.tenants[name] = ts
	}
	return ts
}

// label sanitizes a tenant name for use inside a Prometheus label value.
func label(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\\' || r == '\n' {
			return '_'
		}
		return r
	}, name)
}

// Admit blocks until the query may run, returning a release func the caller
// must invoke when the query finishes. Sheds with *OverloadError when the
// tenant's wait queue is full or the wait times out; returns ctx.Err() when
// the request is cancelled first.
func (b *Broker) Admit(ctx context.Context, tenant string) (func(), error) {
	ts := b.tenant(tenant)

	if b.lim.QueueTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.lim.QueueTimeout)
		defer cancel()
	}

	start := time.Now()
	// Tenant slot first (per-tenant fairness): free slot or the bounded
	// wait queue. A query that cannot get either is shed immediately —
	// shedding at the door beats queueing work the tenant cannot absorb.
	if !tryAcquire(ts.slots) {
		b.mu.Lock()
		if ts.queued >= b.lim.QueueDepth {
			b.mu.Unlock()
			ts.shed.Inc()
			return nil, &OverloadError{Tenant: tenant, Reason: "queue full"}
		}
		ts.queued++
		ts.depth.Set(float64(ts.queued))
		b.mu.Unlock()
		err := acquire(ctx, ts.slots)
		b.mu.Lock()
		ts.queued--
		ts.depth.Set(float64(ts.queued))
		b.mu.Unlock()
		if err != nil {
			ts.shed.Inc()
			return nil, b.shedErr(ctx, tenant, err)
		}
	}
	// Then the global slot (process-wide cap). Waiters here hold their
	// tenant slot, so total global waiters are bounded by the per-tenant
	// limits; no separate queue bound is needed.
	if err := acquire(ctx, b.global); err != nil {
		releaseSlot(ts.slots)
		ts.shed.Inc()
		return nil, b.shedErr(ctx, tenant, err)
	}
	b.waitHist.Observe(time.Since(start).Seconds())
	ts.admitted.Inc()

	var once sync.Once
	return func() {
		once.Do(func() {
			releaseSlot(b.global)
			releaseSlot(ts.slots)
		})
	}, nil
}

// shedErr distinguishes a caller cancellation (propagate ctx error) from an
// admission timeout (typed overload).
func (b *Broker) shedErr(ctx context.Context, tenant string, err error) error {
	if b.lim.QueueTimeout > 0 && ctx.Err() == context.DeadlineExceeded {
		return &OverloadError{Tenant: tenant, Reason: "queue timeout"}
	}
	return err
}

// tryAcquire takes a slot without blocking; true on success (or no limit).
func tryAcquire(slots chan struct{}) bool {
	if slots == nil {
		return true
	}
	select {
	case slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func acquire(ctx context.Context, slots chan struct{}) error {
	if slots == nil {
		return nil
	}
	select {
	case slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func releaseSlot(slots chan struct{}) {
	if slots != nil {
		<-slots
	}
}
