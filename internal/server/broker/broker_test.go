package broker

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"apollo/internal/metrics"
)

func TestAdmitReleaseCycle(t *testing.T) {
	b := New(0, Limits{PerTenant: 2, Global: 4, QueueDepth: 0})
	ctx := context.Background()

	r1, err := b.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	r2, err := b.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	// Slots full, queue depth 0: shed immediately with the typed error.
	if _, err := b.Admit(ctx, "a"); err == nil {
		t.Fatal("admit 3 should shed")
	} else {
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.Tenant != "a" || oe.Reason != "queue full" {
			t.Fatalf("want OverloadError{a, queue full}, got %v", err)
		}
	}
	// Another tenant is unaffected by tenant a's saturation.
	r3, err := b.Admit(ctx, "b")
	if err != nil {
		t.Fatalf("tenant b should admit: %v", err)
	}
	r3()
	r1()
	// Releasing frees the slot for tenant a again.
	r4, err := b.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r4()
	r4() // double release must be a no-op
	r2()
}

func TestAdmitQueueWaits(t *testing.T) {
	b := New(0, Limits{PerTenant: 1, QueueDepth: 1})
	ctx := context.Background()

	release, err := b.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 1)
	go func() {
		r, err := b.Admit(ctx, "a")
		if err != nil {
			t.Errorf("queued admit: %v", err)
			admitted <- nil
			return
		}
		admitted <- r
	}()
	// Wait until the goroutine is queued, then verify a third query sheds
	// (slot busy, queue full).
	waitFor(t, func() bool { return b.queuedFor("a") == 1 })
	if _, err := b.Admit(ctx, "a"); err == nil {
		t.Fatal("third query should shed: queue full")
	}
	release()
	select {
	case r := <-admitted:
		if r != nil {
			r()
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query never admitted after release")
	}
}

func TestAdmitQueueTimeout(t *testing.T) {
	b := New(0, Limits{PerTenant: 1, QueueDepth: 4, QueueTimeout: 30 * time.Millisecond})
	ctx := context.Background()

	release, err := b.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = b.Admit(ctx, "a")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("want OverloadError{queue timeout}, got %v", err)
	}
}

func TestAdmitCallerCancel(t *testing.T) {
	b := New(0, Limits{PerTenant: 1, QueueDepth: 4})
	release, err := b.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		waitFor(t, func() bool { return b.queuedFor("a") == 1 })
		cancel()
	}()
	_, err = b.Admit(ctx, "a")
	// Caller cancellation propagates as the context error, not an overload.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestGlobalLimitAcrossTenants(t *testing.T) {
	b := New(0, Limits{PerTenant: 2, Global: 2, QueueDepth: 0, QueueTimeout: 30 * time.Millisecond})
	ctx := context.Background()
	r1, err := b.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Admit(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	// Global cap reached: tenant c has free tenant slots but times out on the
	// global slot.
	_, err = b.Admit(ctx, "c")
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want OverloadError, got %v", err)
	}
	r1()
	r3, err := b.Admit(ctx, "c")
	if err != nil {
		t.Fatalf("after global release: %v", err)
	}
	r3()
	r2()
}

func TestPerTenantMetrics(t *testing.T) {
	b := New(0, Limits{PerTenant: 1, QueueDepth: 0})
	ctx := context.Background()
	r, err := b.Admit(ctx, "metrics-t")
	if err != nil {
		t.Fatal(err)
	}
	b.Admit(ctx, "metrics-t") // sheds
	r()

	var text strings.Builder
	if err := metrics.Default.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{
		`apollod_queries_admitted_total{tenant="metrics-t"} 1`,
		`apollod_queries_shed_total{tenant="metrics-t"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, out)
		}
	}
}

func TestAdmitConcurrent(t *testing.T) {
	b := New(0, Limits{PerTenant: 4, Global: 8, QueueDepth: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	running, maxRunning := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		go func() {
			defer wg.Done()
			release, err := b.Admit(ctx, tenant)
			if err != nil {
				t.Errorf("admit: %v", err)
				return
			}
			mu.Lock()
			running++
			if running > maxRunning {
				maxRunning = running
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if maxRunning > 8 {
		t.Fatalf("global limit violated: %d concurrent", maxRunning)
	}
}

// queuedFor reads a tenant's wait-queue depth (test helper).
func (b *Broker) queuedFor(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	ts, ok := b.tenants[name]
	if !ok {
		return 0
	}
	return ts.queued
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
