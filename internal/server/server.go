// Package server is apollod's wire and session layer: an HTTP/JSON API over
// the multi-tenant engine, with API-key authentication, server-side sessions
// carrying transaction state across requests, streaming query results, and
// admission control fronted by the shared-resource broker.
//
// Endpoints (all statement bodies are JSON):
//
//	POST   /v1/sessions        create a session        -> {"session": id}
//	DELETE /v1/sessions/{id}   close a session (rolls back an open txn)
//	POST   /v1/exec            {"sql", "args"?, "session"?} -> materialized result
//	POST   /v1/query           same body -> NDJSON stream: columns, rows, done
//	POST   /v1/explain         {"sql", "analyze"?} -> plan text
//	GET    /metrics            Prometheus text exposition (unauthenticated)
//	GET    /healthz            liveness (unauthenticated)
//
// Authentication is a bearer API key (Authorization: Bearer <key>); each key
// names one tenant, and every authenticated request is scoped to that
// tenant's database. Statement errors map to typed JSON error bodies:
// admission shed -> 429 "overloaded", write conflict -> 409
// "write_conflict", database shutting down -> 503 "closed", unknown or
// expired session -> 410 "session_gone".
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"apollo"
	"apollo/internal/metrics"
	"apollo/internal/qerr"
	"apollo/internal/server/broker"
	"apollo/internal/server/tenant"
	"apollo/internal/sqltypes"
)

var errSessionGone = errors.New("server: session closed or expired")

// Config assembles a server.
type Config struct {
	// Root is the tenant data directory (one subdirectory per tenant).
	Root string
	// Tenants maps tenant name -> API key. Only named tenants are servable.
	Tenants map[string]string
	// DB is the per-tenant database template (mode, fsync policy, ...).
	// CacheBudget and MemoryBudget are overwritten from the broker.
	DB apollo.Config
	// CacheBytes is the process-wide buffer-pool budget shared by every
	// tenant (see broker.Broker).
	CacheBytes int64
	// Limits configures admission control.
	Limits broker.Limits
	// MaxOpenTenants bounds simultaneously open tenant databases (0 = all).
	MaxOpenTenants int
	// IdleTenantTimeout closes tenant databases with no traffic (0 = never).
	IdleTenantTimeout time.Duration
	// IdleTxnTimeout kills sessions holding a transaction idle this long;
	// the transaction is rolled back (default 1m, <0 disables).
	IdleTxnTimeout time.Duration
	// IdleSessionTimeout kills any session idle this long (default 15m,
	// <0 disables).
	IdleSessionTimeout time.Duration
	// LoadQueueDepth bounds the per-request row channel between the /v1/load
	// decoder and the compressor (default 1024). A full channel blocks the
	// request-body read — TCP backpressure to the client.
	LoadQueueDepth int
}

// Server serves N tenant databases from one process. Create with New, attach
// Handler to an http.Server, Close on shutdown.
type Server struct {
	cfg      Config
	brk      *broker.Broker
	tenants  *tenant.Manager
	sessions *sessionTable
	keys     map[string]string // API key -> tenant name
	mux      *http.ServeMux

	rowsStreamed *metrics.Counter
	rowsLoaded   *metrics.Counter
}

// New wires the serving stack together: broker (shared cache + admission),
// tenant manager (lazy per-tenant databases drawing on the broker's budget),
// session table, and HTTP routes.
func New(cfg Config) (*Server, error) {
	if cfg.Root == "" {
		return nil, fmt.Errorf("server: Config.Root is required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	if cfg.IdleTxnTimeout == 0 {
		cfg.IdleTxnTimeout = time.Minute
	} else if cfg.IdleTxnTimeout < 0 {
		cfg.IdleTxnTimeout = 0
	}
	if cfg.IdleSessionTimeout == 0 {
		cfg.IdleSessionTimeout = 15 * time.Minute
	} else if cfg.IdleSessionTimeout < 0 {
		cfg.IdleSessionTimeout = 0
	}
	keys := make(map[string]string, len(cfg.Tenants))
	for name, key := range cfg.Tenants {
		if !tenant.ValidName(name) {
			return nil, fmt.Errorf("server: %w: %q", tenant.ErrBadName, name)
		}
		if key == "" {
			return nil, fmt.Errorf("server: tenant %q has an empty API key", name)
		}
		if other, dup := keys[key]; dup {
			return nil, fmt.Errorf("server: tenants %q and %q share an API key", other, name)
		}
		keys[key] = name
	}

	brk := broker.New(cfg.CacheBytes, cfg.Limits)
	tpl := cfg.DB
	tpl.CacheBudget = brk.Cache
	if g := brk.GrantBytes(); g > 0 {
		tpl.MemoryBudget = g
	}
	s := &Server{
		cfg: cfg,
		brk: brk,
		tenants: tenant.New(tenant.Config{
			Root:        cfg.Root,
			Template:    tpl,
			MaxOpen:     cfg.MaxOpenTenants,
			IdleTimeout: cfg.IdleTenantTimeout,
		}),
		sessions: newSessionTable(cfg.IdleTxnTimeout, cfg.IdleSessionTimeout),
		keys:     keys,
		mux:      http.NewServeMux(),
	}
	s.rowsStreamed = metrics.Default.Counter("apollod_rows_streamed_total",
		"Result rows written to the wire across all tenants.")
	s.rowsLoaded = metrics.Default.Counter("apollod_rows_loaded_total",
		"Rows ingested through /v1/load across all tenants.")
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sessions", s.auth(s.handleSessionCreate))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.auth(s.handleSessionDelete))
	s.mux.HandleFunc("POST /v1/exec", s.auth(s.handleExec))
	s.mux.HandleFunc("POST /v1/query", s.auth(s.handleQuery))
	s.mux.HandleFunc("POST /v1/explain", s.auth(s.handleExplain))
	s.mux.HandleFunc("POST /v1/load", s.auth(s.handleLoad))
	s.mux.HandleFunc("GET /v1/health", s.auth(s.handleHealth))
	return s, nil
}

// Handler returns the HTTP handler to serve.
func (s *Server) Handler() http.Handler { return s.mux }

// Broker exposes the shared-resource layer (tests, cmd wiring).
func (s *Server) Broker() *broker.Broker { return s.brk }

// Close tears the serving stack down: sessions first (rolling back their
// transactions), then every tenant database.
func (s *Server) Close() {
	s.sessions.closeAll()
	s.tenants.Close()
}

// --- request/response shapes ---

type stmtRequest struct {
	SQL     string            `json:"sql"`
	Args    []json.RawMessage `json:"args,omitempty"`
	Session string            `json:"session,omitempty"`
	Analyze bool              `json:"analyze,omitempty"` // explain only
}

type execResponse struct {
	Columns   []string `json:"columns,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	Affected  int      `json:"affected"`
	Message   string   `json:"message,omitempty"`
	InTxn     bool     `json:"in_txn"`
	ElapsedMs float64  `json:"elapsed_ms"`
}

type wireError struct {
	Code    string `json:"code"`
	Tenant  string `json:"tenant,omitempty"`
	Message string `json:"message"`
}

// writeError maps err to an HTTP status and a typed JSON body.
func writeError(w http.ResponseWriter, err error) {
	status, code, tenantName := classify(err)
	w.Header().Set("Content-Type", "application/json")
	if code == "read_only" {
		// Disk exhaustion is transient from the client's view: the DB probes
		// for reclaimed space and restores writes on its own. Tell well-
		// behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]wireError{"error": {
		Code: code, Tenant: tenantName, Message: err.Error(),
	}})
}

// classify maps an error to (HTTP status, wire code, tenant).
func classify(err error) (int, string, string) {
	var ov *broker.OverloadError
	var qe *qerr.QueryError
	switch {
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, "overloaded", ov.Tenant
	case errors.Is(err, apollo.ErrWriteConflict):
		return http.StatusConflict, "write_conflict", ""
	case errors.Is(err, apollo.ErrReadOnly):
		// Writes rejected while the tenant DB is degraded read-only (disk
		// full). Reads still work; the auto-probe will recover writability.
		return http.StatusServiceUnavailable, "read_only", ""
	case errors.Is(err, apollo.ErrWALPoisoned):
		// Permanent fail-stop after a failed fsync; only restart clears it.
		return http.StatusServiceUnavailable, "degraded", ""
	case errors.Is(err, apollo.ErrClosed), errors.Is(err, tenant.ErrManagerClosed):
		return http.StatusServiceUnavailable, "closed", ""
	case errors.Is(err, errSessionGone):
		return http.StatusGone, "session_gone", ""
	case errors.Is(err, tenant.ErrBadName):
		return http.StatusBadRequest, "bad_tenant", ""
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout", ""
	case errors.Is(err, context.Canceled):
		return 499, "canceled", "" // nginx convention: client closed request
	case errors.As(err, &qe):
		return http.StatusInternalServerError, "query", ""
	default:
		// Parse, bind, and semantic SQL errors: the client's statement.
		return http.StatusBadRequest, "sql", ""
	}
}

// --- auth ---

// auth wraps a handler with bearer-key authentication and stores the tenant
// name in the request context.
func (s *Server) auth(next func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hdr := r.Header.Get("Authorization")
		key, ok := strings.CutPrefix(hdr, "Bearer ")
		if !ok || key == "" {
			w.Header().Set("WWW-Authenticate", "Bearer")
			http.Error(w, `{"error":{"code":"unauthenticated","message":"missing bearer API key"}}`, http.StatusUnauthorized)
			return
		}
		name, ok := s.keys[key]
		if !ok {
			http.Error(w, `{"error":{"code":"unauthenticated","message":"unknown API key"}}`, http.StatusUnauthorized)
			return
		}
		next(w, r, name)
	}
}

// --- plumbing handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","tenants_open":%d}`+"\n", s.tenants.OpenCount())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.Default.WriteText(w)
}

// handleHealth reports the authenticated tenant's durability health: the
// write-availability mode (healthy / read_only / poisoned), the WAL
// position, integrity-scrub progress, and per-table degradation. Unlike
// /healthz this is per-tenant and requires auth — it exposes table names.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request, tenantName string) {
	h, err := s.tenants.Get(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	hs := h.DB().Health()
	type tableHealth struct {
		Moves            int64  `json:"moves"`
		Failures         int64  `json:"failures"`
		QuarantinedBlobs int    `json:"quarantined_blobs,omitempty"`
		LastQuarantine   string `json:"last_quarantine,omitempty"`
	}
	resp := struct {
		Mode            string                 `json:"mode"`
		Cause           string                 `json:"cause,omitempty"`
		Since           string                 `json:"since,omitempty"`
		ReadOnlyEntered int64                  `json:"readonly_entered"`
		Recovered       int64                  `json:"recovered"`
		WALSeq          uint64                 `json:"wal_seq"`
		WALPoisoned     bool                   `json:"wal_poisoned"`
		ScrubPasses     int64                  `json:"scrub_passes"`
		ScrubQuarantine int64                  `json:"scrub_quarantined,omitempty"`
		Tables          map[string]tableHealth `json:"tables"`
	}{
		Mode:            hs.Mode.String(),
		Cause:           hs.Cause,
		ReadOnlyEntered: hs.ReadOnlyEntered,
		Recovered:       hs.Recovered,
		WALSeq:          hs.WAL.Seq,
		WALPoisoned:     hs.WAL.Poisoned,
		ScrubPasses:     hs.ScrubPasses,
		Tables:          make(map[string]tableHealth),
	}
	if !hs.Since.IsZero() && hs.Mode != apollo.ModeHealthy {
		resp.Since = hs.Since.UTC().Format(time.RFC3339)
	}
	if hs.LastScrub != nil {
		resp.ScrubQuarantine = hs.LastScrub.Quarantined
	}
	for name, th := range hs.Tables {
		e := tableHealth{
			Moves:            th.Moves,
			Failures:         th.Failures,
			QuarantinedBlobs: th.QuarantinedBlobs,
		}
		if th.LastQuarantine != nil {
			e.LastQuarantine = th.LastQuarantine.Error()
		}
		resp.Tables[name] = e
	}
	w.Header().Set("Content-Type", "application/json")
	if hs.Mode != apollo.ModeHealthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// --- session handlers ---

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request, tenantName string) {
	h, err := s.tenants.Get(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	ls := s.sessions.create(tenantName, h) // session owns the lease now
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"session": ls.id})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request, tenantName string) {
	ls := s.sessions.get(r.PathValue("id"))
	if ls == nil || ls.tenant != tenantName {
		writeError(w, errSessionGone)
		return
	}
	s.sessions.remove(ls)
	w.WriteHeader(http.StatusNoContent)
}

// --- statement handlers ---

// withSession resolves the request's execution context: the named server
// session, or a one-shot autocommit session over a per-request tenant lease.
// It returns the SQL session, the tenant DB, and a done func.
func (s *Server) withSession(r *http.Request, tenantName string, req *stmtRequest) (*apollo.Session, *apollo.DB, *liveSession, func(), error) {
	if req.Session != "" {
		ls := s.sessions.get(req.Session)
		if ls == nil || ls.tenant != tenantName {
			return nil, nil, nil, nil, errSessionGone
		}
		unlock, err := ls.use()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return ls.sess, ls.h.DB(), ls, unlock, nil
	}
	h, err := s.tenants.Get(r.Context(), tenantName)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sess := h.DB().Session()
	return sess, h.DB(), nil, func() {
		sess.Close()
		h.Release()
	}, nil
}

func decodeStmt(r *http.Request) (*stmtRequest, error) {
	var req stmtRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if strings.TrimSpace(req.SQL) == "" {
		return nil, fmt.Errorf("empty sql")
	}
	return &req, nil
}

// handleExec executes one statement and returns the materialized result.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request, tenantName string) {
	req, err := decodeStmt(r)
	if err != nil {
		writeError(w, err)
		return
	}
	release, err := s.brk.Admit(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	sess, db, ls, done, err := s.withSession(r, tenantName, req)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()

	start := time.Now()
	res, err := s.runStmt(r.Context(), sess, db, ls, req)
	if err != nil {
		writeError(w, err)
		return
	}
	out := execResponse{
		Columns:   res.Columns,
		Affected:  res.Affected,
		Message:   res.Message,
		InTxn:     sess.InTxn(),
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, jsonRow(row))
	}
	s.rowsStreamed.Add(int64(len(res.Rows)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// runStmt dispatches one statement, using the prepared path when arguments
// are present (cached per session, one-shot otherwise).
func (s *Server) runStmt(ctx context.Context, sess *apollo.Session, db *apollo.DB, ls *liveSession, req *stmtRequest) (*apollo.Result, error) {
	if len(req.Args) == 0 {
		return sess.ExecContext(ctx, req.SQL)
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		return nil, err
	}
	st, err := s.prepared(db, ls, req.SQL)
	if err != nil {
		return nil, err
	}
	return sess.ExecPrepared(ctx, st, args...)
}

// prepared resolves the statement through the session plan cache, or
// one-shot for stateless requests.
func (s *Server) prepared(db *apollo.DB, ls *liveSession, src string) (*apollo.Stmt, error) {
	if ls != nil {
		return ls.stmt(src) // caller holds ls.mu via use()
	}
	return db.Prepare(src)
}

// handleExplain runs EXPLAIN (or EXPLAIN ANALYZE) for the statement.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, tenantName string) {
	req, err := decodeStmt(r)
	if err != nil {
		writeError(w, err)
		return
	}
	kw := "EXPLAIN "
	if req.Analyze {
		kw = "EXPLAIN ANALYZE "
	}
	sql := req.SQL
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "EXPLAIN") {
		sql = kw + sql
	}
	req.SQL = sql
	req.Args = nil // plans, not executions, are the product here
	release, err := s.brk.Admit(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	sess, _, _, done, err := s.withSession(r, tenantName, req)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	res, err := sess.ExecContext(r.Context(), req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"plan": res.Message})
}

// --- streaming query handler ---

// streamSink encodes rows as NDJSON chunks, flushing every flushEvery rows
// — and at least every interval, so a slow producer (a selective scan
// trickling out matches) still delivers buffered rows to the client instead
// of stalling until 256 accumulate. The clock check rides each Row call; no
// timer goroutine touches the http.ResponseWriter (it is not safe for
// concurrent use), so staleness is bounded to one interval past the last
// row written.
type streamSink struct {
	flush    http.Flusher
	enc      *json.Encoder
	rows     int64
	pending  int
	started  bool
	interval time.Duration // 0 = row-count flushing only
	last     time.Time     // when the wire was last flushed
}

const flushEvery = 256

// flushInterval bounds how long a streamed row can sit buffered server-side.
const flushInterval = 100 * time.Millisecond

type wireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func (k *streamSink) Schema(schema *sqltypes.Schema) error {
	k.started = true
	cols := make([]wireColumn, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i] = wireColumn{Name: c.Name, Type: c.Typ.String()}
	}
	if err := k.enc.Encode(map[string][]wireColumn{"columns": cols}); err != nil {
		return err
	}
	k.doFlush()
	return nil
}

func (k *streamSink) Row(row sqltypes.Row) error {
	if err := k.enc.Encode(map[string][]any{"row": jsonRow(row)}); err != nil {
		return err
	}
	k.rows++
	k.pending++
	if k.pending >= flushEvery || (k.interval > 0 && time.Since(k.last) >= k.interval) {
		k.doFlush()
	}
	return nil
}

func (k *streamSink) doFlush() {
	k.pending = 0
	k.last = time.Now()
	if k.flush != nil {
		k.flush.Flush()
	}
}

// handleQuery executes one statement, streaming a SELECT's rows as NDJSON.
// Errors before the first byte map to HTTP statuses; errors mid-stream are
// delivered in-band as a terminal {"error": ...} line.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, tenantName string) {
	req, err := decodeStmt(r)
	if err != nil {
		writeError(w, err)
		return
	}
	release, err := s.brk.Admit(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	sess, db, ls, done, err := s.withSession(r, tenantName, req)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()

	// NDJSON from the first byte: the schema line is written mid-execution,
	// so the content type must be committed before the query runs.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sink := &streamSink{flush: flusher, enc: json.NewEncoder(w), interval: flushInterval, last: time.Now()}
	start := time.Now()

	run := func() (*apollo.Result, error) {
		if len(req.Args) == 0 {
			return sess.StreamContext(r.Context(), req.SQL, sink)
		}
		args, err := decodeArgs(req.Args)
		if err != nil {
			return nil, err
		}
		st, err := s.prepared(db, ls, req.SQL)
		if err != nil {
			return nil, err
		}
		return sess.StreamPrepared(r.Context(), st, sink, args...)
	}

	res, err := run()
	s.rowsStreamed.Add(sink.rows)
	if err != nil {
		if !sink.started {
			// Nothing on the wire yet: a real HTTP error status.
			w.Header().Del("Content-Type")
			writeError(w, err)
			return
		}
		// Mid-stream failure: the 200 is committed, deliver the error
		// in-band as the terminal line.
		_, code, _ := classify(err)
		sink.enc.Encode(map[string]wireError{"error": {Code: code, Message: err.Error()}})
		sink.doFlush()
		return
	}
	sink.enc.Encode(map[string]any{"done": map[string]any{
		"rows":       sink.rows,
		"affected":   res.Affected,
		"message":    res.Message,
		"in_txn":     sess.InTxn(),
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	}})
	sink.doFlush()
}
