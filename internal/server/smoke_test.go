package server

import (
	"context"
	"fmt"
	"net"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apollo/internal/server/client"
)

// TestServeSmoke is the serving acceptance test (`make serve-smoke`): it
// builds the real apollod binary, starts it with two tenants sharing one
// process and one memory budget, and drives the wire API end to end —
// concurrent sessions on both tenants, a cross-request transaction riding
// group commit, streamed query results, admission-control shedding with the
// typed 429, and per-tenant labeled counters on /metrics.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildApollod(t)
	root := t.TempDir()
	addr := freeAddr(t)

	cmd := osexec.Command(bin,
		"-root", root, "-addr", addr,
		"-tenant", "t1=alpha-key", "-tenant", "t2=beta-key",
		"-cache-bytes", fmt.Sprint(64<<20),
		"-max-per-tenant", "2", "-queue-depth", "0", "-max-queries", "16",
		"-fsync", "always",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	base := "http://" + addr
	c1 := client.New(base, "alpha-key")
	c2 := client.New(base, "beta-key")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	waitHealthy(t, ctx, c1)

	// --- two tenants, one process: DDL + data on both ---
	for i, c := range []*client.Client{c1, c2} {
		if _, err := c.Exec(ctx, "CREATE TABLE orders (id BIGINT, qty BIGINT, tag VARCHAR)"); err != nil {
			t.Fatalf("tenant %d create: %v", i+1, err)
		}
	}
	// Enough rows that a streamed result spans multiple flush chunks and a
	// self-join is slow enough to hold admission slots measurably.
	const rows = 1200
	for lo := 0; lo < rows; lo += 200 {
		var vals []string
		for i := lo; i < lo+200; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, 'tag%d')", i, i%7, i%13))
		}
		stmt := "INSERT INTO orders VALUES " + strings.Join(vals, ", ")
		if _, err := c1.Exec(ctx, stmt); err != nil {
			t.Fatalf("bulk insert: %v", err)
		}
	}
	if _, err := c2.Exec(ctx, "INSERT INTO orders VALUES (1, 10, 'beta')"); err != nil {
		t.Fatal(err)
	}

	// --- streaming: rows arrive as NDJSON and the count is exact ---
	var streamed int
	res, err := c1.QueryStream(ctx, "SELECT id, qty FROM orders", nil, nil,
		func(row []any) error { streamed++; return nil })
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if streamed != rows {
		t.Fatalf("streamed %d rows, want %d", streamed, rows)
	}
	_ = res

	// --- concurrent sessions; one holds a cross-request transaction ---
	// Session A (t1) opens a transaction and commits it across requests
	// (fsync=always, so the commit rides the WAL's group-commit machinery)
	// while session B (t2) runs its own transaction concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	commitTxn := func(c *client.Client, tag string) {
		defer wg.Done()
		s := client.New(base, keyOf(c, c1, c2))
		if err := s.OpenSession(ctx); err != nil {
			errs <- err
			return
		}
		defer s.CloseSession(ctx)
		for _, stmt := range []string{
			"BEGIN",
			fmt.Sprintf("INSERT INTO orders VALUES (900001, 1, '%s')", tag),
			fmt.Sprintf("INSERT INTO orders VALUES (900002, 2, '%s')", tag),
			"COMMIT",
		} {
			if _, err := s.Exec(ctx, stmt); err != nil {
				errs <- fmt.Errorf("%s: %s: %w", tag, stmt, err)
				return
			}
		}
	}
	wg.Add(2)
	go commitTxn(c1, "txn-a")
	go commitTxn(c2, "txn-b")
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, c := range []*client.Client{c1, c2} {
		r, err := c.Exec(ctx, "SELECT COUNT(*) FROM orders WHERE id > 900000")
		if err != nil {
			t.Fatal(err)
		}
		if n := r.Rows[0][0].(float64); n != 2 {
			t.Fatalf("tenant %d: committed rows = %v, want 2", i+1, n)
		}
	}

	// --- admission control: saturate t1's 2 slots, expect immediate sheds ---
	// An admission slot is held for a statement's whole streaming duration,
	// so two streaming self-joins whose client stalls after the first row
	// pin both slots deterministically (the ~200k-row result far exceeds the
	// socket buffers, so the server blocks on backpressure mid-stream).
	bigJoin := "SELECT a.id, b.id FROM orders a JOIN orders b ON a.qty = b.qty"
	holderUp := make(chan struct{}, 2)
	release := make(chan struct{})
	var holders sync.WaitGroup
	for i := 0; i < 2; i++ {
		holders.Add(1)
		go func() {
			defer holders.Done()
			first := true
			_, err := c1.QueryStream(ctx, bigJoin, nil, nil, func([]any) error {
				if first {
					first = false
					holderUp <- struct{}{}
					<-release
				}
				return nil
			})
			if err != nil {
				t.Errorf("holder stream: %v", err)
			}
		}()
	}
	<-holderUp
	<-holderUp
	const shed = 3
	for i := 0; i < shed; i++ {
		_, err := c1.Exec(ctx, "SELECT 1")
		cerr, ok := err.(*client.Error)
		if !ok || !cerr.Overloaded() {
			t.Fatalf("query %d on saturated tenant: want typed overload, got %v", i, err)
		}
		if cerr.Status != 429 {
			t.Fatalf("overload status = %d, want 429", cerr.Status)
		}
	}
	// Per-tenant fairness: t2 is unaffected by t1's saturation.
	if _, err := c2.Exec(ctx, "SELECT COUNT(*) FROM orders"); err != nil {
		t.Fatalf("t2 blocked by t1 saturation: %v", err)
	}
	close(release)
	holders.Wait()
	if t.Failed() {
		return
	}

	// --- /metrics: per-tenant labeled counters from one registry ---
	metricsText, err := c1.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`apollod_queries_admitted_total{tenant="t1"}`,
		`apollod_queries_admitted_total{tenant="t2"}`,
		`apollod_queries_shed_total{tenant="t1"}`,
		"apollod_tenants_open 2",
		"apollod_rows_streamed_total",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(metricsText, `shed_total{tenant="t1"} `+fmt.Sprint(shed)) {
		// Count must match what clients observed (shed is only incremented
		// by this test's queries on t1).
		t.Errorf("shed counter mismatch: observed %d, metrics:\n%s", shed,
			grepLines(metricsText, "apollod_queries_shed"))
	}
}

func buildApollod(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "apollod")
	cmd := osexec.Command("go", "build", "-o", bin, "apollo/cmd/apollod")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build apollod: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/server -> repo root
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, ctx context.Context, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := c.Metrics(ctx); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("apollod never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// keyOf maps a client back to its API key (test helper for spawning fresh
// session clients).
func keyOf(c, c1, c2 *client.Client) string {
	if c == c1 {
		return "alpha-key"
	}
	_ = c2
	return "beta-key"
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
