package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"apollo"
)

// defaultLoadQueueDepth is the bounded decode→compress channel when
// Config.LoadQueueDepth is unset.
const defaultLoadQueueDepth = 1024

// loadResponse is /v1/load's body. Dead letters always travel in-band with
// the counters; when the load aborts partway, the typed error rides
// alongside whatever was loaded so the client knows both what failed and
// what made it in.
type loadResponse struct {
	RowsLoaded  int                     `json:"rows_loaded"`
	RowsDirect  int                     `json:"rows_direct"`
	RowsDelta   int                     `json:"rows_delta"`
	Groups      int                     `json:"groups"`
	Retries     int                     `json:"retries"`
	DeadLetters []apollo.LoadDeadLetter `json:"dead_letters,omitempty"`
	Batches     []apollo.LoadBatchStat  `json:"batches,omitempty"`
	ElapsedMs   float64                 `json:"elapsed_ms"`
	Error       *wireError              `json:"error,omitempty"`
}

// handleLoad is the streaming bulk-ingest endpoint: the request body is the
// raw CSV or binary stream, and the target/format/options ride as query
// parameters (table is required; format, header, delimiter, batch_rows,
// max_dead_letters are optional). The load is admitted through the broker
// like any statement, the broker's per-query grant caps the buffered batch,
// and a bounded row channel between the decoder and the compressor turns a
// slow compressor into TCP backpressure on the client.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request, tenantName string) {
	q := r.URL.Query()
	tableName := q.Get("table")
	if tableName == "" {
		writeError(w, fmt.Errorf("missing required query parameter \"table\""))
		return
	}
	var delim rune
	if d := q.Get("delimiter"); d != "" {
		rs := []rune(d)
		if len(rs) != 1 {
			writeError(w, fmt.Errorf("delimiter must be one character, got %q", d))
			return
		}
		delim = rs[0]
	}
	batchRows, err := intParam(q.Get("batch_rows"))
	if err != nil {
		writeError(w, fmt.Errorf("bad batch_rows: %w", err))
		return
	}
	maxDL, err := intParam(q.Get("max_dead_letters"))
	if err != nil {
		writeError(w, fmt.Errorf("bad max_dead_letters: %w", err))
		return
	}
	if q.Get("max_dead_letters") == "0" {
		maxDL = -1 // explicit zero: first bad row aborts
	}

	release, err := s.brk.Admit(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	h, err := s.tenants.Get(r.Context(), tenantName)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()

	depth := s.cfg.LoadQueueDepth
	if depth <= 0 {
		depth = defaultLoadQueueDepth
	}
	start := time.Now()
	res, lerr := h.DB().Load(r.Context(), apollo.LoadOptions{
		Table:          tableName,
		Format:         q.Get("format"),
		Reader:         r.Body,
		Header:         boolParam(q.Get("header")),
		Delimiter:      delim,
		BatchRows:      batchRows,
		MaxDeadLetters: maxDL,
		QueueDepth:     depth,
		GrantBytes:     s.brk.GrantBytes(),
	})
	out := loadResponse{
		RowsLoaded:  res.RowsLoaded,
		RowsDirect:  res.RowsDirect,
		RowsDelta:   res.RowsDelta,
		Groups:      res.Groups,
		Retries:     res.Retries,
		DeadLetters: res.DeadLetters,
		Batches:     res.Batches,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
	}
	s.rowsLoaded.Add(int64(res.RowsLoaded))
	status := http.StatusOK
	if lerr != nil {
		var code, tn string
		status, code, tn = classify(lerr)
		out.Error = &wireError{Code: code, Tenant: tn, Message: lerr.Error()}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(out)
}

func intParam(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func boolParam(s string) bool {
	return s == "1" || s == "true" || s == "yes"
}
