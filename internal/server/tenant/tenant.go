// Package tenant manages the per-tenant databases of a serving process: one
// durable apollo database per subdirectory of a root data directory, opened
// lazily on first request and closed again when idle or when the open-handle
// cache overflows. All tenants share the process-wide resources the caller
// wires into the database template (cache budget, memory grants, metrics
// registry); the manager's job is the handle lifecycle.
//
// Handles are refcounted: a request that acquired a handle can use its DB
// until it releases it, and the manager never closes a database that has
// in-flight requests. Eviction (LRU) and idle close only take handles with
// zero references, and a tenant being closed blocks re-open of the same
// tenant until the close has finished, so there is never more than one live
// DB instance per tenant directory — two instances would both replay and
// write the same WAL.
//
// Failure isolation: a tenant whose directory fails to open (ErrCorrupt from
// recovery, bad permissions, ...) returns that error to its own requests
// only. Nothing is cached about the failure, so an operator can repair the
// directory and the next request recovers it; other tenants are unaffected.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"apollo"
	"apollo/internal/metrics"
)

// ErrManagerClosed is returned by Get after Close.
var ErrManagerClosed = errors.New("tenant: manager closed")

// ErrBadName rejects tenant names that could escape the root directory or
// produce unreadable metric labels.
var ErrBadName = errors.New("tenant: invalid tenant name (want [a-z0-9_-]{1,64})")

// Config configures a Manager.
type Config struct {
	// Root is the data directory; tenant name X lives in Root/X.
	Root string
	// Template is the database configuration every tenant opens with. Wire
	// shared resources (CacheBudget, MemoryBudget) here.
	Template apollo.Config
	// MaxOpen bounds the number of simultaneously open databases (0 =
	// unlimited). Overflow evicts the least-recently-used idle handle;
	// handles with in-flight requests are never evicted, so the bound can be
	// exceeded transiently while more than MaxOpen tenants are mid-query.
	MaxOpen int
	// IdleTimeout closes databases that have had no request for this long
	// (0 = never).
	IdleTimeout time.Duration
	// OnOpen, when set, runs after each successful open (metrics, logging).
	OnOpen func(name string, db *apollo.DB)
}

// Manager owns the open-handle cache.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	open    map[string]*Handle
	pending map[string]chan struct{} // open or close in progress; wait and retry
	closed  bool

	janitorStop chan struct{}
	janitorDone chan struct{}

	openGauge *metrics.Gauge
	evictions *metrics.Counter
}

// Handle is a leased reference to one tenant's open database. Release it when
// the request finishes; the DB is only closed once every lease is back.
type Handle struct {
	name string
	db   *apollo.DB
	m    *Manager

	// Guarded by m.mu.
	refs    int
	lastUse time.Time
}

// New creates a manager. Call Close to shut every tenant down.
func New(cfg Config) *Manager {
	m := &Manager{
		cfg:     cfg,
		open:    map[string]*Handle{},
		pending: map[string]chan struct{}{},
		openGauge: metrics.Default.Gauge("apollod_tenants_open",
			"Tenant databases currently open in this process."),
		evictions: metrics.Default.Counter("apollod_tenant_evictions_total",
			"Idle tenant databases closed by LRU eviction or idle timeout."),
	}
	if cfg.IdleTimeout > 0 {
		m.janitorStop = make(chan struct{})
		m.janitorDone = make(chan struct{})
		go m.janitor()
	}
	return m
}

// ValidName reports whether name is an acceptable tenant name: 1-64 runes of
// [a-z0-9_-]. This keeps tenant names safe as path components and metric
// label values.
func ValidName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Get returns a leased handle to the named tenant's database, opening (and
// recovering) it on first request. The caller must Release the handle. An
// open failure is returned to this caller only and nothing is cached, so a
// repaired tenant recovers on its next request.
func (m *Manager) Get(ctx context.Context, name string) (*Handle, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrManagerClosed
		}
		if h := m.open[name]; h != nil {
			h.refs++
			h.lastUse = time.Now()
			m.mu.Unlock()
			return h, nil
		}
		if ch := m.pending[name]; ch != nil {
			// Another goroutine is opening or closing this tenant; wait for
			// it to settle and re-evaluate. An open that succeeds leaves the
			// handle in the map for us; a failed open leaves nothing and we
			// try the open ourselves.
			m.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		}
		ch := make(chan struct{})
		m.pending[name] = ch
		m.mu.Unlock()
		return m.openTenant(ctx, name, ch)
	}
}

// openTenant performs the actual OpenDir with the pending marker held.
func (m *Manager) openTenant(ctx context.Context, name string, ch chan struct{}) (*Handle, error) {
	settle := func() {
		m.mu.Lock()
		delete(m.pending, name)
		m.mu.Unlock()
		close(ch)
	}
	if err := ctx.Err(); err != nil {
		settle()
		return nil, err
	}
	db, err := apollo.OpenDir(m.cfg.Root+"/"+name, m.cfg.Template)
	if err != nil {
		settle()
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	m.mu.Lock()
	if m.closed {
		delete(m.pending, name)
		m.mu.Unlock()
		close(ch)
		db.Close()
		return nil, ErrManagerClosed
	}
	h := &Handle{name: name, db: db, m: m, refs: 1, lastUse: time.Now()}
	m.open[name] = h
	m.openGauge.Set(float64(len(m.open)))
	evict := m.overflowLocked()
	delete(m.pending, name)
	m.mu.Unlock()
	close(ch)
	m.closeAll(evict)
	if m.cfg.OnOpen != nil {
		m.cfg.OnOpen(name, db)
	}
	return h, nil
}

// DB returns the handle's database.
func (h *Handle) DB() *apollo.DB { return h.db }

// Name returns the tenant name.
func (h *Handle) Name() string { return h.name }

// Release returns the lease. The handle must not be used afterwards.
func (h *Handle) Release() {
	m := h.m
	m.mu.Lock()
	h.refs--
	h.lastUse = time.Now()
	// A handle that was busy while the cache overflowed escapes eviction at
	// open time; settle the bound when it goes idle.
	evict := m.overflowLocked()
	m.mu.Unlock()
	m.closeAll(evict)
}

// overflowLocked picks LRU idle victims until the cache fits MaxOpen.
// Called with m.mu held; the caller closes the returned handles unlocked.
func (m *Manager) overflowLocked() []*Handle {
	if m.cfg.MaxOpen <= 0 {
		return nil
	}
	var evict []*Handle
	for len(m.open) > m.cfg.MaxOpen {
		var victim *Handle
		for _, h := range m.open {
			if h.refs > 0 {
				continue
			}
			if victim == nil || h.lastUse.Before(victim.lastUse) {
				victim = h
			}
		}
		if victim == nil {
			break // everything busy; transiently over the bound
		}
		m.detachLocked(victim)
		evict = append(evict, victim)
	}
	return evict
}

// detachLocked removes h from the open map and installs a pending marker so
// a re-open of the same tenant waits for the close to finish.
func (m *Manager) detachLocked(h *Handle) {
	delete(m.open, h.name)
	m.openGauge.Set(float64(len(m.open)))
	if _, ok := m.pending[h.name]; !ok {
		m.pending[h.name] = make(chan struct{})
	}
}

// closeAll closes detached handles and clears their pending markers.
func (m *Manager) closeAll(hs []*Handle) {
	for _, h := range hs {
		h.db.Close()
		m.evictions.Inc()
		m.mu.Lock()
		if ch, ok := m.pending[h.name]; ok {
			delete(m.pending, h.name)
			close(ch)
		}
		m.mu.Unlock()
	}
}

// janitor closes idle databases in the background.
func (m *Manager) janitor() {
	defer close(m.janitorDone)
	tick := time.NewTicker(m.cfg.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-tick.C:
			cutoff := time.Now().Add(-m.cfg.IdleTimeout)
			var evict []*Handle
			m.mu.Lock()
			if m.closed {
				m.mu.Unlock()
				return
			}
			for _, h := range m.open {
				if h.refs == 0 && h.lastUse.Before(cutoff) {
					m.detachLocked(h)
					evict = append(evict, h)
				}
			}
			m.mu.Unlock()
			m.closeAll(evict)
		}
	}
}

// OpenCount returns the number of currently open tenant databases.
func (m *Manager) OpenCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.open)
}

// Names returns the names of currently open tenants (unordered).
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.open))
	for n := range m.open {
		names = append(names, n)
	}
	return names
}

// Close shuts every open tenant database down and rejects further Gets.
// Databases with in-flight requests are closed anyway — their statements get
// apollo.ErrClosed, which is the contract a shutting-down server wants.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	handles := make([]*Handle, 0, len(m.open))
	for _, h := range m.open {
		handles = append(handles, h)
	}
	m.open = map[string]*Handle{}
	m.openGauge.Set(0)
	// Wake every waiter parked on a pending open/close; they observe closed
	// and fail with ErrManagerClosed.
	for name, ch := range m.pending {
		delete(m.pending, name)
		close(ch)
	}
	m.mu.Unlock()
	if m.janitorStop != nil {
		close(m.janitorStop)
		<-m.janitorDone
	}
	for _, h := range handles {
		h.db.Close()
	}
}

// String implements fmt.Stringer for debug logs.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("tenant.Manager{root=%s open=[%s]}", m.cfg.Root, strings.Join(namesLocked(m.open), ","))
}

func namesLocked(open map[string]*Handle) []string {
	names := make([]string, 0, len(open))
	for n := range open {
		names = append(names, n)
	}
	return names
}
