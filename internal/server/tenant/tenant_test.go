package tenant

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apollo"
)

func testConfig(t *testing.T, root string) Config {
	t.Helper()
	cfg := apollo.DefaultConfig()
	cfg.TupleMoverInterval = 0 // keep background churn out of lifecycle tests
	return Config{Root: root, Template: cfg}
}

func mustExec(t *testing.T, db *apollo.DB, stmt string) *apollo.Result {
	t.Helper()
	res, err := db.Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", stmt, err)
	}
	return res
}

func TestLazyOpenAndReuse(t *testing.T) {
	root := t.TempDir()
	m := New(testConfig(t, root))
	defer m.Close()

	ctx := context.Background()
	h1, err := m.Get(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, h1.DB(), "CREATE TABLE t (a BIGINT)")
	mustExec(t, h1.DB(), "INSERT INTO t VALUES (1)")

	// Second lease sees the same instance.
	h2, err := m.Get(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if h1.DB() != h2.DB() {
		t.Fatal("second Get returned a different DB instance")
	}
	if got := m.OpenCount(); got != 1 {
		t.Fatalf("OpenCount = %d, want 1", got)
	}
	h1.Release()
	h2.Release()

	// The tenant directory exists on disk under root.
	if _, err := os.Stat(root + "/acme"); err != nil {
		t.Fatalf("tenant dir: %v", err)
	}
}

func TestInvalidNames(t *testing.T) {
	m := New(testConfig(t, t.TempDir()))
	defer m.Close()
	for _, name := range []string{"", "../etc", "a/b", "UPPER", "x y", "héllo"} {
		if _, err := m.Get(context.Background(), name); !errors.Is(err, ErrBadName) {
			t.Errorf("Get(%q) err = %v, want ErrBadName", name, err)
		}
	}
}

// TestRecoveryOnFirstRequest writes through one manager, shuts it down, and
// verifies a fresh manager recovers the tenant's data on the first Get — the
// crash-restart path a server hits when a tenant's first request arrives
// after a process restart. The WAL left by the first instance must be
// replayed (there is no checkpoint), which is exactly what recovery does
// after a crash.
func TestRecoveryOnFirstRequest(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()

	m1 := New(testConfig(t, root))
	h, err := m1.Get(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, h.DB(), "CREATE TABLE t (a BIGINT)")
	mustExec(t, h.DB(), "INSERT INTO t VALUES (1), (2), (3)")
	h.Release()
	m1.Close()

	m2 := New(testConfig(t, root))
	defer m2.Close()
	h2, err := m2.Get(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	rec := h2.DB().RecoveryInfo()
	if rec.ReplayedRecords == 0 {
		t.Fatalf("expected WAL replay on first request, got %+v", rec)
	}
	res := mustExec(t, h2.DB(), "SELECT COUNT(*) FROM t")
	if got := res.Rows[0][0].I; got != 3 {
		t.Fatalf("recovered row count = %d, want 3", got)
	}
}

// TestCorruptTenantIsolated damages one tenant's WAL beyond repair and
// verifies its open fails with a typed error while another tenant keeps
// serving — and that repairing the directory heals it on the next request
// (no negative caching).
func TestCorruptTenantIsolated(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	m := New(testConfig(t, root))
	defer m.Close()

	for _, name := range []string{"good", "bad"} {
		h, err := m.Get(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, h.DB(), "CREATE TABLE t (a BIGINT)")
		mustExec(t, h.DB(), "INSERT INTO t VALUES (7)")
		h.Release()
	}
	m.Close()

	// Corrupt the middle of bad's WAL (mid-log damage is ErrCorrupt, not a
	// truncatable torn tail).
	walDir := root + "/bad/wal"
	ents, err := os.ReadDir(walDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("wal dir: %v (%d entries)", err, len(ents))
	}
	seg := walDir + "/" + ents[0].Name()
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), data...)
	for i := 20; i < len(data)-20 && i < 200; i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := New(testConfig(t, root))
	defer m2.Close()
	if _, err := m2.Get(ctx, "bad"); err == nil {
		t.Fatal("corrupt tenant opened without error")
	}
	hg, err := m2.Get(ctx, "good")
	if err != nil {
		t.Fatalf("healthy tenant affected by sibling corruption: %v", err)
	}
	res := mustExec(t, hg.DB(), "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Fatal("healthy tenant lost data")
	}
	hg.Release()

	// Repair bad and verify it heals without restarting the manager.
	if err := os.WriteFile(seg, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	hb, err := m2.Get(ctx, "bad")
	if err != nil {
		t.Fatalf("repaired tenant still failing: %v", err)
	}
	hb.Release()
}

// TestLRUEviction opens more tenants than MaxOpen allows and verifies the
// least-recently-used idle handle is closed, busy handles survive, and an
// evicted tenant transparently reopens (with its data) on the next request.
func TestLRUEviction(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	cfg := testConfig(t, root)
	cfg.MaxOpen = 2
	m := New(cfg)
	defer m.Close()

	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		h, err := m.Get(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, h.DB(), "CREATE TABLE x (a BIGINT)")
		mustExec(t, h.DB(), fmt.Sprintf("INSERT INTO x VALUES (%d)", i))
		h.Release()
	}
	if got := m.OpenCount(); got != 2 {
		t.Fatalf("OpenCount after overflow = %d, want 2", got)
	}

	// t0 was evicted (LRU); reopening recovers its data.
	h, err := m.Get(ctx, "t0")
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, h.DB(), "SELECT a FROM x")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("reopened t0 rows = %v", res.Rows)
	}
	h.Release()
}

// TestEvictionSparesBusyHandles pins every tenant and verifies nothing is
// closed under in-flight leases even when the cache is over its bound, then
// that the bound settles once leases are released.
func TestEvictionSparesBusyHandles(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	cfg := testConfig(t, root)
	cfg.MaxOpen = 1
	m := New(cfg)
	defer m.Close()

	var held []*Handle
	for i := 0; i < 3; i++ {
		h, err := m.Get(ctx, fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, h)
	}
	if got := m.OpenCount(); got != 3 {
		t.Fatalf("busy handles evicted: OpenCount = %d, want 3", got)
	}
	for _, h := range held {
		if h.DB().Closed() {
			t.Fatal("busy handle's DB closed under lease")
		}
		h.Release()
	}
	if got := m.OpenCount(); got != 1 {
		t.Fatalf("OpenCount after releases = %d, want 1", got)
	}
}

// TestIdleClose verifies the janitor closes tenants with no traffic.
func TestIdleClose(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.IdleTimeout = 50 * time.Millisecond
	m := New(cfg)
	defer m.Close()

	h, err := m.Get(context.Background(), "acme")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	deadline := time.Now().Add(5 * time.Second)
	for m.OpenCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle tenant never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentOpenEvictReopen hammers one tenant from many goroutines while
// a tight MaxOpen bound and a second tenant force constant evict/reopen of
// the same directory. Run under -race; correctness here is "exactly one live
// DB instance per tenant at any moment" (enforced by the pending-marker
// serialization) and no lost writes.
func TestConcurrentOpenEvictReopen(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	cfg := testConfig(t, root)
	cfg.MaxOpen = 1
	m := New(cfg)
	defer m.Close()

	// Seed both tenants with a table.
	for _, name := range []string{"a", "b"} {
		h, err := m.Get(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, h.DB(), "CREATE TABLE n (v BIGINT)")
		h.Release()
	}

	const workers = 8
	const perWorker = 20
	var inserted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "a"
			if w%2 == 1 {
				name = "b"
			}
			for i := 0; i < perWorker; i++ {
				h, err := m.Get(ctx, name)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if _, err := h.DB().Exec("INSERT INTO n VALUES (1)"); err != nil {
					t.Errorf("worker %d insert: %v", w, err)
					h.Release()
					return
				}
				inserted.Add(1)
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every write survived the evict/reopen churn: the two tenants' counts
	// sum to the number of acknowledged inserts.
	var total int64
	for _, name := range []string{"a", "b"} {
		h, err := m.Get(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		res := mustExec(t, h.DB(), "SELECT COUNT(*) FROM n")
		total += res.Rows[0][0].I
		h.Release()
	}
	if total != inserted.Load() {
		t.Fatalf("recovered %d rows, acknowledged %d", total, inserted.Load())
	}
}

// TestGetAfterClose verifies the typed error and that Close wakes waiters.
func TestGetAfterClose(t *testing.T) {
	m := New(testConfig(t, t.TempDir()))
	m.Close()
	if _, err := m.Get(context.Background(), "acme"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("err = %v, want ErrManagerClosed", err)
	}
	m.Close() // idempotent
}
