package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"apollo/internal/sqltypes"
)

type countFlusher struct{ n int }

func (f *countFlusher) Flush() { f.n++ }

// TestStreamSinkFlushesOnInterval pins the NDJSON pacing contract: a slow
// producer (rows trickling out far below the 256-row threshold) still
// reaches the wire at least once per flush interval, while a fast producer
// is batched — no per-row flush until the row-count threshold fires.
func TestStreamSinkFlushesOnInterval(t *testing.T) {
	f := &countFlusher{}
	k := &streamSink{flush: f, enc: json.NewEncoder(io.Discard),
		interval: 10 * time.Millisecond, last: time.Now()}
	row := sqltypes.Row{sqltypes.NewInt(1)}

	// Three rows, each arriving after the interval has elapsed: each must
	// flush immediately instead of waiting for 256 friends.
	for i := 0; i < 3; i++ {
		time.Sleep(15 * time.Millisecond)
		if err := k.Row(row); err != nil {
			t.Fatal(err)
		}
	}
	if f.n != 3 {
		t.Fatalf("3 slow rows flushed %d times, want one flush per row", f.n)
	}

	// A fast burst under the interval stays buffered...
	k.last = time.Now()
	before := f.n
	for i := 0; i < 10; i++ {
		if err := k.Row(row); err != nil {
			t.Fatal(err)
		}
	}
	if f.n != before {
		t.Fatalf("fast burst flushed %d extra times, want buffering", f.n-before)
	}
	// ...until the row-count threshold fires exactly once.
	for i := 0; i < flushEvery; i++ {
		if err := k.Row(row); err != nil {
			t.Fatal(err)
		}
	}
	if f.n != before+1 {
		t.Fatalf("row-count threshold flushed %d times, want 1", f.n-before)
	}
}

// postLoad streams body to /v1/load and decodes the response.
func postLoad(t *testing.T, ts *httptest.Server, key, params string, body io.Reader) (*http.Response, loadResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/load?"+params, body)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var out loadResponse
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad load response %s: %v", raw, err)
		}
	}
	return resp, out
}

func TestLoadEndpoint(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE bl (id BIGINT, v VARCHAR) WITH (rowgroup_size=128, bulk_threshold=64)", nil)

	var sb strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "%d,v-%d\n", i, i)
	}
	resp, out := postLoad(t, ts, "key1", "table=bl&batch_rows=128", strings.NewReader(sb.String()))
	if resp.StatusCode != 200 || out.Error != nil {
		t.Fatalf("load: HTTP %d, error %+v", resp.StatusCode, out.Error)
	}
	if out.RowsLoaded != 300 || out.RowsDirect != 256 || out.Groups != 2 || out.RowsDelta != 44 {
		t.Fatalf("load split wrong: %+v (want 300 loaded = 256 direct in 2 groups + 44 delta)", out)
	}
	if len(out.DeadLetters) != 0 || len(out.Batches) == 0 {
		t.Fatalf("want no dead letters and batch stats, got %+v", out)
	}

	r := exec(t, ts, "key1", "SELECT COUNT(*) FROM bl", nil)
	if fmt.Sprint(r.Rows[0][0]) != "300" {
		t.Fatalf("COUNT(*) after load = %v, want 300", r.Rows[0][0])
	}

	// The ingest counter is on the shared exposition.
	mresp, mbody := do(t, ts, "GET", "/metrics", "", nil)
	if mresp.StatusCode != 200 || !strings.Contains(string(mbody), "apollod_rows_loaded_total 300") {
		t.Fatalf("metrics missing rows-loaded counter: HTTP %d", mresp.StatusCode)
	}
}

func TestLoadEndpointDeadLettersInBand(t *testing.T) {
	_, ts := testServer(t, nil)
	exec(t, ts, "key1", "CREATE TABLE dl (id BIGINT, v VARCHAR)", nil)

	body := "1,ok\nnot-a-number,bad\n2,ok\n"
	resp, out := postLoad(t, ts, "key1", "table=dl", strings.NewReader(body))
	if resp.StatusCode != 200 || out.Error != nil {
		t.Fatalf("load: HTTP %d, error %+v", resp.StatusCode, out.Error)
	}
	if out.RowsLoaded != 2 || len(out.DeadLetters) != 1 || out.DeadLetters[0].Line != 2 {
		t.Fatalf("dead-letter accounting wrong: %+v", out)
	}

	// max_dead_letters=0 means the first malformed row aborts — but the
	// response still carries partial progress alongside the typed error.
	resp, out = postLoad(t, ts, "key1", "table=dl&max_dead_letters=0", strings.NewReader(body))
	if resp.StatusCode == 200 || out.Error == nil {
		t.Fatalf("zero-tolerance load did not fail: HTTP %d, %+v", resp.StatusCode, out)
	}
	if out.RowsLoaded != 0 && out.RowsLoaded != 1 {
		t.Fatalf("partial progress should be 0 or 1 rows, got %d", out.RowsLoaded)
	}
}

func TestLoadEndpointValidation(t *testing.T) {
	_, ts := testServer(t, nil)

	// table is required.
	resp, _ := postLoad(t, ts, "key1", "", strings.NewReader("1\n"))
	if resp.StatusCode != 400 {
		t.Fatalf("missing table: HTTP %d, want 400", resp.StatusCode)
	}
	// Unknown table is a client error, not a 500.
	resp, out := postLoad(t, ts, "key1", "table=nope", strings.NewReader("1\n"))
	if resp.StatusCode != 400 || out.Error == nil {
		t.Fatalf("unknown table: HTTP %d %+v, want 400 with in-band error", resp.StatusCode, out.Error)
	}
	// Auth applies like any data endpoint.
	resp, _ = postLoad(t, ts, "", "table=nope", strings.NewReader("1\n"))
	if resp.StatusCode != 401 {
		t.Fatalf("unauthenticated load: HTTP %d, want 401", resp.StatusCode)
	}
	// Tenants are isolated: t2 cannot see t1's table.
	exec(t, ts, "key1", "CREATE TABLE mine (id BIGINT)", nil)
	resp, _ = postLoad(t, ts, "key2", "table=mine", strings.NewReader("1\n"))
	if resp.StatusCode == 200 {
		t.Fatal("tenant t2 loaded into t1's table")
	}
}
