package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"apollo"
)

// Integration test for ENOSPC graceful degradation through the HTTP surface:
// a tenant whose WAL hits disk-full keeps serving SELECTs while INSERT and
// COPY return 503 with a Retry-After and the typed "read_only" code, and
// once space returns the write probe restores writability automatically —
// no restart, no operator action.
func TestTenantENOSPCDegradesToReadOnlyAndRecovers(t *testing.T) {
	srv, ts := testServer(t, func(cfg *Config) {
		cfg.DB.ProbeInterval = 10 * time.Millisecond
	})

	exec(t, ts, "key1", "CREATE TABLE ev (id BIGINT, note VARCHAR)", nil)
	exec(t, ts, "key1", "INSERT INTO ev VALUES (1, 'before')", nil)

	// Reach under the HTTP surface to arm deterministic disk-full on the
	// tenant's WAL: every append from now on fails with ENOSPC.
	h, err := srv.tenants.Get(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	db := h.DB()
	db.InjectWALFaults(apollo.WALFaults{AppendNoSpaceAt: 1})

	// Writes: 503 + Retry-After + typed code.
	resp, out := do(t, ts, "POST", "/v1/exec", "key1",
		map[string]any{"sql": "INSERT INTO ev VALUES (2, 'during')"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("INSERT under ENOSPC: status %d body %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 read_only response missing Retry-After header")
	}
	if !strings.Contains(string(out), `"read_only"`) {
		t.Fatalf("error body lacks read_only code: %s", out)
	}

	// COPY (the bulk-load endpoint) is rejected the same way.
	resp, out = do(t, ts, "POST", "/v1/load?table=ev&format=csv", "key1", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("load under ENOSPC: status %d body %s", resp.StatusCode, out)
	}

	// Reads keep working on the degraded tenant.
	resp, out = do(t, ts, "POST", "/v1/query", "key1",
		map[string]any{"sql": "SELECT COUNT(*) FROM ev"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SELECT under ENOSPC: status %d body %s", resp.StatusCode, out)
	}

	// /v1/health reflects the degradation: 503 + mode read_only.
	resp, out = do(t, ts, "GET", "/v1/health", "key1", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1/health while degraded: status %d", resp.StatusCode)
	}
	var health struct {
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(out, &health); err != nil || health.Mode != "read_only" {
		t.Fatalf("/v1/health mode = %q (err %v), want read_only; body %s", health.Mode, err, out)
	}

	// Space returns; the probe must flip the tenant writable on its own.
	db.ClearWALFaults()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out = do(t, ts, "POST", "/v1/exec", "key1",
			map[string]any{"sql": "INSERT INTO ev VALUES (3, 'after')"})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("INSERT during recovery: status %d body %s", resp.StatusCode, out)
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never recovered writability; last body %s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Rows 1 and 3 exist (2 was rejected, never acked); health is green again.
	q := exec(t, ts, "key1", "SELECT COUNT(*) FROM ev", nil)
	if len(q.Rows) != 1 || q.Rows[0][0] != float64(2) {
		t.Fatalf("post-recovery count: %+v", q.Rows)
	}
	resp, out = do(t, ts, "GET", "/v1/health", "key1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/health after recovery: status %d body %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &health); err != nil || health.Mode != "healthy" {
		t.Fatalf("/v1/health mode after recovery = %q, want healthy", health.Mode)
	}
}

// A poisoned WAL (failed fsync) is permanent: writes fail with the
// "degraded" code and stay failed even after faults are cleared.
func TestTenantFsyncPoisonFailsStop(t *testing.T) {
	srv, ts := testServer(t, func(cfg *Config) {
		cfg.DB.ProbeInterval = 10 * time.Millisecond
	})
	exec(t, ts, "key2", "CREATE TABLE p (id BIGINT)", nil)

	h, err := srv.tenants.Get(context.Background(), "t2")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	h.DB().InjectWALFaults(apollo.WALFaults{FailSyncAt: 1})

	resp, out := do(t, ts, "POST", "/v1/exec", "key2",
		map[string]any{"sql": "INSERT INTO p VALUES (1)"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("INSERT through failed fsync: status %d body %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), `"degraded"`) {
		t.Fatalf("error body lacks degraded code: %s", out)
	}

	// Clearing injection does NOT un-poison; only restart would.
	h.DB().ClearWALFaults()
	time.Sleep(50 * time.Millisecond)
	resp, out = do(t, ts, "POST", "/v1/exec", "key2",
		map[string]any{"sql": "INSERT INTO p VALUES (2)"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("INSERT after clearing faults: status %d body %s — poison must be permanent", resp.StatusCode, out)
	}

	// Reads still work: the fail-stop protects acked data, not availability
	// of what is already durable.
	resp, _ = do(t, ts, "POST", "/v1/query", "key2",
		map[string]any{"sql": "SELECT COUNT(*) FROM p"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SELECT on poisoned tenant: status %d", resp.StatusCode)
	}
}
