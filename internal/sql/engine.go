package sql

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"apollo/internal/catalog"
	"apollo/internal/degrade"
	"apollo/internal/expr"
	"apollo/internal/plan"
	"apollo/internal/sqltypes"
	"apollo/internal/stats"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/txn"
)

// Engine executes SQL statements against a catalog. Query planning options
// (mode, parallelism, memory grant) come from PlanOpts; DDL options for new
// tables start from TableOpts and are overridden by WITH clauses.
type Engine struct {
	Cat       *catalog.Catalog
	PlanOpts  plan.Options
	TableOpts table.Options
	// OnCreate, when set, runs for every table created via SQL (the public
	// API uses it to start background tuple movers).
	OnCreate func(*table.Table)
	// Txns, when set, enables transactions: sessions can BEGIN/COMMIT/
	// ROLLBACK, and autocommit SELECTs pin a consistent cross-table snapshot.
	Txns *txn.Manager
	// State, when set, gates writes behind the DB's durability health: DML,
	// DDL, and COPY fail fast with a typed error while the DB is read-only
	// (disk full) or poisoned (failed fsync), and every write error is fed
	// back so storage failures flip the state. Reads are never gated.
	State *degrade.State

	statsOnce  sync.Once
	statsCache *plan.StatsCache
	closed     atomic.Bool
}

// SetClosed marks the engine closed: every subsequent statement fails fast
// with txn.ErrClosed. DB.Close sets this before tearing down the transaction
// manager so statements racing Close get a typed error, not a panic.
func (e *Engine) SetClosed() { e.closed.Store(true) }

// Closed reports whether SetClosed has been called.
func (e *Engine) Closed() bool { return e.closed.Load() }

// Result is the outcome of one statement.
type Result struct {
	Schema   *sqltypes.Schema // non-nil for SELECT/EXPLAIN
	Rows     []sqltypes.Row   // SELECT results
	Affected int              // DML row count
	Message  string           // DDL/EXPLAIN text
	Compiled *plan.Compiled   // SELECT: the compiled query (stats, explain)
}

// Exec parses and executes one statement under a background context.
func (e *Engine) Exec(src string) (*Result, error) {
	return e.ExecContext(context.Background(), src)
}

// ExecContext parses and executes one statement under ctx: SELECTs honor
// cancellation and deadlines at batch granularity through the whole operator
// tree; every statement checks the context before starting work.
func (e *Engine) ExecContext(ctx context.Context, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.ExecStmtContext(ctx, st)
}

// ExecStmt executes a parsed statement under a background context.
func (e *Engine) ExecStmt(st Statement) (*Result, error) {
	return e.ExecStmtContext(context.Background(), st)
}

// ExecStmtContext executes a parsed statement under ctx (autocommit; use a
// Session for multi-statement transactions).
func (e *Engine) ExecStmtContext(ctx context.Context, st Statement) (*Result, error) {
	return e.execStmt(ctx, st, nil)
}

// execStmt executes one statement, inside transaction tx when non-nil.
func (e *Engine) execStmt(ctx context.Context, st Statement, tx *txn.Txn) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.closed.Load() {
		return nil, txn.ErrClosed
	}
	switch st.(type) {
	case *Insert, *Delete, *Update, *Copy, *CreateTable, *DropTable, *Reorganize, *Rebuild:
		if e.State != nil {
			if err := e.State.CheckWrite(); err != nil {
				return nil, err
			}
		}
	}
	if tx != nil {
		switch st.(type) {
		case *CreateTable, *DropTable, *Reorganize, *Rebuild:
			return nil, fmt.Errorf("sql: DDL and index maintenance are not allowed inside a transaction")
		case *Copy:
			// Bulk loads publish compressed row groups, which carry no
			// per-row version state to roll back.
			return nil, fmt.Errorf("sql: COPY is not allowed inside a transaction")
		}
	}
	switch x := st.(type) {
	case *Begin, *Commit, *Rollback:
		return nil, fmt.Errorf("sql: transaction control requires a session (Engine.NewSession)")
	case *Select:
		return e.runSelect(ctx, x, tx)
	case *Explain:
		if x.Analyze {
			return e.explainAnalyze(ctx, x.Query, tx)
		}
		return e.explain(x.Query, tx)
	case *CreateTable:
		return e.observed(e.createTable(x))
	case *DropTable:
		if err := e.Cat.Drop(x.Name); err != nil {
			return e.observed(nil, err)
		}
		return &Result{Message: fmt.Sprintf("dropped table %s", x.Name)}, nil
	case *Copy:
		return e.observed(e.copyFrom(ctx, x))
	case *Insert:
		return e.observed(e.insert(x, tx, nil))
	case *Delete:
		return e.observed(e.delete(x, tx, nil))
	case *Update:
		return e.observed(e.update(x, tx, nil))
	case *Reorganize:
		t, err := e.Cat.Get(x.Table)
		if err != nil {
			return nil, err
		}
		if err := t.FlushOpen(); err != nil {
			return e.observed(nil, err)
		}
		if _, err := t.MergeSmallGroups(); err != nil {
			return e.observed(nil, err)
		}
		return &Result{Message: fmt.Sprintf("reorganized %s", x.Table)}, nil
	case *Rebuild:
		t, err := e.Cat.Get(x.Table)
		if err != nil {
			return nil, err
		}
		if err := t.Rebuild(); err != nil {
			return e.observed(nil, err)
		}
		return &Result{Message: fmt.Sprintf("rebuilt %s", x.Table)}, nil
	case *ShowStats:
		return e.showStats(x)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// observed feeds a write statement's error to the degrade state (ENOSPC
// flips the DB read-only, a poisoned WAL fail-stops it) before passing the
// result through unchanged.
func (e *Engine) observed(res *Result, err error) (*Result, error) {
	if err != nil && e.State != nil {
		e.State.Observe(err)
		err = e.State.Surface(err)
	}
	return res, err
}

// showStats renders the optimizer's statistics snapshot for one table, one
// row per column, refreshing the cached snapshot first if it has gone stale.
func (e *Engine) showStats(x *ShowStats) (*Result, error) {
	ts, t, err := e.TableStats(x.Table)
	if err != nil {
		return nil, err
	}
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "column", Typ: sqltypes.String},
		sqltypes.Column{Name: "type", Typ: sqltypes.String},
		sqltypes.Column{Name: "min", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "max", Typ: sqltypes.String, Nullable: true},
		sqltypes.Column{Name: "nulls", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "ndv", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "hist_buckets", Typ: sqltypes.Int64},
	)
	bound := func(v sqltypes.Value) sqltypes.Value {
		if v.Null {
			return sqltypes.NewNull(sqltypes.String)
		}
		return sqltypes.NewString(v.String())
	}
	rows := make([]sqltypes.Row, 0, len(ts.Cols))
	for i, cs := range ts.Cols {
		buckets := 0
		if cs.Hist != nil {
			buckets = len(cs.Hist.Bounds)
		}
		rows = append(rows, sqltypes.Row{
			sqltypes.NewString(t.Schema.Cols[i].Name),
			sqltypes.NewString(t.Schema.Cols[i].Typ.String()),
			bound(cs.Min),
			bound(cs.Max),
			sqltypes.NewInt(int64(cs.NullCount)),
			sqltypes.NewInt(int64(cs.DistinctEst)),
			sqltypes.NewInt(int64(buckets)),
		})
	}
	return &Result{
		Schema: schema,
		Rows:   rows,
		Message: fmt.Sprintf("statistics for %s: rows=%d sampled=%d version=%d",
			x.Table, ts.Rows, ts.SampledRows, ts.Version),
	}, nil
}

// TableStats returns the optimizer's statistics snapshot for the named
// table, collecting or refreshing it through the engine's stats cache.
func (e *Engine) TableStats(name string) (*stats.TableStats, *table.Table, error) {
	t, err := e.Cat.Get(name)
	if err != nil {
		return nil, nil, err
	}
	e.statsOnce.Do(func() { e.statsCache = plan.NewStatsCache() })
	return e.statsCache.Stats(t), t, nil
}

func (e *Engine) compile(s *Select, view table.ReadView) (*plan.Compiled, error) {
	b := &Binder{Tables: e.Cat}
	node, err := b.BindSelect(s)
	if err != nil {
		return nil, err
	}
	e.statsOnce.Do(func() { e.statsCache = plan.NewStatsCache() })
	opts := e.PlanOpts
	if opts.StatsCache == nil {
		opts.StatsCache = e.statsCache
	}
	opts.View = view
	return plan.Compile(node, opts)
}

// queryView resolves the read view a SELECT runs under. Inside a transaction
// it is the transaction's snapshot (own writes visible); in autocommit with a
// transaction manager present, the current stable timestamp is pinned for the
// duration so all scans share one cross-table snapshot and the settling
// horizon cannot pass it mid-query. The release func is a no-op when nothing
// was pinned.
func (e *Engine) queryView(tx *txn.Txn) (table.ReadView, func()) {
	if tx != nil {
		return tx.View(), func() {}
	}
	if e.Txns != nil {
		asOf, release := e.Txns.PinRead()
		return table.ReadView{AsOf: asOf}, release
	}
	return table.ReadView{}, func() {}
}

func (e *Engine) runSelect(ctx context.Context, s *Select, tx *txn.Txn) (*Result, error) {
	view, release := e.queryView(tx)
	defer release()
	c, err := e.compile(s, view)
	if err != nil {
		return nil, err
	}
	rows, err := c.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: c.Schema, Rows: rows, Compiled: c}, nil
}

// RowSink receives one streamed result set: Schema once, then Row per result
// row in order. Row arguments may alias executor storage and are valid only
// for the duration of the call; implementations must copy what they keep. An
// error from either method aborts the query.
type RowSink interface {
	Schema(*sqltypes.Schema) error
	Row(sqltypes.Row) error
}

// streamSelect is runSelect with a row sink instead of a materialized result:
// the serving path's chunked result encoding. The returned Result carries the
// schema and compiled stats but no rows.
func (e *Engine) streamSelect(ctx context.Context, s *Select, tx *txn.Txn, sink RowSink) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.closed.Load() {
		return nil, txn.ErrClosed
	}
	view, release := e.queryView(tx)
	defer release()
	c, err := e.compile(s, view)
	if err != nil {
		return nil, err
	}
	if err := sink.Schema(c.Schema); err != nil {
		return nil, err
	}
	if err := c.StreamContext(ctx, sink.Row); err != nil {
		return nil, err
	}
	return &Result{Schema: c.Schema, Compiled: c}, nil
}

func (e *Engine) explain(s *Select, tx *txn.Txn) (*Result, error) {
	view, release := e.queryView(tx)
	defer release()
	c, err := e.compile(s, view)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: c.Schema, Message: c.Explain(), Compiled: c}, nil
}

// explainAnalyze executes the query (discarding its rows) and renders the
// operator tree annotated with the per-operator counters that run produced.
func (e *Engine) explainAnalyze(ctx context.Context, s *Select, tx *txn.Txn) (*Result, error) {
	view, release := e.queryView(tx)
	defer release()
	c, err := e.compile(s, view)
	if err != nil {
		return nil, err
	}
	if _, err := c.RunContext(ctx); err != nil {
		return nil, err
	}
	return &Result{Schema: c.Schema, Message: c.ExplainAnalyze(), Compiled: c}, nil
}

func (e *Engine) createTable(ct *CreateTable) (*Result, error) {
	opts := e.TableOpts
	if opts.Columnstore.PrimaryDictCap == 0 {
		opts = table.DefaultOptions()
	}
	if ct.RowGroupSize > 0 {
		opts.RowGroupSize = ct.RowGroupSize
	}
	if ct.BulkThreshold > 0 {
		opts.BulkLoadThreshold = ct.BulkThreshold
	}
	if ct.Archive {
		opts.Columnstore.Tier = storage.Archival
	}
	if ct.NoReorder {
		opts.Columnstore.Reorder = false
	}
	t, err := e.Cat.Create(ct.Name, sqltypes.NewSchema(ct.Cols...), opts)
	if err != nil {
		return nil, err
	}
	if e.OnCreate != nil {
		e.OnCreate(t)
	}
	return &Result{Message: fmt.Sprintf("created table %s", ct.Name)}, nil
}

// evalLiteralRow evaluates an INSERT row of literal (or parameter)
// expressions. Placeholders take their target column's type.
func (e *Engine) evalLiteralRow(t *table.Table, exprs []Expr, bag *ParamBag) (sqltypes.Row, error) {
	if len(exprs) != t.Schema.Len() {
		return nil, fmt.Errorf("sql: INSERT has %d values, table %s has %d columns", len(exprs), t.Name, t.Schema.Len())
	}
	b := &Binder{Tables: e.Cat, Params: bag}
	empty := &scope{}
	row := make(sqltypes.Row, len(exprs))
	for i, ast := range exprs {
		bound, err := b.bindExpr(ast, empty)
		if err != nil {
			return nil, err
		}
		if prm, ok := bound.(*expr.Param); ok {
			prm.SetType(t.Schema.Cols[i].Typ)
		}
		v := bound.Eval(nil)
		row[i] = coerceLit(v, t.Schema.Cols[i].Typ)
	}
	return row, nil
}

// dmlErr passes a DML error through, counting write-write conflicts so the
// retry rate shows up in the engine metrics.
func (e *Engine) dmlErr(err error) error {
	if err != nil && e.Txns != nil && errors.Is(err, table.ErrWriteConflict) {
		e.Txns.ConflictSeen()
	}
	return err
}

func (e *Engine) insert(ins *Insert, tx *txn.Txn, bag *ParamBag) (*Result, error) {
	t, err := e.Cat.Get(ins.Table)
	if err != nil {
		return nil, err
	}
	rows := make([]sqltypes.Row, len(ins.Rows))
	for i, rx := range ins.Rows {
		row, err := e.evalLiteralRow(t, rx, bag)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	if tx != nil {
		// Transactional inserts always trickle through the delta store: the
		// bulk path publishes compressed row groups directly, which have no
		// per-row version state to roll back.
		if err := tx.Touch(t); err != nil {
			return nil, err
		}
		for _, row := range rows {
			if _, err := t.InsertTxn(tx.Ref(), row); err != nil {
				return nil, e.dmlErr(err)
			}
		}
		return &Result{Affected: len(rows)}, nil
	}
	// Large literal batches take the bulk path, small ones trickle (§4.2).
	if len(rows) >= t.Opts.BulkLoadThreshold {
		if err := t.BulkLoad(rows); err != nil {
			return nil, err
		}
	} else if err := t.InsertMany(rows); err != nil {
		return nil, err
	}
	return &Result{Affected: len(rows)}, nil
}

// bindRowPred binds a WHERE clause against a table's schema and returns a
// row predicate for the DML path.
func (e *Engine) bindRowPred(t *table.Table, where Expr, bag *ParamBag) (func(sqltypes.Row) bool, error) {
	if where == nil {
		return func(sqltypes.Row) bool { return true }, nil
	}
	b := &Binder{Tables: e.Cat, Params: bag}
	bound, err := b.bindExpr(where, tableScope(t.Name, t))
	if err != nil {
		return nil, err
	}
	return func(r sqltypes.Row) bool {
		v := bound.Eval(r)
		return !v.Null && v.I != 0
	}, nil
}

func (e *Engine) delete(d *Delete, tx *txn.Txn, bag *ParamBag) (*Result, error) {
	t, err := e.Cat.Get(d.Table)
	if err != nil {
		return nil, err
	}
	pred, err := e.bindRowPred(t, d.Where, bag)
	if err != nil {
		return nil, err
	}
	var n int
	if tx != nil {
		if err := tx.Touch(t); err != nil {
			return nil, err
		}
		n, err = t.DeleteWhereTxn(tx.Ref(), pred)
	} else {
		n, err = t.DeleteWhere(pred)
	}
	if err != nil {
		return nil, e.dmlErr(err)
	}
	return &Result{Affected: n}, nil
}

func (e *Engine) update(u *Update, tx *txn.Txn, bag *ParamBag) (*Result, error) {
	t, err := e.Cat.Get(u.Table)
	if err != nil {
		return nil, err
	}
	pred, err := e.bindRowPred(t, u.Where, bag)
	if err != nil {
		return nil, err
	}
	cols, bound, err := e.bindSetClauses(t, u, bag)
	if err != nil {
		return nil, err
	}
	set := func(r sqltypes.Row) sqltypes.Row {
		vals := make([]sqltypes.Value, len(cols))
		for i := range cols {
			vals[i] = bound[i](r)
		}
		for i, c := range cols {
			r[c] = vals[i]
		}
		return r
	}
	var n int
	if tx != nil {
		if err := tx.Touch(t); err != nil {
			return nil, err
		}
		n, err = t.UpdateWhereTxn(tx.Ref(), pred, set)
	} else {
		n, err = t.UpdateWhere(pred, set)
	}
	if err != nil {
		return nil, e.dmlErr(err)
	}
	return &Result{Affected: n}, nil
}
