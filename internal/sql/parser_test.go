package sql

import (
	"strings"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/sqltypes"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("parse %q: got %T", src, st)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a_1, 'it''s', 3.5 -- comment\n<> != <= >= ;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a_1", ",", "it's", ",", "3.5", "<>", "<>", "<=", ">=", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("SELECT @x"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseSelectShape(t *testing.T) {
	s := parseSelect(t, `SELECT DISTINCT a, SUM(b) AS total, COUNT(*)
		FROM t1 x JOIN t2 ON x.k = t2.k LEFT OUTER JOIN t3 ON t2.j = t3.j
		WHERE a > 1 AND b IN (1, 2) GROUP BY a HAVING COUNT(*) > 2
		ORDER BY total DESC, 1 LIMIT 10 OFFSET 5;`)
	if !s.Distinct || len(s.Items) != 3 {
		t.Fatalf("items = %d distinct = %v", len(s.Items), s.Distinct)
	}
	if s.Items[1].Alias != "total" {
		t.Fatalf("alias = %q", s.Items[1].Alias)
	}
	if len(s.From) != 3 || s.From[0].Alias != "x" || s.From[2].JoinKind != exec.LeftOuter {
		t.Fatalf("from = %+v", s.From)
	}
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Fatal("group/having missing")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order = %+v", s.OrderBy)
	}
	if s.Limit != 10 || s.Offset != 5 {
		t.Fatalf("limit/offset = %d/%d", s.Limit, s.Offset)
	}
}

func TestParseUnionChain(t *testing.T) {
	s := parseSelect(t, "SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v ORDER BY 1 LIMIT 3")
	if len(s.UnionAll) != 2 {
		t.Fatalf("union branches = %d", len(s.UnionAll))
	}
	if len(s.OrderBy) != 1 || s.Limit != 3 {
		t.Fatal("trailing order/limit lost")
	}
	if _, err := Parse("SELECT a FROM t UNION SELECT a FROM u"); err == nil {
		t.Fatal("bare UNION accepted")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := parseSelect(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*Bin)
	if !ok || or.Op != "OR" {
		t.Fatalf("root = %#v", s.Where)
	}
	and, ok := or.R.(*Bin)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %#v", or.R)
	}
	// Arithmetic: 1 + 2 * 3 parses as 1 + (2*3).
	s2 := parseSelect(t, "SELECT 1 + 2 * 3 FROM t")
	add := s2.Items[0].Expr.(*Bin)
	if add.Op != "+" {
		t.Fatalf("root op = %s", add.Op)
	}
	if mul, ok := add.R.(*Bin); !ok || mul.Op != "*" {
		t.Fatalf("right = %#v", add.R)
	}
}

func TestParseSpecialPredicates(t *testing.T) {
	s := parseSelect(t, `SELECT a FROM t WHERE a IS NOT NULL AND b NOT LIKE 'x%'
		AND c NOT BETWEEN 1 AND 5 AND d NOT IN (1, 2)`)
	conj := flattenAnd(s.Where)
	if len(conj) != 4 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if n, ok := conj[0].(*IsNullX); !ok || !n.Negate {
		t.Fatalf("IS NOT NULL = %#v", conj[0])
	}
	if l, ok := conj[1].(*LikeX); !ok || !l.Negate {
		t.Fatalf("NOT LIKE = %#v", conj[1])
	}
	if b, ok := conj[2].(*BetweenX); !ok || !b.Negate {
		t.Fatalf("NOT BETWEEN = %#v", conj[2])
	}
	if in, ok := conj[3].(*InX); !ok || !in.Negate {
		t.Fatalf("NOT IN = %#v", conj[3])
	}
}

func flattenAnd(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

func TestParseNegativeNumbersAndDates(t *testing.T) {
	s := parseSelect(t, "SELECT -5, -2.5, DATE '2013-06-22' FROM t")
	if lit := s.Items[0].Expr.(*Lit); lit.Val.I != -5 {
		t.Fatalf("int = %v", lit.Val)
	}
	if lit := s.Items[1].Expr.(*Lit); lit.Val.F != -2.5 {
		t.Fatalf("float = %v", lit.Val)
	}
	d := s.Items[2].Expr.(*Lit)
	if d.Val.Typ != sqltypes.Date || sqltypes.DateToString(d.Val.I) != "2013-06-22" {
		t.Fatalf("date = %v", d.Val)
	}
	if _, err := Parse("SELECT DATE 'bogus' FROM t"); err == nil {
		t.Fatal("bad date literal accepted")
	}
}

func TestParseDDLAndDML(t *testing.T) {
	st, err := Parse("CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR NULL, c DATE) WITH (rowgroup_size = 64, archive)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if len(ct.Cols) != 3 || ct.Cols[0].Nullable || !ct.Cols[1].Nullable {
		t.Fatalf("cols = %+v", ct.Cols)
	}
	if ct.RowGroupSize != 64 || !ct.Archive {
		t.Fatalf("options = %+v", ct)
	}

	st, err = Parse("INSERT INTO t VALUES (1, 'a', DATE '2000-01-01'), (2, NULL, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	if ins := st.(*Insert); len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}

	st, _ = Parse("UPDATE t SET a = a + 1, b = 'x' WHERE a < 5")
	if up := st.(*Update); len(up.Cols) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", st)
	}

	st, _ = Parse("DELETE FROM t")
	if d := st.(*Delete); d.Where != nil {
		t.Fatal("phantom where")
	}

	if st, _ := Parse("REORGANIZE t"); st.(*Reorganize).Table != "t" {
		t.Fatal("reorganize")
	}
	if st, _ := Parse("REBUILD t"); st.(*Rebuild).Table != "t" {
		t.Fatal("rebuild")
	}
	if st, _ := Parse("DROP TABLE t"); st.(*DropTable).Name != "t" {
		t.Fatal("drop")
	}
	if st, _ := Parse("EXPLAIN SELECT a FROM t"); st.(*Explain).Query == nil {
		t.Fatal("explain")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t (1)",
		"SELECT a FROM t JOIN u",           // missing ON
		"SELECT a FROM t LIMIT x",          // non-numeric limit
		"SELECT COUNT(DISTINCT) FROM t",    // missing arg
		"SELECT a FROM t; SELECT b FROM t", // trailing statement
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseCaseInsensitiveKeywordsLowercaseIdents(t *testing.T) {
	s := parseSelect(t, "select A, B from T where A like 'x%'")
	if c := s.Items[0].Expr.(*Col); c.Name != "a" {
		t.Fatalf("ident not lower-cased: %q", c.Name)
	}
	if s.From[0].Table != "t" {
		t.Fatalf("table = %q", s.From[0].Table)
	}
	if strings.ToUpper(s.From[0].Table) != "T" {
		t.Fatal("sanity")
	}
}
