package sql

import (
	"fmt"
	"strings"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/plan"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// Resolver supplies tables to the binder (satisfied by catalog.Catalog).
type Resolver interface {
	Get(name string) (*table.Table, error)
}

// Binder turns parsed statements into logical plans and bound DML actions.
type Binder struct {
	Tables Resolver
	// Params supplies the shared value cells for `?` placeholders. Nil means
	// placeholders are an error (non-prepared statements).
	Params *ParamBag
}

// ParamBag owns the placeholder value cells of one prepared statement. The
// binder hands out cell i for placeholder ?i, so every occurrence in the
// bound tree (and every compiled copy of it) shares one cell; BindArgs
// updates them in place before each execution.
type ParamBag struct {
	cells []*expr.Param
}

// NewParamBag creates the cells for a statement with n placeholders.
func NewParamBag(n int) *ParamBag {
	pb := &ParamBag{cells: make([]*expr.Param, n)}
	for i := range pb.cells {
		pb.cells[i] = expr.NewParam(i + 1)
	}
	return pb
}

// Len returns the placeholder count.
func (pb *ParamBag) Len() int { return len(pb.cells) }

// cell returns the shared cell for 1-based placeholder idx.
func (pb *ParamBag) cell(idx int) (*expr.Param, error) {
	if idx < 1 || idx > len(pb.cells) {
		return nil, fmt.Errorf("sql: parameter $%d out of range (statement has %d)", idx, len(pb.cells))
	}
	return pb.cells[idx-1], nil
}

// BindArgs writes the execution's arguments into the cells, coercing each to
// the type the binder inferred from the placeholder's context (string
// arguments compared against DATE columns parse as dates, ints widen to
// float, exactly like literals).
func (pb *ParamBag) BindArgs(args []sqltypes.Value) error {
	if len(args) != len(pb.cells) {
		return fmt.Errorf("sql: statement wants %d argument(s), got %d", len(pb.cells), len(args))
	}
	for i, v := range args {
		if t := pb.cells[i].Type(); t != sqltypes.Unknown {
			v = coerceLit(v, t)
		}
		pb.cells[i].Bind(v)
	}
	return nil
}

// inferParamType fixes an untyped placeholder's type from the context it is
// used in (the opposite comparison operand, the target column, the BETWEEN
// subject). First inference wins; later conflicting uses fail the usual type
// checks instead of silently re-typing the cell.
func inferParamType(e expr.Expr, from sqltypes.Type) {
	if p, ok := e.(*expr.Param); ok && p.Type() == sqltypes.Unknown && from != sqltypes.Unknown {
		p.SetType(from)
	}
}

// scopeCol is one visible column during binding.
type scopeCol struct {
	Qual string // table alias ("" for derived columns)
	Name string
	Typ  sqltypes.Type
}

type scope struct {
	cols []scopeCol
}

func (s *scope) resolve(qual, name string) (int, sqltypes.Type, error) {
	found := -1
	for i, c := range s.cols {
		if c.Name != name {
			continue
		}
		if qual != "" && c.Qual != qual {
			continue
		}
		if found >= 0 {
			return 0, 0, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, 0, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, 0, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, s.cols[found].Typ, nil
}

func tableScope(alias string, t *table.Table) *scope {
	sc := &scope{}
	for _, c := range t.Schema.Cols {
		sc.cols = append(sc.cols, scopeCol{Qual: alias, Name: c.Name, Typ: c.Typ})
	}
	return sc
}

func concatScopes(a, b *scope) *scope {
	return &scope{cols: append(append([]scopeCol(nil), a.cols...), b.cols...)}
}

// BindSelect builds a logical plan for a SELECT statement.
func (b *Binder) BindSelect(s *Select) (plan.Node, error) {
	if len(s.UnionAll) > 0 {
		return b.bindUnion(s)
	}
	cr, err := b.bindCoreDetail(s)
	if err != nil {
		return nil, err
	}
	proj := &plan.Project{In: cr.node, Exprs: cr.items, Names: cr.names}
	var node plan.Node = proj
	if s.Distinct {
		node = distinctOver(proj)
	}

	if len(s.OrderBy) > 0 {
		outSchema := node.Schema()
		keys := make([]exec.SortKey, len(s.OrderBy))
		hidden := 0
		for i, oi := range s.OrderBy {
			// Ordinal?
			if lit, ok := oi.Expr.(*Lit); ok && lit.Val.Typ == sqltypes.Int64 {
				if lit.Val.I < 1 || int(lit.Val.I) > outSchema.Len() {
					return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", lit.Val.I)
				}
				c := outSchema.Cols[lit.Val.I-1]
				keys[i] = exec.SortKey{E: expr.NewColRef(int(lit.Val.I-1), c.Name, c.Typ), Desc: oi.Desc}
				continue
			}
			// Output alias or column name?
			if c, ok := oi.Expr.(*Col); ok && c.Qual == "" {
				if idx := outSchema.ColIndex(c.Name); idx >= 0 {
					keys[i] = exec.SortKey{E: expr.NewColRef(idx, c.Name, outSchema.Cols[idx].Typ), Desc: oi.Desc}
					continue
				}
			}
			// General expression: sort on a hidden projected column (not
			// compatible with DISTINCT, which fixes the output column set).
			if s.Distinct {
				return nil, fmt.Errorf("sql: ORDER BY with DISTINCT must name output columns")
			}
			e, err := cr.bindOrder(oi.Expr)
			if err != nil {
				return nil, err
			}
			pos := len(proj.Exprs)
			proj.Exprs = append(proj.Exprs, e)
			proj.Names = append(proj.Names, fmt.Sprintf("_sort%d", i))
			hidden++
			keys[i] = exec.SortKey{E: expr.NewColRef(pos, proj.Names[pos], e.Type()), Desc: oi.Desc}
		}
		node = &plan.Sort{In: node, Keys: keys}
		if s.Limit >= 0 || s.Offset > 0 {
			node = &plan.Limit{In: node, Offset: s.Offset, N: s.Limit}
		}
		if hidden > 0 {
			exprs := make([]expr.Expr, outSchema.Len())
			names := make([]string, outSchema.Len())
			for i, c := range outSchema.Cols {
				exprs[i] = expr.NewColRef(i, c.Name, c.Typ)
				names[i] = c.Name
			}
			node = &plan.Project{In: node, Exprs: exprs, Names: names}
		}
		return node, nil
	}
	if s.Limit >= 0 || s.Offset > 0 {
		node = &plan.Limit{In: node, Offset: s.Offset, N: s.Limit}
	}
	return node, nil
}

// bindUnion binds a UNION ALL chain, then the trailing ORDER BY/LIMIT against
// the union's output schema.
func (b *Binder) bindUnion(s *Select) (plan.Node, error) {
	first, err := b.bindCore(s)
	if err != nil {
		return nil, err
	}
	ins := []plan.Node{first}
	want := first.Schema()
	for _, nx := range s.UnionAll {
		n, err := b.bindCore(nx)
		if err != nil {
			return nil, err
		}
		got := n.Schema()
		if got.Len() != want.Len() {
			return nil, fmt.Errorf("sql: UNION ALL branches have %d vs %d columns", want.Len(), got.Len())
		}
		for i := range got.Cols {
			if got.Cols[i].Typ != want.Cols[i].Typ {
				return nil, fmt.Errorf("sql: UNION ALL column %d type mismatch (%v vs %v)", i+1, want.Cols[i].Typ, got.Cols[i].Typ)
			}
		}
		ins = append(ins, n)
	}
	var node plan.Node = &plan.Union{Ins: ins}

	// ORDER BY over a union binds by output name or ordinal only.
	if len(s.OrderBy) > 0 {
		keys, err := outputSortKeys(s.OrderBy, want)
		if err != nil {
			return nil, err
		}
		node = &plan.Sort{In: node, Keys: keys}
	}
	if s.Limit >= 0 || s.Offset > 0 {
		node = &plan.Limit{In: node, Offset: s.Offset, N: s.Limit}
	}
	return node, nil
}

func outputSortKeys(items []OrderItem, schema *sqltypes.Schema) ([]exec.SortKey, error) {
	keys := make([]exec.SortKey, len(items))
	for i, oi := range items {
		switch x := oi.Expr.(type) {
		case *Lit:
			if x.Val.Typ != sqltypes.Int64 || x.Val.I < 1 || int(x.Val.I) > schema.Len() {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %v out of range", x.Val)
			}
			c := schema.Cols[x.Val.I-1]
			keys[i] = exec.SortKey{E: expr.NewColRef(int(x.Val.I-1), c.Name, c.Typ), Desc: oi.Desc}
		case *Col:
			idx := schema.ColIndex(x.Name)
			if idx < 0 {
				return nil, fmt.Errorf("sql: ORDER BY column %q not in output", x.Name)
			}
			keys[i] = exec.SortKey{E: expr.NewColRef(idx, x.Name, schema.Cols[idx].Typ), Desc: oi.Desc}
		default:
			return nil, fmt.Errorf("sql: ORDER BY over UNION supports output names and ordinals only")
		}
	}
	return keys, nil
}

// coreResult carries the bound core plus what applyOrderLimit needs.
type coreResult struct {
	node      plan.Node
	items     []expr.Expr // final output expressions over node's schema
	names     []string
	bindOrder func(ast Expr) (expr.Expr, error) // binds an ORDER BY expr over node's schema
}

func (b *Binder) bindCore(s *Select) (plan.Node, error) {
	cr, err := b.bindCoreDetail(s)
	if err != nil {
		return nil, err
	}
	node := &plan.Project{In: cr.node, Exprs: cr.items, Names: cr.names}
	if s.Distinct {
		return distinctOver(node), nil
	}
	return node, nil
}

func distinctOver(p *plan.Project) plan.Node {
	sch := p.Schema()
	groupBy := make([]expr.Expr, sch.Len())
	names := make([]string, sch.Len())
	for i, c := range sch.Cols {
		groupBy[i] = expr.NewColRef(i, c.Name, c.Typ)
		names[i] = c.Name
	}
	return &plan.Agg{In: p, GroupBy: groupBy, Names: names}
}

// bindCoreDetail binds FROM/WHERE/GROUP BY/HAVING and the select items.
func (b *Binder) bindCoreDetail(s *Select) (*coreResult, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires a FROM clause")
	}

	// FROM: left-deep join tree.
	var node plan.Node
	var sc *scope
	for i, fi := range s.From {
		t, err := b.Tables.Get(fi.Table)
		if err != nil {
			return nil, err
		}
		right := &plan.Scan{Table: t}
		rightScope := tableScope(fi.Alias, t)
		if i == 0 {
			node, sc = right, rightScope
			continue
		}
		joined := concatScopes(sc, rightScope)
		var on expr.Expr
		if fi.On != nil {
			on, err = b.bindExpr(fi.On, joined)
			if err != nil {
				return nil, err
			}
		}
		node = &plan.Join{Left: node, Right: right, Type: fi.JoinKind, Residual: on}
		switch fi.JoinKind {
		case exec.LeftSemi, exec.LeftAnti:
			// Output keeps only the left columns.
		default:
			sc = joined
		}
	}

	if s.Where != nil {
		w, err := b.bindExpr(s.Where, sc)
		if err != nil {
			return nil, err
		}
		node = &plan.Filter{In: node, Pred: w}
	}

	// Expand stars.
	var items []SelectItem
	for _, it := range s.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, c := range sc.cols {
			items = append(items, SelectItem{Expr: &Col{Qual: c.Qual, Name: c.Name}, Alias: c.Name})
		}
	}

	hasAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range items {
		if containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	for _, oi := range s.OrderBy {
		if containsAgg(oi.Expr) {
			hasAgg = true
		}
	}

	if !hasAgg {
		exprs := make([]expr.Expr, len(items))
		names := make([]string, len(items))
		for i, it := range items {
			e, err := b.bindExpr(it.Expr, sc)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			names[i] = itemName(it, i)
		}
		bindOrder := func(ast Expr) (expr.Expr, error) { return b.bindExpr(ast, sc) }
		return &coreResult{node: node, items: exprs, names: names, bindOrder: bindOrder}, nil
	}

	// --- Aggregate query ---

	// Bind group-by expressions against the FROM scope.
	groupExprs := make([]expr.Expr, len(s.GroupBy))
	groupNames := make([]string, len(s.GroupBy))
	for i, g := range s.GroupBy {
		e, err := b.bindExpr(g, sc)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = e
		if c, ok := g.(*Col); ok {
			groupNames[i] = c.Name
		} else {
			groupNames[i] = fmt.Sprintf("group%d", i+1)
		}
	}

	// Collect aggregate calls from items, HAVING, and ORDER BY.
	var aggs []exec.AggSpec
	aggKey := map[string]int{} // canonical key -> index in aggs
	collect := func(ast Expr) error {
		var err error
		walkCalls(ast, func(c *Call) {
			if err != nil || !aggFuncs[c.Name] {
				return
			}
			var arg expr.Expr
			if !c.Star {
				arg, err = b.bindExpr(c.Arg, sc)
				if err != nil {
					return
				}
			}
			key := aggCallKey(c, arg)
			if _, ok := aggKey[key]; ok {
				return
			}
			spec := exec.AggSpec{Distinct: c.Distinct, Name: fmt.Sprintf("agg%d", len(aggs)+1)}
			switch c.Name {
			case "COUNT":
				if c.Star {
					spec.Kind = exec.CountStar
				} else {
					spec.Kind = exec.Count
					spec.Arg = arg
				}
			case "SUM":
				spec.Kind, spec.Arg = exec.Sum, arg
			case "AVG":
				spec.Kind, spec.Arg = exec.Avg, arg
			case "MIN":
				spec.Kind, spec.Arg = exec.Min, arg
			case "MAX":
				spec.Kind, spec.Arg = exec.Max, arg
			}
			aggKey[key] = len(aggs)
			aggs = append(aggs, spec)
		})
		return err
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if s.Having != nil {
		if err := collect(s.Having); err != nil {
			return nil, err
		}
	}
	for _, oi := range s.OrderBy {
		if err := collect(oi.Expr); err != nil {
			return nil, err
		}
	}

	aggNode := &plan.Agg{In: node, GroupBy: groupExprs, Names: groupNames, Aggs: aggs}
	node = aggNode

	// Post-aggregation binding: group expressions and aggregate calls become
	// column references into the Agg output.
	groupStrs := make([]string, len(groupExprs))
	for i, g := range groupExprs {
		groupStrs[i] = g.String()
	}
	postBind := func(ast Expr) (expr.Expr, error) {
		return b.bindPostAgg(ast, sc, groupStrs, groupExprs, groupNames, aggKey, aggs)
	}

	if s.Having != nil {
		h, err := postBind(s.Having)
		if err != nil {
			return nil, err
		}
		node = &plan.Filter{In: node, Pred: h}
	}

	exprs := make([]expr.Expr, len(items))
	names := make([]string, len(items))
	for i, it := range items {
		e, err := postBind(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		names[i] = itemName(it, i)
	}
	return &coreResult{node: node, items: exprs, names: names, bindOrder: postBind}, nil
}

func itemName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*Col); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

// containsAgg reports whether the AST contains an aggregate call.
func containsAgg(ast Expr) bool {
	found := false
	walkCalls(ast, func(c *Call) {
		if aggFuncs[c.Name] {
			found = true
		}
	})
	return found
}

// walkCalls visits every Call in the AST.
func walkCalls(ast Expr, fn func(*Call)) {
	switch x := ast.(type) {
	case *Call:
		fn(x)
		if x.Arg != nil {
			walkCalls(x.Arg, fn)
		}
	case *Bin:
		walkCalls(x.L, fn)
		walkCalls(x.R, fn)
	case *Unary:
		walkCalls(x.E, fn)
	case *IsNullX:
		walkCalls(x.E, fn)
	case *InX:
		walkCalls(x.E, fn)
	case *LikeX:
		walkCalls(x.E, fn)
	case *BetweenX:
		walkCalls(x.E, fn)
		walkCalls(x.Lo, fn)
		walkCalls(x.Hi, fn)
	}
}

func aggCallKey(c *Call, boundArg expr.Expr) string {
	arg := "*"
	if boundArg != nil {
		arg = boundArg.String()
	}
	d := ""
	if c.Distinct {
		d = "D"
	}
	return c.Name + d + "(" + arg + ")"
}

// bindPostAgg rewrites an AST into an expression over the Agg output schema:
// group expressions and aggregate calls become column references; other
// operators recurse.
func (b *Binder) bindPostAgg(ast Expr, inScope *scope, groupStrs []string,
	groupExprs []expr.Expr, groupNames []string, aggKey map[string]int, aggs []exec.AggSpec) (expr.Expr, error) {

	// Aggregate call -> ColRef after groups.
	if c, ok := ast.(*Call); ok && aggFuncs[c.Name] {
		var arg expr.Expr
		var err error
		if !c.Star {
			arg, err = b.bindExpr(c.Arg, inScope)
			if err != nil {
				return nil, err
			}
		}
		idx, ok := aggKey[aggCallKey(c, arg)]
		if !ok {
			return nil, fmt.Errorf("sql: internal: aggregate %s not collected", c.Name)
		}
		return expr.NewColRef(len(groupExprs)+idx, aggs[idx].Name, aggs[idx].ResultType()), nil
	}

	// Whole expression equals a group expression -> ColRef.
	if bound, err := b.bindExpr(ast, inScope); err == nil {
		bs := bound.String()
		for i, g := range groupStrs {
			if bs == g {
				return expr.NewColRef(i, groupNames[i], groupExprs[i].Type()), nil
			}
		}
		// A bare column that is not grouped is an error (unless constant).
		if _, isLit := ast.(*Lit); isLit {
			return bound, nil
		}
	}

	switch x := ast.(type) {
	case *Lit:
		return b.bindExpr(x, inScope)
	case *Col:
		return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or an aggregate", x.Name)
	case *Bin:
		l, err := b.bindPostAgg(x.L, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		r, err := b.bindPostAgg(x.R, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		return combineBin(x.Op, l, r)
	case *Unary:
		e, err := b.bindPostAgg(x.E, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		return bindUnary(x.Op, e)
	case *IsNullX:
		e, err := b.bindPostAgg(x.E, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		return expr.NewIsNull(e, x.Negate), nil
	case *Call: // date functions over group columns
		e, err := b.bindPostAgg(x.Arg, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		return expr.NewDateFunc(x.Name, e), nil
	case *BetweenX:
		e, err := b.bindPostAgg(x.E, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindPostAgg(x.Lo, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindPostAgg(x.Hi, inScope, groupStrs, groupExprs, groupNames, aggKey, aggs)
		if err != nil {
			return nil, err
		}
		rng := expr.NewAnd(expr.NewCmp(expr.GE, e, lo), expr.NewCmp(expr.LE, e, hi))
		if x.Negate {
			return expr.NewNot(rng), nil
		}
		return rng, nil
	default:
		return nil, fmt.Errorf("sql: unsupported expression after aggregation")
	}
}

// --- Plain expression binding ---

func (b *Binder) bindExpr(ast Expr, sc *scope) (expr.Expr, error) {
	switch x := ast.(type) {
	case *Lit:
		return expr.NewConst(x.Val), nil

	case *Param:
		if b.Params == nil {
			return nil, fmt.Errorf("sql: parameter placeholders require a prepared statement (Engine.Prepare)")
		}
		return b.Params.cell(x.Idx)

	case *Col:
		idx, typ, err := sc.resolve(x.Qual, x.Name)
		if err != nil {
			return nil, err
		}
		return expr.NewColRef(idx, x.Name, typ), nil

	case *Bin:
		l, err := b.bindExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.R, sc)
		if err != nil {
			return nil, err
		}
		return combineBin(x.Op, l, r)

	case *Unary:
		e, err := b.bindExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		return bindUnary(x.Op, e)

	case *IsNullX:
		e, err := b.bindExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		return expr.NewIsNull(e, x.Negate), nil

	case *InX:
		e, err := b.bindExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		vals := make([]sqltypes.Value, len(x.Vals))
		for i, v := range x.Vals {
			lit, ok := v.(*Lit)
			if !ok {
				return nil, fmt.Errorf("sql: IN list must contain literals")
			}
			vals[i] = coerceLit(lit.Val, e.Type())
		}
		in := expr.NewInList(e, vals)
		if x.Negate {
			return expr.NewNot(in), nil
		}
		return in, nil

	case *LikeX:
		e, err := b.bindExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		inferParamType(e, sqltypes.String)
		if e.Type() != sqltypes.String {
			return nil, fmt.Errorf("sql: LIKE requires a string operand")
		}
		return expr.NewLike(e, x.Pattern, x.Negate), nil

	case *BetweenX:
		e, err := b.bindExpr(x.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		inferParamType(lo, e.Type())
		inferParamType(hi, e.Type())
		lo = coerceConst(lo, e.Type())
		hi = coerceConst(hi, e.Type())
		rng := expr.NewAnd(expr.NewCmp(expr.GE, e, lo), expr.NewCmp(expr.LE, e, hi))
		if x.Negate {
			return expr.NewNot(rng), nil
		}
		return rng, nil

	case *Call:
		if aggFuncs[x.Name] {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
		}
		if !dateFuncs[x.Name] {
			return nil, fmt.Errorf("sql: unknown function %s", x.Name)
		}
		e, err := b.bindExpr(x.Arg, sc)
		if err != nil {
			return nil, err
		}
		if e.Type() != sqltypes.Date {
			return nil, fmt.Errorf("sql: %s requires a DATE argument", x.Name)
		}
		return expr.NewDateFunc(x.Name, e), nil

	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", ast)
	}
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

var arithOps = map[string]expr.ArithOp{
	"+": expr.Add, "-": expr.Sub, "*": expr.Mul, "/": expr.Div, "%": expr.Mod,
}

func combineBin(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "AND":
		return expr.NewAnd(l, r), nil
	case "OR":
		return expr.NewOr(l, r), nil
	}
	if c, ok := cmpOps[op]; ok {
		// Placeholders take the type of the opposite operand.
		inferParamType(l, r.Type())
		inferParamType(r, l.Type())
		// Coerce string literals to dates when compared against DATE.
		l2, r2 := l, r
		if l.Type() == sqltypes.Date {
			r2 = coerceConst(r, sqltypes.Date)
		}
		if r.Type() == sqltypes.Date {
			l2 = coerceConst(l, sqltypes.Date)
		}
		return expr.NewCmp(c, l2, r2), nil
	}
	if a, ok := arithOps[op]; ok {
		inferParamType(l, r.Type())
		inferParamType(r, l.Type())
		if !l.Type().Numeric() || !r.Type().Numeric() {
			return nil, fmt.Errorf("sql: arithmetic requires numeric operands (got %v %s %v)", l.Type(), op, r.Type())
		}
		return expr.NewArith(a, l, r), nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", op)
}

func bindUnary(op string, e expr.Expr) (expr.Expr, error) {
	switch op {
	case "NOT":
		return expr.NewNot(e), nil
	case "-":
		if !e.Type().Numeric() {
			return nil, fmt.Errorf("sql: unary minus requires a numeric operand")
		}
		if e.Type() == sqltypes.Float64 {
			return expr.NewArith(expr.Sub, expr.NewConst(sqltypes.NewFloat(0)), e), nil
		}
		return expr.NewArith(expr.Sub, expr.NewConst(sqltypes.NewInt(0)), e), nil
	default:
		return nil, fmt.Errorf("sql: unknown unary operator %q", op)
	}
}

// coerceConst converts a constant to the target type when that conversion is
// exact (string -> date being the important case); other expressions pass
// through.
func coerceConst(e expr.Expr, target sqltypes.Type) expr.Expr {
	c, ok := e.(*expr.Const)
	if !ok {
		return e
	}
	return expr.NewConst(coerceLit(c.Val, target))
}

func coerceLit(v sqltypes.Value, target sqltypes.Type) sqltypes.Value {
	if v.Null {
		return sqltypes.NewNull(target)
	}
	switch {
	case target == sqltypes.Date && v.Typ == sqltypes.String:
		if days, err := sqltypes.DateFromString(strings.TrimSpace(v.S)); err == nil {
			return sqltypes.NewDate(days)
		}
	case target == sqltypes.Float64 && v.Typ == sqltypes.Int64:
		return sqltypes.NewFloat(float64(v.I))
	}
	return v
}
