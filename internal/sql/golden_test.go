package sql

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"apollo/internal/plan"
)

// Golden-plan suite: EXPLAIN and EXPLAIN ANALYZE output for a fixed set of
// query shapes is pinned against checked-in files. Run with -update to
// regenerate after an intentional plan or annotation change:
//
//	go test ./internal/sql -run TestGoldenPlans -update
//
// ANALYZE goldens normalize wall times (the only nondeterministic field) and
// pin everything else: rows, batches, worker counts, and the scan's full
// segment-elimination breakdown. At DOP 8 each batch is still processed by
// exactly one worker replica, so sums across replicas are reproducible.
var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

var wallRE = regexp.MustCompile(`wall=[^ \]]+`)

func normalizeAnalyze(s string) string { return wallRE.ReplaceAllString(s, "wall=<t>") }

var goldenCases = []struct {
	name  string
	query string
}{
	{"scan_predicate", "SELECT id, amount FROM sales WHERE id BETWEEN 100 AND 250 AND region = 'north'"},
	{"scan_residual_like", "SELECT id FROM sales WHERE region LIKE 'n%' AND id % 7 = 0"},
	{"groupby_dict", "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region"},
	{"groupby_having", "SELECT cust, COUNT(*) AS n FROM sales GROUP BY cust HAVING COUNT(*) > 40"},
	{"join_inner", "SELECT s.id, c.cname FROM sales s JOIN customers c ON s.cust = c.cid WHERE s.id < 100"},
	{"join_left_outer", "SELECT c.cname, s.id FROM customers c LEFT OUTER JOIN sales s ON c.cid = s.cust AND s.amount > 90"},
	{"join_semi", "SELECT cname FROM customers c LEFT SEMI JOIN sales s ON c.cid = s.cust"},
	{"join_anti", "SELECT cname FROM customers c LEFT ANTI JOIN sales s ON c.cid = s.cust AND s.amount > 95"},
	{"join_groupby", "SELECT c.tier, SUM(s.amount) FROM sales s JOIN customers c ON s.cust = c.cid GROUP BY c.tier"},
	{"topn", "SELECT id, amount FROM sales ORDER BY amount DESC LIMIT 10"},
	{"distinct", "SELECT DISTINCT region FROM sales"},
	{"union_all", "SELECT id FROM sales WHERE region = 'north' UNION ALL SELECT id FROM sales WHERE region = 'south'"},
	{"metadata_count", "SELECT COUNT(*) FROM sales"},
	{"delta_scan", "SELECT COUNT(*) FROM sales WHERE id >= 1000"},
}

// goldenEngine builds the deterministic fixture: the standard seed (1000
// bulk-loaded rows, 5 row groups of 200) plus a few trickled delta rows and
// some deleted rows, so plans cover compressed, delta, and delete paths.
func goldenEngine(t *testing.T, dop int) *Engine {
	t.Helper()
	e := newEngine(t, plan.Mode2014)
	e.PlanOpts.Parallel = dop
	seed(t, e)
	mustExec(t, e, "INSERT INTO sales VALUES (1000, 3, 1.5, 'north', DATE '1994-02-01'), (1001, 7, 2.5, 'south', DATE '1994-02-02'), (1002, 3, 3.5, 'east', DATE '1994-02-03')")
	mustExec(t, e, "DELETE FROM sales WHERE id % 100 = 7")
	return e
}

func TestGoldenPlans(t *testing.T) {
	for _, dop := range []int{1, 8} {
		e := goldenEngine(t, dop)
		for _, tc := range goldenCases {
			t.Run(fmt.Sprintf("%s/dop%d", tc.name, dop), func(t *testing.T) {
				explain := mustExec(t, e, "EXPLAIN "+tc.query).Message
				analyze1 := normalizeAnalyze(mustExec(t, e, "EXPLAIN ANALYZE "+tc.query).Message)
				// A second run must produce byte-identical normalized output:
				// counters are per-query snapshots and replica sums do not
				// depend on scheduling.
				analyze2 := normalizeAnalyze(mustExec(t, e, "EXPLAIN ANALYZE "+tc.query).Message)
				if analyze1 != analyze2 {
					t.Fatalf("EXPLAIN ANALYZE not deterministic:\nfirst:\n%s\nsecond:\n%s", analyze1, analyze2)
				}

				content := "query: " + tc.query + "\n\n-- explain\n" + explain + "\n-- explain analyze\n" + analyze1
				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s.dop%d.golden", tc.name, dop))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if string(want) != content {
					t.Errorf("golden mismatch for %s (run with -update if intentional)\n--- want\n%s\n--- got\n%s", path, want, content)
				}
			})
		}
	}
}
