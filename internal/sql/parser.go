package sql

import (
	"fmt"
	"strconv"
	"strings"

	"apollo/internal/exec"
	"apollo/internal/sqltypes"
)

type parser struct {
	toks    []token
	i       int
	nParams int // `?` placeholders seen, in statement order
}

// Parse parses one SQL statement (a trailing semicolon is allowed).
// Placeholders are rejected: use ParseWithParams (Engine.Prepare) for
// parameterized statements.
func Parse(src string) (Statement, error) {
	st, n, err := ParseWithParams(src)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		return nil, fmt.Errorf("sql: statement has %d parameter placeholder(s); use Prepare", n)
	}
	return st, nil
}

// ParseWithParams parses one SQL statement that may contain `?` placeholders,
// returning the placeholder count. Placeholders are numbered 1..n in the
// order they appear.
func ParseWithParams(src string) (Statement, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, 0, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return st, p.nParams, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format+" (near offset %d)", append(args, p.cur().pos)...)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(tokKeyword, "EXPLAIN"):
		analyze := p.accept(tokKeyword, "ANALYZE")
		s, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: s, Analyze: analyze}, nil
	case p.accept(tokKeyword, "CREATE"):
		return p.createTable()
	case p.accept(tokKeyword, "DROP"):
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "DELETE"):
		return p.delete()
	case p.accept(tokKeyword, "UPDATE"):
		return p.update()
	case p.accept(tokKeyword, "REORGANIZE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Reorganize{Table: name}, nil
	case p.accept(tokKeyword, "REBUILD"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Rebuild{Table: name}, nil
	case p.accept(tokKeyword, "COPY"):
		return p.copyStmt()
	case p.accept(tokKeyword, "SHOW"):
		if _, err := p.expect(tokKeyword, "STATS"); err != nil {
			return nil, err
		}
		p.accept(tokKeyword, "FOR")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ShowStats{Table: name}, nil
	case p.accept(tokKeyword, "BEGIN"):
		p.accept(tokKeyword, "TRANSACTION")
		return &Begin{}, nil
	case p.accept(tokKeyword, "COMMIT"):
		p.accept(tokKeyword, "TRANSACTION")
		return &Commit{}, nil
	case p.accept(tokKeyword, "ROLLBACK"):
		p.accept(tokKeyword, "TRANSACTION")
		return &Rollback{}, nil
	default:
		return nil, p.errf("unsupported statement starting with %q", p.cur().text)
	}
}

func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

func (p *parser) createTable() (Statement, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		var typName string
		switch {
		case p.at(tokIdent, ""):
			typName = strings.ToUpper(p.next().text)
		case p.at(tokKeyword, "DATE"):
			p.next()
			typName = "DATE"
		default:
			return nil, p.errf("expected type name, found %q", p.cur().text)
		}
		typ := sqltypes.ParseType(typName)
		if typ == sqltypes.Unknown {
			return nil, p.errf("unknown type %q", typName)
		}
		col := sqltypes.Column{Name: colName, Typ: typ, Nullable: true}
		if p.accept(tokKeyword, "NOT") {
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			col.Nullable = false
		} else {
			p.accept(tokKeyword, "NULL")
		}
		ct.Cols = append(ct.Cols, col)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			opt, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch opt {
			case "rowgroup_size", "bulk_threshold":
				if _, err := p.expect(tokOp, "="); err != nil {
					return nil, err
				}
				t, err := p.expect(tokNumber, "")
				if err != nil {
					return nil, err
				}
				n, err := strconv.Atoi(t.text)
				if err != nil {
					return nil, p.errf("bad number %q", t.text)
				}
				if opt == "rowgroup_size" {
					ct.RowGroupSize = n
				} else {
					ct.BulkThreshold = n
				}
			case "archive":
				ct.Archive = true
			case "noreorder":
				ct.NoReorder = true
			default:
				return nil, p.errf("unknown table option %q", opt)
			}
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	return ct, nil
}

// copyStmt parses COPY table FROM 'path' [WITH (format='csv'|'binary',
// header, delimiter=',', batch_rows=N, max_dead_letters=N)].
func (p *parser) copyStmt() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	path, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	c := &Copy{Table: name, Path: path.text, Format: "csv"}
	if !p.accept(tokKeyword, "WITH") {
		return c, nil
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		opt, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch opt {
		case "format":
			if _, err := p.expect(tokOp, "="); err != nil {
				return nil, err
			}
			t, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "csv", "binary":
				c.Format = t.text
			default:
				return nil, p.errf("unknown COPY format %q (want 'csv' or 'binary')", t.text)
			}
		case "header":
			c.Header = true
		case "delimiter":
			if _, err := p.expect(tokOp, "="); err != nil {
				return nil, err
			}
			t, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			r := []rune(t.text)
			if len(r) != 1 {
				return nil, p.errf("COPY delimiter must be one character, got %q", t.text)
			}
			c.Delim = r[0]
		case "batch_rows", "max_dead_letters":
			if _, err := p.expect(tokOp, "="); err != nil {
				return nil, err
			}
			t, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			if opt == "batch_rows" {
				c.BatchRows = n
			} else if n == 0 {
				c.MaxDeadLetters = -1 // explicit zero: first bad row aborts
			} else {
				c.MaxDeadLetters = n
			}
		default:
			return nil, p.errf("unknown COPY option %q", opt)
		}
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) insert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) delete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) update() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.Cols = append(u.Cols, col)
		u.Exprs = append(u.Exprs, e)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) selectStmt() (*Select, error) {
	s, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "UNION") {
		if _, err := p.expect(tokKeyword, "ALL"); err != nil {
			return nil, p.errf("only UNION ALL is supported")
		}
		next, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		s.UnionAll = append(s.UnionAll, next)
	}
	// ORDER BY / LIMIT after a union chain apply to the whole union.
	if err := p.orderLimit(s); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) selectCore() (*Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &Select{Limit: -1}
	s.Distinct = p.accept(tokKeyword, "DISTINCT")

	for {
		if p.accept(tokOp, "*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			s.Items = append(s.Items, item)
		}
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}

	if p.accept(tokKeyword, "FROM") {
		first := true
		for {
			if first {
				fi, err := p.tableRef(exec.Inner, false)
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, fi)
				first = false
			}
			switch {
			case p.accept(tokOp, ","):
				fi, err := p.tableRef(exec.Inner, false)
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, fi)
			case p.at(tokKeyword, "JOIN"), p.at(tokKeyword, "INNER"),
				p.at(tokKeyword, "LEFT"), p.at(tokKeyword, "RIGHT"), p.at(tokKeyword, "FULL"):
				jt := exec.Inner
				switch {
				case p.accept(tokKeyword, "INNER"):
				case p.accept(tokKeyword, "LEFT"):
					jt = exec.LeftOuter
					if p.accept(tokKeyword, "SEMI") {
						jt = exec.LeftSemi
					} else if p.accept(tokKeyword, "ANTI") {
						jt = exec.LeftAnti
					} else {
						p.accept(tokKeyword, "OUTER")
					}
				case p.accept(tokKeyword, "RIGHT"):
					jt = exec.RightOuter
					p.accept(tokKeyword, "OUTER")
				case p.accept(tokKeyword, "FULL"):
					jt = exec.FullOuter
					p.accept(tokKeyword, "OUTER")
				}
				if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				fi, err := p.tableRef(jt, true)
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, fi)
			default:
				goto fromDone
			}
		}
	}
fromDone:

	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	return s, nil
}

// orderLimit parses the trailing ORDER BY / LIMIT / OFFSET clauses.
func (p *parser) orderLimit(s *Select) error {
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return err
			}
			oi := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				oi.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = n
		if p.accept(tokKeyword, "OFFSET") {
			t, err := p.expect(tokNumber, "")
			if err != nil {
				return err
			}
			off, err := strconv.Atoi(t.text)
			if err != nil {
				return p.errf("bad OFFSET %q", t.text)
			}
			s.Offset = off
		}
	}
	return nil
}

func (p *parser) tableRef(jt exec.JoinType, needOn bool) (FromItem, error) {
	name, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: name, Alias: name, JoinKind: jt}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = a
	} else if p.at(tokIdent, "") {
		fi.Alias = p.next().text
	}
	if needOn {
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return FromItem{}, err
		}
		on, err := p.expr()
		if err != nil {
			return FromItem{}, err
		}
		fi.On = on
	}
	return fi, nil
}

// --- Expressions (precedence climbing) ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullX{E: l, Negate: neg}, nil
	}
	neg := false
	if p.at(tokKeyword, "NOT") {
		// Lookahead for NOT IN / NOT LIKE / NOT BETWEEN.
		save := p.i
		p.next()
		if p.at(tokKeyword, "IN") || p.at(tokKeyword, "LIKE") || p.at(tokKeyword, "BETWEEN") {
			neg = true
		} else {
			p.i = save
			return l, nil
		}
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		in := &InX{E: l, Negate: neg}
		for {
			v, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			in.Vals = append(in.Vals, v)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.accept(tokKeyword, "LIKE"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeX{E: l, Pattern: t.text, Negate: neg}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenX{E: l, Lo: lo, Hi: hi, Negate: neg}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokOp, op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Bin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "+", L: l, R: r}
		case p.accept(tokOp, "-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "*", L: l, R: r}
		case p.accept(tokOp, "/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "/", L: l, R: r}
		case p.accept(tokOp, "%"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok && lit.Val.Typ == sqltypes.Int64 {
			return &Lit{Val: sqltypes.NewInt(-lit.Val.I)}, nil
		}
		if lit, ok := e.(*Lit); ok && lit.Val.Typ == sqltypes.Float64 {
			return &Lit{Val: sqltypes.NewFloat(-lit.Val.F)}, nil
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.primary()
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}
var dateFuncs = map[string]bool{"YEAR": true, "MONTH": true, "DAY": true}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokParam:
		p.next()
		p.nParams++
		return &Param{Idx: p.nParams}, nil

	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{Val: sqltypes.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{Val: sqltypes.NewInt(n)}, nil

	case t.kind == tokString:
		p.next()
		return &Lit{Val: sqltypes.NewString(t.text)}, nil

	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		return &Lit{Val: sqltypes.NewBool(t.text == "TRUE")}, nil

	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return &Lit{Val: sqltypes.NewNull(sqltypes.Unknown)}, nil

	case t.kind == tokKeyword && t.text == "DATE":
		// DATE 'YYYY-MM-DD' literal.
		p.next()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		days, err := sqltypes.DateFromString(s.text)
		if err != nil {
			return nil, p.errf("bad date literal %q", s.text)
		}
		return &Lit{Val: sqltypes.NewDate(days)}, nil

	case t.kind == tokKeyword && (aggFuncs[t.text] || dateFuncs[t.text]):
		p.next()
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		c := &Call{Name: t.text}
		if t.text == "COUNT" && p.accept(tokOp, "*") {
			c.Star = true
		} else {
			c.Distinct = p.accept(tokKeyword, "DISTINCT")
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Arg = arg
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return c, nil

	case t.kind == tokIdent:
		p.next()
		if p.accept(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Col{Qual: t.text, Name: col}, nil
		}
		return &Col{Name: t.text}, nil

	case p.accept(tokOp, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil

	default:
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}
