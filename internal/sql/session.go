package sql

import (
	"context"
	"errors"
	"fmt"

	"apollo/internal/table"
	"apollo/internal/txn"
)

// Session is one client's statement stream: it owns at most one open
// transaction and routes statements through it. Sessions are cheap; create
// one per connection (cssql keeps one for the whole REPL). A Session is not
// safe for concurrent use — that is the usual one-statement-at-a-time
// connection discipline — but distinct sessions are independent.
type Session struct {
	e  *Engine
	tx *txn.Txn
}

// NewSession creates a session. Transactions require Engine.Txns; without a
// manager the session still works in autocommit.
func (e *Engine) NewSession() *Session { return &Session{e: e} }

// InTxn reports whether a transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil && !s.tx.Done() }

// DoneErr reports why the session's transaction ended abnormally (ErrClosed
// when DB.Close aborted it), or nil.
func (s *Session) DoneErr() error {
	if s.tx != nil {
		return s.tx.Err()
	}
	return nil
}

// Exec parses and executes one statement under a background context.
func (s *Session) Exec(src string) (*Result, error) {
	return s.ExecContext(context.Background(), src)
}

// ExecContext parses and executes one statement under ctx, inside the open
// transaction if any. BEGIN/COMMIT/ROLLBACK manage the transaction. A failed
// DML statement does not auto-rollback: the session keeps the transaction so
// the client can decide — except on ErrWriteConflict, where the transaction
// is already poisoned and is rolled back before the error is returned (the
// client retries from BEGIN).
func (s *Session) ExecContext(ctx context.Context, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecStmtContext(ctx, st)
}

// ExecStmtContext executes a parsed statement (see ExecContext).
func (s *Session) ExecStmtContext(ctx context.Context, st Statement) (*Result, error) {
	switch st.(type) {
	case *Begin:
		return s.begin(ctx)
	case *Commit:
		return s.commit(ctx)
	case *Rollback:
		return s.rollback(ctx)
	}
	// A transaction aborted from under the session (DB close) is detected
	// here rather than deep in a statement, for a clear error.
	if s.tx != nil && s.tx.Done() {
		s.tx = nil
		return nil, txn.ErrClosed
	}
	res, err := s.e.execStmt(ctx, st, s.tx)
	s.noteDMLErr(ctx, err)
	return res, err
}

// noteDMLErr applies the session's conflict policy to a statement error: on
// ErrWriteConflict the transaction is already poisoned (first-writer-wins
// discarded the losing write), so release its snapshot now — the client
// retries from BEGIN.
func (s *Session) noteDMLErr(ctx context.Context, err error) {
	if err != nil && s.tx != nil && errors.Is(err, table.ErrWriteConflict) {
		s.tx.Rollback(ctx)
		s.tx = nil
	}
}

// StreamContext parses and executes one statement; a SELECT's rows are
// delivered to sink as they are produced instead of materialized (the
// returned Result then has no Rows). Any other statement executes exactly as
// in ExecStmtContext and sink is not called.
func (s *Session) StreamContext(ctx context.Context, src string, sink RowSink) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return s.ExecStmtContext(ctx, st)
	}
	if s.tx != nil && s.tx.Done() {
		s.tx = nil
		return nil, txn.ErrClosed
	}
	return s.e.streamSelect(ctx, sel, s.tx, sink)
}

func (s *Session) begin(ctx context.Context) (*Result, error) {
	if s.e.Txns == nil {
		return nil, fmt.Errorf("sql: this database does not support transactions")
	}
	if s.InTxn() {
		return nil, fmt.Errorf("sql: transaction already open (COMMIT or ROLLBACK first)")
	}
	tx, err := s.e.Txns.Begin(ctx)
	if err != nil {
		return nil, err
	}
	s.tx = tx
	return &Result{Message: "begin"}, nil
}

func (s *Session) commit(ctx context.Context) (*Result, error) {
	if s.tx == nil {
		return nil, fmt.Errorf("sql: no transaction open")
	}
	tx := s.tx
	s.tx = nil
	if err := tx.Commit(ctx); err != nil {
		// A commit that failed at the durability boundary (ENOSPC on the WAL,
		// poisoned writer) must flip the DB's health, not just this session.
		return s.e.observed(nil, err)
	}
	return &Result{Message: "commit"}, nil
}

func (s *Session) rollback(ctx context.Context) (*Result, error) {
	if s.tx == nil {
		return nil, fmt.Errorf("sql: no transaction open")
	}
	tx := s.tx
	s.tx = nil
	if err := tx.Rollback(ctx); err != nil {
		return nil, err
	}
	return &Result{Message: "rollback"}, nil
}

// Close rolls back any open transaction (session teardown).
func (s *Session) Close(ctx context.Context) {
	if s.tx != nil {
		s.tx.Rollback(ctx)
		s.tx = nil
	}
}
