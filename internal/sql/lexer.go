// Package sql implements the SQL front end: a lexer, a recursive-descent
// parser for the dialect subset the experiments need (CREATE TABLE, INSERT,
// DELETE, UPDATE, SELECT with joins/grouping/ordering, EXPLAIN, REORGANIZE),
// and a binder that resolves names and produces logical plans.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // `?` prepared-statement placeholder
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "IS": true, "IN": true, "LIKE": true, "BETWEEN": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "ON": true, "CREATE": true, "TABLE": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "DISTINCT": true, "UNION": true, "ALL": true,
	"EXPLAIN": true, "ANALYZE": true, "TRUE": true, "FALSE": true, "WITH": true,
	"REORGANIZE": true, "REBUILD": true, "EXISTS": true, "CASE": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "YEAR": true,
	"MONTH": true, "DAY": true, "DATE": true, "SEMI": true, "ANTI": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"COPY": true, "SHOW": true, "STATS": true, "FOR": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' && l.peek(1) == '-':
			l.skipLineComment()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c)
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.emit(tokKeyword, upper)
	} else {
		l.emit(tokIdent, strings.ToLower(word))
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
}

func (l *lexer) lexString() error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peek(1) == '\'' { // escaped quote
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String())
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", l.pos)
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			l.emit(tokOp, two)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '?':
		l.pos++
		l.emit(tokParam, "?")
		return nil
	case '(', ')', ',', ';', '.', '*', '=', '<', '>', '+', '-', '/', '%':
		l.pos++
		l.emit(tokOp, string(c))
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}
