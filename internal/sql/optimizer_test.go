package sql

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"apollo/internal/catalog"
	"apollo/internal/plan"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// Optimizer lockdown suite: the cost-based optimizer (real statistics, DP
// join enumeration, Bloom cost gating, per-pipeline DOP) is pinned three
// ways — plan-stability goldens over star/chain shapes, a cardinality
// q-error harness comparing estimated to actual rows, and a property test
// asserting optimized and heuristic plans return identical multisets. With
// APOLLO_BENCH_OPTIMIZER=<path> the q-error table and the 5-table star
// benchmark are recorded as JSON (`make bench-optimizer` writes
// BENCH_optimizer.json and gates wall-time regressions).

// --- Star-schema fixture ---

const starFactRows = 4000

// starSeedStmts builds the star/chain fixture: a fact table joined to four
// dimensions plus a snowflaked state->region dimension hanging off
// dim_cust. Distributions are deterministic: cust/store/promo uniform, prod
// skewed (quadratic residues), qty small-domain.
func starSeedStmts() []string {
	stmts := []string{
		`CREATE TABLE fact (fid BIGINT NOT NULL, cust BIGINT NOT NULL, prod BIGINT NOT NULL,
			store BIGINT NOT NULL, promo BIGINT NOT NULL, qty BIGINT NOT NULL, price DOUBLE NOT NULL)`,
		`CREATE TABLE dim_cust (cid BIGINT NOT NULL, cname VARCHAR NOT NULL, state VARCHAR NOT NULL)`,
		`CREATE TABLE dim_state (state VARCHAR NOT NULL, region VARCHAR NOT NULL)`,
		`CREATE TABLE dim_prod (pid BIGINT NOT NULL, category VARCHAR NOT NULL)`,
		`CREATE TABLE dim_store (sid BIGINT NOT NULL, city VARCHAR NOT NULL)`,
		`CREATE TABLE dim_promo (prid BIGINT NOT NULL, kind VARCHAR NOT NULL)`,
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO fact VALUES ")
	for i := 0; i < starFactRows; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d, %d, %d, %d, %d.%02d)",
			i, i%300, (i*i)%120, i%40, i%12, 1+i%10, i%500, i%100)
	}
	stmts = append(stmts, sb.String())

	sb.Reset()
	sb.WriteString("INSERT INTO dim_cust VALUES ")
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, 'cust%d', 's%d')", i, i, i%15)
	}
	stmts = append(stmts, sb.String())

	sb.Reset()
	sb.WriteString("INSERT INTO dim_state VALUES ")
	for i := 0; i < 15; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "('s%d', 'r%d')", i, i%4)
	}
	stmts = append(stmts, sb.String())

	sb.Reset()
	sb.WriteString("INSERT INTO dim_prod VALUES ")
	for i := 0; i < 120; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, 'c%d')", i, i%8)
	}
	stmts = append(stmts, sb.String())

	sb.Reset()
	sb.WriteString("INSERT INTO dim_store VALUES ")
	for i := 0; i < 40; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, 'city%d')", i, i%10)
	}
	stmts = append(stmts, sb.String())

	sb.Reset()
	sb.WriteString("INSERT INTO dim_promo VALUES ")
	for i := 0; i < 12; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, 'k%d')", i, i%4)
	}
	stmts = append(stmts, sb.String())
	return stmts
}

// starCatalog builds the fixture once and hands out engines sharing it: one
// cost-based (the default planner) and one heuristic baseline (no join
// reordering, fixed DOP) per requested parallelism. Shared across tests and
// the fuzz target, so it must not depend on *testing.T.
var starFixture struct {
	once sync.Once
	cat  *catalog.Catalog
	err  error
}

func starEngines(dop int) (opt, heur *Engine, err error) {
	starFixture.once.Do(func() {
		cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
		opts := table.DefaultOptions()
		opts.RowGroupSize = 1000
		opts.BulkLoadThreshold = 50
		e := &Engine{Cat: cat, PlanOpts: plan.Options{Mode: plan.Mode2014}, TableOpts: opts}
		for _, s := range starSeedStmts() {
			if _, err := e.Exec(s); err != nil {
				starFixture.err = fmt.Errorf("star fixture: %w", err)
				return
			}
		}
		starFixture.cat = cat
	})
	if starFixture.err != nil {
		return nil, nil, starFixture.err
	}
	opt = &Engine{Cat: starFixture.cat, PlanOpts: plan.Options{Mode: plan.Mode2014, Parallel: dop}}
	heur = &Engine{Cat: starFixture.cat, PlanOpts: plan.Options{
		Mode: plan.Mode2014, Parallel: dop, NoJoinReorder: true, FixedDOP: true}}
	return opt, heur, nil
}

// --- Plan-stability goldens: star and chain shapes ---

var starGoldenCases = []struct {
	name  string
	query string
}{
	{"star2_filter", "SELECT f.fid, c.cname FROM fact f JOIN dim_cust c ON f.cust = c.cid WHERE c.state = 's3'"},
	{"star3_selective_dim", "SELECT SUM(f.qty) FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_prod p ON f.prod = p.pid WHERE p.category = 'c2'"},
	{"star3_two_filters", "SELECT COUNT(*) FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_prod p ON f.prod = p.pid WHERE c.state = 's1' AND p.category = 'c3'"},
	{"star3_agg", "SELECT p.category, SUM(f.price) FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_prod p ON f.prod = p.pid GROUP BY p.category"},
	{"star4_city", "SELECT COUNT(*) FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_prod p ON f.prod = p.pid JOIN dim_store s ON f.store = s.sid WHERE s.city = 'city4'"},
	{"star5_bench", starBenchQuery},
	{"chain3_region", "SELECT st.region, COUNT(*) FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_state st ON c.state = st.state GROUP BY st.region"},
	{"chain3_filtered", "SELECT f.fid FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_state st ON c.state = st.state WHERE st.region = 'r1' AND f.qty > 8"},
	{"semi_star", "SELECT cname FROM dim_cust c LEFT SEMI JOIN fact f ON c.cid = f.cust"},
	{"star3_topn", "SELECT f.fid, c.cname FROM fact f JOIN dim_cust c ON f.cust = c.cid JOIN dim_promo pr ON f.promo = pr.prid WHERE pr.kind = 'k1' ORDER BY f.fid LIMIT 10"},
}

// The 5-table star join used by both the plan goldens and the wall-time
// benchmark: filters on two dimensions make join order matter.
const starBenchQuery = "SELECT COUNT(*), SUM(f.qty) FROM fact f " +
	"JOIN dim_cust c ON f.cust = c.cid " +
	"JOIN dim_prod p ON f.prod = p.pid " +
	"JOIN dim_store s ON f.store = s.sid " +
	"JOIN dim_promo pr ON f.promo = pr.prid " +
	"WHERE c.state = 's7' AND p.category = 'c1'"

func TestOptimizerGoldenPlans(t *testing.T) {
	for _, dop := range []int{1, 8} {
		e, _, err := starEngines(dop)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range starGoldenCases {
			t.Run(fmt.Sprintf("%s/dop%d", tc.name, dop), func(t *testing.T) {
				explain := mustExec(t, e, "EXPLAIN "+tc.query).Message
				analyze := normalizeAnalyze(mustExec(t, e, "EXPLAIN ANALYZE "+tc.query).Message)
				content := "query: " + tc.query + "\n\n-- explain\n" + explain + "\n-- explain analyze\n" + analyze
				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s.dop%d.golden", tc.name, dop))
				if *updateGolden {
					if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if string(want) != content {
					t.Errorf("golden mismatch for %s (run with -update if intentional)\n--- want\n%s\n--- got\n%s", path, want, content)
				}
			})
		}
	}
}

// --- Cardinality accuracy: q-error per query shape ---

// qerrCase pins the estimator's q-error — max(est/actual, actual/est) — for
// one query over a known distribution. Bounds are intentionally loose where
// the model is known to be weak (independence assumption on correlated
// conjuncts) and tight where it should be strong (histograms on uniform
// data, NDV joins).
type qerrCase struct {
	name  string
	query string
	bound float64
}

var qerrCases = []qerrCase{
	{"uniform_point", "SELECT * FROM qu_uniform WHERE v = 50", 1.5},
	{"uniform_range", "SELECT * FROM qu_uniform WHERE v BETWEEN 10 AND 29", 1.5},
	{"uniform_conjunct", "SELECT * FROM qu_uniform WHERE v >= 40 AND id < 1000", 2.5},
	{"zipf_heavy", "SELECT * FROM qu_zipf WHERE v = 44", 2.5},
	{"zipf_tail", "SELECT * FROM qu_zipf WHERE v = 2", 4.0},
	{"zipf_range", "SELECT * FROM qu_zipf WHERE v >= 40", 1.6},
	{"corr_conjunct", "SELECT * FROM qu_corr WHERE a = 37 AND b = 3", 8.0},
	{"corr_implied_range", "SELECT * FROM qu_corr WHERE a < 50 AND b < 5", 3.0},
	{"join_uniform_zipf", "SELECT * FROM qu_uniform u JOIN qu_zipf z ON u.v = z.v", 1.5},
	{"join_filtered", "SELECT * FROM qu_uniform u JOIN qu_zipf z ON u.v = z.v WHERE u.id < 200", 2.5},
	{"groupby_zipf", "SELECT v, COUNT(*) FROM qu_zipf GROUP BY v", 1.5},
	{"groupby_corr", "SELECT a, b, COUNT(*) FROM qu_corr GROUP BY a, b", 12.0},
}

// isqrt is the integer square root used to shape the zipf-like column:
// value k appears 2k+1 times, so high values dominate.
func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func qerrEngine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE qu_uniform (id BIGINT NOT NULL, v BIGINT NOT NULL)")
	mustExec(t, e, "CREATE TABLE qu_zipf (id BIGINT NOT NULL, v BIGINT NOT NULL)")
	mustExec(t, e, "CREATE TABLE qu_corr (a BIGINT NOT NULL, b BIGINT NOT NULL)")
	ins := func(table string, val func(i int) string) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
		for i := 0; i < 2000; i++ {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(val(i))
		}
		mustExec(t, e, sb.String())
	}
	ins("qu_uniform", func(i int) string { return fmt.Sprintf("(%d, %d)", i, i%100) })
	ins("qu_zipf", func(i int) string { return fmt.Sprintf("(%d, %d)", i, isqrt(i)) })
	ins("qu_corr", func(i int) string { return fmt.Sprintf("(%d, %d)", i%100, (i%100)/10) })
	return e
}

func TestCardinalityQError(t *testing.T) {
	e := qerrEngine(t)
	type rec struct {
		Name   string  `json:"name"`
		Query  string  `json:"query"`
		Est    float64 `json:"est_rows"`
		Actual int     `json:"actual_rows"`
		QError float64 `json:"q_error"`
		Bound  float64 `json:"bound"`
	}
	var recs []rec
	for _, tc := range qerrCases {
		t.Run(tc.name, func(t *testing.T) {
			res := mustExec(t, e, tc.query)
			if res.Compiled == nil {
				t.Fatal("no compiled plan on result")
			}
			est := res.Compiled.EstRows[res.Compiled.Plan]
			actual := len(res.Rows)
			if actual == 0 {
				t.Fatalf("degenerate case: zero actual rows")
			}
			q := est / float64(actual)
			if q < 1 {
				q = 1 / q
			}
			recs = append(recs, rec{tc.name, tc.query, est, actual, q, tc.bound})
			if q > tc.bound {
				t.Errorf("q-error %.2f exceeds bound %.2f (est=%.1f actual=%d)", q, tc.bound, est, actual)
			}
		})
	}
	recordOptimizerBench(t, "qerror", recs)
}

// --- 5-table star-join benchmark: cost-based vs heuristic plan ---

var annotRE = regexp.MustCompile(` \[[^\]]*\]`)

// planShape strips the per-node annotations (estimates, runtime counters,
// bloom notes) so two plans compare by operator tree alone.
func planShape(explain string) string { return annotRE.ReplaceAllString(explain, "") }

func sortedRowStrings(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var sb strings.Builder
		for i, v := range r {
			if i > 0 {
				sb.WriteString("|")
			}
			sb.WriteString(v.String())
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func TestOptimizerStarBench(t *testing.T) {
	opt, heur, err := starEngines(8)
	if err != nil {
		t.Fatal(err)
	}
	explainOpt := mustExec(t, opt, "EXPLAIN "+starBenchQuery).Message
	explainHeur := mustExec(t, heur, "EXPLAIN "+starBenchQuery).Message
	if planShape(explainOpt) == planShape(explainHeur) {
		t.Errorf("cost-based plan identical to heuristic plan:\n%s", explainOpt)
	}

	rowsOpt := sortedRowStrings(mustExec(t, opt, starBenchQuery))
	rowsHeur := sortedRowStrings(mustExec(t, heur, starBenchQuery))
	if fmt.Sprint(rowsOpt) != fmt.Sprint(rowsHeur) {
		t.Fatalf("result mismatch:\noptimized: %v\nheuristic: %v", rowsOpt, rowsHeur)
	}

	median := func(e *Engine) time.Duration {
		var runs []time.Duration
		for i := 0; i < 5; i++ {
			start := time.Now()
			mustExec(t, e, starBenchQuery)
			runs = append(runs, time.Since(start))
		}
		sort.Slice(runs, func(a, b int) bool { return runs[a] < runs[b] })
		return runs[len(runs)/2]
	}
	wallOpt, wallHeur := median(opt), median(heur)
	t.Logf("star bench: optimized=%v heuristic=%v", wallOpt, wallHeur)

	// Regression gate (make bench-optimizer): the cost-based plan must not
	// be more than 20% slower than the heuristic plan, with absolute slack
	// so micro-runs on noisy CI hosts cannot flake.
	if os.Getenv("APOLLO_BENCH_OPTIMIZER_GATE") == "1" {
		limit := wallHeur + wallHeur/5 + 5*time.Millisecond
		if wallOpt > limit {
			t.Errorf("optimized plan too slow: %v vs heuristic %v (limit %v)", wallOpt, wallHeur, limit)
		}
	}

	analyzeOpt := normalizeAnalyze(mustExec(t, opt, "EXPLAIN ANALYZE "+starBenchQuery).Message)
	recordOptimizerBench(t, "star_bench", map[string]any{
		"query":             starBenchQuery,
		"fact_rows":         starFactRows,
		"optimized_plan":    explainOpt,
		"heuristic_plan":    explainHeur,
		"optimized_analyze": analyzeOpt,
		"optimized_wall":    wallOpt.String(),
		"heuristic_wall":    wallHeur.String(),
	})
}

// recordOptimizerBench merges one section into the JSON file named by
// APOLLO_BENCH_OPTIMIZER (read-modify-write, so the q-error table and the
// star benchmark can land in the same document in any order).
func recordOptimizerBench(t *testing.T, key string, val any) {
	t.Helper()
	path := os.Getenv("APOLLO_BENCH_OPTIMIZER")
	if path == "" {
		return
	}
	doc := map[string]any{}
	if buf, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(buf, &doc)
	}
	doc["bench"] = "optimizer"
	doc["date"] = time.Now().UTC().Format("2006-01-02")
	doc["note"] = "single-process run on the CI host; plan shapes and q-errors are deterministic, wall times are not"
	doc[key] = val
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal bench doc: %v", err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("recorded %q to %s", key, path)
}

// --- Optimizer parity: optimized and heuristic plans agree on results ---

// randomStarQuery derives a random multi-join query over the star fixture
// from an rng: 1-4 dimensions in shuffled FROM order, a random subset of
// filters, and either a plain projection or an aggregation.
func randomStarQuery(rng *rand.Rand) string {
	type dim struct{ alias, join string }
	dims := []dim{
		{"c", "JOIN dim_cust c ON f.cust = c.cid"},
		{"p", "JOIN dim_prod p ON f.prod = p.pid"},
		{"s", "JOIN dim_store s ON f.store = s.sid"},
		{"pr", "JOIN dim_promo pr ON f.promo = pr.prid"},
	}
	rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	n := 1 + rng.Intn(len(dims))
	dims = dims[:n]
	chosen := map[string]bool{}
	from := "FROM fact f"
	for _, d := range dims {
		from += " " + d.join
		chosen[d.alias] = true
	}
	var preds []string
	if chosen["c"] && rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("c.state = 's%d'", rng.Intn(15)))
	}
	if chosen["p"] && rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("p.category = 'c%d'", rng.Intn(8)))
	}
	if chosen["s"] && rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("s.city = 'city%d'", rng.Intn(10)))
	}
	if chosen["pr"] && rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("pr.kind = 'k%d'", rng.Intn(4)))
	}
	if rng.Intn(3) == 0 {
		preds = append(preds, fmt.Sprintf("f.qty > %d", rng.Intn(10)))
	}
	where := ""
	if len(preds) > 0 {
		where = " WHERE " + strings.Join(preds, " AND ")
	}
	if rng.Intn(2) == 0 {
		return "SELECT COUNT(*), SUM(f.qty) " + from + where
	}
	return "SELECT f.fid " + from + where
}

// checkParity runs one query on the optimized and heuristic engines and
// fails if the result multisets differ.
func checkParity(t *testing.T, dop int, query string) {
	t.Helper()
	opt, heur, err := starEngines(dop)
	if err != nil {
		t.Fatal(err)
	}
	resOpt, err := opt.Exec(query)
	if err != nil {
		t.Fatalf("optimized exec %q: %v", query, err)
	}
	resHeur, err := heur.Exec(query)
	if err != nil {
		t.Fatalf("heuristic exec %q: %v", query, err)
	}
	a, b := sortedRowStrings(resOpt), sortedRowStrings(resHeur)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("parity violation at dop %d for %q:\noptimized (%d rows): %.400v\nheuristic (%d rows): %.400v",
			dop, query, len(a), a, len(b), b)
	}
}

func TestOptimizerParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	for i := 0; i < 60; i++ {
		query := randomStarQuery(rng)
		for _, dop := range []int{1, 8} {
			checkParity(t, dop, query)
		}
	}
}

// FuzzOptimizerParity drives the same property from fuzzed bytes: the seed
// corpus covers each dimension count, and the engine explores the query
// space through the derived rng. Wired into `make fuzz-smoke`.
func FuzzOptimizerParity(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(999983))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		checkParity(t, 1+rng.Intn(8), randomStarQuery(rng))
	})
}

// --- Statistics lifecycle ---

// TestStatsCacheRefreshAfterPublish pins the staleness contract: snapshots
// are reused while the table's publish version is unchanged and row drift
// stays under 10%, and recollected as soon as a row-group publish (bulk
// load, tuple mover, rebuild) bumps the version.
func TestStatsCacheRefreshAfterPublish(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE st (id BIGINT NOT NULL, v BIGINT NOT NULL)")
	ins := func(lo, hi int) {
		var sb strings.Builder
		sb.WriteString("INSERT INTO st VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, i%7)
		}
		mustExec(t, e, sb.String())
	}
	ins(0, 100) // >= bulk threshold: compresses and publishes
	ts1, _, err := e.TableStats("st")
	if err != nil {
		t.Fatal(err)
	}
	if ts1.Rows != 100 {
		t.Fatalf("initial stats rows = %d, want 100", ts1.Rows)
	}

	// Small delta trickle: no publish, <10% drift — the snapshot is reused.
	mustExec(t, e, "INSERT INTO st VALUES (1000, 1), (1001, 2)")
	ts2, _, err := e.TableStats("st")
	if err != nil {
		t.Fatal(err)
	}
	if ts2 != ts1 {
		t.Fatalf("snapshot recollected on a 2%% drift with no publish (rows %d -> %d)", ts1.Rows, ts2.Rows)
	}

	// A bulk load publishes row groups: the version bump must invalidate the
	// snapshot even though the cache key (the table pointer) is unchanged.
	ins(2000, 2100)
	ts3, _, err := e.TableStats("st")
	if err != nil {
		t.Fatal(err)
	}
	if ts3 == ts1 {
		t.Fatal("snapshot not recollected after a bulk-load publish")
	}
	if ts3.Rows != 202 {
		t.Fatalf("refreshed stats rows = %d, want 202", ts3.Rows)
	}
	if ts3.Version <= ts1.Version {
		t.Fatalf("stats version did not advance: %d -> %d", ts1.Version, ts3.Version)
	}

	// REORGANIZE moves the delta trickle through the tuple mover — another
	// publish, another refresh. This is the regression case: the old cache
	// ignored publishes entirely (and never refreshed tables under 100 rows).
	mustExec(t, e, "REORGANIZE st")
	ts4, _, err := e.TableStats("st")
	if err != nil {
		t.Fatal(err)
	}
	if ts4 == ts3 {
		t.Fatal("snapshot not recollected after a tuple-mover publish")
	}
}

func TestShowStats(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	for _, src := range []string{"SHOW STATS FOR sales", "SHOW STATS sales"} {
		res := mustExec(t, e, src)
		if len(res.Rows) != 5 {
			t.Fatalf("%s: got %d rows, want one per column (5)", src, len(res.Rows))
		}
		if !strings.Contains(res.Message, "rows=1000") {
			t.Errorf("%s: message %q missing live row count", src, res.Message)
		}
		byName := map[string]sqltypes.Row{}
		for _, r := range res.Rows {
			byName[r[0].S] = r
		}
		if got := byName["region"][5].I; got != 4 {
			t.Errorf("region ndv = %d, want 4", got)
		}
		if got := byName["cust"][5].I; got != 20 {
			t.Errorf("cust ndv = %d, want 20", got)
		}
		if got := byName["amount"][4].I; got != 20 {
			t.Errorf("amount nulls = %d, want 20", got)
		}
		if got := byName["id"][6].I; got == 0 {
			t.Error("id histogram missing")
		}
	}
	if _, err := e.Exec("SHOW STATS FOR nosuch"); err == nil {
		t.Error("SHOW STATS on a missing table should fail")
	}
}
