package sql

import (
	"context"
	"fmt"
	"io"
	"os"

	"apollo/internal/load"
	"apollo/internal/txn"
)

// LoadSpec configures Engine.Load: the decode format plus the loader knobs
// the three front ends (COPY, db.Load, /v1/load) expose.
type LoadSpec struct {
	Format         string // "csv" (default) or "binary"
	Header         bool   // CSV: skip the first record
	Delim          rune   // CSV field delimiter; 0 = ','
	BatchRows      int    // pin the batch size; 0 = adaptive controller
	MaxDeadLetters int    // 0 = loader default, <0 = first bad row aborts
	MaxRetries     int    // transient-fault batch retries; 0 = default
	// QueueDepth > 0 pipelines decoding from compression through a bounded
	// channel of that many rows (streaming ingest backpressure).
	QueueDepth int
	// GrantBytes overrides the engine's memory budget as the loader's
	// early-flush grant; 0 inherits PlanOpts.MemoryBudget.
	GrantBytes int64
}

// Load streams rows from r into the named table through the bulk-load
// pipeline: batches at or above the table's bulk threshold compress
// directly into row groups (one atomic WAL publish each), smaller ones fall
// back to batched delta inserts. The returned Result is non-nil even on
// error, carrying partial progress and the dead letters collected so far.
func (e *Engine) Load(ctx context.Context, tableName string, r io.Reader, spec LoadSpec) (*load.Result, error) {
	if e.closed.Load() {
		return &load.Result{}, txn.ErrClosed
	}
	if e.State != nil {
		if err := e.State.CheckWrite(); err != nil {
			return &load.Result{}, err
		}
	}
	t, err := e.Cat.Get(tableName)
	if err != nil {
		return &load.Result{}, err
	}
	var rr load.RowReader
	switch spec.Format {
	case "", "csv":
		rr = load.NewCSVReader(r, t.Schema, load.CSVOptions{Comma: spec.Delim, Header: spec.Header})
	case "binary":
		rr = load.NewBinaryReader(r, t.Schema)
	default:
		return &load.Result{}, fmt.Errorf("sql: unknown load format %q (want csv or binary)", spec.Format)
	}
	grant := spec.GrantBytes
	if grant == 0 {
		grant = e.PlanOpts.MemoryBudget
	}
	ldr, err := load.New(t, load.Options{
		RowGroupSize:   t.Opts.RowGroupSize,
		BulkThreshold:  t.Opts.BulkLoadThreshold,
		BatchRows:      spec.BatchRows,
		MaxDeadLetters: spec.MaxDeadLetters,
		MaxRetries:     spec.MaxRetries,
		GrantBytes:     grant,
	})
	if err != nil {
		return &load.Result{}, err
	}
	if spec.QueueDepth > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel() // unblocks the producer goroutine if the load aborts
		rr = load.Pipelined(ctx, rr, spec.QueueDepth)
	}
	res, err := ldr.Run(ctx, rr)
	if err != nil && e.State != nil {
		e.State.Observe(err)
		err = e.State.Surface(err)
	}
	return res, err
}

// copyFrom executes COPY table FROM 'path': open the file and run the load
// pipeline over it.
func (e *Engine) copyFrom(ctx context.Context, c *Copy) (*Result, error) {
	f, err := os.Open(c.Path)
	if err != nil {
		return nil, fmt.Errorf("sql: COPY %s: %w", c.Table, err)
	}
	defer f.Close()
	res, err := e.Load(ctx, c.Table, f, LoadSpec{
		Format:         c.Format,
		Header:         c.Header,
		Delim:          c.Delim,
		BatchRows:      c.BatchRows,
		MaxDeadLetters: c.MaxDeadLetters,
	})
	if err != nil {
		return nil, fmt.Errorf("sql: COPY %s (after %d rows): %w", c.Table, res.RowsLoaded, err)
	}
	return &Result{
		Affected: res.RowsLoaded,
		Message: fmt.Sprintf("loaded %d rows into %s (%d direct in %d groups, %d delta, %d dead-lettered)",
			res.RowsLoaded, c.Table, res.RowsDirect, res.Groups, res.RowsDelta, len(res.DeadLetters)),
	}, nil
}
