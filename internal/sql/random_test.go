package sql

import (
	"fmt"
	"math/rand"
	"testing"

	"apollo/internal/plan"
)

// randomQuery generates a random but always-valid SELECT over the seeded
// sales/customers schema: random conjuncts, optional join, optional grouping,
// deterministic ORDER BY so results compare row-for-row.
func randomQuery(rng *rand.Rand) string {
	conj := func() string {
		switch rng.Intn(8) {
		case 0:
			return fmt.Sprintf("s.id < %d", rng.Intn(1200))
		case 1:
			return fmt.Sprintf("s.id BETWEEN %d AND %d", rng.Intn(500), 500+rng.Intn(700))
		case 2:
			return fmt.Sprintf("s.amount > %d.5", rng.Intn(90))
		case 3:
			return []string{"s.region = 'north'", "s.region <> 'west'", "s.region IN ('east','south')"}[rng.Intn(3)]
		case 4:
			return []string{"s.region LIKE 'n%'", "s.region LIKE '%st'", "s.region NOT LIKE 's%'"}[rng.Intn(3)]
		case 5:
			return fmt.Sprintf("s.sold >= DATE '1994-01-%02d'", 1+rng.Intn(28))
		case 6:
			return "s.amount IS NOT NULL"
		default:
			return fmt.Sprintf("s.cust %% %d = %d", 2+rng.Intn(5), rng.Intn(2))
		}
	}
	var where string
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		if where != "" {
			if rng.Intn(4) == 0 {
				where += " OR "
			} else {
				where += " AND "
			}
		}
		where += conj()
	}
	if where != "" {
		where = " WHERE " + where
	}

	join := ""
	joined := rng.Intn(2) == 0
	if joined {
		join = " JOIN customers c ON s.cust = c.cid"
	}

	switch rng.Intn(3) {
	case 0: // plain select
		return "SELECT s.id, s.region, s.amount FROM sales s" + join + where + " ORDER BY s.id"
	case 1: // group by region
		return "SELECT s.region, COUNT(*), SUM(s.amount), MIN(s.id) FROM sales s" + join + where +
			" GROUP BY s.region ORDER BY s.region"
	default: // scalar agg
		return "SELECT COUNT(*), SUM(s.id), MAX(s.amount) FROM sales s" + join + where
	}
}

// TestRandomQueriesAcrossModes is the differential fuzz suite: 120 random
// queries must return identical ordered results in all three execution modes.
func TestRandomQueriesAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	engines := map[string]*Engine{
		"2014": newEngine(t, plan.Mode2014),
		"2012": newEngine(t, plan.Mode2012),
		"row":  newEngine(t, plan.ModeRow),
	}
	for _, e := range engines {
		seed(t, e)
		// Mix in deletes and delta-store rows so scans cross every path.
		mustExec(t, e, "DELETE FROM sales WHERE id % 17 = 3")
		mustExec(t, e, "INSERT INTO sales VALUES (2001, 3, 7.25, 'north', DATE '1994-02-01'), (2002, 4, NULL, 'east', DATE '1994-02-02')")
		mustExec(t, e, "UPDATE sales SET amount = amount + 5 WHERE id % 31 = 1")
	}
	rng := rand.New(rand.NewSource(20260704))
	for q := 0; q < 120; q++ {
		sqlText := randomQuery(rng)
		var want []string
		var wantFrom string
		for name, e := range engines {
			res, err := e.Exec(sqlText)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, sqlText, err)
			}
			got := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				got[i] = r.String()
			}
			if want == nil {
				want, wantFrom = got, name
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%q: %s=%d rows, %s=%d rows", sqlText, name, len(got), wantFrom, len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%q: row %d: %s=%s, %s=%s", sqlText, i, name, got[i], wantFrom, want[i])
				}
			}
		}
	}
}
