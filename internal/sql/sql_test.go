package sql

import (
	"fmt"
	"strings"
	"testing"

	"apollo/internal/catalog"
	"apollo/internal/plan"
	"apollo/internal/storage"
	"apollo/internal/table"
)

func newEngine(t *testing.T, mode plan.Mode) *Engine {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	opts := table.DefaultOptions()
	opts.RowGroupSize = 200
	opts.BulkLoadThreshold = 50
	return &Engine{
		Cat:       catalog.New(store),
		PlanOpts:  plan.Options{Mode: mode},
		TableOpts: opts,
	}
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// seed loads a small sales schema used by most tests.
func seed(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE sales (
		id BIGINT NOT NULL, cust BIGINT NOT NULL, amount DOUBLE,
		region VARCHAR NOT NULL, sold DATE NOT NULL)`)
	mustExec(t, e, `CREATE TABLE customers (cid BIGINT NOT NULL, cname VARCHAR NOT NULL, tier VARCHAR NOT NULL)`)

	regions := []string{"north", "south", "east", "west"}
	tiers := []string{"gold", "silver"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO sales VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		amount := fmt.Sprintf("%d.%02d", i%97, i%100)
		if i%50 == 3 {
			amount = "NULL"
		}
		fmt.Fprintf(&sb, "(%d, %d, %s, '%s', DATE '1994-01-%02d')",
			i, i%20, amount, regions[i%4], 1+i%28)
	}
	mustExec(t, e, sb.String())

	sb.Reset()
	sb.WriteString("INSERT INTO customers VALUES ")
	for i := 0; i < 20; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, 'cust%d', '%s')", i, i, tiers[i%2])
	}
	mustExec(t, e, sb.String())
}

func TestCreateInsertSelect(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	res := mustExec(t, e, "SELECT COUNT(*) FROM sales")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1000 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestSelectAcrossModesAgree(t *testing.T) {
	queries := []string{
		"SELECT region, COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales GROUP BY region ORDER BY region",
		"SELECT * FROM sales WHERE id < 10 ORDER BY id",
		"SELECT s.region, c.tier, SUM(s.amount) AS total FROM sales s JOIN customers c ON s.cust = c.cid WHERE s.sold >= DATE '1994-01-10' GROUP BY s.region, c.tier ORDER BY total DESC, region, tier",
		"SELECT cname FROM customers c LEFT SEMI JOIN sales s ON c.cid = s.cust ORDER BY cname",
		"SELECT c.cname, COUNT(*) AS n FROM customers c LEFT OUTER JOIN sales s ON c.cid = s.cust AND s.amount > 90 GROUP BY c.cname HAVING COUNT(*) > 1 ORDER BY n DESC, cname LIMIT 5",
		"SELECT DISTINCT region FROM sales ORDER BY region",
		"SELECT id FROM sales WHERE region = 'north' UNION ALL SELECT id FROM sales WHERE region = 'south' ORDER BY 1 LIMIT 20",
		"SELECT region, COUNT(DISTINCT cust) FROM sales GROUP BY region ORDER BY region",
		"SELECT id, amount FROM sales WHERE amount BETWEEN 10 AND 20 AND region IN ('north', 'east') ORDER BY id",
		"SELECT id FROM sales WHERE region LIKE 'no%' AND id % 7 = 0 ORDER BY id",
		"SELECT MONTH(sold), COUNT(*) FROM sales GROUP BY MONTH(sold) ORDER BY 1",
		"SELECT id FROM sales WHERE amount IS NULL ORDER BY id",
		"SELECT id, amount * 2 + 1 FROM sales WHERE NOT (region = 'west' OR id > 500) ORDER BY id DESC LIMIT 10 OFFSET 3",
		"SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY SUM(amount) DESC",
	}
	engines := map[string]*Engine{
		"2014": newEngine(t, plan.Mode2014),
		"2012": newEngine(t, plan.Mode2012),
		"row":  newEngine(t, plan.ModeRow),
	}
	for _, e := range engines {
		seed(t, e)
	}
	for _, q := range queries {
		var want []string
		for name, e := range engines {
			res := mustExec(t, e, q)
			var got []string
			for _, r := range res.Rows {
				got = append(got, r.String())
			}
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %q: %d rows vs %d", name, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: %q: row %d: %s vs %s", name, q, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAggregateValues(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE t (g BIGINT NOT NULL, v BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (1, 20), (2, NULL), (2, 5), (3, NULL)")
	res := mustExec(t, e, "SELECT g, COUNT(*), COUNT(v), SUM(v), AVG(v) FROM t GROUP BY g ORDER BY g")
	want := []string{
		"[1 2 2 30 15.0]",
		"[2 2 1 5 5.0]",
		"[3 1 0 NULL NULL]",
	}
	for i, r := range res.Rows {
		if r.String() != want[i] {
			t.Fatalf("row %d = %s, want %s", i, r, want[i])
		}
	}
}

func TestDeleteUpdate(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	res := mustExec(t, e, "DELETE FROM sales WHERE region = 'west'")
	if res.Affected != 250 {
		t.Fatalf("deleted %d", res.Affected)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM sales")
	if res.Rows[0][0].I != 750 {
		t.Fatalf("count after delete = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, "UPDATE sales SET amount = amount + 1000 WHERE region = 'north' AND id < 8")
	if res.Affected != 2 {
		t.Fatalf("updated %d", res.Affected)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM sales WHERE amount >= 1000")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("updated rows visible = %v", res.Rows[0][0])
	}
	// Row count unchanged by update.
	res = mustExec(t, e, "SELECT COUNT(*) FROM sales")
	if res.Rows[0][0].I != 750 {
		t.Fatalf("count after update = %v", res.Rows[0][0])
	}
}

func TestReorganize(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	tb, _ := e.Cat.Get("sales")
	if tb.Stat().CompressedRows == 0 {
		t.Fatal("bulk insert should have compressed row groups")
	}
	mustExec(t, e, "INSERT INTO sales VALUES (9999, 1, 1.0, 'north', DATE '1994-02-01')")
	if tb.Stat().DeltaRows == 0 {
		t.Fatal("trickle insert should land in a delta store")
	}
	mustExec(t, e, "REORGANIZE sales")
	if st := tb.Stat(); st.DeltaRows != 0 {
		t.Fatalf("delta rows after reorganize: %+v", st)
	}
	res := mustExec(t, e, "SELECT COUNT(*) FROM sales WHERE id = 9999")
	if res.Rows[0][0].I != 1 {
		t.Fatal("row lost in reorganize")
	}
}

func TestExplain(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	res := mustExec(t, e, "EXPLAIN SELECT region, COUNT(*) FROM sales WHERE sold > DATE '1994-01-15' GROUP BY region")
	if !strings.Contains(res.Message, "batch mode") || !strings.Contains(res.Message, "Scan(sales") {
		t.Fatalf("explain = %s", res.Message)
	}
	e2 := newEngine(t, plan.ModeRow)
	seed(t, e2)
	res = mustExec(t, e2, "EXPLAIN SELECT COUNT(*) FROM sales GROUP BY region")
	if !strings.Contains(res.Message, "row mode") {
		t.Fatalf("explain = %s", res.Message)
	}
}

func TestDropTable(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE tmp (a BIGINT)")
	mustExec(t, e, "DROP TABLE tmp")
	if _, err := e.Exec("SELECT * FROM tmp"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := e.Exec("DROP TABLE tmp"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestCreateTableOptions(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE arch (a BIGINT NOT NULL, s VARCHAR NOT NULL) WITH (rowgroup_size = 100, bulk_threshold = 10, archive)")
	tb, err := e.Cat.Get("arch")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Opts.RowGroupSize != 100 || tb.Opts.BulkLoadThreshold != 10 {
		t.Fatalf("opts = %+v", tb.Opts)
	}
	if tb.Opts.Columnstore.Tier != storage.Archival {
		t.Fatal("archive tier not applied")
	}
}

func TestErrors(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	bad := []string{
		"SELECT nosuchcol FROM sales",
		"SELECT * FROM nosuchtable",
		"SELECT id FROM sales WHERE region LIKE 5",
		"SELECT region FROM sales GROUP BY sold",                  // region not grouped
		"INSERT INTO sales VALUES (1)",                            // wrong arity
		"CREATE TABLE sales (a BIGINT)",                           // duplicate
		"SELECT id FROM sales UNION ALL SELECT region FROM sales", // type mismatch
		"SELECT FROM sales",
		"SELEC 1",
		"SELECT id FROM sales WHERE",
	}
	for _, q := range bad {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestNullHandlingInWhere(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE n (a BIGINT)")
	mustExec(t, e, "INSERT INTO n VALUES (1), (NULL), (3)")
	res := mustExec(t, e, "SELECT COUNT(*) FROM n WHERE a <> 1")
	if res.Rows[0][0].I != 1 { // NULL <> 1 is NULL, not true
		t.Fatalf("three-valued logic broken: %v", res.Rows[0][0])
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM n WHERE a IS NULL")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("IS NULL broken: %v", res.Rows[0][0])
	}
}

func TestQualifiedStarAndAliases(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	res := mustExec(t, e, "SELECT s.id AS sale_id, c.cname FROM sales AS s JOIN customers AS c ON s.cust = c.cid WHERE s.id = 7")
	if len(res.Rows) != 1 || res.Schema.Cols[0].Name != "sale_id" {
		t.Fatalf("aliased join: %v, %v", res.Rows, res.Schema)
	}
	if res.Rows[0][1].S != "cust7" {
		t.Fatalf("join row = %v", res.Rows[0])
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	res := mustExec(t, e, "SELECT COUNT(*) FROM customers a JOIN customers b ON a.tier = b.tier")
	// 10 gold x 10 gold + 10 silver x 10 silver = 200.
	if res.Rows[0][0].I != 200 {
		t.Fatalf("self join count = %v", res.Rows[0][0])
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	a := mustExec(t, e, "SELECT COUNT(*) FROM sales s, customers c WHERE s.cust = c.cid AND c.tier = 'gold'")
	b := mustExec(t, e, "SELECT COUNT(*) FROM sales s JOIN customers c ON s.cust = c.cid WHERE c.tier = 'gold'")
	if a.Rows[0][0].I != b.Rows[0][0].I {
		t.Fatalf("comma join %v != explicit join %v", a.Rows[0][0], b.Rows[0][0])
	}
}

func TestAntiJoin(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	mustExec(t, e, "CREATE TABLE a (x BIGINT NOT NULL)")
	mustExec(t, e, "CREATE TABLE b (y BIGINT NOT NULL)")
	mustExec(t, e, "INSERT INTO a VALUES (1), (2), (3), (4)")
	mustExec(t, e, "INSERT INTO b VALUES (2), (4)")
	res := mustExec(t, e, "SELECT x FROM a LEFT ANTI JOIN b ON a.x = b.y ORDER BY x")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Fatalf("anti join = %v", res.Rows)
	}
}

func TestRebuild(t *testing.T) {
	e := newEngine(t, plan.Mode2014)
	seed(t, e)
	mustExec(t, e, "DELETE FROM sales WHERE id % 3 = 0")
	mustExec(t, e, "INSERT INTO sales VALUES (5000, 1, 2.0, 'north', DATE '1994-03-01')")
	tb, _ := e.Cat.Get("sales")
	before := tb.Stat()
	if before.DeletedRows == 0 || before.DeltaRows == 0 {
		t.Fatalf("precondition: %+v", before)
	}
	liveBefore := mustExec(t, e, "SELECT COUNT(*), SUM(id) FROM sales").Rows[0]

	mustExec(t, e, "REBUILD sales")
	after := tb.Stat()
	if after.DeletedRows != 0 || after.DeltaRows != 0 {
		t.Fatalf("rebuild left ghosts: %+v", after)
	}
	if after.CompressedRows != tb.Rows() {
		t.Fatalf("compressed %d != live %d", after.CompressedRows, tb.Rows())
	}
	liveAfter := mustExec(t, e, "SELECT COUNT(*), SUM(id) FROM sales").Rows[0]
	if liveBefore.String() != liveAfter.String() {
		t.Fatalf("rebuild changed results: %v vs %v", liveBefore, liveAfter)
	}
	// Rebuild must shrink storage when many rows were deleted.
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("rebuild did not reclaim space: %d >= %d", after.DiskBytes, before.DiskBytes)
	}
}
