package sql

import (
	"math/rand"
	"testing"

	"apollo/internal/exec/batchexec"
	"apollo/internal/metrics"
	"apollo/internal/plan"
)

// Metrics invariant suite: random queries must satisfy conservation laws
// tying the scan counters, per-operator counters, and the process-wide
// metrics registry together. The laws hold for any query and any DOP, so the
// suite reuses the random query generator rather than a fixed list.

func planChildren(n plan.Node) []plan.Node {
	switch x := n.(type) {
	case *plan.Filter:
		return []plan.Node{x.In}
	case *plan.Project:
		return []plan.Node{x.In}
	case *plan.Join:
		return []plan.Node{x.Left, x.Right}
	case *plan.Agg:
		return []plan.Node{x.In}
	case *plan.Sort:
		return []plan.Node{x.In}
	case *plan.Limit:
		return []plan.Node{x.In}
	case *plan.Union:
		return x.Ins
	default:
		return nil
	}
}

func walkPlan(n plan.Node, visit func(plan.Node)) {
	visit(n)
	for _, c := range planChildren(n) {
		walkPlan(c, visit)
	}
}

// splitNodeStats separates a node's own operator instances (Op matches the
// node's lowered name) from auxiliary input-stage replicas registered under
// it (the key/argument projections feeding a parallel aggregation).
func splitNodeStats(c *plan.Compiled, n plan.Node) (own, aux []*batchexec.OpStats) {
	name := c.OpNameByNode[n]
	for _, st := range c.StatsByNode[n] {
		if st.Op == name {
			own = append(own, st)
		} else {
			aux = append(aux, st)
		}
	}
	return own, aux
}

func sumRows(sts []*batchexec.OpStats) int64 {
	var rows int64
	for _, st := range sts {
		rows += st.Rows
	}
	return rows
}

func TestMetricsInvariants(t *testing.T) {
	for _, dop := range []int{1, 8} {
		e := newEngine(t, plan.Mode2014)
		e.PlanOpts.Parallel = dop
		seed(t, e)
		// Deletes, delta rows, and updated rows so scans cross every path.
		mustExec(t, e, "DELETE FROM sales WHERE id % 17 = 3")
		mustExec(t, e, "INSERT INTO sales VALUES (2001, 3, 7.25, 'north', DATE '1994-02-01'), (2002, 4, NULL, 'east', DATE '1994-02-02')")
		mustExec(t, e, "UPDATE sales SET amount = amount + 5 WHERE id % 31 = 1")

		rng := rand.New(rand.NewSource(20260806 + int64(dop)))
		for q := 0; q < 60; q++ {
			sqlText := randomQuery(rng)
			before := metrics.Default.Snapshot()
			res, err := e.Exec(sqlText)
			if err != nil {
				t.Fatalf("dop%d: %q: %v", dop, sqlText, err)
			}
			after := metrics.Default.Snapshot()
			c := res.Compiled
			if c == nil || !c.BatchMode || c.MetadataOnly {
				// Metadata-only shortcuts never open a scan; nothing to check.
				continue
			}
			checkQueryInvariants(t, dop, sqlText, c, int64(len(res.Rows)), before, after)
		}
	}
}

func checkQueryInvariants(t *testing.T, dop int, sqlText string, c *plan.Compiled, resultRows int64, before, after map[string]float64) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("dop%d: %q: "+format, append([]any{dop, sqlText}, args...)...)
	}

	var totalGroups, totalScanOut int64
	walkPlan(c.Plan, func(n plan.Node) {
		own, aux := splitNodeStats(c, n)

		if s, ok := n.(*plan.Scan); ok {
			st := c.ScanStatsByNode[s]
			if st == nil {
				fail("scan node has no ScanStats")
				return
			}
			// Segment elimination partitions the row groups.
			if st.Groups != st.GroupsScanned+st.GroupsEliminated {
				fail("groups %d != scanned %d + eliminated %d", st.Groups, st.GroupsScanned, st.GroupsEliminated)
			}
			// Pushdown only ever narrows: considered − deleted ≥ after-range ≥ after-bloom.
			if st.RowsAfterRange > st.RowsConsidered-st.RowsDeleted {
				fail("after_range %d > considered %d - deleted %d", st.RowsAfterRange, st.RowsConsidered, st.RowsDeleted)
			}
			if st.RowsAfterBloom > st.RowsAfterRange {
				fail("after_bloom %d > after_range %d", st.RowsAfterBloom, st.RowsAfterRange)
			}
			// Conservation on the group side: rows surviving pushdown either
			// fail the residual predicate or are emitted.
			if st.RowsAfterBloom-st.RowsResidual != st.RowsOutput-st.DeltaRowsOutput {
				fail("after_bloom %d - residual %d != output %d - delta_output %d",
					st.RowsAfterBloom, st.RowsResidual, st.RowsOutput, st.DeltaRowsOutput)
			}
			if st.DeltaRowsOutput > st.DeltaRows {
				fail("delta output %d > delta scanned %d", st.DeltaRowsOutput, st.DeltaRows)
			}
			// The scan's guard counted exactly what the scan says it emitted.
			if got := sumRows(own); got != st.RowsOutput {
				fail("scan guard rows %d != ScanStats.RowsOutput %d", got, st.RowsOutput)
			}
			totalGroups += st.Groups
			totalScanOut += st.RowsOutput
		}

		// Exchange law: the input-stage replicas under a node (parallel
		// partial aggregation) together consume every row the child node
		// produced — each batch is routed to exactly one worker.
		if len(aux) > 0 {
			kids := planChildren(n)
			if len(kids) == 1 {
				childOwn, _ := splitNodeStats(c, kids[0])
				if got, want := sumRows(aux), sumRows(childOwn); got != want {
					fail("input-stage rows %d != child output rows %d (%d replicas)", got, want, len(aux))
				}
			}
		}
	})

	// The root operator's guard counted the rows the query returned.
	rootOwn, _ := splitNodeStats(c, c.Plan)
	if got := sumRows(rootOwn); got != resultRows {
		fail("root operator rows %d != result rows %d", got, resultRows)
	}

	// Registry conservation: the process-wide counters moved by exactly what
	// this query's scans report (tests run queries one at a time).
	delta := func(name string) int64 { return int64(after[name] - before[name]) }
	if got := delta("apollo_scan_rows_output_total"); got != totalScanOut {
		fail("registry scan-rows-output delta %d != per-query total %d", got, totalScanOut)
	}
	if got := delta("apollo_scan_row_groups_total"); got != totalGroups {
		fail("registry row-groups delta %d != per-query total %d", got, totalGroups)
	}
}
