package sql

import (
	"context"
	"fmt"
	"sync"

	"apollo/internal/expr"
	"apollo/internal/plan"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
	"apollo/internal/txn"
)

// Prepared is a parameterized statement compiled once and executed many
// times. SELECTs keep their compiled plan and re-point its scans at a fresh
// snapshot per execution (plan.Compiled.Rebind); DML re-binds its (trivial)
// row predicates per execution against the shared parameter cells. A
// Prepared serializes its executions internally, so it may be shared, but
// the usual discipline is one per session.
type Prepared struct {
	e   *Engine
	src string
	st  Statement
	bag *ParamBag

	compiled *plan.Compiled // SELECT only

	mu sync.Mutex // one execution at a time: parameter cells and operator state
}

// Prepare parses, binds, and (for SELECTs) compiles a statement that may
// contain `?` placeholders. Binding errors surface here, not at execution.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	if e.closed.Load() {
		return nil, txn.ErrClosed
	}
	st, n, err := ParseWithParams(src)
	if err != nil {
		return nil, err
	}
	p := &Prepared{e: e, src: src, st: st, bag: NewParamBag(n)}
	switch x := st.(type) {
	case *Select:
		// Reusable compilation: scans record rebind hooks, metadata-only
		// shortcuts are disabled (they bake compile-time data into the plan).
		c, err := e.compileReusable(x, p.bag)
		if err != nil {
			return nil, err
		}
		p.compiled = c
	case *Insert:
		// Dry bind: validates arity/expressions and fixes each placeholder's
		// type from its target column, so BindArgs coerces correctly.
		t, err := e.Cat.Get(x.Table)
		if err != nil {
			return nil, err
		}
		for _, rx := range x.Rows {
			if _, err := e.evalLiteralRow(t, rx, p.bag); err != nil {
				return nil, err
			}
		}
	case *Delete:
		t, err := e.Cat.Get(x.Table)
		if err != nil {
			return nil, err
		}
		if _, err := e.bindRowPred(t, x.Where, p.bag); err != nil {
			return nil, err
		}
	case *Update:
		t, err := e.Cat.Get(x.Table)
		if err != nil {
			return nil, err
		}
		if _, err := e.bindRowPred(t, x.Where, p.bag); err != nil {
			return nil, err
		}
		if _, _, err := e.bindSetClauses(t, x, p.bag); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sql: cannot prepare %T (SELECT, INSERT, UPDATE, DELETE only)", st)
	}
	return p, nil
}

func (e *Engine) compileReusable(s *Select, bag *ParamBag) (*plan.Compiled, error) {
	b := &Binder{Tables: e.Cat, Params: bag}
	node, err := b.BindSelect(s)
	if err != nil {
		return nil, err
	}
	e.statsOnce.Do(func() { e.statsCache = plan.NewStatsCache() })
	opts := e.PlanOpts
	if opts.StatsCache == nil {
		opts.StatsCache = e.statsCache
	}
	opts.View = table.ReadView{}
	opts.Reusable = true
	return plan.Compile(node, opts)
}

// NumParams returns the placeholder count.
func (p *Prepared) NumParams() int { return p.bag.Len() }

// Source returns the statement text the Prepared was built from.
func (p *Prepared) Source() string { return p.src }

// Exec executes the prepared statement in autocommit under a background
// context.
func (p *Prepared) Exec(args ...sqltypes.Value) (*Result, error) {
	return p.ExecContext(context.Background(), args...)
}

// ExecContext executes the prepared statement in autocommit.
func (p *Prepared) ExecContext(ctx context.Context, args ...sqltypes.Value) (*Result, error) {
	return p.exec(ctx, nil, args)
}

// ExecPrepared executes a prepared statement inside the session's open
// transaction, if any (same transaction semantics as ExecStmtContext).
func (s *Session) ExecPrepared(ctx context.Context, p *Prepared, args ...sqltypes.Value) (*Result, error) {
	if p.e != s.e {
		return nil, fmt.Errorf("sql: prepared statement belongs to a different database")
	}
	if s.tx != nil && s.tx.Done() {
		s.tx = nil
		return nil, txn.ErrClosed
	}
	res, err := p.exec(ctx, s.tx, args)
	s.noteDMLErr(ctx, err)
	return res, err
}

// StreamPrepared is ExecPrepared with a row sink: a prepared SELECT's rows
// are delivered to sink as they are produced (the returned Result has no
// Rows); any other prepared statement executes as ExecPrepared and sink is
// never called. This is the serving path for parameterized queries.
func (s *Session) StreamPrepared(ctx context.Context, p *Prepared, sink RowSink, args ...sqltypes.Value) (*Result, error) {
	if p.e != s.e {
		return nil, fmt.Errorf("sql: prepared statement belongs to a different database")
	}
	if s.tx != nil && s.tx.Done() {
		s.tx = nil
		return nil, txn.ErrClosed
	}
	res, err := p.stream(ctx, s.tx, sink, args)
	s.noteDMLErr(ctx, err)
	return res, err
}

// StreamContext executes the prepared statement in autocommit, streaming a
// SELECT's rows to sink (see Session.StreamPrepared).
func (p *Prepared) StreamContext(ctx context.Context, sink RowSink, args ...sqltypes.Value) (*Result, error) {
	return p.stream(ctx, nil, sink, args)
}

// stream is exec with a row sink for SELECTs.
func (p *Prepared) stream(ctx context.Context, tx *txn.Txn, sink RowSink, args []sqltypes.Value) (*Result, error) {
	if _, ok := p.st.(*Select); !ok {
		return p.exec(ctx, tx, args)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.e.closed.Load() {
		return nil, txn.ErrClosed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.bag.BindArgs(args); err != nil {
		return nil, err
	}
	view, release := p.e.queryView(tx)
	defer release()
	p.compiled.Rebind(view)
	if err := sink.Schema(p.compiled.Schema); err != nil {
		return nil, err
	}
	if err := p.compiled.StreamContext(ctx, sink.Row); err != nil {
		return nil, err
	}
	return &Result{Schema: p.compiled.Schema, Compiled: p.compiled}, nil
}

// exec serializes executions: the parameter cells and the compiled operator
// tree hold per-execution state.
// checkWrite gates a prepared DML execution behind the DB's durability
// health, same as the ad-hoc statement path.
func (p *Prepared) checkWrite() error {
	if p.e.State != nil {
		return p.e.State.CheckWrite()
	}
	return nil
}

func (p *Prepared) exec(ctx context.Context, tx *txn.Txn, args []sqltypes.Value) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.e.closed.Load() {
		return nil, txn.ErrClosed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.bag.BindArgs(args); err != nil {
		return nil, err
	}
	switch x := p.st.(type) {
	case *Select:
		view, release := p.e.queryView(tx)
		defer release()
		p.compiled.Rebind(view)
		rows, err := p.compiled.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: p.compiled.Schema, Rows: rows, Compiled: p.compiled}, nil
	case *Insert:
		if err := p.checkWrite(); err != nil {
			return nil, err
		}
		return p.e.observed(p.e.insert(x, tx, p.bag))
	case *Delete:
		if err := p.checkWrite(); err != nil {
			return nil, err
		}
		return p.e.observed(p.e.delete(x, tx, p.bag))
	case *Update:
		if err := p.checkWrite(); err != nil {
			return nil, err
		}
		return p.e.observed(p.e.update(x, tx, p.bag))
	default:
		return nil, fmt.Errorf("sql: cannot execute prepared %T", p.st)
	}
}

// bindSetClauses binds an UPDATE's SET expressions, fixing placeholder types
// from their target columns. Returned cols are schema indexes; setters
// evaluate and coerce one assignment each.
func (e *Engine) bindSetClauses(t *table.Table, u *Update, bag *ParamBag) ([]int, []func(sqltypes.Row) sqltypes.Value, error) {
	b := &Binder{Tables: e.Cat, Params: bag}
	sc := tableScope(u.Table, t)
	cols := make([]int, len(u.Cols))
	bound := make([]func(sqltypes.Row) sqltypes.Value, len(u.Cols))
	for i, name := range u.Cols {
		idx := t.Schema.ColIndex(name)
		if idx < 0 {
			return nil, nil, fmt.Errorf("sql: unknown column %q in UPDATE", name)
		}
		cols[i] = idx
		be, err := b.bindExpr(u.Exprs[i], sc)
		if err != nil {
			return nil, nil, err
		}
		typ := t.Schema.Cols[idx].Typ
		if prm, ok := be.(*expr.Param); ok {
			prm.SetType(typ)
		}
		bound[i] = func(r sqltypes.Row) sqltypes.Value { return coerceLit(be.Eval(r), typ) }
	}
	return cols, bound, nil
}
