package sql

import (
	"apollo/internal/exec"
	"apollo/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (cols...) [WITH (options)].
type CreateTable struct {
	Name string
	Cols []sqltypes.Column
	// Options from the WITH clause.
	RowGroupSize  int  // ROWGROUP_SIZE = n
	BulkThreshold int  // BULK_THRESHOLD = n
	Archive       bool // ARCHIVE
	NoReorder     bool // NOREORDER
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr // literal expressions per row
}

// Delete is DELETE FROM name [WHERE pred].
type Delete struct {
	Table string
	Where Expr
}

// Update is UPDATE name SET col = expr, ... [WHERE pred].
type Update struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// Reorganize is REORGANIZE name: force-close the open delta store and run
// the tuple mover to completion (ALTER INDEX ... REORGANIZE in the paper).
type Reorganize struct{ Table string }

// Rebuild is REBUILD name: recompress the table, physically removing deleted
// rows and folding delta rows into row groups (ALTER INDEX ... REBUILD).
type Rebuild struct{ Table string }

// ShowStats is SHOW STATS [FOR] name: report the optimizer's statistics
// snapshot for one table (one row per column), refreshing it first if stale.
type ShowStats struct{ Table string }

// Copy is COPY table FROM 'path' [WITH (options)]: the bulk-load statement.
// Batches at or above the table's bulk threshold compress directly into row
// groups; smaller remainders fall back to batched delta inserts. Options:
// format ('csv' default, or 'binary'), header, delimiter ','), batch_rows=N
// (pin the batch size; default adaptive), max_dead_letters=N.
type Copy struct {
	Table          string
	Path           string
	Format         string
	Header         bool
	Delim          rune
	BatchRows      int
	MaxDeadLetters int // 0 = loader default, <0 = none tolerated
}

// Begin is BEGIN [TRANSACTION]: start a snapshot-isolation transaction.
type Begin struct{}

// Commit is COMMIT [TRANSACTION].
type Commit struct{}

// Rollback is ROLLBACK [TRANSACTION].
type Rollback struct{}

// Explain wraps a SELECT. With Analyze set (EXPLAIN ANALYZE) the query is
// executed and the rendered tree carries per-operator execution counters.
type Explain struct {
	Query   *Select
	Analyze bool
}

// Select is a SELECT statement (possibly a UNION ALL chain).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem // joined left-deep in order
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int
	// UnionAll chains additional SELECTs with identical shapes.
	UnionAll []*Select
}

// SelectItem is one output expression (or * when Star).
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// FromItem is a table reference with an optional join clause. The first item
// has JoinKind Inner and On nil (it seeds the tree).
type FromItem struct {
	Table    string
	Alias    string
	JoinKind exec.JoinType
	On       Expr // nil for comma joins (predicate lives in WHERE)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Delete) stmt()      {}
func (*Update) stmt()      {}
func (*Reorganize) stmt()  {}
func (*Rebuild) stmt()     {}
func (*ShowStats) stmt()   {}
func (*Copy) stmt()        {}
func (*Explain) stmt()     {}
func (*Select) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}

// Expr is a parsed (unbound) expression.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ Val sqltypes.Value }

// Param is a `?` prepared-statement placeholder. Idx is its 1-based position
// in statement order.
type Param struct{ Idx int }

// Col is a column reference, optionally qualified.
type Col struct{ Qual, Name string }

// Bin is a binary operation: comparison, logic, or arithmetic.
type Bin struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/", "%"
	L, R Expr
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op string // "NOT", "-"
	E  Expr
}

// IsNullX is expr IS [NOT] NULL.
type IsNullX struct {
	E      Expr
	Negate bool
}

// InX is expr [NOT] IN (literals...).
type InX struct {
	E      Expr
	Vals   []Expr
	Negate bool
}

// LikeX is expr [NOT] LIKE 'pattern'.
type LikeX struct {
	E       Expr
	Pattern string
	Negate  bool
}

// BetweenX is expr [NOT] BETWEEN lo AND hi.
type BetweenX struct {
	E, Lo, Hi Expr
	Negate    bool
}

// Call is a function call: aggregates (COUNT/SUM/AVG/MIN/MAX, with optional
// DISTINCT and COUNT(*)) and date parts (YEAR/MONTH/DAY).
type Call struct {
	Name     string // upper case
	Star     bool   // COUNT(*)
	Distinct bool
	Arg      Expr
}

func (*Lit) expr()      {}
func (*Param) expr()    {}
func (*Col) expr()      {}
func (*Bin) expr()      {}
func (*Unary) expr()    {}
func (*IsNullX) expr()  {}
func (*InX) expr()      {}
func (*LikeX) expr()    {}
func (*BetweenX) expr() {}
func (*Call) expr()     {}
