// Package bloom implements the bitmap filters of the paper's §5: during the
// build side of a hash join, the join keys are summarized into a Bloom
// filter that is pushed down to the probe side's columnstore scan, so rows
// that cannot join are disqualified before they reach the join operator —
// often while still in encoded form.
package bloom

import (
	"math"
	"math/bits"

	"apollo/internal/sqltypes"
)

// Filter is a Bloom filter over 64-bit hashes with two derived probes per
// element. The zero value is not usable; call New.
type Filter struct {
	words []uint64
	mask  uint64 // bit-index mask (len(words)*64 - 1, power of two)
	n     int    // elements added
}

// DefaultBitsPerKey trades ~3% false positives for 10 bits per build key.
const DefaultBitsPerKey = 10

// New sizes a filter for the expected number of keys at bitsPerKey bits each
// (rounded up to a power-of-two bit count, minimum 1024 bits).
func New(expectedKeys, bitsPerKey int) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = DefaultBitsPerKey
	}
	nbits := expectedKeys * bitsPerKey
	if nbits < 1024 {
		nbits = 1024
	}
	// Round up to a power of two for mask-based indexing.
	nbits = 1 << bits.Len(uint(nbits-1))
	return &Filter{words: make([]uint64, nbits/64), mask: uint64(nbits - 1)}
}

// probes derives two bit positions from one hash.
func (f *Filter) probes(h uint64) (uint64, uint64) {
	h2 := (h >> 33) | (h << 31) | 1
	return h & f.mask, (h + h2) & f.mask
}

// AddHash inserts a pre-hashed key.
func (f *Filter) AddHash(h uint64) {
	p1, p2 := f.probes(h)
	f.words[p1/64] |= 1 << (p1 % 64)
	f.words[p2/64] |= 1 << (p2 % 64)
	f.n++
}

// Add inserts a value.
func (f *Filter) Add(v sqltypes.Value) { f.AddHash(HashValue(v)) }

// AddInt inserts an integer-family value (fast path).
func (f *Filter) AddInt(v int64) { f.AddHash(splitmix64(uint64(v))) }

// MayContainHash reports whether a pre-hashed key may be present. False
// means definitely absent.
func (f *Filter) MayContainHash(h uint64) bool {
	p1, p2 := f.probes(h)
	return f.words[p1/64]&(1<<(p1%64)) != 0 && f.words[p2/64]&(1<<(p2%64)) != 0
}

// MayContain reports whether a value may be present.
func (f *Filter) MayContain(v sqltypes.Value) bool { return f.MayContainHash(HashValue(v)) }

// MayContainInt reports whether an integer-family value may be present.
func (f *Filter) MayContainInt(v int64) bool { return f.MayContainHash(splitmix64(uint64(v))) }

// HashValue is the filter's value hash: values that compare equal hash
// identically (integers and integral floats share a hash), and it is much
// cheaper than a general byte-stream hash for the numeric join keys that
// dominate star schemas. Filters are self-consistent: the same function runs
// on the build (Add) and probe (MayContain) sides.
func HashValue(v sqltypes.Value) uint64 {
	if v.Null {
		return 0x9E3779B97F4A7C15
	}
	switch v.Typ {
	case sqltypes.String:
		var h uint64 = 14695981039346656037
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * 1099511628211
		}
		return splitmix64(h)
	case sqltypes.Float64:
		f := v.F
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			return splitmix64(uint64(int64(f)))
		}
		return splitmix64(math.Float64bits(f) | 1<<63>>1)
	default:
		return splitmix64(uint64(v.I))
	}
}

// splitmix64 is a strong, cheap 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Len returns the number of keys added.
func (f *Filter) Len() int { return f.n }

// SizeBytes reports the filter's bit-array size.
func (f *Filter) SizeBytes() int { return 8 * len(f.words) }

// FillRatio reports the fraction of set bits (diagnostics: filters past ~50%
// are saturated and stop being selective).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.words {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(f.words)*64)
}
