package bloom

import (
	"testing"

	"apollo/internal/sqltypes"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, DefaultBitsPerKey)
	for i := int64(0); i < 10000; i++ {
		f.Add(sqltypes.NewInt(i))
	}
	if f.Len() != 10000 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i := int64(0); i < 10000; i++ {
		if !f.MayContain(sqltypes.NewInt(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, DefaultBitsPerKey)
	for i := int64(0); i < 10000; i++ {
		f.Add(sqltypes.NewInt(i))
	}
	fp := 0
	const trials = 20000
	for i := int64(0); i < trials; i++ {
		if f.MayContain(sqltypes.NewInt(1_000_000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.10 {
		t.Fatalf("false positive rate too high: %.3f (fill %.2f)", rate, f.FillRatio())
	}
}

func TestStringsAndMixedTypes(t *testing.T) {
	f := New(100, DefaultBitsPerKey)
	f.Add(sqltypes.NewString("hello"))
	f.Add(sqltypes.NewInt(42))
	if !f.MayContain(sqltypes.NewString("hello")) {
		t.Fatal("false negative for string")
	}
	// Int and integral float hash identically (join key semantics).
	if !f.MayContain(sqltypes.NewFloat(42.0)) {
		t.Fatal("numeric family hash mismatch")
	}
}

func TestTinyAndDegenerateSizes(t *testing.T) {
	f := New(0, 0)
	f.Add(sqltypes.NewInt(1))
	if !f.MayContain(sqltypes.NewInt(1)) {
		t.Fatal("tiny filter broken")
	}
	if f.SizeBytes() < 128 {
		t.Fatalf("minimum size not enforced: %d", f.SizeBytes())
	}
}

func TestFillRatio(t *testing.T) {
	f := New(1000, DefaultBitsPerKey)
	if f.FillRatio() != 0 {
		t.Fatal("fresh filter not empty")
	}
	for i := int64(0); i < 1000; i++ {
		f.AddHash(uint64(i) * 0x9E3779B97F4A7C15)
	}
	r := f.FillRatio()
	if r <= 0 || r > 0.5 {
		t.Fatalf("fill ratio out of range: %f", r)
	}
}
