// Package delta implements the row-organized side of an updatable clustered
// columnstore (§4): delta stores — B-tree row stores that absorb trickle
// inserts until they are large enough to compress — and the delete bitmap
// that marks rows of compressed row groups as logically deleted. A delta
// store being drained by the tuple mover keeps accepting deletes through a
// delete buffer that is applied to the new compressed row group afterwards.
package delta

import (
	"fmt"

	"apollo/internal/btree"
	"apollo/internal/sqltypes"
)

// State is the lifecycle state of a delta store.
type State uint8

// Delta store states, following the row-group lifecycle of §4.1.
const (
	Open   State = iota // accepting inserts
	Closed              // full; waiting for the tuple mover
	Moving              // being compressed; deletes go to the delete buffer
)

func (s State) String() string {
	switch s {
	case Open:
		return "OPEN"
	case Closed:
		return "CLOSED"
	default:
		return "MOVING"
	}
}

// BufferedDelete is one delete recorded while a store is Moving. End carries
// the deleted row's end field: zero for a settled delete, a commit timestamp
// for a committed-but-unsettled one, a TxnBit-tagged id for a provisional
// one. The tuple mover only publishes once every buffered End is settled
// below the snapshot horizon, so published delete-bitmap entries never need
// versions.
type BufferedDelete struct {
	Key uint64
	End uint64
}

// Store is one delta store: rows keyed by a monotonically increasing tuple
// key. It is not internally synchronized; the table layer serializes access.
type Store struct {
	ID      int
	Schema  *sqltypes.Schema
	tree    *btree.Tree
	nextKey uint64
	state   State

	// vers holds the begin/end version fields of rows that are not settled:
	// provisionally written, committed above the snapshot horizon, or
	// tombstoned awaiting purge. Rows absent from it are settled live.
	vers map[uint64]RowVersion

	// deleteBuffer records keys deleted while the store is Moving; the tuple
	// mover translates them into delete-bitmap entries on the new row group.
	deleteBuffer []BufferedDelete
}

// NewStore creates an empty, open delta store.
func NewStore(id int, schema *sqltypes.Schema) *Store {
	return &Store{ID: id, Schema: schema, tree: btree.New(), state: Open}
}

// State returns the store's lifecycle state.
func (s *Store) State() State { return s.state }

// Close transitions Open -> Closed (no more inserts).
func (s *Store) Close() {
	if s.state == Open {
		s.state = Closed
	}
}

// BeginMove transitions Closed -> Moving and returns the rows to compress in
// ascending key order alongside their keys.
func (s *Store) BeginMove() (keys []uint64, rows []sqltypes.Row, err error) {
	if s.state != Closed {
		return nil, nil, fmt.Errorf("delta: BeginMove on %v store", s.state)
	}
	if len(s.vers) > 0 {
		// Compressed row groups carry no per-row versions, so a store can
		// only move once every row in it is settled (purged below the
		// oldest active snapshot). The tuple mover checks this and retries.
		return nil, nil, fmt.Errorf("delta: BeginMove on store with %d unsettled row versions", len(s.vers))
	}
	s.state = Moving
	s.deleteBuffer = s.deleteBuffer[:0]
	keys = make([]uint64, 0, s.tree.Len())
	rows = make([]sqltypes.Row, 0, s.tree.Len())
	s.tree.AscendAll(func(k uint64, v []byte) bool {
		row, _, derr := sqltypes.DecodeRow(v, s.Schema)
		if derr != nil {
			err = derr
			return false
		}
		keys = append(keys, k)
		rows = append(rows, row)
		return true
	})
	if err != nil {
		s.state = Closed // leave the store retriable
		return nil, nil, fmt.Errorf("delta: decode during move: %w", err)
	}
	return keys, rows, nil
}

// AbortMove transitions Moving -> Closed after a failed compression so the
// tuple mover can retry the store later. Deletes that arrived while Moving
// were already applied to the tree, so a retry's BeginMove sees the current
// row set; the delete buffer is discarded (BeginMove resets it anyway).
func (s *Store) AbortMove() {
	if s.state == Moving {
		s.state = Closed
	}
}

// DrainDeleteBuffer returns deletes recorded while Moving and resets the
// buffer.
func (s *Store) DrainDeleteBuffer() []BufferedDelete {
	out := append([]BufferedDelete(nil), s.deleteBuffer...)
	s.deleteBuffer = s.deleteBuffer[:0]
	return out
}

// PeekDeleteBuffer returns the buffered deletes without draining them.
func (s *Store) PeekDeleteBuffer() []BufferedDelete { return s.deleteBuffer }

// Insert appends a row and returns its key. Only Open stores accept inserts.
func (s *Store) Insert(row sqltypes.Row) (uint64, error) {
	if s.state != Open {
		return 0, fmt.Errorf("delta: insert into %v store", s.state)
	}
	key := s.nextKey
	s.nextKey++
	s.tree.Put(key, sqltypes.EncodeRow(nil, s.Schema, row))
	return key, nil
}

// Delete physically removes the row with the given key, reporting whether it
// existed. This is the settled path (recovery replay and version-free
// fast paths); snapshot-respecting deletes go through MarkDeleted. Deletes
// against a Moving store are also recorded in the delete buffer so the tuple
// mover can replay them onto the compressed row group.
func (s *Store) Delete(key uint64) bool {
	ok := s.tree.Delete(key)
	if ok {
		delete(s.vers, key)
		if s.state == Moving {
			s.deleteBuffer = append(s.deleteBuffer, BufferedDelete{Key: key})
		}
	}
	return ok
}

// Get returns the row with the given key.
func (s *Store) Get(key uint64) (sqltypes.Row, bool) {
	v, ok := s.tree.Get(key)
	if !ok {
		return nil, false
	}
	row, _, err := sqltypes.DecodeRow(v, s.Schema)
	if err != nil {
		return nil, false
	}
	return row, true
}

// Scan calls fn for each (key, row) in ascending key order; fn returning
// false stops the scan.
func (s *Store) Scan(fn func(key uint64, row sqltypes.Row) bool) error {
	var err error
	s.tree.AscendAll(func(k uint64, v []byte) bool {
		row, _, derr := sqltypes.DecodeRow(v, s.Schema)
		if derr != nil {
			err = derr
			return false
		}
		return fn(k, row)
	})
	return err
}

// Rows returns the number of live rows.
func (s *Store) Rows() int { return s.tree.Len() }

// MemBytes roughly estimates the store's in-memory footprint.
func (s *Store) MemBytes() int {
	// Encoded rows dominate; keys add 8 bytes each.
	total := 0
	s.tree.AscendAll(func(_ uint64, v []byte) bool {
		total += len(v) + 8
		return true
	})
	return total
}
