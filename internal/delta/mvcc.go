package delta

import (
	"errors"

	"apollo/internal/bits"
	"apollo/internal/sqltypes"
)

// Multiversioning (Hekaton-style, Larson et al.): every delta-store row and
// delete-bitmap entry carries begin/end fields that are either a commit
// timestamp or a provisional transaction id (high bit set). A version field
// of zero is "settled": the row was created (or never deleted) before every
// active snapshot, so readers need no check. The table layer settles
// versions lazily once they fall below the oldest active snapshot, keeping
// the version map sparse — a quiesced store carries no version state at all,
// which is also the tuple mover's precondition for compressing it.

// TxnBit marks a begin/end field as a provisional transaction id rather than
// a commit timestamp. Commit timestamps are small monotonic integers, so the
// high bit cleanly separates the two spaces.
const TxnBit = uint64(1) << 63

// MaxTS is the largest commit timestamp; a snapshot at MaxTS sees every
// committed version.
const MaxTS = TxnBit - 1

// ErrWriteConflict is the typed, retryable error for a write-write conflict:
// two transactions tried to delete or update the same row, or an autocommit
// statement targeted a row a still-pending transaction already wrote.
// Apollo resolves conflicts eagerly (first writer wins); the loser should
// roll back and retry against a fresh snapshot.
var ErrWriteConflict = errors.New("write-write conflict (retry the transaction)")

// RowVersion is the begin/end pair of one delta-store row. Begin zero means
// the row is settled-visible; End zero means not deleted. A nonzero field
// holds either a commit timestamp or, with TxnBit set, the id of the
// transaction that provisionally wrote it.
type RowVersion struct {
	Begin uint64
	End   uint64
}

// VisibleAt reports whether a row with this version is visible to a snapshot
// at asOf taken by transaction self (zero for autocommit readers): its begin
// must be committed at or before asOf or owned by self, and its end must not
// be.
func (v RowVersion) VisibleAt(asOf, self uint64) bool {
	if v.Begin != 0 {
		if v.Begin&TxnBit != 0 {
			if v.Begin != self {
				return false
			}
		} else if v.Begin > asOf {
			return false
		}
	}
	if v.End != 0 {
		if v.End&TxnBit != 0 {
			if v.End == self {
				return false
			}
		} else if v.End <= asOf {
			return false
		}
	}
	return true
}

// Settled reports whether the version carries no constraint a reader at or
// above horizon could observe: a committed begin at or below horizon and no
// deletion. Such entries can be dropped from the version map.
func (v RowVersion) settledBelow(horizon uint64) bool {
	return v.Begin&TxnBit == 0 && v.Begin <= horizon && v.End == 0
}

// MarkStatus is the outcome of a versioned delete attempt.
type MarkStatus uint8

const (
	// MarkOK: the delete was recorded.
	MarkOK MarkStatus = iota
	// MarkNotFound: the row is already deleted from the caller's own point
	// of view (its own earlier delete, or a delete invisible to it); skip.
	MarkNotFound
	// MarkConflict: another transaction deleted the row — either still
	// pending, or committed after the caller's snapshot. First writer wins.
	MarkConflict
)

// Version returns the row's version entry; a zero RowVersion means settled
// live.
func (s *Store) Version(key uint64) RowVersion {
	return s.vers[key]
}

// setVersion stores v for key, allocating the sparse map on first use.
func (s *Store) setVersion(key uint64, v RowVersion) {
	if s.vers == nil {
		s.vers = make(map[uint64]RowVersion)
	}
	s.vers[key] = v
}

// InsertEncodedAt appends an already-encoded row whose begin field is begin:
// zero for a settled autocommit insert (no concurrent snapshots), a commit
// timestamp for an autocommit insert that concurrent snapshots must not see,
// or a TxnBit-tagged transaction id for a provisional insert. The slice is
// retained; callers must not reuse it.
func (s *Store) InsertEncodedAt(encoded []byte, begin uint64) (uint64, error) {
	key, err := s.InsertEncoded(encoded)
	if err != nil {
		return 0, err
	}
	if begin != 0 {
		s.setVersion(key, RowVersion{Begin: begin})
	}
	return key, nil
}

// MarkDeleted deletes the row at key on behalf of self (a TxnBit-tagged
// transaction id, or zero for autocommit) reading at snapshot asOf. end is
// what the row's end field becomes: zero physically removes the row at once
// (autocommit with no active snapshots), a commit timestamp leaves a
// tombstone for Purge to collect, a transaction id leaves a provisional mark
// that commit or abort resolves. A row deleted at or before asOf is simply
// not found; a row another transaction wrote after asOf (or holds pending)
// is a conflict — first writer wins.
func (s *Store) MarkDeleted(key, end, self, asOf uint64) MarkStatus {
	if st := s.CheckDelete(key, self, asOf); st != MarkOK {
		return st
	}
	v := s.vers[key]
	if end == 0 {
		s.tree.Delete(key)
		delete(s.vers, key)
		if s.state == Moving {
			s.deleteBuffer = append(s.deleteBuffer, BufferedDelete{Key: key})
		}
		return MarkOK
	}
	v.End = end
	s.setVersion(key, v)
	if s.state == Moving {
		s.deleteBuffer = append(s.deleteBuffer, BufferedDelete{Key: key, End: end})
	}
	return MarkOK
}

// CheckDelete is the non-mutating probe behind MarkDeleted: the table layer
// validates a delete (and logs its WAL record) before applying the mark, all
// under the table lock, so a WAL append failure never leaves an applied but
// unlogged delete and a conflict never leaves a logged but unapplied one.
func (s *Store) CheckDelete(key, self, asOf uint64) MarkStatus {
	if _, ok := s.tree.Get(key); !ok {
		return MarkNotFound
	}
	v := s.vers[key]
	if v.End != 0 {
		if v.End == self {
			return MarkNotFound
		}
		if v.End&TxnBit != 0 {
			return MarkConflict // pending delete by another transaction
		}
		if v.End <= asOf {
			return MarkNotFound // deleted before my snapshot; nothing to do
		}
		return MarkConflict // deleted after my snapshot
	}
	if v.Begin != 0 {
		if v.Begin&TxnBit != 0 && v.Begin != self {
			return MarkConflict // uncommitted insert by another transaction
		}
		if v.Begin&TxnBit == 0 && v.Begin > asOf {
			return MarkConflict // inserted after my snapshot
		}
	}
	return MarkOK
}

// CommitInsert flips a provisional insert to committed at cts.
func (s *Store) CommitInsert(key, cts uint64) {
	v, ok := s.vers[key]
	if !ok || v.Begin&TxnBit == 0 {
		return
	}
	v.Begin = cts
	s.setVersion(key, v)
}

// CommitDelete flips a provisional delete to committed at cts, updating any
// buffered copy the tuple mover holds.
func (s *Store) CommitDelete(key, cts uint64) {
	v, ok := s.vers[key]
	if !ok || v.End&TxnBit == 0 {
		return
	}
	v.End = cts
	s.setVersion(key, v)
	s.resolveBuffered(key, cts, false)
}

// AbortInsert removes a provisional insert entirely.
func (s *Store) AbortInsert(key uint64) {
	v, ok := s.vers[key]
	if !ok || v.Begin&TxnBit == 0 {
		return
	}
	s.tree.Delete(key)
	delete(s.vers, key)
}

// AbortDelete clears a provisional delete, resurrecting the row for its
// owner's peers and dropping any buffered copy the tuple mover holds.
func (s *Store) AbortDelete(key uint64) {
	v, ok := s.vers[key]
	if !ok || v.End&TxnBit == 0 {
		return
	}
	v.End = 0
	if v.Begin == 0 {
		delete(s.vers, key)
	} else {
		s.setVersion(key, v)
	}
	s.resolveBuffered(key, 0, true)
}

// resolveBuffered updates (or drops) the Moving-store delete-buffer entry
// for key when its owning transaction resolves.
func (s *Store) resolveBuffered(key, newEnd uint64, drop bool) {
	if s.state != Moving {
		return
	}
	for i := range s.deleteBuffer {
		if s.deleteBuffer[i].Key == key {
			if drop {
				s.deleteBuffer = append(s.deleteBuffer[:i], s.deleteBuffer[i+1:]...)
			} else {
				s.deleteBuffer[i].End = newEnd
			}
			return
		}
	}
}

// Purge physically collects version state that no snapshot at or above
// horizon can distinguish: committed tombstones at or below horizon lose
// their rows, committed-live entries at or below horizon lose their map
// entries. Provisional state and anything above horizon is kept. Returns the
// number of rows removed.
func (s *Store) Purge(horizon uint64) int {
	if len(s.vers) == 0 {
		return 0
	}
	removed := 0
	for key, v := range s.vers {
		if v.End != 0 && v.End&TxnBit == 0 && v.End <= horizon {
			s.tree.Delete(key)
			delete(s.vers, key)
			removed++
			continue
		}
		if v.settledBelow(horizon) {
			delete(s.vers, key)
		}
	}
	return removed
}

// Unsettled reports whether the store still carries version state — rows a
// snapshot-relative reader sees differently from the latest state. The tuple
// mover refuses to compress unsettled stores (compressed row groups have no
// per-row versions).
func (s *Store) Unsettled() bool { return len(s.vers) > 0 }

// ScanVisible calls fn for each row visible to a snapshot at asOf taken by
// self, in ascending key order.
func (s *Store) ScanVisible(asOf, self uint64, fn func(key uint64, row sqltypes.Row) bool) error {
	var err error
	s.tree.AscendAll(func(k uint64, enc []byte) bool {
		if len(s.vers) > 0 {
			if v, ok := s.vers[k]; ok && !v.VisibleAt(asOf, self) {
				return true
			}
		}
		row, _, derr := sqltypes.DecodeRow(enc, s.Schema)
		if derr != nil {
			err = derr
			return false
		}
		return fn(k, row)
	})
	return err
}

// LiveRows counts rows visible to a snapshot at asOf taken by self.
func (s *Store) LiveRows(asOf, self uint64) int {
	if len(s.vers) == 0 {
		return s.tree.Len()
	}
	n := s.tree.Len()
	for _, v := range s.vers {
		if !v.VisibleAt(asOf, self) {
			n--
		}
	}
	return n
}

// DumpVersions iterates the store's version entries (checkpoint image
// writer). Order is unspecified.
func (s *Store) DumpVersions(fn func(key uint64, v RowVersion) bool) {
	for k, v := range s.vers {
		if !fn(k, v) {
			return
		}
	}
}

// VersionCount returns the number of version entries.
func (s *Store) VersionCount() int { return len(s.vers) }

// RestoreVersion reinstates a version entry (image restore path).
func (s *Store) RestoreVersion(key uint64, v RowVersion) {
	if v == (RowVersion{}) {
		delete(s.vers, key)
		return
	}
	s.setVersion(key, v)
}

// ClearVersion drops a version entry (recovery rollback path).
func (s *Store) ClearVersion(key uint64) { delete(s.vers, key) }

// --- Delete-bitmap versioning ---------------------------------------------

// gt keys a (row group, tuple) delete-bitmap entry.
type gt struct {
	group, tuple int
}

// PendingDelete is one provisional delete-bitmap entry (checkpoint image
// exchange format).
type PendingDelete struct {
	Group, Tuple int
	Owner        uint64
}

// MarkDeleted deletes compressed-row (group, tuple) on behalf of self with
// the same end semantics as Store.MarkDeleted: end zero sets the base bitmap
// directly, a commit timestamp records a recent (unsettled) delete, a
// transaction id records a pending one. asOf is the caller's snapshot, used
// to tell "already deleted before I looked" (skip) from "deleted after my
// snapshot" (conflict).
func (d *DeleteBitmap) MarkDeleted(group, tuple int, end, self, asOf uint64) MarkStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := gt{group, tuple}
	if st := d.checkLocked(k, self, asOf); st != MarkOK {
		return st
	}
	switch {
	case end == 0:
		d.setLocked(group, tuple)
	case end&TxnBit != 0:
		if d.pending == nil {
			d.pending = make(map[gt]uint64)
		}
		d.pending[k] = end
	default:
		if d.recent == nil {
			d.recent = make(map[gt]uint64)
		}
		d.recent[k] = end
	}
	return MarkOK
}

// CheckDelete is the non-mutating probe behind the bitmap's MarkDeleted; see
// Store.CheckDelete for why the table layer probes before logging.
func (d *DeleteBitmap) CheckDelete(group, tuple int, self, asOf uint64) MarkStatus {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.checkLocked(gt{group, tuple}, self, asOf)
}

func (d *DeleteBitmap) checkLocked(k gt, self, asOf uint64) MarkStatus {
	if bm := d.perGroup[k.group]; bm != nil && bm.Get(k.tuple) {
		return MarkNotFound
	}
	if owner, ok := d.pending[k]; ok {
		if owner == self {
			return MarkNotFound
		}
		return MarkConflict
	}
	if ts, ok := d.recent[k]; ok {
		if ts <= asOf {
			return MarkNotFound
		}
		return MarkConflict
	}
	return MarkOK
}

// CommitPending flips a pending delete to a recent (committed) one at cts.
func (d *DeleteBitmap) CommitPending(group, tuple int, cts uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := gt{group, tuple}
	if _, ok := d.pending[k]; !ok {
		return
	}
	delete(d.pending, k)
	if bm := d.perGroup[group]; bm != nil && bm.Get(tuple) {
		// Already settled (recovery replayed the delete physically before
		// replaying the commit that finalizes the image's pending entry).
		return
	}
	if d.recent == nil {
		d.recent = make(map[gt]uint64)
	}
	d.recent[k] = cts
}

// AbortPending drops a pending delete.
func (d *DeleteBitmap) AbortPending(group, tuple int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.pending, gt{group, tuple})
}

// Settle folds recent deletes committed at or below horizon into the base
// bitmap, where snapshot views no longer need to version-check them.
func (d *DeleteBitmap) Settle(horizon uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, ts := range d.recent {
		if ts <= horizon {
			d.setLocked(k.group, k.tuple)
			delete(d.recent, k)
		}
	}
}

// setLocked sets (group, tuple) in the base bitmap. Caller holds d.mu.
func (d *DeleteBitmap) setLocked(group, tuple int) {
	bm := d.perGroup[group]
	if bm == nil {
		bm = bits.New(tuple + 1)
		d.perGroup[group] = bm
	}
	if !bm.Get(tuple) {
		bm.Set(tuple)
		d.count++
	}
}

// SnapshotView returns the group's deleted set as seen by a snapshot at asOf
// taken by self: the base bitmap plus recent deletes committed at or before
// asOf plus self's own pending deletes. Returns nil when empty.
func (d *DeleteBitmap) SnapshotView(group int, asOf, self uint64) *bits.Bitmap {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out *bits.Bitmap
	if bm := d.perGroup[group]; bm != nil && bm.Any() {
		out = bm.Clone()
	}
	for k, ts := range d.recent {
		if k.group == group && ts <= asOf {
			if out == nil {
				out = bits.New(k.tuple + 1)
			}
			out.Set(k.tuple)
		}
	}
	if self != 0 {
		for k, owner := range d.pending {
			if k.group == group && owner == self {
				if out == nil {
					out = bits.New(k.tuple + 1)
				}
				out.Set(k.tuple)
			}
		}
	}
	return out
}

// IsDeletedAt reports whether (group, tuple) is deleted as seen by a
// snapshot at asOf taken by self.
func (d *DeleteBitmap) IsDeletedAt(group, tuple int, asOf, self uint64) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if bm := d.perGroup[group]; bm != nil && bm.Get(tuple) {
		return true
	}
	k := gt{group, tuple}
	if ts, ok := d.recent[k]; ok && ts <= asOf {
		return true
	}
	if owner, ok := d.pending[k]; ok && owner == self && self != 0 {
		return true
	}
	return false
}

// HasUnsettled reports whether the group carries recent or pending entries
// (the group merger skips such groups; their delete sets are still in flux).
func (d *DeleteBitmap) HasUnsettled(group int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for k := range d.recent {
		if k.group == group {
			return true
		}
	}
	for k := range d.pending {
		if k.group == group {
			return true
		}
	}
	return false
}

// AnyUnsettled reports whether any group carries recent or pending entries.
func (d *DeleteBitmap) AnyUnsettled() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.recent) > 0 || len(d.pending) > 0
}

// DumpPending returns the provisional entries (checkpoint image writer).
func (d *DeleteBitmap) DumpPending() []PendingDelete {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PendingDelete, 0, len(d.pending))
	for k, owner := range d.pending {
		out = append(out, PendingDelete{Group: k.group, Tuple: k.tuple, Owner: owner})
	}
	return out
}

// RestorePending reinstates a provisional entry (image restore path).
func (d *DeleteBitmap) RestorePending(group, tuple int, owner uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending == nil {
		d.pending = make(map[gt]uint64)
	}
	d.pending[gt{group, tuple}] = owner
}
