package delta

import (
	"fmt"

	"apollo/internal/bits"
)

// Durability hooks. The WAL logs delta mutations as (store id, tuple key,
// encoded row); recovery replays them through the Restore* methods below,
// which bypass lifecycle checks — replay reconstructs history, including
// inserts into stores that were later closed.

// InsertEncoded appends an already-encoded row, returning its key. The write
// path uses it so the same encoded bytes serve both the tree and the WAL
// record without encoding twice. The slice is retained; callers must not
// reuse it.
func (s *Store) InsertEncoded(encoded []byte) (uint64, error) {
	if s.state != Open {
		return 0, fmt.Errorf("delta: insert into %v store", s.state)
	}
	key := s.nextKey
	s.nextKey++
	s.tree.Put(key, encoded)
	return key, nil
}

// RestoreRow inserts an encoded row at a specific key, bumping the key
// counter past it. Idempotent under re-replay (Put overwrites).
func (s *Store) RestoreRow(key uint64, encoded []byte) {
	s.tree.Put(key, encoded)
	if key >= s.nextKey {
		s.nextKey = key + 1
	}
}

// RestoreDelete removes a key without delete-buffer side effects.
func (s *Store) RestoreDelete(key uint64) bool {
	return s.tree.Delete(key)
}

// SetState forces the lifecycle state (restore path).
func (s *Store) SetState(st State) { s.state = st }

// NextKey returns the key the next insert will receive.
func (s *Store) NextKey() uint64 { return s.nextKey }

// SetNextKey forces the next insert key (restore path; keys already consumed
// by rows that were since deleted must stay consumed, or replayed deletes
// would hit re-used keys).
func (s *Store) SetNextKey(k uint64) {
	if k > s.nextKey {
		s.nextKey = k
	}
}

// DumpRaw iterates the store's encoded rows in ascending key order without
// decoding (checkpoint image writer). The byte slices are the tree's own;
// do not modify or retain them.
func (s *Store) DumpRaw(fn func(key uint64, encoded []byte) bool) {
	s.tree.AscendAll(fn)
}

// Dump returns each group's delete-bitmap words, trailing zero words
// trimmed. Groups with no set bits are omitted. Recent (committed but
// unsettled) deletes are folded in: recovery restores into a world with no
// active snapshots, so the settled/recent distinction does not survive an
// image. Pending (provisional) deletes are NOT included — the image writer
// dumps them separately via DumpPending.
func (d *DeleteBitmap) Dump() map[int][]uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	merged := make(map[int]*bits.Bitmap, len(d.perGroup))
	for g, bm := range d.perGroup {
		merged[g] = bm.Clone()
	}
	for k := range d.recent {
		bm := merged[k.group]
		if bm == nil {
			bm = bits.New(k.tuple + 1)
			merged[k.group] = bm
		}
		bm.Set(k.tuple)
	}
	out := make(map[int][]uint64, len(merged))
	for g, bm := range merged {
		words := append([]uint64(nil), bm.Words()...)
		for len(words) > 0 && words[len(words)-1] == 0 {
			words = words[:len(words)-1]
		}
		if len(words) > 0 {
			out[g] = words
		}
	}
	return out
}

// Restore replaces the bitmap's contents from a Dump.
func (d *DeleteBitmap) Restore(groups map[int][]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.perGroup = make(map[int]*bits.Bitmap, len(groups))
	d.count = 0
	d.recent = nil
	d.pending = nil
	for g, words := range groups {
		bm := bits.FromWords(append([]uint64(nil), words...))
		d.perGroup[g] = bm
		d.count += bm.Count()
	}
}
