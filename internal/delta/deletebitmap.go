package delta

import (
	"sync"

	"apollo/internal/bits"
)

// DeleteBitmap marks rows of compressed row groups as logically deleted
// (§4.1). It is keyed by (row group id, tuple id). Scans snapshot a group's
// bitmap so concurrent deletes do not tear a running query; a row deleted
// mid-scan may still be returned by that scan, which matches snapshot
// semantics.
type DeleteBitmap struct {
	mu       sync.RWMutex
	perGroup map[int]*bits.Bitmap
	count    int
}

// NewDeleteBitmap returns an empty delete bitmap.
func NewDeleteBitmap() *DeleteBitmap {
	return &DeleteBitmap{perGroup: make(map[int]*bits.Bitmap)}
}

// Delete marks (group, tuple) deleted, reporting whether it was newly marked.
func (d *DeleteBitmap) Delete(group, tuple int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	bm := d.perGroup[group]
	if bm == nil {
		bm = bits.New(tuple + 1)
		d.perGroup[group] = bm
	}
	if bm.Get(tuple) {
		return false
	}
	bm.Set(tuple)
	d.count++
	return true
}

// IsDeleted reports whether (group, tuple) is marked deleted.
func (d *DeleteBitmap) IsDeleted(group, tuple int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bm := d.perGroup[group]
	return bm != nil && bm.Get(tuple)
}

// Snapshot returns a copy of the group's bitmap for a consistent scan, or nil
// when the group has no deletes.
func (d *DeleteBitmap) Snapshot(group int) *bits.Bitmap {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bm := d.perGroup[group]
	if bm == nil || !bm.Any() {
		return nil
	}
	return bm.Clone()
}

// DeletedInGroup counts deleted rows in a group.
func (d *DeleteBitmap) DeletedInGroup(group int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bm := d.perGroup[group]
	if bm == nil {
		return 0
	}
	return bm.Count()
}

// DropGroup forgets a group's deletes (after the group itself is removed,
// e.g. by a rebuild that filtered deleted rows out).
func (d *DeleteBitmap) DropGroup(group int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if bm := d.perGroup[group]; bm != nil {
		d.count -= bm.Count()
		delete(d.perGroup, group)
	}
}

// Count totals deleted rows across all groups.
func (d *DeleteBitmap) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.count
}
