package delta

import (
	"sync"

	"apollo/internal/bits"
)

// DeleteBitmap marks rows of compressed row groups as logically deleted
// (§4.1). It is keyed by (row group id, tuple id). Scans snapshot a group's
// bitmap so concurrent deletes do not tear a running query; a row deleted
// mid-scan may still be returned by that scan, which matches snapshot
// semantics.
type DeleteBitmap struct {
	mu       sync.RWMutex
	perGroup map[int]*bits.Bitmap // settled deletes (below every active snapshot)
	count    int                  // settled count

	// recent holds committed deletes whose timestamps are still above the
	// snapshot horizon: snapshots older than the commit must not see them.
	// Settle folds them into perGroup once the horizon passes.
	recent map[gt]uint64 // -> commit timestamp
	// pending holds provisional deletes of still-running transactions.
	pending map[gt]uint64 // -> TxnBit-tagged owner id
}

// NewDeleteBitmap returns an empty delete bitmap.
func NewDeleteBitmap() *DeleteBitmap {
	return &DeleteBitmap{perGroup: make(map[int]*bits.Bitmap)}
}

// Delete marks (group, tuple) deleted in the settled bitmap, reporting
// whether it was newly marked. This is the version-free path (recovery
// replay, publishes of settled buffered deletes); snapshot-respecting
// deletes go through MarkDeleted.
func (d *DeleteBitmap) Delete(group, tuple int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := gt{group, tuple}
	if _, ok := d.recent[k]; ok {
		// Already committed-deleted; just settle it now.
		delete(d.recent, k)
		d.setLocked(group, tuple)
		return false
	}
	bm := d.perGroup[group]
	if bm != nil && bm.Get(tuple) {
		return false
	}
	d.setLocked(group, tuple)
	return true
}

// IsDeleted reports whether (group, tuple) is deleted in the latest
// committed state (settled or recent; pending deletes don't count until
// their transaction commits).
func (d *DeleteBitmap) IsDeleted(group, tuple int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if bm := d.perGroup[group]; bm != nil && bm.Get(tuple) {
		return true
	}
	if len(d.recent) > 0 {
		_, ok := d.recent[gt{group, tuple}]
		return ok
	}
	return false
}

// Snapshot returns a copy of the group's latest-committed bitmap (settled
// plus recent) for a consistent scan, or nil when the group has no deletes.
// Snapshot-relative readers use SnapshotView instead.
func (d *DeleteBitmap) Snapshot(group int) *bits.Bitmap {
	return d.SnapshotView(group, MaxTS, 0)
}

// DeletedInGroup counts latest-committed deleted rows in a group.
func (d *DeleteBitmap) DeletedInGroup(group int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	if bm := d.perGroup[group]; bm != nil {
		n = bm.Count()
	}
	for k := range d.recent {
		if k.group == group {
			n++
		}
	}
	return n
}

// DropGroup forgets a group's deletes (after the group itself is removed,
// e.g. by a rebuild that filtered deleted rows out).
func (d *DeleteBitmap) DropGroup(group int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if bm := d.perGroup[group]; bm != nil {
		d.count -= bm.Count()
		delete(d.perGroup, group)
	}
	for k := range d.recent {
		if k.group == group {
			delete(d.recent, k)
		}
	}
	for k := range d.pending {
		if k.group == group {
			delete(d.pending, k)
		}
	}
}

// Count totals latest-committed deleted rows across all groups.
func (d *DeleteBitmap) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.count + len(d.recent)
}
