package delta

import (
	"sync"
	"testing"

	"apollo/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "b", Typ: sqltypes.String},
	)
}

func row(i int64, s string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString(s)}
}

func TestInsertGetDelete(t *testing.T) {
	s := NewStore(1, testSchema())
	k1, err := s.Insert(row(1, "one"))
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := s.Insert(row(2, "two"))
	if k1 == k2 {
		t.Fatal("duplicate keys")
	}
	got, ok := s.Get(k1)
	if !ok || got[0].I != 1 || got[1].S != "one" {
		t.Fatalf("Get = %v", got)
	}
	if !s.Delete(k1) || s.Delete(k1) {
		t.Fatal("delete semantics wrong")
	}
	if s.Rows() != 1 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	if _, ok := s.Get(k1); ok {
		t.Fatal("deleted row still visible")
	}
}

func TestScanOrder(t *testing.T) {
	s := NewStore(1, testSchema())
	for i := int64(0); i < 100; i++ {
		s.Insert(row(i, "x"))
	}
	var prev uint64
	first := true
	n := 0
	err := s.Scan(func(k uint64, r sqltypes.Row) bool {
		if !first && k <= prev {
			t.Fatal("scan out of order")
		}
		prev, first = k, false
		n++
		return true
	})
	if err != nil || n != 100 {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
}

func TestLifecycle(t *testing.T) {
	s := NewStore(1, testSchema())
	s.Insert(row(1, "a"))
	if s.State() != Open {
		t.Fatal("not open")
	}
	s.Close()
	if s.State() != Closed {
		t.Fatal("not closed")
	}
	if _, err := s.Insert(row(2, "b")); err == nil {
		t.Fatal("insert into closed store accepted")
	}
	keys, rows, err := s.BeginMove()
	if err != nil || len(keys) != 1 || len(rows) != 1 {
		t.Fatalf("BeginMove: %v %v %v", keys, rows, err)
	}
	if s.State() != Moving {
		t.Fatal("not moving")
	}
	// BeginMove on a non-closed store fails.
	if _, _, err := s.BeginMove(); err == nil {
		t.Fatal("double BeginMove accepted")
	}
}

func TestDeleteBufferDuringMove(t *testing.T) {
	s := NewStore(1, testSchema())
	var keys []uint64
	for i := int64(0); i < 10; i++ {
		k, _ := s.Insert(row(i, "x"))
		keys = append(keys, k)
	}
	s.Close()
	if _, _, err := s.BeginMove(); err != nil {
		t.Fatal(err)
	}
	// Deletes while moving are buffered.
	s.Delete(keys[3])
	s.Delete(keys[7])
	buf := s.DrainDeleteBuffer()
	if len(buf) != 2 || buf[0].Key != keys[3] || buf[1].Key != keys[7] {
		t.Fatalf("delete buffer = %v", buf)
	}
	if len(s.DrainDeleteBuffer()) != 0 {
		t.Fatal("drain not idempotent")
	}
	// Deleting a missing key while moving does not buffer.
	s.Delete(keys[3])
	if len(s.DrainDeleteBuffer()) != 0 {
		t.Fatal("phantom delete buffered")
	}
}

func TestDeleteBitmapBasics(t *testing.T) {
	d := NewDeleteBitmap()
	if d.IsDeleted(1, 5) {
		t.Fatal("fresh bitmap has deletes")
	}
	if !d.Delete(1, 5) || d.Delete(1, 5) {
		t.Fatal("delete-once semantics wrong")
	}
	if !d.IsDeleted(1, 5) || d.IsDeleted(1, 6) || d.IsDeleted(2, 5) {
		t.Fatal("IsDeleted wrong")
	}
	d.Delete(1, 100)
	d.Delete(2, 0)
	if d.Count() != 3 || d.DeletedInGroup(1) != 2 {
		t.Fatalf("counts: %d, %d", d.Count(), d.DeletedInGroup(1))
	}
	d.DropGroup(1)
	if d.Count() != 1 || d.IsDeleted(1, 5) {
		t.Fatal("DropGroup wrong")
	}
}

func TestDeleteBitmapSnapshotIsolation(t *testing.T) {
	d := NewDeleteBitmap()
	d.Delete(1, 2)
	snap := d.Snapshot(1)
	d.Delete(1, 3)
	if snap.Get(3) {
		t.Fatal("snapshot saw later delete")
	}
	if !snap.Get(2) {
		t.Fatal("snapshot missing earlier delete")
	}
	if d.Snapshot(99) != nil {
		t.Fatal("snapshot of clean group should be nil")
	}
}

func TestDeleteBitmapConcurrent(t *testing.T) {
	d := NewDeleteBitmap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				d.Delete(g, i)
				d.IsDeleted(g, i)
				if i%100 == 0 {
					d.Snapshot(g)
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Count() != 8000 {
		t.Fatalf("Count = %d", d.Count())
	}
}

func TestMemBytes(t *testing.T) {
	s := NewStore(1, testSchema())
	if s.MemBytes() != 0 {
		t.Fatal("empty store has bytes")
	}
	s.Insert(row(1, "hello"))
	if s.MemBytes() <= 0 {
		t.Fatal("no bytes after insert")
	}
}
