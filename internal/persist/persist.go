// Package persist ties the durability pieces together: checkpoint images
// (a CRC-protected snapshot of every table's state), the recovery procedure
// that loads the newest valid image and replays the write-ahead log over it,
// and the directory layout of a durable database:
//
//	<dir>/blobs/blob-<id>.blob     segment payloads (storage.DiskBacking)
//	<dir>/wal/<seq>.wal            write-ahead log segments
//	<dir>/checkpoint-<seq>.ckpt    checkpoint images (newest wins)
//
// The checkpoint is fuzzy: it rotates the WAL, then snapshots tables one at
// a time without a global freeze. The invariant that makes this correct is
// one-sided: every record in a segment below the rotation point is reflected
// in the image, while records at or above it may or may not be — so replay
// applies them idempotently (see internal/table/replay.go).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"apollo/internal/catalog"
	"apollo/internal/metrics"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/wal"
)

const (
	// ckptMagic versions the image format; 002 added row-version and
	// pending-delete sections to each table's state (MVCC).
	ckptMagic  = "APCKP002"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	mReplayed = metrics.Default.Counter("apollo_recovery_replayed_records_total",
		"write-ahead log records replayed during recovery")
	mCheckpoints = metrics.Default.Counter("apollo_checkpoints_total",
		"checkpoint images written")
	mOrphanBlobs = metrics.Default.Counter("apollo_recovery_orphan_blobs_total",
		"unreferenced blob files garbage-collected during recovery")
)

// TestHookAfterImage, when set, runs after the checkpoint image is durable
// but before the checkpoint-end record is logged. The crash harness uses it
// to kill the process mid-checkpoint.
var TestHookAfterImage func()

// WALDir returns the log directory under a database directory.
func WALDir(dataDir string) string { return filepath.Join(dataDir, "wal") }

// BlobDir returns the blob directory under a database directory.
func BlobDir(dataDir string) string { return filepath.Join(dataDir, "blobs") }

func ckptPath(dataDir string, seq uint64) string {
	return filepath.Join(dataDir, fmt.Sprintf("%s%08d%s", ckptPrefix, seq, ckptSuffix))
}

// parseCkptName extracts the replay-from sequence of a checkpoint file name.
func parseCkptName(name string) (uint64, bool) {
	base, ok := strings.CutPrefix(name, ckptPrefix)
	if !ok {
		return 0, false
	}
	base, ok = strings.CutSuffix(base, ckptSuffix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listCheckpoints returns checkpoint sequences present in dataDir, ascending.
func listCheckpoints(dataDir string) ([]uint64, error) {
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// tableImage is one table's entry in a checkpoint image.
type tableImage struct {
	name  string
	def   []byte // table.EncodeTableDef
	state []byte // Table.MarshalState
}

// marshalCheckpoint builds the image file bytes: magic, seq, table entries,
// trailing CRC32C over everything before it.
func marshalCheckpoint(seq uint64, tables []tableImage) []byte {
	dst := []byte(ckptMagic)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(tables)))
	for _, ti := range tables {
		dst = binary.AppendUvarint(dst, uint64(len(ti.name)))
		dst = append(dst, ti.name...)
		dst = binary.AppendUvarint(dst, uint64(len(ti.def)))
		dst = append(dst, ti.def...)
		dst = binary.AppendUvarint(dst, uint64(len(ti.state)))
		dst = append(dst, ti.state...)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst, castagnoli))
}

// unmarshalCheckpoint parses and verifies an image file.
func unmarshalCheckpoint(buf []byte) (uint64, []tableImage, error) {
	if len(buf) < len(ckptMagic)+8+4 {
		return 0, nil, fmt.Errorf("persist: checkpoint too short")
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("persist: checkpoint crc mismatch")
	}
	if string(body[:8]) != ckptMagic {
		return 0, nil, fmt.Errorf("persist: bad checkpoint magic")
	}
	seq := binary.LittleEndian.Uint64(body[8:16])
	pos := 16
	n64, n := binary.Uvarint(body[pos:])
	if n <= 0 || n64 > 1<<16 {
		return 0, nil, fmt.Errorf("persist: bad checkpoint table count")
	}
	pos += n
	readBytes := func() ([]byte, error) {
		l, n := binary.Uvarint(body[pos:])
		if n <= 0 || l > uint64(len(body)-pos-n) {
			return nil, fmt.Errorf("persist: truncated checkpoint entry")
		}
		pos += n
		out := body[pos : pos+int(l)]
		pos += int(l)
		return out, nil
	}
	tables := make([]tableImage, 0, n64)
	for i := uint64(0); i < n64; i++ {
		name, err := readBytes()
		if err != nil {
			return 0, nil, err
		}
		def, err := readBytes()
		if err != nil {
			return 0, nil, err
		}
		state, err := readBytes()
		if err != nil {
			return 0, nil, err
		}
		tables = append(tables, tableImage{name: string(name), def: def, state: state})
	}
	return seq, tables, nil
}

// Barrier locks out the transaction commit pipeline (txn.Manager implements
// it via CommitBarrier's underlying mutex semantics).
type Barrier interface {
	Lock()
	Unlock()
}

// WriteCheckpoint takes a fuzzy checkpoint: rotate the WAL (the new
// segment's sequence becomes the image's replay point), snapshot every
// table, write the image durably, log checkpoint-end, and truncate segments
// below the replay point. Concurrent DML is safe; its records land in the
// new segment and replay idempotently.
//
// barrier (nil allowed) is held across the rotation so no transaction commit
// straddles the replay point: without it, a TCommit record could land below
// the rotation (truncated away) while its version flips reach the image late
// or not at all — recovery would then roll back a committed transaction.
// With the barrier, any commit whose TCommit is below the rotation has fully
// applied before the image is cut, and any commit after it replays.
func WriteCheckpoint(dataDir string, w *wal.Writer, cat *catalog.Catalog, barrier Barrier) (uint64, error) {
	if barrier == nil {
		barrier = noBarrier{}
	}
	barrier.Lock()
	seq, err := w.Rotate()
	if err != nil {
		barrier.Unlock()
		return 0, err
	}
	err = w.Append(&wal.Record{Type: wal.TCheckpointBegin, A: seq})
	barrier.Unlock()
	if err != nil {
		return 0, err
	}

	var tables []tableImage
	for _, name := range cat.List() {
		t, err := cat.Get(name)
		if err != nil {
			continue // dropped since List; its drop record will replay
		}
		tables = append(tables, tableImage{
			name:  name,
			def:   table.EncodeTableDef(t.Schema, t.Opts),
			state: t.MarshalState(),
		})
	}

	img := marshalCheckpoint(seq, tables)
	tmp := ckptPath(dataDir, seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: create checkpoint: %w", err)
	}
	if _, err := f.Write(img); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, ckptPath(dataDir, seq)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("persist: publish checkpoint: %w", err)
	}
	// The rename's directory entry must be durable before TCheckpointEnd is
	// logged and the covered WAL prefix truncated: swallowing a failure here
	// could discard the only copy of the history the missing image was
	// supposed to replace.
	if err := syncDir(dataDir); err != nil {
		return 0, fmt.Errorf("persist: sync data dir after publishing checkpoint: %w", err)
	}

	if TestHookAfterImage != nil {
		TestHookAfterImage()
	}

	if err := w.Append(&wal.Record{Type: wal.TCheckpointEnd, A: seq}); err != nil {
		return seq, err
	}
	if err := w.Sync(); err != nil {
		return seq, err
	}
	mCheckpoints.Inc()

	// Truncate: the image covers everything below seq. Best effort — a crash
	// here just leaves files recovery ignores (and cleans next time).
	if err := w.RemoveSegmentsBelow(seq); err != nil {
		return seq, err
	}
	old, _ := listCheckpoints(dataDir)
	for _, s := range old {
		if s < seq {
			os.Remove(ckptPath(dataDir, s))
		}
	}
	return seq, nil
}

// noBarrier is the Barrier used when no transaction manager exists.
type noBarrier struct{}

func (noBarrier) Lock()   {}
func (noBarrier) Unlock() {}

// syncDir fsyncs a directory so a rename within it is durable. Platforms
// that reject directory fsync outright (EINVAL/ENOTSUP) are tolerated;
// every real failure propagates — "best effort" here would silently trade
// away the checkpoint's durability.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}

// RecoverResult summarizes a recovery.
type RecoverResult struct {
	Writer          *wal.Writer
	CheckpointSeq   uint64 // replay point of the image used (0 = none)
	ReplayedRecords int64
	TruncatedTail   bool
	OrphanBlobs     int
	BlobsLoaded     int
}

// Recover brings a database directory back to its last durable state: load
// blob files, restore the newest valid checkpoint image, replay the WAL over
// it (repairing a torn tail in place), garbage-collect orphan blobs, and
// open a fresh WAL segment for new writes. The catalog must be empty. Log
// damage anywhere but the writable tail surfaces as wal.ErrCorrupt.
func Recover(dataDir string, store *storage.Store, cat *catalog.Catalog, opts wal.Options) (*RecoverResult, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create data dir: %w", err)
	}
	backing, err := storage.OpenDiskBacking(BlobDir(dataDir), opts.Policy != wal.FsyncOff)
	if err != nil {
		return nil, err
	}
	store.AttachBacking(backing)
	res := &RecoverResult{}
	if res.BlobsLoaded, err = store.LoadFromBacking(); err != nil {
		return nil, err
	}

	// Newest valid checkpoint image; fall back past damaged ones (a crash
	// can only damage the newest, and only before its rename — but stay
	// defensive and scan backwards).
	ckpts, err := listCheckpoints(dataDir)
	if err != nil {
		return nil, err
	}
	var images []tableImage
	skippedNewer := false
	found := false
	for i := len(ckpts) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(ckptPath(dataDir, ckpts[i]))
		if err == nil {
			seq, tables, uerr := unmarshalCheckpoint(buf)
			if uerr == nil && seq == ckpts[i] {
				res.CheckpointSeq = seq
				images = tables
				found = true
				break
			}
		}
		skippedNewer = true
	}
	if !found && len(ckpts) > 0 {
		// Every image on disk is damaged. Replaying from nothing would scan
		// a log whose prefix the newest checkpoint already truncated —
		// silent partial recovery, not a usable fallback.
		return nil, fmt.Errorf("persist: no valid checkpoint image among %d candidates: %w", len(ckpts), wal.ErrCorrupt)
	}
	if found && skippedNewer {
		// A damaged checkpoint newer than the one chosen existed, so its
		// truncation may already have deleted the chosen image's segments.
		// The rotate that produced the chosen image created segment
		// CheckpointSeq; if that file is gone, the log between the two
		// checkpoints is gone with it and replay would recover a partial
		// state. (Scan also rejects ranges not starting at CheckpointSeq;
		// this catches the WAL being emptied entirely.)
		if _, serr := os.Stat(filepath.Join(WALDir(dataDir), wal.SegmentName(res.CheckpointSeq))); serr != nil {
			return nil, fmt.Errorf("persist: checkpoint %d usable only with WAL segment %d, which is missing: %w",
				res.CheckpointSeq, res.CheckpointSeq, wal.ErrCorrupt)
		}
	}
	for _, ti := range images {
		schema, topts, err := table.DecodeTableDef(ti.def)
		if err != nil {
			return nil, fmt.Errorf("persist: table %s def: %w", ti.name, err)
		}
		t := table.New(store, ti.name, schema, topts)
		if err := t.RestoreState(ti.state); err != nil {
			return nil, err
		}
		if err := cat.Install(t); err != nil {
			return nil, err
		}
	}

	// Replay pass 1: repair a torn tail and collect the committed-transaction
	// set. A transaction is committed iff its TCommit record survives in the
	// (repaired) durable log; everything else rolls back. Nothing is applied
	// in this pass — the committed set must be known before any transactional
	// record is interpreted.
	committed := make(map[uint64]uint64)
	scan1, err := wal.Scan(WALDir(dataDir), res.CheckpointSeq, true, func(_ uint64, rec *wal.Record) error {
		if rec.Type == wal.TCommit {
			committed[rec.Txn] = rec.A
		}
		return nil
	})
	res.TruncatedTail = scan1.Truncated
	if err != nil {
		return nil, err
	}

	// Replay pass 2: apply the committed prefix over the image. Records of
	// uncommitted transactions are skipped; TCommit finalizes any provisional
	// state the fuzzy image captured for its transaction.
	scan, err := wal.Scan(WALDir(dataDir), res.CheckpointSeq, false, func(_ uint64, rec *wal.Record) error {
		return applyRecord(store, cat, rec, committed)
	})
	res.ReplayedRecords = scan.Records
	if err != nil {
		return nil, err
	}
	mReplayed.Add(scan.Records)

	// Post-replay normalization and orphan-blob GC: blobs written by builds
	// or checkpoints whose publish never became durable are unreachable from
	// every directory — delete their files.
	keep := make(map[uint64]bool)
	for _, name := range cat.List() {
		if t, err := cat.Get(name); err == nil {
			t.FinishRecovery()
			t.LiveBlobs(keep)
		}
	}
	keepIDs := make(map[storage.BlobID]bool, len(keep))
	for id := range keep {
		keepIDs[storage.BlobID(id)] = true
	}
	res.OrphanBlobs = store.RetainOnly(keepIDs)
	mOrphanBlobs.Add(int64(res.OrphanBlobs))

	// New writes go to a fresh segment past everything scanned.
	w, err := wal.Create(WALDir(dataDir), scan.LastSeq+1, opts)
	if err != nil {
		return nil, err
	}
	cat.SetWAL(w)
	for _, name := range cat.List() {
		if t, err := cat.Get(name); err == nil {
			t.SetWAL(w)
		}
	}
	res.Writer = w
	return res, nil
}

// applyRecord dispatches one replayed record. committed maps transaction ids
// to commit timestamps (from pass 1); records of transactions outside it are
// dropped — the committed-prefix property.
func applyRecord(store *storage.Store, cat *catalog.Catalog, rec *wal.Record, committed map[uint64]uint64) error {
	if rec.Txn != 0 {
		switch rec.Type {
		case wal.TBegin, wal.TAbort:
			return nil
		case wal.TCommit:
			// Finalize provisional state the fuzzy image may hold for this
			// transaction (records replayed from the log applied physically
			// already). The transaction may span tables, so fan out.
			for _, name := range cat.List() {
				if t, err := cat.Get(name); err == nil {
					t.CommitTxn(rec.Txn, rec.A)
				}
			}
			return nil
		default:
			if _, ok := committed[rec.Txn]; !ok {
				return nil // transaction never committed; discard its effects
			}
		}
	}
	switch rec.Type {
	case wal.TCreateTable:
		if _, err := cat.Get(rec.Table); err == nil {
			return nil // image already holds it
		}
		schema, topts, err := table.DecodeTableDef(rec.Payload)
		if err != nil {
			return fmt.Errorf("persist: replay create %s: %w", rec.Table, err)
		}
		return cat.Install(table.New(store, rec.Table, schema, topts))
	case wal.TDropTable:
		if _, err := cat.Get(rec.Table); err != nil {
			return nil
		}
		return cat.Drop(rec.Table)
	case wal.TCheckpointBegin, wal.TCheckpointEnd:
		return nil
	default:
		t, err := cat.Get(rec.Table)
		if err != nil {
			// Table dropped later in the log (the drop's effect may already
			// be in the image while earlier records still replay).
			return nil
		}
		return t.ReplayRecord(rec)
	}
}
