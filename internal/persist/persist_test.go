package persist

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"

	"apollo/internal/catalog"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/wal"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "id", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "v", Typ: sqltypes.String},
	)
}

func mkRow(i int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString(fmt.Sprintf("v-%d", i%5))}
}

// openEnv builds a durable catalog on dir (recovering whatever is there).
func openEnv(t *testing.T, dir string) (*catalog.Catalog, *wal.Writer, *RecoverResult) {
	t.Helper()
	store := storage.NewStore(1 << 20)
	cat := catalog.New(store)
	res, err := Recover(dir, store, cat, wal.Options{Policy: wal.FsyncOff})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return cat, res.Writer, res
}

// liveIDs reads every live row via a never-matching DeleteWhere predicate
// (the table has no plain scan API at this layer).
func liveIDs(t *testing.T, tb *table.Table) []int64 {
	t.Helper()
	var ids []int64
	if _, err := tb.DeleteWhere(func(row sqltypes.Row) bool {
		ids = append(ids, row[0].I)
		return false
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// deleteIDs removes rows whose id satisfies pred, returning the count.
func deleteIDs(t *testing.T, tb *table.Table, pred func(int64) bool) int {
	t.Helper()
	n, err := tb.DeleteWhere(func(row sqltypes.Row) bool { return pred(row[0].I) })
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRebuildAndMergeDurable covers the maintenance paths the SQL layer does
// not reach: REBUILD (retire all groups, recompress) and small-group merge
// must survive a close/recover cycle, including the retired groups' blob
// files being gone.
func TestRebuildAndMergeDurable(t *testing.T) {
	dir := t.TempDir()
	cat, w, _ := openEnv(t, dir)
	opts := table.DefaultOptions()
	opts.RowGroupSize = 8
	tb, err := cat.Create("m", testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 30; i++ {
		if _, err := tb.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.FlushOpen(); err != nil {
		t.Fatal(err)
	}
	if deleteIDs(t, tb, func(id int64) bool { return id%7 == 0 }) == 0 {
		t.Fatal("DeleteWhere deleted nothing")
	}
	if err := tb.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if merged, err := tb.MergeSmallGroups(); err != nil {
		t.Fatalf("merge: %v (merged %d)", err, merged)
	}
	want := liveIDs(t, tb)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, w2, res := openEnv(t, dir)
	defer w2.Close()
	tb2, err := cat2.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if got := liveIDs(t, tb2); !reflect.DeepEqual(got, want) {
		t.Fatalf("rows changed across rebuild+recover:\n got %v\nwant %v", got, want)
	}
	if res.OrphanBlobs != 0 {
		// Retired groups' blobs are deleted at retire time; recovery should
		// find nothing to GC after a clean shutdown.
		t.Fatalf("clean shutdown left %d orphan blobs", res.OrphanBlobs)
	}
}

// TestBulkLoadDurable: the bulk path (direct compression, no delta store)
// logs publishes with no consumed store and replays cleanly.
func TestBulkLoadDurable(t *testing.T) {
	dir := t.TempDir()
	cat, w, _ := openEnv(t, dir)
	opts := table.DefaultOptions()
	opts.RowGroupSize = 64
	opts.BulkLoadThreshold = 16
	tb, err := cat.Create("b", testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sqltypes.Row, 200)
	for i := range rows {
		rows[i] = mkRow(int64(i))
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	want := liveIDs(t, tb)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, w2, _ := openEnv(t, dir)
	defer w2.Close()
	tb2, err := cat2.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if got := liveIDs(t, tb2); !reflect.DeepEqual(got, want) {
		t.Fatalf("bulk-loaded rows changed across recovery: %d vs %d rows", len(got), len(want))
	}
	if tb2.Stat().CompressedGroups == 0 {
		t.Fatal("bulk load produced no compressed groups after recovery")
	}
}

// TestCheckpointWhileDirty: a checkpoint taken with rows in every structure
// (open delta, closed delta, compressed, deletes) plus post-checkpoint DML
// recovers to the exact final state.
func TestCheckpointWhileDirty(t *testing.T) {
	dir := t.TempDir()
	cat, w, _ := openEnv(t, dir)
	opts := table.DefaultOptions()
	opts.RowGroupSize = 8
	tb, err := cat.Create("d", testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		if _, err := tb.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.FlushOpen(); err != nil {
		t.Fatal(err)
	}
	for i := int64(21); i <= 25; i++ { // left in the open delta store
		if _, err := tb.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	deleteIDs(t, tb, func(id int64) bool { return id == 3 })

	seq, err := WriteCheckpoint(dir, w, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("checkpoint seq 0")
	}
	for i := int64(26); i <= 30; i++ {
		if _, err := tb.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	deleteIDs(t, tb, func(id int64) bool { return id == 1 })
	want := liveIDs(t, tb)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, w2, res := openEnv(t, dir)
	defer w2.Close()
	if res.CheckpointSeq != seq {
		t.Fatalf("recovered from checkpoint %d, want %d", res.CheckpointSeq, seq)
	}
	tb2, err := cat2.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if got := liveIDs(t, tb2); !reflect.DeepEqual(got, want) {
		t.Fatalf("state after checkpointed recovery:\n got %v\nwant %v", got, want)
	}
}

// TestOrphanBlobGC: blob files not reachable from any table directory after
// replay (e.g. written by a build whose publish never became durable) are
// deleted during recovery.
func TestOrphanBlobGC(t *testing.T) {
	dir := t.TempDir()
	cat, w, _ := openEnv(t, dir)
	tb, err := cat.Create("o", testSchema(), table.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(mkRow(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash-abandoned build: a blob on disk that no publish
	// record references.
	if _, err := cat.Store().Put([]byte("abandoned build output"), storage.None); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, w2, res := openEnv(t, dir)
	defer w2.Close()
	if res.OrphanBlobs != 1 {
		t.Fatalf("orphan GC removed %d blobs, want 1", res.OrphanBlobs)
	}
}

// TestCheckpointImageCorruptFallsBack: a damaged newest image is never
// trusted. With no older valid image to fall back to — and the WAL's
// pre-checkpoint prefix already truncated — recovery must refuse with
// ErrCorrupt rather than silently open a partial (here: empty) state.
func TestCheckpointImageCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	cat, w, _ := openEnv(t, dir)
	tb, err := cat.Create("f", testSchema(), table.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if _, err := tb.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := WriteCheckpoint(dir, w, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the image; its CRC check must reject it. The WAL was
	// truncated at the checkpoint, so replay alone cannot rebuild the rows —
	// the point is that recovery REFUSES garbage rather than loading it.
	img := ckptPath(dir, seq)
	buf, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x10
	if err := os.WriteFile(img, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	store := storage.NewStore(1 << 20)
	_, err = Recover(dir, store, catalog.New(store), wal.Options{Policy: wal.FsyncOff})
	if err == nil {
		t.Fatal("recovery accepted a directory whose only checkpoint image is corrupt")
	}
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("recover: got %v, want ErrCorrupt", err)
	}
}
