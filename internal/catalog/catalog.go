// Package catalog tracks the tables of a database instance.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/wal"
)

// Catalog maps table names to clustered columnstore tables. It is safe for
// concurrent use.
type Catalog struct {
	store *storage.Store

	mu     sync.RWMutex
	tables map[string]*table.Table
	wal    *wal.Writer
	clock  table.Clock
}

// New creates an empty catalog backed by the given blob store.
func New(store *storage.Store) *Catalog {
	return &Catalog{store: store, tables: make(map[string]*table.Table)}
}

// SetWAL attaches a write-ahead log: DDL is logged, and every table created
// afterwards logs its DML. Attach before any DDL (normally right after New
// or recovery).
func (c *Catalog) SetWAL(w *wal.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wal = w
}

// SetClock attaches the transaction-timestamp clock to every current table
// and every table created or installed afterwards. Without a clock, tables
// run in the settled single-writer mode (tests, embedded use).
func (c *Catalog) SetClock(clk table.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clk
	for _, t := range c.tables {
		t.SetClock(clk)
	}
}

// Store returns the catalog's blob store.
func (c *Catalog) Store() *storage.Store { return c.store }

// Create adds a new table. Table names are case-sensitive; the SQL layer
// lower-cases identifiers before they reach the catalog.
func (c *Catalog) Create(name string, schema *sqltypes.Schema, opts table.Options) (*table.Table, error) {
	if schema.Len() == 0 {
		return nil, fmt.Errorf("catalog: table %s has no columns", name)
	}
	seen := map[string]bool{}
	for _, col := range schema.Cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("catalog: duplicate column %s in table %s", col.Name, name)
		}
		seen[col.Name] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	if c.wal != nil {
		rec := &wal.Record{Type: wal.TCreateTable, Table: name, Payload: table.EncodeTableDef(schema, opts)}
		if err := c.wal.Append(rec); err != nil {
			return nil, err
		}
	}
	t := table.New(c.store, name, schema, opts)
	t.SetWAL(c.wal)
	if c.clock != nil {
		t.SetClock(c.clock)
	}
	c.tables[name] = t
	return t, nil
}

// Install registers a table without logging — the recovery path, where the
// table was reconstructed from a checkpoint image or a replayed create
// record. The WAL is attached so post-recovery DML logs normally.
func (c *Catalog) Install(t *table.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	t.SetWAL(c.wal)
	if c.clock != nil {
		t.SetClock(c.clock)
	}
	c.tables[t.Name] = t
	return nil
}

// Get returns the named table, or an error.
func (c *Catalog) Get(name string) (*table.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	return t, nil
}

// Drop removes a table, stopping its tuple mover.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	t, ok := c.tables[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	if c.wal != nil {
		if err := c.wal.Append(&wal.Record{Type: wal.TDropTable, Table: name}); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	delete(c.tables, name)
	c.mu.Unlock()
	t.StopTupleMover()
	return nil
}

// List returns table names in sorted order.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close stops all background tuple movers.
func (c *Catalog) Close() {
	c.mu.Lock()
	tables := make([]*table.Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.Unlock()
	for _, t := range tables {
		t.StopTupleMover()
	}
}
