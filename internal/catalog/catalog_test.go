package catalog

import (
	"testing"

	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

func schema() *sqltypes.Schema {
	return sqltypes.NewSchema(sqltypes.Column{Name: "a", Typ: sqltypes.Int64})
}

func TestCreateGetDrop(t *testing.T) {
	c := New(storage.NewStore(0))
	tb, err := c.Create("t1", schema(), table.DefaultOptions())
	if err != nil || tb == nil {
		t.Fatal(err)
	}
	got, err := c.Get("t1")
	if err != nil || got != tb {
		t.Fatal("Get returned wrong table")
	}
	if _, err := c.Create("t1", schema(), table.DefaultOptions()); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := c.Drop("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t1"); err == nil {
		t.Fatal("dropped table still visible")
	}
	if err := c.Drop("t1"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestCreateValidation(t *testing.T) {
	c := New(storage.NewStore(0))
	if _, err := c.Create("empty", sqltypes.NewSchema(), table.DefaultOptions()); err == nil {
		t.Fatal("empty schema accepted")
	}
	dup := sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "a", Typ: sqltypes.String},
	)
	if _, err := c.Create("dup", dup, table.DefaultOptions()); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestListSorted(t *testing.T) {
	c := New(storage.NewStore(0))
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Create(n, schema(), table.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	got := c.List()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestCloseStopsMovers(t *testing.T) {
	c := New(storage.NewStore(0))
	tb, _ := c.Create("t", schema(), table.DefaultOptions())
	tb.StartTupleMover(1)
	c.Close() // must stop the mover without hanging
}
