// Package plan defines the logical query plan and the optimizer/compiler
// that turns it into row-mode or batch-mode physical operator trees. The
// optimizer implements the paper's query-optimization enhancements (§6):
// predicate pushdown into columnstore scans (including segment-elimination
// ranges), column pruning, hash-join build-side selection by estimated
// cardinality, bitmap (Bloom) filter placement on star joins, and
// execution-mode selection under three rule sets — row-only, the restricted
// 2012 batch repertoire (which falls back to row mode for unsupported
// shapes), and the full 2014 repertoire.
package plan

import (
	"fmt"
	"strings"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// Node is a logical plan operator.
type Node interface {
	Schema() *sqltypes.Schema
	String() string
}

// Scan reads a table. Filter (optional) is bound to the full table schema;
// Cols selects the output columns (nil = all). The binder creates scans with
// Cols nil; the pruning pass narrows them.
type Scan struct {
	Table  *table.Table
	Filter expr.Expr
	Cols   []int
}

// Schema implements Node.
func (s *Scan) Schema() *sqltypes.Schema {
	if s.Cols == nil {
		return s.Table.Schema
	}
	return s.Table.Schema.Project(s.Cols)
}

func (s *Scan) String() string {
	out := "Scan(" + s.Table.Name
	if s.Filter != nil {
		out += " filter=" + s.Filter.String()
	}
	return out + ")"
}

// Filter drops rows failing Pred (bound to the child schema).
type Filter struct {
	In   Node
	Pred expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() *sqltypes.Schema { return f.In.Schema() }
func (f *Filter) String() string           { return "Filter(" + f.Pred.String() + ")" }

// Project computes expressions over the child.
type Project struct {
	In    Node
	Exprs []expr.Expr
	Names []string
}

// Schema implements Node.
func (p *Project) Schema() *sqltypes.Schema {
	cols := make([]sqltypes.Column, len(p.Exprs))
	for i, e := range p.Exprs {
		cols[i] = sqltypes.Column{Name: p.Names[i], Typ: e.Type(), Nullable: true}
	}
	return sqltypes.NewSchema(cols...)
}

func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Join combines children on equi-keys plus an optional residual predicate
// bound to the concatenated left++right schema. Semi/anti joins output only
// left columns.
type Join struct {
	Left, Right Node
	Type        exec.JoinType
	// LeftKeys/RightKeys are bound to the respective child schemas.
	LeftKeys, RightKeys []expr.Expr
	Residual            expr.Expr
	// Placed marks joins whose input order was already fixed by the
	// cost-based join enumerator; chooseBuildSides must not re-swap them.
	Placed bool
}

// Schema implements Node.
func (j *Join) Schema() *sqltypes.Schema {
	switch j.Type {
	case exec.LeftSemi, exec.LeftAnti:
		return j.Left.Schema()
	default:
		return j.Left.Schema().Concat(j.Right.Schema())
	}
}

func (j *Join) String() string {
	keys := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		keys[i] = fmt.Sprintf("%s=%s", j.LeftKeys[i], j.RightKeys[i])
	}
	out := fmt.Sprintf("Join(%v on %s", j.Type, strings.Join(keys, " AND "))
	if j.Residual != nil {
		out += " residual=" + j.Residual.String()
	}
	return out + ")"
}

// Agg groups by expressions over the child and computes aggregates. With no
// GroupBy it is a scalar aggregation producing one row.
type Agg struct {
	In      Node
	GroupBy []expr.Expr
	Names   []string
	Aggs    []exec.AggSpec
}

// Schema implements Node.
func (a *Agg) Schema() *sqltypes.Schema {
	cols := make([]sqltypes.Column, 0, len(a.GroupBy)+len(a.Aggs))
	for i, g := range a.GroupBy {
		cols = append(cols, sqltypes.Column{Name: a.Names[i], Typ: g.Type(), Nullable: true})
	}
	for _, sp := range a.Aggs {
		cols = append(cols, sqltypes.Column{Name: sp.Name, Typ: sp.ResultType(), Nullable: true})
	}
	return sqltypes.NewSchema(cols...)
}

func (a *Agg) String() string {
	parts := make([]string, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, sp := range a.Aggs {
		parts = append(parts, sp.String())
	}
	return "Agg(" + strings.Join(parts, ", ") + ")"
}

// Sort orders the child's rows.
type Sort struct {
	In   Node
	Keys []exec.SortKey
}

// Schema implements Node.
func (s *Sort) Schema() *sqltypes.Schema { return s.In.Schema() }

func (s *Sort) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.E.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

// Limit emits at most N rows (N < 0 = unlimited) after skipping Offset.
type Limit struct {
	In     Node
	Offset int
	N      int
}

// Schema implements Node.
func (l *Limit) Schema() *sqltypes.Schema { return l.In.Schema() }
func (l *Limit) String() string           { return fmt.Sprintf("Limit(%d, %d)", l.Offset, l.N) }

// Union concatenates children with identical schemas (UNION ALL).
type Union struct {
	Ins []Node
}

// Schema implements Node.
func (u *Union) Schema() *sqltypes.Schema { return u.Ins[0].Schema() }
func (u *Union) String() string           { return fmt.Sprintf("UnionAll(%d inputs)", len(u.Ins)) }

// Tree renders an indented plan tree (EXPLAIN output).
func Tree(n Node) string {
	var sb strings.Builder
	tree(&sb, n, 0, nil)
	return sb.String()
}

// TreeAnnotated renders the plan tree with a per-node annotation appended to
// each line (EXPLAIN ANALYZE output). annot returning "" leaves a node bare.
func TreeAnnotated(n Node, annot func(Node) string) string {
	var sb strings.Builder
	tree(&sb, n, 0, annot)
	return sb.String()
}

func tree(sb *strings.Builder, n Node, depth int, annot func(Node) string) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.String())
	if annot != nil {
		if a := annot(n); a != "" {
			sb.WriteString(" ")
			sb.WriteString(a)
		}
	}
	sb.WriteString("\n")
	for _, c := range children(n) {
		tree(sb, c, depth+1, annot)
	}
}

func children(n Node) []Node {
	switch x := n.(type) {
	case *Scan:
		return nil
	case *Filter:
		return []Node{x.In}
	case *Project:
		return []Node{x.In}
	case *Join:
		return []Node{x.Left, x.Right}
	case *Agg:
		return []Node{x.In}
	case *Sort:
		return []Node{x.In}
	case *Limit:
		return []Node{x.In}
	case *Union:
		return x.Ins
	default:
		return nil
	}
}
