package plan

import (
	"sync"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/stats"
	"apollo/internal/table"
)

// StatsCache memoizes per-table statistics. One cache can be shared across
// compilations (the SQL engine keeps one per database); entries refresh when
// the table's publish epoch moves (tuple-mover publishes, bulk loads,
// rebuilds) or the live row count drifts more than 10% from collection time.
type StatsCache struct {
	mu sync.Mutex
	m  map[*table.Table]*stats.TableStats
}

// NewStatsCache creates an empty statistics cache.
func NewStatsCache() *StatsCache { return &StatsCache{m: map[*table.Table]*stats.TableStats{}} }

// Stats returns current statistics for t, recollecting if the cached entry
// is stale.
func (c *StatsCache) Stats(t *table.Table) *stats.TableStats { return c.get(t) }

func (c *StatsCache) get(t *table.Table) *stats.TableStats {
	cur := t.Rows()
	version := t.StatsVersion()
	c.mu.Lock()
	if s, ok := c.m[t]; ok && s.Version == version {
		drift := s.Rows - cur
		if drift < 0 {
			drift = -drift
		}
		// Trickle inserts and deletes do not change a publish epoch; refresh
		// once the row count has drifted more than 10% anyway. Small tables
		// get no absolute-drift escape: a 50-row dimension that doubles must
		// recollect like anyone else.
		if drift*10 <= s.Rows {
			c.mu.Unlock()
			return s
		}
	}
	c.mu.Unlock()
	s := stats.Collect(t)
	mStatsCollections.Inc()
	c.mu.Lock()
	c.m[t] = s
	c.mu.Unlock()
	return s
}

// pushDownFilters moves filter conjuncts as close to the scans as possible:
// through projections of plain columns, into the probe/build children of
// inner joins, and into Scan.Filter itself.
func pushDownFilters(n Node) Node {
	switch x := n.(type) {
	case *Filter:
		in := pushDownFilters(x.In)
		remaining := pushConjuncts(in, expr.Conjuncts(x.Pred))
		if len(remaining) == 0 {
			return in
		}
		return &Filter{In: in, Pred: andAll(remaining)}
	case *Project:
		x.In = pushDownFilters(x.In)
		return x
	case *Join:
		x.Left = pushDownFilters(x.Left)
		x.Right = pushDownFilters(x.Right)
		// Join residual conjuncts referencing only one side push down (inner
		// joins only; outer-join residuals define match-ness, not filtering).
		if x.Type == exec.Inner && x.Residual != nil {
			lw := x.Left.Schema().Len()
			var keep []expr.Expr
			for _, c := range expr.Conjuncts(x.Residual) {
				refs := map[int]bool{}
				expr.ReferencedCols(c, refs)
				onlyLeft, onlyRight := true, true
				for r := range refs {
					if r < lw {
						onlyRight = false
					} else {
						onlyLeft = false
					}
				}
				switch {
				case onlyLeft && len(refs) > 0:
					if rem := pushConjuncts(x.Left, []expr.Expr{c}); len(rem) > 0 {
						x.Left = &Filter{In: x.Left, Pred: andAll(rem)}
					}
				case onlyRight && len(refs) > 0:
					m := map[int]int{}
					for r := range refs {
						m[r] = r - lw
					}
					rc := expr.Remap(c, m)
					if rem := pushConjuncts(x.Right, []expr.Expr{rc}); len(rem) > 0 {
						x.Right = &Filter{In: x.Right, Pred: andAll(rem)}
					}
				default:
					keep = append(keep, c)
				}
			}
			x.Residual = andAll(keep)
		}
		return x
	case *Agg:
		x.In = pushDownFilters(x.In)
		return x
	case *Sort:
		x.In = pushDownFilters(x.In)
		return x
	case *Limit:
		x.In = pushDownFilters(x.In)
		return x
	case *Union:
		for i := range x.Ins {
			x.Ins[i] = pushDownFilters(x.Ins[i])
		}
		return x
	default:
		return n
	}
}

// pushConjuncts tries to sink each conjunct into n (mutating scans/joins in
// place) and returns the conjuncts that could not be fully pushed.
func pushConjuncts(n Node, conjuncts []expr.Expr) []expr.Expr {
	var remaining []expr.Expr
	for _, c := range conjuncts {
		if !pushOne(n, c) {
			remaining = append(remaining, c)
		}
	}
	return remaining
}

// pushOne pushes a single conjunct into n if possible.
func pushOne(n Node, c expr.Expr) bool {
	switch x := n.(type) {
	case *Scan:
		// Scan filters are bound to the full table schema; conjuncts arriving
		// here are bound to the scan's output, which equals the table schema
		// before pruning (Cols == nil).
		if x.Cols != nil {
			return false
		}
		if x.Filter == nil {
			x.Filter = c
		} else {
			x.Filter = expr.NewAnd(x.Filter, c)
		}
		return true
	case *Filter:
		if pushOne(x.In, c) {
			return true
		}
		x.Pred = expr.NewAnd(x.Pred, c)
		return true
	case *Join:
		lw := x.Left.Schema().Len()
		refs := map[int]bool{}
		expr.ReferencedCols(c, refs)
		onlyLeft, onlyRight := true, true
		for r := range refs {
			if r < lw {
				onlyRight = false
			} else {
				onlyLeft = false
			}
		}
		// Probe-side (left) predicates are safe for inner/left-semi/anti and
		// left outer joins; build-side predicates only for inner joins.
		if onlyLeft && (x.Type == exec.Inner || x.Type == exec.LeftOuter || x.Type == exec.LeftSemi || x.Type == exec.LeftAnti) {
			if !pushOne(x.Left, c) {
				x.Left = &Filter{In: x.Left, Pred: c}
			}
			return true
		}
		if onlyRight && x.Type == exec.Inner {
			m := map[int]int{}
			for r := range refs {
				m[r] = r - lw
			}
			rc := expr.Remap(c, m)
			if !pushOne(x.Right, rc) {
				x.Right = &Filter{In: x.Right, Pred: rc}
			}
			return true
		}
		// Conjuncts spanning both sides of an inner join become residual (and
		// may later be promoted to equi-keys).
		if x.Type == exec.Inner && !onlyLeft && !onlyRight {
			if x.Residual == nil {
				x.Residual = c
			} else {
				x.Residual = expr.NewAnd(x.Residual, c)
			}
			return true
		}
		return false
	default:
		return false
	}
}

func andAll(conjuncts []expr.Expr) expr.Expr {
	switch len(conjuncts) {
	case 0:
		return nil
	case 1:
		return conjuncts[0]
	default:
		return expr.NewAnd(conjuncts...)
	}
}

// extractJoinKeys promotes residual conjuncts of the form leftCol = rightCol
// into equi-key lists.
func extractJoinKeys(n Node) Node {
	switch x := n.(type) {
	case *Join:
		x.Left = extractJoinKeys(x.Left)
		x.Right = extractJoinKeys(x.Right)
		if x.Residual == nil {
			return x
		}
		lw := x.Left.Schema().Len()
		var keep []expr.Expr
		for _, c := range expr.Conjuncts(x.Residual) {
			if lk, rk, ok := equiKey(c, lw); ok {
				x.LeftKeys = append(x.LeftKeys, lk)
				x.RightKeys = append(x.RightKeys, rk)
			} else {
				keep = append(keep, c)
			}
		}
		x.Residual = andAll(keep)
		return x
	default:
		mutateChildren(n, extractJoinKeys)
		return n
	}
}

// equiKey recognizes col = col conjuncts across the join boundary, returning
// key expressions bound to the left and right child schemas.
func equiKey(c expr.Expr, leftWidth int) (lk, rk expr.Expr, ok bool) {
	cmp, isCmp := c.(*expr.Cmp)
	if !isCmp || cmp.Op != expr.EQ {
		return nil, nil, false
	}
	l, lok := cmp.L.(*expr.ColRef)
	r, rok := cmp.R.(*expr.ColRef)
	if !lok || !rok {
		return nil, nil, false
	}
	switch {
	case l.Idx < leftWidth && r.Idx >= leftWidth:
		return l, expr.NewColRef(r.Idx-leftWidth, r.Name, r.Typ), true
	case r.Idx < leftWidth && l.Idx >= leftWidth:
		return r, expr.NewColRef(l.Idx-leftWidth, l.Name, l.Typ), true
	default:
		return nil, nil, false
	}
}

// mutateChildren rewrites each child of n through fn in place.
func mutateChildren(n Node, fn func(Node) Node) {
	switch x := n.(type) {
	case *Filter:
		x.In = fn(x.In)
	case *Project:
		x.In = fn(x.In)
	case *Agg:
		x.In = fn(x.In)
	case *Sort:
		x.In = fn(x.In)
	case *Limit:
		x.In = fn(x.In)
	case *Union:
		for i := range x.Ins {
			x.Ins[i] = fn(x.Ins[i])
		}
	case *Join:
		x.Left = fn(x.Left)
		x.Right = fn(x.Right)
	}
}

// chooseBuildSides swaps join inputs so the smaller side becomes the build
// (right) input, preserving output column order with a compensating Project.
// Joins the cost-based enumerator already oriented (Placed) are left alone.
func chooseBuildSides(n Node, sc *StatsCache) Node {
	mutateChildren(n, func(c Node) Node { return chooseBuildSides(c, sc) })
	x, ok := n.(*Join)
	if !ok {
		return n
	}
	if x.Placed {
		return n // enumerator chose this orientation by cost
	}
	if x.Type == exec.LeftSemi || x.Type == exec.LeftAnti {
		return n // probe side is fixed by semantics
	}
	l := estimateRows(x.Left, sc)
	r := estimateRows(x.Right, sc)
	if l >= r {
		return n // right (build) already the smaller side
	}
	// Swap children and mirror the join type.
	swapped := &Join{
		Left: x.Right, Right: x.Left,
		LeftKeys: x.RightKeys, RightKeys: x.LeftKeys,
	}
	switch x.Type {
	case exec.Inner:
		swapped.Type = exec.Inner
	case exec.LeftOuter:
		swapped.Type = exec.RightOuter
	case exec.RightOuter:
		swapped.Type = exec.LeftOuter
	case exec.FullOuter:
		swapped.Type = exec.FullOuter
	default:
		return n
	}
	lw := x.Left.Schema().Len()
	rw := x.Right.Schema().Len()
	if x.Residual != nil {
		m := map[int]int{}
		for i := 0; i < lw; i++ {
			m[i] = rw + i
		}
		for i := 0; i < rw; i++ {
			m[lw+i] = i
		}
		swapped.Residual = expr.Remap(x.Residual, m)
	}
	// Restore the original left++right output order.
	outSchema := x.Schema()
	exprs := make([]expr.Expr, outSchema.Len())
	names := make([]string, outSchema.Len())
	for i := 0; i < lw; i++ {
		exprs[i] = expr.NewColRef(rw+i, outSchema.Cols[i].Name, outSchema.Cols[i].Typ)
		names[i] = outSchema.Cols[i].Name
	}
	for i := 0; i < rw; i++ {
		exprs[lw+i] = expr.NewColRef(i, outSchema.Cols[lw+i].Name, outSchema.Cols[lw+i].Typ)
		names[lw+i] = outSchema.Cols[lw+i].Name
	}
	return &Project{In: swapped, Exprs: exprs, Names: names}
}

// supported2012 reports whether the plan stays within the 2012 batch-mode
// repertoire: inner joins only, no UNION ALL, no scalar or DISTINCT
// aggregation, no outer/semi/anti joins. Queries outside it fell back to row
// mode, the regression the paper's enhancements eliminate.
func supported2012(n Node) bool {
	switch x := n.(type) {
	case *Join:
		if x.Type != exec.Inner {
			return false
		}
	case *Union:
		return false
	case *Agg:
		if len(x.GroupBy) == 0 {
			return false
		}
		for _, a := range x.Aggs {
			if a.Distinct {
				return false
			}
		}
	}
	for _, c := range children(n) {
		if !supported2012(c) {
			return false
		}
	}
	return true
}
