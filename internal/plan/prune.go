package plan

import (
	"sort"

	"apollo/internal/exec"
	"apollo/internal/expr"
)

// pruneColumns rewrites the tree so every Scan reads only the columns some
// ancestor actually uses — the projection pruning that lets a columnstore
// scan skip entire segments. The root keeps its full schema.
func pruneColumns(n Node) Node {
	all := make([]int, n.Schema().Len())
	for i := range all {
		all[i] = i
	}
	out, m := prune(n, all)
	// The root mapping must be the identity; if pruning reordered outputs,
	// restore them with a projection.
	identity := true
	for _, p := range all {
		if m[p] != p {
			identity = false
			break
		}
	}
	if identity {
		return out
	}
	sch := n.Schema()
	exprs := make([]expr.Expr, len(all))
	names := make([]string, len(all))
	for i := range all {
		exprs[i] = expr.NewColRef(m[i], sch.Cols[i].Name, sch.Cols[i].Typ)
		names[i] = sch.Cols[i].Name
	}
	return &Project{In: out, Exprs: exprs, Names: names}
}

// prune narrows n to produce (at least) the columns in needed (positions in
// n's output schema). It returns the rewritten node and a mapping from old
// output positions (for every position in needed) to new positions.
func prune(n Node, needed []int) (Node, map[int]int) {
	switch x := n.(type) {
	case *Scan:
		read := map[int]bool{}
		for _, p := range needed {
			read[p] = true
		}
		if x.Filter != nil {
			expr.ReferencedCols(x.Filter, read)
		}
		cols := make([]int, 0, len(read))
		for c := range read {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		m := map[int]int{}
		for i, c := range cols {
			m[c] = i
		}
		return &Scan{Table: x.Table, Filter: x.Filter, Cols: cols}, m

	case *Filter:
		childNeeded := map[int]bool{}
		for _, p := range needed {
			childNeeded[p] = true
		}
		expr.ReferencedCols(x.Pred, childNeeded)
		in, m := prune(x.In, keysOf(childNeeded))
		return &Filter{In: in, Pred: expr.Remap(x.Pred, m)}, m

	case *Project:
		keep := append([]int(nil), needed...)
		sort.Ints(keep)
		childNeeded := map[int]bool{}
		for _, p := range keep {
			expr.ReferencedCols(x.Exprs[p], childNeeded)
		}
		in, cm := prune(x.In, keysOf(childNeeded))
		exprs := make([]expr.Expr, len(keep))
		names := make([]string, len(keep))
		m := map[int]int{}
		for i, p := range keep {
			exprs[i] = expr.Remap(x.Exprs[p], cm)
			names[i] = x.Names[p]
			m[p] = i
		}
		return &Project{In: in, Exprs: exprs, Names: names}, m

	case *Join:
		lw := x.Left.Schema().Len()
		leftNeeded := map[int]bool{}
		rightNeeded := map[int]bool{}
		for _, p := range needed {
			if p < lw {
				leftNeeded[p] = true
			} else {
				rightNeeded[p-lw] = true
			}
		}
		for _, k := range x.LeftKeys {
			expr.ReferencedCols(k, leftNeeded)
		}
		for _, k := range x.RightKeys {
			expr.ReferencedCols(k, rightNeeded)
		}
		if x.Residual != nil {
			refs := map[int]bool{}
			expr.ReferencedCols(x.Residual, refs)
			for r := range refs {
				if r < lw {
					leftNeeded[r] = true
				} else {
					rightNeeded[r-lw] = true
				}
			}
		}
		left, lm := prune(x.Left, keysOf(leftNeeded))
		right, rm := prune(x.Right, keysOf(rightNeeded))
		newLW := left.Schema().Len()

		j := &Join{Left: left, Right: right, Type: x.Type}
		for i := range x.LeftKeys {
			j.LeftKeys = append(j.LeftKeys, expr.Remap(x.LeftKeys[i], lm))
			j.RightKeys = append(j.RightKeys, expr.Remap(x.RightKeys[i], rm))
		}
		if x.Residual != nil {
			cm := map[int]int{}
			for o, v := range lm {
				cm[o] = v
			}
			for o, v := range rm {
				cm[lw+o] = newLW + v
			}
			j.Residual = expr.Remap(x.Residual, cm)
		}
		m := map[int]int{}
		for _, p := range needed {
			if p < lw {
				m[p] = lm[p]
			} else {
				m[p] = newLW + rm[p-lw]
			}
		}
		return j, m

	case *Agg:
		childNeeded := map[int]bool{}
		for _, g := range x.GroupBy {
			expr.ReferencedCols(g, childNeeded)
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				expr.ReferencedCols(a.Arg, childNeeded)
			}
		}
		in, cm := prune(x.In, keysOf(childNeeded))
		a2 := &Agg{In: in, Names: x.Names}
		for _, g := range x.GroupBy {
			a2.GroupBy = append(a2.GroupBy, expr.Remap(g, cm))
		}
		for _, sp := range x.Aggs {
			ns := sp
			if sp.Arg != nil {
				ns.Arg = expr.Remap(sp.Arg, cm)
			}
			a2.Aggs = append(a2.Aggs, ns)
		}
		m := map[int]int{}
		for i := 0; i < x.Schema().Len(); i++ {
			m[i] = i // aggregation outputs are kept verbatim
		}
		return a2, m

	case *Sort:
		childNeeded := map[int]bool{}
		for _, p := range needed {
			childNeeded[p] = true
		}
		for _, k := range x.Keys {
			expr.ReferencedCols(k.E, childNeeded)
		}
		in, m := prune(x.In, keysOf(childNeeded))
		keys := make([]exec.SortKey, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = exec.SortKey{E: expr.Remap(k.E, m), Desc: k.Desc}
		}
		return &Sort{In: in, Keys: keys}, m

	case *Limit:
		in, m := prune(x.In, needed)
		return &Limit{In: in, Offset: x.Offset, N: x.N}, m

	case *Union:
		// Normalize every child to exactly the needed columns, in order, so
		// branch schemas stay aligned.
		keep := append([]int(nil), needed...)
		sort.Ints(keep)
		sch := x.Schema()
		ins := make([]Node, len(x.Ins))
		for i, c := range x.Ins {
			pc, cm := prune(c, keep)
			exprs := make([]expr.Expr, len(keep))
			names := make([]string, len(keep))
			for j, p := range keep {
				exprs[j] = expr.NewColRef(cm[p], sch.Cols[p].Name, sch.Cols[p].Typ)
				names[j] = sch.Cols[p].Name
			}
			ins[i] = &Project{In: pc, Exprs: exprs, Names: names}
		}
		m := map[int]int{}
		for j, p := range keep {
			m[p] = j
		}
		return &Union{Ins: ins}, m

	default:
		panic("plan: prune of unknown node")
	}
}

func keysOf(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
