package plan

import (
	"apollo/internal/exec"
	"apollo/internal/exec/batchexec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/table"
)

// tryMetadataAgg recognizes scalar aggregations answerable from the segment
// directory without touching row data — one of the §6 query-optimization
// enhancements the columnstore's rich metadata enables:
//
//	SELECT COUNT(*) FROM t                -- row counts are directory entries
//	SELECT MIN(c), MAX(c) FROM t         -- per-segment min/max fold together
//
// Requirements: no GROUP BY, no filter on the scan, every aggregate either
// COUNT(*) or MIN/MAX of a plain column; MIN/MAX additionally require a
// delete-free table (a deleted row could hold the extremum). Delta rows are
// folded in by scanning them directly (they are few by construction).
func tryMetadataAgg(a *Agg, view table.ReadView) (batchexec.Operator, bool) {
	if len(a.GroupBy) != 0 {
		return nil, false
	}
	scan, ok := a.In.(*Scan)
	if !ok || scan.Filter != nil {
		return nil, false
	}
	needMinMax := false
	for _, sp := range a.Aggs {
		switch sp.Kind {
		case exec.CountStar:
		case exec.Min, exec.Max:
			if _, isCol := sp.Arg.(*expr.ColRef); !isCol {
				return nil, false
			}
			needMinMax = true
		default:
			return nil, false
		}
	}

	snap := scan.Table.SnapshotView(view)
	if needMinMax {
		for _, bm := range snap.Deletes {
			if bm != nil && bm.Any() {
				return nil, false
			}
		}
	}

	out := make(sqltypes.Row, len(a.Aggs))
	for i, sp := range a.Aggs {
		switch sp.Kind {
		case exec.CountStar:
			out[i] = sqltypes.NewInt(int64(snap.Rows()))
		case exec.Min, exec.Max:
			col := sp.Arg.(*expr.ColRef)
			tableCol := col.Idx
			if scan.Cols != nil {
				tableCol = scan.Cols[col.Idx]
			}
			v := sqltypes.NewNull(sp.ResultType())
			fold := func(cand sqltypes.Value) {
				if cand.Null {
					return
				}
				if v.Null ||
					(sp.Kind == exec.Min && sqltypes.Compare(cand, v) < 0) ||
					(sp.Kind == exec.Max && sqltypes.Compare(cand, v) > 0) {
					v = cand
				}
			}
			for _, g := range snap.Groups {
				if sp.Kind == exec.Min {
					fold(g.Segs[tableCol].Min)
				} else {
					fold(g.Segs[tableCol].Max)
				}
			}
			for _, row := range snap.Delta {
				fold(row[tableCol])
			}
			out[i] = v
		}
	}
	return &batchexec.Values{Rows: []sqltypes.Row{out}, Sch: a.Schema()}, true
}
