package plan

import (
	"math"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/stats"
)

// Cost-model constants, in abstract units of one batch-mode row touched.
// Ratios matter, not absolutes: building a hash table costs about twice a
// probe (insert + allocation vs lookup), emitting an output row costs about
// half (copy only), and a Bloom filter trades a cheap per-probe-row test
// against the probe and output work of every row it rejects.
const (
	costScanRow   = 1.0
	costBuildRow  = 2.0
	costProbeRow  = 1.0
	costOutputRow = 0.5

	costBloomBuildRow = 0.25 // add one build key to the filter
	costBloomTestRow  = 0.1  // test one probe value, vectorized in the scan
	costBloomSavedRow = costProbeRow + costOutputRow

	// dopRowsPerWorker grants one exchange worker per this many estimated
	// probe rows, capped by Options.Parallel. Sized to the engine's small
	// row groups so modest tables still exercise multi-worker pipelines.
	dopRowsPerWorker = 256
)

// estimateRows estimates the output cardinality of a plan node from table
// statistics: histogram/NDV selectivity for filter conjuncts (traced to base
// scan columns), NDV-based join cardinality, and group-count products for
// aggregations.
func estimateRows(n Node, sc *StatsCache) float64 {
	switch x := n.(type) {
	case *Scan:
		st := sc.get(x.Table)
		rows := float64(st.Rows)
		if x.Filter != nil {
			rows *= st.SelectivityOf(expr.Conjuncts(x.Filter))
		}
		return maxF(rows, 1)
	case *Filter:
		in := estimateRows(x.In, sc)
		conjs := expr.Conjuncts(x.Pred)
		sels := make([]float64, len(conjs))
		for i, c := range conjs {
			sels[i] = conjunctSelAt(x.In, c, sc)
		}
		return maxF(in*stats.CombineSelectivities(sels), 1)
	case *Project:
		return estimateRows(x.In, sc)
	case *Join:
		return estimateJoinRows(x, sc)
	case *Agg:
		in := estimateRows(x.In, sc)
		if len(x.GroupBy) == 0 {
			return 1
		}
		groups := 1.0
		for _, g := range x.GroupBy {
			if cr, ok := g.(*expr.ColRef); ok {
				groups *= colNDV(x.In, cr.Idx, sc, in)
			} else {
				groups *= 10 // date parts, arithmetic: assume few
			}
		}
		return maxF(minF(groups, in), 1)
	case *Sort:
		return estimateRows(x.In, sc)
	case *Limit:
		in := estimateRows(x.In, sc)
		if x.N >= 0 && float64(x.N) < in {
			return float64(x.N)
		}
		return in
	case *Union:
		total := 0.0
		for _, c := range x.Ins {
			total += estimateRows(c, sc)
		}
		return total
	default:
		return 1
	}
}

// estimateJoinRows estimates join cardinality: |L ⋈ R| = |L|·|R|·sel, where
// each equi-key contributes 1/max(ndvL, ndvR) and remaining residual
// conjuncts their single-column selectivity (or a default guess), combined
// with the exponential backoff damp.
func estimateJoinRows(x *Join, sc *StatsCache) float64 {
	l := estimateRows(x.Left, sc)
	r := estimateRows(x.Right, sc)
	lw := x.Left.Schema().Len()

	var sels []float64    // all conjuncts, for inner/outer cardinality
	var resSels []float64 // non-equi residuals only, for semi/anti match
	var ndvL, ndvR []float64
	addKey := func(lk, rk expr.Expr) bool {
		lc, lok := lk.(*expr.ColRef)
		rc, rok := rk.(*expr.ColRef)
		if !lok || !rok {
			return false
		}
		nl := colNDV(x.Left, lc.Idx, sc, l)
		nr := colNDV(x.Right, rc.Idx, sc, r)
		ndvL = append(ndvL, nl)
		ndvR = append(ndvR, nr)
		sels = append(sels, 1/maxF(maxF(nl, nr), 1))
		return true
	}
	addResidual := func(c expr.Expr) {
		sel := residualSel(x, c, lw, sc)
		sels = append(sels, sel)
		resSels = append(resSels, sel)
	}
	for i := range x.LeftKeys {
		if !addKey(x.LeftKeys[i], x.RightKeys[i]) {
			sels = append(sels, stats.DefaultConjunctSelectivity)
		}
	}
	if x.Residual != nil {
		for _, c := range expr.Conjuncts(x.Residual) {
			if lk, rk, ok := equiKey(c, lw); ok {
				if addKey(lk, rk) {
					continue
				}
			}
			addResidual(c)
		}
	}
	sel := stats.CombineSelectivities(sels)

	switch x.Type {
	case exec.LeftSemi, exec.LeftAnti:
		// Fraction of probe rows with at least one surviving match: how many
		// of the probe's distinct key values the (residual-thinned) build
		// side is expected to cover.
		match := 0.5
		if len(ndvL) > 0 {
			rEff := r
			for _, s := range resSels {
				rEff *= s
			}
			covered := coveredKeys(ndvR[0], rEff)
			match = clampF(covered/maxF(ndvL[0], 1), 0, 1)
		}
		if x.Type == exec.LeftAnti {
			match = 1 - match
		}
		return maxF(l*match, 1)
	case exec.LeftOuter:
		return maxF(l*r*sel, l)
	case exec.RightOuter:
		return maxF(l*r*sel, r)
	case exec.FullOuter:
		return maxF(l*r*sel, l+r)
	default:
		return maxF(l*r*sel, 1)
	}
}

// coveredKeys is the expected number of distinct key values hit by rows
// draws from a domain of ndv values (coupon-collector coverage).
func coveredKeys(ndv, rows float64) float64 {
	if ndv <= 1 {
		return minF(ndv, rows)
	}
	return ndv * (1 - math.Pow(1-1/ndv, maxF(rows, 0)))
}

// residualSel estimates the selectivity of a non-equi join residual bound to
// the concatenated left++right schema: single-column conjuncts trace into
// whichever side owns the column.
func residualSel(x *Join, c expr.Expr, lw int, sc *StatsCache) float64 {
	refs := map[int]bool{}
	expr.ReferencedCols(c, refs)
	if len(refs) != 1 {
		return stats.DefaultConjunctSelectivity
	}
	var col int
	for r := range refs {
		col = r
	}
	if col < lw {
		return conjunctSelAt(x.Left, c, sc)
	}
	return conjunctSelAt(x.Right, expr.Remap(c, map[int]int{col: col - lw}), sc)
}

// conjunctSelAt estimates the selectivity of one conjunct evaluated above
// node in: single-column predicates are traced through filters, projections,
// and probe sides down to the base scan column they constrain, where table
// statistics apply; everything else gets the default guess.
func conjunctSelAt(in Node, c expr.Expr, sc *StatsCache) float64 {
	refs := map[int]bool{}
	expr.ReferencedCols(c, refs)
	if len(refs) != 1 {
		return stats.DefaultConjunctSelectivity
	}
	var col int
	for r := range refs {
		col = r
	}
	scanNode, tableCol, ok := traceToScan(in, col)
	if !ok {
		return stats.DefaultConjunctSelectivity
	}
	ts := sc.get(scanNode.Table)
	return ts.ConjunctSelectivity(expr.Remap(c, map[int]int{col: tableCol}))
}

// colNDV estimates the number of distinct values column col (bound to n's
// schema) takes in n's output: the base column's distinct estimate, capped by
// the node's estimated row count. Untraceable columns (computed expressions)
// are assumed key-like.
func colNDV(n Node, col int, sc *StatsCache, rowsEst float64) float64 {
	scanNode, tableCol, ok := traceToScan(n, col)
	if !ok {
		return maxF(rowsEst, 1)
	}
	ts := sc.get(scanNode.Table)
	ndv := float64(ts.Cols[tableCol].DistinctEst)
	return minF(maxF(ndv, 1), maxF(rowsEst, 1))
}

// dopFor picks the degree of parallelism for a pipeline over node n: one
// worker per dopRowsPerWorker estimated rows, capped by the configured
// parallelism. FixedDOP pins the global knob (ablation / experiments).
func (cc *batchCompiler) dopFor(n Node) int {
	dop := cc.opts.Parallel
	if dop <= 1 || cc.opts.FixedDOP {
		return dop
	}
	rows := estimateRows(n, cc.sc)
	if byRows := int(rows/dopRowsPerWorker) + 1; byRows < dop {
		dop = byRows
	}
	if dop < 1 {
		dop = 1
	}
	return dop
}

// annotateEstimates records estimated output rows for every node in the
// optimized plan (EXPLAIN's est= column).
func annotateEstimates(n Node, sc *StatsCache, m map[Node]float64) {
	m[n] = estimateRows(n, sc)
	for _, c := range children(n) {
		annotateEstimates(c, sc, m)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
