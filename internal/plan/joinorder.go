package plan

import (
	"math/bits"
	"sort"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/stats"
)

// Join-enumeration limits. Regions up to dpMaxLeaves relations are solved
// exactly by DP over subsets (3^n subset splits); larger regions fall back to
// greedy pairwise combination. Regions beyond maxRegionLeaves are left in
// binder order (they would not fit the bitmask).
const (
	dpMaxLeaves     = 6
	maxRegionLeaves = 32
)

// reorderJoins rewrites each maximal inner-join region — a subtree of
// consecutive inner joins — into the cheapest join tree the cost model can
// find, choosing both the join order and the build/probe orientation of each
// join from estimated cardinalities. Non-inner joins, aggregations, and other
// nodes bound the region and are treated as leaves (their own subtrees are
// reordered recursively). A compensating projection restores the original
// output column order, so the rewrite is invisible to parents.
func reorderJoins(n Node, sc *StatsCache) Node {
	x, ok := n.(*Join)
	if !ok || x.Type != exec.Inner {
		mutateChildren(n, func(c Node) Node { return reorderJoins(c, sc) })
		return n
	}
	rg := &joinRegion{schema: x.Schema()}
	rg.flatten(x, 0, sc)
	if len(rg.leaves) < 2 || len(rg.leaves) > maxRegionLeaves {
		return x
	}
	rg.classifyConjuncts()
	best := rg.enumerate(sc)
	if best == nil {
		// Disconnected join graph (no equi-predicate linking some subset):
		// keep the binder's order, which row mode can still execute.
		return x
	}
	mJoinRegionsReordered.Inc()
	return rg.restoreOrder(best)
}

// joinLeaf is one relation of a join region: any node that is not an inner
// join (scans, filtered scans, semi joins, aggregations, ...).
type joinLeaf struct {
	node  Node
	start int // column offset in the region's original concatenated schema
	width int
	rows  float64
}

// regionConj is one join-region conjunct bound to the region's original
// concatenated schema.
type regionConj struct {
	e    expr.Expr
	mask uint64 // leaves referenced
	// For cross-leaf equi-predicates (col = col): the two global columns.
	equi       bool
	lcol, rcol int
}

type joinRegion struct {
	leaves []joinLeaf
	conjs  []expr.Expr // global binding, gathered during flatten
	cc     []regionConj
	schema *sqltypes.Schema
}

// flatten walks the maximal inner-join subtree rooted at n, collecting
// leaves (with their global column offsets) and all join predicates — both
// already-extracted equi-keys and residuals — rebound to the region's
// concatenated schema. Returns the subtree's column width.
func (rg *joinRegion) flatten(n Node, offset int, sc *StatsCache) int {
	if j, ok := n.(*Join); ok && j.Type == exec.Inner {
		lw := rg.flatten(j.Left, offset, sc)
		rw := rg.flatten(j.Right, offset+lw, sc)
		for i := range j.LeftKeys {
			lk := remapShift(j.LeftKeys[i], offset)
			rk := remapShift(j.RightKeys[i], offset+lw)
			rg.conjs = append(rg.conjs, expr.NewCmp(expr.EQ, lk, rk))
		}
		if j.Residual != nil {
			rg.conjs = append(rg.conjs, expr.Conjuncts(remapShift(j.Residual, offset))...)
		}
		return lw + rw
	}
	leaf := reorderJoins(n, sc)
	w := leaf.Schema().Len()
	rg.leaves = append(rg.leaves, joinLeaf{
		node: leaf, start: offset, width: w,
		rows: estimateRows(leaf, sc),
	})
	return w
}

// remapShift rebinds an expression by adding shift to every column index.
func remapShift(e expr.Expr, shift int) expr.Expr {
	if shift == 0 {
		return e
	}
	refs := map[int]bool{}
	expr.ReferencedCols(e, refs)
	m := make(map[int]int, len(refs))
	for r := range refs {
		m[r] = r + shift
	}
	return expr.Remap(e, m)
}

// leafOfCol maps a global column index to its leaf.
func (rg *joinRegion) leafOfCol(g int) int {
	i := sort.Search(len(rg.leaves), func(j int) bool { return rg.leaves[j].start > g })
	return i - 1
}

// classifyConjuncts computes each conjunct's leaf mask and equi-key shape.
// Conjuncts confined to a single leaf (defensive: pushdown should have sunk
// them) are applied to that leaf immediately.
func (rg *joinRegion) classifyConjuncts() {
	for _, e := range rg.conjs {
		refs := map[int]bool{}
		expr.ReferencedCols(e, refs)
		var mask uint64
		for r := range refs {
			mask |= 1 << uint(rg.leafOfCol(r))
		}
		if bits.OnesCount64(mask) <= 1 {
			li := 0
			if mask != 0 {
				li = bits.TrailingZeros64(mask)
			}
			leaf := &rg.leaves[li]
			leaf.node = &Filter{In: leaf.node, Pred: remapShift(e, -leaf.start)}
			leaf.rows = maxF(leaf.rows*stats.DefaultConjunctSelectivity, 1)
			continue
		}
		c := regionConj{e: e, mask: mask, lcol: -1, rcol: -1}
		if cmp, ok := e.(*expr.Cmp); ok && cmp.Op == expr.EQ {
			l, lok := cmp.L.(*expr.ColRef)
			r, rok := cmp.R.(*expr.ColRef)
			if lok && rok && rg.leafOfCol(l.Idx) != rg.leafOfCol(r.Idx) {
				c.equi, c.lcol, c.rcol = true, l.Idx, r.Idx
			}
		}
		rg.cc = append(rg.cc, c)
	}
}

// dpPlan is one candidate join tree over a leaf subset.
type dpPlan struct {
	node  Node
	mask  uint64
	order []int // leaf indexes in output (concat) order
	rows  float64
	cost  float64
}

// enumerate finds the cheapest join tree covering every leaf: exact DP over
// subsets up to dpMaxLeaves relations, greedy pairwise combination above.
// Returns nil when the equi-join graph is disconnected (batch hash joins
// need at least one equality key per join).
func (rg *joinRegion) enumerate(sc *StatsCache) *dpPlan {
	n := len(rg.leaves)
	if n <= dpMaxLeaves {
		return rg.enumerateDP(sc)
	}
	return rg.enumerateGreedy(sc)
}

func (rg *joinRegion) leafPlan(i int) *dpPlan {
	l := &rg.leaves[i]
	return &dpPlan{
		node: l.node, mask: 1 << uint(i), order: []int{i},
		rows: l.rows, cost: costScanRow * l.rows,
	}
}

func (rg *joinRegion) enumerateDP(sc *StatsCache) *dpPlan {
	n := len(rg.leaves)
	best := make([]*dpPlan, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = rg.leafPlan(i)
	}
	full := uint64(1<<uint(n)) - 1
	for mask := uint64(1); mask <= full; mask++ {
		if bits.OnesCount64(mask) < 2 {
			continue
		}
		// Canonical submask walk: deterministic order, strict improvement.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			a, b := best[sub], best[mask^sub]
			if a == nil || b == nil {
				continue
			}
			p := rg.combine(a, b, sc)
			if p != nil && (best[mask] == nil || p.cost < best[mask].cost) {
				best[mask] = p
			}
		}
	}
	return best[full]
}

func (rg *joinRegion) enumerateGreedy(sc *StatsCache) *dpPlan {
	plans := make([]*dpPlan, len(rg.leaves))
	for i := range rg.leaves {
		plans[i] = rg.leafPlan(i)
	}
	for len(plans) > 1 {
		var bp *dpPlan
		bi, bj := -1, -1
		for i := 0; i < len(plans); i++ {
			for j := 0; j < len(plans); j++ {
				if i == j {
					continue
				}
				p := rg.combine(plans[i], plans[j], sc)
				if p != nil && (bp == nil || p.cost < bp.cost) {
					bp, bi, bj = p, i, j
				}
			}
		}
		if bp == nil {
			return nil // disconnected
		}
		if bi > bj {
			bi, bj = bj, bi
			// bp stays: it already encodes its own orientation.
		}
		plans[bi] = bp
		plans = append(plans[:bj], plans[bj+1:]...)
	}
	return plans[0]
}

// combine joins candidate a (probe side) with b (build side), attaching every
// conjunct that spans the two and estimating cardinality and cost. Returns
// nil when no equi-predicate connects the sides: batch hash joins require an
// equality key, so such a join is never formed.
func (rg *joinRegion) combine(a, b *dpPlan, sc *StatsCache) *dpPlan {
	both := a.mask | b.mask
	var applicable []regionConj
	hasEqui := false
	for _, c := range rg.cc {
		if c.mask&both != c.mask || c.mask&a.mask == 0 || c.mask&b.mask == 0 {
			continue
		}
		applicable = append(applicable, c)
		if c.equi {
			hasEqui = true
		}
	}
	if !hasEqui {
		return nil
	}

	order := make([]int, 0, len(a.order)+len(b.order))
	order = append(order, a.order...)
	order = append(order, b.order...)
	toLocal := rg.localMapping(order)

	// Selectivity: equi-keys via NDV, everything else the default guess,
	// combined with the exponential backoff damp.
	var sels []float64
	var residual []expr.Expr
	for _, c := range applicable {
		residual = append(residual, expr.Remap(c.e, toLocal))
		if !c.equi {
			sels = append(sels, stats.DefaultConjunctSelectivity)
			continue
		}
		nl := rg.globalColNDV(c.lcol, sc, a, b)
		nr := rg.globalColNDV(c.rcol, sc, a, b)
		sels = append(sels, 1/maxF(maxF(nl, nr), 1))
	}
	rows := maxF(a.rows*b.rows*stats.CombineSelectivities(sels), 1)
	cost := a.cost + b.cost + costBuildRow*b.rows + costProbeRow*a.rows + costOutputRow*rows

	join := &Join{
		Left: a.node, Right: b.node, Type: exec.Inner,
		Residual: andAll(residual), Placed: true,
	}
	return &dpPlan{node: join, mask: both, order: order, rows: rows, cost: cost}
}

// localMapping maps global (original concat) column indexes to positions in
// the concatenation of leaves in the given order.
func (rg *joinRegion) localMapping(order []int) map[int]int {
	m := map[int]int{}
	pos := 0
	for _, li := range order {
		l := &rg.leaves[li]
		for i := 0; i < l.width; i++ {
			m[l.start+i] = pos
			pos++
		}
	}
	return m
}

// globalColNDV estimates the distinct count of a global column within
// whichever candidate side contains it.
func (rg *joinRegion) globalColNDV(g int, sc *StatsCache, a, b *dpPlan) float64 {
	li := rg.leafOfCol(g)
	leaf := &rg.leaves[li]
	side := a
	if b.mask&(1<<uint(li)) != 0 {
		side = b
	}
	ndv := colNDV(leaf.node, g-leaf.start, sc, leaf.rows)
	// The column's distinct count cannot exceed the side's estimated rows.
	return minF(maxF(ndv, 1), maxF(side.rows, 1))
}

// restoreOrder wraps the winning join tree in a projection restoring the
// region's original output column order (skipped when the order is already
// identical).
func (rg *joinRegion) restoreOrder(best *dpPlan) Node {
	identity := true
	for i, li := range best.order {
		if i != li {
			identity = false
			break
		}
	}
	if identity {
		return best.node
	}
	toLocal := rg.localMapping(best.order)
	total := rg.schema.Len()
	exprs := make([]expr.Expr, total)
	names := make([]string, total)
	for g := 0; g < total; g++ {
		col := rg.schema.Cols[g]
		exprs[g] = expr.NewColRef(toLocal[g], col.Name, col.Typ)
		names[g] = col.Name
	}
	return &Project{In: best.node, Exprs: exprs, Names: names}
}
