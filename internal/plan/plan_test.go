package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"apollo/internal/exec"
	"apollo/internal/expr"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// Star-schema fixtures: a fact table and a dimension table.

func factSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "fk", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "qty", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "price", Typ: sqltypes.Float64},
		sqltypes.Column{Name: "d", Typ: sqltypes.Date},
	)
}

func dimSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "pk", Typ: sqltypes.Int64},
		sqltypes.Column{Name: "name", Typ: sqltypes.String},
		sqltypes.Column{Name: "cat", Typ: sqltypes.String},
	)
}

type fixture struct {
	fact, dim         *table.Table
	factRows, dimRows []sqltypes.Row
}

func makeFixture(t *testing.T, nFact, nDim int) *fixture {
	t.Helper()
	store := storage.NewStore(storage.DefaultBufferPoolBytes)
	opts := table.Options{RowGroupSize: 400, BulkLoadThreshold: 50, Columnstore: table.DefaultOptions().Columnstore}
	f := &fixture{}
	rng := rand.New(rand.NewSource(21))
	cats := []string{"tools", "toys", "food"}
	for i := 0; i < nDim; i++ {
		f.dimRows = append(f.dimRows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("name%d", i)),
			sqltypes.NewString(cats[i%len(cats)]),
		})
	}
	for i := 0; i < nFact; i++ {
		f.factRows = append(f.factRows, sqltypes.Row{
			sqltypes.NewInt(int64(rng.Intn(nDim))),
			sqltypes.NewInt(int64(1 + rng.Intn(10))),
			sqltypes.NewFloat(float64(rng.Intn(10000)) / 100),
			sqltypes.NewDate(int64(9000 + rng.Intn(365))),
		})
	}
	f.fact = table.New(store, "fact", factSchema(), opts)
	if err := f.fact.BulkLoad(f.factRows); err != nil {
		t.Fatal(err)
	}
	f.dim = table.New(store, "dim", dimSchema(), opts)
	if err := f.dim.BulkLoad(f.dimRows); err != nil {
		t.Fatal(err)
	}
	return f
}

func col(i int, name string, t sqltypes.Type) *expr.ColRef { return expr.NewColRef(i, name, t) }

// starPlan: SELECT cat, SUM(qty) FROM fact JOIN dim ON fk = pk
// WHERE d BETWEEN lo AND hi AND cat = 'tools' GROUP BY cat
func starPlan(f *fixture, dateLo, dateHi int64) Node {
	join := &Join{
		Left:  &Scan{Table: f.fact},
		Right: &Scan{Table: f.dim},
		Type:  exec.Inner,
		Residual: expr.NewCmp(expr.EQ,
			col(0, "fk", sqltypes.Int64),
			col(4, "pk", sqltypes.Int64)),
	}
	where := &Filter{In: join, Pred: expr.NewAnd(
		expr.NewCmp(expr.GE, col(3, "d", sqltypes.Date), expr.NewConst(sqltypes.NewDate(dateLo))),
		expr.NewCmp(expr.LE, col(3, "d", sqltypes.Date), expr.NewConst(sqltypes.NewDate(dateHi))),
		expr.NewCmp(expr.EQ, col(6, "cat", sqltypes.String), expr.NewConst(sqltypes.NewString("tools"))),
	)}
	return &Agg{
		In:      where,
		GroupBy: []expr.Expr{col(6, "cat", sqltypes.String)},
		Names:   []string{"cat"},
		Aggs: []exec.AggSpec{
			{Kind: exec.Sum, Arg: col(1, "qty", sqltypes.Int64), Name: "total"},
			{Kind: exec.CountStar, Name: "n"},
		},
	}
}

// refStar computes the expected result directly.
func refStar(f *fixture, dateLo, dateHi int64) (total, n int64) {
	for _, r := range f.factRows {
		if r[3].I < dateLo || r[3].I > dateHi {
			continue
		}
		d := f.dimRows[r[0].I]
		if d[2].S != "tools" {
			continue
		}
		total += r[1].I
		n++
	}
	return
}

func runModes(t *testing.T, node Node, opts Options) map[Mode][]sqltypes.Row {
	t.Helper()
	out := map[Mode][]sqltypes.Row{}
	for _, m := range []Mode{Mode2014, Mode2012, ModeRow} {
		o := opts
		o.Mode = m
		c, err := Compile(node, o)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		rows, err := c.Run()
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		out[m] = rows
	}
	return out
}

func TestStarQueryAllModesAgree(t *testing.T) {
	f := makeFixture(t, 5000, 60)
	node := starPlan(f, 9100, 9200)
	wantTotal, wantN := refStar(f, 9100, 9200)
	for mode, rows := range runModes(t, starPlan(f, 9100, 9200), Options{}) {
		if len(rows) != 1 {
			t.Fatalf("mode %v: rows = %d", mode, len(rows))
		}
		r := rows[0]
		if r[0].S != "tools" || r[1].I != wantTotal || r[2].I != wantN {
			t.Fatalf("mode %v: got %v, want tools/%d/%d", mode, r, wantTotal, wantN)
		}
	}
	_ = node
}

func TestPushdownReachesScan(t *testing.T) {
	f := makeFixture(t, 3000, 40)
	c, err := Compile(starPlan(f, 9050, 9100), Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// The date range must have been pushed into a scan as an exact range.
	var narrowed bool
	for _, st := range c.ScanStats {
		if st.RowsAfterRange < st.RowsConsidered {
			narrowed = true
		}
	}
	if !narrowed {
		t.Fatalf("no scan narrowed rows; explain:\n%s", c.Explain())
	}
}

func TestBloomPlacement(t *testing.T) {
	f := makeFixture(t, 5000, 60)
	// Selective dimension filter -> bloom on the fact scan.
	c, err := Compile(starPlan(f, 8000, 12000), Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	filtered := false
	for _, st := range c.ScanStats {
		if st.RowsAfterBloom < st.RowsAfterRange {
			filtered = true
		}
	}
	if !filtered {
		t.Fatalf("bloom never filtered; explain:\n%s", c.Explain())
	}
	// With NoBloom the counts must stay equal.
	c2, err := Compile(starPlan(f, 8000, 12000), Options{Mode: Mode2014, NoBloom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	for _, st := range c2.ScanStats {
		if st.RowsAfterBloom != st.RowsAfterRange {
			t.Fatal("NoBloom still filtered")
		}
	}
}

func TestBuildSideSwap(t *testing.T) {
	f := makeFixture(t, 4000, 50)
	// Write the join with the big fact table on the BUILD (right) side; the
	// optimizer should swap so the dimension becomes the build.
	join := &Join{
		Left:  &Scan{Table: f.dim},
		Right: &Scan{Table: f.fact},
		Type:  exec.Inner,
		Residual: expr.NewCmp(expr.EQ,
			col(0, "pk", sqltypes.Int64),
			col(3, "fk", sqltypes.Int64)),
	}
	c, err := Compile(join, Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Tree(c.Plan), "Join") {
		t.Fatal("join missing")
	}
	rows, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(f.factRows) {
		t.Fatalf("rows = %d, want %d", len(rows), len(f.factRows))
	}
	// Output order: dim columns first (as written).
	if rows[0][0].Typ != sqltypes.Int64 || c.Schema.Cols[1].Name != "name" {
		t.Fatalf("schema order lost: %v", c.Schema)
	}
	// Non-swapped run must agree.
	c2, err := Compile(&Join{
		Left: &Scan{Table: f.dim}, Right: &Scan{Table: f.fact}, Type: exec.Inner,
		Residual: expr.NewCmp(expr.EQ, col(0, "pk", sqltypes.Int64), col(3, "fk", sqltypes.Int64)),
	}, Options{Mode: Mode2014, NoBuildSideSwap: true})
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != len(rows) {
		t.Fatalf("swap changed cardinality: %d vs %d", len(rows), len(rows2))
	}
	count := func(rs []sqltypes.Row) map[string]int {
		m := map[string]int{}
		for _, r := range rs {
			m[r.String()]++
		}
		return m
	}
	ca, cb := count(rows), count(rows2)
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("swap changed results at %q", k)
		}
	}
}

func TestMode2012FallsBackForOuterJoin(t *testing.T) {
	f := makeFixture(t, 1000, 20)
	join := &Join{
		Left:      &Scan{Table: f.fact},
		Right:     &Scan{Table: f.dim},
		Type:      exec.LeftOuter,
		LeftKeys:  []expr.Expr{col(0, "fk", sqltypes.Int64)},
		RightKeys: []expr.Expr{col(0, "pk", sqltypes.Int64)},
	}
	c12, err := Compile(join, Options{Mode: Mode2012, NoBuildSideSwap: true})
	if err != nil {
		t.Fatal(err)
	}
	if c12.BatchMode {
		t.Fatal("2012 mode must fall back to row mode for outer join")
	}
	c14, err := Compile(join, Options{Mode: Mode2014, NoBuildSideSwap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c14.BatchMode {
		t.Fatal("2014 mode must stay batch")
	}
	r12, err := c12.Run()
	if err != nil {
		t.Fatal(err)
	}
	r14, err := c14.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r12) != len(r14) {
		t.Fatalf("modes disagree: %d vs %d", len(r12), len(r14))
	}
}

func TestMode2012StaysBatchForInnerJoinAgg(t *testing.T) {
	f := makeFixture(t, 1000, 20)
	c, err := Compile(starPlan(f, 9000, 9400), Options{Mode: Mode2012})
	if err != nil {
		t.Fatal(err)
	}
	if !c.BatchMode {
		t.Fatal("2012 should support inner join + group-by agg in batch")
	}
}

func TestTopNCompilation(t *testing.T) {
	f := makeFixture(t, 2000, 30)
	node := &Limit{
		N: 5,
		In: &Sort{
			In:   &Scan{Table: f.fact},
			Keys: []exec.SortKey{{E: col(2, "price", sqltypes.Float64), Desc: true}},
		},
	}
	for mode, rows := range runModes(t, node, Options{}) {
		if len(rows) != 5 {
			t.Fatalf("mode %v: rows = %d", mode, len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if rows[i-1][2].F < rows[i][2].F {
				t.Fatalf("mode %v: order violated", mode)
			}
		}
	}
}

func TestSemiJoinPlan(t *testing.T) {
	f := makeFixture(t, 2000, 30)
	// fact rows whose dim is in category 'toys' (semi join).
	dimScan := &Filter{
		In:   &Scan{Table: f.dim},
		Pred: expr.NewCmp(expr.EQ, col(2, "cat", sqltypes.String), expr.NewConst(sqltypes.NewString("toys"))),
	}
	semi := &Join{
		Left: &Scan{Table: f.fact}, Right: dimScan, Type: exec.LeftSemi,
		LeftKeys:  []expr.Expr{col(0, "fk", sqltypes.Int64)},
		RightKeys: []expr.Expr{col(0, "pk", sqltypes.Int64)},
	}
	want := 0
	for _, r := range f.factRows {
		if f.dimRows[r[0].I][2].S == "toys" {
			want++
		}
	}
	for mode, rows := range runModes(t, semi, Options{}) {
		if len(rows) != want {
			t.Fatalf("mode %v: semi rows = %d, want %d", mode, len(rows), want)
		}
	}
}

func TestUnionPlan(t *testing.T) {
	f := makeFixture(t, 500, 10)
	mk := func(lo int64) Node {
		return &Filter{
			In:   &Scan{Table: f.fact},
			Pred: expr.NewCmp(expr.GE, col(3, "d", sqltypes.Date), expr.NewConst(sqltypes.NewDate(lo))),
		}
	}
	u := &Union{Ins: []Node{mk(9000), mk(9900)}}
	res := runModes(t, u, Options{})
	if len(res[Mode2014]) != len(res[ModeRow]) {
		t.Fatalf("union disagrees: %d vs %d", len(res[Mode2014]), len(res[ModeRow]))
	}
	// 2012 must fall back for UNION ALL.
	c, err := Compile(u, Options{Mode: Mode2012})
	if err != nil {
		t.Fatal(err)
	}
	if c.BatchMode {
		t.Fatal("2012 must fall back for UNION ALL")
	}
}

func TestSpillThroughPlanner(t *testing.T) {
	f := makeFixture(t, 20000, 2000)
	join := &Join{
		Left: &Scan{Table: f.fact}, Right: &Scan{Table: f.dim}, Type: exec.Inner,
		LeftKeys:  []expr.Expr{col(0, "fk", sqltypes.Int64)},
		RightKeys: []expr.Expr{col(0, "pk", sqltypes.Int64)},
	}
	spill := storage.NewStore(0)
	c, err := Compile(join, Options{Mode: Mode2014, MemoryBudget: 16 << 10, SpillStore: spill, NoBuildSideSwap: true, NoBloom: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if c.Tracker == nil || c.Tracker.Spills() == 0 {
		t.Fatal("expected spill under tiny grant")
	}
}

func TestParallelPlanAgrees(t *testing.T) {
	f := makeFixture(t, 10000, 100)
	node := starPlan(f, 9000, 9365)
	serial, err := Compile(starPlan(f, 9000, 9365), Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile(node, Options{Mode: Mode2014, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rp) != 1 || rs[0][1].I != rp[0][1].I || rs[0][2].I != rp[0][2].I {
		t.Fatalf("parallel disagrees: %v vs %v", rs, rp)
	}
}

func TestMetadataOnlyAggregates(t *testing.T) {
	f := makeFixture(t, 3000, 40)
	node := &Agg{
		In: &Scan{Table: f.fact},
		Aggs: []exec.AggSpec{
			{Kind: exec.CountStar, Name: "n"},
			{Kind: exec.Min, Arg: col(3, "d", sqltypes.Date), Name: "mn"},
			{Kind: exec.Max, Arg: col(2, "price", sqltypes.Float64), Name: "mx"},
		},
	}
	c, err := Compile(node, Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if !c.MetadataOnly {
		t.Fatalf("expected metadata-only plan:\n%s", c.Explain())
	}
	rows, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the general path.
	c2, err := Compile(node, Options{Mode: ModeRow})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].String() != want[0].String() {
		t.Fatalf("metadata agg %v != general %v", rows[0], want[0])
	}

	// With deletes present, MIN/MAX must fall back to the general path.
	f.fact.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I == 0 })
	c3, err := Compile(node, Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if c3.MetadataOnly {
		t.Fatal("MIN/MAX metadata shortcut taken despite deletes")
	}
	// COUNT(*) alone stays metadata-only even with deletes.
	countOnly := &Agg{In: &Scan{Table: f.fact}, Aggs: []exec.AggSpec{{Kind: exec.CountStar, Name: "n"}}}
	c4, err := Compile(countOnly, Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if !c4.MetadataOnly {
		t.Fatal("COUNT(*) should stay metadata-only under deletes")
	}
	rows4, err := c4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows4[0][0].I != int64(f.fact.Rows()) {
		t.Fatalf("count = %v, want %d", rows4[0][0], f.fact.Rows())
	}

	// A filtered scan must not take the shortcut.
	filtered := &Agg{
		In:   &Scan{Table: f.fact, Filter: expr.NewCmp(expr.GT, col(1, "qty", sqltypes.Int64), expr.NewConst(sqltypes.NewInt(5)))},
		Aggs: []exec.AggSpec{{Kind: exec.CountStar, Name: "n"}},
	}
	c5, err := Compile(filtered, Options{Mode: Mode2014})
	if err != nil {
		t.Fatal(err)
	}
	if c5.MetadataOnly {
		t.Fatal("filtered scan took metadata shortcut")
	}
}
