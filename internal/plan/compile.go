package plan

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"apollo/internal/exec"
	"apollo/internal/exec/batchexec"
	"apollo/internal/exec/rowexec"
	"apollo/internal/expr"
	"apollo/internal/metrics"
	"apollo/internal/sqltypes"
	"apollo/internal/storage"
	"apollo/internal/table"
)

// Mode selects the execution rule set.
type Mode int

// Execution modes. Mode2014 is the paper's "upcoming release": the full batch
// repertoire. Mode2012 uses batch mode only for plans within the 2012
// repertoire, falling back to row mode otherwise. ModeRow forces the
// row-at-a-time engine.
const (
	Mode2014 Mode = iota
	Mode2012
	ModeRow
)

func (m Mode) String() string {
	switch m {
	case Mode2012:
		return "2012"
	case ModeRow:
		return "row"
	default:
		return "2014"
	}
}

// Options control compilation.
type Options struct {
	Mode Mode
	// Parallel is the pipeline-wide degree of parallelism; <=1 is serial.
	// It sets the scan's row-group worker count and, above the scan, the
	// exchange worker count: aggregations run as parallel partial/final
	// aggregation and hash joins as partitioned parallel joins, with the
	// stateless stages between (filters, projections) replicated per worker.
	Parallel int

	// MemoryBudget caps hash-operator memory; 0 = unlimited. SpillStore
	// receives spill partitions (required for a finite budget to take
	// effect).
	MemoryBudget int64
	SpillStore   *storage.Store

	// Ablation switches for the experiment harness.
	NoSegmentElimination bool // disable min/max segment skipping + range pushdown
	NoBloom              bool // disable bitmap filter placement
	NoBuildSideSwap      bool // keep joins as written (also disables reordering)
	NoJoinReorder        bool // disable cost-based join enumeration only
	FixedDOP             bool // pin Parallel exactly; no per-pipeline reduction

	// StatsCache, when set, is reused across compilations (the SQL engine
	// keeps one per database so statistics are not re-collected per query).
	StatsCache *StatsCache

	// Tracer, when set, receives a structured trace event per operator
	// lifecycle transition during execution (batch mode only).
	Tracer *metrics.Tracer

	// View pins every scan to one read view: a snapshot timestamp and, inside
	// a transaction, the owning transaction id (its own provisional writes are
	// visible). The zero value reads each table's current stable snapshot.
	View table.ReadView

	// Reusable compiles for repeated execution (prepared statements): scans
	// record rebind hooks so Compiled.Rebind can point them at a fresh
	// snapshot per execution, and compile-time shortcuts that bake data into
	// the plan (metadata-only aggregation) are disabled.
	Reusable bool
}

// Compiled is an executable query.
type Compiled struct {
	Plan      Node // optimized logical plan
	BatchMode bool // effective execution mode
	Schema    *sqltypes.Schema

	batch batchexec.Operator
	row   rowexec.Operator

	// MetadataOnly reports that the query was answered entirely from
	// segment-directory metadata (no row data touched).
	MetadataOnly bool
	// ScanStats exposes per-scan pushdown counters (batch mode only),
	// in scan discovery order.
	ScanStats []*batchexec.ScanStats
	// OpStats exposes per-operator execution counters (batch mode only), one
	// entry per physical operator instance — exchange worker replicas
	// included, identified by OpStats.Worker. Instances on compiled-but-not-
	// taken paths (e.g. the serial probe replica a parallel join keeps for
	// its spill fallback) report zeros. Values settle when the query ends.
	OpStats []*batchexec.OpStats
	// Tracker exposes spill accounting (batch mode only).
	Tracker *batchexec.Tracker

	// QueryID is a process-unique id stamped on this compilation; trace
	// events carry it so interleaved queries can be demultiplexed.
	QueryID uint64
	// StatsByNode maps each logical plan node to the OpStats instances of
	// the physical operators lowered from it — the node's own operator plus
	// any per-worker stage replicas (batch mode only). EXPLAIN ANALYZE sums
	// these per node.
	StatsByNode map[Node][]*batchexec.OpStats
	// OpNameByNode records the physical operator name each node lowered to,
	// distinguishing a node's own instances from auxiliary stage replicas
	// registered under it (e.g. the key/argument projections feeding a
	// parallel aggregation).
	OpNameByNode map[Node]string
	// ScanStatsByNode maps each logical scan to its pushdown counters.
	ScanStatsByNode map[*Scan]*batchexec.ScanStats
	// EstRows maps each node of the optimized plan to the optimizer's
	// estimated output cardinality (EXPLAIN's est= annotation; EXPLAIN
	// ANALYZE pairs it with actual rows).
	EstRows map[Node]float64
	// BloomNotes records cost-approved bitmap-filter placements per join
	// node, e.g. "bloom->sales.cust" (batch mode only).
	BloomNotes map[Node]string

	// rebinds re-snapshots every scan (Options.Reusable compilations only).
	rebinds []func(table.ReadView)
}

// Rebind points every scan in a reusable compilation at a fresh snapshot
// taken under view, so the next execution reads current data instead of the
// compile-time snapshot. Call between executions only.
func (c *Compiled) Rebind(view table.ReadView) {
	for _, f := range c.rebinds {
		f(view)
	}
}

// Explain renders the optimized logical plan with the chosen mode, estimated
// cardinalities, and cost-approved bitmap-filter placements.
func (c *Compiled) Explain() string {
	mode := "row mode"
	if c.BatchMode {
		mode = "batch mode"
	}
	return "execution: " + mode + "\n" + TreeAnnotated(c.Plan, c.annotatePlanned)
}

// annotatePlanned renders the compile-time annotations for one node.
func (c *Compiled) annotatePlanned(n Node) string {
	var parts []string
	if est, ok := c.EstRows[n]; ok {
		parts = append(parts, fmt.Sprintf("[est=%d]", int64(est+0.5)))
	}
	if note := c.BloomNotes[n]; note != "" {
		parts = append(parts, "["+note+"]")
	}
	return strings.Join(parts, " ")
}

// Run executes the query under a background context.
func (c *Compiled) Run() ([]sqltypes.Row, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the query and materializes the result rows. The
// context's cancellation and deadline are honored at batch granularity in
// batch mode and per row block in row mode; a cancelled query returns
// ctx.Err() after its operators (including parallel scan workers) shut down.
func (c *Compiled) RunContext(ctx context.Context) ([]sqltypes.Row, error) {
	if c.BatchMode {
		return batchexec.DrainContext(ctx, c.batch)
	}
	return rowexec.DrainContext(ctx, c.row)
}

// StreamContext executes the query, delivering each result row to fn as it
// is produced instead of materializing the result set. Rows may alias
// operator storage and are valid only for the duration of the call; fn must
// copy what it keeps. An error from fn aborts the query and is returned.
func (c *Compiled) StreamContext(ctx context.Context, fn func(sqltypes.Row) error) error {
	if c.BatchMode {
		return batchexec.StreamContext(ctx, c.batch, fn)
	}
	return rowexec.StreamContext(ctx, c.row, fn)
}

// Compile optimizes the logical plan and lowers it to a physical operator
// tree under the given options.
func Compile(root Node, opts Options) (*Compiled, error) {
	sc := opts.StatsCache
	if sc == nil {
		sc = NewStatsCache()
	}
	outSchema := root.Schema()

	root = pushDownFilters(root)
	if !opts.NoJoinReorder && !opts.NoBuildSideSwap {
		root = reorderJoins(root, sc)
	}
	root = extractJoinKeys(root)
	if !opts.NoBuildSideSwap {
		root = chooseBuildSides(root, sc)
	}
	root = pruneColumns(root)

	useBatch := opts.Mode == Mode2014 || (opts.Mode == Mode2012 && supported2012(root))
	c := &Compiled{Plan: root, BatchMode: useBatch, Schema: outSchema, QueryID: queryIDs.Add(1)}
	c.EstRows = map[Node]float64{}
	annotateEstimates(root, sc, c.EstRows)
	if useBatch {
		mCompiledBatch.Inc()
	} else {
		mCompiledRow.Inc()
	}

	if useBatch {
		cc := &batchCompiler{opts: opts, sc: sc, compiled: c}
		op, err := cc.compile(root)
		if err != nil {
			return nil, err
		}
		cc.placeBlooms()
		c.batch = op
		return c, nil
	}
	var reuse *Compiled
	if opts.Reusable {
		reuse = c
	}
	op, err := compileRow(root, opts.View, reuse)
	if err != nil {
		return nil, err
	}
	c.row = op
	return c, nil
}

// --- Batch-mode lowering ---

// queryIDs hands out process-unique query ids for trace demultiplexing.
var queryIDs atomic.Uint64

type pendingBloom struct {
	join    *batchexec.HashJoin
	scan    *batchexec.Scan
	scanCol int
	sel     float64 // estimated build selectivity relative to probe keys
}

type batchCompiler struct {
	opts     Options
	sc       *StatsCache
	compiled *Compiled
	tracker  *batchexec.Tracker
	// scanFor maps logical scans to their physical operator for bloom wiring.
	scanFor map[*Scan]*batchexec.Scan
	blooms  []pendingBloom
}

func (cc *batchCompiler) getTracker() *batchexec.Tracker {
	if cc.tracker == nil && cc.opts.MemoryBudget > 0 {
		cc.tracker = batchexec.NewTracker(cc.opts.MemoryBudget)
		cc.compiled.Tracker = cc.tracker
	}
	return cc.tracker
}

// compile lowers a plan node and wraps the physical operator in a Guard, the
// per-operator fault boundary (panic containment, operator attribution on
// errors, and per-batch cancellation checks).
func (cc *batchCompiler) compile(n Node) (batchexec.Operator, error) {
	op, name, err := cc.compileNode(n)
	if err != nil {
		return nil, err
	}
	cc.noteOpName(n, name)
	return cc.guard(n, op, name, -1), nil
}

// noteOpName records which physical operator a node lowered to, so EXPLAIN
// ANALYZE can tell the node's own stats from auxiliary replicas.
func (cc *batchCompiler) noteOpName(n Node, name string) {
	if cc.compiled.OpNameByNode == nil {
		cc.compiled.OpNameByNode = map[Node]string{}
	}
	cc.compiled.OpNameByNode[n] = name
}

// guard wraps op in its fault boundary and registers per-operator execution
// counters under the logical node n; worker is the exchange replica id (-1
// for the serial or final pipeline).
func (cc *batchCompiler) guard(n Node, op batchexec.Operator, name string, worker int) batchexec.Operator {
	g := batchexec.NewGuard(op, name)
	g.Stats = &batchexec.OpStats{Op: name, Worker: worker}
	g.Trace = cc.opts.Tracer
	g.Query = cc.compiled.QueryID
	cc.compiled.OpStats = append(cc.compiled.OpStats, g.Stats)
	if n != nil {
		if cc.compiled.StatsByNode == nil {
			cc.compiled.StatsByNode = map[Node][]*batchexec.OpStats{}
		}
		cc.compiled.StatsByNode[n] = append(cc.compiled.StatsByNode[n], g.Stats)
	}
	return g
}

// compilePipeline compiles n for use below an exchange: the top run of
// stateless per-batch stages (Filter, Project) is cut off and returned as a
// builder that stamps out one replica per exchange worker, and everything
// below the cut — the pipeline breaker or leaf — is compiled exactly once
// (scans must not be duplicated: bloom wiring and ScanStats registration
// assume one physical scan per logical scan, and the scan's own row-group
// workers already parallelize it).
func (cc *batchCompiler) compilePipeline(n Node) (batchexec.Operator, func(src batchexec.Operator, worker int) batchexec.Operator, error) {
	var steps []Node
	base := n
cut:
	for {
		switch x := base.(type) {
		case *Filter:
			steps = append(steps, x)
			base = x.In
		case *Project:
			steps = append(steps, x)
			base = x.In
		default:
			break cut
		}
	}
	baseOp, err := cc.compile(base)
	if err != nil {
		return nil, nil, err
	}
	if len(steps) > 0 {
		mPipelinesCut.Inc()
	}
	chain := func(src batchexec.Operator, worker int) batchexec.Operator {
		if worker >= 0 {
			mStagesReplicated.Add(int64(len(steps)))
		}
		op := src
		for i := len(steps) - 1; i >= 0; i-- {
			switch x := steps[i].(type) {
			case *Filter:
				cc.noteOpName(x, "filter")
				op = cc.guard(x, &batchexec.Filter{In: op, Pred: x.Pred}, "filter", worker)
			case *Project:
				cc.noteOpName(x, "project")
				op = cc.guard(x, batchexec.NewProject(op, x.Exprs, x.Names), "project", worker)
			}
		}
		return op
	}
	return baseOp, chain, nil
}

func (cc *batchCompiler) compileNode(n Node) (batchexec.Operator, string, error) {
	switch x := n.(type) {
	case *Scan:
		op, err := cc.compileScan(x)
		return op, "scan", err

	case *Filter:
		in, err := cc.compile(x.In)
		if err != nil {
			return nil, "", err
		}
		return &batchexec.Filter{In: in, Pred: x.Pred}, "filter", nil

	case *Project:
		in, err := cc.compile(x.In)
		if err != nil {
			return nil, "", err
		}
		return batchexec.NewProject(in, x.Exprs, x.Names), "project", nil

	case *Join:
		op, err := cc.compileJoin(x)
		return op, "hashjoin", err

	case *Agg:
		// Metadata-only answers are computed at compile time from the
		// snapshot, so they cannot serve a reusable (prepared) plan.
		if !cc.opts.Reusable {
			if op, ok := tryMetadataAgg(x, cc.opts.View); ok {
				cc.compiled.MetadataOnly = true
				return op, "metaagg", nil
			}
		}
		return cc.compileAgg(x)

	case *Sort:
		in, err := cc.compile(x.In)
		if err != nil {
			return nil, "", err
		}
		return &batchexec.Sort{In: materializeIfStrings(in), Keys: x.Keys}, "sort", nil

	case *Limit:
		// ORDER BY + LIMIT compiles to the batch Top-N operator.
		if s, ok := x.In.(*Sort); ok && x.N >= 0 && x.Offset == 0 {
			in, err := cc.compile(s.In)
			if err != nil {
				return nil, "", err
			}
			return &batchexec.TopN{In: materializeIfStrings(in), Keys: s.Keys, N: x.N}, "topn", nil
		}
		in, err := cc.compile(x.In)
		if err != nil {
			return nil, "", err
		}
		return &batchexec.Limit{In: in, Offset: x.Offset, N: x.N}, "limit", nil

	case *Union:
		ins := make([]batchexec.Operator, len(x.Ins))
		for i, c := range x.Ins {
			op, err := cc.compile(c)
			if err != nil {
				return nil, "", err
			}
			ins[i] = op
		}
		return &batchexec.UnionAll{Ins: ins}, "union", nil

	default:
		return nil, "", fmt.Errorf("plan: cannot lower %T to batch mode", n)
	}
}

// materializeIfStrings is the planner's late-materialization point: in front
// of row-consuming operators (Sort, TopN) a dict-coded string vector would be
// decoded row by row, so insert an explicit Materialize boundary that decodes
// each surviving batch once, vectorized. Plans without string columns are
// unaffected.
func materializeIfStrings(in batchexec.Operator) batchexec.Operator {
	for _, c := range in.Schema().Cols {
		if c.Typ == sqltypes.String {
			return batchexec.NewGuard(&batchexec.Materialize{In: in}, "materialize")
		}
	}
	return in
}

// compileScan splits the scan filter into exact encoded-domain pushdowns and
// a residual predicate, then builds the vectorized scan.
func (cc *batchCompiler) compileScan(x *Scan) (*batchexec.Scan, error) {
	cols := x.Cols
	if cols == nil {
		cols = make([]int, x.Table.Schema.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	s := batchexec.NewScan(x.Table.SnapshotView(cc.opts.View), cols)
	if cc.opts.Reusable {
		t := x.Table
		cc.compiled.rebinds = append(cc.compiled.rebinds, func(v table.ReadView) {
			s.Rebind(t.SnapshotView(v))
		})
	}
	s.Parallel = cc.opts.Parallel
	s.Stats = &batchexec.ScanStats{}
	cc.compiled.ScanStats = append(cc.compiled.ScanStats, s.Stats)
	if cc.compiled.ScanStatsByNode == nil {
		cc.compiled.ScanStatsByNode = map[*Scan]*batchexec.ScanStats{}
	}
	cc.compiled.ScanStatsByNode[x] = s.Stats

	var residual []expr.Expr
	if x.Filter != nil {
		for _, c := range expr.Conjuncts(x.Filter) {
			if cc.opts.NoSegmentElimination {
				residual = append(residual, c)
				continue
			}
			if pd, ok := exactPushdown(c, x.Table.Schema); ok {
				s.Pushdowns = append(s.Pushdowns, pd)
				continue
			}
			if dp, ok := dictPushdown(c, x.Table.Schema); ok {
				s.DictPreds = append(s.DictPreds, dp)
				continue
			}
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		// Residual is bound to the table schema; remap to scan output
		// positions (prune guarantees coverage).
		m := map[int]int{}
		for i, c := range cols {
			m[c] = i
		}
		s.Residual = expr.Remap(andAll(residual), m)
	}
	if cc.scanFor == nil {
		cc.scanFor = map[*Scan]*batchexec.Scan{}
	}
	cc.scanFor[x] = s
	return s, nil
}

// exactPushdown recognizes conjuncts whose range semantics are preserved
// exactly by the scan's closed-interval encoded-domain filter, so the
// conjunct can be dropped from the residual: =, <=, >= on any orderable
// column; < and > on integer-family columns (converted to closed bounds);
// BETWEEN-style bounds arrive as separate conjuncts.
func exactPushdown(c expr.Expr, schema *sqltypes.Schema) (batchexec.Pushdown, bool) {
	for col := 0; col < schema.Len(); col++ {
		lo, hi, loOpen, hiOpen, ok := expr.StrictColRange(c, col)
		if !ok {
			continue
		}
		colTyp := schema.Cols[col].Typ
		intLike := colTyp == sqltypes.Int64 || colTyp == sqltypes.Date || colTyp == sqltypes.Bool
		// Convert open integer bounds to closed ones.
		if loOpen {
			if !intLike || lo.Typ == sqltypes.Float64 {
				return batchexec.Pushdown{}, false
			}
			lo = sqltypes.Value{Typ: lo.Typ, I: lo.I + 1}
		}
		if hiOpen {
			if !intLike || hi.Typ == sqltypes.Float64 {
				return batchexec.Pushdown{}, false
			}
			hi = sqltypes.Value{Typ: hi.Typ, I: hi.I - 1}
		}
		// Bounds must share the column's comparison domain.
		if !lo.Null && !compatibleBound(colTyp, lo.Typ) {
			return batchexec.Pushdown{}, false
		}
		if !hi.Null && !compatibleBound(colTyp, hi.Typ) {
			return batchexec.Pushdown{}, false
		}
		return batchexec.Pushdown{Col: col, Lo: lo, Hi: hi}, true
	}
	return batchexec.Pushdown{}, false
}

// dictPushdown recognizes arbitrary single-column predicates over string
// columns (LIKE, IN, <>, OR-of-equalities, ...) that can be evaluated once
// per dictionary entry on compressed data. Predicates that hold on NULL
// input stay in the residual, since encoded evaluation skips NULL rows.
func dictPushdown(c expr.Expr, schema *sqltypes.Schema) (batchexec.DictPred, bool) {
	refs := map[int]bool{}
	expr.ReferencedCols(c, refs)
	if len(refs) != 1 {
		return batchexec.DictPred{}, false
	}
	var col int
	for r := range refs {
		col = r
	}
	if schema.Cols[col].Typ != sqltypes.String {
		return batchexec.DictPred{}, false
	}
	single := expr.Remap(c, map[int]int{col: 0})
	nullRes := single.Eval(sqltypes.Row{sqltypes.NewNull(sqltypes.String)})
	if !nullRes.Null && nullRes.I != 0 {
		return batchexec.DictPred{}, false // true on NULL (e.g. IS NULL)
	}
	return batchexec.DictPred{Col: col, Pred: single}, true
}

func compatibleBound(col, bound sqltypes.Type) bool {
	if col == sqltypes.String {
		return bound == sqltypes.String
	}
	if col == sqltypes.Float64 || bound == sqltypes.Float64 {
		return col.Numeric() && bound.Numeric()
	}
	return bound != sqltypes.String
}

// compileJoin lowers a join. With a pipeline DOP above one the probe phase
// becomes a partitioned exchange: the probe-side filter/project stages are
// replicated per worker over a shared source, and the join partitions its
// build side into one private core per worker (exchange.go). The serial probe
// replica is kept — it carries the schema and the grace-hash spill fallback.
func (cc *batchCompiler) compileJoin(x *Join) (batchexec.Operator, error) {
	if len(x.LeftKeys) == 0 {
		return nil, fmt.Errorf("plan: batch join requires at least one equality key")
	}
	dop := cc.dopFor(x.Left)
	var probe batchexec.Operator
	var shared *batchexec.SharedSource
	var pipes []batchexec.Operator
	if dop > 1 {
		base, chain, err := cc.compilePipeline(x.Left)
		if err != nil {
			return nil, err
		}
		shared = batchexec.NewSharedSource(base)
		pipes = make([]batchexec.Operator, dop)
		for w := range pipes {
			pipes[w] = chain(shared.Worker(), w)
		}
		probe = chain(base, -1)
	} else {
		var err error
		probe, err = cc.compile(x.Left)
		if err != nil {
			return nil, err
		}
	}
	build, err := cc.compile(x.Right)
	if err != nil {
		return nil, err
	}
	pk, bk, err := keyColumns(x.LeftKeys, x.RightKeys)
	if err != nil {
		return nil, err
	}
	j, err := batchexec.NewHashJoin(probe, build, pk, bk, x.Type, x.Residual)
	if err != nil {
		return nil, err
	}
	j.Tracker = cc.getTracker()
	j.SpillStore = cc.opts.SpillStore
	if dop > 1 {
		j.Parallel = dop
		j.ProbeExchange = shared
		j.ProbePipes = pipes
	}

	// Bitmap filter opportunity: single-key inner/semi join whose probe key
	// traces to a base-table scan column. Place the filter only when the
	// estimated probe+output work it saves exceeds the cost of building it
	// from the build keys and testing it on every probe row.
	if !cc.opts.NoBloom && len(x.LeftKeys) == 1 && (x.Type == exec.Inner || x.Type == exec.LeftSemi) {
		if key, ok := x.LeftKeys[0].(*expr.ColRef); ok {
			if scanNode, tableCol, ok := traceToScan(x.Left, key.Idx); ok {
				if phys, ok := cc.scanFor[scanNode]; ok {
					buildRows := estimateRows(x.Right, cc.sc)
					probeRows := estimateRows(x.Left, cc.sc)
					outRows := estimateRows(x, cc.sc)
					passFrac := 1.0
					if probeRows > 0 {
						passFrac = clampF(outRows/probeRows, 0, 1)
					}
					benefit := probeRows * (1 - passFrac) * costBloomSavedRow
					cost := buildRows*costBloomBuildRow + probeRows*costBloomTestRow
					if benefit > cost && buildRows < probeRows {
						cc.blooms = append(cc.blooms, pendingBloom{join: j, scan: phys, scanCol: tableCol})
						cc.noteBloom(x, scanNode, tableCol)
						mBloomsPlaced.Inc()
					} else {
						mBloomsCostSkipped.Inc()
					}
				}
			}
		}
	}
	return j, nil
}

// noteBloom records a placement for EXPLAIN output.
func (cc *batchCompiler) noteBloom(join Node, scanNode *Scan, tableCol int) {
	if cc.compiled.BloomNotes == nil {
		cc.compiled.BloomNotes = map[Node]string{}
	}
	cc.compiled.BloomNotes[join] = fmt.Sprintf("bloom->%s.%s",
		scanNode.Table.Name, scanNode.Table.Schema.Cols[tableCol].Name)
}

// traceToScan follows a column reference down through filters, projections of
// plain columns, and the probe side of joins, to the base-table scan column
// it originates from.
func traceToScan(n Node, col int) (*Scan, int, bool) {
	switch x := n.(type) {
	case *Scan:
		if x.Cols == nil {
			return x, col, true
		}
		return x, x.Cols[col], true
	case *Filter:
		return traceToScan(x.In, col)
	case *Project:
		if cr, ok := x.Exprs[col].(*expr.ColRef); ok {
			return traceToScan(x.In, cr.Idx)
		}
		return nil, 0, false
	case *Join:
		lw := x.Left.Schema().Len()
		if col < lw {
			return traceToScan(x.Left, col)
		}
		// Build-side columns pass through inner joins unchanged; tracing them
		// serves NDV estimation (blooms only ever trace probe-side keys).
		if x.Type == exec.Inner {
			return traceToScan(x.Right, col-lw)
		}
		return nil, 0, false
	default:
		return nil, 0, false
	}
}

// placeBlooms wires pending bitmap filters from joins to scans.
func (cc *batchCompiler) placeBlooms() {
	for _, pb := range cc.blooms {
		target := &batchexec.BloomTarget{}
		pb.join.BloomOut = target
		pb.scan.Blooms = append(pb.scan.Blooms, batchexec.BloomPred{Col: pb.scanCol, Target: target})
	}
}

// compileAgg inserts a projection materializing group keys and aggregate
// arguments as columns, then builds the vectorized hash aggregation. With a
// pipeline DOP above one, the aggregation is cut into partial/final form:
// each exchange worker runs a replica of the filter/project stages plus the
// key/argument projection feeding a private partial aggregation, and the
// final merge combines the partial states. DISTINCT aggregates keep the
// serial operator (their partial states are not mergeable).
func (cc *batchCompiler) compileAgg(x *Agg) (batchexec.Operator, string, error) {
	var exprs []expr.Expr
	var names []string
	for i, g := range x.GroupBy {
		exprs = append(exprs, g)
		names = append(names, x.Names[i])
	}
	aggs := make([]exec.AggSpec, len(x.Aggs))
	for i, sp := range x.Aggs {
		aggs[i] = sp
		if sp.Arg != nil {
			pos := len(exprs)
			exprs = append(exprs, sp.Arg)
			names = append(names, fmt.Sprintf("_arg%d", i))
			aggs[i].Arg = expr.NewColRef(pos, names[pos], sp.Arg.Type())
		}
	}
	groupBy := make([]int, len(x.GroupBy))
	for i := range groupBy {
		groupBy[i] = i
	}

	if dop := cc.dopFor(x.In); dop > 1 && batchexec.ParallelizableAggs(aggs) {
		base, chain, err := cc.compilePipeline(x.In)
		if err != nil {
			return nil, "", err
		}
		shared := batchexec.NewSharedSource(base)
		pipes := make([]batchexec.Operator, dop)
		for w := range pipes {
			pipes[w] = cc.guard(x, batchexec.NewProject(chain(shared.Worker(), w), exprs, names), "project", w)
		}
		agg := batchexec.NewParallelAgg(shared, pipes, groupBy, x.Names, aggs)
		agg.Tracker = cc.getTracker()
		agg.SpillStore = cc.opts.SpillStore
		return agg, "parallelagg", nil
	}

	in, err := cc.compile(x.In)
	if err != nil {
		return nil, "", err
	}
	var inOp batchexec.Operator = batchexec.NewProject(in, exprs, names)
	agg := batchexec.NewHashAgg(inOp, groupBy, x.Names, aggs)
	agg.Tracker = cc.getTracker()
	agg.SpillStore = cc.opts.SpillStore
	return agg, "hashagg", nil
}

// keyColumns requires join keys to be plain column references.
func keyColumns(lks, rks []expr.Expr) ([]int, []int, error) {
	pk := make([]int, len(lks))
	bk := make([]int, len(rks))
	for i := range lks {
		lc, lok := lks[i].(*expr.ColRef)
		rc, rok := rks[i].(*expr.ColRef)
		if !lok || !rok {
			return nil, nil, fmt.Errorf("plan: join keys must be columns (got %s = %s)", lks[i], rks[i])
		}
		pk[i] = lc.Idx
		bk[i] = rc.Idx
	}
	return pk, bk, nil
}

// --- Row-mode lowering ---

// compileRow lowers to the row engine. When reuse is non-nil (a reusable
// compilation), each scan registers a rebind hook on it.
func compileRow(n Node, view table.ReadView, reuse *Compiled) (rowexec.Operator, error) {
	switch x := n.(type) {
	case *Scan:
		cols := x.Cols
		var filter expr.Expr
		if x.Filter != nil {
			filter = x.Filter // bound to full table schema, as Scan expects
		}
		s := rowexec.NewScan(x.Table.SnapshotView(view), filter, cols)
		if reuse != nil {
			t := x.Table
			reuse.rebinds = append(reuse.rebinds, func(v table.ReadView) {
				s.Rebind(t.SnapshotView(v))
			})
		}
		return s, nil

	case *Filter:
		in, err := compileRow(x.In, view, reuse)
		if err != nil {
			return nil, err
		}
		return &rowexec.Filter{In: in, Pred: x.Pred}, nil

	case *Project:
		in, err := compileRow(x.In, view, reuse)
		if err != nil {
			return nil, err
		}
		return rowexec.NewProject(in, x.Exprs, x.Names), nil

	case *Join:
		probe, err := compileRow(x.Left, view, reuse)
		if err != nil {
			return nil, err
		}
		build, err := compileRow(x.Right, view, reuse)
		if err != nil {
			return nil, err
		}
		if len(x.LeftKeys) == 0 {
			// Keyless join: nested loops over the residual.
			return rowexec.NewNestedLoopJoin(probe, build, x.Residual, x.Type)
		}
		return rowexec.NewHashJoin(probe, build, x.LeftKeys, x.RightKeys, x.Type, x.Residual)

	case *Agg:
		in, err := compileRow(x.In, view, reuse)
		if err != nil {
			return nil, err
		}
		return rowexec.NewHashAggregate(in, x.GroupBy, x.Names, x.Aggs), nil

	case *Sort:
		in, err := compileRow(x.In, view, reuse)
		if err != nil {
			return nil, err
		}
		return &rowexec.Sort{In: in, Keys: x.Keys}, nil

	case *Limit:
		in, err := compileRow(x.In, view, reuse)
		if err != nil {
			return nil, err
		}
		return &rowexec.Limit{In: in, Offset: x.Offset, N: x.N}, nil

	case *Union:
		ins := make([]rowexec.Operator, len(x.Ins))
		for i, c := range x.Ins {
			op, err := compileRow(c, view, reuse)
			if err != nil {
				return nil, err
			}
			ins[i] = op
		}
		return &rowexec.UnionAll{Ins: ins}, nil

	default:
		return nil, fmt.Errorf("plan: cannot lower %T to row mode", n)
	}
}
