package plan

import (
	"fmt"
	"strings"
	"time"

	"apollo/internal/exec/batchexec"
)

// ExplainAnalyze renders the executed plan tree with per-node counters: rows
// and batches emitted, wall time, worker replica counts, and for scans the
// full segment-elimination and pushdown breakdown. It must be called after
// the query has run (the SQL engine's EXPLAIN ANALYZE executes first); on a
// plan that never ran, every counter reads zero.
//
// Rows, batches, and segment counts are deterministic for a given database
// state — at DOP>1 each batch is processed by exactly one worker, so sums
// across replicas do not depend on scheduling — while wall times vary run to
// run. Golden tests normalize the wall fields and pin everything else.
func (c *Compiled) ExplainAnalyze() string {
	mode := "row mode"
	if c.BatchMode {
		mode = "batch mode"
	}
	if c.MetadataOnly {
		mode += " (metadata only)"
	}
	header := "execution: " + mode + "\n"
	if !c.BatchMode {
		// Row mode has no per-operator counters; show estimates only.
		return header + TreeAnnotated(c.Plan, c.annotatePlanned)
	}
	return header + TreeAnnotated(c.Plan, c.annotateNode)
}

// annotateNode builds the bracketed stats annotation for one plan node:
// estimated vs actual rows, batches, wall time, workers, and the scan
// pushdown breakdown.
func (c *Compiled) annotateNode(n Node) string {
	var sb strings.Builder

	own, aux := c.splitInstances(n)
	if len(own) > 0 {
		rows, batches, wall := sumOpStats(own)
		if est, ok := c.EstRows[n]; ok {
			fmt.Fprintf(&sb, "[est=%d rows=%d batches=%d wall=%s", int64(est+0.5), rows, batches, formatWall(wall))
		} else {
			fmt.Fprintf(&sb, "[rows=%d batches=%d wall=%s", rows, batches, formatWall(wall))
		}
		if len(own) > 1 {
			fmt.Fprintf(&sb, " workers=%d", len(own))
		}
		sb.WriteString("]")
	}
	if note := c.BloomNotes[n]; note != "" {
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString("[" + note + "]")
	}
	// Auxiliary replicas registered under this node (the key/argument
	// projections feeding a parallel aggregation) are its input stage.
	if len(aux) > 0 {
		rows, _, _ := sumOpStats(aux)
		fmt.Fprintf(&sb, " [input rows=%d workers=%d]", rows, len(aux))
	}

	if s, ok := n.(*Scan); ok {
		if st := c.ScanStatsByNode[s]; st != nil {
			if sb.Len() > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb,
				"[groups=%d scanned=%d eliminated=%d segments=%d rows: considered=%d deleted=%d after_range=%d after_bloom=%d residual_dropped=%d delta=%d delta_out=%d out=%d",
				st.Groups, st.GroupsScanned, st.GroupsEliminated, st.SegmentsOpened,
				st.RowsConsidered, st.RowsDeleted, st.RowsAfterRange, st.RowsAfterBloom,
				st.RowsResidual, st.DeltaRows, st.DeltaRowsOutput, st.RowsOutput)
			if st.StringColsCoded > 0 || st.StringColsMaterialized > 0 {
				fmt.Fprintf(&sb, " coded_cols=%d materialized_cols=%d",
					st.StringColsCoded, st.StringColsMaterialized)
			}
			sb.WriteString("]")
		}
	}
	return sb.String()
}

// splitInstances separates a node's own operator instances from auxiliary
// stage replicas registered under it (instances whose Op differs from the
// node's lowered operator name).
func (c *Compiled) splitInstances(n Node) (own, aux []*batchexec.OpStats) {
	name := c.OpNameByNode[n]
	for _, st := range c.StatsByNode[n] {
		if st.Op == name {
			own = append(own, st)
		} else {
			aux = append(aux, st)
		}
	}
	return own, aux
}

// sumOpStats totals rows and batches across instances (deterministic: each
// batch is processed by exactly one replica) and takes the maximum wall time
// (replicas run concurrently, so the slowest bounds the stage).
func sumOpStats(sts []*batchexec.OpStats) (rows, batches, wallNs int64) {
	for _, st := range sts {
		rows += st.Rows
		batches += st.Batches
		if st.WallNs > wallNs {
			wallNs = st.WallNs
		}
	}
	return rows, batches, wallNs
}

func formatWall(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
