package plan

import "apollo/internal/metrics"

var (
	mCompiledBatch = metrics.Default.Counter(`apollo_plan_queries_compiled_total{mode="batch"}`,
		"queries compiled, by effective execution mode")
	mCompiledRow = metrics.Default.Counter(`apollo_plan_queries_compiled_total{mode="row"}`,
		"queries compiled, by effective execution mode")
	mPipelinesCut = metrics.Default.Counter("apollo_plan_pipelines_cut_total",
		"pipelines whose stateless stage run was cut off for per-worker replication")
	mStagesReplicated = metrics.Default.Counter("apollo_plan_stages_replicated_total",
		"filter/project stage replicas stamped out for exchange workers")
	mStatsCollections = metrics.Default.Counter("apollo_plan_stats_collections_total",
		"statistics collections triggered by cache misses or staleness")
	mJoinRegionsReordered = metrics.Default.Counter("apollo_plan_join_regions_reordered_total",
		"inner-join regions rewritten by the cost-based join enumerator")
	mBloomsPlaced = metrics.Default.Counter(`apollo_plan_bloom_decisions_total{outcome="placed"}`,
		"bitmap-filter placements approved by the cost gate")
	mBloomsCostSkipped = metrics.Default.Counter(`apollo_plan_bloom_decisions_total{outcome="skipped"}`,
		"bitmap-filter placements rejected by the cost gate")
)
