package plan

import "apollo/internal/metrics"

var (
	mCompiledBatch = metrics.Default.Counter(`apollo_plan_queries_compiled_total{mode="batch"}`,
		"queries compiled, by effective execution mode")
	mCompiledRow = metrics.Default.Counter(`apollo_plan_queries_compiled_total{mode="row"}`,
		"queries compiled, by effective execution mode")
	mPipelinesCut = metrics.Default.Counter("apollo_plan_pipelines_cut_total",
		"pipelines whose stateless stage run was cut off for per-worker replication")
	mStagesReplicated = metrics.Default.Counter("apollo_plan_stages_replicated_total",
		"filter/project stage replicas stamped out for exchange workers")
)
