package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"apollo/internal/catalog"
	"apollo/internal/colstore"
	"apollo/internal/plan"
	"apollo/internal/sql"
	"apollo/internal/sqltypes"
	"apollo/internal/stats"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/workload"
)

// E7BulkLoadThreshold reproduces §4.2: loading N rows via the bulk path vs
// row-at-a-time trickle inserts, sweeping N across the direct-compression
// threshold. Below the threshold a bulk load lands in a delta store; above
// it, rows compress directly.
func E7BulkLoadThreshold(w io.Writer) error {
	const threshold = 8192 // scaled-down analog of the shipped 102,400
	fmt.Fprintf(w, "E7 — bulk load threshold (scaled threshold = %d rows)\n", threshold)
	fmt.Fprintf(w, "%-10s %14s %14s %12s %12s\n", "rows", "bulk rows/s", "trickle r/s", "bulk state", "compressed")
	for _, n := range []int{1024, 4096, 8192, 16384, 65536} {
		data := workload.GenSSB(float64(n)/60000+0.01, 3).Lineorder[:n]

		mkTable := func() *table.Table {
			store := storage.NewStore(storage.DefaultBufferPoolBytes)
			opts := table.DefaultOptions()
			opts.RowGroupSize = 1 << 15
			opts.BulkLoadThreshold = threshold
			return table.New(store, "t", workload.LineorderSchema, opts)
		}

		bt := mkTable()
		start := time.Now()
		if err := bt.BulkLoad(data); err != nil {
			return err
		}
		bulkRate := float64(n) / time.Since(start).Seconds()
		bst := bt.Stat()
		state := "delta"
		if bst.CompressedRows > 0 {
			state = "direct"
		}

		tt := mkTable()
		start = time.Now()
		if err := tt.InsertMany(data); err != nil {
			return err
		}
		trickleRate := float64(n) / time.Since(start).Seconds()

		fmt.Fprintf(w, "%-10d %14.0f %14.0f %12s %12d\n", n, bulkRate, trickleRate, state, bst.CompressedRows)
	}
	fmt.Fprintln(w, "expected: loads at/above the threshold compress directly and load faster than trickle.")
	return nil
}

// E8ArchivalAccess reproduces §3: COLUMNSTORE vs COLUMNSTORE_ARCHIVE — size
// on disk vs cold/warm scan cost (archival pays decompression CPU on cold
// reads; the buffer pool hides it once warm).
func E8ArchivalAccess(w io.Writer, rows, reps int) error {
	data := workload.GenSSB(float64(rows)/60000, 11).Lineorder
	fmt.Fprintf(w, "E8 — archival compression access cost (%d rows)\n", len(data))
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "tier", "bytes", "cold scan", "warm scan", "inflations")
	for _, tier := range []storage.Compression{storage.None, storage.Archival} {
		store := storage.NewStore(storage.DefaultBufferPoolBytes)
		cat := catalog.New(store)
		opts := table.DefaultOptions()
		opts.RowGroupSize = 1 << 14
		opts.BulkLoadThreshold = 1024
		opts.Columnstore.Tier = tier
		t, err := cat.Create("lineorder", workload.LineorderSchema, opts)
		if err != nil {
			return err
		}
		if err := t.BulkLoad(data); err != nil {
			return err
		}
		e := &sql.Engine{Cat: cat, PlanOpts: plan.Options{Mode: plan.Mode2014}}
		q := "SELECT SUM(lo_revenue), AVG(lo_quantity) FROM lineorder"

		var cold time.Duration
		for r := 0; r < reps; r++ {
			store.EvictAll()
			start := time.Now()
			if _, err := e.Exec(q); err != nil {
				return err
			}
			el := time.Since(start)
			if r == 0 || el < cold {
				cold = el
			}
		}
		store.ResetStats()
		warm, _, err := timeQuery(e, q, reps)
		if err != nil {
			return err
		}
		store.EvictAll()
		store.ResetStats()
		if _, err := e.Exec(q); err != nil {
			return err
		}
		inflations := store.Stats().DecompressCalls
		fmt.Fprintf(w, "%-10s %12d %12v %12v %12d\n",
			tier, t.Stat().DiskBytes, cold.Round(time.Microsecond), warm.Round(time.Microsecond), inflations)
	}
	fmt.Fprintln(w, "expected: ARCHIVE is smaller but pays decompression on cold scans; warm scans converge.")
	return nil
}

// E9DeleteOverhead reproduces the §4.1 delete-bitmap cost: scan time and
// result correctness as the deleted fraction grows. Deleted rows stay in the
// compressed row groups and are masked by the bitmap at scan time.
func E9DeleteOverhead(w io.Writer, rows, reps int) error {
	data := workload.GenSSB(float64(rows)/60000, 13).Lineorder
	fmt.Fprintf(w, "E9 — delete bitmap overhead (%d rows)\n", len(data))
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "deleted", "scan", "live rows", "bitmapped", "stored rows")
	for _, delPct := range []int{0, 1, 10, 25, 50} {
		cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
		opts := table.DefaultOptions()
		opts.RowGroupSize = 1 << 14
		opts.BulkLoadThreshold = 1024
		t, err := cat.Create("lineorder", workload.LineorderSchema, opts)
		if err != nil {
			return err
		}
		if err := t.BulkLoad(data); err != nil {
			return err
		}
		if delPct > 0 {
			mod := int64(100 / delPct)
			if _, err := t.DeleteWhere(func(r sqltypes.Row) bool { return r[0].I%mod == 0 }); err != nil {
				return err
			}
		}
		e := &sql.Engine{Cat: cat, PlanOpts: plan.Options{Mode: plan.Mode2014}}
		q := "SELECT COUNT(*), SUM(lo_revenue) FROM lineorder"
		ts, _, err := timeQuery(e, q, reps)
		if err != nil {
			return err
		}
		res, err := e.Exec(q)
		if err != nil {
			return err
		}
		st := t.Stat()
		fmt.Fprintf(w, "%9d%% %12v %12d %12d %12d\n",
			delPct, ts.Round(time.Microsecond), res.Rows[0][0].I, st.DeletedRows, st.CompressedRows)
	}
	fmt.Fprintln(w, "expected: scan cost stays near-flat (deleted rows are masked, not rewritten); counts shrink exactly.")
	return nil
}

// E10Spill reproduces the §5 spilling behavior: a hash join and a hash
// aggregation under shrinking memory grants — graceful degradation instead of
// failure.
func E10Spill(w io.Writer, sf float64, reps int) error {
	fmt.Fprintf(w, "E10 — spilling under memory pressure, SF=%.2f\n", sf)
	fmt.Fprintf(w, "%-14s %12s %10s %12s %10s\n", "grant", "join", "spills", "agg", "spills")
	joinQ := `SELECT COUNT(*) FROM lineorder, customer WHERE lo_custkey = c_custkey`
	aggQ := `SELECT lo_custkey, SUM(lo_revenue) FROM lineorder GROUP BY lo_custkey`
	for _, budget := range []int64{0, 1 << 20, 1 << 15, 1 << 12} {
		e, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2014, MemoryBudget: budget,
			SpillStore: storage.NewStore(0), NoBloom: true})
		if err != nil {
			return err
		}
		tj, _, err := timeQuery(e, joinQ, reps)
		if err != nil {
			return err
		}
		resJ, err := e.Exec(joinQ)
		if err != nil {
			return err
		}
		spJ := spillsOf(resJ)
		ta, _, err := timeQuery(e, aggQ, reps)
		if err != nil {
			return err
		}
		resA, err := e.Exec(aggQ)
		if err != nil {
			return err
		}
		label := "unlimited"
		if budget > 0 {
			label = fmt.Sprintf("%d KiB", budget/1024)
		}
		fmt.Fprintf(w, "%-14s %12v %10d %12v %10d\n",
			label, tj.Round(time.Microsecond), spJ, ta.Round(time.Microsecond), spillsOf(resA))
	}
	fmt.Fprintln(w, "expected: smaller grants spill more and run slower, but every query completes with correct results.")
	return nil
}

func spillsOf(r *sql.Result) int64 {
	if r.Compiled != nil && r.Compiled.Tracker != nil {
		return r.Compiled.Tracker.Spills()
	}
	return 0
}

// E11EncodingAblation reproduces the §2.2 design discussion: per-stage
// contribution of the compression pipeline — row reordering on/off and the
// RLE-vs-bitpack choice — per dataset.
func E11EncodingAblation(w io.Writer, rows int) error {
	fmt.Fprintf(w, "E11 — encoding ablation (%d rows per dataset)\n", rows)
	fmt.Fprintf(w, "%-18s %12s %12s %9s %14s\n", "dataset", "no reorder", "reorder", "gain", "RLE segments")
	for _, ds := range workload.CompressionDatasets(rows, 5) {
		sizes := map[bool]int{}
		rleSegs, totalSegs := 0, 0
		for _, reorder := range []bool{false, true} {
			store := storage.NewStore(0)
			opts := colstore.DefaultOptions()
			opts.Reorder = reorder
			idx := colstore.NewIndex(store, ds.Schema, opts)
			bufs := colstore.BuffersFromRows(ds.Schema, ds.Rows)
			g, err := idx.CompressRowGroup(bufs)
			if err != nil {
				return err
			}
			sizes[reorder] = idx.DiskBytes()
			if reorder {
				for i := range g.Segs {
					totalSegs++
					if g.Segs[i].Comp == colstore.CompRLE {
						rleSegs++
					}
				}
			}
		}
		fmt.Fprintf(w, "%-18s %12d %12d %8.2fx %10d/%d\n",
			ds.Name, sizes[false], sizes[true],
			float64(sizes[false])/float64(max(sizes[true], 1)), rleSegs, totalSegs)
	}
	fmt.Fprintln(w, "expected: reordering helps low-cardinality/skewed data (more RLE), is neutral on unique data.")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E12Sampling reproduces §4.4: bookmark-based sampling — histogram accuracy
// versus the rows touched, compared to an exact full scan.
func E12Sampling(w io.Writer, rows int) error {
	data := workload.GenSSB(float64(rows)/60000, 17)
	cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
	opts := table.DefaultOptions()
	opts.RowGroupSize = 1 << 14
	opts.BulkLoadThreshold = 1024
	t, err := cat.Create("lineorder", workload.LineorderSchema, opts)
	if err != nil {
		return err
	}
	if err := t.BulkLoad(data.Lineorder); err != nil {
		return err
	}
	total := t.Rows()

	// Ground truth: fraction of rows with lo_quantity <= 25.
	exact := 0
	for _, r := range data.Lineorder {
		if r[5].I <= 25 {
			exact++
		}
	}

	fmt.Fprintf(w, "E12 — bookmark sampling (%d rows; estimating |lo_quantity <= 25| = %d)\n", total, exact)
	fmt.Fprintf(w, "%-12s %12s %12s %10s\n", "sample", "estimate", "error", "cost")
	for _, sampleSize := range []int{100, 1000, 10000} {
		if sampleSize > total {
			continue
		}
		h := stats.BuildHistogram(t, 5, 32, sampleSize, rand.New(rand.NewSource(9)))
		est := h.EstimateLE(sqltypes.NewInt(25))
		errPct := 100 * absF(est-float64(exact)) / float64(exact)
		fmt.Fprintf(w, "%-12d %12.0f %11.1f%% %9.1f%%\n",
			sampleSize, est, errPct, 100*float64(sampleSize)/float64(total))
	}
	fmt.Fprintln(w, "expected: error shrinks with sample size; even 1% samples estimate within a few percent.")
	return nil
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
