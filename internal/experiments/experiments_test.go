package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Each experiment runs end-to-end at a tiny scale; these tests guard the
// harness itself (workload loading, measurement plumbing, output shape),
// not performance numbers.

func runExp(t *testing.T, name string, fn func(w *bytes.Buffer) error, wantSubstr ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	for _, sub := range wantSubstr {
		if !strings.Contains(out, sub) {
			t.Fatalf("%s output missing %q:\n%s", name, sub, out)
		}
	}
	return out
}

func TestE1(t *testing.T) {
	out := runExp(t, "E1", func(w *bytes.Buffer) error { return E1Table1Compression(w, 2000) },
		"uniform_ints", "mixed_fact", "CS+ARCH")
	// The columnstore must beat PAGE compression on the sorted dataset.
	if !strings.Contains(out, "sorted_ints") {
		t.Fatal("missing dataset")
	}
}

func TestE2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "E2", func(w *bytes.Buffer) error { return E2SpeedupSSB(w, 0.05, 2, 1) },
		"Q1.1", "Q4.3", "geometric mean")
}

func TestE3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, "E3", func(w *bytes.Buffer) error { return E3Repertoire(w, 0.05, 1) },
		"OuterJoin", "UnionAll", "DistinctAgg")
	// Every repertoire query must fall back to row mode under the 2012 rules.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Join") || strings.Contains(line, "Agg") || strings.Contains(line, "UnionAll") {
			if !strings.Contains(line, "row") {
				t.Fatalf("repertoire query did not fall back in 2012 mode: %s", line)
			}
		}
	}
}

func TestE4(t *testing.T) {
	out := runExp(t, "E4", func(w *bytes.Buffer) error { return E4SegmentElimination(w, 60000, 1) },
		"segment elimination", "100%")
	// At 1% selectivity most groups must be eliminated.
	var found bool
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "1%") && !strings.Contains(line, "0/") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no elimination visible:\n%s", out)
	}
}

func TestE5(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "E5", func(w *bytes.Buffer) error { return E5BitmapPushdown(w, 0.05, 1) },
		"bitmap", "region", "nation")
}

func TestE6(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "E6", func(w *bytes.Buffer) error { return E6TrickleInsert(w, 20000) },
		"tuple mover", "true", "false")
}

func TestE7(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, "E7", func(w *bytes.Buffer) error { return E7BulkLoadThreshold(w) },
		"bulk load threshold", "direct", "delta")
	_ = out
}

func TestE8(t *testing.T) {
	runExp(t, "E8", func(w *bytes.Buffer) error { return E8ArchivalAccess(w, 30000, 1) },
		"ARCHIVE", "NONE")
}

func TestE9(t *testing.T) {
	out := runExp(t, "E9", func(w *bytes.Buffer) error { return E9DeleteOverhead(w, 30000, 1) },
		"delete bitmap", "50%")
	_ = out
}

func TestE10(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, "E10", func(w *bytes.Buffer) error { return E10Spill(w, 0.2, 1) },
		"unlimited", "KiB")
	// The smallest grant must actually spill.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-2]
	if !strings.Contains(last, "4 KiB") {
		t.Fatalf("unexpected last budget line: %s", last)
	}
	fields := strings.Fields(last)
	if fields[3] == "0" {
		t.Fatalf("tiny grant did not spill: %s", last)
	}
}

func TestE11(t *testing.T) {
	runExp(t, "E11", func(w *bytes.Buffer) error { return E11EncodingAblation(w, 20000) },
		"encoding ablation", "skewed_ints", "RLE")
}

func TestE12(t *testing.T) {
	runExp(t, "E12", func(w *bytes.Buffer) error { return E12Sampling(w, 30000) },
		"bookmark sampling", "1000")
}
