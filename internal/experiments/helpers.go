package experiments

import (
	"sort"

	"apollo/internal/sqltypes"
)

// sortByDate orders lineorder rows by lo_orderdate (column 4), giving each
// row group a disjoint date range — the precondition for segment elimination
// to bite in E4.
func sortByDate(rows []sqltypes.Row) {
	sort.Slice(rows, func(a, b int) bool { return rows[a][4].I < rows[b][4].I })
}

// dateStr renders epoch days as a SQL date literal body.
func dateStr(days int64) string { return sqltypes.DateToString(days) }
