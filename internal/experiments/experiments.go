// Package experiments implements the paper-reproduction harness: one
// function per table/figure of the evaluation (see DESIGN.md's experiment
// index E1–E12). Each function loads its workload, runs the measurement, and
// prints a paper-style table to the writer. cmd/csbench and the repository's
// benchmarks both drive these functions.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"apollo/internal/catalog"
	"apollo/internal/plan"
	"apollo/internal/rowstore"
	"apollo/internal/sql"
	"apollo/internal/storage"
	"apollo/internal/table"
	"apollo/internal/workload"
)

// ssbEngine loads an SSB warehouse and returns an engine in the given mode.
func ssbEngine(sf float64, opts plan.Options) (*sql.Engine, error) {
	cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
	topts := table.DefaultOptions()
	topts.RowGroupSize = 1 << 16
	topts.BulkLoadThreshold = 4096
	if err := workload.LoadSSB(cat, workload.GenSSB(sf, 42), topts); err != nil {
		return nil, err
	}
	return &sql.Engine{Cat: cat, PlanOpts: opts, TableOpts: topts}, nil
}

// timeQuery runs a query `reps` times returning the best wall-clock time and
// the row count (best-of mitigates scheduler noise at laptop scale).
func timeQuery(e *sql.Engine, q string, reps int) (time.Duration, int, error) {
	best := time.Duration(0)
	rows := 0
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := e.Exec(q)
		if err != nil {
			return 0, 0, err
		}
		el := time.Since(start)
		if r == 0 || el < best {
			best = el
		}
		rows = len(res.Rows)
	}
	return best, rows, nil
}

// E1Table1Compression reproduces Table 1: at-rest sizes of each dataset under
// row-store NONE (raw), row-store PAGE compression, columnstore, and
// columnstore archival, with compression ratios relative to raw.
func E1Table1Compression(w io.Writer, rows int) error {
	fmt.Fprintf(w, "E1 / Table 1 — compression ratios (%d rows per dataset)\n", rows)
	fmt.Fprintf(w, "%-18s %10s %10s %10s %10s %8s %8s %8s\n",
		"dataset", "raw", "PAGE", "CS", "CS+ARCH", "page_x", "cs_x", "arch_x")
	for _, ds := range workload.CompressionDatasets(rows, 1) {
		raw := ds.RawBytes()

		pageStore := storage.NewStore(0)
		pageTab := rowstore.New(pageStore, ds.Name, ds.Schema, rowstore.Page)
		if err := pageTab.AppendMany(ds.Rows); err != nil {
			return err
		}
		page := pageTab.DiskBytes()

		csBytes, err := columnstoreBytes(ds, storage.None)
		if err != nil {
			return err
		}
		archBytes, err := columnstoreBytes(ds, storage.Archival)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "%-18s %10d %10d %10d %10d %8.2f %8.2f %8.2f\n",
			ds.Name, raw, page, csBytes, archBytes,
			ratio(raw, page), ratio(raw, csBytes), ratio(raw, archBytes))
	}
	fmt.Fprintln(w, "ratios are raw/size; higher is better. Expected shape: PAGE < CS < CS+ARCH on warehouse-like data.")
	return nil
}

func columnstoreBytes(ds workload.Dataset, tier storage.Compression) (int, error) {
	store := storage.NewStore(0)
	opts := table.DefaultOptions()
	opts.RowGroupSize = 1 << 16
	opts.BulkLoadThreshold = 1
	opts.Columnstore.Tier = tier
	t := table.New(store, ds.Name, ds.Schema, opts)
	if err := t.BulkLoad(ds.Rows); err != nil {
		return 0, err
	}
	return t.Stat().DiskBytes, nil
}

func ratio(raw, size int) float64 {
	if size == 0 {
		return 0
	}
	return float64(raw) / float64(size)
}

// E2SpeedupSSB reproduces the headline result: per-query elapsed time of the
// 13-query SSB suite in row mode vs batch mode (serial and parallel), with
// speedups. The paper reports routinely 10X, sometimes 100X or more.
func E2SpeedupSSB(w io.Writer, sf float64, parallel, reps int) error {
	rowEng, err := ssbEngine(sf, plan.Options{Mode: plan.ModeRow})
	if err != nil {
		return err
	}
	batchEng, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2014})
	if err != nil {
		return err
	}
	parEng, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2014, Parallel: parallel})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "E2 — SSB SF=%.2f: row mode vs batch mode (speedup = row/batch)\n", sf)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %9s %9s\n", "query", "row", "batch", "batch(DOP)", "speedup", "spdupDOP")
	var geo, geoPar float64 = 1, 1
	n := 0
	for _, q := range workload.SSBQueries() {
		tr, _, err := timeQuery(rowEng, q.SQL, reps)
		if err != nil {
			return fmt.Errorf("%s row: %w", q.Name, err)
		}
		tb, _, err := timeQuery(batchEng, q.SQL, reps)
		if err != nil {
			return fmt.Errorf("%s batch: %w", q.Name, err)
		}
		tp, _, err := timeQuery(parEng, q.SQL, reps)
		if err != nil {
			return fmt.Errorf("%s parallel: %w", q.Name, err)
		}
		s := float64(tr) / float64(tb)
		sp := float64(tr) / float64(tp)
		geo *= s
		geoPar *= sp
		n++
		fmt.Fprintf(w, "%-6s %12v %12v %12v %8.1fx %8.1fx\n", q.Name, tr.Round(time.Microsecond), tb.Round(time.Microsecond), tp.Round(time.Microsecond), s, sp)
	}
	fmt.Fprintf(w, "geometric mean speedup: %.1fx serial, %.1fx DOP=%d\n",
		math.Pow(geo, 1/float64(n)), math.Pow(geoPar, 1/float64(n)), parallel)
	return nil
}

// E3Repertoire reproduces the §5 operator-repertoire comparison: queries
// using outer/semi/anti joins, UNION ALL, distinct and scalar aggregation
// under the 2012 rule set (falls back to row mode) vs the 2014 rule set.
func E3Repertoire(w io.Writer, sf float64, reps int) error {
	e12, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2012})
	if err != nil {
		return err
	}
	e14, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2014})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E3 — operator repertoire: 2012 rule set (row fallback) vs 2014 (full batch), SF=%.2f\n", sf)
	fmt.Fprintf(w, "%-12s %8s %12s %12s %9s\n", "query", "2012mode", "2012", "2014", "speedup")
	for _, q := range workload.RepertoireQueries() {
		// Determine the effective 2012 mode.
		res, err := e12.Exec("EXPLAIN " + q.SQL)
		if err != nil {
			return err
		}
		mode12 := "batch"
		if len(res.Message) >= len("execution: row") && res.Message[11] == 'r' {
			mode12 = "row"
		}
		t12, _, err := timeQuery(e12, q.SQL, reps)
		if err != nil {
			return fmt.Errorf("%s 2012: %w", q.Name, err)
		}
		t14, _, err := timeQuery(e14, q.SQL, reps)
		if err != nil {
			return fmt.Errorf("%s 2014: %w", q.Name, err)
		}
		fmt.Fprintf(w, "%-12s %8s %12v %12v %8.1fx\n",
			q.Name, mode12, t12.Round(time.Microsecond), t14.Round(time.Microsecond), float64(t12)/float64(t14))
	}
	return nil
}

// E4SegmentElimination reproduces the §2.3 effect: a date-range scan over a
// date-clustered fact table with segment elimination on vs off, across
// selectivities.
func E4SegmentElimination(w io.Writer, rows, reps int) error {
	// Date-ordered load so row-group date ranges are disjoint.
	data := workload.GenSSB(float64(rows)/60000, 42)
	sortByDate(data.Lineorder)

	mk := func(noElim bool) (*sql.Engine, error) {
		cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
		topts := table.DefaultOptions()
		topts.RowGroupSize = 1 << 14
		topts.BulkLoadThreshold = 4096
		t, err := cat.Create("lineorder", workload.LineorderSchema, topts)
		if err != nil {
			return nil, err
		}
		if err := t.BulkLoad(data.Lineorder); err != nil {
			return nil, err
		}
		return &sql.Engine{Cat: cat, PlanOpts: plan.Options{Mode: plan.Mode2014, NoSegmentElimination: noElim}}, nil
	}
	eOn, err := mk(false)
	if err != nil {
		return err
	}
	eOff, err := mk(true)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "E4 — segment elimination on a date-clustered fact table (%d rows)\n", len(data.Lineorder))
	fmt.Fprintf(w, "%-12s %10s %12s %12s %9s %14s\n", "selectivity", "days", "elim=on", "elim=off", "speedup", "groups(skip/all)")
	for _, selPct := range []int{1, 5, 10, 25, 50, 100} {
		days := 7 * 365 * selPct / 100
		q := fmt.Sprintf("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_orderdate < DATE '%s'",
			dateStr(8035+int64(days)))
		tOn, _, err := timeQuery(eOn, q, reps)
		if err != nil {
			return err
		}
		tOff, _, err := timeQuery(eOff, q, reps)
		if err != nil {
			return err
		}
		res, err := eOn.Exec(q)
		if err != nil {
			return err
		}
		var skipped, total int64
		for _, st := range res.Compiled.ScanStats {
			skipped += st.GroupsEliminated
			total += st.Groups
		}
		fmt.Fprintf(w, "%10d%% %10d %12v %12v %8.1fx %8d/%d\n",
			selPct, days, tOn.Round(time.Microsecond), tOff.Round(time.Microsecond),
			float64(tOff)/float64(tOn), skipped, total)
	}
	return nil
}

// E5BitmapPushdown reproduces the §5 bitmap (Bloom) filter effect: a
// fact-dimension join where the dimension filter's selectivity varies, with
// bitmap pushdown on vs off.
func E5BitmapPushdown(w io.Writer, sf float64, reps int) error {
	eOn, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2014})
	if err != nil {
		return err
	}
	eOff, err := ssbEngine(sf, plan.Options{Mode: plan.Mode2014, NoBloom: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E5 — bitmap (Bloom) filter pushdown, SF=%.2f\n", sf)
	fmt.Fprintf(w, "%-22s %12s %12s %9s %16s\n", "dimension filter", "bloom=on", "bloom=off", "speedup", "fact rows kept")
	cases := []struct {
		label, pred string
	}{
		{"region (1 of 5)", "s_region = 'ASIA'"},
		{"nation (1 of 25)", "s_nation = 'CHINA'"},
		{"city (~1 of 250)", "s_city LIKE 'CHINA0%'"},
	}
	for _, c := range cases {
		q := fmt.Sprintf(`SELECT SUM(lo_revenue) FROM lineorder, supplier
			WHERE lo_suppkey = s_suppkey AND %s`, c.pred)
		tOn, _, err := timeQuery(eOn, q, reps)
		if err != nil {
			return err
		}
		tOff, _, err := timeQuery(eOff, q, reps)
		if err != nil {
			return err
		}
		res, err := eOn.Exec(q)
		if err != nil {
			return err
		}
		var kept, before int64
		for _, st := range res.Compiled.ScanStats {
			kept += st.RowsAfterBloom
			before += st.RowsAfterRange
		}
		fmt.Fprintf(w, "%-22s %12v %12v %8.1fx %10d/%d\n",
			c.label, tOn.Round(time.Microsecond), tOff.Round(time.Microsecond),
			float64(tOff)/float64(tOn), kept, before)
	}
	return nil
}

// E6TrickleInsert reproduces the §4 updatable-columnstore behavior: sustained
// trickle inserts with the tuple mover on vs off — delta-store growth, query
// latency, and insert throughput.
func E6TrickleInsert(w io.Writer, totalRows int) error {
	fmt.Fprintf(w, "E6 — trickle inserts (%d rows), tuple mover off vs on\n", totalRows)
	fmt.Fprintf(w, "%-10s %12s %12s %14s %12s\n", "mover", "ins/sec", "deltaRows", "compressed", "query")
	data := workload.GenSSB(float64(totalRows)/60000, 7)

	for _, mover := range []bool{false, true} {
		cat := catalog.New(storage.NewStore(storage.DefaultBufferPoolBytes))
		topts := table.DefaultOptions()
		topts.RowGroupSize = 1 << 13
		t, err := cat.Create("lineorder", workload.LineorderSchema, topts)
		if err != nil {
			return err
		}
		if mover {
			t.StartTupleMover(time.Millisecond)
		}
		start := time.Now()
		for _, r := range data.Lineorder {
			if _, err := t.Insert(r); err != nil {
				return err
			}
		}
		insElapsed := time.Since(start)
		if mover {
			// Let the mover drain closed stores.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				st := t.Stat()
				if st.DeltaRows < topts.RowGroupSize {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			t.StopTupleMover()
		}
		e := &sql.Engine{Cat: cat, PlanOpts: plan.Options{Mode: plan.Mode2014}}
		qt, _, err := timeQuery(e, "SELECT SUM(lo_revenue) FROM lineorder WHERE lo_discount >= 5", 3)
		if err != nil {
			return err
		}
		st := t.Stat()
		fmt.Fprintf(w, "%-10v %12.0f %12d %14d %12v\n",
			mover, float64(len(data.Lineorder))/insElapsed.Seconds(),
			st.DeltaRows, st.CompressedRows, qt.Round(time.Microsecond))
	}
	fmt.Fprintln(w, "expected: the mover bounds delta-store size and restores query speed at slight insert-rate cost.")
	return nil
}
